module daosim

go 1.24
