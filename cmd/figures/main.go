// Command figures regenerates every figure in the paper's evaluation
// section (Fig. 1 file-per-process and Fig. 2 shared-file, read and write
// panels), runs the machine-checked versions of the paper's qualitative
// claims, and optionally runs the ablation experiments from DESIGN.md.
// Independent sweep points fan out across cores; -parallel bounds the pool
// without changing any measured number.
//
// Completed sweep points can be memoized through a content-addressed cache
// (see internal/cache): -cache enables it with a persistent disk tier under
// ~/.daosim/cache, -cache-dir moves that tier (and implies -cache), and a
// warm rerun replays byte-identical figures without simulating, reporting
// its hit rate on exit.
//
//	figures                 # both figures, full node sweep, claim checks
//	figures -quick          # reduced sweep (CI-sized)
//	figures -fig 1          # only Figure 1
//	figures -parallel 4     # at most 4 concurrent sweep points
//	figures -ablations      # also run A1..A4
//	figures -csv out.csv    # dump the raw series
//	figures -cache          # memoize points under ~/.daosim/cache
//	figures -cache-dir .c   # memoize points under ./.c
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"daosim/internal/bench"
	"daosim/internal/cache"
	"daosim/internal/core"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced node sweep")
		fig       = flag.Int("fig", 0, "run only this figure (1 or 2); 0 = both")
		ablations = flag.Bool("ablations", false, "also run ablation experiments A1..A4")
		csvPath   = flag.String("csv", "", "write raw series CSV to this file")
		parallel  = flag.Int("parallel", 0, "max concurrent sweep points (0 = all cores, 1 = sequential)")
		seed      = flag.Uint64("seed", 0, "study seed (0 = testbed default)")
		cacheOn   = flag.Bool("cache", false, "memoize sweep points (disk tier under ~/.daosim/cache unless -cache-dir overrides)")
		cacheDir  = flag.String("cache-dir", "", "on-disk cache tier directory (implies -cache; explicitly empty = memory-only)")
	)
	flag.Parse()
	opts := bench.Options{Parallelism: *parallel, Seed: *seed}
	if *quick {
		opts.Scale = bench.Quick
	} else {
		opts.Scale = bench.Full
	}

	pointCache, err := cache.Open(*cacheOn, cache.FlagPassed("cache-dir"), *cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	opts.Cache = pointCache

	var csv string
	var easy, hard *core.Study

	if *fig == 0 || *fig == 1 {
		easy, err = bench.Figure1(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.Render("Figure 1: IOR file-per-process (easy)", easy))
		fmt.Printf("(swept in %v wall-clock)\n\n", easy.Elapsed)
		fmt.Println("Paper claims, checked:")
		fmt.Println(bench.RenderClaims(easy.CheckEasyClaims()))
		csv += easy.CSV()
	}
	if *fig == 0 || *fig == 2 {
		hard, err = bench.Figure2(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.Render("Figure 2: IOR shared-file (hard)", hard))
		fmt.Printf("(swept in %v wall-clock)\n\n", hard.Elapsed)
		fmt.Println("Paper claims, checked:")
		fmt.Println(bench.RenderClaims(hard.CheckHardClaims()))
		csv += hard.CSV()
	}
	if easy != nil && hard != nil {
		fmt.Println("Cross-figure claim:")
		fmt.Println(bench.RenderClaims(core.CheckCrossClaims(easy, hard)))
	}

	if *ablations {
		runAblations(opts)
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("raw series written to %s\n", *csvPath)
	}
	if pointCache != nil {
		fmt.Println(pointCache.Stats())
	}
}

func runAblations(opts bench.Options) {
	fmt.Println("=== Ablation A1: object class sweep at peak contention ===")
	a1, err := bench.AblationObjectClass(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a1.Table(true))
	fmt.Println(a1.Table(false))

	fmt.Println("=== Ablation A2: transfer size sweep (daos S2) ===")
	a2, err := bench.AblationTransferSize(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range a2 {
		fmt.Printf("  t=%8d KiB  write %7.2f GiB/s  read %7.2f GiB/s\n",
			pt.Transfer>>10, pt.WriteGiBs, pt.ReadGiBs)
	}
	fmt.Println()

	fmt.Println("=== Ablation A3: DFuse overhead decomposition ===")
	a3, err := bench.AblationFuseOverhead(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a3.Table(true))
	fmt.Println(a3.Table(false))

	fmt.Println("=== Ablation A4: collective vs independent MPI-I/O (shared file) ===")
	a4, err := bench.AblationCollective(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a4.Table(true))
	fmt.Println(a4.Table(false))

	fmt.Println("=== Future work (paper SV): native DAOS array API vs DFS ===")
	fw, err := bench.FutureNativeArray(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range fw {
		fmt.Printf("  nodes=%2d  native w/r %7.2f/%7.2f GiB/s   dfs w/r %7.2f/%7.2f GiB/s\n",
			pt.Nodes, pt.NativeWriteGiBs, pt.NativeReadGiBs, pt.DFSWriteGiBs, pt.DFSReadGiBs)
	}
}
