// Command figures regenerates every figure in the paper's evaluation
// section (Fig. 1 file-per-process and Fig. 2 shared-file, read and write
// panels), runs the machine-checked versions of the paper's qualitative
// claims, and optionally runs the ablation experiments from DESIGN.md.
// Independent sweep points fan out across cores; -parallel bounds the pool
// without changing any measured number.
//
// Completed sweep points can be memoized through a content-addressed cache
// (see internal/cache): -cache enables it with a persistent disk tier under
// ~/.daosim/cache, -cache-dir moves that tier (and implies -cache), and a
// warm rerun replays byte-identical figures without simulating, reporting
// its hit rate on exit.
//
// With -server, the study grids execute on a daosd study server
// (internal/studysvc) instead of in-process: points stream back as they
// complete, output stays byte-identical, and caching (including the hit
// ledger printed on exit) is the server's.
//
//	figures                 # both figures, full node sweep, claim checks
//	figures -quick          # reduced sweep (CI-sized)
//	figures -fig 1          # only Figure 1
//	figures -fig fault      # the fault-injection grid (kill/rebuild/restart)
//	figures -parallel 4     # at most 4 concurrent sweep points
//	figures -ablations      # also run A1..A4
//	figures -csv out.csv    # dump the raw series
//	figures -cache          # memoize points under ~/.daosim/cache
//	figures -cache-dir .c   # memoize points under ./.c
//	figures -cache-peer http://h0:9464   # also consult h0's shared cache tier
//	figures -server :9464   # run the sweeps through a daosd server
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"daosim/internal/bench"
	"daosim/internal/cache"
	"daosim/internal/studysvc"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced node sweep")
		fig       = flag.String("fig", "0", "run only this figure (1, 2, or fault); 0 = both paper figures")
		ablations = flag.Bool("ablations", false, "also run ablation experiments A1..A4")
		csvPath   = flag.String("csv", "", "write raw series CSV to this file")
		parallel  = flag.Int("parallel", 0, "max concurrent sweep points (0 = all cores, 1 = sequential)")
		seed      = flag.Uint64("seed", 0, "study seed (0 = testbed default)")
		cacheOn   = flag.Bool("cache", false, "memoize sweep points (disk tier under ~/.daosim/cache unless -cache-dir overrides)")
		cacheDir  = flag.String("cache-dir", "", "on-disk cache tier directory (implies -cache; explicitly empty = memory-only)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "disk cache tier byte budget; least-recently-used entries are evicted above it (0 = unbounded)")
		cachePeer = flag.String("cache-peer", "", "peer daosd URL whose cache joins the stack as a remote tier (enables caching)")
		server    = flag.String("server", "", "run study sweeps through the daosd server at this address (host:port) instead of in-process")
	)
	flag.Parse()
	opts := bench.Options{Parallelism: *parallel, Seed: *seed}
	if *quick {
		opts.Scale = bench.Quick
	} else {
		opts.Scale = bench.Full
	}

	var pointCache *cache.Cache
	var client *studysvc.Client
	if *server != "" {
		// Sweeps execute on the server, where -parallel sized its pool and
		// its own -cache flags govern memoization; a local cache would
		// never be consulted, so passing both is a contradiction worth
		// refusing rather than silently ignoring.
		if *cacheOn || cache.FlagPassed("cache-dir") || *cacheMax != 0 || *cachePeer != "" {
			log.Fatal("figures: -cache/-cache-dir/-cache-max-bytes/-cache-peer configure the in-process runner; with -server, caching is configured on daosd")
		}
		if *parallel != 0 {
			// Not fatal: -ablations still runs its native-array points on
			// the local pool, where the flag does apply.
			fmt.Fprintln(os.Stderr, "figures: note: with -server, grid sweeps use daosd's -parallel pool; the local -parallel only bounds in-process work (native-array ablation points)")
		}
		client = studysvc.NewClient(*server)
		opts.Runner = client
	} else {
		var err error
		pointCache, err = cache.Open(*cacheOn, cache.FlagPassed("cache-dir"), *cacheDir, *cachePeer, *cacheMax)
		if err != nil {
			log.Fatal(err)
		}
		opts.Cache = pointCache
	}

	csv, err := bench.RunFigures(opts, *fig, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	if *ablations {
		runAblations(opts)
	}

	if err := bench.WriteCSV(*csvPath, csv, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if pointCache != nil {
		fmt.Println(pointCache.Stats())
	}
	if client != nil {
		fmt.Println(client.Ledger())
	}
}

func runAblations(opts bench.Options) {
	fmt.Println("=== Ablation A1: object class sweep at peak contention ===")
	a1, err := bench.AblationObjectClass(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a1.Table(true))
	fmt.Println(a1.Table(false))

	fmt.Println("=== Ablation A2: transfer size sweep (daos S2) ===")
	a2, err := bench.AblationTransferSize(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range a2 {
		fmt.Printf("  t=%8d KiB  write %7.2f GiB/s  read %7.2f GiB/s\n",
			pt.Transfer>>10, pt.WriteGiBs, pt.ReadGiBs)
	}
	fmt.Println()

	fmt.Println("=== Ablation A3: DFuse overhead decomposition ===")
	a3, err := bench.AblationFuseOverhead(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a3.Table(true))
	fmt.Println(a3.Table(false))

	fmt.Println("=== Ablation A4: collective vs independent MPI-I/O (shared file) ===")
	a4, err := bench.AblationCollective(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a4.Table(true))
	fmt.Println(a4.Table(false))

	fmt.Println("=== Future work (paper SV): native DAOS array API vs DFS ===")
	fw, err := bench.FutureNativeArray(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range fw {
		fmt.Printf("  nodes=%2d  native w/r %7.2f/%7.2f GiB/s   dfs w/r %7.2f/%7.2f GiB/s\n",
			pt.Nodes, pt.NativeWriteGiBs, pt.NativeReadGiBs, pt.DFSWriteGiBs, pt.DFSReadGiBs)
	}
}
