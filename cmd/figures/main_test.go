package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"daosim/internal/bench"
	"daosim/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden CSV fixtures")

// TestQuickCSVGolden pins the figures' CSV output against committed
// fixtures, so cache- and kernel-refactors cannot silently drift results: a
// deliberate physics change must regenerate the fixtures with -update (and
// bump sim.KernelVersion to invalidate caches).
func TestQuickCSVGolden(t *testing.T) {
	study := func(run func(bench.Options) (*core.Study, error)) func(bench.Options) (string, error) {
		return func(o bench.Options) (string, error) {
			st, err := run(o)
			if err != nil {
				return "", err
			}
			return st.CSV(), nil
		}
	}
	cases := []struct {
		name string
		file string
		run  func(bench.Options) (string, error)
	}{
		{"figure1", "figure1_quick.csv", study(bench.Figure1)},
		{"figure2", "figure2_quick.csv", study(bench.Figure2)},
		{"fault", "fault_quick.csv", func(o bench.Options) (string, error) {
			fss, err := bench.FaultGrid(o)
			if err != nil {
				return "", err
			}
			return bench.FaultCSV(fss), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.run(bench.At(bench.Quick))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (rerun with -update to generate)", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from the golden fixture.\nIf the physics change is deliberate, bump sim.KernelVersion and rerun with -update.\n--- got ---\n%s--- want ---\n%s",
					tc.name, got, want)
			}
		})
	}
}

// The -cache / -cache-dir flag matrix is covered by TestOpen in
// internal/cache, which both commands share via cache.Open.
