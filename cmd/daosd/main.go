// Command daosd serves the sharded multi-study scheduler (internal/studysvc):
// a long-lived HTTP service that accepts study batch submissions, shards
// their (variant, node-count) points across a bounded local worker pool,
// consults the content-addressed point cache before simulating, and streams
// completed points back to each client as NDJSON. Results through the
// service are byte-identical to in-process core.Runner sweeps.
//
//	daosd                      # listen on 127.0.0.1:9464, GOMAXPROCS workers
//	daosd -addr :9464          # listen on all interfaces
//	daosd -parallel 8          # shard width: at most 8 concurrent points
//	daosd -cache               # memoize points under ~/.daosim/cache
//	daosd -cache-dir .c        # memoize points under ./.c (implies -cache)
//
// Submit with cmd/studyctl, or point `figures -server addr` at it. On
// SIGINT/SIGTERM the server drains in-flight points and reports its cache
// ledger before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"daosim/internal/cache"
	"daosim/internal/studysvc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9464", "listen address (host:port)")
		parallel = flag.Int("parallel", 0, "worker pool width: max concurrent sweep points (0 = all cores)")
		cacheOn  = flag.Bool("cache", false, "memoize sweep points (disk tier under ~/.daosim/cache unless -cache-dir overrides)")
		cacheDir = flag.String("cache-dir", "", "on-disk cache tier directory (implies -cache; explicitly empty = memory-only)")
	)
	flag.Parse()

	pointCache, err := cache.Open(*cacheOn, cache.FlagPassed("cache-dir"), *cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	srv := studysvc.New(studysvc.Config{Workers: *parallel, Cache: pointCache})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	cacheState := "off"
	if pointCache != nil {
		cacheState = "on"
	}
	// The listening line is the readiness marker scripts and CI wait for.
	fmt.Printf("daosd: listening on http://%s (workers=%d, cache=%s, GOMAXPROCS=%d)\n",
		ln.Addr(), srv.Workers(), cacheState, runtime.GOMAXPROCS(0))

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	closing := make(chan struct{})
	// Result streams are long-lived, so no overall read/write deadline —
	// but slow-header and idle connections must not pin file descriptors
	// on a service that may face the open network.
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		err := httpSrv.Serve(ln)
		select {
		case <-closing: // shutdown in progress; Serve's error is the closed listener
		default:
			log.Fatal(err)
		}
	}()

	sig := <-done
	fmt.Printf("daosd: %v, draining\n", sig)
	close(closing)
	// Graceful first: stop accepting, let in-flight result streams finish
	// within the grace period, then sever whatever remains.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	cancel()
	srv.Close()
	if pointCache != nil {
		fmt.Println(pointCache.Stats())
	}
}
