// Command daosd serves the sharded multi-study scheduler (internal/studysvc):
// a long-lived HTTP service that accepts study batch submissions, shards
// their (variant, node-count) points across a bounded worker pool, consults
// the content-addressed point cache before simulating, and streams completed
// points back to each client as NDJSON. Results through the service are
// byte-identical to in-process core.Runner sweeps.
//
// With -workers, daosd runs as a fleet coordinator: each listed peer daosd
// joins the pool as a remote worker executing point jobs shipped over the
// /v1/points protocol leg. A peer that dies mid-point costs nothing but a
// retry — the job is re-dispatched to a healthy worker, the dead peer is
// marked down and re-probed via /v1/healthz with exponential backoff, and
// it rejoins the pool when it answers. Because jobs carry their derived
// seeds, fleet output stays byte-identical to a single in-process run at
// any topology, under any worker loss that leaves at least one worker.
//
//	daosd                      # listen on 127.0.0.1:9464, GOMAXPROCS workers
//	daosd -addr :9464          # listen on all interfaces
//	daosd -parallel 8          # shard width: at most 8 concurrent points
//	daosd -cache               # memoize points under ~/.daosim/cache
//	daosd -cache-dir .c        # memoize points under ./.c (implies -cache)
//	daosd -cache-max-bytes 64000000                # bound the disk tier to ~64 MB (LRU eviction)
//	daosd -cache-peer http://h0:9464               # mount h0's cache as a shared remote tier
//	daosd -workers http://h1:9464,http://h2:9464   # coordinate a fleet
//	daosd -workers ... -parallel 2 -remote-slots 4 # plus 2 local slots, 4 in-flight points per peer
//	daosd -store-dir .jobs     # journal submissions; crash recovery resumes them
//
// With -workers, -parallel counts *local* execution slots and defaults to
// zero — a pure coordinator that simulates nothing itself.
//
// With -store-dir, every submission is journaled to a checksummed
// append-only log before results are exposed. A daosd killed mid-sweep
// and restarted on the same directory replays completed points from the
// journal, re-enqueues only the incomplete remainder, and serves
// reconnecting clients (which resume via GET /v1/studies/{batch}) a
// byte-identical stream.
//
// Submit with cmd/studyctl, or point `figures -server addr` at it. On
// SIGINT/SIGTERM the server drains in-flight points and reports its cache
// ledger and fleet summary before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"daosim/internal/cache"
	"daosim/internal/jobstore"
	"daosim/internal/studysvc"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9464", "listen address (host:port)")
		parallel    = flag.Int("parallel", 0, "local worker slots: max concurrent local sweep points (0 = all cores, or no local slots with -workers)")
		workers     = flag.String("workers", "", "comma-separated peer daosd URLs to coordinate as remote workers")
		remoteSlots = flag.Int("remote-slots", 1, "point jobs kept in flight per remote worker")
		cacheOn     = flag.Bool("cache", false, "memoize sweep points (disk tier under ~/.daosim/cache unless -cache-dir overrides)")
		cacheDir    = flag.String("cache-dir", "", "on-disk cache tier directory (implies -cache; explicitly empty = memory-only)")
		cacheMax    = flag.Int64("cache-max-bytes", 0, "disk cache tier byte budget; least-recently-used entries are evicted above it (0 = unbounded)")
		cachePeer   = flag.String("cache-peer", "", "peer daosd URL whose cache joins the stack as a remote tier (enables caching)")
		storeDir    = flag.String("store-dir", "", "journal submissions to this directory; a restarted daosd replays completed points and resumes the rest")
	)
	flag.Parse()

	pointCache, err := cache.Open(*cacheOn, cache.FlagPassed("cache-dir"), *cacheDir, *cachePeer, *cacheMax)
	if err != nil {
		log.Fatal(err)
	}
	var store *jobstore.Store
	if *storeDir != "" {
		store, err = jobstore.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
	}
	var remotes []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			remotes = append(remotes, w)
		}
	}
	srv := studysvc.New(studysvc.Config{
		Workers:     *parallel,
		Remotes:     remotes,
		RemoteSlots: *remoteSlots,
		Cache:       pointCache,
		Store:       store,
	})
	if store != nil {
		batches, replayed, reenqueued := srv.Recovery()
		fmt.Printf("daosd: recovered %d batch(es) from %s: replayed %d completed point(s), re-enqueued %d\n",
			batches, store.Dir(), replayed, reenqueued)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	cacheState := "off"
	if pointCache != nil {
		cacheState = "on"
		if *cachePeer != "" {
			cacheState = "on, peer " + *cachePeer
		}
	}
	// The listening line is the readiness marker scripts and CI wait for.
	fmt.Printf("daosd: listening on http://%s (workers=%d, cache=%s, GOMAXPROCS=%d)\n",
		ln.Addr(), srv.Workers(), cacheState, runtime.GOMAXPROCS(0))
	if len(remotes) > 0 {
		// One startup probe per peer, informational only: a worker that is
		// still booting will be probed again the first time a job fails on
		// it, so a coordinator never refuses to start over a slow fleet.
		for _, r := range remotes {
			state := "up"
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := studysvc.NewClient(r).Health(ctx); err != nil {
				state = fmt.Sprintf("unreachable (%v)", err)
			}
			cancel()
			fmt.Printf("daosd: fleet worker %s: %s\n", r, state)
		}
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	closing := make(chan struct{})
	// Result streams are long-lived, so no overall read/write deadline —
	// but slow-header and idle connections must not pin file descriptors
	// on a service that may face the open network.
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		err := httpSrv.Serve(ln)
		select {
		case <-closing: // shutdown in progress; Serve's error is the closed listener
		default:
			log.Fatal(err)
		}
	}()

	sig := <-done
	fmt.Printf("daosd: %v, draining\n", sig)
	close(closing)
	// Graceful first: stop accepting, let in-flight result streams finish
	// within the grace period, then sever whatever remains.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	cancel()
	srv.Close()
	if pointCache != nil {
		fmt.Println(pointCache.Stats())
	}
	if len(remotes) > 0 {
		fmt.Printf("daosd: fleet retried %d job(s)\n", srv.Retries())
		for _, m := range srv.Fleet() {
			fmt.Printf("daosd: fleet worker %-32s %-4s points=%d failures=%d probes=%d readmissions=%d\n",
				m.Name, m.State, m.Points, m.Failures, m.Probes, m.Readmissions)
		}
	}
}
