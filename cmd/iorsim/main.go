// Command iorsim runs a single IOR configuration on the simulated
// NEXTGenIO-class cluster and prints an IOR-style summary.
//
// Example (the paper's easy mode, DFS backend, S2 objects, 8 client nodes):
//
//	iorsim -api DFS -fpp -class S2 -nodes 8 -ppn 8 -b 16m -t 2m -C
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"daosim/internal/cluster"
	"daosim/internal/ior"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

func main() {
	var (
		api        = flag.String("api", "DFS", "backend: POSIX, DFS, MPIIO, or HDF5")
		fpp        = flag.Bool("fpp", false, "file per process (IOR easy); default shared file (hard)")
		class      = flag.String("class", "SX", "object class: S1, S2, S4, S8, SX")
		nodes      = flag.Int("nodes", 4, "client nodes")
		ppn        = flag.Int("ppn", 8, "ranks per node")
		block      = flag.String("b", "16m", "block size per rank (e.g. 64m, 1g)")
		transfer   = flag.String("t", "2m", "transfer size (e.g. 1m, 4m)")
		segments   = flag.Int("s", 1, "segments")
		iters      = flag.Int("i", 1, "iterations")
		verify     = flag.Bool("R", false, "verify data on read")
		reorder    = flag.Bool("C", true, "reorder tasks for the read phase")
		collective = flag.Bool("c", false, "collective MPI-I/O")
		random     = flag.Bool("z", false, "random (shuffled) transfer order")
		writeOnly  = flag.Bool("w", false, "write phase only")
		readOnly   = flag.Bool("r", false, "read phase only (requires -w run data; use -w=false -r=false for both)")
	)
	flag.Parse()

	cls, err := placement.ClassByName(strings.ToUpper(*class))
	if err != nil {
		log.Fatal(err)
	}
	cfg := ior.Config{
		API:           ior.API(strings.ToUpper(*api)),
		FilePerProc:   *fpp,
		BlockSize:     parseSize(*block),
		TransferSize:  parseSize(*transfer),
		Segments:      *segments,
		Iterations:    *iters,
		DoWrite:       !*readOnly,
		DoRead:        !*writeOnly,
		Verify:        *verify,
		ReorderTasks:  *reorder,
		Class:         cls.ID,
		Collective:    *collective,
		RandomOffsets: *random,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	tb := cluster.New(cluster.NEXTGenIO())
	defer tb.Shutdown()
	var res *ior.Result
	elapsed := tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, *nodes, *ppn)
		if err != nil {
			log.Fatal(err)
		}
		res, err = ior.Run(p, env, cfg)
		if err != nil {
			log.Fatal(err)
		}
	})
	fmt.Print(res)
	fmt.Printf("  verify errors: %d\n", res.VerifyErrors)
	fmt.Printf("  virtual time:  %v\n", elapsed)
}

// parseSize parses IOR-style sizes: 4k, 2m, 1g, or plain bytes.
func parseSize(s string) int64 {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad size %q\n", s)
		os.Exit(2)
	}
	return n * mult
}
