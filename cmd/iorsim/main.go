// Command iorsim runs a single IOR configuration on the simulated
// NEXTGenIO-class cluster and prints an IOR-style summary. With a
// comma-separated -nodes list it instead sweeps the node axis through the
// parallel study runner and prints the study tables; -parallel bounds the
// worker pool (results are identical at any setting).
//
// Example (the paper's easy mode, DFS backend, S2 objects, 8 client nodes):
//
//	iorsim -api DFS -fpp -class S2 -nodes 8 -ppn 8 -b 16m -t 2m -C
//
// Sweep example (4 points, fanned out across cores):
//
//	iorsim -api DFS -fpp -class S2 -nodes 1,2,4,8 -parallel 4
//
// Sweeps can memoize completed points through the content-addressed cache
// (-cache, -cache-dir; see internal/cache): a repeated sweep replays
// byte-identical tables without simulating and reports its hit rate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"daosim/internal/cache"
	"daosim/internal/cluster"
	"daosim/internal/core"
	"daosim/internal/ior"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

func main() {
	var (
		api        = flag.String("api", "DFS", "backend: POSIX, DFS, MPIIO, or HDF5")
		fpp        = flag.Bool("fpp", false, "file per process (IOR easy); default shared file (hard)")
		class      = flag.String("class", "SX", "object class: S1, S2, S4, S8, SX")
		nodes      = flag.String("nodes", "4", "client nodes; a comma-separated list sweeps the node axis")
		ppn        = flag.Int("ppn", 8, "ranks per node")
		block      = flag.String("b", "16m", "block size per rank (e.g. 64m, 1g)")
		transfer   = flag.String("t", "2m", "transfer size (e.g. 1m, 4m)")
		segments   = flag.Int("s", 1, "segments")
		iters      = flag.Int("i", 1, "iterations")
		verify     = flag.Bool("R", false, "verify data on read")
		reorder    = flag.Bool("C", true, "reorder tasks for the read phase")
		collective = flag.Bool("c", false, "collective MPI-I/O")
		random     = flag.Bool("z", false, "random (shuffled) transfer order")
		writeOnly  = flag.Bool("w", false, "write phase only")
		readOnly   = flag.Bool("r", false, "read phase only (requires -w run data; use -w=false -r=false for both)")
		parallel   = flag.Int("parallel", 0, "max concurrent sweep points (0 = all cores, 1 = sequential)")
		seed       = flag.Uint64("seed", 0, "study seed (0 = default); every point, single or swept, runs on a seed derived from it so single runs match sweep rows")
		cacheOn    = flag.Bool("cache", false, "memoize sweep points (sweeps only; disk tier under ~/.daosim/cache unless -cache-dir overrides)")
		cacheDir   = flag.String("cache-dir", "", "on-disk cache tier directory (implies -cache; explicitly empty = memory-only)")
		cacheMax   = flag.Int64("cache-max-bytes", 0, "disk cache tier byte budget; least-recently-used entries are evicted above it (0 = unbounded)")
		cachePeer  = flag.String("cache-peer", "", "peer daosd URL whose cache joins the stack as a remote tier (enables caching)")
	)
	flag.Parse()

	cls, err := placement.ClassByName(strings.ToUpper(*class))
	if err != nil {
		log.Fatal(err)
	}

	nodeSweep, sweep, err := parseNodes(*nodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		os.Exit(2)
	}
	if sweep {
		if *verify || *random || *writeOnly || *readOnly || !*reorder {
			log.Fatal("iorsim: -R, -z, -w, -r, and -C=false apply to single-point runs; a -nodes sweep measures both phases with task reorder on")
		}
		pointCache, err := cache.Open(*cacheOn, cache.FlagPassed("cache-dir"), *cacheDir, *cachePeer, *cacheMax)
		if err != nil {
			log.Fatal(err)
		}
		runSweep(nodeSweep, *ppn, ior.API(strings.ToUpper(*api)), cls, *fpp,
			parseSize(*block), parseSize(*transfer), *segments, *iters, *collective, *parallel, *seed, pointCache)
		return
	}

	cfg := ior.Config{
		API:           ior.API(strings.ToUpper(*api)),
		FilePerProc:   *fpp,
		BlockSize:     parseSize(*block),
		TransferSize:  parseSize(*transfer),
		Segments:      *segments,
		Iterations:    *iters,
		DoWrite:       !*readOnly,
		DoRead:        !*writeOnly,
		Verify:        *verify,
		ReorderTasks:  *reorder,
		Class:         cls.ID,
		Collective:    *collective,
		RandomOffsets: *random,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// Seed the testbed exactly as the runner seeds this point in a sweep,
	// so `-nodes 8` and the 8-node row of `-nodes 8,16` report the same
	// numbers.
	tbCfg := cluster.NEXTGenIO()
	base := *seed
	if base == 0 {
		base = tbCfg.Seed
	}
	tbCfg.Seed = core.PointSeed(base, 0, nodeSweep[0])
	tb := cluster.New(tbCfg)
	defer tb.Shutdown()
	var res *ior.Result
	elapsed := tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, nodeSweep[0], *ppn)
		if err != nil {
			log.Fatal(err)
		}
		res, err = ior.Run(p, env, cfg)
		if err != nil {
			log.Fatal(err)
		}
	})
	fmt.Print(res)
	fmt.Printf("  verify errors: %d\n", res.VerifyErrors)
	fmt.Printf("  virtual time:  %v\n", elapsed)
}

// runSweep fans a node sweep out through the core study runner, memoizing
// points through c when non-nil.
func runSweep(nodes []int, ppn int, api ior.API, cls placement.Class, fpp bool,
	block, transfer int64, segments, iters int, collective bool, parallel int, seed uint64, c *cache.Cache) {
	workload := "hard"
	if fpp {
		workload = "easy"
	}
	label := strings.ToLower(string(api)) + " " + cls.Name
	st, err := (&core.Runner{Parallelism: parallel, Cache: c}).Run(core.Config{
		Workload:     workload,
		Nodes:        nodes,
		PPN:          ppn,
		BlockSize:    block,
		TransferSize: transfer,
		Segments:     segments,
		Iterations:   iters,
		Variants:     []core.Variant{{Label: label, API: api, Class: cls.ID, Collective: collective}},
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(st.Table(true))
	fmt.Print(st.Table(false))
	fmt.Printf("swept %d points in %v wall-clock\n", len(nodes), st.Elapsed)
	if c != nil {
		fmt.Println(c.Stats())
	}
}

// parseNodes parses the -nodes flag: a single count or a comma-separated
// sweep list. Whitespace around entries is ignored, empty entries (doubled
// or trailing commas) are skipped, and duplicate counts collapse to their
// first occurrence — a sweep point is a pure function of its node count, so
// repeating it would only print the same row twice. sweep reports whether
// the flag listed more than one entry before dedup, so `-nodes 8,8` still
// runs (and validates its flags) as a sweep, not a single-point run.
func parseNodes(s string) (out []int, sweep bool, err error) {
	seen := make(map[int]bool)
	entries := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, false, fmt.Errorf("bad node count %q", part)
		}
		if n <= 0 {
			return nil, false, fmt.Errorf("node count must be positive, got %d", n)
		}
		entries++
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("empty -nodes list %q", s)
	}
	return out, entries > 1, nil
}

// parseSize parses IOR-style sizes: 4k, 2m, 1g, or plain bytes.
func parseSize(s string) int64 {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad size %q\n", s)
		os.Exit(2)
	}
	return n * mult
}
