package main

import (
	"reflect"
	"testing"
)

// TestParseNodes is the table-driven contract of the -nodes flag: single
// counts, sweep lists, whitespace, stray commas, duplicates (collapsed but
// still sweep-shaped), and every rejection path.
func TestParseNodes(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		want  []int // nil means an error is expected
		sweep bool
	}{
		{"single", "4", []int{4}, false},
		{"single trailing comma", "8,", []int{8}, false},
		{"sweep", "1,2,4,8", []int{1, 2, 4, 8}, true},
		{"whitespace", " 1 ,\t2 , 4 ", []int{1, 2, 4}, true},
		{"doubled comma", "1,,2", []int{1, 2}, true},
		{"duplicates collapse", "1,2,2,1,4", []int{1, 2, 4}, true},
		{"duplicate order kept", "8,1,8", []int{8, 1}, true},
		// "8,8" collapses to one point but stays a sweep: it must keep
		// sweep output and sweep flag validation, not fall back to the
		// single-run path.
		{"all duplicates still sweep", "8,8", []int{8}, true},
		{"plus sign accepted", "+4", []int{4}, false},
		{"empty", "", nil, false},
		{"only whitespace", "  ", nil, false},
		{"only commas", ",,,", nil, false},
		{"non-numeric", "x", nil, false},
		{"mixed non-numeric", "1,x,2", nil, false},
		{"float", "1.5", nil, false},
		{"zero", "0", nil, false},
		{"negative", "-3", nil, false},
		{"negative in list", "4,-1", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, sweep, err := parseNodes(tc.in)
			if tc.want == nil {
				if err == nil {
					t.Fatalf("parseNodes(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseNodes(%q): %v", tc.in, err)
			}
			if !reflect.DeepEqual(got, tc.want) || sweep != tc.sweep {
				t.Fatalf("parseNodes(%q) = %v, sweep=%v; want %v, sweep=%v", tc.in, got, sweep, tc.want, tc.sweep)
			}
		})
	}
}

// TestParseSize covers the IOR-style size suffixes the sweep geometry flags
// accept.
func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"4k", 4 << 10},
		{"2m", 2 << 20},
		{"1g", 1 << 30},
		{"16M", 16 << 20},
		{"512", 512},
		{" 2m ", 2 << 20},
	}
	for _, tc := range cases {
		if got := parseSize(tc.in); got != tc.want {
			t.Errorf("parseSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
