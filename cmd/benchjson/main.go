// Command benchjson converts `go test -bench` output into a machine-readable
// JSON ledger, so performance numbers can be committed next to the code they
// describe and diffed across changes. It reads benchmark text on stdin and
// merges the parsed run into -out under -label, preserving runs recorded
// under other labels — the committed BENCH_kernel.json keeps a "before" and
// an "after" run of the sim kernel benchmarks, and CI uploads a fresh "ci"
// ledger as a build artifact.
//
//	go test -run '^$' -bench . -benchmem ./internal/sim |
//	    go run ./cmd/benchjson -label after -out BENCH_kernel.json
//
// Without -out the merged ledger is written to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. Metrics carries any extra
// unit pairs (e.g. custom b.ReportMetric units) keyed by unit name.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled invocation of a benchmark suite.
type Run struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Ledger is the merged on-disk document: one Run per label.
type Ledger struct {
	Runs map[string]Run `json:"runs"`
}

// procSuffix returns the trailing -<digits> of a benchmark name (e.g. "-8"
// of "BenchmarkFoo-8"), or "" if there is none.
func procSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

// trimProcSuffixes drops the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs from machines with different core counts merge cleanly. The
// suffix is stripped only by consensus: go test stamps every line of a run
// with the same -N, so unless all names end in one identical -<digits> the
// trailing digits belong to the names themselves (e.g. sub-benchmarks like
// BenchmarkX/wave-256 on a GOMAXPROCS=1 machine, where go test appends
// nothing) and are preserved.
func trimProcSuffixes(benchmarks map[string]Result) map[string]Result {
	suffix := ""
	for name := range benchmarks {
		s := procSuffix(name)
		if s == "" || (suffix != "" && s != suffix) {
			return benchmarks
		}
		suffix = s
	}
	trimmed := make(map[string]Result, len(benchmarks))
	for name, res := range benchmarks {
		trimmed[strings.TrimSuffix(name, suffix)] = res
	}
	return trimmed
}

// parse reads `go test -bench` text and returns the run it describes. Later
// duplicate benchmark lines overwrite earlier ones, so concatenated outputs
// resolve to the freshest numbers.
func parse(r io.Reader) (Run, error) {
	run := Run{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a PASS/FAIL or name-only progress line
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Run{}, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		run.Benchmarks[fields[0]] = res
	}
	if err := sc.Err(); err != nil {
		return Run{}, err
	}
	if len(run.Benchmarks) == 0 {
		return Run{}, errors.New("benchjson: no benchmark lines found on stdin")
	}
	run.Benchmarks = trimProcSuffixes(run.Benchmarks)
	return run, nil
}

// merge loads the ledger at path (if any), replaces the run under label, and
// returns the updated document.
func merge(path, label string, run Run) (Ledger, error) {
	ledger := Ledger{Runs: map[string]Run{}}
	if path != "" {
		data, err := os.ReadFile(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// first write
		case err != nil:
			return Ledger{}, err
		default:
			if err := json.Unmarshal(data, &ledger); err != nil {
				return Ledger{}, fmt.Errorf("benchjson: %s: %w", path, err)
			}
			if ledger.Runs == nil {
				ledger.Runs = map[string]Run{}
			}
		}
	}
	ledger.Runs[label] = run
	return ledger, nil
}

func main() {
	out := flag.String("out", "", "ledger file to merge into (default: write to stdout)")
	label := flag.String("label", "run", "label to record this run under")
	flag.Parse()

	run, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ledger, err := merge(*out, *label, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
