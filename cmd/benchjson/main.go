// Command benchjson converts `go test -bench` output into a machine-readable
// JSON ledger, so performance numbers can be committed next to the code they
// describe and diffed across changes. It reads benchmark text on stdin and
// merges the parsed run into -out under -label, preserving runs recorded
// under other labels — the committed BENCH_kernel.json keeps a "before" and
// an "after" run of the sim kernel benchmarks, and CI uploads a fresh "ci"
// ledger as a build artifact.
//
//	go test -run '^$' -bench . -benchmem ./internal/sim |
//	    go run ./cmd/benchjson -label after -out BENCH_kernel.json
//
// Without -out the merged ledger is written to stdout.
//
// With -diff, benchjson instead compares two recorded runs and prints the
// per-benchmark deltas:
//
//	benchjson -diff BENCH_kernel.json:after fresh.json:ci -threshold 25
//
// Each operand is a ledger file with an optional :label suffix (required
// when the ledger holds more than one run). A benchmark regresses when its
// ns/op grows by more than -threshold percent, or its allocs/op or B/op
// grow at all; any regression makes benchjson exit with status 1, the gate
// for local before/after checks (CI uses it report-only, since shared
// runners jitter).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. Metrics carries any extra
// unit pairs (e.g. custom b.ReportMetric units) keyed by unit name.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled invocation of a benchmark suite.
type Run struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Ledger is the merged on-disk document: one Run per label.
type Ledger struct {
	Runs map[string]Run `json:"runs"`
}

// procSuffix returns the trailing -<digits> of a benchmark name (e.g. "-8"
// of "BenchmarkFoo-8"), or "" if there is none.
func procSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

// trimProcSuffixes drops the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs from machines with different core counts merge cleanly. The
// suffix is stripped only by consensus: go test stamps every line of a run
// with the same -N, so unless all names end in one identical -<digits> the
// trailing digits belong to the names themselves (e.g. sub-benchmarks like
// BenchmarkX/wave-256 on a GOMAXPROCS=1 machine, where go test appends
// nothing) and are preserved.
func trimProcSuffixes(benchmarks map[string]Result) map[string]Result {
	suffix := ""
	for name := range benchmarks {
		s := procSuffix(name)
		if s == "" || (suffix != "" && s != suffix) {
			return benchmarks
		}
		suffix = s
	}
	trimmed := make(map[string]Result, len(benchmarks))
	for name, res := range benchmarks {
		trimmed[strings.TrimSuffix(name, suffix)] = res
	}
	return trimmed
}

// parse reads `go test -bench` text and returns the run it describes. Later
// duplicate benchmark lines overwrite earlier ones, so concatenated outputs
// resolve to the freshest numbers.
func parse(r io.Reader) (Run, error) {
	run := Run{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			// Concatenated multi-package output lists every package.
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if run.Pkg == "" {
				run.Pkg = pkg
			} else if !strings.Contains(" "+run.Pkg+" ", " "+pkg+" ") {
				run.Pkg += " " + pkg
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a PASS/FAIL or name-only progress line
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Run{}, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		run.Benchmarks[fields[0]] = res
	}
	if err := sc.Err(); err != nil {
		return Run{}, err
	}
	if len(run.Benchmarks) == 0 {
		return Run{}, errors.New("benchjson: no benchmark lines found on stdin")
	}
	run.Benchmarks = trimProcSuffixes(run.Benchmarks)
	return run, nil
}

// merge loads the ledger at path (if any), replaces the run under label, and
// returns the updated document.
func merge(path, label string, run Run) (Ledger, error) {
	ledger := Ledger{Runs: map[string]Run{}}
	if path != "" {
		data, err := os.ReadFile(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// first write
		case err != nil:
			return Ledger{}, err
		default:
			if err := json.Unmarshal(data, &ledger); err != nil {
				return Ledger{}, fmt.Errorf("benchjson: %s: %w", path, err)
			}
			if ledger.Runs == nil {
				ledger.Runs = map[string]Run{}
			}
		}
	}
	ledger.Runs[label] = run
	return ledger, nil
}

// loadRun reads a ledger operand of the form path[:label] and returns the
// selected run. Without a label the ledger must hold exactly one run.
func loadRun(ref string) (Run, error) {
	path, label := ref, ""
	if i := strings.LastIndexByte(ref, ':'); i > 0 {
		path, label = ref[:i], ref[i+1:]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Run{}, fmt.Errorf("benchjson: %w", err)
	}
	var ledger Ledger
	if err := json.Unmarshal(data, &ledger); err != nil {
		return Run{}, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if label == "" {
		if len(ledger.Runs) != 1 {
			labels := make([]string, 0, len(ledger.Runs))
			for l := range ledger.Runs {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			return Run{}, fmt.Errorf("benchjson: %s holds %d runs (%s); pick one with %s:<label>",
				path, len(ledger.Runs), strings.Join(labels, ", "), path)
		}
		for l := range ledger.Runs {
			label = l
		}
	}
	run, ok := ledger.Runs[label]
	if !ok {
		return Run{}, fmt.Errorf("benchjson: %s has no run labelled %q", path, label)
	}
	return run, nil
}

// pct formats a relative change as a signed percentage.
func pct(old, new float64) string {
	if old == 0 {
		return "     n/a"
	}
	return fmt.Sprintf("%+7.1f%%", (new-old)/old*100)
}

// higherIsBetter reports the improvement direction of a custom metric unit:
// throughput units ("points/s", "MB/s" — anything ending in "/s" that isn't
// a time-per quantity like "ns/op") improve upward, everything else
// (latencies, counts, "ns/point") improves downward.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s")
}

// metricRegression reports whether new regressed against old for the unit,
// in the unit's improvement direction, beyond threshold percent.
func metricRegression(unit string, old, new, threshold float64) bool {
	if old == 0 {
		return false
	}
	if higherIsBetter(unit) {
		return new < old*(1-threshold/100)
	}
	return new > old*(1+threshold/100)
}

// diff prints per-benchmark deltas between two runs and reports whether any
// benchmark regressed: ns/op grew by more than threshold percent, allocs/op
// or B/op grew at all, or a custom metric moved against its improvement
// direction (units ending "/s" are throughputs and regress downward; all
// others regress upward) by more than threshold percent. Benchmarks or
// metrics present on only one side are listed but never count as
// regressions.
func diff(w io.Writer, old, new Run, threshold float64) bool {
	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	for name := range new.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	regressed := false
	fmt.Fprintf(w, "%-36s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, haveOld := old.Benchmarks[name]
		n, haveNew := new.Benchmarks[name]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-36s %12s %12.4g %9s  (new)\n", name, "-", n.NsPerOp, "")
		case !haveNew:
			fmt.Fprintf(w, "%-36s %12.4g %12s %9s  (gone)\n", name, o.NsPerOp, "-", "")
		default:
			var notes []string
			if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+threshold/100) {
				notes = append(notes, fmt.Sprintf("REGRESSION: ns/op +%.1f%% > %.0f%%", (n.NsPerOp-o.NsPerOp)/o.NsPerOp*100, threshold))
				regressed = true
			}
			if n.AllocsPerOp > o.AllocsPerOp {
				notes = append(notes, fmt.Sprintf("REGRESSION: allocs/op %g -> %g", o.AllocsPerOp, n.AllocsPerOp))
				regressed = true
			}
			if n.BytesPerOp > o.BytesPerOp {
				notes = append(notes, fmt.Sprintf("REGRESSION: B/op %g -> %g", o.BytesPerOp, n.BytesPerOp))
				regressed = true
			}
			units := make([]string, 0, len(o.Metrics))
			for unit := range o.Metrics {
				if _, ok := n.Metrics[unit]; ok {
					units = append(units, unit)
				}
			}
			sort.Strings(units)
			for _, unit := range units {
				ov, nv := o.Metrics[unit], n.Metrics[unit]
				if metricRegression(unit, ov, nv, threshold) {
					notes = append(notes, fmt.Sprintf("REGRESSION: %s %g -> %g (%s)", unit, ov, nv, strings.TrimSpace(pct(ov, nv))))
					regressed = true
				} else if ov != nv {
					notes = append(notes, fmt.Sprintf("%s %g -> %g (%s)", unit, ov, nv, strings.TrimSpace(pct(ov, nv))))
				}
			}
			suffix := ""
			if len(notes) > 0 {
				suffix = "  " + strings.Join(notes, "; ")
			}
			fmt.Fprintf(w, "%-36s %12.4g %12.4g %9s%s\n", name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp), suffix)
		}
	}
	return regressed
}

func main() {
	out := flag.String("out", "", "ledger file to merge into (default: write to stdout)")
	label := flag.String("label", "run", "label to record this run under")
	diffMode := flag.Bool("diff", false, "compare two recorded runs: benchjson -diff old.json[:label] new.json[:label]")
	threshold := flag.Float64("threshold", 20, "with -diff, ns/op regression tolerance in percent")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two operands: old.json[:label] new.json[:label]")
			os.Exit(2)
		}
		oldRun, err := loadRun(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		newRun, err := loadRun(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if diff(os.Stdout, oldRun, newRun, *threshold) {
			os.Exit(1)
		}
		return
	}

	run, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ledger, err := merge(*out, *label, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
