package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: daosim/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEventScheduling-4    	 5092879	       109.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkSharedBWManyFlows-4  	  983970	       574.7 ns/op	      16 B/op	       1 allocs/op
BenchmarkFigure1-4   	       1	 12345678 ns/op	         5.916 daos_S1_w_GiB/s
PASS
ok  	daosim/internal/sim	3.207s
`

func TestParse(t *testing.T) {
	run, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Goarch != "amd64" || run.Pkg != "daosim/internal/sim" {
		t.Fatalf("header = %q/%q/%q", run.Goos, run.Goarch, run.Pkg)
	}
	if !strings.Contains(run.CPU, "Xeon") {
		t.Fatalf("cpu = %q", run.CPU)
	}
	es, ok := run.Benchmarks["BenchmarkEventScheduling"]
	if !ok {
		t.Fatalf("missing BenchmarkEventScheduling: %v", run.Benchmarks)
	}
	if es.Iterations != 5092879 || es.NsPerOp != 109.8 || es.BytesPerOp != 0 || es.AllocsPerOp != 0 {
		t.Fatalf("EventScheduling = %+v", es)
	}
	// The -4 GOMAXPROCS suffix is shared by every line, so it is stripped.
	mf, ok := run.Benchmarks["BenchmarkSharedBWManyFlows"]
	if !ok {
		t.Fatalf("proc suffix not stripped: %v", run.Benchmarks)
	}
	if mf.NsPerOp != 574.7 || mf.BytesPerOp != 16 || mf.AllocsPerOp != 1 {
		t.Fatalf("ManyFlows = %+v", mf)
	}
	fig, ok := run.Benchmarks["BenchmarkFigure1"]
	if !ok || fig.Metrics["daos_S1_w_GiB/s"] != 5.916 {
		t.Fatalf("custom metric lost: %+v", fig)
	}
}

func TestParseLastWins(t *testing.T) {
	two := sample + "\nBenchmarkEventScheduling-4   	 10	 222.0 ns/op	 0 B/op	 0 allocs/op\n"
	run, err := parse(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Benchmarks["BenchmarkEventScheduling"].NsPerOp; got != 222.0 {
		t.Fatalf("ns/op = %v, want the later line (222.0)", got)
	}
}

func TestParseKeepsRealTrailingDigits(t *testing.T) {
	// On a GOMAXPROCS=1 machine go test appends no -N suffix, so trailing
	// digits belong to the benchmark names and must survive: without
	// suffix consensus nothing is stripped.
	in := `BenchmarkX/wave-128   	 10	 100.0 ns/op
BenchmarkX/wave-256   	 10	 200.0 ns/op
BenchmarkPlain        	 10	 300.0 ns/op
`
	run, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if run.Benchmarks["BenchmarkX/wave-128"].NsPerOp != 100.0 ||
		run.Benchmarks["BenchmarkX/wave-256"].NsPerOp != 200.0 ||
		run.Benchmarks["BenchmarkPlain"].NsPerOp != 300.0 {
		t.Fatalf("sub-benchmark names mangled: %v", run.Benchmarks)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("no benchmarks parsed but no error returned")
	}
}

func TestMergePreservesOtherLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	run, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	before, err := merge(path, "before", run)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.MarshalIndent(before, "", "  ")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	run2 := run
	run2.Benchmarks = map[string]Result{"BenchmarkEventScheduling": {Iterations: 1, NsPerOp: 50}}
	after, err := merge(path, "after", run2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Runs) != 2 {
		t.Fatalf("runs = %v, want before+after", after.Runs)
	}
	if after.Runs["before"].Benchmarks["BenchmarkEventScheduling"].NsPerOp != 109.8 {
		t.Fatalf("before run clobbered: %+v", after.Runs["before"])
	}
	if after.Runs["after"].Benchmarks["BenchmarkEventScheduling"].NsPerOp != 50 {
		t.Fatalf("after run wrong: %+v", after.Runs["after"])
	}
}

func TestMergeRejectsCorruptLedger(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := merge(path, "x", Run{Benchmarks: map[string]Result{}}); err == nil {
		t.Fatal("corrupt ledger accepted")
	}
}
