package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: daosim/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEventScheduling-4    	 5092879	       109.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkSharedBWManyFlows-4  	  983970	       574.7 ns/op	      16 B/op	       1 allocs/op
BenchmarkFigure1-4   	       1	 12345678 ns/op	         5.916 daos_S1_w_GiB/s
PASS
ok  	daosim/internal/sim	3.207s
`

func TestParse(t *testing.T) {
	run, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Goarch != "amd64" || run.Pkg != "daosim/internal/sim" {
		t.Fatalf("header = %q/%q/%q", run.Goos, run.Goarch, run.Pkg)
	}
	if !strings.Contains(run.CPU, "Xeon") {
		t.Fatalf("cpu = %q", run.CPU)
	}
	es, ok := run.Benchmarks["BenchmarkEventScheduling"]
	if !ok {
		t.Fatalf("missing BenchmarkEventScheduling: %v", run.Benchmarks)
	}
	if es.Iterations != 5092879 || es.NsPerOp != 109.8 || es.BytesPerOp != 0 || es.AllocsPerOp != 0 {
		t.Fatalf("EventScheduling = %+v", es)
	}
	// The -4 GOMAXPROCS suffix is shared by every line, so it is stripped.
	mf, ok := run.Benchmarks["BenchmarkSharedBWManyFlows"]
	if !ok {
		t.Fatalf("proc suffix not stripped: %v", run.Benchmarks)
	}
	if mf.NsPerOp != 574.7 || mf.BytesPerOp != 16 || mf.AllocsPerOp != 1 {
		t.Fatalf("ManyFlows = %+v", mf)
	}
	fig, ok := run.Benchmarks["BenchmarkFigure1"]
	if !ok || fig.Metrics["daos_S1_w_GiB/s"] != 5.916 {
		t.Fatalf("custom metric lost: %+v", fig)
	}
}

func TestParseLastWins(t *testing.T) {
	two := sample + "\nBenchmarkEventScheduling-4   	 10	 222.0 ns/op	 0 B/op	 0 allocs/op\n"
	run, err := parse(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Benchmarks["BenchmarkEventScheduling"].NsPerOp; got != 222.0 {
		t.Fatalf("ns/op = %v, want the later line (222.0)", got)
	}
}

func TestParseKeepsRealTrailingDigits(t *testing.T) {
	// On a GOMAXPROCS=1 machine go test appends no -N suffix, so trailing
	// digits belong to the benchmark names and must survive: without
	// suffix consensus nothing is stripped.
	in := `BenchmarkX/wave-128   	 10	 100.0 ns/op
BenchmarkX/wave-256   	 10	 200.0 ns/op
BenchmarkPlain        	 10	 300.0 ns/op
`
	run, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if run.Benchmarks["BenchmarkX/wave-128"].NsPerOp != 100.0 ||
		run.Benchmarks["BenchmarkX/wave-256"].NsPerOp != 200.0 ||
		run.Benchmarks["BenchmarkPlain"].NsPerOp != 300.0 {
		t.Fatalf("sub-benchmark names mangled: %v", run.Benchmarks)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("no benchmarks parsed but no error returned")
	}
}

func TestMergePreservesOtherLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	run, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	before, err := merge(path, "before", run)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.MarshalIndent(before, "", "  ")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	run2 := run
	run2.Benchmarks = map[string]Result{"BenchmarkEventScheduling": {Iterations: 1, NsPerOp: 50}}
	after, err := merge(path, "after", run2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Runs) != 2 {
		t.Fatalf("runs = %v, want before+after", after.Runs)
	}
	if after.Runs["before"].Benchmarks["BenchmarkEventScheduling"].NsPerOp != 109.8 {
		t.Fatalf("before run clobbered: %+v", after.Runs["before"])
	}
	if after.Runs["after"].Benchmarks["BenchmarkEventScheduling"].NsPerOp != 50 {
		t.Fatalf("after run wrong: %+v", after.Runs["after"])
	}
}

func TestMergeRejectsCorruptLedger(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := merge(path, "x", Run{Benchmarks: map[string]Result{}}); err == nil {
		t.Fatal("corrupt ledger accepted")
	}
}

func TestParseMultiPackage(t *testing.T) {
	in := `pkg: daosim/internal/sim
BenchmarkSpawn   	 10	 100.0 ns/op
pkg: daosim/internal/core
BenchmarkPointThroughput   	 1	 1000.0 ns/op
`
	run, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if run.Pkg != "daosim/internal/sim daosim/internal/core" {
		t.Fatalf("pkg = %q, want both packages listed", run.Pkg)
	}
	if len(run.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %v", run.Benchmarks)
	}
}

// writeLedger stores runs under path for the diff tests.
func writeLedger(t *testing.T, path string, runs map[string]Run) {
	t.Helper()
	data, err := json.MarshalIndent(Ledger{Runs: runs}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRun(t *testing.T) {
	dir := t.TempDir()
	one := filepath.Join(dir, "one.json")
	writeLedger(t, one, map[string]Run{"ci": {Benchmarks: map[string]Result{"BenchmarkX": {NsPerOp: 5}}}})
	two := filepath.Join(dir, "two.json")
	writeLedger(t, two, map[string]Run{
		"before": {Benchmarks: map[string]Result{"BenchmarkX": {NsPerOp: 10}}},
		"after":  {Benchmarks: map[string]Result{"BenchmarkX": {NsPerOp: 7}}},
	})

	// A single-run ledger needs no label.
	run, err := loadRun(one)
	if err != nil {
		t.Fatal(err)
	}
	if run.Benchmarks["BenchmarkX"].NsPerOp != 5 {
		t.Fatalf("wrong run loaded: %+v", run)
	}
	// A multi-run ledger requires an explicit label.
	if _, err := loadRun(two); err == nil {
		t.Fatal("ambiguous ledger accepted without a label")
	}
	run, err = loadRun(two + ":after")
	if err != nil {
		t.Fatal(err)
	}
	if run.Benchmarks["BenchmarkX"].NsPerOp != 7 {
		t.Fatalf("label not honored: %+v", run)
	}
	if _, err := loadRun(two + ":bogus"); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := loadRun(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDiffDetectsRegressions(t *testing.T) {
	old := Run{Benchmarks: map[string]Result{
		"BenchmarkFast":    {NsPerOp: 100},
		"BenchmarkAllocs":  {NsPerOp: 100, AllocsPerOp: 0, BytesPerOp: 0},
		"BenchmarkRemoved": {NsPerOp: 50},
		"BenchmarkStable":  {NsPerOp: 100},
	}}
	new := Run{Benchmarks: map[string]Result{
		"BenchmarkFast":   {NsPerOp: 150},                                // +50% ns/op: regression at threshold 20
		"BenchmarkAllocs": {NsPerOp: 90, AllocsPerOp: 1, BytesPerOp: 16}, // alloc growth: regression
		"BenchmarkAdded":  {NsPerOp: 10},
		"BenchmarkStable": {NsPerOp: 110}, // +10%: inside threshold
	}}
	var b strings.Builder
	if !diff(&b, old, new, 20) {
		t.Fatal("regressions not detected")
	}
	out := b.String()
	for _, want := range []string{
		"REGRESSION: ns/op +50.0%",
		"REGRESSION: allocs/op 0 -> 1",
		"REGRESSION: B/op 0 -> 16",
		"(new)",
		"(gone)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BenchmarkStable  ") && strings.Contains(out, "BenchmarkStable") && strings.Contains(out, "REGRESSION: ns/op +10") {
		t.Fatalf("within-threshold delta flagged:\n%s", out)
	}

	// The same pair inside a wider tolerance and without alloc growth is
	// clean.
	clean := Run{Benchmarks: map[string]Result{"BenchmarkFast": {NsPerOp: 110}}}
	b.Reset()
	if diff(&b, Run{Benchmarks: map[string]Result{"BenchmarkFast": {NsPerOp: 100}}}, clean, 20) {
		t.Fatalf("clean diff reported a regression:\n%s", b.String())
	}
}

func TestHigherIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"points/s": true,
		"MB/s":     true,
		"ns/point": false,
		"ns/op":    false,
		"windows":  false,
	} {
		if got := higherIsBetter(unit); got != want {
			t.Errorf("higherIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestDiffComparesCustomMetrics(t *testing.T) {
	mk := func(throughput, latency float64) Run {
		return Run{Benchmarks: map[string]Result{
			"BenchmarkPointThroughput": {
				NsPerOp: 1000,
				Metrics: map[string]float64{"points/s": throughput, "ns/point": latency},
			},
		}}
	}

	// Throughput units ("/s") regress when they DROP past the threshold;
	// per-item latencies regress when they grow past it.
	var b strings.Builder
	if !diff(&b, mk(10, 100e6), mk(5, 100e6), 20) {
		t.Fatalf("halved points/s not flagged:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "REGRESSION: points/s 10 -> 5") {
		t.Fatalf("regression note missing:\n%s", b.String())
	}

	b.Reset()
	if !diff(&b, mk(10, 100e6), mk(10, 200e6), 20) {
		t.Fatalf("doubled ns/point not flagged:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "REGRESSION: ns/point 1e+08 -> 2e+08") {
		t.Fatalf("regression note missing:\n%s", b.String())
	}

	// Improvements and within-threshold drift are reported but never gate.
	b.Reset()
	if diff(&b, mk(10, 100e6), mk(30, 35e6), 20) {
		t.Fatalf("improvement reported as regression:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "points/s 10 -> 30") {
		t.Fatalf("metric delta not reported:\n%s", b.String())
	}
	b.Reset()
	if diff(&b, mk(10, 100e6), mk(9, 110e6), 20) {
		t.Fatalf("within-threshold drift flagged:\n%s", b.String())
	}

	// A metric present on only one side never gates.
	onlyOld := Run{Benchmarks: map[string]Result{
		"BenchmarkPointThroughput": {NsPerOp: 1000, Metrics: map[string]float64{"points/s": 10}},
	}}
	onlyNew := Run{Benchmarks: map[string]Result{
		"BenchmarkPointThroughput": {NsPerOp: 1000, Metrics: map[string]float64{"ns/point": 1e8}},
	}}
	b.Reset()
	if diff(&b, onlyOld, onlyNew, 20) {
		t.Fatalf("one-sided metrics gated:\n%s", b.String())
	}
}
