package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"daosim/internal/studysvc"
)

func TestArgValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no args", nil, "usage"},
		{"unknown subcommand", []string{"bogus"}, "unknown subcommand"},
		{"submit without server", []string{"submit"}, "-server is required"},
		{"health without server", []string{"health"}, "-server is required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := run(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestHealthAgainstServer(t *testing.T) {
	srv := studysvc.New(studysvc.Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	var buf strings.Builder
	if err := run([]string{"health", "-server", ts.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("health output = %q", buf.String())
	}
}

// TestSubmitAgainstServer drives the full submit path — figure sweep
// through a loopback daosd, streamed progress, rendered tables, claims,
// CSV, ledger — against a real worker pool.
func TestSubmitAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 sweep; skipped under -short (the 1-core race job)")
	}
	srv := studysvc.New(studysvc.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	csv := t.TempDir() + "/out.csv"
	var buf strings.Builder
	if err := run([]string{"submit", "-server", ts.URL, "-quick", "-fig", "2", "-progress", "-csv", csv}, &buf); err != nil {
		t.Fatalf("submit failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, marker := range []string{
		"point study=0",               // progress streamed
		"=== Figure 2",                // table rendered
		"(a) Read",                    // both panels
		"(b) Write",                   //
		"fig2:",                       // claims checked
		"raw series written to",       // CSV dumped
		"server cache: off (6 points", // ledger reported (cache-less server)
	} {
		if !strings.Contains(out, marker) {
			t.Fatalf("submit output missing %q:\n%s", marker, out)
		}
	}
}
