package main

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"daosim/internal/core"
	"daosim/internal/studysvc"
)

func TestArgValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no args", nil, "usage"},
		{"unknown subcommand", []string{"bogus"}, "unknown subcommand"},
		{"submit without server", []string{"submit"}, "-server is required"},
		{"health without server", []string{"health"}, "-server is required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := run(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestHealthAgainstServer(t *testing.T) {
	srv := studysvc.New(studysvc.Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	var buf strings.Builder
	if err := run([]string{"health", "-server", ts.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("health output = %q", buf.String())
	}
}

// TestSubmitAgainstServer drives the full submit path — figure sweep
// through a loopback daosd, streamed progress, rendered tables, claims,
// CSV, ledger — against a real worker pool.
func TestSubmitAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 sweep; skipped under -short (the 1-core race job)")
	}
	srv := studysvc.New(studysvc.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	csv := t.TempDir() + "/out.csv"
	var buf strings.Builder
	if err := run([]string{"submit", "-server", ts.URL, "-quick", "-fig", "2", "-progress", "-csv", csv}, &buf); err != nil {
		t.Fatalf("submit failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, marker := range []string{
		"point study=0",               // progress streamed
		"=== Figure 2",                // table rendered
		"(a) Read",                    // both panels
		"(b) Write",                   //
		"fig2:",                       // claims checked
		"raw series written to",       // CSV dumped
		"server cache: off (6 points", // ledger reported (cache-less server)
	} {
		if !strings.Contains(out, marker) {
			t.Fatalf("submit output missing %q:\n%s", marker, out)
		}
	}
}

// TestExitCodesSeparateFailurePlanes pins the satellite contract: point
// errors exit with a code distinct from transport failures, so scripts can
// tell "some cells are bad" from "nothing trustworthy came back".
func TestExitCodesSeparateFailurePlanes(t *testing.T) {
	if got := exitCode(errors.New("connection refused")); got != exitFailure {
		t.Fatalf("transport failure exit code = %d, want %d", got, exitFailure)
	}
	pe := &core.PointErrors{Count: 3, Err: errors.New("3 cells bad")}
	if got := exitCode(pe); got != exitPointErrors {
		t.Fatalf("point-errors exit code = %d, want %d", got, exitPointErrors)
	}
	if got := exitCode(fmt.Errorf("wrapped: %w", pe)); got != exitPointErrors {
		t.Fatalf("wrapped point-errors exit code = %d, want %d", got, exitPointErrors)
	}
}

// TestSubmitTransportFailureExitsOne: an unreachable server is a transport
// failure — run returns a non-PointErrors error that maps to exit code 1.
func TestSubmitTransportFailureExitsOne(t *testing.T) {
	ts := httptest.NewServer(nil)
	ts.Close() // nothing listens here anymore
	var buf strings.Builder
	err := run([]string{"submit", "-server", ts.URL, "-quick", "-fig", "2"}, &buf)
	if err == nil {
		t.Fatal("submit against a dead server returned nil")
	}
	if got := exitCode(err); got != exitFailure {
		t.Fatalf("dead-server exit code = %d, want %d (error: %v)", got, exitFailure, err)
	}
}

// errWorker fails every point at the point level (a result, not a worker
// death), so a sweep completes with every cell recording an error.
type errWorker struct{}

func (errWorker) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	return core.Point{Nodes: j.Nodes, Err: "synthetic point failure"}, nil
}

// TestSubmitPointErrorsExitTwo: a sweep that completes but carries point
// errors must render its tables, print the error count, and map to the
// distinct exit code.
func TestSubmitPointErrorsExitTwo(t *testing.T) {
	srv := studysvc.New(studysvc.Config{
		Members: []studysvc.Member{{Name: "bad", Worker: errWorker{}}},
	})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	var buf strings.Builder
	err := run([]string{"submit", "-server", ts.URL, "-quick", "-fig", "2"}, &buf)
	if err == nil {
		t.Fatal("sweep with failing points returned nil")
	}
	if got := exitCode(err); got != exitPointErrors {
		t.Fatalf("point-errors exit code = %d, want %d (error: %v)", got, exitPointErrors, err)
	}
	out := buf.String()
	for _, marker := range []string{
		"=== Figure 2",            // tables still rendered
		"point error(s) recorded", // count printed
		"server cache: off",       // ledger still printed
	} {
		if !strings.Contains(out, marker) {
			t.Fatalf("point-errors output missing %q:\n%s", marker, out)
		}
	}
	if !strings.Contains(out, "6 point error(s)") {
		t.Fatalf("error count not printed:\n%s", out)
	}
}
