// Command studyctl is the client for a daosd study server. Its submit
// subcommand routes the paper's figure sweeps through the server — the
// same grids cmd/figures runs in-process — streaming per-point progress as
// results land and rendering the identical tables, claim checks, and CSV.
// The stats subcommand snapshots the server's scheduler, fleet, cache, and
// durability counters, including per-worker up/down state on a coordinator.
//
// Submissions survive connection loss: the client retries transient
// connect failures with bounded exponential backoff and, once the server
// has assigned the batch an identity, resumes the result stream where it
// left off — against a daosd running with -store-dir, that holds across a
// server crash and restart.
//
//	studyctl submit -server 127.0.0.1:9464                 # both figures
//	studyctl submit -server :9464 -quick -fig 1 -progress  # stream Fig. 1 points
//	studyctl submit -server :9464 -csv out.csv             # dump raw series
//	studyctl health -server :9464                          # readiness probe
//	studyctl stats -server :9464                           # fleet + cache counters
//
// Exit codes separate the failure planes: 1 is a transport or usage
// failure (nothing trustworthy came back), exit code 2 means the sweep
// completed but some points recorded errors — the tables rendered, the
// failing cells read as zeros, and the error count was printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"daosim/internal/bench"
	"daosim/internal/core"
	"daosim/internal/studysvc"
)

// Exit codes. Transport and usage failures exit 1; a completed sweep whose
// points carried errors exits exitPointErrors, so scripts can tell "the
// server was unreachable" from "the sweep ran and some cells are bad".
const (
	exitFailure     = 1
	exitPointErrors = 2
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "studyctl: %v\n", err)
	os.Exit(exitCode(err))
}

// exitCode maps a run error to the process exit code: point failures are
// distinct from everything else.
func exitCode(err error) int {
	var pe *core.PointErrors
	if errors.As(err, &pe) {
		return exitPointErrors
	}
	return exitFailure
}

// run executes one studyctl invocation, writing human output to out.
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("studyctl: usage: studyctl submit|health|stats -server host:port [flags]")
	}
	switch args[0] {
	case "submit":
		return runSubmit(args[1:], out)
	case "health":
		return runHealth(args[1:], out)
	case "stats":
		return runStats(args[1:], out)
	default:
		return fmt.Errorf("studyctl: unknown subcommand %q (want submit, health, or stats)", args[0])
	}
}

// runSubmit drives the figure sweeps through the server.
func runSubmit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("studyctl submit", flag.ContinueOnError)
	var (
		server   = fs.String("server", "", "daosd address (host:port or http:// URL)")
		quick    = fs.Bool("quick", false, "reduced node sweep")
		fig      = fs.String("fig", "0", "run only this figure (1, 2, or fault); 0 = both paper figures")
		csvPath  = fs.String("csv", "", "write raw series CSV to this file")
		progress = fs.Bool("progress", false, "print each point as it streams back")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("studyctl: -server is required")
	}

	client := studysvc.NewClient(*server)
	// Reconnects are part of normal operation against a durable or briefly
	// unreachable server; narrate them so a resumed sweep is explainable.
	client.OnRetry = func(attempt int, wait time.Duration, err error) {
		fmt.Fprintf(os.Stderr, "studyctl: connection lost (%v); retry %d in %v\n", err, attempt, wait)
	}
	if *progress {
		client.OnPoint = func(sp studysvc.StreamPoint) {
			mark := ""
			if sp.CacheHit {
				mark = "  (cache)"
			}
			if sp.Err != "" {
				mark = "  ERROR: " + sp.Err
			}
			fmt.Fprintf(out, "  point study=%d series=%d nodes=%d write=%.2f read=%.2f GiB/s%s\n",
				sp.Study, sp.Series, sp.Nodes, sp.WriteGiBs, sp.ReadGiBs, mark)
		}
	}
	opts := bench.Options{Runner: client, Scale: bench.Full}
	if *quick {
		opts.Scale = bench.Quick
	}

	csv, err := bench.RunFigures(opts, *fig, out)
	var pe *core.PointErrors
	if err != nil && !errors.As(err, &pe) {
		// Transport/protocol failure: the sweep never completed.
		return err
	}

	if werr := bench.WriteCSV(*csvPath, csv, out); werr != nil {
		return werr
	}
	fmt.Fprintln(out, client.Ledger())
	if pe != nil {
		// The sweep completed and rendered, but not cleanly: say how many
		// cells are bad and exit distinctly (see exitCode).
		fmt.Fprintf(out, "studyctl: %d point error(s) recorded in the sweep\n", pe.Count)
		return err
	}
	return nil
}

// runHealth probes the server.
func runHealth(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("studyctl health", flag.ContinueOnError)
	server := fs.String("server", "", "daosd address (host:port or http:// URL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("studyctl: -server is required")
	}
	if err := studysvc.NewClient(*server).Health(context.Background()); err != nil {
		return err
	}
	fmt.Fprintln(out, "ok")
	return nil
}

// runStats snapshots the server's scheduler, fleet, and cache counters.
func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("studyctl stats", flag.ContinueOnError)
	server := fs.String("server", "", "daosd address (host:port or http:// URL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("studyctl: -server is required")
	}
	st, err := studysvc.NewClient(*server).Stats(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workers: %d\n", st.Workers)
	fmt.Fprintf(out, "retried jobs: %d\n", st.Retries)
	for _, m := range st.Fleet {
		fmt.Fprintf(out, "  worker %-32s %-4s points=%d failures=%d probes=%d readmissions=%d\n",
			m.Name, m.State, m.Points, m.Failures, m.Probes, m.Readmissions)
	}
	if st.Cache != nil {
		// Stats.String carries its own "cache:" prefix (and the remote-tier
		// counters when a shared tier is in play).
		fmt.Fprintln(out, st.Cache.String())
	}
	if d := st.Durability; d != nil {
		fmt.Fprintf(out, "durability: %d journaled batch(es), %d live; recovered %d batch(es) (%d points replayed, %d re-enqueued); %d resumed stream(s)\n",
			d.JournaledBatches, d.LiveBatches, d.RecoveredBatches, d.ReplayedPoints, d.ReenqueuedPoints, d.ResumedStreams)
		if d.JournalErrors > 0 {
			fmt.Fprintf(out, "durability: %d journal error(s)\n", d.JournalErrors)
		}
	}
	return nil
}
