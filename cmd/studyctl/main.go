// Command studyctl is the client for a daosd study server. Its submit
// subcommand routes the paper's figure sweeps through the server — the
// same grids cmd/figures runs in-process — streaming per-point progress as
// results land and rendering the identical tables, claim checks, and CSV.
//
//	studyctl submit -server 127.0.0.1:9464                 # both figures
//	studyctl submit -server :9464 -quick -fig 1 -progress  # stream Fig. 1 points
//	studyctl submit -server :9464 -csv out.csv             # dump raw series
//	studyctl health -server :9464                          # readiness probe
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"daosim/internal/bench"
	"daosim/internal/studysvc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one studyctl invocation, writing human output to out.
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("studyctl: usage: studyctl submit|health -server host:port [flags]")
	}
	switch args[0] {
	case "submit":
		return runSubmit(args[1:], out)
	case "health":
		return runHealth(args[1:], out)
	default:
		return fmt.Errorf("studyctl: unknown subcommand %q (want submit or health)", args[0])
	}
}

// runSubmit drives the figure sweeps through the server.
func runSubmit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("studyctl submit", flag.ContinueOnError)
	var (
		server   = fs.String("server", "", "daosd address (host:port or http:// URL)")
		quick    = fs.Bool("quick", false, "reduced node sweep")
		fig      = fs.Int("fig", 0, "run only this figure (1 or 2); 0 = both")
		csvPath  = fs.String("csv", "", "write raw series CSV to this file")
		progress = fs.Bool("progress", false, "print each point as it streams back")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("studyctl: -server is required")
	}

	client := studysvc.NewClient(*server)
	if *progress {
		client.OnPoint = func(sp studysvc.StreamPoint) {
			mark := ""
			if sp.CacheHit {
				mark = "  (cache)"
			}
			if sp.Err != "" {
				mark = "  ERROR: " + sp.Err
			}
			fmt.Fprintf(out, "  point study=%d series=%d nodes=%d write=%.2f read=%.2f GiB/s%s\n",
				sp.Study, sp.Series, sp.Nodes, sp.WriteGiBs, sp.ReadGiBs, mark)
		}
	}
	opts := bench.Options{Runner: client, Scale: bench.Full}
	if *quick {
		opts.Scale = bench.Quick
	}

	csv, err := bench.RunFigures(opts, *fig, out)
	if err != nil {
		return err
	}

	if err := bench.WriteCSV(*csvPath, csv, out); err != nil {
		return err
	}
	fmt.Fprintln(out, client.Ledger())
	return nil
}

// runHealth probes the server.
func runHealth(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("studyctl health", flag.ContinueOnError)
	server := fs.String("server", "", "daosd address (host:port or http:// URL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("studyctl: -server is required")
	}
	if err := studysvc.NewClient(*server).Health(context.Background()); err != nil {
		return err
	}
	fmt.Fprintln(out, "ok")
	return nil
}
