// Command daosctl is an administrative walkthrough CLI in the style of the
// dmg/daos tools: it boots the simulated cluster and executes a small
// scripted session — pool and container management, filesystem operations
// through DFS, a failure injection with layout remap — printing each step.
//
//	daosctl            # run the default session
//	daosctl -failures  # include the engine-exclusion scenario
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/placement"
	"daosim/internal/sim"
	"daosim/internal/svc"
)

func main() {
	failures := flag.Bool("failures", false, "include the engine failure scenario")
	flag.Parse()
	if err := run(os.Stdout, *failures); err != nil {
		log.Fatal(err)
	}
}

// run boots the testbed and executes the scripted session, writing the
// walkthrough to out. Split from main so the session is testable: the smoke
// test drives it against a buffer and asserts the step markers.
func run(out io.Writer, failures bool) (err error) {
	tb := cluster.New(cluster.NEXTGenIO())
	defer tb.Shutdown()
	client := tb.NewClient(tb.ClientNode(0), 1)

	tb.Run(func(p *sim.Proc) {
		err = session(p, out, tb, client, failures)
	})
	return err
}

// session is the scripted walkthrough, executed inside the simulation.
func session(p *sim.Proc, out io.Writer, tb *cluster.Testbed, client *daos.Client, failures bool) error {
	step := stepper{out: out}

	step.do("dmg pool create --label tank (16 engines, 24 TiB SCM)")
	pool, err := client.CreatePool(p, "tank")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "      UUID %s, %d engines\n", pool.Info.UUID, len(pool.Info.Targets))

	step.do("daos container create tank/home --type POSIX --oclass S2")
	ct, err := pool.CreateContainer(p, "home", daos.ContProps{Class: placement.S2})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "      UUID %s\n", ct.UUID)

	step.do("daos pool set-attr tank owner epcc")
	admin := svc.NewClient(tb.Service, tb.ClientNode(0))
	if _, err := admin.Execute(p, svc.Command{Op: svc.OpSetAttr, Pool: "tank", Key: "owner", Value: "epcc"}); err != nil {
		return err
	}

	step.do("mount DFS and populate a namespace")
	fsys, err := dfs.Mount(p, ct)
	if err != nil {
		return err
	}
	for _, dir := range []string{"/projects/climate", "/projects/astro", "/scratch"} {
		if err := fsys.MkdirAll(p, dir); err != nil {
			return err
		}
	}
	f, err := fsys.Create(p, "/projects/climate/era5.grib", dfs.CreateOpts{Class: placement.SX})
	if err != nil {
		return err
	}
	if err := f.WriteAt(p, 0, make([]byte, 8<<20)); err != nil {
		return err
	}

	step.do("ls -l /projects")
	infos, err := fsys.ReadDir(p, "/projects")
	if err != nil {
		return err
	}
	for _, info := range infos {
		kind := "d"
		if info.Type == dfs.TypeFile {
			kind = "-"
		}
		fmt.Fprintf(out, "      %s %-12s\n", kind, info.Name)
	}

	step.do("stat /projects/climate/era5.grib")
	info, err := fsys.Stat(p, "/projects/climate/era5.grib")
	if err != nil {
		return err
	}
	cls, _ := placement.LookupClass(info.Class)
	fmt.Fprintf(out, "      size %d bytes, class %s, chunk %d KiB\n", info.Size, cls.Name, info.Chunk>>10)

	if failures {
		step.do("failure injection: exclude engine 3")
		tb.ExcludeEngine(3)
		fmt.Fprintf(out, "      pool map version now %d, %d targets up\n",
			tb.PoolMap().Version, len(tb.PoolMap().UpTargets()))

		step.do("write through the degraded map (layouts recompute)")
		g, err := fsys.Create(p, "/scratch/degraded.dat", dfs.CreateOpts{Class: placement.S2})
		if err != nil {
			return err
		}
		if err := g.WriteAt(p, 0, make([]byte, 1<<20)); err != nil {
			return err
		}
		fmt.Fprintln(out, "      write landed on live targets only")

		step.do("reintegrate engine 3")
		tb.ReintegrateEngine(3)
		fmt.Fprintf(out, "      pool map version now %d, %d targets up\n",
			tb.PoolMap().Version, len(tb.PoolMap().UpTargets()))
	}

	step.do("daos container list tank")
	res, err := admin.Execute(p, svc.Command{Op: svc.OpListConts, Pool: "tank"})
	if err != nil {
		return err
	}
	for _, name := range res.List {
		fmt.Fprintf(out, "      %s\n", name)
	}

	fmt.Fprintf(out, "\nsession complete at virtual time %v\n", p.Now())
	return nil
}

type stepper struct {
	out io.Writer
	n   int
}

func (s *stepper) do(what string) {
	s.n++
	fmt.Fprintf(s.out, "\n[%02d] %s\n", s.n, what)
}
