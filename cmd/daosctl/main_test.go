package main

import (
	"strings"
	"testing"
)

// The smoke tests pin the scripted walkthrough end to end: every step of
// the default session (and the failure-injection scenario) must execute
// without error and print its marker, so a regression anywhere along the
// svc/raft/placement/DFS path this session exercises cannot rot silently.

// steps extracts the "[NN] title" step markers in print order.
func steps(out string) []string {
	var got []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "[") {
			got = append(got, line)
		}
	}
	return got
}

func TestDefaultSession(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, false); err != nil {
		t.Fatalf("default session failed: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()

	wantSteps := []string{
		"dmg pool create",
		"daos container create",
		"daos pool set-attr",
		"mount DFS",
		"ls -l /projects",
		"stat /projects/climate/era5.grib",
		"daos container list tank",
	}
	got := steps(out)
	if len(got) != len(wantSteps) {
		t.Fatalf("step count = %d, want %d:\n%s", len(got), len(wantSteps), out)
	}
	for i, want := range wantSteps {
		if !strings.Contains(got[i], want) {
			t.Errorf("step %d = %q, want it to mention %q", i+1, got[i], want)
		}
	}
	for _, marker := range []string{
		"UUID",                             // pool and container creation reported
		"class SX",                         // the era5.grib stat reports its class
		"session complete at virtual time", // the session ran to completion
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
	for _, entry := range []string{"climate", "astro"} {
		if !strings.Contains(out, entry) {
			t.Errorf("ls output missing %q:\n%s", entry, out)
		}
	}
	if strings.Contains(out, "exclude engine") {
		t.Error("default session ran the failure scenario")
	}
}

func TestFailureSession(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, true); err != nil {
		t.Fatalf("failure session failed: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()

	for _, marker := range []string{
		"failure injection: exclude engine 3",
		"write through the degraded map",
		"write landed on live targets only",
		"reintegrate engine 3",
		"session complete at virtual time",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
	// The pool map version must be reported twice (exclusion, then
	// reintegration), and the session must still list containers after.
	if strings.Count(out, "pool map version now") != 2 {
		t.Errorf("pool map version not reported for both transitions:\n%s", out)
	}
	if got := steps(out); len(got) != 10 {
		t.Errorf("failure session step count = %d, want 10:\n%s", len(got), out)
	}
}
