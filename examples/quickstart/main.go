// Command quickstart is the minimal end-to-end walkthrough of the library:
// boot a simulated NEXTGenIO-class cluster, create a pool and container,
// and touch every interface level the paper studies — the native KV and
// array APIs, the DFS filesystem, and a POSIX file through a DFuse mount —
// verifying data through each and printing the virtual time each path cost.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

func main() {
	tb := cluster.New(cluster.NEXTGenIO())
	client := tb.NewClient(tb.ClientNode(0), 1)

	tb.Run(func(p *sim.Proc) {
		// 1. Pool and container via the Raft-replicated pool service.
		pool, err := client.CreatePool(p, "quickstart-pool")
		if err != nil {
			log.Fatal(err)
		}
		ct, err := pool.CreateContainer(p, "quickstart-cont", daos.ContProps{Class: placement.S2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pool %s / container %s ready at t=%v\n", pool.Info.UUID, ct.UUID, p.Now())

		// 2. Native KV API.
		t0 := p.Now()
		kv, err := ct.OpenKV(p, ct.AllocOID(placement.SX))
		if err != nil {
			log.Fatal(err)
		}
		if err := kv.Put(p, "greeting", []byte("hello object world")); err != nil {
			log.Fatal(err)
		}
		v, err := kv.Get(p, "greeting")
		if err != nil || string(v) != "hello object world" {
			log.Fatalf("kv round trip: %q, %v", v, err)
		}
		fmt.Printf("KV put+get           took %8v\n", p.Now()-t0)

		// 3. Native array API: 8 MiB striped over two targets (S2).
		t0 = p.Now()
		arr, err := ct.OpenArray(p, ct.AllocOID(placement.S2))
		if err != nil {
			log.Fatal(err)
		}
		payload := bytes.Repeat([]byte("daos"), 2<<20) // 8 MiB
		if err := arr.Write(p, 0, payload); err != nil {
			log.Fatal(err)
		}
		back, err := arr.Read(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(back, payload) {
			log.Fatal("array round trip failed")
		}
		fmt.Printf("array 8 MiB w+r      took %8v\n", p.Now()-t0)

		// 4. DFS: the filesystem interface.
		t0 = p.Now()
		fsys, err := dfs.Mount(p, ct)
		if err != nil {
			log.Fatal(err)
		}
		if err := fsys.MkdirAll(p, "/demo/data"); err != nil {
			log.Fatal(err)
		}
		f, err := fsys.Create(p, "/demo/data/field.bin", dfs.CreateOpts{Class: placement.SX})
		if err != nil {
			log.Fatal(err)
		}
		if err := f.WriteAt(p, 0, payload); err != nil {
			log.Fatal(err)
		}
		size, _ := f.Size(p)
		fmt.Printf("DFS 8 MiB write      took %8v (file size %d)\n", p.Now()-t0, size)

		// 5. POSIX through the DFuse mount: same file, kernel-path costs.
		t0 = p.Now()
		mount := dfuse.NewMount(tb.Sim, tb.ClientNode(0), fsys, dfuse.DefaultCosts())
		fd, err := mount.Open(p, "/demo/data/field.bin", dfuse.O_RDWR, dfs.CreateOpts{})
		if err != nil {
			log.Fatal(err)
		}
		got, err := fd.Pread(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			log.Fatal("dfuse read mismatch")
		}
		fd.Close(p)
		fmt.Printf("DFuse 8 MiB read     took %8v (vs DFS direct above)\n", p.Now()-t0)

		fmt.Printf("\ntotal virtual time: %v\n", p.Now())
	})
	_ = time.Now
}
