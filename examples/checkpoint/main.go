// Command checkpoint demonstrates application checkpoint/restart through
// collective MPI-I/O on a shared DFS-backed file: every rank owns an
// interleaved slice of the solver state, writes it with a two-phase
// collective (node aggregators coalesce the strided pattern), then the job
// "fails", restarts, and restores its state with a collective read,
// verifying every byte.
package main

import (
	"bytes"
	"fmt"
	"log"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/fabric"
	"daosim/internal/mpi"
	"daosim/internal/mpiio"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

const (
	nodes    = 4
	ppn      = 4
	sliceKiB = 256 // per-rank state per stripe
	stripes  = 8   // interleaved stripes per rank
)

// state synthesizes rank r's solver state for stripe s.
func state(r, s int) []byte {
	out := make([]byte, sliceKiB<<10)
	for i := range out {
		out[i] = byte(r*31 + s*7 + i%251)
	}
	return out
}

func main() {
	tb := cluster.New(cluster.NEXTGenIO())
	tb.Run(func(p *sim.Proc) {
		admin := tb.NewClient(tb.ClientNode(0), 999)
		pool, err := admin.CreatePool(p, "ckpt-pool")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := pool.CreateContainer(p, "ckpt", daos.ContProps{Class: placement.SX}); err != nil {
			log.Fatal(err)
		}

		var rankNodes []*fabric.Node
		for r := 0; r < nodes*ppn; r++ {
			rankNodes = append(rankNodes, tb.ClientNode(r/ppn))
		}
		world := mpi.NewWorld(tb.Sim, tb.Fabric, rankNodes)

		mountFS := func(cp *sim.Proc, r *mpi.Rank, uid uint32) *dfs.FS {
			cl := tb.NewClient(r.Node(), uid+uint32(r.ID()))
			pl, err := cl.Connect(cp, "ckpt-pool")
			if err != nil {
				log.Fatal(err)
			}
			ct, err := pl.OpenContainer(cp, "ckpt")
			if err != nil {
				log.Fatal(err)
			}
			fsys, err := dfs.Mount(cp, ct)
			if err != nil {
				log.Fatal(err)
			}
			return fsys
		}

		sliceBytes := int64(sliceKiB << 10)
		ranks := nodes * ppn
		hints := mpiio.DefaultHints(ppn)

		// --- Checkpoint: interleaved collective write.
		writeSpan := world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			fsys := mountFS(cp, r, 1000)
			f, err := mpiio.OpenDFS(cp, r, fsys, "/ckpt-0001.dat", true,
				dfs.CreateOpts{Class: placement.SX}, hints)
			if err != nil {
				log.Fatal(err)
			}
			for s := 0; s < stripes; s++ {
				off := (int64(s)*int64(ranks) + int64(r.ID())) * sliceBytes
				if err := f.WriteAtAll(cp, off, state(r.ID(), s)); err != nil {
					log.Fatal(err)
				}
			}
			if err := f.Close(cp); err != nil {
				log.Fatal(err)
			}
		})

		// --- Restart: a new job restores and verifies its slices.
		var mismatches int
		readSpan := world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			fsys := mountFS(cp, r, 2000)
			f, err := mpiio.OpenDFS(cp, r, fsys, "/ckpt-0001.dat", false, dfs.CreateOpts{}, hints)
			if err != nil {
				log.Fatal(err)
			}
			for s := 0; s < stripes; s++ {
				off := (int64(s)*int64(ranks) + int64(r.ID())) * sliceBytes
				got, err := f.ReadAtAll(cp, off, sliceBytes)
				if err != nil {
					log.Fatal(err)
				}
				if !bytes.Equal(got, state(r.ID(), s)) {
					mismatches++
				}
			}
			f.Close(cp)
		})

		total := float64(int64(ranks*stripes) * sliceBytes)
		fmt.Printf("checkpoint/restart on %d ranks, %d x %d KiB interleaved stripes per rank\n",
			ranks, stripes, sliceKiB)
		fmt.Printf("  checkpoint (collective write): %10v  (%6.2f GiB/s)\n", writeSpan, total/writeSpan.Seconds()/(1<<30))
		fmt.Printf("  restart    (collective read):  %10v  (%6.2f GiB/s)\n", readSpan, total/readSpan.Seconds()/(1<<30))
		if mismatches == 0 {
			fmt.Println("  state verified: every byte restored correctly")
		} else {
			fmt.Printf("  VERIFICATION FAILED: %d slices corrupt\n", mismatches)
		}
	})
}
