// Command kvstore exercises the native DAOS KV object API — the lowest-
// level interface the paper's future work points at — including snapshot
// reads, asynchronous updates through an event queue, and a small-object
// workload (many KiB-sized values) of the kind that "severely stresses the
// metadata functionality" of parallel filesystems (paper §I) but maps
// naturally onto an object store.
package main

import (
	"fmt"
	"log"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/placement"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

func main() {
	tb := cluster.New(cluster.NEXTGenIO())
	client := tb.NewClient(tb.ClientNode(0), 1)

	tb.Run(func(p *sim.Proc) {
		pool, err := client.CreatePool(p, "kv-pool")
		if err != nil {
			log.Fatal(err)
		}
		ct, err := pool.CreateContainer(p, "kv", daos.ContProps{Class: placement.SX})
		if err != nil {
			log.Fatal(err)
		}
		kv, err := ct.OpenKV(p, ct.AllocOID(placement.SX))
		if err != nil {
			log.Fatal(err)
		}

		// 1. Small-object ingest: 512 x 4 KiB values, synchronous.
		value := make([]byte, 4<<10)
		start := p.Now()
		for i := 0; i < 512; i++ {
			if err := kv.Put(p, fmt.Sprintf("obj.%06d", i), value); err != nil {
				log.Fatal(err)
			}
		}
		syncSpan := p.Now() - start
		fmt.Printf("synchronous ingest: 512 x 4 KiB in %v (%.0f ops/s)\n",
			syncSpan, 512/syncSpan.Seconds())

		// 2. The same ingest through an event queue with 16 in-flight ops
		// (DAOS non-blocking I/O).
		start = p.Now()
		eq := client.NewEventQueue(16)
		for i := 0; i < 512; i++ {
			key := fmt.Sprintf("async.%06d", i)
			eq.Submit(p, func(cp *sim.Proc) error { return kv.Put(cp, key, value) })
		}
		if err := eq.Wait(p); err != nil {
			log.Fatal(err)
		}
		asyncSpan := p.Now() - start
		fmt.Printf("async ingest (EQ):  512 x 4 KiB in %v (%.0f ops/s, %.1fx faster)\n",
			asyncSpan, 512/asyncSpan.Seconds(), syncSpan.Seconds()/asyncSpan.Seconds())

		// 3. Snapshot isolation: capture an epoch, overwrite, read both.
		if err := kv.Put(p, "config", []byte("v1")); err != nil {
			log.Fatal(err)
		}
		snapshot := vos.Epoch(p.Now().Nanoseconds())
		p.Sleep(time.Millisecond)
		if err := kv.Put(p, "config", []byte("v2")); err != nil {
			log.Fatal(err)
		}
		now, _ := kv.Get(p, "config")
		then, _ := kv.GetAt(p, "config", snapshot)
		fmt.Printf("snapshot read: latest=%q, at-epoch=%q\n", now, then)

		// 4. Enumerate a prefix of the namespace.
		keys, err := kv.List(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("catalogue holds %d keys (first %q, last %q)\n",
			len(keys), keys[0], keys[len(keys)-1])
	})
}
