// Command weatherfields models the paper's motivating domain: numerical
// weather prediction I/O at ECMWF (refs [15][20] of the paper). A time-
// critical forecast writes many medium-sized meteorological fields per
// output step, each keyed by its metadata (parameter, level, step) — an
// object-store-friendly pattern that stresses metadata on POSIX
// filesystems.
//
// The example runs the same field-output workload twice — through the
// native DAOS KV+array APIs and through the DFS file API — and compares
// virtual-time cost, echoing the paper's conclusion that file APIs on DAOS
// remain competitive for bulk I/O.
package main

import (
	"fmt"
	"log"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/fabric"
	"daosim/internal/mpi"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

const (
	writerNodes   = 4
	ppn           = 4
	fieldsPerStep = 8       // parameters (t, u, v, q, ...) per rank per step
	steps         = 3       // forecast output steps
	fieldSize     = 2 << 20 // 2 MiB per field (a global grid slice)
)

func main() {
	tb := cluster.New(cluster.NEXTGenIO())

	tb.Run(func(p *sim.Proc) {
		admin := tb.NewClient(tb.ClientNode(0), 999)
		pool, err := admin.CreatePool(p, "nwp-pool")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := pool.CreateContainer(p, "fdb", daos.ContProps{Class: placement.S2}); err != nil {
			log.Fatal(err)
		}

		var rankNodes []*fabric.Node
		for r := 0; r < writerNodes*ppn; r++ {
			rankNodes = append(rankNodes, tb.ClientNode(r/ppn))
		}
		world := mpi.NewWorld(tb.Sim, tb.Fabric, rankNodes)

		// --- Native object API: one shared KV catalogue + one array object
		// per field, as the ECMWF FDB-over-DAOS prototypes do.
		native := world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			cl := tb.NewClient(r.Node(), uint32(100+r.ID()))
			pl, err := cl.Connect(cp, "nwp-pool")
			if err != nil {
				log.Fatal(err)
			}
			ct, err := pl.OpenContainer(cp, "fdb")
			if err != nil {
				log.Fatal(err)
			}
			idx, err := ct.OpenKV(cp, placement.EncodeOID(placement.SX, 0, 7)) // well-known catalogue
			if err != nil {
				log.Fatal(err)
			}
			field := make([]byte, fieldSize)
			for s := 0; s < steps; s++ {
				for f := 0; f < fieldsPerStep; f++ {
					key := fmt.Sprintf("param=%d/step=%d/rank=%d", f, s, r.ID())
					arr, err := ct.OpenArray(cp, ct.AllocOID(placement.S2))
					if err != nil {
						log.Fatal(err)
					}
					if err := arr.Write(cp, 0, field); err != nil {
						log.Fatal(err)
					}
					if err := idx.Put(cp, key, []byte(arr.Obj.OID.String())); err != nil {
						log.Fatal(err)
					}
				}
				r.Barrier(cp) // output step boundary
			}
		})

		// --- File API: one DFS file per field under a step directory.
		fileAPI := world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			cl := tb.NewClient(r.Node(), uint32(200+r.ID()))
			pl, err := cl.Connect(cp, "nwp-pool")
			if err != nil {
				log.Fatal(err)
			}
			ct, err := pl.OpenContainer(cp, "fdb")
			if err != nil {
				log.Fatal(err)
			}
			fsys, err := dfs.Mount(cp, ct)
			if err != nil {
				log.Fatal(err)
			}
			field := make([]byte, fieldSize)
			for s := 0; s < steps; s++ {
				dir := fmt.Sprintf("/step.%03d", s)
				if r.ID() == 0 {
					if err := fsys.MkdirAll(cp, dir); err != nil {
						log.Fatal(err)
					}
				}
				r.Barrier(cp)
				for f := 0; f < fieldsPerStep; f++ {
					path := fmt.Sprintf("%s/param%02d.rank%03d", dir, f, r.ID())
					file, err := fsys.Create(cp, path, dfs.CreateOpts{Class: placement.S2})
					if err != nil {
						log.Fatal(err)
					}
					if err := file.WriteAt(cp, 0, field); err != nil {
						log.Fatal(err)
					}
					file.Close(cp)
				}
				r.Barrier(cp)
			}
		})

		ranks := writerNodes * ppn
		total := float64(int64(ranks*fieldsPerStep*steps) * fieldSize)
		fmt.Printf("NWP field output: %d ranks x %d steps x %d fields x %d MiB\n",
			ranks, steps, fieldsPerStep, fieldSize>>20)
		fmt.Printf("  native KV+array: %10v  (%6.2f GiB/s)\n", native, total/native.Seconds()/(1<<30))
		fmt.Printf("  DFS file API:    %10v  (%6.2f GiB/s)\n", fileAPI, total/fileAPI.Seconds()/(1<<30))
		fmt.Println()
		fmt.Println("File-API overhead comes from per-file directory records; the bulk")
		fmt.Println("data path is identical — the paper's \"file APIs can still provide")
		fmt.Println("good performance\" conclusion.")
	})
}
