package cluster

import (
	"strings"
	"testing"
	"time"

	"daosim/internal/sim"
)

// TestInjectFaultsEmptyPlan proves the zero-value plan is a true no-op:
// no handle, no error, nothing scheduled.
func TestInjectFaultsEmptyPlan(t *testing.T) {
	tb := New(Small())
	defer tb.Shutdown()
	tb.Run(func(p *sim.Proc) {
		fr, err := tb.InjectFaults(p, nil, RebuildConfig{RateGiBs: 99})
		if fr != nil || err != nil {
			t.Errorf("empty plan: fr=%v err=%v, want nil, nil", fr, err)
		}
	})
}

// TestInjectFaultsValidation proves malformed plans are rejected before
// anything is scheduled.
func TestInjectFaultsValidation(t *testing.T) {
	tb := New(Small())
	defer tb.Shutdown()
	tb.Run(func(p *sim.Proc) {
		for _, tc := range []struct {
			name string
			ev   FaultEvent
			want string
		}{
			{"negative at", FaultEvent{At: -1, Kind: KillEngine}, "negative At"},
			{"unknown kind", FaultEvent{Kind: FaultKind(7)}, "unknown kind"},
			{"engine range", FaultEvent{Kind: KillEngine, Engine: len(tb.Engines)}, "out of range"},
		} {
			fr, err := tb.InjectFaults(p, []FaultEvent{tc.ev}, RebuildConfig{})
			if fr != nil || err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: fr=%v err=%v", tc.name, fr, err)
			}
		}
	})
}

// TestFaultRunKillRestartWindow drives a kill/restart plan on an idle
// testbed with preloaded device bytes and checks the whole measurement:
// pool-map version steps, rebuild traffic, and the degraded window closing
// at the last event once rebuild streams have drained.
func TestFaultRunKillRestartWindow(t *testing.T) {
	tb := New(Small())
	defer tb.Shutdown()
	tb.Run(func(p *sim.Proc) {
		// Preload the victim so the kill has bytes to rebuild: Used() moves
		// via Alloc (capacity accounting), not Write (clock charging).
		if err := tb.Engines[0].Device().Alloc(6 << 20); err != nil {
			t.Fatal(err)
		}
		v0 := tb.PoolMap().Version
		fr, err := tb.InjectFaults(p, []FaultEvent{
			{At: 10 * time.Millisecond, Kind: KillEngine, Engine: 0},
			{At: 40 * time.Millisecond, Kind: RestartEngine, Engine: 0},
		}, RebuildConfig{RateGiBs: 1})
		if err != nil {
			t.Fatal(err)
		}
		p.Sleep(60 * time.Millisecond)
		if !tb.Engines[0].IsDown() {
			// restart must have brought it back
		} else {
			t.Error("engine 0 still down after restart")
		}
		if got, want := tb.PoolMap().Version-v0, 2*tb.Cfg.TargetsPerEngine; got != want {
			t.Errorf("map version steps = %d, want %d", got, want)
		}
		fr.Finish(p)
		rep := fr.Report()
		if rep.MapTransitions != 2*tb.Cfg.TargetsPerEngine {
			t.Errorf("MapTransitions = %d", rep.MapTransitions)
		}
		// 6 MiB of lost bytes must be re-streamed in full.
		if want := 6.0 / 1024; rep.RebuildGiB != want {
			t.Errorf("RebuildGiB = %v, want %v", rep.RebuildGiB, want)
		}
		// The window opens at the 10ms kill and closes no earlier than the
		// 40ms restart (the last planned event), well before the 60ms sleep
		// ended: recovery is 30ms-ish, not the whole run.
		if rep.RecoverySec < 0.030 || rep.RecoverySec > 0.050 {
			t.Errorf("RecoverySec = %v, want ~0.03", rep.RecoverySec)
		}
	})
}

// TestFaultRunClampsOpenWindow proves a kill with no restart measures a
// window that clamps at Finish time.
func TestFaultRunClampsOpenWindow(t *testing.T) {
	tb := New(Small())
	defer tb.Shutdown()
	tb.Run(func(p *sim.Proc) {
		fr, err := tb.InjectFaults(p, []FaultEvent{
			{At: 10 * time.Millisecond, Kind: KillEngine, Engine: 1},
		}, RebuildConfig{})
		if err != nil {
			t.Fatal(err)
		}
		p.Sleep(25 * time.Millisecond)
		fr.Finish(p)
		rep := fr.Report()
		if got := rep.RecoverySec; got != 0.015 {
			t.Errorf("RecoverySec = %v, want 0.015 (clamped at Finish)", got)
		}
		if rep.MapTransitions != tb.Cfg.TargetsPerEngine {
			t.Errorf("MapTransitions = %d", rep.MapTransitions)
		}
		if !tb.Engines[1].IsDown() {
			t.Error("engine 1 should stay down")
		}
	})
}

// TestFaultRunRebuildSkipsWithoutSurvivors proves rebuild needs a source
// and destination: killing all but one engine leaves no stream to run.
func TestFaultRunRebuildSkipsWithoutSurvivors(t *testing.T) {
	tb := New(Small())
	defer tb.Shutdown()
	tb.Run(func(p *sim.Proc) {
		for _, e := range tb.Engines {
			if err := e.Device().Alloc(1 << 20); err != nil {
				t.Fatal(err)
			}
		}
		var plan []FaultEvent
		for i := 1; i < len(tb.Engines); i++ {
			plan = append(plan, FaultEvent{At: time.Millisecond, Kind: KillEngine, Engine: i})
		}
		fr, err := tb.InjectFaults(p, plan, RebuildConfig{RateGiBs: 4})
		if err != nil {
			t.Fatal(err)
		}
		p.Sleep(20 * time.Millisecond)
		fr.Finish(p)
		// The first two kills leave >= 2 survivors and rebuild; the last
		// kill leaves one engine and must not schedule a stream (no panic,
		// no hang — reaching Finish is the assertion).
		if fr.Report().RebuildGiB <= 0 {
			t.Errorf("expected some rebuild traffic from the early kills, got %v", fr.Report().RebuildGiB)
		}
	})
}
