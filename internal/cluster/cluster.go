// Package cluster assembles the full simulated testbed in the shape of the
// NEXTGenIO system the paper benchmarks: dual-socket server nodes with one
// DAOS engine per socket (six 256 GiB Optane DCPMMs each, AppDirect
// interleaved), a dual-rail Omni-Path-class fabric, a Raft-replicated pool
// service on the first engines, and a set of client nodes.
package cluster

import (
	"fmt"
	"time"

	"daosim/internal/daos"
	"daosim/internal/engine"
	"daosim/internal/fabric"
	"daosim/internal/media"
	"daosim/internal/placement"
	"daosim/internal/sim"
	"daosim/internal/svc"
)

// Config sizes the testbed.
type Config struct {
	// ServerNodes is the number of storage server machines.
	ServerNodes int
	// EnginesPerNode is the DAOS engine count per server (one per socket).
	EnginesPerNode int
	// TargetsPerEngine is the VOS target count per engine.
	TargetsPerEngine int
	// DCPMMModules is the Optane module count per engine's interleave set.
	DCPMMModules int
	// ClientNodes is the number of compute nodes available to benchmarks.
	ClientNodes int
	// ServiceReplicas is the pool service replication factor.
	ServiceReplicas int
	// Fabric configures the interconnect.
	Fabric fabric.Config
	// EngineCosts is the server software cost model.
	EngineCosts engine.Costs
	// Seed drives all randomized choices.
	Seed uint64
}

// NEXTGenIO returns the paper's testbed: 8 servers x 2 engines, 16 client
// nodes.
func NEXTGenIO() Config {
	return Config{
		ServerNodes:      8,
		EnginesPerNode:   2,
		TargetsPerEngine: 8,
		DCPMMModules:     6,
		ClientNodes:      16,
		ServiceReplicas:  3,
		Fabric:           fabric.DefaultConfig(),
		EngineCosts:      engine.DefaultCosts(),
		Seed:             2023,
	}
}

// Small returns a reduced testbed for unit tests (2 servers x 2 engines,
// 2 clients).
func Small() Config {
	cfg := NEXTGenIO()
	cfg.ServerNodes = 2
	cfg.ClientNodes = 2
	cfg.TargetsPerEngine = 4
	return cfg
}

// Testbed is a running cluster.
type Testbed struct {
	Cfg     Config
	Sim     *sim.Sim
	Fabric  *fabric.Fabric
	Servers []*fabric.Node
	Engines []*engine.Engine
	Clients []*fabric.Node
	Service *svc.Service

	pmap *placement.PoolMap
}

// New builds and boots a testbed on a fresh simulator, waiting until the
// pool service is ready.
func New(cfg Config) *Testbed {
	return NewOn(sim.New(cfg.Seed), cfg)
}

// NewOn builds and boots a testbed on an existing simulator — typically one
// recycled across points through a sim.Arena, already seeded by the caller.
// The testbed's behavior is byte-identical on a fresh and a recycled
// simulator; that is the Arena's contract.
func NewOn(s *sim.Sim, cfg Config) *Testbed {
	f := fabric.New(s, cfg.Fabric)
	tb := &Testbed{Cfg: cfg, Sim: s, Fabric: f}

	numEngines := cfg.ServerNodes * cfg.EnginesPerNode
	tb.pmap = placement.NewPoolMap(numEngines, cfg.TargetsPerEngine, cfg.EnginesPerNode)

	for n := 0; n < cfg.ServerNodes; n++ {
		node := f.AddNode(fmt.Sprintf("server%02d", n))
		tb.Servers = append(tb.Servers, node)
		for e := 0; e < cfg.EnginesPerNode; e++ {
			id := n*cfg.EnginesPerNode + e
			eng := engine.New(s, node, engine.Config{
				ID:      id,
				Targets: cfg.TargetsPerEngine,
				Media:   media.DCPMMInterleaved(fmt.Sprintf("e%d/scm", id), cfg.DCPMMModules),
				Costs:   cfg.EngineCosts,
			})
			tb.Engines = append(tb.Engines, eng)
		}
	}
	for c := 0; c < cfg.ClientNodes; c++ {
		tb.Clients = append(tb.Clients, f.AddNode(fmt.Sprintf("client%02d", c)))
	}

	// The pool service replicas live on the first ServiceReplicas server
	// nodes, as DAOS hosts its management service on engines.
	replicas := cfg.ServiceReplicas
	if replicas > cfg.ServerNodes {
		replicas = cfg.ServerNodes
	}
	tb.Service = svc.Start(s, f, tb.Servers[:replicas])
	if !tb.Service.WaitReady(30 * time.Second) {
		panic("cluster: pool service failed to elect a leader")
	}
	return tb
}

// --- daos.Registry implementation ---

// EngineNode returns the fabric node hosting engine id.
func (tb *Testbed) EngineNode(id int) *fabric.Node {
	return tb.Engines[id].Node()
}

// PoolMap returns the shared cluster pool map.
func (tb *Testbed) PoolMap() *placement.PoolMap { return tb.pmap }

// TargetsPerEngine returns the per-engine target count.
func (tb *Testbed) TargetsPerEngine() int { return tb.Cfg.TargetsPerEngine }

var _ daos.Registry = (*Testbed)(nil)

// NewClient creates a DAOS client on the given client node. id must be
// unique per client (use the rank).
func (tb *Testbed) NewClient(node *fabric.Node, id uint32) *daos.Client {
	poolClient := svc.NewClient(tb.Service, node)
	return daos.NewClient(tb.Sim, tb.Fabric, node, tb, poolClient, id)
}

// ClientNode returns client node i (wrapping if i exceeds the node count,
// so ranks map round-robin onto nodes).
func (tb *Testbed) ClientNode(i int) *fabric.Node {
	return tb.Clients[i%len(tb.Clients)]
}

// ExcludeEngine fails an engine: RPCs error and the pool map excludes its
// targets, so clients recompute layouts (failure injection).
func (tb *Testbed) ExcludeEngine(id int) {
	tb.Engines[id].SetDown(true)
	tb.pmap.ExcludeEngine(id)
}

// ReintegrateEngine brings an engine back.
func (tb *Testbed) ReintegrateEngine(id int) {
	tb.Engines[id].SetDown(false)
	for _, t := range tb.pmap.Targets {
		if t.Engine == id {
			tb.pmap.SetTargetState(t.ID, true)
		}
	}
}

// Run executes body as the simulation's main process and drives virtual
// time until it finishes, then quiesces the pool service and drains
// remaining events. It returns the virtual time consumed by body.
func (tb *Testbed) Run(body func(p *sim.Proc)) time.Duration {
	start := tb.Sim.Now()
	done := false
	var doneAt time.Duration
	tb.Sim.Spawn("main", func(p *sim.Proc) {
		body(p)
		done = true
		doneAt = p.Now()
	})
	for !done {
		if tb.Sim.RunUntil(tb.Sim.Now() + time.Second) {
			break // queue drained; if body is still blocked, that is a bug
		}
	}
	if !done {
		panic("cluster: main process never completed")
	}
	return doneAt - start
}

// Shutdown stops the pool service and drains every outstanding event so the
// simulator finishes cleanly.
func (tb *Testbed) Shutdown() {
	tb.Service.Stop()
	tb.Sim.Run()
}

// TotalMediaWrite returns bytes written across all engine devices.
func (tb *Testbed) TotalMediaWrite() int64 {
	var total int64
	for _, e := range tb.Engines {
		total += e.Device().WrBytes
	}
	return total
}

// TotalMediaRead returns bytes read across all engine devices.
func (tb *Testbed) TotalMediaRead() int64 {
	var total int64
	for _, e := range tb.Engines {
		total += e.Device().ReadBytes
	}
	return total
}
