package cluster

import (
	"fmt"
	"time"

	"daosim/internal/engine"
	"daosim/internal/sim"
)

// FaultKind enumerates the scheduled fault actions a FaultEvent can take.
type FaultKind int

const (
	// KillEngine fails an engine at the scheduled instant: its RPCs return
	// engine.ErrEngineDown, the pool map excludes its targets (one version
	// bump per target, so clients recompute layouts), and — with a rebuild
	// rate configured — the surviving engines start reconstructing the lost
	// capacity, charging their devices and fabric links while the workload
	// is still running.
	KillEngine FaultKind = iota + 1
	// RestartEngine re-admits a previously killed engine: RPCs succeed
	// again and its targets re-enter the pool map (one version bump per
	// target), so layouts recompute back to their original homes.
	RestartEngine
)

// String names the kind for tables and CSV.
func (k FaultKind) String() string {
	switch k {
	case KillEngine:
		return "kill"
	case RestartEngine:
		return "restart"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault. At is a virtual instant relative to
// the workload start (the moment the testbed's main process begins), so a
// plan is a pure function of the configuration — faults fire at the same
// virtual time on every host, which is what keeps fault sweeps
// deterministic (parallel==sequential, warm==cold).
type FaultEvent struct {
	At     time.Duration
	Kind   FaultKind
	Engine int
}

// RebuildConfig models the rebuild traffic a kill triggers. It is a
// traffic model, not data reconstruction: each surviving engine streams its
// share of the lost bytes (local media read → fabric transfer to a peer →
// peer media write) paced at RateGiBs, contending with client I/O for the
// same devices and links. Object data lost with the killed engine stays
// lost until the engine restarts (reads of lost shards return holes).
type RebuildConfig struct {
	// RateGiBs paces each surviving engine's rebuild stream in GiB/s.
	// Zero disables rebuild traffic entirely (the kill still happens).
	RateGiBs float64
	// ChunkSize is the per-transfer granularity in bytes (default 4 MiB).
	ChunkSize int64
}

// FaultReport is the degraded-mode measurement of one fault run.
type FaultReport struct {
	// DegradedGiBs is the client bandwidth (payload bytes served by engine
	// RPC handlers, read + write) during the degraded window: from the
	// first kill until the cluster restored (every planned event fired,
	// all rebuild streams drained, every engine back up), clamped to the
	// end of the workload.
	DegradedGiBs float64
	// RecoverySec is the degraded window's length in virtual seconds.
	RecoverySec float64
	// MapTransitions is the number of pool-map version steps the plan
	// caused (each excluded or restored target bumps the version once).
	MapTransitions int
	// RebuildGiB is the total rebuild traffic moved, in GiB.
	RebuildGiB float64
}

// FaultRun is one scheduled fault plan in flight on a testbed. Create it
// with Testbed.InjectFaults inside the Run body; call Finish when the
// workload body completes so open windows clamp at the measured end.
type FaultRun struct {
	tb   *Testbed
	rb   RebuildConfig
	plan []FaultEvent

	startVersion int

	killed      bool
	killAt      time.Duration // absolute virtual instant of the first kill
	bytesAtKill int64         // client payload bytes when the window opened

	pendingEvents   int // planned events that have not fired yet
	pendingRebuilds int // rebuild streams still moving bytes
	rebuildBytes    int64

	restored       bool
	restoredAt     time.Duration
	bytesAtRestore int64 // client payload bytes when the window closed

	finished bool
	report   FaultReport
}

// InjectFaults schedules plan on the testbed's simulator, each event at
// p.Now()+ev.At, and returns the run handle measuring the degraded window.
// A nil or empty plan returns (nil, nil) and touches nothing — a zero-value
// plan simulates byte-identically to no fault support at all.
func (tb *Testbed) InjectFaults(p *sim.Proc, plan []FaultEvent, rb RebuildConfig) (*FaultRun, error) {
	if len(plan) == 0 {
		return nil, nil
	}
	for i, ev := range plan {
		if ev.At < 0 {
			return nil, fmt.Errorf("cluster: fault %d: negative At %v", i, ev.At)
		}
		if ev.Kind != KillEngine && ev.Kind != RestartEngine {
			return nil, fmt.Errorf("cluster: fault %d: unknown kind %d", i, int(ev.Kind))
		}
		if ev.Engine < 0 || ev.Engine >= len(tb.Engines) {
			return nil, fmt.Errorf("cluster: fault %d: engine %d out of range [0,%d)", i, ev.Engine, len(tb.Engines))
		}
	}
	fr := &FaultRun{
		tb:            tb,
		rb:            rb,
		plan:          plan,
		startVersion:  tb.pmap.Version,
		pendingEvents: len(plan),
	}
	start := p.Now()
	for _, ev := range plan {
		ev := ev
		tb.Sim.At(start+ev.At, func() { fr.fire(ev) })
	}
	return fr, nil
}

// fire applies one scheduled event at its virtual instant.
func (fr *FaultRun) fire(ev FaultEvent) {
	now := fr.tb.Sim.Now()
	switch ev.Kind {
	case KillEngine:
		if !fr.killed {
			fr.killed = true
			fr.killAt = now
			fr.bytesAtKill = fr.tb.TotalClientBytes()
		}
		lost := fr.tb.Engines[ev.Engine].Device().Used()
		fr.tb.ExcludeEngine(ev.Engine)
		fr.startRebuild(lost)
	case RestartEngine:
		fr.tb.ReintegrateEngine(ev.Engine)
	}
	fr.pendingEvents--
	fr.restoreCheck(now)
}

// startRebuild fans the killed engine's lost bytes out across the surviving
// engines, one paced stream per survivor: read a chunk from local media,
// move it over the fabric to the next survivor, write it there. The streams
// run as ordinary sim processes, so they contend with client I/O on the
// devices and links — that contention is the degraded-mode effect.
func (fr *FaultRun) startRebuild(lost int64) {
	if fr.rb.RateGiBs <= 0 || lost <= 0 {
		return
	}
	var survivors []*engine.Engine
	for _, e := range fr.tb.Engines {
		if !e.IsDown() {
			survivors = append(survivors, e)
		}
	}
	if len(survivors) < 2 {
		return // rebuild needs a source and a destination
	}
	chunk := fr.rb.ChunkSize
	if chunk <= 0 {
		chunk = 4 << 20
	}
	share := lost / int64(len(survivors))
	rem := lost - share*int64(len(survivors))
	for i, src := range survivors {
		total := share
		if i == 0 {
			total += rem
		}
		if total <= 0 {
			continue
		}
		src, dst := src, survivors[(i+1)%len(survivors)]
		fr.pendingRebuilds++
		fr.tb.Sim.Spawn(fmt.Sprintf("rebuild/e%d", src.ID()), func(p *sim.Proc) {
			fr.stream(p, src, dst, total, chunk)
			fr.pendingRebuilds--
			fr.rebuildBytes += total
			fr.restoreCheck(p.Now())
		})
	}
}

// stream moves total bytes of rebuild traffic from src to dst in chunks,
// paced so the stream's effective rate never exceeds RateGiBs.
func (fr *FaultRun) stream(p *sim.Proc, src, dst *engine.Engine, total, chunk int64) {
	for moved := int64(0); moved < total; {
		n := chunk
		if total-moved < n {
			n = total - moved
		}
		t0 := p.Now()
		src.Device().Read(p, n)
		fr.tb.Fabric.Move(p, src.Node(), dst.Node(), n)
		dst.Device().Write(p, n)
		pace := time.Duration(float64(n) / (fr.rb.RateGiBs * float64(1<<30)) * float64(time.Second))
		if elapsed := p.Now() - t0; elapsed < pace {
			p.Sleep(pace - elapsed)
		}
		moved += n
	}
}

// restoreCheck closes the degraded window once every planned event has
// fired, every rebuild stream has drained, and every engine is back up. A
// plan that leaves an engine down never restores: the window stays open
// until Finish clamps it at the workload end.
func (fr *FaultRun) restoreCheck(now time.Duration) {
	if !fr.killed || fr.restored || fr.pendingEvents > 0 || fr.pendingRebuilds > 0 {
		return
	}
	for _, e := range fr.tb.Engines {
		if e.IsDown() {
			return
		}
	}
	fr.restored = true
	fr.restoredAt = now
	fr.bytesAtRestore = fr.tb.TotalClientBytes()
}

// Finish closes the measurement at the workload body's end: a window still
// open (restart never scheduled, rebuild still draining, events planned
// past the body) clamps to now. Call it exactly once, at the end of the
// Run body; events scheduled beyond it still fire during Shutdown's drain
// but are outside the measured window by construction.
func (fr *FaultRun) Finish(p *sim.Proc) {
	if fr.finished {
		return
	}
	fr.finished = true
	end := p.Now()
	if !fr.killed {
		// No kill fired inside the workload: there is no degraded window.
		fr.report.MapTransitions = fr.tb.pmap.Version - fr.startVersion
		return
	}
	if !fr.restored || fr.restoredAt > end {
		fr.restoredAt = end
		fr.bytesAtRestore = fr.tb.TotalClientBytes()
	}
	window := fr.restoredAt - fr.killAt
	degraded := fr.bytesAtRestore - fr.bytesAtKill
	fr.report.RecoverySec = window.Seconds()
	if secs := window.Seconds(); secs > 0 && degraded > 0 {
		fr.report.DegradedGiBs = float64(degraded) / float64(1<<30) / secs
	}
	fr.report.MapTransitions = fr.tb.pmap.Version - fr.startVersion
	fr.report.RebuildGiB = float64(fr.rebuildBytes) / float64(1<<30)
}

// Report returns the degraded-mode measurement. Valid after Finish.
func (fr *FaultRun) Report() FaultReport { return fr.report }

// TotalClientBytes sums the client payload bytes (update + fetch) served by
// every engine's RPC handlers. Rebuild traffic bypasses the handlers, so it
// never counts as client bandwidth.
func (tb *Testbed) TotalClientBytes() int64 {
	var total int64
	for _, e := range tb.Engines {
		total += e.ClientBytes()
	}
	return total
}
