package cluster

import (
	"testing"
	"time"

	"daosim/internal/sim"
)

func TestNEXTGenIOShape(t *testing.T) {
	cfg := NEXTGenIO()
	tb := New(cfg)
	if len(tb.Engines) != 16 {
		t.Fatalf("engines = %d, want 16", len(tb.Engines))
	}
	if len(tb.Servers) != 8 || len(tb.Clients) != 16 {
		t.Fatalf("servers/clients = %d/%d", len(tb.Servers), len(tb.Clients))
	}
	if got := len(tb.PoolMap().Targets); got != 128 {
		t.Fatalf("targets = %d, want 128", got)
	}
	// Engines 0 and 1 share server node 0's NIC.
	if tb.Engines[0].Node() != tb.Engines[1].Node() {
		t.Fatal("socket engines must share their server node")
	}
	if tb.Engines[1].Node() == tb.Engines[2].Node() {
		t.Fatal("engines on different servers share a node")
	}
}

func TestRunMeasuresVirtualTime(t *testing.T) {
	tb := New(Small())
	elapsed := tb.Run(func(p *sim.Proc) {
		p.Sleep(123 * time.Millisecond)
	})
	if elapsed != 123*time.Millisecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestExcludeReintegrate(t *testing.T) {
	tb := New(Small())
	v := tb.PoolMap().Version
	tb.ExcludeEngine(1)
	if tb.PoolMap().Version == v {
		t.Fatal("exclusion did not bump map version")
	}
	up := 0
	for _, tg := range tb.PoolMap().Targets {
		if tg.Up {
			up++
		}
	}
	if up != 3*tb.Cfg.TargetsPerEngine {
		t.Fatalf("up targets = %d", up)
	}
	tb.ReintegrateEngine(1)
	for _, tg := range tb.PoolMap().Targets {
		if !tg.Up {
			t.Fatal("target still down after reintegrate")
		}
	}
}

func TestShutdownDrains(t *testing.T) {
	tb := New(Small())
	tb.Run(func(p *sim.Proc) { p.Sleep(time.Millisecond) })
	tb.Shutdown() // must not hang or panic
}

func TestClientNodeWraps(t *testing.T) {
	tb := New(Small())
	if tb.ClientNode(0) != tb.ClientNode(2) {
		t.Fatal("rank 2 should wrap onto client node 0 with 2 nodes")
	}
}
