// Package ior reimplements the IOR parallel I/O benchmark over the
// simulated cluster: easy mode (file-per-process) and hard mode (single
// shared file), a configurable transfer/block/segment geometry, write and
// read phases with optional task reordering and data verification, and the
// four backends the paper exercises — POSIX (through DFuse), DFS (libdfs
// direct), MPI-I/O (through DFuse), and HDF5 (through DFuse).
//
// Reported bandwidths follow IOR's convention: aggregate data moved divided
// by the span from the first rank entering the phase to the last rank
// leaving it (open, transfers, fsync, and close all inside the window), max
// and mean over repetitions.
package ior

import (
	"errors"
	"fmt"
	"time"

	"encoding/binary"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/fabric"
	"daosim/internal/mpi"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// API selects the I/O backend.
type API string

// Backends, matching IOR's -a option (POSIX runs over the DFuse mount).
const (
	APIPosix API = "POSIX"
	APIDFS   API = "DFS"
	APIMPIIO API = "MPIIO"
	APIHDF5  API = "HDF5"
)

// Config is one IOR run configuration.
type Config struct {
	API API
	// FilePerProc selects easy mode (one file per rank); otherwise hard
	// mode (single shared file).
	FilePerProc bool
	// BlockSize is the contiguous bytes each rank owns per segment (-b).
	BlockSize int64
	// TransferSize is the bytes per I/O call (-t).
	TransferSize int64
	// Segments repeats the block pattern (-s).
	Segments int
	// Iterations repeats the whole test (-i); stats aggregate over them.
	Iterations int
	// DoWrite / DoRead select the phases (-w / -r).
	DoWrite, DoRead bool
	// Verify checks data contents during the read phase (-R).
	Verify bool
	// ReorderTasks makes ranks read data written by their neighbour (-C).
	ReorderTasks bool
	// Class is the DAOS object class for the test file(s).
	Class placement.ClassID
	// Collective uses collective MPI-I/O calls (-c, MPIIO only).
	Collective bool
	// RandomOffsets visits each rank's transfers in a deterministic
	// shuffled order (-z), the "more varied usage patterns" the paper's
	// SV points at. Incompatible with Collective (the shuffle desyncs the
	// ranks' collective call sequences).
	RandomOffsets bool
}

// Validate fills defaults and sanity-checks the configuration.
func (c *Config) Validate() error {
	if c.BlockSize <= 0 || c.TransferSize <= 0 {
		return errors.New("ior: block and transfer sizes must be positive")
	}
	if c.BlockSize%c.TransferSize != 0 {
		return errors.New("ior: block size must be a multiple of transfer size")
	}
	if c.Segments <= 0 {
		c.Segments = 1
	}
	if c.Iterations <= 0 {
		c.Iterations = 1
	}
	if !c.DoWrite && !c.DoRead {
		c.DoWrite, c.DoRead = true, true
	}
	if c.Class == placement.SAny {
		c.Class = placement.SX
	}
	if c.RandomOffsets && c.Collective {
		return errors.New("ior: random offsets cannot be combined with collective I/O")
	}
	switch c.API {
	case APIPosix, APIDFS, APIMPIIO, APIHDF5:
	default:
		return fmt.Errorf("ior: unknown API %q", c.API)
	}
	return nil
}

// Stats summarize one phase across iterations, in GiB/s.
type Stats struct {
	MaxGiBs  float64
	MinGiBs  float64
	MeanGiBs float64
	// Times are the per-iteration phase spans.
	Times []time.Duration
}

func (s *Stats) observe(gibs float64, span time.Duration) {
	if len(s.Times) == 0 {
		s.MaxGiBs, s.MinGiBs = gibs, gibs
	}
	if gibs > s.MaxGiBs {
		s.MaxGiBs = gibs
	}
	if gibs < s.MinGiBs {
		s.MinGiBs = gibs
	}
	n := float64(len(s.Times))
	s.MeanGiBs = (s.MeanGiBs*n + gibs) / (n + 1)
	s.Times = append(s.Times, span)
}

// Result is a completed run.
type Result struct {
	Config Config
	Ranks  int
	// TotalBytes is the aggregate data moved per phase per iteration.
	TotalBytes int64
	Write      Stats
	Read       Stats
	// VerifyErrors counts data check mismatches (0 when Verify passed).
	VerifyErrors int64
}

// Env carries the per-rank handles IOR runs need: an MPI world over the
// chosen client nodes, a pool, and per-rank DAOS clients. Each Run gets a
// fresh container so runs never see each other's data.
type Env struct {
	TB           *cluster.Testbed
	World        *mpi.World
	RanksPerNode int

	rankNodes []*fabric.Node
	clients   []*daos.Client
	admin     *daos.Client
	pool      *daos.Pool
	contSeq   int
}

// NewEnv builds an MPI world of nodes*ppn ranks on the testbed's first
// nodes client nodes, creating (or reusing) the benchmark pool. It must run
// inside tb.Run.
func NewEnv(p *sim.Proc, tb *cluster.Testbed, nodes, ppn int) (*Env, error) {
	if nodes > len(tb.Clients) {
		return nil, fmt.Errorf("ior: %d nodes requested, testbed has %d", nodes, len(tb.Clients))
	}
	if ppn <= 0 {
		return nil, errors.New("ior: ranks per node must be positive")
	}
	env := &Env{TB: tb, RanksPerNode: ppn}
	ranks := nodes * ppn
	for r := 0; r < ranks; r++ {
		env.rankNodes = append(env.rankNodes, tb.Clients[r/ppn])
	}
	env.World = mpi.NewWorld(tb.Sim, tb.Fabric, env.rankNodes)

	env.admin = tb.NewClient(tb.Clients[0], 0xFFFFFF)
	pool, err := env.admin.Connect(p, "ior-pool")
	if err != nil {
		pool, err = env.admin.CreatePool(p, "ior-pool")
		if err != nil {
			return nil, fmt.Errorf("ior: pool setup: %w", err)
		}
	}
	env.pool = pool
	for r := 0; r < ranks; r++ {
		env.clients = append(env.clients, tb.NewClient(env.rankNodes[r], uint32(r+1)))
	}
	return env, nil
}

// namespace is one run's fresh container with per-rank filesystem mounts
// and per-node dfuse daemons.
type namespace struct {
	fs     []*dfs.FS      // per rank
	mounts []*dfuse.Mount // per rank (shared between ranks on a node)
}

// newNamespace creates a fresh container and mounts it everywhere.
func (env *Env) newNamespace(p *sim.Proc, class placement.ClassID) (*namespace, error) {
	env.contSeq++
	label := fmt.Sprintf("ior-c%04d", env.contSeq)
	if _, err := env.pool.CreateContainer(p, label, daos.ContProps{Class: class}); err != nil {
		return nil, fmt.Errorf("ior: container: %w", err)
	}
	ns := &namespace{}
	mountByNode := make(map[*fabric.Node]*dfuse.Mount)
	for r, cl := range env.clients {
		pl, err := cl.Connect(p, "ior-pool")
		if err != nil {
			return nil, err
		}
		ct, err := pl.OpenContainer(p, label)
		if err != nil {
			return nil, err
		}
		fsys, err := dfs.Mount(p, ct)
		if err != nil {
			return nil, err
		}
		ns.fs = append(ns.fs, fsys)
		node := env.rankNodes[r]
		if _, ok := mountByNode[node]; !ok {
			// One dfuse daemon per node, backed by the first local rank's
			// DFS mount — all local ranks funnel through it, as through a
			// real mount point.
			mountByNode[node] = dfuse.NewMount(env.TB.Sim, node, fsys, dfuse.DefaultCosts())
		}
		ns.mounts = append(ns.mounts, mountByNode[node])
	}
	return ns, nil
}

// pattern fills buf with IOR-style verifiable data: a word-granular
// function of the writing rank and the absolute byte offset. buf and absOff
// must be 8-byte multiples (transfer sizes always are).
func pattern(buf []byte, srcRank int, absOff int64) {
	seed := uint64(srcRank)*0x9E3779B97F4A7C15 + 0x1234567
	for i := 0; i+8 <= len(buf); i += 8 {
		w := seed ^ mix(uint64(absOff+int64(i)))
		binary.LittleEndian.PutUint64(buf[i:], w)
	}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// opOrder returns the (segment, transfer) visit order for one rank:
// sequential by default, deterministically shuffled with -z.
func (c *Config) opOrder(rank, transfersPerBlock int) [][2]int {
	order := make([][2]int, 0, c.Segments*transfersPerBlock)
	for s := 0; s < c.Segments; s++ {
		for t := 0; t < transfersPerBlock; t++ {
			order = append(order, [2]int{s, t})
		}
	}
	if c.RandomOffsets {
		rng := sim.NewRNG(uint64(rank)*0x9E3779B97F4A7C15 + 0xDA05)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	return order
}

// offsets computes the absolute file offset of one transfer.
func (c *Config) offset(rank, ranks, segment, transfer int) int64 {
	t := int64(transfer) * c.TransferSize
	if c.FilePerProc {
		return int64(segment)*c.BlockSize + t
	}
	return (int64(segment)*int64(ranks)+int64(rank))*c.BlockSize + t
}

// Run executes one IOR configuration on the environment. It must run inside
// tb.Run (the same process that built the Env).
func Run(p *sim.Proc, env *Env, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ranks := env.World.Size()
	res := &Result{
		Config:     cfg,
		Ranks:      ranks,
		TotalBytes: int64(ranks) * cfg.BlockSize * int64(cfg.Segments),
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		ns, err := env.newNamespace(p, cfg.Class)
		if err != nil {
			return nil, err
		}
		if err := runIteration(p, env, ns, cfg, iter, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runIteration performs the write and read phases once.
func runIteration(p *sim.Proc, env *Env, ns *namespace, cfg Config, iter int, res *Result) error {
	ranks := env.World.Size()
	dir := fmt.Sprintf("/ior-run%02d", iter)
	var firstErr error
	noteErr := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// The namespace directory exists before anyone opens files.
	if err := ns.fs[0].MkdirAll(p, dir); err != nil {
		return err
	}

	transfersPerBlock := int(cfg.BlockSize / cfg.TransferSize)
	var writeSpan, readSpan time.Duration

	env.World.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
		be, err := newBackend(cfg, env, ns, r)
		if err != nil {
			noteErr(err)
			return
		}
		path := func(fileRank int) string {
			if cfg.FilePerProc {
				return fmt.Sprintf("%s/testFile.%08d", dir, fileRank)
			}
			return dir + "/testFile"
		}

		buf := make([]byte, cfg.TransferSize)
		if !cfg.Verify {
			// Without data verification the contents are irrelevant to
			// timing; fill once instead of per transfer.
			pattern(buf, r.ID(), 0)
		}

		if cfg.DoWrite {
			r.Barrier(cp)
			start := cp.Now()
			h, err := be.create(cp, path(r.ID()))
			if err != nil {
				noteErr(fmt.Errorf("rank %d create: %w", r.ID(), err))
				return
			}
			for _, st := range cfg.opOrder(r.ID(), transfersPerBlock) {
				off := cfg.offset(r.ID(), ranks, st[0], st[1])
				if cfg.Verify {
					pattern(buf, r.ID(), off)
				}
				if err := h.writeAt(cp, off, buf); err != nil {
					noteErr(fmt.Errorf("rank %d write: %w", r.ID(), err))
					return
				}
			}
			noteErr(h.closeFile(cp))
			r.Barrier(cp)
			span := cp.Now() - start
			writeSpan = r.AllreduceDuration(cp, span, "max")
		}

		if cfg.DoRead {
			// -C: read the data written by the next rank over.
			srcRank := r.ID()
			if cfg.ReorderTasks {
				srcRank = (r.ID() + 1) % ranks
			}
			r.Barrier(cp)
			start := cp.Now()
			h, err := be.open(cp, path(srcRank))
			if err != nil {
				noteErr(fmt.Errorf("rank %d open: %w", r.ID(), err))
				return
			}
			// With verification on, one reused buffer receives every
			// transfer (readAtInto overwrites all n bytes, holes as zeros).
			// Without it the contents are irrelevant: a nil destination
			// simulates each read with identical timing while the data path
			// materializes nothing — real IOR still moves the bytes, but the
			// simulation only needs their geometry.
			var readBuf []byte
			if cfg.Verify {
				readBuf = make([]byte, cfg.TransferSize)
			}
			for _, st := range cfg.opOrder(r.ID(), transfersPerBlock) {
				off := cfg.offset(srcRank, ranks, st[0], st[1])
				if err := h.readAtInto(cp, off, cfg.TransferSize, readBuf); err != nil {
					noteErr(fmt.Errorf("rank %d read: %w", r.ID(), err))
					return
				}
				if cfg.Verify {
					pattern(buf, srcRank, off)
					for i := range buf {
						if readBuf[i] != buf[i] {
							res.VerifyErrors++
							break
						}
					}
				}
			}
			noteErr(h.closeFile(cp))
			r.Barrier(cp)
			span := cp.Now() - start
			readSpan = r.AllreduceDuration(cp, span, "max")
		}
	})
	if firstErr != nil {
		return firstErr
	}
	gib := float64(res.TotalBytes) / float64(int64(1)<<30)
	if cfg.DoWrite {
		res.Write.observe(gib/writeSpan.Seconds(), writeSpan)
	}
	if cfg.DoRead {
		res.Read.observe(gib/readSpan.Seconds(), readSpan)
	}
	return nil
}

// String renders a result like IOR's summary table.
func (r *Result) String() string {
	out := fmt.Sprintf("IOR %s fpp=%v ranks=%d xfer=%s block=%s class=%s\n",
		r.Config.API, r.Config.FilePerProc, r.Ranks,
		fmtBytes(r.Config.TransferSize), fmtBytes(r.Config.BlockSize), className(r.Config.Class))
	if len(r.Write.Times) > 0 {
		out += fmt.Sprintf("  write  max %8.2f GiB/s  mean %8.2f GiB/s\n", r.Write.MaxGiBs, r.Write.MeanGiBs)
	}
	if len(r.Read.Times) > 0 {
		out += fmt.Sprintf("  read   max %8.2f GiB/s  mean %8.2f GiB/s\n", r.Read.MaxGiBs, r.Read.MeanGiBs)
	}
	return out
}

func className(c placement.ClassID) string {
	cls, err := placement.LookupClass(c)
	if err != nil {
		return fmt.Sprintf("%#x", uint16(c))
	}
	return cls.Name
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
