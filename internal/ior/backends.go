package ior

import (
	"errors"
	"fmt"

	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/hdf5"
	"daosim/internal/mpi"
	"daosim/internal/mpiio"
	"daosim/internal/sim"
)

// handle is one open test file. readAtInto fills the caller's dst (len ==
// n, holes as zeros) so one buffer serves every transfer; a nil dst
// simulates the read with identical timing without materializing data —
// what the driver uses when verification is off.
type handle interface {
	writeAt(p *sim.Proc, off int64, data []byte) error
	readAtInto(p *sim.Proc, off int64, n int64, dst []byte) error
	closeFile(p *sim.Proc) error
}

// backend creates/opens test files for one rank (IOR's AIORI layer).
type backend interface {
	create(p *sim.Proc, path string) (handle, error)
	open(p *sim.Proc, path string) (handle, error)
}

// newBackend builds the rank's backend for the configured API.
func newBackend(cfg Config, env *Env, ns *namespace, r *mpi.Rank) (backend, error) {
	opts := dfs.CreateOpts{Class: cfg.Class}
	switch cfg.API {
	case APIDFS:
		return &dfsBackend{fs: ns.fs[r.ID()], rank: r, shared: !cfg.FilePerProc, opts: opts}, nil
	case APIPosix:
		return &posixBackend{mount: ns.mounts[r.ID()], rank: r, shared: !cfg.FilePerProc, opts: opts}, nil
	case APIMPIIO:
		if cfg.Collective && cfg.FilePerProc {
			return nil, errors.New("ior: collective MPI-I/O requires a shared file")
		}
		return &mpiioBackend{
			mount:      ns.mounts[r.ID()],
			rank:       r,
			shared:     !cfg.FilePerProc,
			collective: cfg.Collective,
			opts:       opts,
			hints:      mpiio.DefaultHints(env.RanksPerNode),
		}, nil
	case APIHDF5:
		extent := cfg.BlockSize * int64(cfg.Segments)
		if !cfg.FilePerProc {
			extent *= int64(r.Size())
		}
		return &hdf5Backend{
			mount:  ns.mounts[r.ID()],
			rank:   r,
			shared: !cfg.FilePerProc,
			opts:   opts,
			extent: extent,
		}, nil
	default:
		return nil, fmt.Errorf("ior: unknown API %q", cfg.API)
	}
}

// --- DFS backend (libdfs direct, the paper's "DFS"/"DAOS" series) ---

type dfsBackend struct {
	fs     *dfs.FS
	rank   *mpi.Rank
	shared bool
	opts   dfs.CreateOpts
}

type dfsHandle struct{ f *dfs.File }

func (h *dfsHandle) writeAt(p *sim.Proc, off int64, data []byte) error {
	return h.f.WriteAt(p, off, data)
}
func (h *dfsHandle) readAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return h.f.ReadAtInto(p, off, n, dst)
}
func (h *dfsHandle) closeFile(p *sim.Proc) error { return h.f.Close(p) }

func (b *dfsBackend) create(p *sim.Proc, path string) (handle, error) {
	if !b.shared {
		f, err := b.fs.OpenOrCreate(p, path, b.opts)
		if err != nil {
			return nil, err
		}
		return &dfsHandle{f: f}, nil
	}
	// Shared file: rank 0 creates, everyone opens after the barrier.
	if b.rank.ID() == 0 {
		if _, err := b.fs.OpenOrCreate(p, path, b.opts); err != nil {
			return nil, err
		}
	}
	b.rank.Barrier(p)
	f, err := b.fs.Open(p, path)
	if err != nil {
		return nil, err
	}
	return &dfsHandle{f: f}, nil
}

func (b *dfsBackend) open(p *sim.Proc, path string) (handle, error) {
	f, err := b.fs.Open(p, path)
	if err != nil {
		return nil, err
	}
	return &dfsHandle{f: f}, nil
}

// --- POSIX backend (through the DFuse mount) ---

type posixBackend struct {
	mount  *dfuse.Mount
	rank   *mpi.Rank
	shared bool
	opts   dfs.CreateOpts
}

type posixHandle struct{ fd *dfuse.File }

func (h *posixHandle) writeAt(p *sim.Proc, off int64, data []byte) error {
	_, err := h.fd.Pwrite(p, off, data)
	return err
}
func (h *posixHandle) readAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return h.fd.PreadInto(p, off, n, dst)
}
func (h *posixHandle) closeFile(p *sim.Proc) error { return h.fd.Close(p) }

func (b *posixBackend) create(p *sim.Proc, path string) (handle, error) {
	if !b.shared {
		fd, err := b.mount.Open(p, path, dfuse.O_CREATE|dfuse.O_RDWR, b.opts)
		if err != nil {
			return nil, err
		}
		return &posixHandle{fd: fd}, nil
	}
	if b.rank.ID() == 0 {
		fd, err := b.mount.Open(p, path, dfuse.O_CREATE|dfuse.O_RDWR, b.opts)
		if err != nil {
			return nil, err
		}
		fd.Close(p)
	}
	b.rank.Barrier(p)
	fd, err := b.mount.Open(p, path, dfuse.O_RDWR, b.opts)
	if err != nil {
		return nil, err
	}
	return &posixHandle{fd: fd}, nil
}

func (b *posixBackend) open(p *sim.Proc, path string) (handle, error) {
	fd, err := b.mount.Open(p, path, dfuse.O_RDWR, b.opts)
	if err != nil {
		return nil, err
	}
	return &posixHandle{fd: fd}, nil
}

// --- MPI-I/O backend (ROMIO over the DFuse mount, as in the paper) ---

type mpiioBackend struct {
	mount      *dfuse.Mount
	rank       *mpi.Rank
	shared     bool
	collective bool
	opts       dfs.CreateOpts
	hints      mpiio.Hints
}

type mpiioHandle struct {
	f          *mpiio.File
	collective bool
}

func (h *mpiioHandle) writeAt(p *sim.Proc, off int64, data []byte) error {
	if h.collective {
		return h.f.WriteAtAll(p, off, data)
	}
	return h.f.WriteAt(p, off, data)
}
func (h *mpiioHandle) readAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	if h.collective {
		return h.f.ReadAtAllInto(p, off, n, dst)
	}
	return h.f.ReadAtInto(p, off, n, dst)
}
func (h *mpiioHandle) closeFile(p *sim.Proc) error { return h.f.Close(p) }

func (b *mpiioBackend) create(p *sim.Proc, path string) (handle, error) {
	f, err := b.openPath(p, path, true)
	if err != nil {
		return nil, err
	}
	return &mpiioHandle{f: f, collective: b.collective}, nil
}

func (b *mpiioBackend) open(p *sim.Proc, path string) (handle, error) {
	f, err := b.openPath(p, path, false)
	if err != nil {
		return nil, err
	}
	return &mpiioHandle{f: f, collective: b.collective}, nil
}

func (b *mpiioBackend) openPath(p *sim.Proc, path string, create bool) (*mpiio.File, error) {
	if b.shared {
		return mpiio.OpenPOSIX(p, b.rank, b.mount, path, create, b.opts, b.hints)
	}
	// File-per-process: MPI_COMM_SELF semantics, no collective create.
	flags := dfuse.O_RDWR
	if create {
		flags |= dfuse.O_CREATE
	}
	fd, err := b.mount.Open(p, path, flags, b.opts)
	if err != nil {
		return nil, err
	}
	return mpiio.FromPOSIX(b.rank, fd, b.hints), nil
}

// --- HDF5 backend (miniature HDF5 over the DFuse mount) ---

type hdf5Backend struct {
	mount  *dfuse.Mount
	rank   *mpi.Rank
	shared bool
	opts   dfs.CreateOpts
	extent int64
}

type hdf5Handle struct {
	f  *hdf5.File
	ds *hdf5.Dataset
}

func (h *hdf5Handle) writeAt(p *sim.Proc, off int64, data []byte) error {
	return h.ds.Write(p, off, data)
}
func (h *hdf5Handle) readAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return h.ds.ReadInto(p, off, n, dst)
}
func (h *hdf5Handle) closeFile(p *sim.Proc) error { return h.f.Close(p) }

const hdf5Dataset = "ior_dataset"

func (b *hdf5Backend) vfd(p *sim.Proc, path string, create bool) (hdf5.VFD, error) {
	flags := dfuse.O_RDWR
	if create {
		flags |= dfuse.O_CREATE
	}
	fd, err := b.mount.Open(p, path, flags, b.opts)
	if err != nil {
		return nil, err
	}
	return hdf5.NewPosixVFD(fd), nil
}

func (b *hdf5Backend) create(p *sim.Proc, path string) (handle, error) {
	if !b.shared {
		vfd, err := b.vfd(p, path, true)
		if err != nil {
			return nil, err
		}
		f, err := hdf5.Create(p, vfd, hdf5.DefaultCosts())
		if err != nil {
			return nil, err
		}
		ds, err := f.CreateDataset(p, hdf5Dataset, b.extent, 0)
		if err != nil {
			return nil, err
		}
		return &hdf5Handle{f: f, ds: ds}, nil
	}
	// Shared file: rank 0 lays out the file and dataset, flushes, and then
	// every rank opens it (several small metadata reads each).
	if b.rank.ID() == 0 {
		vfd, err := b.vfd(p, path, true)
		if err != nil {
			return nil, err
		}
		f, err := hdf5.Create(p, vfd, hdf5.DefaultCosts())
		if err != nil {
			return nil, err
		}
		if _, err := f.CreateDataset(p, hdf5Dataset, b.extent, 0); err != nil {
			return nil, err
		}
		if err := f.Close(p); err != nil {
			return nil, err
		}
	}
	b.rank.Barrier(p)
	return b.open(p, path)
}

func (b *hdf5Backend) open(p *sim.Proc, path string) (handle, error) {
	vfd, err := b.vfd(p, path, false)
	if err != nil {
		return nil, err
	}
	f, err := hdf5.Open(p, vfd, hdf5.DefaultCosts())
	if err != nil {
		return nil, err
	}
	if b.shared {
		// Parallel HDF5 disables the data sieve (the MPI-I/O VFD never
		// engages it); staging buffers would also corrupt concurrent
		// disjoint writers at window boundaries.
		f.SetSieve(0)
	}
	ds, err := f.OpenDataset(p, hdf5Dataset)
	if err != nil {
		return nil, err
	}
	return &hdf5Handle{f: f, ds: ds}, nil
}
