package ior

import (
	"fmt"
	"time"

	"daosim/internal/daos"
	"daosim/internal/mpi"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// newContainers creates a fresh container and opens it from every rank's
// client (no DFS namespace — raw object access).
func (env *Env) newContainers(p *sim.Proc, class placement.ClassID) ([]*daos.Container, error) {
	env.contSeq++
	label := fmt.Sprintf("ior-native-c%04d", env.contSeq)
	if _, err := env.pool.CreateContainer(p, label, daos.ContProps{Class: class}); err != nil {
		return nil, err
	}
	var out []*daos.Container
	for _, cl := range env.clients {
		pl, err := cl.Connect(p, "ior-pool")
		if err != nil {
			return nil, err
		}
		ct, err := pl.OpenContainer(p, label)
		if err != nil {
			return nil, err
		}
		out = append(out, ct)
	}
	return out, nil
}

// RunNativeArray drives the IOR easy workload through the raw DAOS array
// API — no DFS namespace, no directory entries, no POSIX semantics. This is
// the benchmarking direction the paper's §V lists as future work ("extending
// benchmarking to use the DAOS API rather than DFS or DFuse POSIX-based
// backends"). Each rank writes and reads back its own array object of the
// given class. It returns aggregate write and read bandwidth in GiB/s.
func RunNativeArray(p *sim.Proc, env *Env, block, transfer int64, class placement.ClassID) (writeGiBs, readGiBs float64, err error) {
	if block <= 0 || transfer <= 0 || block%transfer != 0 {
		return 0, 0, fmt.Errorf("ior: bad native geometry block=%d transfer=%d", block, transfer)
	}
	conts, err := env.newContainers(p, class)
	if err != nil {
		return 0, 0, err
	}
	ranks := env.World.Size()
	ops := int(block / transfer)
	var firstErr error
	var writeSpan, readSpan time.Duration
	env.World.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
		ct := conts[r.ID()]
		buf := make([]byte, transfer)
		pattern(buf, r.ID(), 0)

		r.Barrier(cp)
		start := cp.Now()
		arr, err := ct.OpenArray(cp, ct.AllocOID(class))
		if err != nil {
			firstErr = err
			return
		}
		for i := 0; i < ops; i++ {
			if err := arr.Write(cp, int64(i)*transfer, buf); err != nil {
				firstErr = err
				return
			}
		}
		r.Barrier(cp)
		writeSpan = r.AllreduceDuration(cp, cp.Now()-start, "max")

		r.Barrier(cp)
		start = cp.Now()
		for i := 0; i < ops; i++ {
			if _, err := arr.Read(cp, int64(i)*transfer, transfer); err != nil {
				firstErr = err
				return
			}
		}
		r.Barrier(cp)
		readSpan = r.AllreduceDuration(cp, cp.Now()-start, "max")
	})
	if firstErr != nil {
		return 0, 0, firstErr
	}
	gib := float64(int64(ranks)*block) / float64(int64(1)<<30)
	return gib / writeSpan.Seconds(), gib / readSpan.Seconds(), nil
}
