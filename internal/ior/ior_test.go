package ior_test

import (
	"testing"

	"daosim/internal/cluster"
	"daosim/internal/ior"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// runCfg executes one IOR config on a small testbed with 4 ranks over 2
// nodes and returns the result.
func runCfg(t *testing.T, cfg ior.Config) *ior.Result {
	t.Helper()
	tb := cluster.New(cluster.Small())
	var res *ior.Result
	tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, 2, 2)
		if err != nil {
			t.Error(err)
			return
		}
		res, err = ior.Run(p, env, cfg)
		if err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	return res
}

// base returns a small verified configuration.
func base(api ior.API, fpp bool) ior.Config {
	return ior.Config{
		API:          api,
		FilePerProc:  fpp,
		BlockSize:    4 << 20,
		TransferSize: 1 << 20,
		Segments:     1,
		Iterations:   1,
		DoWrite:      true,
		DoRead:       true,
		Verify:       true,
		ReorderTasks: true,
		Class:        placement.S2,
	}
}

func checkResult(t *testing.T, res *ior.Result) {
	t.Helper()
	if res.VerifyErrors != 0 {
		t.Fatalf("verify errors: %d", res.VerifyErrors)
	}
	if res.Write.MaxGiBs <= 0 || res.Read.MaxGiBs <= 0 {
		t.Fatalf("non-positive bandwidth: %+v", res)
	}
	if res.TotalBytes != int64(res.Ranks)*4<<20 {
		t.Fatalf("total bytes = %d", res.TotalBytes)
	}
}

func TestEasyModeAllAPIs(t *testing.T) {
	for _, api := range []ior.API{ior.APIDFS, ior.APIPosix, ior.APIMPIIO, ior.APIHDF5} {
		api := api
		t.Run(string(api), func(t *testing.T) {
			checkResult(t, runCfg(t, base(api, true)))
		})
	}
}

func TestHardModeAllAPIs(t *testing.T) {
	for _, api := range []ior.API{ior.APIDFS, ior.APIPosix, ior.APIMPIIO, ior.APIHDF5} {
		api := api
		t.Run(string(api), func(t *testing.T) {
			checkResult(t, runCfg(t, base(api, false)))
		})
	}
}

func TestCollectiveMPIIO(t *testing.T) {
	cfg := base(ior.APIMPIIO, false)
	cfg.Collective = true
	checkResult(t, runCfg(t, cfg))
}

func TestCollectiveRequiresShared(t *testing.T) {
	cfg := base(ior.APIMPIIO, true)
	cfg.Collective = true
	tb := cluster.New(cluster.Small())
	tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, 2, 2)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := ior.Run(p, env, cfg); err == nil {
			t.Error("collective FPP accepted")
		}
	})
}

func TestObjectClassesProduceDifferentLayouts(t *testing.T) {
	for _, class := range []placement.ClassID{placement.S1, placement.SX} {
		cfg := base(ior.APIDFS, true)
		cfg.Class = class
		checkResult(t, runCfg(t, cfg))
	}
}

func TestMultipleSegments(t *testing.T) {
	cfg := base(ior.APIDFS, false)
	cfg.Segments = 3
	res := runCfg(t, cfg)
	if res.VerifyErrors != 0 {
		t.Fatalf("verify errors with segments: %d", res.VerifyErrors)
	}
	if res.TotalBytes != int64(res.Ranks)*3*4<<20 {
		t.Fatalf("total bytes = %d", res.TotalBytes)
	}
}

func TestIterationsAggregateStats(t *testing.T) {
	cfg := base(ior.APIDFS, true)
	cfg.Iterations = 3
	cfg.Verify = false
	res := runCfg(t, cfg)
	if len(res.Write.Times) != 3 || len(res.Read.Times) != 3 {
		t.Fatalf("iteration counts: %d/%d", len(res.Write.Times), len(res.Read.Times))
	}
	if res.Write.MaxGiBs < res.Write.MinGiBs {
		t.Fatal("max < min")
	}
	if res.Write.MeanGiBs > res.Write.MaxGiBs || res.Write.MeanGiBs < res.Write.MinGiBs {
		t.Fatalf("mean %v outside [min %v, max %v]", res.Write.MeanGiBs, res.Write.MinGiBs, res.Write.MaxGiBs)
	}
}

func TestWriteOnlyAndReadOnly(t *testing.T) {
	tb := cluster.New(cluster.Small())
	tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, 2, 2)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := base(ior.APIDFS, true)
		cfg.DoRead = false
		res, err := ior.Run(p, env, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if len(res.Read.Times) != 0 || len(res.Write.Times) != 1 {
			t.Errorf("phases: write=%d read=%d", len(res.Write.Times), len(res.Read.Times))
		}
	})
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []ior.Config{
		{API: ior.APIDFS}, // no sizes
		{API: ior.APIDFS, BlockSize: 100, TransferSize: 64},     // not a multiple
		{API: "NFS", BlockSize: 1 << 20, TransferSize: 1 << 20}, // unknown API
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDFuseAPIsSlowerThanDFS(t *testing.T) {
	// The paper's headline interface ordering at small scale: DFS >= MPIIO
	// over dfuse > HDF5 over dfuse (for file-per-process).
	cfg := base(ior.APIDFS, true)
	cfg.Verify = false
	dfsRes := runCfg(t, cfg)
	cfg.API = ior.APIHDF5
	hdf5Res := runCfg(t, cfg)
	if hdf5Res.Write.MaxGiBs >= dfsRes.Write.MaxGiBs {
		t.Errorf("HDF5 write %.2f >= DFS write %.2f", hdf5Res.Write.MaxGiBs, dfsRes.Write.MaxGiBs)
	}
	if hdf5Res.Read.MaxGiBs >= dfsRes.Read.MaxGiBs {
		t.Errorf("HDF5 read %.2f >= DFS read %.2f", hdf5Res.Read.MaxGiBs, dfsRes.Read.MaxGiBs)
	}
}

func TestResultString(t *testing.T) {
	res := runCfg(t, base(ior.APIDFS, true))
	s := res.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("summary too short: %q", s)
	}
}

func TestRandomOffsetsVerified(t *testing.T) {
	cfg := base(ior.APIDFS, true)
	cfg.RandomOffsets = true
	cfg.Segments = 2
	res := runCfg(t, cfg)
	if res.VerifyErrors != 0 {
		t.Fatalf("verify errors with random offsets: %d", res.VerifyErrors)
	}
}

func TestRandomOffsetsSharedFile(t *testing.T) {
	cfg := base(ior.APIPosix, false)
	cfg.RandomOffsets = true
	checkResult(t, runCfg(t, cfg))
}

func TestRandomWithCollectiveRejected(t *testing.T) {
	cfg := base(ior.APIMPIIO, false)
	cfg.Collective = true
	cfg.RandomOffsets = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("random+collective accepted")
	}
}
