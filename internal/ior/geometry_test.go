package ior

import (
	"testing"
	"testing/quick"

	"daosim/internal/placement"
)

// TestOffsetsDisjointAndCovering verifies IOR's core geometry invariant:
// across all ranks, segments, and transfers, shared-file offsets tile the
// file exactly — no overlap, no gap.
func TestOffsetsDisjointAndCovering(t *testing.T) {
	f := func(ranksB, segB, tpbB uint8) bool {
		ranks := int(ranksB%6) + 1
		segments := int(segB%3) + 1
		tpb := int(tpbB%4) + 1
		cfg := Config{
			BlockSize:    int64(tpb) * 4096,
			TransferSize: 4096,
			Segments:     segments,
		}
		seen := map[int64]bool{}
		count := 0
		for r := 0; r < ranks; r++ {
			for s := 0; s < segments; s++ {
				for tr := 0; tr < tpb; tr++ {
					off := cfg.offset(r, ranks, s, tr)
					if off%cfg.TransferSize != 0 || seen[off] {
						return false
					}
					seen[off] = true
					count++
				}
			}
		}
		// The offsets must exactly tile [0, ranks*segments*block).
		total := int64(ranks) * int64(segments) * cfg.BlockSize
		if int64(count)*cfg.TransferSize != total {
			return false
		}
		for off := int64(0); off < total; off += cfg.TransferSize {
			if !seen[off] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFPPOffsetsIndependentOfRank verifies that file-per-process offsets
// never depend on the rank (each rank owns its whole file).
func TestFPPOffsetsIndependentOfRank(t *testing.T) {
	cfg := Config{FilePerProc: true, BlockSize: 1 << 20, TransferSize: 1 << 18, Segments: 3}
	for s := 0; s < 3; s++ {
		for tr := 0; tr < 4; tr++ {
			if cfg.offset(0, 8, s, tr) != cfg.offset(7, 8, s, tr) {
				t.Fatalf("FPP offset depends on rank at (%d,%d)", s, tr)
			}
		}
	}
}

// TestOpOrderIsPermutation verifies the -z shuffle visits every op exactly
// once, for any geometry, and is deterministic per rank.
func TestOpOrderIsPermutation(t *testing.T) {
	f := func(rank uint8, segB, tpbB uint8) bool {
		segments := int(segB%4) + 1
		tpb := int(tpbB%8) + 1
		cfg := Config{Segments: segments, RandomOffsets: true}
		order := cfg.opOrder(int(rank), tpb)
		again := cfg.opOrder(int(rank), tpb)
		if len(order) != segments*tpb || len(again) != len(order) {
			return false
		}
		seen := map[[2]int]bool{}
		for i, st := range order {
			if st[0] < 0 || st[0] >= segments || st[1] < 0 || st[1] >= tpb || seen[st] {
				return false
			}
			seen[st] = true
			if again[i] != st { // deterministic
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPatternDeterministicAndRankSensitive pins the data-check pattern.
func TestPatternDeterministicAndRankSensitive(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	pattern(a, 3, 4096)
	pattern(b, 3, 4096)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	pattern(b, 4, 4096)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pattern ignores rank")
	}
	// Offset sensitivity, at 8-byte granularity.
	pattern(b, 3, 4104)
	if a[8] == b[0] && a[9] == b[1] && a[16] == b[8] && a[17] == b[9] {
		// shifted pattern must line up when offsets line up
		return
	}
	t.Log("pattern offset alignment differs (acceptable but unexpected)")
}

var _ = placement.S1 // geometry tests share the package's imports
