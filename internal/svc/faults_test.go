package svc

import (
	"fmt"
	"testing"
	"time"

	"daosim/internal/raft"
)

// TestScheduledFaultFailoverScenario promotes the daosctl failure-injection
// walkthrough into a unit harness, with the faults scheduled at virtual
// instants in the fault-plan style (sim.At) rather than interleaved by the
// test goroutine. It drives the scripted admin session straight through a
// leader kill and later restart, asserting the three scenario invariants:
//
//   - leader failover: a new leader (a different replica) is elected while
//     the old one is down, and the restarted replica rejoins as follower;
//   - version monotonicity: no replica's term ever decreases across the
//     fault, and the replicated state never rolls back (every container
//     created before or during the window is still listed after it);
//   - client retry transparency: every command issued across the window
//     succeeds via redirects/retries — the caller never sees the fault.
func TestScheduledFaultFailoverScenario(t *testing.T) {
	h := newHarness(t)

	// Steps 1-3 of the walkthrough: pool, container, attribute.
	if _, err := h.exec(t, Command{Op: OpCreatePool, Pool: "tank", Targets: []int{0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.exec(t, Command{Op: OpCreateCont, Pool: "tank", Cont: "home"}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.exec(t, Command{Op: OpSetAttr, Pool: "tank", Key: "owner", Value: "epcc"}); err != nil {
		t.Fatal(err)
	}

	leader0 := h.svc.Leader()
	if leader0 < 0 {
		t.Fatal("no leader after setup")
	}
	terms := make([]uint64, h.svc.NumReplicas())
	for i, r := range h.svc.replicas {
		terms[i] = r.Term()
	}
	// checkTerms asserts per-replica term monotonicity at a sample point.
	checkTerms := func(when string) {
		t.Helper()
		for i, r := range h.svc.replicas {
			if cur := r.Term(); cur < terms[i] {
				t.Fatalf("%s: replica %d term went backwards: %d -> %d", when, i, terms[i], cur)
			} else {
				terms[i] = cur
			}
		}
	}

	// The fault plan: kill the leader shortly after the session resumes,
	// restart it half a second later — both at fixed virtual instants.
	killAt := h.sim.Now() + 50*time.Millisecond
	restartAt := killAt + 500*time.Millisecond
	h.sim.At(killAt, func() { h.svc.Kill(leader0) })
	h.sim.At(restartAt, func() { h.svc.Restart(leader0) })

	// The scripted session keeps administering straight through the window:
	// ten container creates whose execution spans kill and restart. Each
	// must succeed transparently.
	for i := 0; i < 10; i++ {
		if _, err := h.exec(t, Command{Op: OpCreateCont, Pool: "tank", Cont: fmt.Sprintf("c%02d", i)}); err != nil {
			t.Fatalf("create c%02d across the fault window: %v", i, err)
		}
		checkTerms(fmt.Sprintf("after create c%02d", i))
		// Probe failover exactly once, mid-window: a new leader must exist
		// and it cannot be the killed replica.
		if now := h.sim.Now(); now > killAt && now < restartAt {
			if l := h.svc.Leader(); l == leader0 {
				t.Fatalf("killed replica %d still reported as leader at %v", leader0, now)
			}
		}
	}
	if h.sim.Now() <= restartAt {
		t.Fatalf("session finished at %v, before the restart at %v — the window never spanned the commands", h.sim.Now(), restartAt)
	}

	// Let the restarted replica catch up, then verify it rejoined as a
	// follower of a live leader.
	h.sim.RunUntil(h.sim.Now() + 2*time.Second)
	checkTerms("after recovery")
	if h.svc.replicas[leader0].Role() == raft.Leader && h.svc.Leader() != leader0 {
		t.Fatalf("restarted replica %d claims leadership it does not hold", leader0)
	}
	if h.svc.Leader() < 0 {
		t.Fatal("no leader after recovery")
	}

	// No rollback: every container created before or during the window is
	// still present, exactly once, after recovery.
	res, err := h.exec(t, Command{Op: OpListConts, Pool: "tank"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.List) != 11 {
		t.Fatalf("containers after recovery = %v, want home + c00..c09", res.List)
	}
	seen := make(map[string]bool)
	for _, name := range res.List {
		if seen[name] {
			t.Fatalf("container %q listed twice: %v", name, res.List)
		}
		seen[name] = true
	}
	// And the attribute written before the fault survived it.
	if res, err := h.exec(t, Command{Op: OpGetAttr, Pool: "tank", Key: "owner"}); err != nil || res.Value != "epcc" {
		t.Fatalf("owner attr after recovery = %q, %v", res.Value, err)
	}
}

// TestScheduledFaultKillWithoutRestart pins the open-window variant: with
// the leader killed and never restarted, the surviving quorum elects a new
// leader and keeps serving — and the dead replica stays a non-leader.
func TestScheduledFaultKillWithoutRestart(t *testing.T) {
	h := newHarness(t)
	if _, err := h.exec(t, Command{Op: OpCreatePool, Pool: "tank"}); err != nil {
		t.Fatal(err)
	}
	leader0 := h.svc.Leader()
	h.sim.At(h.sim.Now()+20*time.Millisecond, func() { h.svc.Kill(leader0) })

	for i := 0; i < 3; i++ {
		if _, err := h.exec(t, Command{Op: OpCreateCont, Pool: "tank", Cont: fmt.Sprintf("c%d", i)}); err != nil {
			t.Fatalf("create c%d on the surviving quorum: %v", i, err)
		}
	}
	if l := h.svc.Leader(); l < 0 || l == leader0 {
		t.Fatalf("surviving quorum leader = %d (killed %d)", l, leader0)
	}
	res, err := h.exec(t, Command{Op: OpListConts, Pool: "tank"})
	if err != nil || len(res.List) != 3 {
		t.Fatalf("containers on degraded quorum = %v, %v", res.List, err)
	}
}
