package svc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"daosim/internal/fabric"
	"daosim/internal/sim"
)

// harness boots a 3-replica service plus one client node.
type harness struct {
	sim    *sim.Sim
	fab    *fabric.Fabric
	svc    *Service
	client *Client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	s := sim.New(42)
	f := fabric.New(s, fabric.DefaultConfig())
	var replicas []*fabric.Node
	for i := 0; i < 3; i++ {
		replicas = append(replicas, f.AddNode("server"))
	}
	clientNode := f.AddNode("client")
	service := Start(s, f, replicas)
	if !service.WaitReady(10 * time.Second) {
		t.Fatal("pool service did not elect a leader")
	}
	return &harness{sim: s, fab: f, svc: service, client: NewClient(service, clientNode)}
}

// exec runs one command to completion on the harness.
func (h *harness) exec(t *testing.T, cmd Command) (Result, error) {
	t.Helper()
	var res Result
	var err error
	done := false
	h.sim.Spawn("client", func(p *sim.Proc) {
		res, err = h.client.Execute(p, cmd)
		done = true
	})
	deadline := h.sim.Now() + 30*time.Second
	for !done && h.sim.Now() < deadline {
		h.sim.RunUntil(h.sim.Now() + 50*time.Millisecond)
	}
	if !done {
		t.Fatalf("command %v did not complete", cmd.Op)
	}
	return res, err
}

func TestCreateAndQueryPool(t *testing.T) {
	h := newHarness(t)
	res, err := h.exec(t, Command{Op: OpCreatePool, Pool: "p0", Targets: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pool == nil || res.Pool.UUID == "" {
		t.Fatalf("pool info missing: %+v", res)
	}
	res, err = h.exec(t, Command{Op: OpQueryPool, Pool: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pool.Targets) != 4 {
		t.Fatalf("targets = %v", res.Pool.Targets)
	}
}

func TestDuplicatePoolRejected(t *testing.T) {
	h := newHarness(t)
	if _, err := h.exec(t, Command{Op: OpCreatePool, Pool: "p0"}); err != nil {
		t.Fatal(err)
	}
	_, err := h.exec(t, Command{Op: OpCreatePool, Pool: "p0"})
	if err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("duplicate create err = %v", err)
	}
}

func TestContainerLifecycle(t *testing.T) {
	h := newHarness(t)
	h.exec(t, Command{Op: OpCreatePool, Pool: "p0"})
	res, err := h.exec(t, Command{
		Op: OpCreateCont, Pool: "p0", Cont: "c0",
		Props: map[string]string{"oclass": "S2", "chunk": "1048576"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cont.Props["oclass"] != "S2" {
		t.Fatalf("props = %v", res.Cont.Props)
	}
	h.exec(t, Command{Op: OpCreateCont, Pool: "p0", Cont: "a-first"})
	res, err = h.exec(t, Command{Op: OpListConts, Pool: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.List) != 2 || res.List[0] != "a-first" || res.List[1] != "c0" {
		t.Fatalf("list = %v", res.List)
	}
	if _, err := h.exec(t, Command{Op: OpDestroyCont, Pool: "p0", Cont: "c0"}); err != nil {
		t.Fatal(err)
	}
	res, _ = h.exec(t, Command{Op: OpListConts, Pool: "p0"})
	if len(res.List) != 1 {
		t.Fatalf("list after destroy = %v", res.List)
	}
}

func TestAttrs(t *testing.T) {
	h := newHarness(t)
	h.exec(t, Command{Op: OpCreatePool, Pool: "p0"})
	if _, err := h.exec(t, Command{Op: OpSetAttr, Pool: "p0", Key: "owner", Value: "ecmwf"}); err != nil {
		t.Fatal(err)
	}
	res, err := h.exec(t, Command{Op: OpGetAttr, Pool: "p0", Key: "owner"})
	if err != nil || res.Value != "ecmwf" {
		t.Fatalf("attr = %q, %v", res.Value, err)
	}
	if _, err := h.exec(t, Command{Op: OpGetAttr, Pool: "p0", Key: "missing"}); err == nil {
		t.Fatal("missing attr read succeeded")
	}
}

func TestMissingPoolErrors(t *testing.T) {
	h := newHarness(t)
	for _, op := range []Op{OpQueryPool, OpDestroyPool, OpCreateCont, OpListConts, OpSetAttr} {
		if _, err := h.exec(t, Command{Op: op, Pool: "nope", Cont: "c", Key: "k"}); err == nil {
			t.Fatalf("op %s on missing pool succeeded", op)
		}
	}
}

func TestLeaderFailoverDuringUse(t *testing.T) {
	h := newHarness(t)
	h.exec(t, Command{Op: OpCreatePool, Pool: "p0"})
	leader := h.svc.Leader()
	if leader < 0 {
		t.Fatal("no leader")
	}
	h.svc.Kill(leader)
	// The client must ride through the failover via redirects/retries.
	res, err := h.exec(t, Command{Op: OpCreateCont, Pool: "p0", Cont: "after-failover"})
	if err != nil {
		t.Fatalf("command after failover: %v", err)
	}
	if res.Cont == nil {
		t.Fatal("no container info")
	}
	// Recover the old leader; state must converge (checked via a query).
	h.svc.Restart(leader)
	h.sim.RunUntil(h.sim.Now() + 2*time.Second)
	res, err = h.exec(t, Command{Op: OpListConts, Pool: "p0"})
	if err != nil || len(res.List) != 1 {
		t.Fatalf("post-recovery list = %v, %v", res.List, err)
	}
}

func TestStateSnapshotRoundTrip(t *testing.T) {
	st := NewState()
	st.apply(Command{Op: OpCreatePool, Pool: "p0", Targets: []int{1, 2}})
	st.apply(Command{Op: OpCreateCont, Pool: "p0", Cont: "c0", Props: map[string]string{"k": "v"}})
	snap := st.Snapshot()
	st2 := NewState()
	st2.Restore(snap)
	r := st2.apply(Command{Op: OpQueryPool, Pool: "p0"})
	if r.Err != "" || len(r.Pool.Targets) != 2 {
		t.Fatalf("restored state broken: %+v", r)
	}
	r = st2.apply(Command{Op: OpListConts, Pool: "p0"})
	if len(r.List) != 1 || r.List[0] != "c0" {
		t.Fatalf("restored containers = %v", r.List)
	}
	// UUID sequence must continue, not restart (no duplicate UUIDs).
	r1 := st.apply(Command{Op: OpCreateCont, Pool: "p0", Cont: "x"})
	r2 := st2.apply(Command{Op: OpCreateCont, Pool: "p0", Cont: "x"})
	if r1.Cont.UUID != r2.Cont.UUID {
		t.Fatalf("determinism broken: %s vs %s", r1.Cont.UUID, r2.Cont.UUID)
	}
}

func TestApplyRejectsGarbage(t *testing.T) {
	st := NewState()
	r := st.Apply(1, []byte("not gob")).(Result)
	if r.Err == "" {
		t.Fatal("garbage command applied")
	}
	r = st.apply(Command{Op: "bogus"})
	if !strings.Contains(r.Err, "unknown op") {
		t.Fatalf("err = %q", r.Err)
	}
}

func TestResultErrMapping(t *testing.T) {
	if !errors.Is(ErrExists, ErrExists) || !errors.Is(ErrNotFound, ErrNotFound) {
		t.Fatal("sentinel identity broken")
	}
}
