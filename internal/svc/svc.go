// Package svc implements the DAOS pool service: the replicated management
// metadata store (pools, containers, attributes) that DAOS keeps in a
// Raft-replicated state machine hosted on a subset of the engines.
//
// Commands and snapshots are gob-encoded; replicas communicate over the
// cluster fabric, and clients reach the service through a fabric RPC that
// transparently follows leader redirects.
package svc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"daosim/internal/fabric"
	"daosim/internal/raft"
	"daosim/internal/sim"
)

// Op enumerates pool service commands.
type Op string

// Pool service operations.
const (
	OpCreatePool  Op = "create-pool"
	OpDestroyPool Op = "destroy-pool"
	OpCreateCont  Op = "create-cont"
	OpDestroyCont Op = "destroy-cont"
	OpSetAttr     Op = "set-attr"
	OpGetAttr     Op = "get-attr"
	OpListConts   Op = "list-conts"
	OpQueryPool   Op = "query-pool"
)

// Command is one pool service request.
type Command struct {
	Op    Op
	Pool  string // pool label
	Cont  string // container label
	Key   string // attribute key
	Value string // attribute value
	Props map[string]string
	// Targets lists the engine IDs backing the pool (create-pool).
	Targets []int
}

// PoolInfo describes a pool.
type PoolInfo struct {
	Label   string
	UUID    string
	Targets []int
	Conts   map[string]*ContInfo
	Attrs   map[string]string
}

// ContInfo describes a container.
type ContInfo struct {
	Label string
	UUID  string
	Props map[string]string
}

// Result is a pool service reply.
type Result struct {
	Pool  *PoolInfo
	Cont  *ContInfo
	List  []string
	Value string
	Err   string
}

// Errors surfaced by the service.
var (
	ErrExists   = errors.New("svc: already exists")
	ErrNotFound = errors.New("svc: not found")
)

// State is the replicated pool service state machine.
type State struct {
	Pools map[string]*PoolInfo
	Seq   uint64 // deterministic UUID source
}

// NewState returns an empty state machine.
func NewState() *State { return &State{Pools: make(map[string]*PoolInfo)} }

func (st *State) nextUUID(kind string) string {
	st.Seq++
	return fmt.Sprintf("%s-%08x-%04x", kind, st.Seq*0x9E3779B9, st.Seq)
}

// Apply implements raft.StateMachine.
func (st *State) Apply(index uint64, cmd []byte) interface{} {
	var c Command
	if err := gob.NewDecoder(bytes.NewReader(cmd)).Decode(&c); err != nil {
		return Result{Err: "svc: bad command: " + err.Error()}
	}
	return st.apply(c)
}

func (st *State) apply(c Command) Result {
	switch c.Op {
	case OpCreatePool:
		if _, dup := st.Pools[c.Pool]; dup {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrExists)}
		}
		p := &PoolInfo{
			Label:   c.Pool,
			UUID:    st.nextUUID("pool"),
			Targets: append([]int(nil), c.Targets...),
			Conts:   make(map[string]*ContInfo),
			Attrs:   copyMap(c.Props),
		}
		st.Pools[c.Pool] = p
		return Result{Pool: clonePool(p)}
	case OpDestroyPool:
		if _, ok := st.Pools[c.Pool]; !ok {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrNotFound)}
		}
		delete(st.Pools, c.Pool)
		return Result{}
	case OpCreateCont:
		p, ok := st.Pools[c.Pool]
		if !ok {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrNotFound)}
		}
		if _, dup := p.Conts[c.Cont]; dup {
			return Result{Err: fmt.Sprintf("container %q: %v", c.Cont, ErrExists)}
		}
		ct := &ContInfo{Label: c.Cont, UUID: st.nextUUID("cont"), Props: copyMap(c.Props)}
		p.Conts[c.Cont] = ct
		return Result{Cont: cloneCont(ct)}
	case OpDestroyCont:
		p, ok := st.Pools[c.Pool]
		if !ok {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrNotFound)}
		}
		if _, ok := p.Conts[c.Cont]; !ok {
			return Result{Err: fmt.Sprintf("container %q: %v", c.Cont, ErrNotFound)}
		}
		delete(p.Conts, c.Cont)
		return Result{}
	case OpSetAttr:
		p, ok := st.Pools[c.Pool]
		if !ok {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrNotFound)}
		}
		p.Attrs[c.Key] = c.Value
		return Result{}
	case OpGetAttr:
		p, ok := st.Pools[c.Pool]
		if !ok {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrNotFound)}
		}
		v, ok := p.Attrs[c.Key]
		if !ok {
			return Result{Err: fmt.Sprintf("attr %q: %v", c.Key, ErrNotFound)}
		}
		return Result{Value: v}
	case OpListConts:
		p, ok := st.Pools[c.Pool]
		if !ok {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrNotFound)}
		}
		var names []string
		for name := range p.Conts {
			names = append(names, name)
		}
		sortStrings(names)
		return Result{List: names}
	case OpQueryPool:
		p, ok := st.Pools[c.Pool]
		if !ok {
			return Result{Err: fmt.Sprintf("pool %q: %v", c.Pool, ErrNotFound)}
		}
		return Result{Pool: clonePool(p)}
	default:
		return Result{Err: fmt.Sprintf("svc: unknown op %q", c.Op)}
	}
}

// Snapshot implements raft.StateMachine.
func (st *State) Snapshot() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		panic("svc: snapshot encode: " + err.Error())
	}
	return buf.Bytes()
}

// Restore implements raft.StateMachine.
func (st *State) Restore(snap []byte) {
	var next State
	if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&next); err != nil {
		panic("svc: snapshot decode: " + err.Error())
	}
	if next.Pools == nil {
		next.Pools = make(map[string]*PoolInfo)
	}
	*st = next
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func clonePool(p *PoolInfo) *PoolInfo {
	cp := &PoolInfo{
		Label:   p.Label,
		UUID:    p.UUID,
		Targets: append([]int(nil), p.Targets...),
		Conts:   make(map[string]*ContInfo, len(p.Conts)),
		Attrs:   copyMap(p.Attrs),
	}
	for k, v := range p.Conts {
		cp.Conts[k] = cloneCont(v)
	}
	return cp
}

func cloneCont(c *ContInfo) *ContInfo {
	return &ContInfo{Label: c.Label, UUID: c.UUID, Props: copyMap(c.Props)}
}

// insertion sort keeps svc free of package sort for tiny lists; determinism
// matters more than asymptotics here.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// fabricTransport carries raft traffic between replica fabric nodes.
type fabricTransport struct {
	f     *fabric.Fabric
	nodes []*fabric.Node // indexed by raft ID
	svc   *Service
}

// Send implements raft.Transport.
func (t *fabricTransport) Send(p *sim.Proc, from, to int, m interface{}, size int64) {
	t.f.Send(p, t.nodes[from], t.nodes[to], raftEnvelope{m}, size)
}

// raftEnvelope wraps raft traffic so mailbox pumps can distinguish it.
type raftEnvelope struct{ msg interface{} }

// Service is a running pool service: raft replicas hosted on fabric nodes.
type Service struct {
	sim      *sim.Sim
	fabric   *fabric.Fabric
	replicas []*raft.Node
	nodes    []*fabric.Node
}

// ServiceName is the fabric RPC service name clients call.
const ServiceName = "rsvc"

// Start boots a pool service replicated across the given fabric nodes.
func Start(s *sim.Sim, f *fabric.Fabric, nodes []*fabric.Node) *Service {
	svc := &Service{sim: s, fabric: f, nodes: nodes}
	tr := &fabricTransport{f: f, nodes: nodes, svc: svc}
	peers := make([]int, len(nodes))
	for i := range peers {
		peers[i] = i
	}
	for i, fn := range nodes {
		cfg := raft.DefaultConfig(i, peers)
		node := raft.NewNode(s, cfg, tr, func() raft.StateMachine { return NewState() })
		svc.replicas = append(svc.replicas, node)
		// Pump: fabric mailbox -> raft mailbox.
		node, fn := node, fn
		s.Spawn(fmt.Sprintf("rsvc-pump-%d", i), func(p *sim.Proc) {
			for {
				v, ok := fn.Mailbox().Recv(p)
				if !ok {
					return
				}
				if env, isRaft := v.(fabric.Datagram); isRaft {
					if re, ok := env.Body.(raftEnvelope); ok {
						node.Mailbox().Send(re.msg)
					}
				}
			}
		})
		// RPC endpoint: clients propose through the fabric.
		replicaIdx := i
		fn.Register(ServiceName, func(p *sim.Proc, req fabric.Request) fabric.Response {
			cmdBytes := req.Body.([]byte)
			fut := svc.replicas[replicaIdx].Propose(cmdBytes)
			res, err := fut.Wait(p)
			if err != nil {
				return fabric.Response{Err: err, Size: 64}
			}
			r := res.(Result)
			return fabric.Response{Body: r, Size: 256}
		})
	}
	return svc
}

// Stop shuts down every replica (used to quiesce the simulation).
func (s *Service) Stop() {
	for _, r := range s.replicas {
		r.Stop()
	}
	for _, n := range s.nodes {
		n.Mailbox().Close()
	}
}

// WaitReady runs the simulation until a leader exists or the deadline
// passes.
func (s *Service) WaitReady(deadline time.Duration) bool {
	for s.sim.Now() < deadline {
		s.sim.RunUntil(s.sim.Now() + 10*time.Millisecond)
		for _, r := range s.replicas {
			if r.Role() == raft.Leader {
				return true
			}
		}
	}
	return false
}

// Leader returns the current leader replica index, or -1.
func (s *Service) Leader() int {
	for i, r := range s.replicas {
		if r.Role() == raft.Leader {
			return i
		}
	}
	return -1
}

// ReplicaNode returns the fabric node hosting replica i.
func (s *Service) ReplicaNode(i int) *fabric.Node { return s.nodes[i] }

// NumReplicas returns the replica count.
func (s *Service) NumReplicas() int { return len(s.replicas) }

// Kill crashes replica i (failure injection).
func (s *Service) Kill(i int) { s.replicas[i].Kill() }

// Restartreplica recovers replica i.
func (s *Service) Restart(i int) { s.replicas[i].Restart() }

// Client executes pool service commands from a client fabric node,
// following leader redirects.
type Client struct {
	svc    *Service
	src    *fabric.Node
	leader int // cached leader replica index
}

// NewClient returns a client bound to the caller's fabric node.
func NewClient(s *Service, src *fabric.Node) *Client {
	return &Client{svc: s, src: src}
}

// Execute runs one command, retrying across replicas until the leader
// accepts it or the attempt budget is exhausted.
func (c *Client) Execute(p *sim.Proc, cmd Command) (Result, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cmd); err != nil {
		return Result{}, fmt.Errorf("svc: encode: %w", err)
	}
	payload := buf.Bytes()
	attempts := 0
	replica := c.leader
	deadline := p.Now() + 30*time.Second // election storms resolve well within this
	for p.Now() < deadline {
		attempts++
		resp := c.svc.fabric.Call(p, c.src, c.svc.nodes[replica], ServiceName, fabric.Request{
			Op:   string(cmd.Op),
			Body: payload,
			Size: int64(len(payload)) + 64,
		})
		if resp.Err != nil {
			var nle *raft.NotLeaderError
			if errors.As(resp.Err, &nle) && nle.LeaderHint >= 0 && nle.LeaderHint < c.svc.NumReplicas() {
				replica = nle.LeaderHint
			} else {
				replica = (replica + 1) % c.svc.NumReplicas()
			}
			p.Sleep(25 * time.Millisecond) // back off past election churn
			continue
		}
		c.leader = replica
		r := resp.Body.(Result)
		if r.Err != "" {
			return r, errors.New(r.Err)
		}
		return r, nil
	}
	return Result{}, fmt.Errorf("svc: no leader reachable after %d attempts", attempts)
}
