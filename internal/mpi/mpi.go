// Package mpi provides a miniature MPI runtime over the simulation kernel:
// ranks as simulated processes, and the collectives the I/O middleware and
// the IOR harness need (Barrier, Bcast, Allreduce, Gather, point-to-point
// exchange). Collectives follow MPI call-order matching semantics: every
// rank's n-th call on a tag joins the same instance.
package mpi

import (
	"fmt"
	"math"
	"time"

	"daosim/internal/fabric"
	"daosim/internal/sim"
)

// World is an MPI job: a fixed set of ranks mapped onto client nodes.
type World struct {
	sim   *sim.Sim
	fab   *fabric.Fabric
	nodes []*fabric.Node // per-rank hosting node
	insts map[string]*collective
}

// NewWorld creates a world with one entry in nodes per rank (repeat nodes
// for multiple ranks per node).
func NewWorld(s *sim.Sim, f *fabric.Fabric, nodes []*fabric.Node) *World {
	if len(nodes) == 0 {
		panic("mpi: empty world")
	}
	return &World{sim: s, fab: f, nodes: nodes, insts: make(map[string]*collective)}
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.nodes) }

// Rank is one process's view of the world.
type Rank struct {
	world *World
	id    int
	seqs  map[string]int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.Size() }

// Node returns the fabric node hosting this rank.
func (r *Rank) Node() *fabric.Node { return r.world.nodes[r.id] }

// Parallel runs body on every rank concurrently and returns when all ranks
// have finished, reporting the wall-clock (virtual) span.
func (w *World) Parallel(p *sim.Proc, body func(p *sim.Proc, r *Rank)) time.Duration {
	start := p.Now()
	wg := sim.NewWaitGroup(w.sim)
	for i := 0; i < w.Size(); i++ {
		r := &Rank{world: w, id: i, seqs: make(map[string]int)}
		wg.Go(fmt.Sprintf("rank%d", i), func(cp *sim.Proc) {
			body(cp, r)
		})
	}
	wg.Wait(p)
	return p.Now() - start
}

// collective is one in-flight collective instance.
type collective struct {
	n       int
	arrived int
	waiters []*sim.Proc
	vals    map[int]interface{}
	result  interface{}
	done    bool
}

// join implements rendezvous: each rank contributes val; the last arrival
// computes the result with reduce and wakes everyone.
func (r *Rank) join(p *sim.Proc, tag string, val interface{}, reduce func(vals map[int]interface{}) interface{}) interface{} {
	w := r.world
	seq := r.seqs[tag]
	r.seqs[tag]++
	key := fmt.Sprintf("%s#%d", tag, seq)
	inst, ok := w.insts[key]
	if !ok {
		inst = &collective{n: w.Size(), vals: make(map[int]interface{})}
		w.insts[key] = inst
	}
	inst.vals[r.id] = val
	inst.arrived++
	if inst.arrived < inst.n {
		inst.waiters = append(inst.waiters, p)
		p.ParkIdle()
		return inst.result
	}
	// Last arrival: reduce, release, and clean up the instance.
	if reduce != nil {
		inst.result = reduce(inst.vals)
	}
	inst.done = true
	for _, wt := range inst.waiters {
		w.sim.Unpark(wt)
	}
	delete(w.insts, key)
	return inst.result
}

// latencyFactor charges a log2(n) software latency for a collective's
// synchronization rounds.
func (r *Rank) latencyFactor(p *sim.Proc) {
	n := r.Size()
	if n <= 1 {
		return
	}
	rounds := int(math.Ceil(math.Log2(float64(n))))
	p.Sleep(time.Duration(rounds) * r.world.fab.Config().WireLatency * 2)
}

// Barrier blocks until every rank arrives.
func (r *Rank) Barrier(p *sim.Proc) {
	r.join(p, "barrier", nil, nil)
	r.latencyFactor(p)
}

// Bcast distributes root's value to every rank, charging non-root ranks the
// payload transfer from root's node.
func (r *Rank) Bcast(p *sim.Proc, root int, val interface{}, size int64) interface{} {
	out := r.join(p, "bcast", val, func(vals map[int]interface{}) interface{} {
		return vals[root]
	})
	if r.id != root && size > 0 {
		r.world.fab.Move(p, r.world.nodes[root], r.Node(), size)
	}
	r.latencyFactor(p)
	return out
}

// AllreduceFloat combines one float64 per rank with op ("sum", "min",
// "max") and returns the result on every rank.
func (r *Rank) AllreduceFloat(p *sim.Proc, val float64, op string) float64 {
	out := r.join(p, "allreduce-"+op, val, func(vals map[int]interface{}) interface{} {
		acc := math.NaN()
		for _, v := range vals {
			f := v.(float64)
			switch {
			case math.IsNaN(acc):
				acc = f
			case op == "sum":
				acc += f
			case op == "min" && f < acc:
				acc = f
			case op == "max" && f > acc:
				acc = f
			}
		}
		return acc
	})
	r.latencyFactor(p)
	return out.(float64)
}

// AllreduceDuration reduces a duration with "min"/"max"/"sum".
func (r *Rank) AllreduceDuration(p *sim.Proc, d time.Duration, op string) time.Duration {
	return time.Duration(r.AllreduceFloat(p, float64(d), op))
}

// Gather collects every rank's value at root (others receive nil). Each
// non-root rank charges its payload transfer to root's node.
func (r *Rank) Gather(p *sim.Proc, root int, val interface{}, size int64) []interface{} {
	if r.id != root && size > 0 {
		r.world.fab.Move(p, r.Node(), r.world.nodes[root], size)
	}
	out := r.join(p, "gather", val, func(vals map[int]interface{}) interface{} {
		ordered := make([]interface{}, len(vals))
		for id, v := range vals {
			ordered[id] = v
		}
		return ordered
	})
	r.latencyFactor(p)
	if r.id != root {
		return nil
	}
	return out.([]interface{})
}

// Received is one item delivered by Exchange, tagged with its sender.
type Received struct {
	From int
	Val  interface{}
}

// Exchange performs a personalized all-to-all: sizes[i] bytes go from this
// rank to rank i, and vals carry the payload descriptors. Every rank gets
// back the items addressed to it, tagged with their senders and ordered by
// sender rank. This backs MPI-I/O's two-phase collective shuffle.
func (r *Rank) Exchange(p *sim.Proc, vals []interface{}, sizes []int64) []Received {
	if len(vals) != r.Size() || len(sizes) != r.Size() {
		panic("mpi: Exchange needs one value and size per rank")
	}
	// Charge the outgoing transfers (skipping self and empty slots).
	for dst, size := range sizes {
		if dst == r.id || size <= 0 {
			continue
		}
		r.world.fab.Move(p, r.Node(), r.world.nodes[dst], size)
	}
	type payload struct {
		from int
		vals []interface{}
	}
	out := r.join(p, "exchange", payload{from: r.id, vals: vals}, func(all map[int]interface{}) interface{} {
		// result[i] = items addressed to rank i, ordered by sender.
		result := make([][]Received, r.Size())
		for from := 0; from < r.Size(); from++ {
			pl := all[from].(payload)
			for dst, item := range pl.vals {
				if item != nil {
					result[dst] = append(result[dst], Received{From: pl.from, Val: item})
				}
			}
		}
		return result
	})
	r.latencyFactor(p)
	return out.([][]Received)[r.id]
}
