package mpi_test

import (
	"testing"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/fabric"
	"daosim/internal/mpi"
	"daosim/internal/sim"
)

// withWorld runs body inside the main process with a world of the given
// rank count spread round-robin over the small testbed's client nodes.
func withWorld(t *testing.T, ranks int, body func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World)) {
	t.Helper()
	tb := cluster.New(cluster.Small())
	nodes := make([]*fabric.Node, ranks)
	for i := range nodes {
		nodes[i] = tb.ClientNode(i)
	}
	w := mpi.NewWorld(tb.Sim, tb.Fabric, nodes)
	tb.Run(func(p *sim.Proc) { body(p, tb, w) })
}

func TestParallelRunsAllRanks(t *testing.T) {
	withWorld(t, 4, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		seen := make([]bool, 4)
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			seen[r.ID()] = true
			if r.Size() != 4 {
				t.Errorf("size = %d", r.Size())
			}
		})
		for i, s := range seen {
			if !s {
				t.Errorf("rank %d never ran", i)
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	withWorld(t, 4, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		var after []time.Duration
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			// Ranks arrive at staggered times; all leave at/after the last.
			cp.Sleep(time.Duration(r.ID()) * 10 * time.Millisecond)
			r.Barrier(cp)
			after = append(after, cp.Now())
		})
		for _, at := range after {
			if at < 30*time.Millisecond {
				t.Errorf("rank left barrier at %v, before last arrival", at)
			}
		}
	})
}

func TestBcastDeliversRootValue(t *testing.T) {
	withWorld(t, 4, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			val := r.Bcast(cp, 2, r.ID()*100, 1024)
			if val.(int) != 200 {
				t.Errorf("rank %d got %v, want 200", r.ID(), val)
			}
		})
	})
}

func TestAllreduce(t *testing.T) {
	withWorld(t, 4, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			v := float64(r.ID() + 1) // 1,2,3,4
			if got := r.AllreduceFloat(cp, v, "sum"); got != 10 {
				t.Errorf("sum = %v", got)
			}
			if got := r.AllreduceFloat(cp, v, "min"); got != 1 {
				t.Errorf("min = %v", got)
			}
			if got := r.AllreduceFloat(cp, v, "max"); got != 4 {
				t.Errorf("max = %v", got)
			}
		})
	})
}

func TestAllreduceDuration(t *testing.T) {
	withWorld(t, 2, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			d := time.Duration(r.ID()+1) * time.Second
			if got := r.AllreduceDuration(cp, d, "max"); got != 2*time.Second {
				t.Errorf("max duration = %v", got)
			}
		})
	})
}

func TestGather(t *testing.T) {
	withWorld(t, 4, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			out := r.Gather(cp, 0, r.ID()*7, 64)
			if r.ID() == 0 {
				if len(out) != 4 {
					t.Errorf("gather len = %d", len(out))
					return
				}
				for i, v := range out {
					if v.(int) != i*7 {
						t.Errorf("out[%d] = %v", i, v)
					}
				}
			} else if out != nil {
				t.Errorf("non-root got %v", out)
			}
		})
	})
}

func TestExchangeRoutesDescriptors(t *testing.T) {
	withWorld(t, 3, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			// Each rank sends "from<me>to<dst>" to every rank.
			vals := make([]interface{}, 3)
			sizes := make([]int64, 3)
			for dst := 0; dst < 3; dst++ {
				vals[dst] = [2]int{r.ID(), dst}
				sizes[dst] = 1000
			}
			got := r.Exchange(cp, vals, sizes)
			if len(got) != 3 {
				t.Errorf("rank %d received %d descriptors", r.ID(), len(got))
				return
			}
			seenFrom := map[int]bool{}
			for _, g := range got {
				pair := g.Val.([2]int)
				if pair[1] != r.ID() {
					t.Errorf("rank %d got descriptor for %d", r.ID(), pair[1])
				}
				if pair[0] != g.From {
					t.Errorf("sender tag %d disagrees with payload %d", g.From, pair[0])
				}
				seenFrom[pair[0]] = true
			}
			if len(seenFrom) != 3 {
				t.Errorf("rank %d missing senders: %v", r.ID(), seenFrom)
			}
		})
	})
}

func TestCollectiveOrderMatching(t *testing.T) {
	// Two back-to-back barriers + reductions must match by call order even
	// when ranks proceed at different speeds.
	withWorld(t, 2, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			if r.ID() == 1 {
				cp.Sleep(50 * time.Millisecond)
			}
			first := r.AllreduceFloat(cp, float64(r.ID()), "sum")
			second := r.AllreduceFloat(cp, float64(r.ID())*10, "sum")
			if first != 1 || second != 10 {
				t.Errorf("rank %d: first=%v second=%v", r.ID(), first, second)
			}
		})
	})
}

func TestBcastChargesTransferTime(t *testing.T) {
	withWorld(t, 2, func(p *sim.Proc, tb *cluster.Testbed, w *mpi.World) {
		var rootDone, otherDone time.Duration
		w.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			start := cp.Now()
			r.Bcast(cp, 0, "payload", 100<<20) // 100 MiB
			if r.ID() == 0 {
				rootDone = cp.Now() - start
			} else {
				otherDone = cp.Now() - start
			}
		})
		if otherDone <= rootDone {
			t.Errorf("receiver (%v) should pay more than root (%v)", otherDone, rootDone)
		}
	})
}
