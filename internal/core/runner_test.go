package core

import (
	"strings"
	"testing"

	"daosim/internal/ior"
	"daosim/internal/placement"
)

// TestParallelMatchesSequential is the determinism contract of the Runner:
// a parallel sweep must render byte-identical tables and CSV to a
// sequential sweep of the same seed.
func TestParallelMatchesSequential(t *testing.T) {
	variants := []Variant{
		{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
		{Label: "daos SX", API: ior.APIDFS, Class: placement.SX},
	}
	cfg := tinyConfig("easy", variants)

	cfg.Parallelism = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if seq.CSV() != par.CSV() {
		t.Fatalf("CSV diverged:\n--- sequential ---\n%s--- parallel ---\n%s", seq.CSV(), par.CSV())
	}
	for _, write := range []bool{true, false} {
		if seq.Table(write) != par.Table(write) {
			t.Fatalf("table (write=%v) diverged:\n--- sequential ---\n%s--- parallel ---\n%s",
				write, seq.Table(write), par.Table(write))
		}
	}
}

// TestPointErrorsCollected verifies that a failing point no longer aborts
// the sweep: the rest of the grid completes, the failure lands in Point.Err,
// and Run's joined error names the failing series.
func TestPointErrorsCollected(t *testing.T) {
	variants := []Variant{
		{Label: "good", API: ior.APIDFS, Class: placement.S2},
		{Label: "broken", API: ior.API("BOGUS"), Class: placement.S2},
	}
	st, err := Run(tinyConfig("easy", variants))
	if err == nil {
		t.Fatal("sweep with a broken variant returned nil error")
	}
	if !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "unknown API") {
		t.Fatalf("joined error does not name the failure: %v", err)
	}
	if st == nil {
		t.Fatal("study not returned alongside point errors")
	}
	good, bad := st.find("good"), st.find("broken")
	for _, pt := range good.Points {
		if pt.Err != "" || pt.WriteGiBs <= 0 {
			t.Fatalf("good series damaged by sibling failure: %+v", pt)
		}
	}
	for _, pt := range bad.Points {
		if pt.Err == "" {
			t.Fatalf("failed point missing Err: %+v", pt)
		}
		if pt.Nodes == 0 || pt.Ranks == 0 {
			t.Fatalf("failed point missing grid coordinates: %+v", pt)
		}
	}
}

// TestPointTimingsCollected verifies every completed point records its host
// wall-clock cost.
func TestPointTimingsCollected(t *testing.T) {
	st, err := Run(tinyConfig("easy", []Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Elapsed <= 0 {
		t.Fatal("study missing batch wall-clock")
	}
	for _, pt := range st.Series[0].Points {
		if pt.Elapsed <= 0 {
			t.Fatalf("point missing wall-clock: %+v", pt)
		}
	}
}

// TestRunAllBatches verifies that independent studies submitted as one batch
// come back in order, fully populated.
func TestRunAllBatches(t *testing.T) {
	cfgA := tinyConfig("easy", []Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}})
	cfgB := tinyConfig("hard", []Variant{{Label: "daos (DFS)", API: ior.APIDFS, Class: placement.SX}})
	studies, err := (&Runner{Parallelism: 4}).RunAll([]Config{cfgA, cfgB})
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 2 {
		t.Fatalf("studies = %d", len(studies))
	}
	if studies[0].Config.Workload != "easy" || studies[1].Config.Workload != "hard" {
		t.Fatalf("batch order lost: %q then %q", studies[0].Config.Workload, studies[1].Config.Workload)
	}
	for _, st := range studies {
		for _, s := range st.Series {
			for _, pt := range s.Points {
				if pt.WriteGiBs <= 0 || pt.ReadGiBs <= 0 {
					t.Fatalf("unpopulated point in batch: %+v", pt)
				}
			}
		}
	}
}

// TestPointSeedDerivation pins the seed-derivation scheme: order-free,
// decorrelated, and collision-free across a realistic grid.
func TestPointSeedDerivation(t *testing.T) {
	seen := map[uint64]string{}
	for vi := 0; vi < 8; vi++ {
		for _, nodes := range []int{1, 2, 4, 8, 16} {
			s := PointSeed(2023, vi, nodes)
			if s == 0 {
				t.Fatal("zero seed would alias the RNG's remapped default")
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and (v%d,n%d)", prev, vi, nodes)
			}
			seen[s] = string(rune('a'+vi)) + "@" + string(rune('0'+nodes))
			if s != PointSeed(2023, vi, nodes) {
				t.Fatal("pointSeed not deterministic")
			}
		}
	}
	if PointSeed(1, 0, 1) == PointSeed(2, 0, 1) {
		t.Fatal("base seed does not decorrelate points")
	}
}
