package core

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"daosim/internal/ior"
	"daosim/internal/placement"
)

// TestParallelMatchesSequential is the determinism contract of the Runner:
// a parallel sweep must render byte-identical tables and CSV to a
// sequential sweep of the same seed.
func TestParallelMatchesSequential(t *testing.T) {
	variants := []Variant{
		{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
		{Label: "daos SX", API: ior.APIDFS, Class: placement.SX},
	}
	cfg := tinyConfig("easy", variants)

	cfg.Parallelism = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if seq.CSV() != par.CSV() {
		t.Fatalf("CSV diverged:\n--- sequential ---\n%s--- parallel ---\n%s", seq.CSV(), par.CSV())
	}
	for _, write := range []bool{true, false} {
		if seq.Table(write) != par.Table(write) {
			t.Fatalf("table (write=%v) diverged:\n--- sequential ---\n%s--- parallel ---\n%s",
				write, seq.Table(write), par.Table(write))
		}
	}
}

// TestPointErrorsCollected verifies that a failing point no longer aborts
// the sweep: the rest of the grid completes, the failure lands in Point.Err,
// and Run's joined error names the failing series.
func TestPointErrorsCollected(t *testing.T) {
	variants := []Variant{
		{Label: "good", API: ior.APIDFS, Class: placement.S2},
		{Label: "broken", API: ior.API("BOGUS"), Class: placement.S2},
	}
	st, err := Run(tinyConfig("easy", variants))
	if err == nil {
		t.Fatal("sweep with a broken variant returned nil error")
	}
	if !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "unknown API") {
		t.Fatalf("joined error does not name the failure: %v", err)
	}
	if st == nil {
		t.Fatal("study not returned alongside point errors")
	}
	good, bad := st.find("good"), st.find("broken")
	for _, pt := range good.Points {
		if pt.Err != "" || pt.WriteGiBs <= 0 {
			t.Fatalf("good series damaged by sibling failure: %+v", pt)
		}
	}
	for _, pt := range bad.Points {
		if pt.Err == "" {
			t.Fatalf("failed point missing Err: %+v", pt)
		}
		if pt.Nodes == 0 || pt.Ranks == 0 {
			t.Fatalf("failed point missing grid coordinates: %+v", pt)
		}
	}
}

// TestPointTimingsCollected verifies every completed point records its host
// wall-clock cost.
func TestPointTimingsCollected(t *testing.T) {
	st, err := Run(tinyConfig("easy", []Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Elapsed <= 0 {
		t.Fatal("study missing batch wall-clock")
	}
	for _, pt := range st.Series[0].Points {
		if pt.Elapsed <= 0 {
			t.Fatalf("point missing wall-clock: %+v", pt)
		}
	}
}

// TestRunAllBatches verifies that independent studies submitted as one batch
// come back in order, fully populated.
func TestRunAllBatches(t *testing.T) {
	cfgA := tinyConfig("easy", []Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}})
	cfgB := tinyConfig("hard", []Variant{{Label: "daos (DFS)", API: ior.APIDFS, Class: placement.SX}})
	studies, err := (&Runner{Parallelism: 4}).RunAll([]Config{cfgA, cfgB})
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 2 {
		t.Fatalf("studies = %d", len(studies))
	}
	if studies[0].Config.Workload != "easy" || studies[1].Config.Workload != "hard" {
		t.Fatalf("batch order lost: %q then %q", studies[0].Config.Workload, studies[1].Config.Workload)
	}
	for _, st := range studies {
		for _, s := range st.Series {
			for _, pt := range s.Points {
				if pt.WriteGiBs <= 0 || pt.ReadGiBs <= 0 {
					t.Fatalf("unpopulated point in batch: %+v", pt)
				}
			}
		}
	}
}

// TestDecomposeGrid pins the decomposition contract both the in-process
// Runner and the studysvc wire protocol build on: jobs enumerate the grid
// in (study, variant, node) order, carry slot coordinates that biject onto
// the pre-allocated Points slots, derive their seeds with PointSeed from
// the defaulted config, and never mutate the caller's configs.
func TestDecomposeGrid(t *testing.T) {
	cfgA := tinyConfig("easy", []Variant{
		{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
		{Label: "daos SX", API: ior.APIDFS, Class: placement.SX},
	})
	cfgB := tinyConfig("hard", []Variant{{Label: "daos (DFS)", API: ior.APIDFS, Class: placement.SX}})
	in := []Config{cfgA, cfgB}

	studies, jobs := Decompose(in)

	if in[0].Seed != 0 || in[0].PPN != cfgA.PPN {
		t.Fatalf("Decompose mutated its input: %+v", in[0])
	}
	want := len(cfgA.Variants)*len(cfgA.Nodes) + len(cfgB.Variants)*len(cfgB.Nodes)
	if len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	seen := map[[3]int]bool{}
	for _, j := range jobs {
		slot := [3]int{j.Study, j.Series, j.Index}
		if seen[slot] {
			t.Fatalf("duplicate slot %v", slot)
		}
		seen[slot] = true
		st := studies[j.Study]
		if j.Variant.Label != st.Series[j.Series].Variant.Label {
			t.Fatalf("slot %v variant mismatch: %q vs %q", slot, j.Variant.Label, st.Series[j.Series].Variant.Label)
		}
		if j.Nodes != st.Config.Nodes[j.Index] {
			t.Fatalf("slot %v node mismatch: %d vs %d", slot, j.Nodes, st.Config.Nodes[j.Index])
		}
		if j.Cfg.Seed == 0 {
			t.Fatal("job carries an undefaulted config")
		}
		if j.Seed != PointSeed(j.Cfg.Seed, j.Series, j.Nodes) {
			t.Fatalf("slot %v seed not derived with PointSeed", slot)
		}
	}
	if len(seen) != want {
		t.Fatalf("slots covered = %d, want %d", len(seen), want)
	}
}

// TestArenaMatchesColdExecution is the cross-point reuse contract: a sweep
// on the Runner's per-worker kernel arenas must render byte-identical
// output to executing every job on a cold kernel. Two variants and two
// node counts give each arena several consecutive points to contaminate —
// any RNG, pool, or heap state leaking across Sim.Reset shows up here as
// a CSV diff.
func TestArenaMatchesColdExecution(t *testing.T) {
	variants := []Variant{
		{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
		{Label: "daos SX", API: ior.APIDFS, Class: placement.SX},
	}
	cfg := tinyConfig("easy", variants)
	cfg.Parallelism = 1 // one worker arena executes every point in sequence

	warm, err := (&Runner{Parallelism: 1}).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, jobs := Decompose([]Config{cfg})
	for _, j := range jobs {
		cold[j.Study].Series[j.Series].Points[j.Index] = j.Execute()
	}
	if warm.CSV() != cold[0].CSV() {
		t.Fatalf("arena sweep diverged from cold execution:\n--- arena ---\n%s--- cold ---\n%s", warm.CSV(), cold[0].CSV())
	}
}

// TestRunAllNoGoroutineLeak pins that the Runner's worker arenas drain
// before RunAll returns: repeated sweeps must not grow the process's
// goroutine count (each point spawns hundreds of simulated processes; a
// leak of even one per point fails this quickly).
func TestRunAllNoGoroutineLeak(t *testing.T) {
	cfg := tinyConfig("easy", []Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}})
	r := &Runner{Parallelism: 2}
	// Warm-up run so lazily-created runtime goroutines settle into the
	// baseline.
	if _, err := r.RunAll([]Config{cfg}); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if _, err := r.RunAll([]Config{cfg}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked across RunAll: baseline %d, now %d\n%s",
			baseline, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestPointSeedDerivation pins the seed-derivation scheme: order-free,
// decorrelated, and collision-free across a realistic grid.
func TestPointSeedDerivation(t *testing.T) {
	seen := map[uint64]string{}
	for vi := 0; vi < 8; vi++ {
		for _, nodes := range []int{1, 2, 4, 8, 16} {
			s := PointSeed(2023, vi, nodes)
			if s == 0 {
				t.Fatal("zero seed would alias the RNG's remapped default")
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and (v%d,n%d)", prev, vi, nodes)
			}
			seen[s] = string(rune('a'+vi)) + "@" + string(rune('0'+nodes))
			if s != PointSeed(2023, vi, nodes) {
				t.Fatal("pointSeed not deterministic")
			}
		}
	}
	if PointSeed(1, 0, 1) == PointSeed(2, 0, 1) {
		t.Fatal("base seed does not decorrelate points")
	}
}
