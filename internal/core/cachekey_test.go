package core

import (
	"reflect"
	"testing"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/engine"
	"daosim/internal/fabric"
	"daosim/internal/ior"
	"daosim/internal/placement"
)

// keyConfig builds a fully-specified Config from fuzz-controlled scalars.
func keyConfig(workload string, ppn int, block, transfer int64, segments, iters int) Config {
	cfg := Config{
		Workload:     workload,
		Nodes:        []int{1, 2, 4},
		PPN:          ppn,
		BlockSize:    block,
		TransferSize: transfer,
		Segments:     segments,
		Iterations:   iters,
	}
	cfg.Defaults()
	return cfg
}

// FuzzPointKey fuzzes the cache-key canonicalization invariant both ways:
// two configurations that differ in any output-affecting field must hash
// differently, and configurations that differ only in output-irrelevant
// ways (series label, pool width, node-list order, study-seed bookkeeping)
// must hash identically. `go test` runs the seed corpus; `go test
// -fuzz=FuzzPointKey ./internal/core` explores further.
func FuzzPointKey(f *testing.F) {
	f.Add("easy", 8, int64(16<<20), int64(2<<20), 1, 1, 4, uint64(2023), "DFS", 1, false)
	f.Add("hard", 1, int64(1<<20), int64(256<<10), 2, 3, 16, uint64(1), "MPIIO", 4, true)
	f.Add("easy", 16, int64(64<<20), int64(4<<20), 1, 2, 1, uint64(0xDEADBEEF), "HDF5", 0, false)
	f.Add("", 0, int64(0), int64(0), 0, 0, 0, uint64(0), "", -1, true)
	f.Fuzz(func(t *testing.T, workload string, ppn int, block, transfer int64, segments, iters, nodes int, seed uint64, api string, class int, collective bool) {
		cfg := keyConfig(workload, ppn, block, transfer, segments, iters)
		v := Variant{Label: "series", API: ior.API(api), Class: placement.ClassID(class), Collective: collective}
		base := pointKey(cfg, v, nodes, seed)

		// Determinism: the same inputs always produce the same key.
		if pointKey(cfg, v, nodes, seed) != base {
			t.Fatal("pointKey not deterministic")
		}

		// Equivalences: fields that cannot change a measured number must
		// not move the key.
		{
			cfg2 := cfg
			cfg2.Parallelism = cfg.Parallelism + 7
			cfg2.Nodes = []int{4, 2, 1} // point keys ignore grid shape and order
			cfg2.Seed = seed + 1        // only the derived seed argument matters
			cfg2.Testbed.Seed++         // runPoint overwrites the testbed seed
			cfg2.Rebuild.RateGiBs++     // inert without a fault plan
			cfg2.Rebuild.ChunkSize++
			v2 := v
			v2.Label = v.Label + " (renamed)"
			if pointKey(cfg2, v2, nodes, seed) != base {
				t.Fatal("output-irrelevant field moved the key")
			}
		}

		// Distinctions: every output-affecting field must move the key.
		type mutation struct {
			name string
			key  func() [32]byte
		}
		mut := func(name string, edit func(cfg *Config, v *Variant, nodes *int, seed *uint64)) mutation {
			return mutation{name, func() [32]byte {
				c2, v2, n2, s2 := cfg, v, nodes, seed
				edit(&c2, &v2, &n2, &s2)
				return pointKey(c2, v2, n2, s2)
			}}
		}
		muts := []mutation{
			mut("workload", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Workload += "x" }),
			mut("ppn", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.PPN++ }),
			mut("block", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.BlockSize++ }),
			mut("transfer", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.TransferSize++ }),
			mut("segments", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Segments++ }),
			mut("iterations", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Iterations++ }),
			mut("nodes", func(_ *Config, _ *Variant, n *int, _ *uint64) { *n++ }),
			mut("seed", func(_ *Config, _ *Variant, _ *int, s *uint64) { *s++ }),
			mut("api", func(_ *Config, v *Variant, _ *int, _ *uint64) { v.API += "x" }),
			mut("class", func(_ *Config, v *Variant, _ *int, _ *uint64) { v.Class++ }),
			mut("collective", func(_ *Config, v *Variant, _ *int, _ *uint64) { v.Collective = !v.Collective }),
			mut("server nodes", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.ServerNodes++ }),
			mut("engines/node", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.EnginesPerNode++ }),
			mut("targets/engine", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.TargetsPerEngine++ }),
			mut("dcpmm modules", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.DCPMMModules++ }),
			mut("client nodes", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.ClientNodes++ }),
			mut("svc replicas", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.ServiceReplicas++ }),
			mut("wire latency", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.Fabric.WireLatency += time.Nanosecond }),
			mut("nic bw", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.Fabric.NICBW++ }),
			mut("flow bw", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.Fabric.FlowBW++ }),
			mut("msg overhead", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.Fabric.MsgOverhead++ }),
			mut("rpc cost", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.EngineCosts.RPCCost += time.Nanosecond }),
			mut("extent cost", func(c *Config, _ *Variant, _ *int, _ *uint64) { c.Testbed.EngineCosts.PerExtentCost += time.Nanosecond }),
			mut("first-touch cost", func(c *Config, _ *Variant, _ *int, _ *uint64) {
				c.Testbed.EngineCosts.FirstTouchCost += time.Nanosecond
			}),
		}
		for _, m := range muts {
			if m.key() == base {
				t.Fatalf("mutating %s did not change the key — the cache would serve wrong physics", m.name)
			}
		}

		// Fault-plan fields key into a separate address space: adding a plan
		// moves the key, and every plan/rebuild field moves it again.
		cfgF := cfg
		cfgF.FaultPlan = []cluster.FaultEvent{{At: 5 * time.Millisecond, Kind: cluster.KillEngine, Engine: 0}}
		cfgF.Rebuild = cluster.RebuildConfig{RateGiBs: 2, ChunkSize: 4 << 20}
		baseF := pointKey(cfgF, v, nodes, seed)
		if baseF == base {
			t.Fatal("adding a fault plan did not change the key")
		}
		fmuts := []struct {
			name string
			edit func(c *Config)
		}{
			{"fault at", func(c *Config) { c.FaultPlan[0].At += time.Nanosecond }},
			{"fault kind", func(c *Config) { c.FaultPlan[0].Kind = cluster.RestartEngine }},
			{"fault engine", func(c *Config) { c.FaultPlan[0].Engine++ }},
			{"fault count", func(c *Config) {
				c.FaultPlan = append(c.FaultPlan, cluster.FaultEvent{At: 9 * time.Millisecond, Kind: cluster.RestartEngine})
			}},
			{"rebuild rate", func(c *Config) { c.Rebuild.RateGiBs++ }},
			{"rebuild chunk", func(c *Config) { c.Rebuild.ChunkSize++ }},
		}
		for _, m := range fmuts {
			c2 := cfgF
			c2.FaultPlan = append([]cluster.FaultEvent(nil), cfgF.FaultPlan...)
			m.edit(&c2)
			if pointKey(c2, v, nodes, seed) == baseF {
				t.Fatalf("mutating %s did not change the key — the cache would serve wrong physics", m.name)
			}
		}
	})
}

// TestKeySchemaExhaustive pins the field counts of every struct pointKey
// canonicalizes, so adding a field to any of them fails here until the new
// field is either hashed in pointKeyAt (plus a mutation in FuzzPointKey) or
// documented as output-irrelevant in pointKey's comment — the guard against
// silently under-keying the cache.
func TestKeySchemaExhaustive(t *testing.T) {
	counts := []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"core.Config", reflect.TypeOf(Config{}), 13},
		{"core.Variant", reflect.TypeOf(Variant{}), 4},
		{"cluster.Config", reflect.TypeOf(cluster.Config{}), 9},
		{"cluster.FaultEvent", reflect.TypeOf(cluster.FaultEvent{}), 3},
		{"cluster.RebuildConfig", reflect.TypeOf(cluster.RebuildConfig{}), 2},
		{"fabric.Config", reflect.TypeOf(fabric.Config{}), 4},
		{"engine.Costs", reflect.TypeOf(engine.Costs{}), 3},
	}
	for _, c := range counts {
		if got := c.typ.NumField(); got != c.want {
			t.Errorf("%s grew from %d to %d fields: hash any output-affecting addition in pointKeyAt, add a FuzzPointKey mutation (or document the exclusion), then update this count",
				c.name, c.want, got)
		}
	}
}

// TestKernelVersionInKey proves a sim.KernelVersion bump invalidates every
// cached point: the same configuration keys differently under a different
// kernel version.
func TestKernelVersionInKey(t *testing.T) {
	cfg := keyConfig("easy", 8, 16<<20, 2<<20, 1, 1)
	v := Variant{API: ior.APIDFS, Class: placement.S2}
	if pointKeyAt(1, cfg, v, 4, 2023) == pointKeyAt(2, cfg, v, 4, 2023) {
		t.Fatal("kernel version does not reach the cache key")
	}
}

// TestPointKeyGridCollisionFree checks that every point of a realistic
// batch (two figures plus ablation grids) gets a distinct key — grid
// coordinates flow into the key via node count, geometry, and derived seed.
func TestPointKeyGridCollisionFree(t *testing.T) {
	seen := map[string]string{}
	add := func(cfg Config, tag string) {
		cfg.Defaults()
		for vi, v := range cfg.Variants {
			for _, n := range cfg.Nodes {
				k := pointKey(cfg, v, n, PointSeed(cfg.Seed, vi, n)).String()
				id := tag + "/" + v.Label + "@" + string(rune('0'+n))
				// Identical physics across experiments may legitimately
				// share a key (that is the cache working across sweeps);
				// within one grid, collisions would corrupt the study.
				if prev, dup := seen[k]; dup && prev[:len(tag)] == tag {
					t.Fatalf("key collision: %s vs %s", prev, id)
				}
				seen[k] = id
			}
		}
	}
	easy := Config{Workload: "easy", Nodes: []int{1, 2, 4, 8}, Variants: EasyVariants()}
	hard := Config{Workload: "hard", Nodes: []int{1, 2, 4, 8}, Variants: HardVariants()}
	add(easy, "easy")
	add(hard, "hard")
}
