// Package core implements the paper's contribution as a library: the DAOS
// interface study. A Study sweeps IOR workloads across client-node counts,
// access interfaces (DFS, POSIX/DFuse, MPI-I/O, HDF5), and object classes
// (S1, S2, ... SX), on a simulated NEXTGenIO-class testbed, and reports the
// read/write bandwidth series behind the paper's Figures 1 and 2 together
// with machine-checkable versions of its qualitative claims.
//
// # Architecture: the Runner and seed derivation
//
// A sweep is a grid of independent (variant, node-count) points, each
// simulated on a fresh testbed. The Runner fans those points out across a
// bounded worker pool (Config.Parallelism workers, default GOMAXPROCS), and
// Runner.RunAll additionally pools the points of several studies so that
// batches of small studies still fill every core. Results land in
// pre-allocated Study slots, point failures are recorded per point
// (Point.Err) rather than aborting the sweep, and per-point host wall-clock
// goes to Point.Elapsed.
//
// Determinism survives parallelism because nothing is shared between points:
// each point's testbed seed is derived from (Config.Seed, variant index,
// node count) with splitmix64 — never from execution order — so a parallel
// sweep produces byte-identical Table/CSV output to a sequential run of the
// same seed.
//
// Because a point is a pure function of its inputs, the Runner can memoize
// completed points through an optional content-addressed cache
// (Runner.Cache, backed by internal/cache): the key hashes every
// output-affecting field — geometry, variant physics, node count, derived
// seed, testbed cost models, and sim.KernelVersion — so a warm sweep
// replays byte-identical results without simulating.
package core

import (
	"fmt"
	"strings"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/ior"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// Variant is one line on a figure: an interface plus an object class.
type Variant struct {
	Label string
	API   ior.API
	Class placement.ClassID
	// Collective selects collective MPI-I/O (shared-file only).
	Collective bool
}

// Config describes a study sweep.
type Config struct {
	// Workload is "easy" (file-per-process) or "hard" (shared file).
	Workload string
	// Nodes is the client-node sweep (e.g. 1,2,4,8,16).
	Nodes []int
	// PPN is ranks per client node.
	PPN int
	// BlockSize and TransferSize set the per-rank IOR geometry.
	BlockSize    int64
	TransferSize int64
	// Segments and Iterations follow IOR semantics.
	Segments   int
	Iterations int
	// Variants are the series to measure.
	Variants []Variant
	// Testbed configures the simulated cluster (defaults to NEXTGenIO).
	Testbed cluster.Config
	// Seed is the study seed from which every point's testbed seed is
	// derived (defaults to the testbed seed).
	Seed uint64
	// Parallelism bounds how many points run concurrently (defaults to
	// runtime.GOMAXPROCS(0)). Results are identical at any setting.
	Parallelism int
	// FaultPlan schedules deterministic failure injection: each event
	// fires at its virtual instant relative to the workload start (engine
	// kill, pool-map exclusion, rebuild traffic; restart re-integrates).
	// Empty means no faults — byte-identical to a config without the field.
	FaultPlan []cluster.FaultEvent
	// Rebuild models the rebuild traffic a kill triggers (rate-paced
	// streams on the survivors). Only consulted when FaultPlan is non-empty.
	Rebuild cluster.RebuildConfig
}

// Point is one measured sweep point.
type Point struct {
	Nodes     int
	Ranks     int
	WriteGiBs float64
	ReadGiBs  float64
	// DegradedGiBs, RecoverySec, and MapTransitions are the degraded-mode
	// outputs of a point run with a FaultPlan: client bandwidth inside the
	// degraded window, the window's virtual length, and the pool-map
	// version steps the plan caused. All zero without a plan.
	DegradedGiBs   float64
	RecoverySec    float64
	MapTransitions int
	// Elapsed is the host wall-clock time spent simulating this point. It
	// is execution-dependent and deliberately excluded from Table and CSV.
	Elapsed time.Duration
	// Err records the point's failure, if any; the rest of the sweep still
	// runs.
	Err string
}

// Series is one variant's sweep.
type Series struct {
	Variant Variant
	Points  []Point
}

// Study is a completed sweep.
type Study struct {
	Config Config
	Series []Series
	// Elapsed is the host wall-clock time of the runner batch that
	// produced this study.
	Elapsed time.Duration
}

// NumPoints returns the number of sweep points in the study's grid.
func (st *Study) NumPoints() int {
	n := 0
	for _, s := range st.Series {
		n += len(s.Points)
	}
	return n
}

// Defaults fills zero fields with the paper-scaled geometry.
func (c *Config) Defaults() {
	if c.Workload == "" {
		c.Workload = "easy"
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{1, 2, 4, 8, 16}
	}
	if c.PPN == 0 {
		c.PPN = 8
	}
	if c.BlockSize == 0 {
		c.BlockSize = 16 << 20
	}
	if c.TransferSize == 0 {
		c.TransferSize = 2 << 20
	}
	if c.Segments == 0 {
		c.Segments = 1
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.Testbed.ServerNodes == 0 {
		c.Testbed = cluster.NEXTGenIO()
	}
	if c.Seed == 0 {
		c.Seed = c.Testbed.Seed
	}
}

// EasyVariants returns the paper's Figure 1 series: the DFS API at S1, S2,
// and SX, plus MPI-I/O and HDF5 through the DFuse mount (class-matched to
// S2 so the DFS-vs-MPI-I/O comparison isolates the interface).
func EasyVariants() []Variant {
	return []Variant{
		{Label: "daos S1", API: ior.APIDFS, Class: placement.S1},
		{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
		{Label: "daos SX", API: ior.APIDFS, Class: placement.SX},
		{Label: "mpiio (dfuse)", API: ior.APIMPIIO, Class: placement.S2},
		{Label: "hdf5 (dfuse)", API: ior.APIHDF5, Class: placement.S2},
	}
}

// HardVariants returns the paper's Figure 2 series: the interfaces over a
// single shared SX file.
func HardVariants() []Variant {
	return []Variant{
		{Label: "daos (DFS)", API: ior.APIDFS, Class: placement.SX},
		{Label: "mpiio (dfuse)", API: ior.APIMPIIO, Class: placement.SX},
		{Label: "hdf5 (dfuse)", API: ior.APIHDF5, Class: placement.SX},
	}
}

// Run executes the sweep on a worker pool sized by cfg.Parallelism. Each
// (variant, node-count) point runs on a fresh testbed so points are fully
// independent (and memory from prior points is reclaimed). The returned
// Study always covers the whole grid; the error joins any point failures.
func Run(cfg Config) (*Study, error) {
	return (&Runner{}).Run(cfg)
}

// runPoint measures one (variant, nodes) cell on a testbed seeded with the
// point's derived seed. With a non-nil arena the testbed's simulation
// kernel is recycled from the arena's previous point instead of built from
// nothing; measured results are byte-identical either way.
func runPoint(cfg Config, v Variant, nodes int, seed uint64, arena *sim.Arena) (Point, error) {
	cfg.Testbed.Seed = seed
	var tb *cluster.Testbed
	if arena == nil {
		tb = cluster.New(cfg.Testbed)
	} else {
		tb = cluster.NewOn(arena.Get(seed), cfg.Testbed)
	}
	// Shut the testbed down when the point is done: server event loops exit
	// and the garbage collector can reclaim the point's data; otherwise a
	// long sweep accumulates every point's working set.
	defer tb.Shutdown()
	var res *ior.Result
	var runErr error
	var faults *cluster.FaultRun
	tb.Run(func(p *sim.Proc) {
		var err error
		// The fault plan's clock starts with the workload body, before pool
		// and namespace setup, so event times are pure config.
		faults, err = tb.InjectFaults(p, cfg.FaultPlan, cfg.Rebuild)
		if err != nil {
			runErr = err
			return
		}
		defer func() {
			if faults != nil {
				faults.Finish(p)
			}
		}()
		env, err := ior.NewEnv(p, tb, nodes, cfg.PPN)
		if err != nil {
			runErr = err
			return
		}
		res, runErr = ior.Run(p, env, ior.Config{
			API:          v.API,
			FilePerProc:  cfg.Workload == "easy",
			BlockSize:    cfg.BlockSize,
			TransferSize: cfg.TransferSize,
			Segments:     cfg.Segments,
			Iterations:   cfg.Iterations,
			DoWrite:      true,
			DoRead:       true,
			ReorderTasks: true,
			Class:        v.Class,
			Collective:   v.Collective,
		})
	})
	if runErr != nil {
		return Point{}, runErr
	}
	pt := Point{
		Nodes:     nodes,
		Ranks:     nodes * cfg.PPN,
		WriteGiBs: res.Write.MaxGiBs,
		ReadGiBs:  res.Read.MaxGiBs,
	}
	if faults != nil {
		rep := faults.Report()
		pt.DegradedGiBs = rep.DegradedGiBs
		pt.RecoverySec = rep.RecoverySec
		pt.MapTransitions = rep.MapTransitions
	}
	return pt, nil
}

// Table renders one panel (write or read) as an aligned text table with
// variants as rows and node counts as columns.
func (st *Study) Table(write bool) string {
	var b strings.Builder
	phase := "read"
	if write {
		phase = "write"
	}
	fmt.Fprintf(&b, "%-16s", fmt.Sprintf("%s GiB/s", phase))
	for _, n := range st.Config.Nodes {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteString("  <- client nodes\n")
	for _, s := range st.Series {
		fmt.Fprintf(&b, "%-16s", s.Variant.Label)
		for _, pt := range s.Points {
			v := pt.ReadGiBs
			if write {
				v = pt.WriteGiBs
			}
			fmt.Fprintf(&b, "%10.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the study as CSV (series, phase, nodes, ranks, gibs).
func (st *Study) CSV() string {
	var b strings.Builder
	b.WriteString("workload,series,phase,nodes,ranks,gibs\n")
	for _, s := range st.Series {
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%s,%s,write,%d,%d,%.4f\n", st.Config.Workload, s.Variant.Label, pt.Nodes, pt.Ranks, pt.WriteGiBs)
			fmt.Fprintf(&b, "%s,%s,read,%d,%d,%.4f\n", st.Config.Workload, s.Variant.Label, pt.Nodes, pt.Ranks, pt.ReadGiBs)
		}
	}
	return b.String()
}

// find returns the series with the given label.
func (st *Study) find(label string) *Series {
	for i := range st.Series {
		if st.Series[i].Variant.Label == label {
			return &st.Series[i]
		}
	}
	return nil
}

// at returns the point at the given node count.
func (s *Series) at(nodes int) *Point {
	for i := range s.Points {
		if s.Points[i].Nodes == nodes {
			return &s.Points[i]
		}
	}
	return nil
}

// Claim is one machine-checked qualitative statement from the paper.
type Claim struct {
	Name   string
	Pass   bool
	Detail string
}

// CheckEasyClaims verifies the paper's Figure 1 statements against an easy
// (file-per-process) study run with EasyVariants.
func (st *Study) CheckEasyClaims() []Claim {
	var claims []Claim
	s1, s2, sx := st.find("daos S1"), st.find("daos S2"), st.find("daos SX")
	mpiio, hdf5 := st.find("mpiio (dfuse)"), st.find("hdf5 (dfuse)")
	if s1 == nil || s2 == nil || sx == nil || mpiio == nil || hdf5 == nil {
		return []Claim{{Name: "series present", Pass: false, Detail: "missing a Figure 1 series"}}
	}
	first := st.Config.Nodes[0]
	last := st.Config.Nodes[len(st.Config.Nodes)-1]

	// "S2 gives the best performance for reading data."
	pass := true
	detail := ""
	for _, n := range st.Config.Nodes {
		best := s2.at(n).ReadGiBs
		for _, other := range []*Series{s1, sx} {
			if other.at(n).ReadGiBs > best*1.05 { // 5% tolerance
				pass = false
				detail += fmt.Sprintf("%s beats S2 at %d nodes; ", other.Variant.Label, n)
			}
		}
	}
	claims = append(claims, Claim{Name: "fig1: S2 best read class", Pass: pass, Detail: detail})

	// "S2 good for writing until the largest number of client nodes" and
	// "full sharding gives the best write performance for high contention
	// but lower performance for fewer writers."
	claims = append(claims, Claim{
		Name: "fig1: SX wins writes at max contention",
		Pass: sx.at(last).WriteGiBs >= s2.at(last).WriteGiBs && sx.at(last).WriteGiBs >= s1.at(last).WriteGiBs,
		Detail: fmt.Sprintf("at %d nodes: SX=%.1f S2=%.1f S1=%.1f",
			last, sx.at(last).WriteGiBs, s2.at(last).WriteGiBs, s1.at(last).WriteGiBs),
	})
	claims = append(claims, Claim{
		Name: "fig1: SX loses writes at few writers",
		Pass: sx.at(first).WriteGiBs <= s2.at(first).WriteGiBs,
		Detail: fmt.Sprintf("at %d nodes: SX=%.1f S2=%.1f",
			first, sx.at(first).WriteGiBs, s2.at(first).WriteGiBs),
	})

	// "DFS API gives very similar performance to MPI-I/O using the DFuse
	// mount" — within 40% at every point, both directions.
	pass, detail = true, ""
	for _, n := range st.Config.Nodes {
		dw, mw := s2.at(n).WriteGiBs, mpiio.at(n).WriteGiBs
		dr, mr := s2.at(n).ReadGiBs, mpiio.at(n).ReadGiBs
		if ratio(dw, mw) > 1.4 || ratio(dr, mr) > 1.4 {
			pass = false
			detail += fmt.Sprintf("gap at %d nodes (w %.1f/%.1f, r %.1f/%.1f); ", n, dw, mw, dr, mr)
		}
	}
	claims = append(claims, Claim{Name: "fig1: DFS ~ MPI-I/O over dfuse", Pass: pass, Detail: detail})

	// "HDF5 using the DFuse mount gives much lower performance, both for
	// read and write": HDF5 must be strictly the lowest line at every
	// point, and clearly lower (<= 0.7x MPI-I/O) in the latency-bound half
	// of the sweep. (Under deep write saturation every interface converges
	// toward the same media ceiling, so the write gap narrows at the
	// largest node counts — see EXPERIMENTS.md.)
	pass, detail = true, ""
	for i, n := range st.Config.Nodes {
		h, m := hdf5.at(n), mpiio.at(n)
		if h.WriteGiBs >= m.WriteGiBs || h.ReadGiBs >= m.ReadGiBs {
			pass = false
			detail += fmt.Sprintf("HDF5 not lowest at %d nodes; ", n)
		}
		if i < len(st.Config.Nodes)/2 {
			if h.WriteGiBs > 0.7*m.WriteGiBs || h.ReadGiBs > 0.7*m.ReadGiBs {
				pass = false
				detail += fmt.Sprintf("HDF5 not much lower at %d nodes; ", n)
			}
		}
	}
	claims = append(claims, Claim{Name: "fig1: HDF5 much lower", Pass: pass, Detail: detail})
	return claims
}

// CheckHardClaims verifies the paper's Figure 2 statements against a hard
// (shared-file) study run with HardVariants.
func (st *Study) CheckHardClaims() []Claim {
	var claims []Claim
	dfsS, mpiioS, hdf5S := st.find("daos (DFS)"), st.find("mpiio (dfuse)"), st.find("hdf5 (dfuse)")
	if dfsS == nil || mpiioS == nil || hdf5S == nil {
		return []Claim{{Name: "series present", Pass: false, Detail: "missing a Figure 2 series"}}
	}

	// "Similar performance achieved across interfaces" for reads: spread
	// within ~2.5x at every point.
	pass, detail := true, ""
	for _, n := range st.Config.Nodes {
		vals := []float64{dfsS.at(n).ReadGiBs, mpiioS.at(n).ReadGiBs, hdf5S.at(n).ReadGiBs}
		if spread(vals) > 2.5 {
			pass = false
			detail += fmt.Sprintf("read spread %.1fx at %d nodes; ", spread(vals), n)
		}
	}
	claims = append(claims, Claim{Name: "fig2: interfaces converge on reads", Pass: pass, Detail: detail})

	// "The DFS API gives the highest write bandwidth."
	pass, detail = true, ""
	for _, n := range st.Config.Nodes {
		d := dfsS.at(n).WriteGiBs
		if mpiioS.at(n).WriteGiBs > d*1.05 || hdf5S.at(n).WriteGiBs > d*1.05 {
			pass = false
			detail += fmt.Sprintf("DFS not highest write at %d nodes; ", n)
		}
	}
	claims = append(claims, Claim{Name: "fig2: DFS highest write", Pass: pass, Detail: detail})
	return claims
}

// CheckCrossClaims verifies that easy and hard overall performance are
// similar (the paper's contrast with parallel filesystems), comparing the
// same DFS interface across the two studies at the largest node count.
func CheckCrossClaims(easy, hard *Study) []Claim {
	e := easy.find("daos SX")
	h := hard.find("daos (DFS)")
	if e == nil || h == nil {
		return []Claim{{Name: "cross: series present", Pass: false}}
	}
	last := easy.Config.Nodes[len(easy.Config.Nodes)-1]
	ep, hp := e.at(last), h.at(last)
	pass := ratio(ep.WriteGiBs, hp.WriteGiBs) < 2.0 && ratio(ep.ReadGiBs, hp.ReadGiBs) < 2.0
	return []Claim{{
		Name: "cross: shared-file ~ file-per-process",
		Pass: pass,
		Detail: fmt.Sprintf("at %d nodes: easy w/r %.1f/%.1f vs hard %.1f/%.1f",
			last, ep.WriteGiBs, ep.ReadGiBs, hp.WriteGiBs, hp.ReadGiBs),
	}}
}

// ratio returns max(a,b)/min(a,b).
func ratio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 1e9
	}
	return a / b
}

// spread returns max/min over vals.
func spread(vals []float64) float64 {
	min, max := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return ratio(max, min)
}
