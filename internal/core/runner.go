package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"daosim/internal/cache"
	"daosim/internal/sim"
)

// StudyRunner executes batches of study sweeps. Runner is the in-process
// implementation; internal/studysvc's Client satisfies the same interface by
// routing the identical point grid through a daosd study server, so any
// caller (the bench experiments, the figures command) can swap execution
// backends without observing a difference in results.
type StudyRunner interface {
	Run(cfg Config) (*Study, error)
	RunAll(cfgs []Config) ([]*Study, error)
}

var _ StudyRunner = (*Runner)(nil)

// Runner executes study sweeps on a bounded worker pool. Every
// (variant, node-count) point of a study is an independent simulation on its
// own testbed, so points fan out across OS threads; per-point seeds are
// derived deterministically from the study seed (see pointSeed), which makes
// parallel and sequential runs byte-identical.
type Runner struct {
	// Parallelism bounds the number of points simulated concurrently
	// across the whole batch, and when set explicitly it overrides any
	// per-Config bound. When zero or negative, the strictest positive
	// Config.Parallelism in the batch applies, and failing that
	// runtime.GOMAXPROCS(0).
	Parallelism int

	// Cache, when non-nil, memoizes completed points by the content hash
	// of every output-affecting input (see pointKey). A hit replays the
	// point's bandwidths without simulating; output is byte-identical to
	// an uncached run because points are pure functions of their key.
	// Failed points are never cached. The cache may be shared across
	// Runners and batches — identical keys mean identical physics.
	Cache *cache.Cache
}

// Run executes one study sweep.
func (r *Runner) Run(cfg Config) (*Study, error) {
	studies, err := r.RunAll([]Config{cfg})
	return studies[0], err
}

// PointJob is the unit of study work: one (variant, node-count) grid cell
// with its deterministically derived seed and the coordinates of the result
// slot it fills (studies[Study].Series[Series].Points[Index]). It is what a
// scheduler — the in-process Runner or a daosd worker fleet — dispatches,
// and it carries everything needed to execute the point or compute its
// cache key, so any executor anywhere produces the identical Point.
type PointJob struct {
	// Study, Series, Index locate the result slot in the batch returned by
	// Decompose.
	Study, Series, Index int
	// Cfg is the defaulted study configuration the point belongs to.
	Cfg Config
	// Variant and Nodes are the grid cell.
	Variant Variant
	Nodes   int
	// Seed is the point's derived testbed seed (see PointSeed).
	Seed uint64
}

// Decompose normalizes a batch of study configs (applying Defaults to a
// copy; the input is not mutated) and expands it into pre-allocated result
// Studies plus the flat list of point jobs that fills them. It is the
// single decomposition used by every execution path — Runner.RunAll here,
// and the studysvc server and client on both ends of the wire — so the
// grid shape, slot order, and derived seeds can never diverge between
// backends.
func Decompose(cfgs []Config) ([]*Study, []PointJob) {
	studies := make([]*Study, len(cfgs))
	var jobs []PointJob
	for i := range cfgs {
		cfg := cfgs[i]
		cfg.Defaults()
		st := &Study{Config: cfg, Series: make([]Series, len(cfg.Variants))}
		for vi, v := range cfg.Variants {
			st.Series[vi] = Series{Variant: v, Points: make([]Point, len(cfg.Nodes))}
			for ni, n := range cfg.Nodes {
				jobs = append(jobs, PointJob{
					Study: i, Series: vi, Index: ni,
					Cfg: cfg, Variant: v, Nodes: n,
					Seed: PointSeed(cfg.Seed, vi, n),
				})
			}
		}
		studies[i] = st
	}
	return studies, jobs
}

// Execute simulates the job's point on a cold kernel and returns it with
// grid coordinates, wall-clock, and any failure filled in. It is a pure
// function of the job: two executions of the same job — in this process or
// another — return Points with identical measured fields.
func (j PointJob) Execute() Point { return j.ExecuteIn(nil) }

// ExecuteIn is Execute with the point's simulation kernel drawn from arena:
// consecutive calls on one arena reuse the event-heap storage, event and
// flow pools, RNG, and process-goroutine arena of the previous point
// instead of rebuilding them. A nil arena builds a cold kernel. Measured
// fields are byte-identical on every path — the executor owning a long-
// lived worker (the Runner's pool, a studysvc worker slot) holds one arena
// per worker for its lifetime.
func (j PointJob) ExecuteIn(arena *sim.Arena) Point {
	t0 := time.Now()
	pt, err := runPoint(j.Cfg, j.Variant, j.Nodes, j.Seed, arena)
	pt.Nodes = j.Nodes
	pt.Ranks = j.Nodes * j.Cfg.PPN
	pt.Elapsed = time.Since(t0)
	if err != nil {
		pt.Err = err.Error()
	}
	return pt
}

// FromEntry reconstructs the job's Point from its memoized cache entry,
// exactly as Execute would have measured it (Elapsed is the replay cost,
// which never reaches Table or CSV).
func (j PointJob) FromEntry(e cache.Entry) Point {
	return Point{
		Nodes:          j.Nodes,
		Ranks:          j.Nodes * j.Cfg.PPN,
		WriteGiBs:      e.WriteGiBs,
		ReadGiBs:       e.ReadGiBs,
		DegradedGiBs:   e.DegradedGiBs,
		RecoverySec:    e.RecoverySec,
		MapTransitions: int(e.MapTransitions),
	}
}

// CacheEntry returns the cache entry memoizing this point. Callers must not
// cache failed points (Point.Err non-empty): an error is not a measurement.
func (p Point) CacheEntry() cache.Entry {
	return cache.Entry{
		WriteGiBs:      p.WriteGiBs,
		ReadGiBs:       p.ReadGiBs,
		DegradedGiBs:   p.DegradedGiBs,
		RecoverySec:    p.RecoverySec,
		MapTransitions: int64(p.MapTransitions),
	}
}

// PointErrors is the error a sweep returns when it ran to completion but
// some points recorded failures: every study is populated (failed points
// carry their message in Point.Err), and Count says how many points failed.
// It renders identically to the joined per-point errors, so callers that
// only print it see no difference — but callers that need to distinguish
// "the sweep finished with bad points" from "the sweep never finished"
// (transport failure, truncated stream) can errors.As for it. cmd/studyctl
// uses exactly that split for its exit codes.
type PointErrors struct {
	// Count is the number of failed points joined in Err.
	Count int
	// Err is the joined per-point failures, in grid order, formatted
	// exactly as Runner.RunAll has always reported them.
	Err error
}

// Error implements error, rendering the joined point failures verbatim.
func (e *PointErrors) Error() string { return e.Err.Error() }

// Unwrap exposes the joined per-point errors to errors.Is/As.
func (e *PointErrors) Unwrap() error { return e.Err }

// Finish completes a Decompose batch after every job's Point has been
// stored: it stamps the batch wall-clock on each study and joins the point
// failures in grid order, formatted exactly as Runner.RunAll reports them.
// A non-nil return is always a *PointErrors.
func Finish(studies []*Study, elapsed time.Duration) error {
	var errs []error
	for _, st := range studies {
		st.Elapsed = elapsed
		for _, s := range st.Series {
			for _, pt := range s.Points {
				if pt.Err != "" {
					errs = append(errs, fmt.Errorf("core: %s @%d nodes: %s", s.Variant.Label, pt.Nodes, pt.Err))
				}
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return &PointErrors{Count: len(errs), Err: errors.Join(errs...)}
}

// RunAll executes several independent study sweeps on one shared worker
// pool, so small studies (single-point ablations, per-size sweeps) still fill
// every core. Studies come back in input order, fully populated: a failed
// point records its error in Point.Err instead of aborting the batch, and
// the returned error joins every point failure (nil if all points succeeded).
func (r *Runner) RunAll(cfgs []Config) ([]*Study, error) {
	studies, jobs := Decompose(cfgs)

	workers := r.Parallelism
	if workers <= 0 {
		// Honor the strictest explicit per-Config bound: a config that
		// asked for a narrow pool (memory, sequential timing) must not be
		// widened by being batched with others.
		for i := range cfgs {
			if p := cfgs[i].Parallelism; p > 0 && (workers <= 0 || p < workers) {
				workers = p
			}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// One kernel arena per pool worker, held for the whole batch: each
	// worker executes its points serially on recycled kernel state (event
	// heap, pools, process goroutines) instead of rebuilding a Sim per
	// point. Results are unaffected — point seeds, not execution state,
	// determine every measured number — and the arenas drain before RunAll
	// returns, so repeated batches leave no goroutines behind.
	arenas := make([]*sim.Arena, workers)
	for i := range arenas {
		arenas[i] = sim.NewArena()
	}
	start := time.Now()
	mapN(workers, len(jobs), func(w, i int) {
		j := jobs[i]
		// Each job owns a distinct Points slot, so no locking.
		studies[j.Study].Series[j.Series].Points[j.Index] = r.runJob(arenas[w], j)
	})
	for _, a := range arenas {
		a.Drain()
	}
	return studies, Finish(studies, time.Since(start))
}

// runJob measures one sweep point on the worker's arena, consulting the
// Runner's cache first. On a miss the simulated result is stored so later
// sweeps over the same configuration replay it.
func (r *Runner) runJob(arena *sim.Arena, j PointJob) Point {
	if r.Cache == nil {
		return j.ExecuteIn(arena)
	}
	t0 := time.Now()
	k := j.Key()
	if e, ok := r.Cache.Get(k); ok {
		pt := j.FromEntry(e)
		pt.Elapsed = time.Since(t0)
		return pt
	}
	pt := j.ExecuteIn(arena)
	if pt.Err == "" {
		r.Cache.Put(k, pt.CacheEntry())
	}
	pt.Elapsed = time.Since(t0)
	return pt
}

// Map runs n independent jobs on the Runner's worker pool and joins their
// errors. It is the generic fan-out for simulations that are not Config
// grids (e.g. the bench native-array points), sharing the Runner's pool
// width so mixed batches stay within one concurrency bound.
func (r *Runner) Map(n int, fn func(i int) error) error {
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	mapN(workers, n, func(_, i int) { errs[i] = fn(i) })
	return errors.Join(errs...)
}

// mapN runs fn(0..n-1) on a pool of at most workers goroutines and waits
// for all of them. fn additionally receives the index of the pool worker
// running it, so callers can give each worker private reusable state (the
// Runner's kernel arenas) without locking.
func mapN(workers, n int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range ch {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// PointSeed derives the testbed seed for one sweep point from the study seed,
// the variant index, and the client-node count, via two rounds of splitmix64.
// Points therefore get decorrelated, reproducible seeds that do not depend on
// execution order — the property that makes parallel and sequential sweeps
// byte-identical.
func PointSeed(base uint64, variant, nodes int) uint64 {
	x := splitmix64(base + 0xA24BAED4963EE407*uint64(variant+1))
	x = splitmix64(x + 0x9FB21C651E98DF25*uint64(nodes+1))
	if x == 0 {
		x = 1 // the simulator RNG remaps zero; keep seeds in its injective range
	}
	return x
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.), the standard
// mixer for deriving independent seeds from a counter-like state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
