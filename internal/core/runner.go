package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"daosim/internal/cache"
)

// Runner executes study sweeps on a bounded worker pool. Every
// (variant, node-count) point of a study is an independent simulation on its
// own testbed, so points fan out across OS threads; per-point seeds are
// derived deterministically from the study seed (see pointSeed), which makes
// parallel and sequential runs byte-identical.
type Runner struct {
	// Parallelism bounds the number of points simulated concurrently
	// across the whole batch, and when set explicitly it overrides any
	// per-Config bound. When zero or negative, the strictest positive
	// Config.Parallelism in the batch applies, and failing that
	// runtime.GOMAXPROCS(0).
	Parallelism int

	// Cache, when non-nil, memoizes completed points by the content hash
	// of every output-affecting input (see pointKey). A hit replays the
	// point's bandwidths without simulating; output is byte-identical to
	// an uncached run because points are pure functions of their key.
	// Failed points are never cached. The cache may be shared across
	// Runners and batches — identical keys mean identical physics.
	Cache *cache.Cache
}

// Run executes one study sweep.
func (r *Runner) Run(cfg Config) (*Study, error) {
	studies, err := r.RunAll([]Config{cfg})
	return studies[0], err
}

// RunAll executes several independent study sweeps on one shared worker
// pool, so small studies (single-point ablations, per-size sweeps) still fill
// every core. Studies come back in input order, fully populated: a failed
// point records its error in Point.Err instead of aborting the batch, and
// the returned error joins every point failure (nil if all points succeeded).
func (r *Runner) RunAll(cfgs []Config) ([]*Study, error) {
	studies := make([]*Study, len(cfgs))
	type job struct {
		study, series, point int
		cfg                  Config
		variant              Variant
		nodes                int
		seed                 uint64
	}
	var jobs []job
	for i := range cfgs {
		cfg := cfgs[i]
		cfg.Defaults()
		st := &Study{Config: cfg, Series: make([]Series, len(cfg.Variants))}
		for vi, v := range cfg.Variants {
			st.Series[vi] = Series{Variant: v, Points: make([]Point, len(cfg.Nodes))}
			for ni, n := range cfg.Nodes {
				jobs = append(jobs, job{
					study: i, series: vi, point: ni,
					cfg: cfg, variant: v, nodes: n,
					seed: PointSeed(cfg.Seed, vi, n),
				})
			}
		}
		studies[i] = st
	}

	workers := r.Parallelism
	if workers <= 0 {
		// Honor the strictest explicit per-Config bound: a config that
		// asked for a narrow pool (memory, sequential timing) must not be
		// widened by being batched with others.
		for i := range cfgs {
			if p := cfgs[i].Parallelism; p > 0 && (workers <= 0 || p < workers) {
				workers = p
			}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	start := time.Now()
	mapN(workers, len(jobs), func(i int) {
		j := jobs[i]
		t0 := time.Now()
		pt, err := r.point(j.cfg, j.variant, j.nodes, j.seed)
		pt.Nodes = j.nodes
		pt.Ranks = j.nodes * j.cfg.PPN
		pt.Elapsed = time.Since(t0)
		if err != nil {
			pt.Err = err.Error()
		}
		// Each job owns a distinct Points slot, so no locking.
		studies[j.study].Series[j.series].Points[j.point] = pt
	})
	elapsed := time.Since(start)

	var errs []error
	for _, st := range studies {
		st.Elapsed = elapsed
		for _, s := range st.Series {
			for _, pt := range s.Points {
				if pt.Err != "" {
					errs = append(errs, fmt.Errorf("core: %s @%d nodes: %s", s.Variant.Label, pt.Nodes, pt.Err))
				}
			}
		}
	}
	return studies, errors.Join(errs...)
}

// point measures one sweep point, consulting the Runner's cache first. On a
// miss the simulated result is stored so later sweeps over the same
// configuration replay it.
func (r *Runner) point(cfg Config, v Variant, nodes int, seed uint64) (Point, error) {
	if r.Cache == nil {
		return runPoint(cfg, v, nodes, seed)
	}
	k := pointKey(cfg, v, nodes, seed)
	if e, ok := r.Cache.Get(k); ok {
		return Point{WriteGiBs: e.WriteGiBs, ReadGiBs: e.ReadGiBs}, nil
	}
	pt, err := runPoint(cfg, v, nodes, seed)
	if err == nil {
		r.Cache.Put(k, cache.Entry{WriteGiBs: pt.WriteGiBs, ReadGiBs: pt.ReadGiBs})
	}
	return pt, err
}

// Map runs n independent jobs on the Runner's worker pool and joins their
// errors. It is the generic fan-out for simulations that are not Config
// grids (e.g. the bench native-array points), sharing the Runner's pool
// width so mixed batches stay within one concurrency bound.
func (r *Runner) Map(n int, fn func(i int) error) error {
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	mapN(workers, n, func(i int) { errs[i] = fn(i) })
	return errors.Join(errs...)
}

// mapN runs fn(0..n-1) on a pool of at most workers goroutines and waits for
// all of them.
func mapN(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// PointSeed derives the testbed seed for one sweep point from the study seed,
// the variant index, and the client-node count, via two rounds of splitmix64.
// Points therefore get decorrelated, reproducible seeds that do not depend on
// execution order — the property that makes parallel and sequential sweeps
// byte-identical.
func PointSeed(base uint64, variant, nodes int) uint64 {
	x := splitmix64(base + 0xA24BAED4963EE407*uint64(variant+1))
	x = splitmix64(x + 0x9FB21C651E98DF25*uint64(nodes+1))
	if x == 0 {
		x = 1 // the simulator RNG remaps zero; keep seeds in its injective range
	}
	return x
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.), the standard
// mixer for deriving independent seeds from a counter-like state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
