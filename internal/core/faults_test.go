package core

import (
	"strings"
	"testing"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/ior"
	"daosim/internal/placement"
)

// faultConfig is tinyConfig with larger blocks (so the workload body spans
// tens of virtual milliseconds: ~5ms of pool/namespace setup, then the
// write and read phases) plus a mid-workload kill/restart plan: the 15ms
// kill and 45ms restart both land inside the write phase.
func faultConfig() Config {
	cfg := tinyConfig("easy", []Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}})
	cfg.Nodes = []int{2}
	cfg.BlockSize = 32 << 20
	cfg.FaultPlan = []cluster.FaultEvent{
		{At: 15 * time.Millisecond, Kind: cluster.KillEngine, Engine: 0},
		{At: 45 * time.Millisecond, Kind: cluster.RestartEngine, Engine: 0},
	}
	cfg.Rebuild = cluster.RebuildConfig{RateGiBs: 2}
	return cfg
}

// TestFaultPointDegradedOutputs proves a mid-workload kill/restart produces
// the degraded-mode outputs: a nonzero degraded-window bandwidth, a nonzero
// recovery time, and one pool-map version step per excluded and restored
// target — while the workload itself still completes with positive
// bandwidth (client I/O fails over instead of erroring).
func TestFaultPointDegradedOutputs(t *testing.T) {
	st, err := Run(faultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pt := st.Series[0].Points[0]
	if pt.WriteGiBs <= 0 || pt.ReadGiBs <= 0 {
		t.Fatalf("workload did not survive the fault: %+v", pt)
	}
	if pt.DegradedGiBs <= 0 {
		t.Fatalf("degraded bandwidth = %v, want > 0", pt.DegradedGiBs)
	}
	if pt.RecoverySec <= 0 {
		t.Fatalf("recovery time = %v, want > 0", pt.RecoverySec)
	}
	// Each event steps the map version once per target on the engine: kill
	// excludes TargetsPerEngine targets, restart restores them.
	want := 2 * cluster.Small().TargetsPerEngine
	if pt.MapTransitions != want {
		t.Fatalf("map transitions = %d, want %d", pt.MapTransitions, want)
	}
	// Degraded-window bandwidth must be below the healthy aggregate: one
	// engine is gone and rebuild traffic contends for the survivors.
	healthy := faultConfig()
	healthy.FaultPlan = nil
	hst, err := Run(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if hpt := hst.Series[0].Points[0]; pt.DegradedGiBs >= hpt.WriteGiBs+hpt.ReadGiBs {
		t.Fatalf("degraded %v not below healthy write+read %v", pt.DegradedGiBs, hpt.WriteGiBs+hpt.ReadGiBs)
	}
}

// TestFaultPointDeterministic proves a faulted point is a pure function of
// its configuration: two independent runs agree bit-for-bit on every
// measured field, including the degraded-mode outputs.
func TestFaultPointDeterministic(t *testing.T) {
	a, err := Run(faultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Series[0].Points[0], b.Series[0].Points[0]
	pa.Elapsed, pb.Elapsed = 0, 0 // host wall-clock, not a measured field
	if pa != pb {
		t.Fatalf("faulted point not deterministic:\n%+v\n%+v", pa, pb)
	}
}

// TestFaultKillWithoutRestart proves a kill with no restart leaves the
// window open until the body ends: recovery clamps to the workload end and
// the map only steps down (exclusions, no restores).
func TestFaultKillWithoutRestart(t *testing.T) {
	cfg := faultConfig()
	cfg.FaultPlan = cfg.FaultPlan[:1] // kill only
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := st.Series[0].Points[0]
	if want := cluster.Small().TargetsPerEngine; pt.MapTransitions != want {
		t.Fatalf("map transitions = %d, want %d", pt.MapTransitions, want)
	}
	if pt.RecoverySec <= 0 || pt.WriteGiBs <= 0 || pt.ReadGiBs <= 0 {
		t.Fatalf("kill-only point: %+v", pt)
	}
}

// TestFaultPlanValidation proves a malformed plan fails the point up front
// instead of firing garbage into the simulation.
func TestFaultPlanValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		ev   cluster.FaultEvent
	}{
		{"negative at", cluster.FaultEvent{At: -time.Millisecond, Kind: cluster.KillEngine}},
		{"unknown kind", cluster.FaultEvent{At: time.Millisecond, Kind: cluster.FaultKind(99)}},
		{"engine out of range", cluster.FaultEvent{At: time.Millisecond, Kind: cluster.KillEngine, Engine: 999}},
	} {
		cfg := faultConfig()
		cfg.FaultPlan = []cluster.FaultEvent{tc.ev}
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), "fault") {
			t.Errorf("%s: err = %v, want fault validation error", tc.name, err)
		}
	}
}
