package core

import (
	"daosim/internal/cache"
	"daosim/internal/sim"
)

// pointKey is the content address of one sweep point: the canonical hash of
// every input that affects the point's measured bandwidths. The cache
// contract is one-directional — over-keying merely misses, under-keying
// silently serves wrong physics — so the rule for this function is: any
// field that reaches the simulation must be hashed, and only fields that
// provably cannot change a measured number may be omitted.
//
// Omitted on purpose:
//   - Variant.Label: names the series in tables/CSV; never reaches the
//     simulation.
//   - Config.Parallelism: scheduling width; results are identical at any
//     setting (the Runner's determinism contract).
//   - Config.Nodes as a list and the variant index: a point depends only on
//     its own node count; list order and grid shape reach the point solely
//     through the derived seed, which is hashed.
//   - Config.Seed and Testbed.Seed: runPoint overwrites the testbed seed
//     with the derived point seed, so only `seed` matters.
//   - Config.Rebuild with an empty FaultPlan: rebuild traffic only starts
//     on a kill, so without a plan the rebuild model provably cannot reach
//     the simulation (InjectFaults returns before reading it).
//
// The key is versioned twice: a schema tag for this function's own layout,
// and sim.KernelVersion for the simulated physics, so a kernel change
// invalidates every cached point at once.
func pointKey(cfg Config, v Variant, nodes int, seed uint64) cache.Key {
	return pointKeyAt(sim.KernelVersion, cfg, v, nodes, seed)
}

// Key returns the job's content address: the canonical hash of every input
// that affects the point's measured bandwidths (see pointKey). Any
// scheduler — the in-process Runner or the studysvc server — uses this key
// to consult the point cache before executing the job and to store the
// result after, so all backends share one memoization namespace.
func (j PointJob) Key() cache.Key {
	return pointKey(j.Cfg, j.Variant, j.Nodes, j.Seed)
}

// pointKeyAt is pointKey at an explicit kernel version (split out so tests
// can prove a version bump reaches the key).
func pointKeyAt(kernel int, cfg Config, v Variant, nodes int, seed uint64) cache.Key {
	h := cache.NewHasher()
	h.String("daosim/point/v1")
	h.Int(kernel)

	// Point identity and derived seed.
	h.Int(nodes)
	h.Uint64(seed)

	// IOR geometry (cfg.Workload selects file-per-process vs shared file).
	h.String(cfg.Workload)
	h.Int(cfg.PPN)
	h.Int64(cfg.BlockSize)
	h.Int64(cfg.TransferSize)
	h.Int(cfg.Segments)
	h.Int(cfg.Iterations)

	// Variant physics.
	h.String(string(v.API))
	h.Int(int(v.Class))
	h.Bool(v.Collective)

	// Testbed sizing.
	t := cfg.Testbed
	h.Int(t.ServerNodes)
	h.Int(t.EnginesPerNode)
	h.Int(t.TargetsPerEngine)
	h.Int(t.DCPMMModules)
	h.Int(t.ClientNodes)
	h.Int(t.ServiceReplicas)

	// Fabric cost model.
	h.Duration(t.Fabric.WireLatency)
	h.Float64(t.Fabric.NICBW)
	h.Float64(t.Fabric.FlowBW)
	h.Int64(t.Fabric.MsgOverhead)

	// Engine cost model.
	h.Duration(t.EngineCosts.RPCCost)
	h.Duration(t.EngineCosts.PerExtentCost)
	h.Duration(t.EngineCosts.FirstTouchCost)

	// Fault plan and rebuild model — hashed only when a plan exists, so a
	// zero-value plan keys byte-identically to the pre-fault schema and
	// every pre-fault cache entry (memory or disk) stays valid. The block
	// opens with its own domain tag and the event count, and every field is
	// fixed-width, so plans of different shapes cannot collide.
	if len(cfg.FaultPlan) > 0 {
		h.String("daosim/faults/v1")
		h.Int(len(cfg.FaultPlan))
		for _, ev := range cfg.FaultPlan {
			h.Duration(ev.At)
			h.Int(int(ev.Kind))
			h.Int(ev.Engine)
		}
		h.Float64(cfg.Rebuild.RateGiBs)
		h.Int64(cfg.Rebuild.ChunkSize)
	}

	return h.Sum()
}
