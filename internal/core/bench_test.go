package core

import (
	"testing"
)

// quickFigure1 is the reduced Figure 1 grid (bench.Quick scale): the five
// easy-workload variants over the {1, 4} node sweep — ten points per run,
// the unit the whole-sweep throughput benchmarks are quoted in.
func quickFigure1() Config {
	return Config{
		Workload: "easy",
		Nodes:    []int{1, 4},
		Variants: EasyVariants(),
	}
}

// reportPointRates attaches the sweep-level metrics the ledger tracks:
// host-nanoseconds per simulated point and points per second.
func reportPointRates(b *testing.B, points int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*points), "ns/point")
	b.ReportMetric(float64(b.N*points)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkPointThroughput measures whole-point cost through the production
// path: core.Runner.RunAll over the Quick Figure 1 grid, one worker (so the
// number is per-core and machine-size independent). The runner's pool
// workers reuse kernel state across consecutive points, so this is the
// reused-arena number.
func BenchmarkPointThroughput(b *testing.B) {
	cfgs := []Config{quickFigure1()}
	_, jobs := Decompose(cfgs)
	r := &Runner{Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunAll(cfgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPointRates(b, len(jobs))
}

// BenchmarkPointThroughputCold measures the same grid with a cold start for
// every point — each PointJob.Execute builds its simulator from nothing —
// isolating what cross-point kernel state reuse saves.
func BenchmarkPointThroughputCold(b *testing.B) {
	studies, jobs := Decompose([]Config{quickFigure1()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			studies[j.Study].Series[j.Series].Points[j.Index] = j.Execute()
		}
	}
	b.StopTimer()
	for _, st := range studies {
		for _, s := range st.Series {
			for _, pt := range s.Points {
				if pt.Err != "" {
					b.Fatalf("point failed: %s", pt.Err)
				}
			}
		}
	}
	reportPointRates(b, len(jobs))
}
