package core

import (
	"strings"
	"testing"

	"daosim/internal/cluster"
	"daosim/internal/ior"
	"daosim/internal/placement"
)

// tinyConfig keeps unit-test studies fast: 2 server nodes, 1-node sweep,
// small geometry.
func tinyConfig(workload string, variants []Variant) Config {
	return Config{
		Workload:     workload,
		Nodes:        []int{1, 2},
		PPN:          2,
		BlockSize:    4 << 20,
		TransferSize: 1 << 20,
		Variants:     variants,
		Testbed:      cluster.Small(),
	}
}

func TestRunProducesAllPoints(t *testing.T) {
	variants := []Variant{
		{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
		{Label: "daos S1", API: ior.APIDFS, Class: placement.S1},
	}
	st, err := Run(tinyConfig("easy", variants))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Series) != 2 {
		t.Fatalf("series = %d", len(st.Series))
	}
	for _, s := range st.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s points = %d", s.Variant.Label, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.WriteGiBs <= 0 || pt.ReadGiBs <= 0 {
				t.Fatalf("series %s: non-positive bandwidth %+v", s.Variant.Label, pt)
			}
			if pt.Ranks != pt.Nodes*2 {
				t.Fatalf("ranks = %d at %d nodes", pt.Ranks, pt.Nodes)
			}
		}
	}
}

func TestScalingMonotonicIsh(t *testing.T) {
	// Aggregate bandwidth at 2 nodes should exceed 1 node (unsaturated tiny
	// system).
	st, err := Run(tinyConfig("easy", []Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}}))
	if err != nil {
		t.Fatal(err)
	}
	pts := st.Series[0].Points
	if pts[1].ReadGiBs <= pts[0].ReadGiBs {
		t.Fatalf("read did not scale: %v then %v", pts[0].ReadGiBs, pts[1].ReadGiBs)
	}
}

func TestTableAndCSV(t *testing.T) {
	st, err := Run(tinyConfig("hard", []Variant{{Label: "daos (DFS)", API: ior.APIDFS, Class: placement.SX}}))
	if err != nil {
		t.Fatal(err)
	}
	table := st.Table(true)
	if !strings.Contains(table, "daos (DFS)") || !strings.Contains(table, "write GiB/s") {
		t.Fatalf("table missing content:\n%s", table)
	}
	csv := st.CSV()
	if !strings.Contains(csv, "hard,daos (DFS),write,1,") {
		t.Fatalf("csv missing rows:\n%s", csv)
	}
	lines := strings.Count(csv, "\n")
	if lines != 1+2*2 { // header + 2 points x 2 phases
		t.Fatalf("csv lines = %d", lines)
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	c.Defaults()
	if c.Workload != "easy" || c.PPN != 8 || len(c.Nodes) != 5 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Testbed.ServerNodes != 8 {
		t.Fatalf("testbed default: %+v", c.Testbed)
	}
}

func TestVariantSets(t *testing.T) {
	easy := EasyVariants()
	if len(easy) != 5 {
		t.Fatalf("easy variants = %d", len(easy))
	}
	hard := HardVariants()
	if len(hard) != 3 {
		t.Fatalf("hard variants = %d", len(hard))
	}
	for _, v := range hard {
		if v.Class != placement.SX {
			t.Fatalf("hard variant %s not SX", v.Label)
		}
	}
}

func TestClaimsMissingSeries(t *testing.T) {
	st := &Study{Config: Config{Nodes: []int{1}}}
	claims := st.CheckEasyClaims()
	if len(claims) != 1 || claims[0].Pass {
		t.Fatalf("claims on empty study = %+v", claims)
	}
	claims = st.CheckHardClaims()
	if len(claims) != 1 || claims[0].Pass {
		t.Fatalf("hard claims on empty study = %+v", claims)
	}
}

func TestRatioAndSpread(t *testing.T) {
	if ratio(2, 4) != 2 || ratio(4, 2) != 2 {
		t.Fatal("ratio not symmetric")
	}
	if ratio(1, 0) < 1e8 {
		t.Fatal("zero denominator not guarded")
	}
	if got := spread([]float64{1, 2, 4}); got != 4 {
		t.Fatalf("spread = %v", got)
	}
}

func TestClaimCheckersOnSyntheticData(t *testing.T) {
	// Build a study by hand that satisfies every easy claim, then flip one
	// number to make a specific claim fail.
	mk := func(sxLast float64) *Study {
		st := &Study{Config: Config{Nodes: []int{1, 16}}}
		add := func(label string, w1, r1, w16, r16 float64) {
			st.Series = append(st.Series, Series{
				Variant: Variant{Label: label},
				Points: []Point{
					{Nodes: 1, WriteGiBs: w1, ReadGiBs: r1},
					{Nodes: 16, WriteGiBs: w16, ReadGiBs: r16},
				},
			})
		}
		add("daos S1", 6, 8, 20, 100)
		add("daos S2", 9, 13, 27, 127)
		add("daos SX", 5, 7, sxLast, 80)
		add("mpiio (dfuse)", 8.5, 12, 25, 117)
		add("hdf5 (dfuse)", 1.5, 4, 15, 60)
		return st
	}
	good := mk(30)
	for _, c := range good.CheckEasyClaims() {
		if !c.Pass {
			t.Fatalf("synthetic good study failed claim %s: %s", c.Name, c.Detail)
		}
	}
	bad := mk(20) // SX no longer wins at 16 nodes
	found := false
	for _, c := range bad.CheckEasyClaims() {
		if c.Name == "fig1: SX wins writes at max contention" && !c.Pass {
			found = true
		}
	}
	if !found {
		t.Fatal("claim checker missed the SX regression")
	}
}
