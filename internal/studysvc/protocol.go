package studysvc

import (
	"time"

	"daosim/internal/core"
)

// The wire protocol. A submission is one HTTP exchange:
//
//	POST /v1/studies
//	Content-Type: application/json
//	{"configs": [core.Config, ...]}
//
// answered with a 200 and an NDJSON stream (one JSON object per line,
// flushed as produced):
//
//	{"points": N, "studies": M}                         <- Header, exactly once
//	{"study":0,"series":1,"index":0,"nodes":4, ...}     <- StreamPoint, N times, completion order
//	{"done":true,"points":N,"cache_hits":H, ...}        <- Trailer, exactly once
//
// Both ends run core.Decompose over the same configs, so the grid shape,
// slot coordinates, and derived seeds agree by construction; the stream
// only ever carries measured results, in whatever order points complete.
// Submission errors (malformed body, empty batch) are plain non-200
// responses with a text/plain diagnostic; once streaming has begun the
// status is committed, so a truncated stream (missing Trailer) is the
// error signal for mid-flight failure. A server that is draining rejects
// new submissions with a 503 before any stream byte is written.
//
// # Durable batches and resume
//
// On a server with a job store (daosd -store-dir) the exchange gains a
// batch identity. The client names its submission ("batch" in the POST
// body; the server generates an id when absent), the Header echoes it,
// and every StreamPoint carries a per-batch delivery sequence number
// ("seq", 1-based, dense in delivery order). A severed stream is then
// resumable Last-Event-Id style:
//
//	GET /v1/studies/{batch}?from=S
//
// re-attaches to the batch and streams — identical framing — every
// point with seq > S followed by the trailer, waiting for points that
// have not completed yet. Because completed points are journaled, this
// works across a server crash: the restarted daosd replays its journal,
// re-enqueues only the points that never finished, and serves the rest
// from the store. Resuming an unknown batch (no journal, or already
// fully delivered and retired) is a 404, which clients treat as
// permanent. Re-POSTing a batch id the server already knows is
// idempotent: it re-attaches from seq 0 instead of re-scheduling.
// Storeless servers omit "batch" from the Header; clients fall back to
// the truncation-is-an-error contract above.
//
// A second submission form, POST /v1/points, carries pre-decomposed
// point jobs — explicit seeds and slot coordinates instead of configs —
// and answers with the identical NDJSON framing. It is the
// coordinator-to-worker leg of a daosd fleet: the coordinator decomposes
// the client's configs once and ships each job verbatim, so the executing
// peer cannot re-derive anything differently and byte-identity holds
// across any fleet topology.
const (
	// PathSubmit accepts study batch submissions.
	PathSubmit = "/v1/studies"
	// PathSubmitPoints accepts pre-decomposed point-job submissions (the
	// coordinator-to-worker leg of a fleet).
	PathSubmitPoints = "/v1/points"
	// PathHealth answers 200 "ok" when the server is accepting work. Fleet
	// coordinators probe it to readmit workers that were marked down.
	PathHealth = "/v1/healthz"
	// PathStats reports scheduler, fleet, and cache counters.
	PathStats = "/v1/statsz"

	// ContentType is the media type of the result stream.
	ContentType = "application/x-ndjson"
)

// SubmitRequest is the body of a PathSubmit POST. Configs are raw study
// configurations: the server applies core defaults itself (via
// core.Decompose), so clients submit exactly what they would hand to
// core.Runner.RunAll.
type SubmitRequest struct {
	Configs []core.Config `json:"configs"`
	// Batch optionally names the submission for durable servers. A client
	// that picks its own id can re-POST the identical batch after losing
	// the connection before the Header arrived, and the server will
	// re-attach instead of re-scheduling. Storeless servers ignore it.
	Batch string `json:"batch,omitempty"`
}

// PointsRequest is the body of a PathSubmitPoints POST: fully-specified
// point jobs, exactly as the submitting coordinator's core.Decompose
// produced them. The executing server runs each job as received — the
// config inside is already defaulted and the seed already derived — so the
// result is byte-identical to executing the job anywhere else, and the
// job's cache key (core.PointJob.Key) is the same on every machine.
type PointsRequest struct {
	Jobs []core.PointJob `json:"jobs"`
}

// Header is the first stream line: the server's decomposition of the batch,
// which the client checks against its own before accepting points.
type Header struct {
	// Points is the total number of point jobs the batch expands to.
	Points int `json:"points"`
	// Studies is the number of studies in the batch.
	Studies int `json:"studies"`
	// Batch is the durable batch id, echoed (or generated) by servers
	// with a job store. Empty on a storeless server — the client's signal
	// that the stream cannot be resumed.
	Batch string `json:"batch,omitempty"`
}

// StreamPoint is one completed sweep point, streamed as soon as it lands.
// Study/Series/Index are the result-slot coordinates from core.Decompose;
// the measured fields mirror core.Point exactly (float64 values survive the
// JSON round trip bit-for-bit, which is what keeps server-side sweeps
// byte-identical to in-process ones).
type StreamPoint struct {
	Study  int `json:"study"`
	Series int `json:"series"`
	Index  int `json:"index"`
	// Seq is the point's 1-based position in the batch's delivery order —
	// the resume cursor. A client that saw seq S re-attaches with ?from=S
	// and receives exactly the points it missed. Zero (omitted) only in
	// hand-built test streams.
	Seq int `json:"seq,omitempty"`

	Nodes     int     `json:"nodes"`
	Ranks     int     `json:"ranks"`
	WriteGiBs float64 `json:"write_gibs"`
	ReadGiBs  float64 `json:"read_gibs"`
	// DegradedGiBs, RecoverySec, and MapTransitions mirror the
	// degraded-mode outputs of fault-injected points (zero, and omitted
	// on the wire, for points without a fault plan).
	DegradedGiBs   float64 `json:"degraded_gibs,omitempty"`
	RecoverySec    float64 `json:"recovery_sec,omitempty"`
	MapTransitions int     `json:"map_transitions,omitempty"`
	// ElapsedNS is the executing worker's host wall-clock for the point.
	ElapsedNS int64  `json:"elapsed_ns"`
	Err       string `json:"err,omitempty"`
	// CacheHit marks a point served from the server's cache without
	// simulating.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Coalesced marks a point that was not executed for this slot: an
	// identical point was already in flight (a duplicate within the batch,
	// or a concurrent submission's), and the single-flight leader's result
	// was replayed here.
	Coalesced bool `json:"coalesced,omitempty"`
}

// Trailer is the last stream line: the batch ledger. Its presence is the
// client's proof that the stream is complete.
type Trailer struct {
	Done   bool `json:"done"`
	Points int  `json:"points"`
	// CacheEnabled reports whether the server consulted a point cache for
	// this batch; when false the hit/miss counters are meaningless.
	CacheEnabled bool `json:"cache_enabled"`
	// CacheHits and CacheMisses partition the batch's points: hits were
	// replayed from the cache, misses were dispatched to workers.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Errors counts points that completed with a failure recorded.
	Errors int `json:"errors"`
	// Coalesced counts points of this batch that were answered by
	// replaying a single-flight leader's result instead of executing
	// (they are also counted in CacheHits or CacheMisses, matching how
	// the leader resolved).
	Coalesced int `json:"coalesced,omitempty"`
	// Retries counts jobs of this batch that were re-dispatched to another
	// worker after the one executing them failed (remote death, timeout,
	// truncated stream). Zero on a healthy fleet and on a purely local
	// server.
	Retries int `json:"retries,omitempty"`
	// ElapsedNS is the server-side wall-clock for the whole batch.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// toWire converts an executed point into its stream line.
func toWire(j core.PointJob, pt core.Point, hit bool) StreamPoint {
	return StreamPoint{
		Study:          j.Study,
		Series:         j.Series,
		Index:          j.Index,
		Nodes:          pt.Nodes,
		Ranks:          pt.Ranks,
		WriteGiBs:      pt.WriteGiBs,
		ReadGiBs:       pt.ReadGiBs,
		DegradedGiBs:   pt.DegradedGiBs,
		RecoverySec:    pt.RecoverySec,
		MapTransitions: pt.MapTransitions,
		ElapsedNS:      int64(pt.Elapsed),
		Err:            pt.Err,
		CacheHit:       hit,
	}
}

// toPoint converts a stream line back into the core.Point it carries.
func (sp StreamPoint) toPoint() core.Point {
	return core.Point{
		Nodes:          sp.Nodes,
		Ranks:          sp.Ranks,
		WriteGiBs:      sp.WriteGiBs,
		ReadGiBs:       sp.ReadGiBs,
		DegradedGiBs:   sp.DegradedGiBs,
		RecoverySec:    sp.RecoverySec,
		MapTransitions: sp.MapTransitions,
		Elapsed:        time.Duration(sp.ElapsedNS),
		Err:            sp.Err,
	}
}
