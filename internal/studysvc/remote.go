package studysvc

import (
	"context"
	"fmt"

	"daosim/internal/core"
)

// RemoteWorker executes point jobs on a peer daosd: RunPoint ships the job
// — seed, slot coordinates, and defaulted config included — to the peer's
// /v1/points endpoint over the NDJSON protocol and returns the streamed
// result. Because the job travels verbatim (the coordinator's
// core.Decompose output, nothing re-derived on the peer), a point executed
// remotely is byte-identical to one executed by a LocalWorker, which is
// what lets a coordinator mix local slots and remote peers freely.
//
// Any transport-level failure — connect refused, peer death mid-point, a
// truncated result stream — comes back as the error return, the signal the
// fleet scheduler uses to retry the job elsewhere and mark this worker
// down. A point that ran on the peer and failed there arrives as a normal
// Point with Err set. Probe implements the scheduler's health re-check
// against the peer's /v1/healthz.
//
// Multiple pool slots may share one RemoteWorker: the underlying Client is
// safe for concurrent use and each in-flight point is its own HTTP
// exchange.
type RemoteWorker struct {
	c *Client
}

// NewRemoteWorker returns a worker executing on the peer daosd at addr
// (host:port or an http:// URL). The underlying client carries the default
// connect and response-header timeouts, so a hung peer surfaces as a
// worker error instead of blocking a pool slot forever.
func NewRemoteWorker(addr string) *RemoteWorker {
	return &RemoteWorker{c: NewClient(addr)}
}

// Addr returns the peer's base URL.
func (w *RemoteWorker) Addr() string { return w.c.base }

// RunPoint implements Worker by submitting a single-job batch to the peer.
func (w *RemoteWorker) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	pts, err := w.c.SubmitJobs(ctx, []core.PointJob{j})
	if err != nil {
		return core.Point{}, fmt.Errorf("studysvc: remote worker %s: %w", w.c.base, err)
	}
	return pts[0], nil
}

// Probe implements Prober against the peer's health endpoint.
func (w *RemoteWorker) Probe(ctx context.Context) error {
	return w.c.Health(ctx)
}
