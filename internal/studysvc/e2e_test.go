package studysvc

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"daosim/internal/cache"
	"daosim/internal/core"
	"daosim/internal/ior"
)

// The end-to-end harness pins the service's whole contract: a batch
// submitted over the wire must reassemble into studies whose Table and CSV
// output is byte-identical to a direct core.Runner run of the same configs
// — cold (every point simulated by the worker pool) and warm (every point
// replayed from the server's cache, reported as 100% hits in the trailer).
// This is the PR 2 determinism-harness pattern lifted onto the protocol:
// byte-identity across the wire is tested, never assumed.

// quickFigureConfigs returns the Quick-scale Figure 1 + Figure 2 grids, the
// same grids bench.Figure1/Figure2 submit at bench.Quick. In -short mode
// (the 1-core CI race job) only the Figure 2 grid runs; the full grids are
// covered by the plain test job and the CI server-smoke job.
func quickFigureConfigs(t *testing.T) []core.Config {
	quickNodes := []int{1, 4}
	fig2 := core.Config{Workload: "hard", Nodes: quickNodes, Variants: core.HardVariants()}
	if testing.Short() {
		return []core.Config{fig2}
	}
	fig1 := core.Config{Workload: "easy", Nodes: quickNodes, Variants: core.EasyVariants()}
	return []core.Config{fig1, fig2}
}

// render captures everything a study prints: both table panels plus CSV.
func render(studies []*core.Study) string {
	var b strings.Builder
	for _, st := range studies {
		b.WriteString(st.Table(true))
		b.WriteString(st.Table(false))
		b.WriteString(st.CSV())
	}
	return b.String()
}

// startServer boots a studysvc server on a loopback listener.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func TestE2EByteIdenticalColdAndWarm(t *testing.T) {
	cfgs := quickFigureConfigs(t)

	direct, err := (&core.Runner{}).RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := render(direct)

	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{Workers: 2, Cache: c})

	points := 0
	for _, st := range direct {
		points += len(st.Series) * len(st.Config.Nodes)
	}

	// Cold: every point is simulated by the pool and stored.
	cold := NewClient(ts.URL)
	coldStudies, err := cold.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(coldStudies); got != want {
		t.Fatalf("cold server run diverged from direct run:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	if l := cold.Ledger(); !l.CacheEnabled || l.CacheHits != 0 || l.CacheMisses != points {
		t.Fatalf("cold ledger: want 0/%d hits, got %+v", points, l)
	}

	// Warm: the identical batch must be answered entirely from the cache.
	warm := NewClient(ts.URL)
	warmStudies, err := warm.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(warmStudies); got != want {
		t.Fatalf("warm server run diverged from direct run:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	l := warm.Ledger()
	if l.CacheHits != points || l.CacheMisses != 0 {
		t.Fatalf("warm run did not hit 100%%: %+v", l)
	}
	if !strings.Contains(l.String(), "(100.0% hits)") {
		t.Fatalf("warm ledger missing the 100%%-hits marker CI greps: %s", l)
	}
}

// TestE2EUncachedServer proves the cache is an accelerator, not a
// dependency: a server with no cache still streams byte-identical results.
func TestE2EUncachedServer(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestE2EByteIdenticalColdAndWarm; skipping the extra full-simulation pass in -short")
	}
	cfgs := quickFigureConfigs(t)[:1]
	direct, err := (&core.Runner{}).RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{Workers: 2})
	client := NewClient(ts.URL)
	studies, err := client.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(studies), render(direct); got != want {
		t.Fatalf("uncached server run diverged:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	if l := client.Ledger(); l.CacheEnabled {
		t.Fatalf("cache-less server claimed a cache: %+v", l)
	}
}

// TestE2EPointFailuresPropagate pins the error contract across the wire: a
// failing point must not abort the batch, its Err must land in the study,
// and the client's joined error must read exactly like core.Runner's.
func TestE2EPointFailuresPropagate(t *testing.T) {
	cfgs := []core.Config{smallConfig([]core.Variant{
		{Label: "good", API: ior.APIDFS},
		{Label: "broken", API: ior.API("BOGUS")},
	})}

	direct, directErr := (&core.Runner{}).RunAll(cfgs)
	if directErr == nil {
		t.Fatal("direct run of a broken variant did not error")
	}

	_, ts := startServer(t, Config{Workers: 2})
	client := NewClient(ts.URL)
	studies, err := client.Submit(context.Background(), cfgs)
	if err == nil {
		t.Fatal("server run of a broken variant did not error")
	}
	if err.Error() != directErr.Error() {
		t.Fatalf("joined error diverged across the wire:\n--- direct ---\n%v\n--- server ---\n%v", directErr, err)
	}
	if got, want := render(studies), render(direct); got != want {
		t.Fatalf("partial results diverged:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	if l := client.Ledger(); l.Errors != len(cfgs[0].Nodes) {
		t.Fatalf("trailer error count: want %d, got %+v", len(cfgs[0].Nodes), l)
	}
}

// TestE2EFleetByteIdenticalColdAndWarm is the tentpole acceptance test: a
// pure coordinator (no local slots) dispatching to two loopback worker
// daosds must render the quick figure grids byte-identically to a direct
// in-process run — cold (every point shipped to a peer over /v1/points)
// and warm (every point replayed from the coordinator's cache).
func TestE2EFleetByteIdenticalColdAndWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation fleet e2e; the -race -short job covers the fleet scheduler via the stub tests in fleet_test.go")
	}
	cfgs := quickFigureConfigs(t)
	direct, err := (&core.Runner{}).RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := render(direct)
	points := 0
	for _, st := range direct {
		points += len(st.Series) * len(st.Config.Nodes)
	}

	_, w1 := startServer(t, Config{Workers: 1})
	_, w2 := startServer(t, Config{Workers: 1})
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord, cts := startServer(t, Config{
		Remotes: []string{w1.URL, w2.URL},
		Cache:   c,
	})
	if got := coord.Workers(); got != 2 {
		t.Fatalf("pure coordinator pool size = %d, want 2 remote slots and no local ones", got)
	}

	cold := NewClient(cts.URL)
	coldStudies, err := cold.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(coldStudies); got != want {
		t.Fatalf("cold fleet run diverged from direct run:\n--- direct ---\n%s--- fleet ---\n%s", want, got)
	}
	if l := cold.Ledger(); l.CacheMisses != points || l.CacheHits != 0 || l.Retries != 0 {
		t.Fatalf("cold fleet ledger: want %d misses, 0 hits, 0 retries; got %+v", points, l)
	}
	// Every cold point must have executed on a remote peer.
	executed := int64(0)
	for _, m := range coord.Fleet() {
		if m.State != "up" || m.Failures != 0 {
			t.Fatalf("healthy fleet member reported unhealthy: %+v", m)
		}
		executed += m.Points
	}
	if executed != int64(points) {
		t.Fatalf("remote members executed %d points, want %d", executed, points)
	}

	warm := NewClient(cts.URL)
	warmStudies, err := warm.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(warmStudies); got != want {
		t.Fatalf("warm fleet run diverged from direct run:\n--- direct ---\n%s--- fleet ---\n%s", want, got)
	}
	if l := warm.Ledger(); l.CacheHits != points || l.CacheMisses != 0 {
		t.Fatalf("warm fleet run did not hit 100%%: %+v", l)
	}
}

// TestE2EFleetWorkerLossMidSweep is the acceptance worker-loss scenario: a
// coordinator drives two real workers, one of which is severed mid-point
// partway through the sweep (its stream commits, then the connection dies
// — exactly what a SIGKILL'd daosd looks like to the coordinator). The
// sweep must still complete byte-identical to the direct run, report at
// least one retried job in the fleet stats, hold the dead worker down, and
// readmit it once it answers probes again.
func TestE2EFleetWorkerLossMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation fleet e2e; the -race -short job covers worker loss via the stub tests in fleet_test.go")
	}
	cfgs := quickFigureConfigs(t)
	direct, err := (&core.Runner{}).RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := render(direct)

	// Worker 1 sits behind a severing front: its second point request
	// commits the stream header and then aborts the connection, and every
	// request after that (probes included) is refused until revived.
	w1srv := New(Config{Workers: 1})
	defer w1srv.Close()
	var reqs atomic.Int64
	var dead atomic.Bool
	w1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			panic(http.ErrAbortHandler)
		}
		if r.URL.Path == PathSubmitPoints && reqs.Add(1) == 2 {
			dead.Store(true)
			w.Header().Set("Content-Type", ContentType)
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(Header{Points: 1, Studies: 1})
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		w1srv.ServeHTTP(w, r)
	}))
	defer w1.Close()
	_, w2 := startServer(t, Config{Workers: 1})

	coord, cts := startServer(t, Config{
		Remotes:   []string{w1.URL, w2.URL},
		ProbeBase: 5 * time.Millisecond,
		ProbeMax:  50 * time.Millisecond,
	})

	client := NewClient(cts.URL)
	studies, err := client.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("sweep did not survive losing a worker mid-point: %v", err)
	}
	if got := render(studies); got != want {
		t.Fatalf("fleet run with worker loss diverged from direct run:\n--- direct ---\n%s--- fleet ---\n%s", want, got)
	}
	if l := client.Ledger(); l.Retries < 1 {
		t.Fatalf("fleet stats report no retried jobs after a worker died mid-sweep: %+v", l)
	}
	if coord.Retries() < 1 {
		t.Fatalf("coordinator retry counter = %d, want >= 1", coord.Retries())
	}
	waitFor(t, "severed worker to be marked down", func() bool {
		s := fleetMember(t, coord, w1.URL)
		return s.State == "down" && s.Failures >= 1
	})

	// Revive the worker: probes must readmit it, and a second sweep (no
	// coordinator cache, so every point re-dispatches) must use it again.
	dead.Store(false)
	waitFor(t, "revived worker to be readmitted", func() bool {
		s := fleetMember(t, coord, w1.URL)
		return s.State == "up" && s.Readmissions >= 1
	})
	before := reqs.Load()
	if _, err := client.Submit(context.Background(), cfgs); err != nil {
		t.Fatalf("post-readmission sweep failed: %v", err)
	}
	if reqs.Load() <= before {
		t.Fatal("readmitted worker received no point jobs in the next sweep")
	}
}

// TestE2ESharedCacheTierFleet is the shared-tier acceptance test: a fleet
// whose coordinators own no disk cache at all, only a remote tier mounted
// from a peer daosd. The cold coordinator simulates the grid on its two
// workers and pushes every completed point to the peer; a second, fresh
// coordinator pointed at the same peer then reruns the grid without a
// single simulation anywhere in the fleet — a 100%-remote-hit warm run,
// byte-identical to the direct in-process run. Each unique point is
// simulated exactly once globally.
func TestE2ESharedCacheTierFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation fleet e2e; the -race -short job covers the shared tier via the stub tests in cachetier_test.go")
	}
	cfgs := quickFigureConfigs(t)
	direct, err := (&core.Runner{}).RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := render(direct)
	points := 0
	for _, st := range direct {
		points += len(st.Series) * len(st.Config.Nodes)
	}

	// The shared tier: one daosd with a disk cache, serving /v1/cache.
	peerCache, err := cache.New(cache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, peerTS := startServer(t, Config{Workers: 1, Cache: peerCache})

	// Two execution workers and a factory for cache-less coordinators that
	// mount the peer as their only lower tier.
	w1srv, w1 := startServer(t, Config{Workers: 1})
	w2srv, w2 := startServer(t, Config{Workers: 1})
	newCoordinator := func() (*cache.Cache, *Server, *httptest.Server) {
		c, err := cache.New(cache.Options{Peer: peerTS.URL})
		if err != nil {
			t.Fatal(err)
		}
		coord, cts := startServer(t, Config{Remotes: []string{w1.URL, w2.URL}, Cache: c})
		return c, coord, cts
	}

	c1, coord1, cts1 := newCoordinator()
	cold := NewClient(cts1.URL)
	coldStudies, err := cold.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(coldStudies); got != want {
		t.Fatalf("cold shared-tier run diverged from direct run:\n--- direct ---\n%s--- fleet ---\n%s", want, got)
	}
	if l := cold.Ledger(); l.CacheMisses != points || l.CacheHits != 0 {
		t.Fatalf("cold ledger: want %d misses, 0 hits; got %+v", points, l)
	}
	// Every completed point was pushed to the shared tier, best-effort but
	// losslessly on a healthy peer.
	if st := peerCache.Stats(); st.Stores != int64(points) {
		t.Fatalf("shared tier absorbed %d stores, want %d: %+v", st.Stores, points, st)
	}
	if st := c1.Stats(); st.RemoteErrs != 0 || st.RemoteDowns != 0 {
		t.Fatalf("healthy peer accumulated remote errors on the cold run: %+v", st)
	}
	executed := int64(0)
	for _, m := range coord1.Fleet() {
		executed += m.Points
	}
	if executed != int64(points) {
		t.Fatalf("cold run executed %d points on the fleet, want %d", executed, points)
	}

	// A fresh coordinator shares nothing with the first but the peer. Its
	// "warm" rerun must be served entirely by the shared tier: 100% hits
	// on the ledger, all of them remote, zero fleet executions.
	c2, coord2, cts2 := newCoordinator()
	warm := NewClient(cts2.URL)
	warmStudies, err := warm.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(warmStudies); got != want {
		t.Fatalf("warm shared-tier run diverged from direct run:\n--- direct ---\n%s--- fleet ---\n%s", want, got)
	}
	if l := warm.Ledger(); l.CacheHits != points || l.CacheMisses != 0 {
		t.Fatalf("warm ledger: want %d hits, 0 misses; got %+v", points, l)
	}
	if !strings.Contains(warm.Ledger().String(), "(100.0% hits)") {
		t.Fatalf("warm ledger lost the CI hit marker: %s", warm.Ledger())
	}
	if st := c2.Stats(); st.RemoteHits != int64(points) || st.Misses != 0 {
		t.Fatalf("warm run not served by the remote tier: %+v", st)
	}
	for _, m := range coord2.Fleet() {
		if m.Points != 0 {
			t.Fatalf("warm coordinator executed %d points on %s; the shared tier should have served everything", m.Points, m.Name)
		}
	}
	// Exactly-once globally: across both runs the whole fleet executed
	// each unique point once — the workers' combined tally never grew
	// past the grid size.
	total := int64(0)
	for _, m := range append(w1srv.Fleet(), w2srv.Fleet()...) {
		total += m.Points
	}
	if total != int64(points) {
		t.Fatalf("fleet executed %d points across both runs, want exactly %d", total, points)
	}
}
