package studysvc

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"daosim/internal/cache"
	"daosim/internal/core"
	"daosim/internal/ior"
)

// The end-to-end harness pins the service's whole contract: a batch
// submitted over the wire must reassemble into studies whose Table and CSV
// output is byte-identical to a direct core.Runner run of the same configs
// — cold (every point simulated by the worker pool) and warm (every point
// replayed from the server's cache, reported as 100% hits in the trailer).
// This is the PR 2 determinism-harness pattern lifted onto the protocol:
// byte-identity across the wire is tested, never assumed.

// quickFigureConfigs returns the Quick-scale Figure 1 + Figure 2 grids, the
// same grids bench.Figure1/Figure2 submit at bench.Quick. In -short mode
// (the 1-core CI race job) only the Figure 2 grid runs; the full grids are
// covered by the plain test job and the CI server-smoke job.
func quickFigureConfigs(t *testing.T) []core.Config {
	quickNodes := []int{1, 4}
	fig2 := core.Config{Workload: "hard", Nodes: quickNodes, Variants: core.HardVariants()}
	if testing.Short() {
		return []core.Config{fig2}
	}
	fig1 := core.Config{Workload: "easy", Nodes: quickNodes, Variants: core.EasyVariants()}
	return []core.Config{fig1, fig2}
}

// render captures everything a study prints: both table panels plus CSV.
func render(studies []*core.Study) string {
	var b strings.Builder
	for _, st := range studies {
		b.WriteString(st.Table(true))
		b.WriteString(st.Table(false))
		b.WriteString(st.CSV())
	}
	return b.String()
}

// startServer boots a studysvc server on a loopback listener.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func TestE2EByteIdenticalColdAndWarm(t *testing.T) {
	cfgs := quickFigureConfigs(t)

	direct, err := (&core.Runner{}).RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := render(direct)

	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{Workers: 2, Cache: c})

	points := 0
	for _, st := range direct {
		points += len(st.Series) * len(st.Config.Nodes)
	}

	// Cold: every point is simulated by the pool and stored.
	cold := NewClient(ts.URL)
	coldStudies, err := cold.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(coldStudies); got != want {
		t.Fatalf("cold server run diverged from direct run:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	if l := cold.Ledger(); !l.CacheEnabled || l.CacheHits != 0 || l.CacheMisses != points {
		t.Fatalf("cold ledger: want 0/%d hits, got %+v", points, l)
	}

	// Warm: the identical batch must be answered entirely from the cache.
	warm := NewClient(ts.URL)
	warmStudies, err := warm.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(warmStudies); got != want {
		t.Fatalf("warm server run diverged from direct run:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	l := warm.Ledger()
	if l.CacheHits != points || l.CacheMisses != 0 {
		t.Fatalf("warm run did not hit 100%%: %+v", l)
	}
	if !strings.Contains(l.String(), "(100.0% hits)") {
		t.Fatalf("warm ledger missing the 100%%-hits marker CI greps: %s", l)
	}
}

// TestE2EUncachedServer proves the cache is an accelerator, not a
// dependency: a server with no cache still streams byte-identical results.
func TestE2EUncachedServer(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestE2EByteIdenticalColdAndWarm; skipping the extra full-simulation pass in -short")
	}
	cfgs := quickFigureConfigs(t)[:1]
	direct, err := (&core.Runner{}).RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{Workers: 2})
	client := NewClient(ts.URL)
	studies, err := client.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(studies), render(direct); got != want {
		t.Fatalf("uncached server run diverged:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	if l := client.Ledger(); l.CacheEnabled {
		t.Fatalf("cache-less server claimed a cache: %+v", l)
	}
}

// TestE2EPointFailuresPropagate pins the error contract across the wire: a
// failing point must not abort the batch, its Err must land in the study,
// and the client's joined error must read exactly like core.Runner's.
func TestE2EPointFailuresPropagate(t *testing.T) {
	cfgs := []core.Config{smallConfig([]core.Variant{
		{Label: "good", API: ior.APIDFS},
		{Label: "broken", API: ior.API("BOGUS")},
	})}

	direct, directErr := (&core.Runner{}).RunAll(cfgs)
	if directErr == nil {
		t.Fatal("direct run of a broken variant did not error")
	}

	_, ts := startServer(t, Config{Workers: 2})
	client := NewClient(ts.URL)
	studies, err := client.Submit(context.Background(), cfgs)
	if err == nil {
		t.Fatal("server run of a broken variant did not error")
	}
	if err.Error() != directErr.Error() {
		t.Fatalf("joined error diverged across the wire:\n--- direct ---\n%v\n--- server ---\n%v", directErr, err)
	}
	if got, want := render(studies), render(direct); got != want {
		t.Fatalf("partial results diverged:\n--- direct ---\n%s--- server ---\n%s", want, got)
	}
	if l := client.Ledger(); l.Errors != len(cfgs[0].Nodes) {
		t.Fatalf("trailer error count: want %d, got %+v", len(cfgs[0].Nodes), l)
	}
}
