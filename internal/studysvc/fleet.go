package studysvc

import (
	"context"
	"hash/fnv"
	"io"
	"math/rand"
	"sync/atomic"
	"time"
)

// Member is one named execution slot of the server's pool: local slots,
// remote peers, and test stubs all enter the scheduler this way. New builds
// Members from Config.Workers and Config.Remotes; Config.Members lets a
// caller (or a test) add arbitrary ones.
type Member struct {
	// Name identifies the slot in fleet stats (a remote's peer URL, or
	// "local/N").
	Name string
	// Worker executes the slot's jobs.
	Worker Worker
}

// member is a Member plus its scheduler-side state: availability and
// counters. All fields are atomics — the member's own pool goroutine writes
// them, stats readers read them concurrently.
type member struct {
	name string
	w    Worker
	rng  *rand.Rand // probe-jitter source; only the member's pool goroutine draws from it

	down         atomic.Bool
	points       atomic.Int64 // completed points (success or point-level failure)
	failures     atomic.Int64 // worker-level failures (job retried elsewhere)
	probes       atomic.Int64 // health probes issued while down
	readmissions atomic.Int64 // down->up transitions
}

// MemberStatus is one fleet member's externally-visible state, reported by
// /v1/statsz and printed by `studyctl stats` and daosd's shutdown summary.
type MemberStatus struct {
	Name string `json:"name"`
	// State is "up" (accepting jobs) or "down" (failed; being re-probed
	// with exponential backoff).
	State        string `json:"state"`
	Points       int64  `json:"points"`
	Failures     int64  `json:"failures,omitempty"`
	Probes       int64  `json:"probes,omitempty"`
	Readmissions int64  `json:"readmissions,omitempty"`
}

// status snapshots the member for stats reporting.
func (m *member) status() MemberStatus {
	state := "up"
	if m.down.Load() {
		state = "down"
	}
	return MemberStatus{
		Name:         m.name,
		State:        state,
		Points:       m.points.Load(),
		Failures:     m.failures.Load(),
		Probes:       m.probes.Load(),
		Readmissions: m.readmissions.Load(),
	}
}

// close releases the member's per-slot state if its worker holds any.
func (m *member) close() {
	if c, ok := m.w.(io.Closer); ok {
		c.Close()
	}
}

// probeTimeout bounds one health probe of a down member.
const probeTimeout = 5 * time.Second

// processSalt decorrelates probe jitter across coordinator processes: two
// daosd instances probing the same dead peer (so: identical member names,
// identical FNV seeds) must still spread their probes apart, or a fleet of
// coordinators hammers the recovering peer in lockstep.
var processSalt = rand.Uint64()

// probeRNG seeds a member's jitter source from its name mixed with the
// per-process salt, so distinct members of one server — and same-named
// members of distinct servers — draw independent jitter sequences.
func probeRNG(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(int64(h.Sum64() ^ processSalt)))
}

// probeWait jitters one backoff interval into [backoff/2, backoff]: enough
// spread to break lockstep, while never waiting longer than the nominal
// backoff (readmission latency stays bounded by the un-jittered schedule).
func probeWait(rng *rand.Rand, backoff time.Duration) time.Duration {
	half := backoff / 2
	if half <= 0 {
		return backoff
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// probeUntilUp holds a failed member out of the pool and re-probes it with
// jittered exponential backoff (Config.ProbeBase doubling up to
// Config.ProbeMax, each wait drawn from [backoff/2, backoff] by the member's
// seeded RNG) until the probe succeeds or the server shuts down. While it
// runs, the member's goroutine is not receiving from the job queue — being
// down IS not being scheduled. Returns false when shutdown interrupted the
// wait. Each probe's context derives from the server's probe context, so
// Close cancels a probe already in flight instead of waiting out its
// timeout. Workers without a Probe are readmitted after a single backoff
// interval: with no way to check them, one quarantine period is the only
// gate.
func (s *Server) probeUntilUp(m *member) bool {
	m.down.Store(true)
	backoff := s.cfg.ProbeBase
	for {
		select {
		case <-s.quit:
			return false
		case <-time.After(probeWait(m.rng, backoff)):
		}
		prober, ok := m.w.(Prober)
		if !ok {
			break
		}
		m.probes.Add(1)
		ctx, cancel := context.WithTimeout(s.probeCtx, probeTimeout)
		err := prober.Probe(ctx)
		cancel()
		if err == nil {
			break
		}
		if s.probeCtx.Err() != nil {
			return false
		}
		if backoff *= 2; backoff > s.cfg.ProbeMax {
			backoff = s.cfg.ProbeMax
		}
	}
	m.readmissions.Add(1)
	m.down.Store(false)
	return true
}
