package studysvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"daosim/internal/core"
)

var _ core.StudyRunner = (*Client)(nil)

// Default transport bounds for NewClient: connection setup and
// time-to-response-header are capped so a hung or unreachable peer
// surfaces as an error instead of blocking forever, while the response
// body — the result stream, which legitimately lasts as long as the sweep
// — stays unbounded.
const (
	// DefaultDialTimeout caps TCP connection establishment.
	DefaultDialTimeout = 10 * time.Second
	// DefaultHeaderTimeout caps the wait for the response status line and
	// headers after the request is written. The server commits the status
	// before scheduling any work, so a healthy peer answers within network
	// latency regardless of sweep size.
	DefaultHeaderTimeout = 30 * time.Second
)

// newHTTPClient builds the default transport: bounded dial and
// response-header waits, unbounded streaming body.
func newHTTPClient(dial, header time.Duration) *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: dial}).DialContext,
		ResponseHeaderTimeout: header,
	}}
}

// Client submits study batches to a daosd server and reassembles the
// streamed points into *core.Study values indistinguishable from an
// in-process run. It implements core.StudyRunner, so anything that takes a
// runner — every bench experiment, cmd/figures — can execute through a
// server by swapping this in.
type Client struct {
	// HTTP is the transport. NewClient installs a client with bounded
	// connect and response-header timeouts and no overall Timeout (streams
	// are long-lived); replace it to tune, or leave nil on a hand-built
	// Client to fall back to http.DefaultClient.
	HTTP *http.Client
	// OnPoint, when set, observes every streamed point as it arrives —
	// progress reporting for interactive callers. It runs on the stream
	// reader goroutine and must not block.
	OnPoint func(StreamPoint)

	base string

	mu     sync.Mutex
	ledger Ledger
}

// NewClient returns a client for the daosd server at addr (a host:port or
// an http:// URL).
func NewClient(addr string) *Client {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: base,
		HTTP: newHTTPClient(DefaultDialTimeout, DefaultHeaderTimeout),
	}
}

// Ledger accumulates the trailer counters of every submission a Client has
// completed: the client-side view of how much work the server's cache
// absorbed and how often its fleet had to retry.
type Ledger struct {
	Requests     int
	Points       int
	CacheEnabled bool
	CacheHits    int
	CacheMisses  int
	Errors       int
	// Coalesced counts points answered by replaying an identical in-flight
	// point's result (single-flight dedup) instead of executing.
	Coalesced int
	// Retries counts jobs the server re-dispatched after losing a worker
	// mid-point — the fleet's robustness at work, visible per batch.
	Retries int
}

// String renders the ledger in the cache-stats idiom, including the
// "(100.0% hits)" marker CI greps for on warm runs. A fleet that had to
// retry jobs appends its count, so worker loss is visible in every
// studyctl/figures run that survived one.
func (l Ledger) String() string {
	s := ""
	if !l.CacheEnabled {
		s = fmt.Sprintf("server cache: off (%d points over %d requests)", l.Points, l.Requests)
	} else {
		lookups := l.CacheHits + l.CacheMisses
		rate := 0.0
		if lookups > 0 {
			rate = 100 * float64(l.CacheHits) / float64(lookups)
		}
		s = fmt.Sprintf("server cache: %d lookups, %d hits, %d misses (%.1f%% hits), %d points over %d requests",
			lookups, l.CacheHits, l.CacheMisses, rate, l.Points, l.Requests)
	}
	if l.Coalesced > 0 {
		s += fmt.Sprintf("; %d point(s) coalesced in flight", l.Coalesced)
	}
	if l.Retries > 0 {
		s += fmt.Sprintf("; fleet retried %d job(s)", l.Retries)
	}
	return s
}

// Ledger returns the accumulated submission counters.
func (c *Client) Ledger() Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger
}

// Run executes one study sweep through the server.
func (c *Client) Run(cfg core.Config) (*core.Study, error) {
	studies, err := c.RunAll([]core.Config{cfg})
	if len(studies) != 1 {
		// Unlike core.Runner.RunAll, Submit returns no studies at all when
		// the exchange itself fails (server unreachable, stream truncated).
		return nil, err
	}
	return studies[0], err
}

// RunAll executes a batch of study sweeps through the server, mirroring
// core.Runner.RunAll: studies come back in input order and fully populated,
// and the returned error joins per-point failures.
func (c *Client) RunAll(cfgs []core.Config) ([]*core.Study, error) {
	return c.Submit(context.Background(), cfgs)
}

// post opens one submission exchange and returns the committed stream.
func (c *Client) post(ctx context.Context, path string, payload any) (io.ReadCloser, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("studysvc: encode submit: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("studysvc: build submit: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("studysvc: submit: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		diag, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		return nil, fmt.Errorf("studysvc: server rejected submit: %s: %s",
			resp.Status, strings.TrimSpace(string(diag)))
	}
	return resp.Body, nil
}

// consumePoints drains n point lines plus the trailer from a committed
// stream, dispatching each point through fill. Any malformed, short, or
// severed stream comes back as an explicit error naming how many of the
// expected points arrived — a partially-written line or a missing trailer
// is never silently accepted as a complete batch. It is the one stream
// reader shared by Submit (config batches) and SubmitJobs (the
// coordinator-to-worker leg), so both ends of a fleet detect mid-stream
// worker death identically.
func consumePoints(dec *json.Decoder, n int, fill func(StreamPoint) error) (Trailer, error) {
	// A point line is distinguished from a premature trailer by "done".
	type line struct {
		StreamPoint
		Done bool `json:"done"`
	}
	for seen := 0; seen < n; seen++ {
		var ln line
		if err := dec.Decode(&ln); err != nil {
			return Trailer{}, fmt.Errorf("studysvc: stream truncated after %d/%d points: %w", seen, n, err)
		}
		if ln.Done {
			return Trailer{}, fmt.Errorf("studysvc: stream ended early after %d/%d points", seen, n)
		}
		if err := fill(ln.StreamPoint); err != nil {
			return Trailer{}, err
		}
	}
	var t Trailer
	if err := dec.Decode(&t); err != nil {
		return Trailer{}, fmt.Errorf("studysvc: stream missing trailer: %w", err)
	}
	if !t.Done {
		return Trailer{}, fmt.Errorf("studysvc: malformed trailer: %+v", t)
	}
	return t, nil
}

// Submit posts the batch and consumes the result stream. The returned
// studies are assembled from the client's own core.Decompose of cfgs —
// identical to the server's by construction — with each streamed point
// dropped into its slot, so Table and CSV render byte-identically to an
// in-process run. A nil error means the stream completed with a trailer
// and no point carried a failure; a stream severed mid-batch (server
// crash, connection reset, missing trailer) returns nil studies and an
// error naming how many points arrived.
func (c *Client) Submit(ctx context.Context, cfgs []core.Config) ([]*core.Study, error) {
	if len(cfgs) == 0 {
		// Mirror core.Runner.RunAll(nil) without a round trip; the server
		// rejects empty submissions as malformed.
		studies, _ := core.Decompose(cfgs)
		return studies, nil
	}
	start := time.Now()
	body, err := c.post(ctx, PathSubmit, SubmitRequest{Configs: cfgs})
	if err != nil {
		return nil, err
	}
	defer body.Close()

	studies, jobs := core.Decompose(cfgs)
	dec := json.NewDecoder(body)

	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("studysvc: read stream header: %w", err)
	}
	if h.Points != len(jobs) || h.Studies != len(cfgs) {
		return nil, fmt.Errorf("studysvc: server decomposed %d points / %d studies, client expected %d / %d (client/server version skew?)",
			h.Points, h.Studies, len(jobs), len(cfgs))
	}

	filled := make([]bool, len(jobs))
	slot := make(map[[3]int]int, len(jobs))
	for i, j := range jobs {
		slot[[3]int{j.Study, j.Series, j.Index}] = i
	}
	t, err := consumePoints(dec, len(jobs), func(sp StreamPoint) error {
		i, ok := slot[[3]int{sp.Study, sp.Series, sp.Index}]
		if !ok {
			return fmt.Errorf("studysvc: stream carried a point outside the batch grid (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		if filled[i] {
			return fmt.Errorf("studysvc: stream carried a duplicate point (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		filled[i] = true
		studies[sp.Study].Series[sp.Series].Points[sp.Index] = sp.toPoint()
		if c.OnPoint != nil {
			c.OnPoint(sp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.ledger.Requests++
	c.ledger.Points += t.Points
	c.ledger.CacheEnabled = c.ledger.CacheEnabled || t.CacheEnabled
	c.ledger.CacheHits += t.CacheHits
	c.ledger.CacheMisses += t.CacheMisses
	c.ledger.Errors += t.Errors
	c.ledger.Coalesced += t.Coalesced
	c.ledger.Retries += t.Retries
	c.mu.Unlock()

	return studies, core.Finish(studies, time.Since(start))
}

// SubmitJobs posts pre-decomposed point jobs to the server's /v1/points
// endpoint and returns their results in input order. It is the
// coordinator-to-worker leg of a daosd fleet (see RemoteWorker): jobs
// travel verbatim — seed, coordinates, defaulted config — so the peer's
// results are byte-identical to local execution. Any failure to deliver
// all the points (connect failure, rejected submit, stream severed
// mid-batch, missing trailer) is the returned error; the caller retries
// on another worker.
func (c *Client) SubmitJobs(ctx context.Context, jobs []core.PointJob) ([]core.Point, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	body, err := c.post(ctx, PathSubmitPoints, PointsRequest{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	defer body.Close()

	dec := json.NewDecoder(body)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("studysvc: read stream header: %w", err)
	}
	if h.Points != len(jobs) {
		return nil, fmt.Errorf("studysvc: server accepted %d point jobs, client sent %d", h.Points, len(jobs))
	}
	pts := make([]core.Point, len(jobs))
	filled := make([]bool, len(jobs))
	slot := make(map[[3]int]int, len(jobs))
	for i, j := range jobs {
		slot[[3]int{j.Study, j.Series, j.Index}] = i
	}
	_, err = consumePoints(dec, len(jobs), func(sp StreamPoint) error {
		i, ok := slot[[3]int{sp.Study, sp.Series, sp.Index}]
		if !ok {
			return fmt.Errorf("studysvc: stream carried a point outside the job batch (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		if filled[i] {
			return fmt.Errorf("studysvc: stream carried a duplicate point (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		filled[i] = true
		pts[i] = sp.toPoint()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// Health checks the server's PathHealth endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathHealth, nil)
	if err != nil {
		return err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Errorf("studysvc: health: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("studysvc: health: %s", resp.Status)
	}
	return nil
}

// Stats fetches the server's scheduler, fleet, and cache counters from
// PathStats.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var st ServerStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathStats, nil)
	if err != nil {
		return st, err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return st, fmt.Errorf("studysvc: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("studysvc: stats: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("studysvc: decode stats: %w", err)
	}
	return st, nil
}
