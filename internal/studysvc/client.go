package studysvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"daosim/internal/core"
)

var _ core.StudyRunner = (*Client)(nil)

// Default transport bounds for NewClient: connection setup and
// time-to-response-header are capped so a hung or unreachable peer
// surfaces as an error instead of blocking forever, while the response
// body — the result stream, which legitimately lasts as long as the sweep
// — stays unbounded.
const (
	// DefaultDialTimeout caps TCP connection establishment.
	DefaultDialTimeout = 10 * time.Second
	// DefaultHeaderTimeout caps the wait for the response status line and
	// headers after the request is written. The server commits the status
	// before scheduling any work, so a healthy peer answers within network
	// latency regardless of sweep size.
	DefaultHeaderTimeout = 30 * time.Second
)

// Default Submit retry policy: how long a client rides out a coordinator
// restart. Eight attempts with doubling waits from 100ms capped at 2s is
// ~7.5s of patience — comfortably over a daosd exec plus journal replay —
// while a permanent failure (bad address, rejected batch) still reports
// immediately because it is never classified retryable.
const (
	// DefaultRetryAttempts caps consecutive failed exchanges (connects
	// plus severed streams that made no progress) before Submit gives up.
	DefaultRetryAttempts = 8
	// DefaultRetryBase is the first reconnect wait; it doubles per failed
	// attempt up to DefaultRetryMax.
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryMax  = 2 * time.Second
)

// newHTTPClient builds the default transport: bounded dial and
// response-header waits, unbounded streaming body.
func newHTTPClient(dial, header time.Duration) *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: dial}).DialContext,
		ResponseHeaderTimeout: header,
	}}
}

// Client submits study batches to a daosd server and reassembles the
// streamed points into *core.Study values indistinguishable from an
// in-process run. It implements core.StudyRunner, so anything that takes a
// runner — every bench experiment, cmd/figures — can execute through a
// server by swapping this in.
type Client struct {
	// HTTP is the transport. NewClient installs a client with bounded
	// connect and response-header timeouts and no overall Timeout (streams
	// are long-lived); replace it to tune, or leave nil on a hand-built
	// Client to fall back to http.DefaultClient.
	HTTP *http.Client
	// OnPoint, when set, observes every streamed point as it arrives —
	// progress reporting for interactive callers. It runs on the stream
	// reader goroutine and must not block.
	OnPoint func(StreamPoint)
	// OnRetry, when set, observes every Submit reconnect attempt before
	// its backoff wait — interactive callers print it so a coordinator
	// restart is visible, not a silent stall.
	OnRetry func(attempt int, wait time.Duration, err error)
	// RetryAttempts caps consecutive failed Submit exchanges; progress
	// (any point received) resets the count. Zero means
	// DefaultRetryAttempts; 1 disables retries entirely. Only Submit
	// retries: SubmitJobs is the coordinator-to-worker leg, whose retry
	// plane is the fleet scheduler, and Health/Stats are probes.
	RetryAttempts int
	// RetryBase and RetryMax shape the reconnect backoff (defaults
	// DefaultRetryBase/DefaultRetryMax).
	RetryBase time.Duration
	RetryMax  time.Duration

	base string

	mu     sync.Mutex
	ledger Ledger
}

// NewClient returns a client for the daosd server at addr (a host:port or
// an http:// URL).
func NewClient(addr string) *Client {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: base,
		HTTP: newHTTPClient(DefaultDialTimeout, DefaultHeaderTimeout),
	}
}

// Ledger accumulates the trailer counters of every submission a Client has
// completed: the client-side view of how much work the server's cache
// absorbed and how often its fleet had to retry.
type Ledger struct {
	Requests     int
	Points       int
	CacheEnabled bool
	CacheHits    int
	CacheMisses  int
	Errors       int
	// Coalesced counts points answered by replaying an identical in-flight
	// point's result (single-flight dedup) instead of executing.
	Coalesced int
	// Retries counts jobs the server re-dispatched after losing a worker
	// mid-point — the fleet's robustness at work, visible per batch.
	Retries int
}

// String renders the ledger in the cache-stats idiom, including the
// "(100.0% hits)" marker CI greps for on warm runs. A fleet that had to
// retry jobs appends its count, so worker loss is visible in every
// studyctl/figures run that survived one.
func (l Ledger) String() string {
	s := ""
	if !l.CacheEnabled {
		s = fmt.Sprintf("server cache: off (%d points over %d requests)", l.Points, l.Requests)
	} else {
		lookups := l.CacheHits + l.CacheMisses
		rate := 0.0
		if lookups > 0 {
			rate = 100 * float64(l.CacheHits) / float64(lookups)
		}
		s = fmt.Sprintf("server cache: %d lookups, %d hits, %d misses (%.1f%% hits), %d points over %d requests",
			lookups, l.CacheHits, l.CacheMisses, rate, l.Points, l.Requests)
	}
	if l.Coalesced > 0 {
		s += fmt.Sprintf("; %d point(s) coalesced in flight", l.Coalesced)
	}
	if l.Retries > 0 {
		s += fmt.Sprintf("; fleet retried %d job(s)", l.Retries)
	}
	return s
}

// Ledger returns the accumulated submission counters.
func (c *Client) Ledger() Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger
}

// Run executes one study sweep through the server.
func (c *Client) Run(cfg core.Config) (*core.Study, error) {
	studies, err := c.RunAll([]core.Config{cfg})
	if len(studies) != 1 {
		// Unlike core.Runner.RunAll, Submit returns no studies at all when
		// the exchange itself fails (server unreachable, stream truncated).
		return nil, err
	}
	return studies[0], err
}

// RunAll executes a batch of study sweeps through the server, mirroring
// core.Runner.RunAll: studies come back in input order and fully populated,
// and the returned error joins per-point failures.
func (c *Client) RunAll(cfgs []core.Config) ([]*core.Study, error) {
	return c.Submit(context.Background(), cfgs)
}

// statusError is a non-200 response: the one error class where the HTTP
// code, not the transport, decides retryability (503 means draining or
// restarting; everything else is a permanent rejection).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// post opens one submission exchange and returns the committed stream.
func (c *Client) post(ctx context.Context, path string, payload any) (io.ReadCloser, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("studysvc: encode submit: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("studysvc: build submit: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("studysvc: submit: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		diag, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		return nil, &statusError{code: resp.StatusCode, msg: fmt.Sprintf(
			"studysvc: server rejected submit: %s: %s",
			resp.Status, strings.TrimSpace(string(diag)))}
	}
	return resp.Body, nil
}

// get opens a resume exchange (GET /v1/studies/{batch}?from=seq) and
// returns the committed stream.
func (c *Client) get(ctx context.Context, pathAndQuery string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+pathAndQuery, nil)
	if err != nil {
		return nil, fmt.Errorf("studysvc: build resume: %w", err)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("studysvc: resume: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		diag, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		return nil, &statusError{code: resp.StatusCode, msg: fmt.Sprintf(
			"studysvc: server rejected resume: %s: %s",
			resp.Status, strings.TrimSpace(string(diag)))}
	}
	return resp.Body, nil
}

// transientErr classifies transport failures worth a reconnect: the
// server not being there yet (refused, reset, timed out, EOF before the
// response) — the shapes a restarting coordinator produces. Address
// errors that no amount of waiting fixes (DNS name not found, malformed
// URLs) and the caller's own cancellation are permanent.
func transientErr(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var dns *net.DNSError
	if errors.As(err, &dns) {
		return dns.IsTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

func (c *Client) retryAttempts() int {
	if c.RetryAttempts > 0 {
		return c.RetryAttempts
	}
	return DefaultRetryAttempts
}

// backoff returns the wait before retry attempt n (1-based): RetryBase
// doubling per attempt, capped at RetryMax.
func (c *Client) backoff(n int) time.Duration {
	base, maxWait := c.RetryBase, c.RetryMax
	if base <= 0 {
		base = DefaultRetryBase
	}
	if maxWait <= 0 {
		maxWait = DefaultRetryMax
	}
	wait := base
	for i := 1; i < n && wait < maxWait; i++ {
		wait *= 2
	}
	return min(wait, maxWait)
}

// shouldRetry decides whether a failed Submit exchange is worth another
// attempt. A durable batch (the server echoed a batch id) can always be
// re-attached idempotently; an ephemeral stream can only be safely
// re-POSTed while nothing has been received, and only for transient
// transport failures. Non-200s retry only on 503 (draining/restarting).
func (c *Client) shouldRetry(ctx context.Context, err error, batch string, received int) bool {
	if ctx.Err() != nil {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code == http.StatusServiceUnavailable
	}
	if batch != "" {
		return true
	}
	return received == 0 && transientErr(err)
}

// consumePoints drains n point lines plus the trailer from a committed
// stream, dispatching each point through fill. Any malformed, short, or
// severed stream comes back as an explicit error naming how many of the
// expected points arrived — a partially-written line or a missing trailer
// is never silently accepted as a complete batch. It is the one stream
// reader shared by Submit (config batches) and SubmitJobs (the
// coordinator-to-worker leg), so both ends of a fleet detect mid-stream
// worker death identically.
func consumePoints(dec *json.Decoder, n int, fill func(StreamPoint) error) (Trailer, error) {
	// A point line is distinguished from a premature trailer by "done".
	type line struct {
		StreamPoint
		Done bool `json:"done"`
	}
	for seen := 0; seen < n; seen++ {
		var ln line
		if err := dec.Decode(&ln); err != nil {
			return Trailer{}, fmt.Errorf("studysvc: stream truncated after %d/%d points: %w", seen, n, err)
		}
		if ln.Done {
			return Trailer{}, fmt.Errorf("studysvc: stream ended early after %d/%d points", seen, n)
		}
		if err := fill(ln.StreamPoint); err != nil {
			return Trailer{}, err
		}
	}
	var t Trailer
	if err := dec.Decode(&t); err != nil {
		return Trailer{}, fmt.Errorf("studysvc: stream missing trailer: %w", err)
	}
	if !t.Done {
		return Trailer{}, fmt.Errorf("studysvc: malformed trailer: %+v", t)
	}
	return t, nil
}

// exchange performs one Submit attempt: the initial POST while no batch
// id is known, or a GET resume from the last received offset once the
// server has echoed one. It consumes the stream through fill and returns
// the trailer; any failure leaves *batch and the fill state ready for
// the caller's retry decision.
func (c *Client) exchange(ctx context.Context, cfgs []core.Config, batchID string, batch *string, lastSeq, received int, fill func(StreamPoint) error) (Trailer, error) {
	var body io.ReadCloser
	var err error
	if *batch == "" {
		body, err = c.post(ctx, PathSubmit, SubmitRequest{Configs: cfgs, Batch: batchID})
	} else {
		body, err = c.get(ctx, fmt.Sprintf("%s/%s?from=%d", PathSubmit, *batch, lastSeq))
	}
	if err != nil {
		return Trailer{}, err
	}
	defer body.Close()
	dec := json.NewDecoder(body)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Trailer{}, fmt.Errorf("studysvc: read stream header: %w", err)
	}
	_, jobs := core.Decompose(cfgs)
	if h.Points != len(jobs) || h.Studies != len(cfgs) {
		return Trailer{}, fmt.Errorf("studysvc: server decomposed %d points / %d studies, client expected %d / %d (client/server version skew?)",
			h.Points, h.Studies, len(jobs), len(cfgs))
	}
	if h.Batch != "" {
		*batch = h.Batch
	}
	return consumePoints(dec, len(jobs)-received, fill)
}

// Submit posts the batch and consumes the result stream. The returned
// studies are assembled from the client's own core.Decompose of cfgs —
// identical to the server's by construction — with each streamed point
// dropped into its slot, so Table and CSV render byte-identically to an
// in-process run. A nil error means the stream completed with a trailer
// and no point carried a failure.
//
// Submit rides out a restarting or briefly unreachable coordinator:
// transient connect failures are retried with capped exponential backoff
// (RetryAttempts/RetryBase/RetryMax), and when the server is durable
// (its Header carries a batch id) a severed stream is resumed from the
// last received sequence offset instead of being an error — the points
// already received are kept and only the missing tail is re-fetched, so
// the reassembled studies are identical to an uninterrupted exchange.
// Against a storeless server a stream severed mid-batch (server crash,
// connection reset, missing trailer) remains a permanent error naming
// how many points arrived.
func (c *Client) Submit(ctx context.Context, cfgs []core.Config) ([]*core.Study, error) {
	if len(cfgs) == 0 {
		// Mirror core.Runner.RunAll(nil) without a round trip; the server
		// rejects empty submissions as malformed.
		studies, _ := core.Decompose(cfgs)
		return studies, nil
	}
	start := time.Now()
	studies, jobs := core.Decompose(cfgs)

	var (
		batch    string // durable batch id echoed by the server's Header
		lastSeq  int    // highest delivery offset received (the resume cursor)
		received int
	)
	// The client picks the batch id so a connection lost before the
	// Header arrived can be re-POSTed idempotently: the server re-attaches
	// to the batch it already opened instead of scheduling a duplicate.
	batchID := newBatchID()
	filled := make([]bool, len(jobs))
	slot := make(map[[3]int]int, len(jobs))
	for i, j := range jobs {
		slot[[3]int{j.Study, j.Series, j.Index}] = i
	}
	fill := func(sp StreamPoint) error {
		i, ok := slot[[3]int{sp.Study, sp.Series, sp.Index}]
		if !ok {
			return fmt.Errorf("studysvc: stream carried a point outside the batch grid (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		if filled[i] {
			return fmt.Errorf("studysvc: stream carried a duplicate point (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		filled[i] = true
		received++
		if sp.Seq > lastSeq {
			lastSeq = sp.Seq
		}
		studies[sp.Study].Series[sp.Series].Points[sp.Index] = sp.toPoint()
		if c.OnPoint != nil {
			c.OnPoint(sp)
		}
		return nil
	}

	var t Trailer
	attempt := 0
	for {
		before := received
		tr, err := c.exchange(ctx, cfgs, batchID, &batch, lastSeq, received, fill)
		if err == nil {
			t = tr
			break
		}
		if received > before {
			// Progress resets the failure budget: a sweep that outlives
			// several coordinator restarts still completes.
			attempt = 0
		}
		attempt++
		if attempt >= c.retryAttempts() || !c.shouldRetry(ctx, err, batch, received) {
			return nil, err
		}
		wait := c.backoff(attempt)
		if c.OnRetry != nil {
			c.OnRetry(attempt, wait, err)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, err
		}
	}
	c.mu.Lock()
	c.ledger.Requests++
	c.ledger.Points += t.Points
	c.ledger.CacheEnabled = c.ledger.CacheEnabled || t.CacheEnabled
	c.ledger.CacheHits += t.CacheHits
	c.ledger.CacheMisses += t.CacheMisses
	c.ledger.Errors += t.Errors
	c.ledger.Coalesced += t.Coalesced
	c.ledger.Retries += t.Retries
	c.mu.Unlock()

	return studies, core.Finish(studies, time.Since(start))
}

// SubmitJobs posts pre-decomposed point jobs to the server's /v1/points
// endpoint and returns their results in input order. It is the
// coordinator-to-worker leg of a daosd fleet (see RemoteWorker): jobs
// travel verbatim — seed, coordinates, defaulted config — so the peer's
// results are byte-identical to local execution. Any failure to deliver
// all the points (connect failure, rejected submit, stream severed
// mid-batch, missing trailer) is the returned error; the caller retries
// on another worker.
func (c *Client) SubmitJobs(ctx context.Context, jobs []core.PointJob) ([]core.Point, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	body, err := c.post(ctx, PathSubmitPoints, PointsRequest{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	defer body.Close()

	dec := json.NewDecoder(body)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("studysvc: read stream header: %w", err)
	}
	if h.Points != len(jobs) {
		return nil, fmt.Errorf("studysvc: server accepted %d point jobs, client sent %d", h.Points, len(jobs))
	}
	pts := make([]core.Point, len(jobs))
	filled := make([]bool, len(jobs))
	slot := make(map[[3]int]int, len(jobs))
	for i, j := range jobs {
		slot[[3]int{j.Study, j.Series, j.Index}] = i
	}
	_, err = consumePoints(dec, len(jobs), func(sp StreamPoint) error {
		i, ok := slot[[3]int{sp.Study, sp.Series, sp.Index}]
		if !ok {
			return fmt.Errorf("studysvc: stream carried a point outside the job batch (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		if filled[i] {
			return fmt.Errorf("studysvc: stream carried a duplicate point (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		filled[i] = true
		pts[i] = sp.toPoint()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// Health checks the server's PathHealth endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathHealth, nil)
	if err != nil {
		return err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Errorf("studysvc: health: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("studysvc: health: %s", resp.Status)
	}
	return nil
}

// Stats fetches the server's scheduler, fleet, and cache counters from
// PathStats.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var st ServerStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathStats, nil)
	if err != nil {
		return st, err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return st, fmt.Errorf("studysvc: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("studysvc: stats: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("studysvc: decode stats: %w", err)
	}
	return st, nil
}
