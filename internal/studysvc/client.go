package studysvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"daosim/internal/core"
)

var _ core.StudyRunner = (*Client)(nil)

// Client submits study batches to a daosd server and reassembles the
// streamed points into *core.Study values indistinguishable from an
// in-process run. It implements core.StudyRunner, so anything that takes a
// runner — every bench experiment, cmd/figures — can execute through a
// server by swapping this in.
type Client struct {
	// HTTP is the transport (default http.DefaultClient). Streams are
	// long-lived: give a custom client no overall Timeout.
	HTTP *http.Client
	// OnPoint, when set, observes every streamed point as it arrives —
	// progress reporting for interactive callers. It runs on the stream
	// reader goroutine and must not block.
	OnPoint func(StreamPoint)

	base string

	mu     sync.Mutex
	ledger Ledger
}

// NewClient returns a client for the daosd server at addr (a host:port or
// an http:// URL).
func NewClient(addr string) *Client {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: base}
}

// Ledger accumulates the trailer counters of every submission a Client has
// completed: the client-side view of how much work the server's cache
// absorbed.
type Ledger struct {
	Requests     int
	Points       int
	CacheEnabled bool
	CacheHits    int
	CacheMisses  int
	Errors       int
}

// String renders the ledger in the cache-stats idiom, including the
// "(100.0% hits)" marker CI greps for on warm runs.
func (l Ledger) String() string {
	if !l.CacheEnabled {
		return fmt.Sprintf("server cache: off (%d points over %d requests)", l.Points, l.Requests)
	}
	lookups := l.CacheHits + l.CacheMisses
	rate := 0.0
	if lookups > 0 {
		rate = 100 * float64(l.CacheHits) / float64(lookups)
	}
	return fmt.Sprintf("server cache: %d lookups, %d hits, %d misses (%.1f%% hits), %d points over %d requests",
		lookups, l.CacheHits, l.CacheMisses, rate, l.Points, l.Requests)
}

// Ledger returns the accumulated submission counters.
func (c *Client) Ledger() Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger
}

// Run executes one study sweep through the server.
func (c *Client) Run(cfg core.Config) (*core.Study, error) {
	studies, err := c.RunAll([]core.Config{cfg})
	if len(studies) != 1 {
		// Unlike core.Runner.RunAll, Submit returns no studies at all when
		// the exchange itself fails (server unreachable, stream truncated).
		return nil, err
	}
	return studies[0], err
}

// RunAll executes a batch of study sweeps through the server, mirroring
// core.Runner.RunAll: studies come back in input order and fully populated,
// and the returned error joins per-point failures.
func (c *Client) RunAll(cfgs []core.Config) ([]*core.Study, error) {
	return c.Submit(context.Background(), cfgs)
}

// Submit posts the batch and consumes the result stream. The returned
// studies are assembled from the client's own core.Decompose of cfgs —
// identical to the server's by construction — with each streamed point
// dropped into its slot, so Table and CSV render byte-identically to an
// in-process run. A nil error means the stream completed with a trailer
// and no point carried a failure.
func (c *Client) Submit(ctx context.Context, cfgs []core.Config) ([]*core.Study, error) {
	if len(cfgs) == 0 {
		// Mirror core.Runner.RunAll(nil) without a round trip; the server
		// rejects empty submissions as malformed.
		studies, _ := core.Decompose(cfgs)
		return studies, nil
	}
	start := time.Now()
	body, err := json.Marshal(SubmitRequest{Configs: cfgs})
	if err != nil {
		return nil, fmt.Errorf("studysvc: encode submit: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+PathSubmit, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("studysvc: build submit: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("studysvc: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		diag, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("studysvc: server rejected submit: %s: %s",
			resp.Status, strings.TrimSpace(string(diag)))
	}

	studies, jobs := core.Decompose(cfgs)
	dec := json.NewDecoder(resp.Body)

	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("studysvc: read stream header: %w", err)
	}
	if h.Points != len(jobs) || h.Studies != len(cfgs) {
		return nil, fmt.Errorf("studysvc: server decomposed %d points / %d studies, client expected %d / %d (client/server version skew?)",
			h.Points, h.Studies, len(jobs), len(cfgs))
	}

	// A point line is distinguished from a premature trailer by "done".
	type line struct {
		StreamPoint
		Done bool `json:"done"`
	}
	filled := make([]bool, len(jobs))
	slot := make(map[[3]int]int, len(jobs))
	for i, j := range jobs {
		slot[[3]int{j.Study, j.Series, j.Index}] = i
	}
	for seen := 0; seen < len(jobs); seen++ {
		var ln line
		if err := dec.Decode(&ln); err != nil {
			return nil, fmt.Errorf("studysvc: stream truncated after %d/%d points: %w", seen, len(jobs), err)
		}
		if ln.Done {
			return nil, fmt.Errorf("studysvc: stream ended early after %d/%d points", seen, len(jobs))
		}
		sp := ln.StreamPoint
		i, ok := slot[[3]int{sp.Study, sp.Series, sp.Index}]
		if !ok {
			return nil, fmt.Errorf("studysvc: stream carried a point outside the batch grid (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		if filled[i] {
			return nil, fmt.Errorf("studysvc: stream carried a duplicate point (study=%d series=%d index=%d)",
				sp.Study, sp.Series, sp.Index)
		}
		filled[i] = true
		studies[sp.Study].Series[sp.Series].Points[sp.Index] = sp.toPoint()
		if c.OnPoint != nil {
			c.OnPoint(sp)
		}
	}

	var t Trailer
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("studysvc: stream missing trailer: %w", err)
	}
	if !t.Done {
		return nil, fmt.Errorf("studysvc: malformed trailer: %+v", t)
	}
	c.mu.Lock()
	c.ledger.Requests++
	c.ledger.Points += t.Points
	c.ledger.CacheEnabled = c.ledger.CacheEnabled || t.CacheEnabled
	c.ledger.CacheHits += t.CacheHits
	c.ledger.CacheMisses += t.CacheMisses
	c.ledger.Errors += t.Errors
	c.mu.Unlock()

	return studies, core.Finish(studies, time.Since(start))
}

// Health checks the server's PathHealth endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathHealth, nil)
	if err != nil {
		return err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Errorf("studysvc: health: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("studysvc: health: %s", resp.Status)
	}
	return nil
}
