// Package studysvc is the sharded multi-study scheduler service behind
// cmd/daosd: a long-lived HTTP server that accepts batches of study
// configurations, decomposes them into independent (variant, node-count)
// point jobs with core.Decompose, consults the content-addressed point
// cache (internal/cache) before scheduling, shards the remaining jobs
// across a bounded worker pool, and streams each completed point back to
// the submitting client as NDJSON the moment it lands.
//
// # Determinism across the wire
//
// The service adds scheduling, not physics. Both ends of the protocol run
// the same core.Decompose over the same configs, every point executes
// through core.PointJob.Execute with its order-independent derived seed,
// and measured float64s cross the wire losslessly — so a client-side
// reassembled *core.Study renders Table and CSV output byte-identical to
// an in-process core.Runner run of the same batch. The e2e tests pin this
// contract cold and warm.
//
// # Sharding and flow control
//
// All submissions share one job queue drained by Config.Workers pool
// goroutines (the shard width), so concurrent clients compete fairly for
// simulation capacity and the process never exceeds its concurrency
// bound. Per-request result channels are buffered to the full batch size:
// a worker can always deliver without blocking, which means one slow or
// vanished client cannot wedge the pool. When a client disconnects
// mid-stream its remaining queued jobs are skipped (their contexts are
// canceled) and in-flight points finish and are discarded.
//
// # Caching
//
// With a cache configured, the scheduler looks every job up by its
// content address (core.PointJob.Key) before dispatch — hits stream back
// immediately, marked cache_hit — and stores every successfully simulated
// point on completion. A warm server therefore answers a repeated batch
// entirely from cache, which the stream trailer's ledger reports as 100%
// hits. The cache may be disk-backed and shared with in-process runs: the
// key scheme is identical.
package studysvc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"daosim/internal/cache"
	"daosim/internal/core"
)

// Config assembles a Server.
type Config struct {
	// Workers is the shard width: the number of point jobs simulated
	// concurrently across all submissions (default runtime.GOMAXPROCS(0)).
	Workers int
	// NewWorker builds one pool slot's execution backend (default
	// LocalWorker). Each of the Workers slots gets its own instance.
	NewWorker func() Worker
	// Cache, when non-nil, memoizes completed points across submissions.
	Cache *cache.Cache
}

// task is one scheduled point job plus the submission it reports to.
type task struct {
	ctx context.Context
	job core.PointJob
	out chan<- StreamPoint // buffered to the batch size; sends never block
}

// Server schedules study submissions over a bounded worker pool. It is an
// http.Handler; create one with New and shut it down with Close.
type Server struct {
	cfg   Config
	cache *cache.Cache
	queue chan task
	quit  chan struct{}
	wg    sync.WaitGroup
	mux   *http.ServeMux
}

// New starts a Server's worker pool and returns the ready handler.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.NewWorker == nil {
		cfg.NewWorker = func() Worker { return &LocalWorker{} }
	}
	s := &Server{
		cfg:   cfg,
		cache: cfg.Cache,
		queue: make(chan task),
		quit:  make(chan struct{}),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST "+PathSubmit, s.handleSubmit)
	s.mux.HandleFunc("GET "+PathHealth, s.handleHealth)
	s.mux.HandleFunc("GET "+PathStats, s.handleStats)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(cfg.NewWorker())
	}
	return s
}

// Workers returns the pool width.
func (s *Server) Workers() int { return s.cfg.Workers }

// Close stops the worker pool and waits for in-flight points to finish.
// In-progress submissions observe the shutdown and end their streams early
// (truncated, i.e. without a trailer).
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// worker drains the shared queue until shutdown, then releases its
// backend's per-slot state (a LocalWorker's kernel arena, a remote
// worker's connection) if the backend is closable.
func (s *Server) worker(backend Worker) {
	defer s.wg.Done()
	defer func() {
		if c, ok := backend.(io.Closer); ok {
			c.Close()
		}
	}()
	for {
		select {
		case <-s.quit:
			return
		case t := <-s.queue:
			t.out <- s.runTask(backend, t)
		}
	}
}

// runTask executes one queued job (skipping abandoned submissions) and
// stores successful results in the cache.
func (s *Server) runTask(backend Worker, t task) StreamPoint {
	if t.ctx.Err() != nil {
		return toWire(t.job, canceledPoint(t.job), false)
	}
	pt := backend.RunPoint(t.ctx, t.job)
	if s.cache != nil && pt.Err == "" {
		s.cache.Put(t.job.Key(), pt.CacheEntry())
	}
	return toWire(t.job, pt, false)
}

// handleSubmit decomposes a batch, schedules its points, and streams results
// back in completion order.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("studysvc: bad submit body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Configs) == 0 {
		http.Error(w, "studysvc: empty batch", http.StatusBadRequest)
		return
	}
	// A batch that decomposes to zero points (e.g. a config with no
	// variants) streams normally — header then trailer — matching
	// core.Runner.RunAll, which returns such studies with empty series.
	_, jobs := core.Decompose(req.Configs)

	ctx := r.Context()
	start := time.Now()
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(Header{Points: len(jobs), Studies: len(req.Configs)}); err != nil {
		return
	}
	flush()

	// The result channel is buffered to the whole batch so pool workers and
	// the cache-lookup goroutine below can always deliver without blocking,
	// even after this handler has given up on the client.
	results := make(chan StreamPoint, len(jobs))
	go func() {
		for _, j := range jobs {
			if s.cache != nil {
				if e, ok := s.cache.Get(j.Key()); ok {
					results <- toWire(j, j.FromEntry(e), true)
					continue
				}
			}
			select {
			case s.queue <- task{ctx: ctx, job: j, out: results}:
			case <-ctx.Done():
				return
			case <-s.quit:
				return
			}
		}
	}()

	var t Trailer
	t.CacheEnabled = s.cache != nil
	for seen := 0; seen < len(jobs); seen++ {
		select {
		case sp := <-results:
			if sp.CacheHit {
				t.CacheHits++
			} else {
				t.CacheMisses++
			}
			if sp.Err != "" {
				t.Errors++
			}
			if err := enc.Encode(sp); err != nil {
				return // client gone; ctx cancellation reaps queued jobs
			}
			flush()
		case <-ctx.Done():
			return
		case <-s.quit:
			return
		}
	}
	t.Done = true
	t.Points = len(jobs)
	t.ElapsedNS = int64(time.Since(start))
	if err := enc.Encode(t); err != nil {
		return
	}
	flush()
}

// handleHealth implements PathHealth.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statsReply is the PathStats body.
type statsReply struct {
	Workers int          `json:"workers"`
	Cache   *cache.Stats `json:"cache,omitempty"`
}

// handleStats implements PathStats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := statsReply{Workers: s.cfg.Workers}
	if s.cache != nil {
		st := s.cache.Stats()
		reply.Cache = &st
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}
