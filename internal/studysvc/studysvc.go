// Package studysvc is the sharded multi-study scheduler service behind
// cmd/daosd: a long-lived HTTP server that accepts batches of study
// configurations, decomposes them into independent (variant, node-count)
// point jobs with core.Decompose, consults the content-addressed point
// cache (internal/cache) before scheduling, shards the remaining jobs
// across a bounded worker pool, and streams each completed point back to
// the submitting client as NDJSON the moment it lands.
//
// # Determinism across the wire
//
// The service adds scheduling, not physics. Both ends of the protocol run
// the same core.Decompose over the same configs, every point executes
// through core.PointJob.Execute with its order-independent derived seed,
// and measured float64s cross the wire losslessly — so a client-side
// reassembled *core.Study renders Table and CSV output byte-identical to
// an in-process core.Runner run of the same batch. The e2e tests pin this
// contract cold and warm.
//
// # Sharding and flow control
//
// All submissions share one job queue drained by the pool members (the
// shard width), so concurrent clients compete fairly for simulation
// capacity and the process never exceeds its concurrency bound. Per-request
// result channels are buffered to the full batch size: a worker can always
// deliver without blocking, which means one slow or vanished client cannot
// wedge the pool. When a client disconnects mid-stream its remaining queued
// jobs are skipped (their contexts are canceled) and in-flight points
// finish and are discarded.
//
// # The worker fleet
//
// A pool member is either a LocalWorker (an in-process simulation slot) or
// a RemoteWorker (a peer daosd reached over the /v1/points leg of the
// protocol) — Config.Remotes turns a server into a fleet coordinator.
// Because every job carries its derived seed and defaulted config, where a
// point executes is invisible in the results: coordinator output is
// byte-identical to a single in-process run.
//
// The coordinator owns fleet robustness. A worker-level failure (peer died
// mid-point, connection reset, truncated result stream) does not fail the
// point: the job is re-dispatched to another member — up to
// Config.MaxAttempts times — and the failed member is marked down and
// re-probed against its peer's /v1/healthz with exponential backoff until
// it answers, at which point it rejoins the pool. Per-batch retry counts
// surface in the stream trailer; cumulative per-member state in
// /v1/statsz.
//
// # Caching
//
// With a cache configured, the scheduler looks every job up by its
// content address (core.PointJob.Key) before dispatch — hits stream back
// immediately, marked cache_hit — and stores every successfully simulated
// point on completion. A warm server therefore answers a repeated batch
// entirely from cache, which the stream trailer's ledger reports as 100%
// hits. The cache may be disk-backed and shared with in-process runs: the
// key scheme is identical — and because a fleet worker is itself a daosd,
// each peer's own cache dedups the points it executes with the same keys.
package studysvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"daosim/internal/cache"
	"daosim/internal/core"
)

// Config assembles a Server.
type Config struct {
	// Workers is the number of local execution slots. When no Remotes and
	// no Members are configured it defaults to runtime.GOMAXPROCS(0); on a
	// fleet coordinator it defaults to zero (all execution remote).
	Workers int
	// NewWorker builds one local slot's execution backend (default
	// LocalWorker). Each of the Workers slots gets its own instance.
	NewWorker func() Worker
	// Remotes lists peer daosd base URLs (host:port or http:// URLs); each
	// contributes RemoteSlots pool members executing on that peer.
	Remotes []string
	// RemoteSlots is the number of points kept in flight per remote peer
	// (default 1). The peer's own -parallel pool bounds what it actually
	// simulates concurrently.
	RemoteSlots int
	// Members adds explicit pool members after the local and remote ones —
	// the seam tests and custom topologies use.
	Members []Member
	// MaxAttempts bounds how many workers a job is tried on before its
	// point is failed with the last worker error (default 3).
	MaxAttempts int
	// ProbeBase and ProbeMax shape the down-worker re-probe backoff: the
	// first probe waits ProbeBase, doubling per failure up to ProbeMax
	// (defaults 100ms and 5s).
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// Cache, when non-nil, memoizes completed points across submissions.
	Cache *cache.Cache
}

// task is one scheduled point job plus the submission it reports to.
type task struct {
	ctx      context.Context
	job      core.PointJob
	attempts int                // dispatches so far (0 until first failure)
	retries  *atomic.Int64      // the submission's retry counter (trailer)
	out      chan<- StreamPoint // buffered to the batch size; sends never block
}

// Server schedules study submissions over a bounded worker pool. It is an
// http.Handler; create one with New and shut it down with Close.
type Server struct {
	cfg     Config
	cache   *cache.Cache
	members []*member
	queue   chan task
	quit    chan struct{}
	wg      sync.WaitGroup
	mux     *http.ServeMux

	// probeCtx parents every health probe of a down member; Close cancels
	// it so probes in flight return immediately instead of riding out
	// probeTimeout and stalling the drain.
	probeCtx    context.Context
	probeCancel context.CancelFunc

	draining  atomic.Bool
	retries   atomic.Int64 // jobs re-dispatched after a worker failure
	closeOnce sync.Once
}

// New starts a Server's worker pool and returns the ready handler.
func New(cfg Config) *Server {
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if cfg.Workers == 0 && len(cfg.Remotes) == 0 && len(cfg.Members) == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.NewWorker == nil {
		cfg.NewWorker = func() Worker { return &LocalWorker{} }
	}
	if cfg.RemoteSlots <= 0 {
		cfg.RemoteSlots = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ProbeBase <= 0 {
		cfg.ProbeBase = 100 * time.Millisecond
	}
	if cfg.ProbeMax <= 0 {
		cfg.ProbeMax = 5 * time.Second
	}
	s := &Server{
		cfg:   cfg,
		cache: cfg.Cache,
		queue: make(chan task),
		quit:  make(chan struct{}),
		mux:   http.NewServeMux(),
	}
	s.probeCtx, s.probeCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.members = append(s.members, &member{name: fmt.Sprintf("local/%d", i), w: cfg.NewWorker()})
	}
	for _, addr := range cfg.Remotes {
		// One RemoteWorker (one transport) per peer, shared by its slots:
		// each in-flight point is an independent HTTP exchange.
		rw := NewRemoteWorker(addr)
		for k := 0; k < cfg.RemoteSlots; k++ {
			name := rw.Addr()
			if cfg.RemoteSlots > 1 {
				name = fmt.Sprintf("%s#%d", rw.Addr(), k)
			}
			s.members = append(s.members, &member{name: name, w: rw})
		}
	}
	for _, m := range cfg.Members {
		s.members = append(s.members, &member{name: m.Name, w: m.Worker})
	}
	for _, m := range s.members {
		m.rng = probeRNG(m.name)
	}
	s.mux.HandleFunc("POST "+PathSubmit, s.handleSubmit)
	s.mux.HandleFunc("POST "+PathSubmitPoints, s.handleSubmitPoints)
	s.mux.HandleFunc("GET "+PathHealth, s.handleHealth)
	s.mux.HandleFunc("GET "+PathStats, s.handleStats)
	for _, m := range s.members {
		s.wg.Add(1)
		go s.memberLoop(m)
	}
	return s
}

// Workers returns the pool width: the total number of execution slots,
// local and remote.
func (s *Server) Workers() int { return len(s.members) }

// Fleet snapshots every pool member's state and counters.
func (s *Server) Fleet() []MemberStatus {
	out := make([]MemberStatus, len(s.members))
	for i, m := range s.members {
		out[i] = m.status()
	}
	return out
}

// Retries returns the cumulative number of jobs re-dispatched after a
// worker failure.
func (s *Server) Retries() int64 { return s.retries.Load() }

// Close stops the worker pool and waits for in-flight points to finish.
// New submissions arriving once a Close has begun are rejected with a 503
// ("server draining"); submissions already streaming observe the shutdown
// and end their streams early (truncated, i.e. without a trailer — the
// client-visible signal for mid-flight loss). Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.quit)
		s.probeCancel()
	})
	s.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// memberLoop drains the shared queue on behalf of one pool member until
// shutdown, then releases the member's per-slot state (a LocalWorker's
// kernel arena, a remote worker's connections). A worker-level failure
// sends the job back for retry elsewhere and holds this member out of the
// pool until probeUntilUp readmits it.
func (s *Server) memberLoop(m *member) {
	defer s.wg.Done()
	defer m.close()
	for {
		select {
		case <-s.quit:
			return
		case t := <-s.queue:
			if t.ctx.Err() != nil {
				t.out <- toWire(t.job, canceledPoint(t.job), false)
				continue
			}
			pt, err := m.w.RunPoint(t.ctx, t.job)
			if err == nil {
				m.points.Add(1)
				if s.cache != nil && pt.Err == "" {
					s.cache.Put(t.job.Key(), pt.CacheEntry())
				}
				t.out <- toWire(t.job, pt, false)
				continue
			}
			if t.ctx.Err() != nil {
				// The submission vanished while the point was in flight; a
				// remote's transport error is then the cancellation echoed
				// back, not evidence the worker is broken.
				t.out <- toWire(t.job, canceledPoint(t.job), false)
				continue
			}
			m.failures.Add(1)
			s.retry(t, m.name, err)
			if !s.probeUntilUp(m) {
				return
			}
		}
	}
}

// retry hands a worker-failed job back to the pool — or fails its point
// when the job has exhausted its attempts. The requeue runs on its own
// goroutine because the calling member is headed for its probe loop and
// must not block waiting for a free slot.
func (s *Server) retry(t task, worker string, cause error) {
	t.attempts++
	if t.attempts >= s.cfg.MaxAttempts {
		pt := canceledPoint(t.job)
		pt.Err = fmt.Sprintf("studysvc: point abandoned after %d attempts; last worker %s: %v",
			t.attempts, worker, cause)
		t.out <- toWire(t.job, pt, false)
		return
	}
	s.retries.Add(1)
	if t.retries != nil {
		t.retries.Add(1)
	}
	go func() {
		select {
		case s.queue <- t:
		case <-t.ctx.Done():
			t.out <- toWire(t.job, canceledPoint(t.job), false)
		case <-s.quit:
			pt := canceledPoint(t.job)
			pt.Err = "studysvc: server draining; retried point abandoned"
			t.out <- toWire(t.job, pt, false)
		}
	}()
}

// handleSubmit decomposes a batch, schedules its points, and streams results
// back in completion order.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("studysvc: bad submit body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Configs) == 0 {
		http.Error(w, "studysvc: empty batch", http.StatusBadRequest)
		return
	}
	// A batch that decomposes to zero points (e.g. a config with no
	// variants) streams normally — header then trailer — matching
	// core.Runner.RunAll, which returns such studies with empty series.
	_, jobs := core.Decompose(req.Configs)
	s.stream(w, r, jobs, len(req.Configs))
}

// handleSubmitPoints schedules pre-decomposed jobs — the coordinator-to-
// worker leg — through the identical queue, cache, and stream machinery.
func (s *Server) handleSubmitPoints(w http.ResponseWriter, r *http.Request) {
	var req PointsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("studysvc: bad points body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "studysvc: empty job batch", http.StatusBadRequest)
		return
	}
	studies := make(map[int]bool)
	for _, j := range req.Jobs {
		studies[j.Study] = true
	}
	s.stream(w, r, req.Jobs, len(studies))
}

// stream is the scheduling core shared by both submission forms: it commits
// the response, enqueues every job (serving cache hits inline), and relays
// results to the client as they land, closing with the batch trailer.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, jobs []core.PointJob, studies int) {
	if s.draining.Load() {
		// Losing the race against Close must be loud: a 503 before any
		// stream byte, never a silently dropped batch.
		http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
		return
	}
	ctx := r.Context()
	start := time.Now()
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(Header{Points: len(jobs), Studies: studies}); err != nil {
		return
	}
	flush()

	// The result channel is buffered to the whole batch so pool workers and
	// the cache-lookup goroutine below can always deliver without blocking,
	// even after this handler has given up on the client.
	results := make(chan StreamPoint, len(jobs))
	var retried atomic.Int64
	go func() {
		for _, j := range jobs {
			if s.cache != nil {
				if e, ok := s.cache.Get(j.Key()); ok {
					results <- toWire(j, j.FromEntry(e), true)
					continue
				}
			}
			select {
			case s.queue <- task{ctx: ctx, job: j, retries: &retried, out: results}:
			case <-ctx.Done():
				return
			case <-s.quit:
				return
			}
		}
	}()

	var t Trailer
	t.CacheEnabled = s.cache != nil
	for seen := 0; seen < len(jobs); seen++ {
		select {
		case sp := <-results:
			if sp.CacheHit {
				t.CacheHits++
			} else {
				t.CacheMisses++
			}
			if sp.Err != "" {
				t.Errors++
			}
			if err := enc.Encode(sp); err != nil {
				return // client gone; ctx cancellation reaps queued jobs
			}
			flush()
		case <-ctx.Done():
			return
		case <-s.quit:
			return
		}
	}
	t.Done = true
	t.Points = len(jobs)
	t.Retries = int(retried.Load())
	t.ElapsedNS = int64(time.Since(start))
	if err := enc.Encode(t); err != nil {
		return
	}
	flush()
}

// handleHealth implements PathHealth.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ServerStats is the PathStats body: pool width, cumulative fleet retry
// count, per-member fleet state, and cache counters.
type ServerStats struct {
	Workers int            `json:"workers"`
	Retries int64          `json:"retries"`
	Fleet   []MemberStatus `json:"fleet,omitempty"`
	Cache   *cache.Stats   `json:"cache,omitempty"`
}

// handleStats implements PathStats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := ServerStats{Workers: s.Workers(), Retries: s.Retries(), Fleet: s.Fleet()}
	if s.cache != nil {
		st := s.cache.Stats()
		reply.Cache = &st
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}
