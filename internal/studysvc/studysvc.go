// Package studysvc is the sharded multi-study scheduler service behind
// cmd/daosd: a long-lived HTTP server that accepts batches of study
// configurations, decomposes them into independent (variant, node-count)
// point jobs with core.Decompose, consults the content-addressed point
// cache (internal/cache) before scheduling, shards the remaining jobs
// across a bounded worker pool, and streams each completed point back to
// the submitting client as NDJSON the moment it lands.
//
// # Determinism across the wire
//
// The service adds scheduling, not physics. Both ends of the protocol run
// the same core.Decompose over the same configs, every point executes
// through core.PointJob.Execute with its order-independent derived seed,
// and measured float64s cross the wire losslessly — so a client-side
// reassembled *core.Study renders Table and CSV output byte-identical to
// an in-process core.Runner run of the same batch. The e2e tests pin this
// contract cold and warm.
//
// # Sharding and flow control
//
// All submissions share one job queue drained by the pool members (the
// shard width), so concurrent clients compete fairly for simulation
// capacity and the process never exceeds its concurrency bound. Per-request
// result channels are buffered to the full batch size: a worker can always
// deliver without blocking, which means one slow or vanished client cannot
// wedge the pool. When a client disconnects mid-stream its remaining queued
// jobs are skipped (their contexts are canceled) and in-flight points
// finish and are discarded.
//
// # The worker fleet
//
// A pool member is either a LocalWorker (an in-process simulation slot) or
// a RemoteWorker (a peer daosd reached over the /v1/points leg of the
// protocol) — Config.Remotes turns a server into a fleet coordinator.
// Because every job carries its derived seed and defaulted config, where a
// point executes is invisible in the results: coordinator output is
// byte-identical to a single in-process run.
//
// The coordinator owns fleet robustness. A worker-level failure (peer died
// mid-point, connection reset, truncated result stream) does not fail the
// point: the job is re-dispatched to another member — up to
// Config.MaxAttempts times — and the failed member is marked down and
// re-probed against its peer's /v1/healthz with exponential backoff until
// it answers, at which point it rejoins the pool. Per-batch retry counts
// surface in the stream trailer; cumulative per-member state in
// /v1/statsz.
//
// # Caching and single-flight
//
// With a cache configured, the scheduler looks every job up by its
// content address (core.PointJob.Key) before dispatch — hits stream back
// immediately, marked cache_hit — and stores every successfully simulated
// point on completion. A warm server therefore answers a repeated batch
// entirely from cache, which the stream trailer's ledger reports as 100%
// hits. The cache may be disk-backed and shared with in-process runs: the
// key scheme is identical — and because a fleet worker is itself a daosd,
// each peer's own cache dedups the points it executes with the same keys.
//
// The cache alone cannot dedup points that are concurrently in flight: two
// submissions of the same uncached key would both miss and both simulate.
// So the scheduler adds single-flight, keyed on the same content address.
// The first looker-up of a key becomes its flight's leader and proceeds
// through cache lookup and dispatch; every later task with that key —
// a duplicate inside one batch (pre-dedup node lists like -nodes 8,8) or
// an overlapping concurrent submission — parks as a waiter and has the
// leader's result replayed to it, marked coalesced in the stream. If the
// leader's submission is canceled mid-flight, the next waiter with a live
// context is promoted to leader and the point still executes exactly once.
// Single-flight is part of the cache contract and engages only when a
// cache is configured.
//
// # The shared cache tier
//
// A daosd also serves its cache over GET/PUT /v1/cache/{key} (the cache
// package's TierPathPrefix), answering from its local tiers only. Any
// daosim process started with -cache-peer mounts those endpoints as a
// remote cache tier below its own memory and disk tiers, which makes point
// dedup fleet-global: every peer pointed at the same daosd shares one pool
// of completed points, keyed identically on every machine. The endpoints
// serve local tiers exclusively, so peers pointing at each other can never
// turn one lookup into a forwarding loop.
//
// # Durable submissions
//
// With Config.Store set (daosd -store-dir), PathSubmit batches are
// journaled and their streams resumable: jobs run under the server's
// lifetime rather than the request's, completed points are appended to
// the job store before they are streamed, and a client that lost its
// connection — or whose server was kill -9ed and restarted — re-attaches
// with GET /v1/studies/{batch}?from=seq and receives exactly the points
// it missed. See durable.go and the protocol comment for the lifecycle.
package studysvc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"daosim/internal/cache"
	"daosim/internal/core"
	"daosim/internal/jobstore"
)

// Config assembles a Server.
type Config struct {
	// Workers is the number of local execution slots. When no Remotes and
	// no Members are configured it defaults to runtime.GOMAXPROCS(0); on a
	// fleet coordinator it defaults to zero (all execution remote).
	Workers int
	// NewWorker builds one local slot's execution backend (default
	// LocalWorker). Each of the Workers slots gets its own instance.
	NewWorker func() Worker
	// Remotes lists peer daosd base URLs (host:port or http:// URLs); each
	// contributes RemoteSlots pool members executing on that peer.
	Remotes []string
	// RemoteSlots is the number of points kept in flight per remote peer
	// (default 1). The peer's own -parallel pool bounds what it actually
	// simulates concurrently.
	RemoteSlots int
	// Members adds explicit pool members after the local and remote ones —
	// the seam tests and custom topologies use.
	Members []Member
	// MaxAttempts bounds how many workers a job is tried on before its
	// point is failed with the last worker error (default 3).
	MaxAttempts int
	// ProbeBase and ProbeMax shape the down-worker re-probe backoff: the
	// first probe waits ProbeBase, doubling per failure up to ProbeMax
	// (defaults 100ms and 5s).
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// Cache, when non-nil, memoizes completed points across submissions.
	Cache *cache.Cache
	// Store, when non-nil, journals every PathSubmit batch and its
	// completed points, making submissions durable across restarts and
	// streams resumable (see durable.go and the protocol comment). The
	// server replays the store's recovered batches at startup; the caller
	// owns opening and closing the store itself.
	Store *jobstore.Store
}

// task is one scheduled point job plus the submission it reports to.
type task struct {
	ctx      context.Context
	job      core.PointJob
	key      cache.Key          // content address (set whenever a cache is configured)
	attempts int                // dispatches so far (0 until first failure)
	retries  *atomic.Int64      // the submission's retry counter (trailer)
	out      chan<- StreamPoint // buffered to the batch size; sends never block
}

// flight is one in-flight point key: the leader task is dispatched, every
// later task of the same key parks here until the leader's result lands.
type flight struct {
	waiters []task
}

// Server schedules study submissions over a bounded worker pool. It is an
// http.Handler; create one with New and shut it down with Close.
type Server struct {
	cfg     Config
	cache   *cache.Cache
	members []*member
	queue   chan task
	quit    chan struct{}
	wg      sync.WaitGroup
	mux     *http.ServeMux

	// probeCtx parents every health probe of a down member; Close cancels
	// it so probes in flight return immediately instead of riding out
	// probeTimeout and stalling the drain.
	probeCtx    context.Context
	probeCancel context.CancelFunc

	// flights is the single-flight table: one entry per point key currently
	// between cache lookup and result delivery.
	flightMu sync.Mutex
	flights  map[cache.Key]*flight

	// Durable-batch state (Config.Store set; see durable.go).
	store       *jobstore.Store
	batchMu     sync.Mutex
	batches     map[string]*batchState
	journaled   atomic.Int64
	resumed     atomic.Int64
	journalErrs atomic.Int64
	recovery    DurabilityStats // last-startup recovery counters, static after New

	draining  atomic.Bool
	retries   atomic.Int64 // jobs re-dispatched after a worker failure
	closeOnce sync.Once
}

// New starts a Server's worker pool and returns the ready handler.
func New(cfg Config) *Server {
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if cfg.Workers == 0 && len(cfg.Remotes) == 0 && len(cfg.Members) == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.NewWorker == nil {
		cfg.NewWorker = func() Worker { return &LocalWorker{} }
	}
	if cfg.RemoteSlots <= 0 {
		cfg.RemoteSlots = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ProbeBase <= 0 {
		cfg.ProbeBase = 100 * time.Millisecond
	}
	if cfg.ProbeMax <= 0 {
		cfg.ProbeMax = 5 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		cache:   cfg.Cache,
		queue:   make(chan task),
		quit:    make(chan struct{}),
		mux:     http.NewServeMux(),
		flights: make(map[cache.Key]*flight),
	}
	s.probeCtx, s.probeCancel = context.WithCancel(context.Background())
	// Member names must be unique: they key the /v1/statsz fleet entries
	// and seed the probe jitter, so two members sharing a name would be
	// indistinguishable in diagnostics (and probe in lockstep). A repeated
	// name — the same peer URL listed twice to give it more slots, or
	// duplicate Config.Members entries — gets an @n ordinal at pool build.
	used := make(map[string]bool)
	unique := func(name string) string {
		base := name
		for n := 2; used[name]; n++ {
			name = fmt.Sprintf("%s@%d", base, n)
		}
		used[name] = true
		return name
	}
	for i := 0; i < cfg.Workers; i++ {
		s.members = append(s.members, &member{name: unique(fmt.Sprintf("local/%d", i)), w: cfg.NewWorker()})
	}
	for _, addr := range cfg.Remotes {
		// One RemoteWorker (one transport) per peer, shared by its slots:
		// each in-flight point is an independent HTTP exchange.
		rw := NewRemoteWorker(addr)
		for k := 0; k < cfg.RemoteSlots; k++ {
			name := rw.Addr()
			if cfg.RemoteSlots > 1 {
				name = fmt.Sprintf("%s#%d", rw.Addr(), k)
			}
			s.members = append(s.members, &member{name: unique(name), w: rw})
		}
	}
	for _, m := range cfg.Members {
		s.members = append(s.members, &member{name: unique(m.Name), w: m.Worker})
	}
	for _, m := range s.members {
		m.rng = probeRNG(m.name)
	}
	s.mux.HandleFunc("POST "+PathSubmit, s.handleSubmit)
	s.mux.HandleFunc("GET "+PathSubmit+"/{batch}", s.handleResume)
	s.mux.HandleFunc("POST "+PathSubmitPoints, s.handleSubmitPoints)
	s.mux.HandleFunc("GET "+PathHealth, s.handleHealth)
	s.mux.HandleFunc("GET "+PathStats, s.handleStats)
	s.mux.HandleFunc("GET "+cache.TierPathPrefix+"{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT "+cache.TierPathPrefix+"{key}", s.handleCachePut)
	for _, m := range s.members {
		s.wg.Add(1)
		go s.memberLoop(m)
	}
	if cfg.Store != nil {
		s.store = cfg.Store
		s.batches = make(map[string]*batchState)
		// The pool is running; recovered batches schedule through it like
		// fresh submissions, minus their already-journaled points.
		s.recoverBatches()
	}
	return s
}

// Recovery reports the startup journal-replay counters (zero without a
// job store): unfinished batches found, points served from the store,
// and points re-enqueued for execution.
func (s *Server) Recovery() (batches, replayed, reenqueued int) {
	return s.recovery.RecoveredBatches, s.recovery.ReplayedPoints, s.recovery.ReenqueuedPoints
}

// Workers returns the pool width: the total number of execution slots,
// local and remote.
func (s *Server) Workers() int { return len(s.members) }

// Fleet snapshots every pool member's state and counters.
func (s *Server) Fleet() []MemberStatus {
	out := make([]MemberStatus, len(s.members))
	for i, m := range s.members {
		out[i] = m.status()
	}
	return out
}

// Retries returns the cumulative number of jobs re-dispatched after a
// worker failure.
func (s *Server) Retries() int64 { return s.retries.Load() }

// Close stops the worker pool and waits for in-flight points to finish.
// New submissions arriving once a Close has begun are rejected with a 503
// ("server draining"); submissions already streaming observe the shutdown
// and end their streams early (truncated, i.e. without a trailer — the
// client-visible signal for mid-flight loss). Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.quit)
		s.probeCancel()
	})
	s.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// memberLoop drains the shared queue on behalf of one pool member until
// shutdown, then releases the member's per-slot state (a LocalWorker's
// kernel arena, a remote worker's connections). A worker-level failure
// sends the job back for retry elsewhere and holds this member out of the
// pool until probeUntilUp readmits it.
func (s *Server) memberLoop(m *member) {
	defer s.wg.Done()
	defer m.close()
	for {
		select {
		case <-s.quit:
			return
		case t := <-s.queue:
			if t.ctx.Err() != nil {
				s.finishCanceled(t)
				continue
			}
			pt, err := m.w.RunPoint(t.ctx, t.job)
			if err == nil {
				if t.ctx.Err() != nil && pt.Err != "" {
					// The worker observed the submission's cancellation and
					// returned a failed point instead of a result. That is
					// this submission's loss only — a coalesced waiter from a
					// live submission takes over the flight.
					s.finishCanceled(t)
					continue
				}
				m.points.Add(1)
				if s.cache != nil && pt.Err == "" {
					// Put before finish: the instant the flight resolves, a
					// fresh looker-up of this key must already find the entry.
					s.cache.Put(t.key, pt.CacheEntry())
				}
				s.finish(t, pt, false)
				continue
			}
			if t.ctx.Err() != nil {
				// The submission vanished while the point was in flight; a
				// remote's transport error is then the cancellation echoed
				// back, not evidence the worker is broken.
				s.finishCanceled(t)
				continue
			}
			m.failures.Add(1)
			s.retry(t, m.name, err)
			if !s.probeUntilUp(m) {
				return
			}
		}
	}
}

// retry hands a worker-failed job back to the pool — or fails its point
// when the job has exhausted its attempts. The requeue runs on its own
// goroutine because the calling member is headed for its probe loop and
// must not block waiting for a free slot.
func (s *Server) retry(t task, worker string, cause error) {
	t.attempts++
	if t.attempts >= s.cfg.MaxAttempts {
		pt := canceledPoint(t.job)
		pt.Err = fmt.Sprintf("studysvc: point abandoned after %d attempts; last worker %s: %v",
			t.attempts, worker, cause)
		// Abandonment resolves the flight too: the attempts were spent on
		// behalf of every coalesced waiter, so all of them see the failure.
		s.finish(t, pt, false)
		return
	}
	s.retries.Add(1)
	if t.retries != nil {
		t.retries.Add(1)
	}
	go func() {
		select {
		case s.queue <- t:
		case <-t.ctx.Done():
			s.finishCanceled(t)
		case <-s.quit:
			pt := canceledPoint(t.job)
			pt.Err = "studysvc: server draining; retried point abandoned"
			s.finish(t, pt, false)
		}
	}()
}

// lead registers t as the flight for its key. It returns true when t is
// the leader — the caller must eventually resolve the flight through
// finish or finishCanceled — and false when the key is already in flight:
// t has been parked as a waiter and will have the leader's result replayed
// to it.
func (s *Server) lead(t task) bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if f, ok := s.flights[t.key]; ok {
		f.waiters = append(f.waiters, t)
		return false
	}
	s.flights[t.key] = &flight{}
	return true
}

// resolve removes k's flight and returns its parked waiters.
func (s *Server) resolve(k cache.Key) []task {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	f, ok := s.flights[k]
	if !ok {
		return nil
	}
	delete(s.flights, k)
	return f.waiters
}

// finish delivers pt to t's submission and replays it to every waiter that
// coalesced onto t's flight.
func (s *Server) finish(t task, pt core.Point, hit bool) {
	t.out <- toWire(t.job, pt, hit)
	for _, w := range s.resolve(t.key) {
		sp := toWire(w.job, pt, hit)
		sp.Coalesced = true
		w.out <- sp
	}
}

// finishCanceled reports t's cancellation to its own submission, then
// hands t's flight to the next waiter whose submission is still alive —
// the leader's death must not lose a point other submissions are waiting
// on.
func (s *Server) finishCanceled(t task) {
	t.out <- toWire(t.job, canceledPoint(t.job), false)
	s.promote(t.key)
}

// promote pops dead waiters off k's flight (delivering their
// cancellations) until it finds one with a live context, which it requeues
// as the flight's new leader. With no live waiter the flight is dissolved.
func (s *Server) promote(k cache.Key) {
	var dead []task
	var next *task
	s.flightMu.Lock()
	if f, ok := s.flights[k]; ok {
		for len(f.waiters) > 0 {
			w := f.waiters[0]
			f.waiters = f.waiters[1:]
			if w.ctx.Err() == nil {
				next = &w
				break
			}
			dead = append(dead, w)
		}
		if next == nil {
			delete(s.flights, k)
		}
	}
	s.flightMu.Unlock()
	for _, w := range dead {
		w.out <- toWire(w.job, canceledPoint(w.job), false)
	}
	if next != nil {
		s.requeue(*next)
	}
}

// requeue dispatches a promoted waiter as its flight's new leader, on its
// own goroutine because promotion happens on a pool member's loop (or an
// enqueue goroutine) that must not block waiting for a free slot.
func (s *Server) requeue(t task) {
	go func() {
		if s.cache != nil {
			if e, ok := s.cache.Get(t.key); ok {
				s.finish(t, t.job.FromEntry(e), true)
				return
			}
		}
		select {
		case s.queue <- t:
		case <-t.ctx.Done():
			s.finishCanceled(t)
		case <-s.quit:
			pt := canceledPoint(t.job)
			pt.Err = "studysvc: server draining; retried point abandoned"
			s.finish(t, pt, false)
		}
	}()
}

// handleSubmit decomposes a batch, schedules its points, and streams results
// back in completion order.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("studysvc: bad submit body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Configs) == 0 {
		http.Error(w, "studysvc: empty batch", http.StatusBadRequest)
		return
	}
	if s.store != nil {
		if s.draining.Load() {
			http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
			return
		}
		id := req.Batch
		if id == "" {
			id = newBatchID()
		}
		// openBatch is idempotent on the id: a client re-POSTing after a
		// lost connection re-attaches to the running batch from seq 0.
		b, _ := s.openBatch(id, req.Configs)
		s.serveBatch(w, r, b, 0)
		return
	}
	// A batch that decomposes to zero points (e.g. a config with no
	// variants) streams normally — header then trailer — matching
	// core.Runner.RunAll, which returns such studies with empty series.
	_, jobs := core.Decompose(req.Configs)
	s.stream(w, r, jobs, len(req.Configs))
}

// handleSubmitPoints schedules pre-decomposed jobs — the coordinator-to-
// worker leg — through the identical queue, cache, and stream machinery.
func (s *Server) handleSubmitPoints(w http.ResponseWriter, r *http.Request) {
	var req PointsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("studysvc: bad points body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "studysvc: empty job batch", http.StatusBadRequest)
		return
	}
	studies := make(map[int]bool)
	for _, j := range req.Jobs {
		studies[j.Study] = true
	}
	s.stream(w, r, req.Jobs, len(studies))
}

// enqueue schedules a batch's jobs: cache hits are served inline, the
// rest go to the pool queue, with single-flight leadership when a cache
// is configured. skip (may be nil) marks positions already satisfied —
// a recovered batch's journaled points. The durable flag selects the
// abandonment semantics at shutdown: an ephemeral submission fabricates
// loud "abandoned" failure points so its stream accounts for every job,
// while a durable batch simply stops — its unscheduled jobs are exactly
// what a restart re-enqueues from the journal, and fabricating failures
// would journal them as results.
func (s *Server) enqueue(ctx context.Context, jobs []core.PointJob, skip []bool, retried *atomic.Int64, out chan<- StreamPoint, durable bool) {
	for i, j := range jobs {
		if skip != nil && skip[i] {
			continue
		}
		t := task{ctx: ctx, job: j, retries: retried, out: out}
		if s.cache == nil {
			// No cache, no dedup contract: every job dispatches.
			select {
			case s.queue <- t:
			case <-ctx.Done():
				return
			case <-s.quit:
				return
			}
			continue
		}
		t.key = j.Key()
		if !s.lead(t) {
			// The key is already in flight (a duplicate in this batch,
			// or a concurrent submission's); the leader's result will
			// be replayed here.
			continue
		}
		// The leader holds the flight across the cache lookup, so
		// concurrent lookers-up of one key cost one lookup — which for
		// a remote tier means one network exchange, not a stampede.
		if e, ok := s.cache.Get(t.key); ok {
			s.finish(t, t.job.FromEntry(e), true)
			continue
		}
		select {
		case s.queue <- t:
		case <-ctx.Done():
			if durable {
				return
			}
			// This flight may have collected waiters from other live
			// submissions; hand it to one of them rather than leaking it.
			s.finishCanceled(t)
			return
		case <-s.quit:
			if durable {
				return
			}
			pt := canceledPoint(t.job)
			pt.Err = "studysvc: server draining; queued point abandoned"
			s.finish(t, pt, false)
			return
		}
	}
}

// stream is the scheduling core shared by both submission forms: it commits
// the response, enqueues every job (serving cache hits inline), and relays
// results to the client as they land, closing with the batch trailer.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, jobs []core.PointJob, studies int) {
	if s.draining.Load() {
		// Losing the race against Close must be loud: a 503 before any
		// stream byte, never a silently dropped batch.
		http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
		return
	}
	ctx := r.Context()
	start := time.Now()
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(Header{Points: len(jobs), Studies: studies}); err != nil {
		return
	}
	flush()

	// The result channel is buffered to the whole batch so pool workers and
	// the enqueue goroutine can always deliver without blocking, even after
	// this handler has given up on the client.
	results := make(chan StreamPoint, len(jobs))
	var retried atomic.Int64
	go s.enqueue(ctx, jobs, nil, &retried, results, false)

	var t Trailer
	t.CacheEnabled = s.cache != nil
	for seen := 0; seen < len(jobs); seen++ {
		select {
		case sp := <-results:
			// Delivery order is the sequence axis even on an ephemeral
			// stream; only durable batches can actually be resumed from it.
			sp.Seq = seen + 1
			if sp.CacheHit {
				t.CacheHits++
			} else {
				t.CacheMisses++
			}
			if sp.Coalesced {
				t.Coalesced++
			}
			if sp.Err != "" {
				t.Errors++
			}
			if err := enc.Encode(sp); err != nil {
				return // client gone; ctx cancellation reaps queued jobs
			}
			flush()
		case <-ctx.Done():
			return
		case <-s.quit:
			return
		}
	}
	t.Done = true
	t.Points = len(jobs)
	t.Retries = int(retried.Load())
	t.ElapsedNS = int64(time.Since(start))
	if err := enc.Encode(t); err != nil {
		return
	}
	flush()
}

// handleHealth implements PathHealth.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ServerStats is the PathStats body: pool width, cumulative fleet retry
// count, per-member fleet state, and cache counters.
type ServerStats struct {
	Workers int            `json:"workers"`
	Retries int64          `json:"retries"`
	Fleet   []MemberStatus `json:"fleet,omitempty"`
	Cache   *cache.Stats   `json:"cache,omitempty"`
	// Durability is present on servers running with a job store: journal
	// and recovery counters (see DurabilityStats).
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// handleStats implements PathStats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := ServerStats{Workers: s.Workers(), Retries: s.Retries(), Fleet: s.Fleet()}
	if s.cache != nil {
		st := s.cache.Stats()
		reply.Cache = &st
	}
	reply.Durability = s.durabilityStats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// handleCacheGet serves one cache entry to a peer's remote tier: a 200
// carrying the checksummed record for a hit, a 404 for a miss (or for a
// server with no cache configured — a clean refusal the remote tier
// surfaces as an error without marking the peer down). Only local tiers
// are consulted (cache.GetLocal), so peers pointing at each other can
// never chain lookups into a loop.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
		return
	}
	if s.cache == nil {
		http.Error(w, "studysvc: no cache tier", http.StatusNotFound)
		return
	}
	k, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e, ok := s.cache.GetLocal(k)
	if !ok {
		http.Error(w, "studysvc: no cache entry", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(cache.EncodeEntry(e))
}

// handleCachePut accepts one cache entry from a peer's remote tier. The
// body is the same checksummed record the disk tier persists, so a
// truncated or garbled upload is rejected (400) by the identical decode
// path that rejects a torn disk file. Writes land in local tiers only
// (cache.PutLocal); puts are best-effort on the sending side, so every
// refusal here is just a counted miss over there.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
		return
	}
	if s.cache == nil {
		http.Error(w, "studysvc: no cache tier", http.StatusNotFound)
		return
	}
	k, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<10))
	if err != nil {
		http.Error(w, fmt.Sprintf("studysvc: bad cache entry body: %v", err), http.StatusBadRequest)
		return
	}
	e, err := cache.DecodeEntry(buf)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.cache.PutLocal(k, e)
	w.WriteHeader(http.StatusNoContent)
}
