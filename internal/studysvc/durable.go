package studysvc

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"daosim/internal/core"
	"daosim/internal/jobstore"
)

// This file is the durable half of the scheduler: batch submissions
// that survive a daosd crash and streams that re-attach mid-flight.
// It engages only when Config.Store is set; the storeless path in
// studysvc.go is untouched.
//
// A durable batch's lifecycle: handleSubmit journals the submission and
// opens a batchState; an enqueue goroutine schedules its jobs under the
// server's lifetime context (not the request's — the client may come
// and go); a collector goroutine drains results, assigns each point its
// delivery sequence number, journals it, and appends it to the replay
// log; any number of stream attachments (the original POST, or GET
// resume legs) serve the replay log from an offset and then follow live
// deliveries. When the trailer has been delivered to some client, the
// batch retires: a done record hits the journal and the state is
// dropped. A batch interrupted by a crash is rebuilt from the journal
// on startup — completed points pre-populate the replay log, the rest
// re-enqueue.

// batchState is one durable batch resident in memory.
type batchState struct {
	id      string
	jobs    []core.PointJob
	studies int
	slot    map[[3]int]int // grid coordinates -> job position
	start   time.Time

	// results is the delivery channel shared with the scheduler,
	// buffered to the whole batch so workers never block on it.
	results chan StreamPoint
	retried atomic.Int64

	mu sync.Mutex
	// delivered is the replay log: delivered[i].Seq == i+1. Appended to
	// only by the collector; streamed by any number of attachments.
	delivered []StreamPoint
	// done marks job positions already delivered (or recovered), so a
	// duplicate result — a recovered point whose in-flight twin also
	// lands — is dropped rather than double-counted.
	done                          []bool
	hits, misses, errs, coalesced int
	trailer                       *Trailer
	retired                       bool
	// waiters are attachment wakeups: closed and cleared on every
	// delivery and on the trailer.
	waiters map[chan struct{}]struct{}
}

func newBatchState(id string, jobs []core.PointJob, studies int) *batchState {
	b := &batchState{
		id:      id,
		jobs:    jobs,
		studies: studies,
		slot:    make(map[[3]int]int, len(jobs)),
		start:   time.Now(),
		results: make(chan StreamPoint, len(jobs)),
		done:    make([]bool, len(jobs)),
		waiters: make(map[chan struct{}]struct{}),
	}
	for i, j := range jobs {
		b.slot[[3]int{j.Study, j.Series, j.Index}] = i
	}
	return b
}

// broadcastLocked wakes every attachment waiting for the next delivery.
func (b *batchState) broadcastLocked() {
	for ch := range b.waiters {
		close(ch)
	}
	clear(b.waiters)
}

// slotOf maps a result's grid coordinates back to its job position.
func (b *batchState) slotOf(sp StreamPoint) (int, bool) {
	i, ok := b.slot[[3]int{sp.Study, sp.Series, sp.Index}]
	return i, ok
}

// DurabilityStats is the /v1/statsz durability block of a daosd running
// with a job store.
type DurabilityStats struct {
	// JournaledBatches counts submissions journaled since this process
	// started.
	JournaledBatches int64 `json:"journaled_batches"`
	// LiveBatches is the number of batches currently resident (accepted
	// or recovered, trailer not yet delivered).
	LiveBatches int `json:"live_batches"`
	// RecoveredBatches, ReplayedPoints, and ReenqueuedPoints describe
	// the last startup recovery: how many unfinished batches the journal
	// held, how many of their points were served from the store, and how
	// many had to be re-enqueued for execution.
	RecoveredBatches int `json:"recovered_batches"`
	ReplayedPoints   int `json:"replayed_points"`
	ReenqueuedPoints int `json:"reenqueued_points"`
	// ResumedStreams counts GET resume attachments served.
	ResumedStreams int64 `json:"resumed_streams"`
	// JournalErrors counts appends the store refused (disk trouble);
	// affected points lose durability, not correctness.
	JournalErrors int64 `json:"journal_errors,omitempty"`
}

// newBatchID generates a server-side batch id when the client did not
// pick one.
func newBatchID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("batch-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// openBatch returns the live batchState for id, creating (and
// journaling, and scheduling) it on first sight. The second return is
// false when the id was already live — a re-POST that should re-attach,
// not re-schedule.
func (s *Server) openBatch(id string, cfgs []core.Config) (*batchState, bool) {
	s.batchMu.Lock()
	if b, ok := s.batches[id]; ok {
		s.batchMu.Unlock()
		return b, false
	}
	_, jobs := core.Decompose(cfgs)
	b := newBatchState(id, jobs, len(cfgs))
	s.batches[id] = b
	s.batchMu.Unlock()

	if err := s.store.AppendBatch(id, cfgs); err != nil {
		// The batch still runs; it just will not survive a crash.
		s.journalErrs.Add(1)
	}
	s.journaled.Add(1)
	go s.collect(b)
	go s.enqueue(s.probeCtx, b.jobs, nil, &b.retried, b.results, true)
	return b, true
}

// lookupBatch returns the live batchState for id, if any.
func (s *Server) lookupBatch(id string) *batchState {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	return s.batches[id]
}

// collect is a durable batch's single result drain: it orders
// deliveries, journals them, appends them to the replay log, and builds
// the trailer once every job has landed. It exits early only on server
// shutdown — a crash, after which the journal has everything collected
// so far.
func (s *Server) collect(b *batchState) {
	need := len(b.jobs)
	b.mu.Lock()
	have := len(b.delivered)
	b.mu.Unlock()
	for have < need {
		select {
		case sp := <-b.results:
			if s.deliver(b, sp) {
				have++
			}
		case <-s.quit:
			return
		}
	}
	t := Trailer{
		Done:         true,
		Points:       need,
		CacheEnabled: s.cache != nil,
		Retries:      int(b.retried.Load()),
	}
	b.mu.Lock()
	t.CacheHits = b.hits
	t.CacheMisses = b.misses
	t.Errors = b.errs
	t.Coalesced = b.coalesced
	t.ElapsedNS = int64(time.Since(b.start))
	b.trailer = &t
	b.broadcastLocked()
	b.mu.Unlock()
}

// deliver journals one result and appends it to the replay log,
// assigning its sequence number. Duplicates (possible when a recovered
// point's original execution was still in flight at the crash) are
// dropped. The journal write happens before the point becomes visible:
// a point a client saw is always a point a restarted server still has.
func (s *Server) deliver(b *batchState, sp StreamPoint) bool {
	pos, ok := b.slotOf(sp)
	if !ok {
		return false
	}
	b.mu.Lock()
	dup := b.done[pos]
	if !dup {
		b.done[pos] = true
	}
	b.mu.Unlock()
	if dup {
		return false
	}
	if err := s.store.AppendPoint(b.id, jobstore.PointRecord{
		Pos:       pos,
		Point:     sp.toPoint(),
		CacheHit:  sp.CacheHit,
		Coalesced: sp.Coalesced,
	}); err != nil {
		s.journalErrs.Add(1)
	}
	b.mu.Lock()
	sp.Seq = len(b.delivered) + 1
	b.delivered = append(b.delivered, sp)
	if sp.CacheHit {
		b.hits++
	} else {
		b.misses++
	}
	if sp.Coalesced {
		b.coalesced++
	}
	if sp.Err != "" {
		b.errs++
	}
	b.broadcastLocked()
	b.mu.Unlock()
	return true
}

// serveBatch streams b's replay log from offset `from` (a seq: the
// client has everything up to and including it) and follows live
// deliveries through the trailer. Any number of attachments can serve
// one batch concurrently; whichever delivers the trailer first retires
// the batch.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, b *batchState, from int) {
	ctx := r.Context()
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(Header{Batch: b.id, Points: len(b.jobs), Studies: b.studies}); err != nil {
		return
	}
	flush()

	next := max(from, 0)
	for {
		b.mu.Lock()
		var chunk []StreamPoint
		if next < len(b.delivered) {
			chunk = append(chunk, b.delivered[next:]...)
		}
		trailer := b.trailer
		var wake chan struct{}
		if len(chunk) == 0 && trailer == nil {
			wake = make(chan struct{})
			b.waiters[wake] = struct{}{}
		}
		b.mu.Unlock()

		if len(chunk) > 0 {
			for _, sp := range chunk {
				if err := enc.Encode(sp); err != nil {
					return // client gone; the batch keeps running
				}
			}
			flush()
			next += len(chunk)
			continue // re-check: the trailer may already be set
		}
		if trailer != nil {
			if err := enc.Encode(*trailer); err != nil {
				return
			}
			flush()
			s.retireBatch(b)
			return
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return
		case <-s.quit:
			return
		}
	}
}

// retireBatch drops a fully-delivered batch: the journal gets its done
// record and the state leaves the live table. Idempotent across
// concurrent attachments.
func (s *Server) retireBatch(b *batchState) {
	b.mu.Lock()
	already := b.retired
	b.retired = true
	b.mu.Unlock()
	if already {
		return
	}
	if err := s.store.BatchDone(b.id); err != nil {
		s.journalErrs.Add(1)
	}
	s.batchMu.Lock()
	delete(s.batches, b.id)
	s.batchMu.Unlock()
}

// recoverBatches rebuilds the store's unfinished batches at startup:
// completed points pre-populate each replay log (re-sequenced in their
// original delivery order), and only the points that never finished are
// re-enqueued. Runs before the server accepts connections, but the
// re-enqueued work executes on the normal pool machinery.
func (s *Server) recoverBatches() {
	for _, rb := range s.store.Recovered() {
		_, jobs := core.Decompose(rb.Configs)
		b := newBatchState(rb.ID, jobs, len(rb.Configs))
		for _, pr := range rb.Points {
			if pr.Pos < 0 || pr.Pos >= len(jobs) || b.done[pr.Pos] {
				continue
			}
			b.done[pr.Pos] = true
			sp := toWire(jobs[pr.Pos], pr.Point, pr.CacheHit)
			sp.Coalesced = pr.Coalesced
			sp.Seq = len(b.delivered) + 1
			b.delivered = append(b.delivered, sp)
			if sp.CacheHit {
				b.hits++
			} else {
				b.misses++
			}
			if sp.Coalesced {
				b.coalesced++
			}
			if sp.Err != "" {
				b.errs++
			}
		}
		skip := append([]bool(nil), b.done...)
		s.batchMu.Lock()
		s.batches[rb.ID] = b
		s.batchMu.Unlock()
		s.recovery.RecoveredBatches++
		s.recovery.ReplayedPoints += len(b.delivered)
		s.recovery.ReenqueuedPoints += len(jobs) - len(b.delivered)
		go s.collect(b)
		go s.enqueue(s.probeCtx, b.jobs, skip, &b.retried, b.results, true)
	}
}

// handleResume implements the GET resume leg: re-attach to a live batch
// from a seq offset.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
		return
	}
	id := r.PathValue("batch")
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("studysvc: bad from offset %q", q), http.StatusBadRequest)
			return
		}
		from = n
	}
	b := s.lookupBatch(id)
	if b == nil {
		http.Error(w, fmt.Sprintf("studysvc: unknown batch %q", id), http.StatusNotFound)
		return
	}
	s.resumed.Add(1)
	s.serveBatch(w, r, b, from)
}

// durabilityStats snapshots the durability counters for /v1/statsz.
func (s *Server) durabilityStats() *DurabilityStats {
	if s.store == nil {
		return nil
	}
	s.batchMu.Lock()
	live := len(s.batches)
	s.batchMu.Unlock()
	d := s.recovery // static after New
	d.JournaledBatches = s.journaled.Load()
	d.LiveBatches = live
	d.ResumedStreams = s.resumed.Load()
	d.JournalErrors = s.journalErrs.Load()
	return &d
}

// kill is the crash test hook: stop the scheduler exactly as a SIGKILL
// would be observed — no drain, no journal retirement, no fabricated
// abandonment points — so restart/recovery tests exercise the same
// state a dead process leaves behind. Tests call Close afterwards to
// reap the pool goroutines.
func (s *Server) kill() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.quit)
		s.probeCancel()
	})
}
