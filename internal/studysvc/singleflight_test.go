package studysvc

import (
	"context"
	"sync"
	"testing"

	"daosim/internal/cache"
	"daosim/internal/core"
	"daosim/internal/ior"
)

// keyedWorker counts RunPoint invocations per cache key and fabricates a
// key-pure result (a function of the derived seed only), so a replayed
// leader result is value-identical to what the follower's own execution
// would have produced — exactly the purity the real kernel guarantees.
// With gate non-nil, every execution blocks until the gate closes, pinning
// flights open so coalescing is deterministic rather than a race.
type keyedWorker struct {
	mu   sync.Mutex
	runs map[cache.Key]int
	gate chan struct{}
}

func (w *keyedWorker) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	k := j.Key()
	w.mu.Lock()
	w.runs[k]++
	w.mu.Unlock()
	if w.gate != nil {
		select {
		case <-w.gate:
		case <-ctx.Done():
			return canceledPoint(j), nil
		}
	}
	v := float64(j.Seed % 1009)
	return core.Point{Nodes: j.Nodes, Ranks: j.Nodes * j.Cfg.PPN, WriteGiBs: v, ReadGiBs: 2 * v}, nil
}

// TestSingleFlightDedupsConcurrentSubmissions is the scheduler-dedup
// regression test: a batch carrying a duplicate point (the pre-dedup node
// list -nodes 2,2) and a second concurrent client overlapping the same
// grid must between them simulate every unique key exactly once. The
// worker gate holds the first flight open until both submissions have
// parked their duplicates, so the coalescing paths are exercised
// deterministically, not raced into.
func TestSingleFlightDedupsConcurrentSubmissions(t *testing.T) {
	memCache, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worker := &keyedWorker{runs: make(map[cache.Key]int), gate: make(chan struct{})}
	srv, ts := startServer(t, Config{
		Workers:   1,
		NewWorker: func() Worker { return worker },
		Cache:     memCache,
	})

	variant := []core.Variant{{Label: "daos S2", API: ior.APIDFS}}
	cfgA := smallConfig(variant)
	cfgA.Nodes = []int{2, 2} // duplicate point within one batch
	cfgB := smallConfig(variant)
	cfgB.Nodes = []int{2, 3} // overlaps A's grid at nodes=2

	var wg sync.WaitGroup
	clients := [2]*Client{NewClient(ts.URL), NewClient(ts.URL)}
	errs := [2]error{}
	results := [2][]*core.Study{}
	for i, cfg := range []core.Config{cfgA, cfgB} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = clients[i].Submit(context.Background(), []core.Config{cfg})
		}()
	}

	// Both unique keys are in flight once A's and B's enqueue loops have
	// run: the nodes=2 flight is pinned open by the gated worker, so every
	// later nodes=2 job — A's in-batch duplicate and B's overlap — must
	// coalesce onto it, and nodes=3 waits behind it for the single slot.
	waitFor(t, "both unique keys in flight", func() bool {
		srv.flightMu.Lock()
		defer srv.flightMu.Unlock()
		return len(srv.flights) == 2
	})
	close(worker.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Every slot holds the right key-pure value, coalesced replays included.
	for i, cfg := range []core.Config{cfgA, cfgB} {
		_, jobs := core.Decompose([]core.Config{cfg})
		for _, j := range jobs {
			pt := results[i][j.Study].Series[j.Series].Points[j.Index]
			if v := float64(j.Seed % 1009); pt.WriteGiBs != v || pt.ReadGiBs != 2*v || pt.Nodes != j.Nodes {
				t.Fatalf("client %d slot (%d,%d,%d): %+v, want write=%v", i, j.Study, j.Series, j.Index, pt, v)
			}
		}
	}

	// The dedup ledger: 4 submitted jobs, 2 unique keys, each simulated
	// exactly once and stored exactly once.
	worker.mu.Lock()
	defer worker.mu.Unlock()
	if len(worker.runs) != 2 {
		t.Fatalf("worker saw %d unique keys, want 2: %v", len(worker.runs), worker.runs)
	}
	for k, n := range worker.runs {
		if n != 1 {
			t.Fatalf("key %s simulated %d times, want exactly 1", k, n)
		}
	}
	if st := memCache.Stats(); st.Stores != 2 {
		t.Fatalf("cache stores = %d, want 2 (one per unique key): %+v", st.Stores, st)
	}
	coalesced := clients[0].Ledger().Coalesced + clients[1].Ledger().Coalesced
	if coalesced != 2 {
		t.Fatalf("coalesced points = %d, want 2 (4 jobs - 2 unique keys)", coalesced)
	}
	if clients[0].Ledger().Coalesced < 1 {
		t.Fatal("client A's in-batch duplicate was not coalesced")
	}
	srv.flightMu.Lock()
	leaked := len(srv.flights)
	srv.flightMu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flights leaked after both streams completed", leaked)
	}
}

// TestSingleFlightCanceledLeaderPromotesWaiter kills the leader's
// submission while its point is gated mid-execution; the concurrent
// follower submission of the same key must still receive a real result —
// the flight is handed to the live waiter, not lost with the dead leader.
func TestSingleFlightCanceledLeaderPromotesWaiter(t *testing.T) {
	memCache, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worker := &keyedWorker{runs: make(map[cache.Key]int), gate: make(chan struct{})}
	srv, ts := startServer(t, Config{
		Workers:   1,
		NewWorker: func() Worker { return worker },
		Cache:     memCache,
	})

	cfg := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	cfg.Nodes = []int{2}

	leadCtx, cancelLead := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	leader, follower := NewClient(ts.URL), NewClient(ts.URL)
	var followerStudies []*core.Study
	var followerErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		leader.Submit(leadCtx, []core.Config{cfg}) // error expected: canceled below
	}()
	// The leader's job reaches the worker and blocks on the gate; the
	// follower then parks on the flight.
	waitFor(t, "leader executing", func() bool {
		worker.mu.Lock()
		defer worker.mu.Unlock()
		return len(worker.runs) == 1
	})
	go func() {
		defer wg.Done()
		followerStudies, followerErr = follower.Submit(context.Background(), []core.Config{cfg})
	}()
	waitFor(t, "follower parked on the flight", func() bool {
		srv.flightMu.Lock()
		defer srv.flightMu.Unlock()
		for _, f := range srv.flights {
			if len(f.waiters) == 1 {
				return true
			}
		}
		return false
	})

	cancelLead()
	close(worker.gate)
	wg.Wait()

	if followerErr != nil {
		t.Fatalf("follower submission failed after leader cancellation: %v", followerErr)
	}
	_, jobs := core.Decompose([]core.Config{cfg})
	for _, j := range jobs {
		pt := followerStudies[j.Study].Series[j.Series].Points[j.Index]
		if pt.Err != "" {
			t.Fatalf("follower's point carries the leader's cancellation: %q", pt.Err)
		}
		if v := float64(j.Seed % 1009); pt.WriteGiBs != v {
			t.Fatalf("follower slot (%d,%d,%d): %+v, want write=%v", j.Study, j.Series, j.Index, pt, v)
		}
	}
	srv.flightMu.Lock()
	leaked := len(srv.flights)
	srv.flightMu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flights leaked after promotion", leaked)
	}
}

// TestDuplicatePoolMemberNamesAreDisambiguated pins the pool-build naming
// fix: the same peer URL listed twice (at RemoteSlots 1 and >1) and
// duplicate explicit Members must yield distinct /v1/statsz fleet entries.
func TestDuplicatePoolMemberNamesAreDisambiguated(t *testing.T) {
	distinct := func(t *testing.T, srv *Server) map[string]bool {
		t.Helper()
		seen := make(map[string]bool)
		for _, m := range srv.Fleet() {
			if seen[m.Name] {
				t.Fatalf("fleet reports two members named %q: %+v", m.Name, srv.Fleet())
			}
			seen[m.Name] = true
		}
		return seen
	}

	t.Run("same remote twice at one slot", func(t *testing.T) {
		srv := New(Config{Remotes: []string{"http://peer:9464", "http://peer:9464"}})
		defer srv.Close()
		seen := distinct(t, srv)
		if !seen["http://peer:9464"] || !seen["http://peer:9464@2"] {
			t.Fatalf("unexpected member names: %v", seen)
		}
	})
	t.Run("same remote twice at two slots", func(t *testing.T) {
		srv := New(Config{Remotes: []string{"http://peer:9464", "http://peer:9464"}, RemoteSlots: 2})
		defer srv.Close()
		if seen := distinct(t, srv); len(seen) != 4 {
			t.Fatalf("want 4 distinct members, got %v", seen)
		}
	})
	t.Run("duplicate explicit members", func(t *testing.T) {
		w := &keyedWorker{runs: make(map[cache.Key]int)}
		srv := New(Config{Members: []Member{{Name: "twin", Worker: w}, {Name: "twin", Worker: w}, {Name: "twin", Worker: w}}})
		defer srv.Close()
		seen := distinct(t, srv)
		if !seen["twin"] || !seen["twin@2"] || !seen["twin@3"] {
			t.Fatalf("unexpected member names: %v", seen)
		}
	})
}
