package studysvc

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/core"
	"daosim/internal/ior"
	"daosim/internal/placement"
)

// The stream tests exercise the scheduler, not the physics: they run on
// stub workers that fabricate deterministic per-job results instantly (or
// after a controlled delay), so sharding, fairness between concurrent
// clients, disconnect handling, and goroutine hygiene are all cheap to
// test under -race.

// smallConfig is a fast test grid on the reduced testbed.
func smallConfig(variants []core.Variant) core.Config {
	return core.Config{
		Workload:     "easy",
		Nodes:        []int{1, 2},
		PPN:          2,
		BlockSize:    4 << 20,
		TransferSize: 1 << 20,
		Variants:     variants,
		Testbed:      cluster.Small(),
	}
}

// stubValue fabricates a deterministic bandwidth from a job's identity, so
// tests can verify every streamed point landed in the right slot without
// simulating anything.
func stubValue(j core.PointJob) float64 {
	return float64(j.Seed%1009) + float64(j.Study*100+j.Series*10+j.Index)/1000
}

// stubWorker returns fabricated points after an optional delay.
type stubWorker struct {
	delay time.Duration
}

func (w stubWorker) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	if w.delay > 0 {
		select {
		case <-time.After(w.delay):
		case <-ctx.Done():
			return canceledPoint(j), nil
		}
	}
	v := stubValue(j)
	return core.Point{Nodes: j.Nodes, Ranks: j.Nodes * j.Cfg.PPN, WriteGiBs: v, ReadGiBs: 2 * v}, nil
}

// verifyStubStudies checks a reassembled batch against the stub's
// deterministic values, slot by slot.
func verifyStubStudies(t *testing.T, cfgs []core.Config, studies []*core.Study) {
	t.Helper()
	expected, jobs := core.Decompose(cfgs)
	if len(studies) != len(expected) {
		t.Fatalf("got %d studies, want %d", len(studies), len(expected))
	}
	for _, j := range jobs {
		pt := studies[j.Study].Series[j.Series].Points[j.Index]
		v := stubValue(j)
		if pt.WriteGiBs != v || pt.ReadGiBs != 2*v || pt.Nodes != j.Nodes || pt.Ranks != j.Nodes*j.Cfg.PPN {
			t.Fatalf("slot (%d,%d,%d) holds the wrong point: %+v (want write=%v)",
				j.Study, j.Series, j.Index, pt, v)
		}
	}
}

// TestConcurrentClientsCompleteStreams submits overlapping grids from two
// clients at once: each must get back a complete, correctly-assembled
// batch, with the shared pool sharding points between them.
func TestConcurrentClientsCompleteStreams(t *testing.T) {
	_, ts := startServer(t, Config{
		Workers:   2,
		NewWorker: func() Worker { return stubWorker{} },
	})

	// Overlapping grids: both batches contain the S2 sweep; one also runs
	// SX, the other S1 plus a second study.
	shared := core.Variant{Label: "daos S2", API: ior.APIDFS}
	batchA := []core.Config{smallConfig([]core.Variant{shared, {Label: "daos SX", API: ior.APIDFS}})}
	batchB := []core.Config{
		smallConfig([]core.Variant{shared, {Label: "daos S1", API: ior.APIDFS}}),
		smallConfig([]core.Variant{{Label: "hdf5", API: ior.APIHDF5}}),
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	results := make([][]*core.Study, 2)
	for i, batch := range [][]core.Config{batchA, batchB} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := NewClient(ts.URL)
			results[i], errs[i] = client.Submit(context.Background(), batch)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	verifyStubStudies(t, batchA, results[0])
	verifyStubStudies(t, batchB, results[1])
}

// TestDisconnectMidStreamDoesNotWedgeOrLeak cancels a submission while its
// points are still streaming, then proves the server (a) keeps serving
// other clients immediately and (b) returns to its baseline goroutine
// count — no worker wedged on the dead stream, no per-request goroutine
// leaked.
func TestDisconnectMidStreamDoesNotWedgeOrLeak(t *testing.T) {
	srv := New(Config{
		Workers:   1,
		NewWorker: func() Worker { return stubWorker{delay: 20 * time.Millisecond} },
	})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	// One transport for every client in this test, closable so client-side
	// keep-alive goroutines cannot be mistaken for a server-side leak.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	httpc := &http.Client{Transport: tr}

	// Let the pool and HTTP plumbing settle, then take the baseline (idle
	// keep-alive connections included, which only adds headroom below).
	warmup(t, ts.URL, httpc)
	baseline := runtime.NumGoroutine()

	// A 12-point single-series grid through a 1-wide pool: the stream is
	// guaranteed to still be in flight when the second point arrives.
	wide := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	wide.Nodes = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	client := NewClient(ts.URL)
	client.HTTP = httpc
	streamed := 0
	client.OnPoint = func(StreamPoint) {
		streamed++
		if streamed == 2 {
			cancel()
		}
	}
	_, err := client.Submit(ctx, []core.Config{wide})
	if err == nil {
		t.Fatal("canceled submission returned no error")
	}

	// The server must serve the next client promptly even though the
	// abandoned batch's jobs are still queued (they are skipped, not run).
	start := time.Now()
	next := NewClient(ts.URL)
	next.HTTP = httpc
	studies, err := next.Submit(context.Background(), []core.Config{smallConfig([]core.Variant{{Label: "daos S1", API: ior.APIDFS}})})
	if err != nil {
		t.Fatalf("server wedged after disconnect: %v", err)
	}
	verifyStubStudies(t, []core.Config{smallConfig([]core.Variant{{Label: "daos S1", API: ior.APIDFS}})}, studies)
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("post-disconnect submission took %v: abandoned jobs were executed, not skipped", waited)
	}

	// Goroutine hygiene: everything the dead stream spawned must unwind.
	tr.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after disconnect: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseDrainsWorkerArenas pins daosd's graceful-shutdown goroutine
// hygiene with the real execution backend: LocalWorkers simulate points
// (growing their kernel arenas), and Server.Close must close every pool
// slot's worker — draining its arena goroutines — so the process returns
// to its pre-server goroutine count. This is the in-process version of the
// daosd SIGTERM drain.
func TestCloseDrainsWorkerArenas(t *testing.T) {
	tr := &http.Transport{}
	httpc := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	srv := New(Config{Workers: 2}) // default NewWorker: real LocalWorkers
	ts := httptest.NewServer(srv)
	client := NewClient(ts.URL)
	client.HTTP = httpc
	cfg := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS, Class: placement.S2}})
	studies, err := client.Submit(context.Background(), []core.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range studies[0].Series {
		for _, pt := range s.Points {
			if pt.Err != "" || pt.WriteGiBs <= 0 {
				t.Fatalf("simulated point broken: %+v", pt)
			}
		}
	}

	ts.Close()
	srv.Close()
	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after Close: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// warmup performs one tiny submission so lazily-started goroutines (HTTP
// keep-alive pools, etc.) exist before the baseline count is taken.
func warmup(t *testing.T, url string, httpc *http.Client) {
	t.Helper()
	client := NewClient(url)
	client.HTTP = httpc
	if _, err := client.Submit(context.Background(), []core.Config{smallConfig([]core.Variant{{Label: "w", API: ior.APIDFS}})}); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitRejectsBadRequests pins the protocol's error responses: a
// malformed body and an empty batch are plain 400s, not streams.
func TestSubmitRejectsBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }})

	resp, err := http.Post(ts.URL+PathSubmit, "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %s, want 400", resp.Status)
	}

	resp, err = http.Post(ts.URL+PathSubmit, "application/json", strings.NewReader(`{"configs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch on the wire: got %s, want 400", resp.Status)
	}
}

// TestDegenerateBatchesMatchRunner pins core.StudyRunner parity on the
// edges: an empty batch and a zero-point study must come back exactly as
// core.Runner.RunAll returns them — populated skeletons, nil error — not
// as protocol failures.
func TestDegenerateBatchesMatchRunner(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }})
	client := NewClient(ts.URL)

	studies, err := client.Submit(context.Background(), nil)
	if err != nil || len(studies) != 0 {
		t.Fatalf("empty batch: studies=%v err=%v, want empty and nil", studies, err)
	}

	noVariants := core.Config{Workload: "easy"}
	direct, directErr := (&core.Runner{}).RunAll([]core.Config{noVariants})
	studies, err = client.Submit(context.Background(), []core.Config{noVariants})
	if err != nil || directErr != nil {
		t.Fatalf("zero-point batch errored: server=%v direct=%v", err, directErr)
	}
	if len(studies) != 1 || len(studies[0].Series) != len(direct[0].Series) {
		t.Fatalf("zero-point batch shape diverged: server=%+v direct=%+v", studies[0], direct[0])
	}
}

// TestUnreachableServerIsAnError pins the transport failure mode: Run and
// Submit against a dead address must return an error (not panic on the
// missing studies — the regression a -server typo used to hit).
func TestUnreachableServerIsAnError(t *testing.T) {
	client := NewClient("127.0.0.1:1")
	// A refused connect is transient (the server could be restarting), so
	// disable the reconnect budget: this test pins the terminal error
	// shape, TestSubmitRetriesConnectRefused pins the retry behavior.
	client.RetryAttempts = 1
	st, err := client.Run(smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}}))
	if err == nil || st != nil {
		t.Fatalf("Run against a dead server: study=%v err=%v, want nil study and an error", st, err)
	}
	if !strings.Contains(err.Error(), "submit") {
		t.Fatalf("error does not name the failing exchange: %v", err)
	}
}

// TestStreamPointsArriveIncrementally proves the server streams (flushes
// per point) rather than buffering the whole batch: with a 1-wide pool and
// a per-point delay, the first point must arrive well before the last.
func TestStreamPointsArriveIncrementally(t *testing.T) {
	const delay = 30 * time.Millisecond
	_, ts := startServer(t, Config{
		Workers:   1,
		NewWorker: func() Worker { return stubWorker{delay: delay} },
	})

	grid := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	grid.Nodes = []int{1, 2, 3, 4, 5, 6}

	var first, last time.Time
	client := NewClient(ts.URL)
	client.OnPoint = func(StreamPoint) {
		now := time.Now()
		if first.IsZero() {
			first = now
		}
		last = now
	}
	if _, err := client.Submit(context.Background(), []core.Config{grid}); err != nil {
		t.Fatal(err)
	}
	// Six sequential 30ms points: a buffered response would deliver all
	// lines in one burst (first ≈ last); a streamed one spreads them over
	// ≥ 5 delays. Allow generous slack for a loaded 1-core race runner.
	if spread := last.Sub(first); spread < 2*delay {
		t.Fatalf("points arrived in one burst (spread %v): stream is not incremental", spread)
	}
}
