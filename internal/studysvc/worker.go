package studysvc

import (
	"context"

	"daosim/internal/core"
)

// Worker executes point jobs on behalf of the server's scheduler. The
// server owns a bounded pool of Worker instances and feeds each from one
// shared queue, so an implementation may hold per-slot state (a remote
// connection, a pinned accelerator) without locking. RunPoint must honor
// ctx: when the submitting client is gone the scheduler stops caring about
// the result, and a well-behaved worker returns promptly (a local simulation
// that is already running may finish — points are short — but a remote
// worker should propagate the cancellation).
//
// The interface is deliberately the minimal seam for a remote worker fleet:
// a future RemoteWorker only has to ship the core.PointJob to a peer daosd
// and return the streamed core.Point; everything else (sharding, caching,
// ordering, reassembly) already lives on either side of it.
type Worker interface {
	RunPoint(ctx context.Context, j core.PointJob) core.Point
}

// LocalWorker simulates points in-process, the same execution path as
// core.Runner (core.PointJob.Execute), so results through the server are
// byte-identical to direct runs.
type LocalWorker struct{}

// RunPoint implements Worker.
func (LocalWorker) RunPoint(ctx context.Context, j core.PointJob) core.Point {
	if err := ctx.Err(); err != nil {
		return canceledPoint(j)
	}
	return j.Execute()
}

// canceledPoint fills a job's result slot when its submission was abandoned
// before the point ran.
func canceledPoint(j core.PointJob) core.Point {
	return core.Point{
		Nodes: j.Nodes,
		Ranks: j.Nodes * j.Cfg.PPN,
		Err:   "studysvc: submission canceled before the point ran",
	}
}
