package studysvc

import (
	"context"

	"daosim/internal/core"
	"daosim/internal/sim"
)

// Worker executes point jobs on behalf of the server's scheduler. The
// server owns a bounded pool of Worker instances and feeds each from one
// shared queue, so an implementation may hold per-slot state (a kernel
// arena, a remote connection, a pinned accelerator) without locking.
//
// The two return values separate the two failure planes. A point that ran
// and failed (bad variant, simulation error) comes back as a Point with
// Err set and a nil error — that is a result, and retrying it elsewhere
// would reproduce it. A non-nil error means the worker itself failed to
// produce any result (peer died mid-point, connection reset, truncated
// stream): the scheduler retries the job on another worker and marks this
// one down until a health probe readmits it. LocalWorker never returns an
// error — an in-process simulation always yields a Point.
//
// RunPoint must honor ctx: when the submitting client is gone the scheduler
// stops caring about the result, and a well-behaved worker returns promptly
// (a local simulation that is already running may finish — points are short
// — but a remote worker should propagate the cancellation). A Worker that
// also implements io.Closer is closed when its pool slot shuts down, the
// hook for releasing per-slot state; one that implements Prober is probed
// with exponential backoff while marked down.
type Worker interface {
	RunPoint(ctx context.Context, j core.PointJob) (core.Point, error)
}

// Prober is the optional health-check side of a Worker. The scheduler
// probes a down worker with exponential backoff and readmits it to the
// pool on the first nil return; RemoteWorker probes its peer's /v1/healthz.
// A down Worker without a Probe is readmitted after one backoff interval.
type Prober interface {
	Probe(ctx context.Context) error
}

// LocalWorker simulates points in-process through the same execution path
// as core.Runner (core.PointJob.ExecuteIn), so results through the server
// are byte-identical to direct runs. Each instance owns a kernel arena that
// recycles simulator state (event heap, pools, process goroutines) across
// the points its pool slot executes; the zero value is ready to use.
type LocalWorker struct {
	arena *sim.Arena
}

// RunPoint implements Worker. It never returns a worker-level error: an
// in-process simulation always produces a result (failures land in
// Point.Err).
func (w *LocalWorker) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	if err := ctx.Err(); err != nil {
		return canceledPoint(j), nil
	}
	if w.arena == nil {
		w.arena = sim.NewArena()
	}
	return j.ExecuteIn(w.arena), nil
}

// Close implements io.Closer: it drains the worker's kernel arena, waiting
// for its parked goroutines to exit. The server closes each pool slot's
// Worker on shutdown, so a drained daosd returns to its baseline goroutine
// count.
func (w *LocalWorker) Close() error {
	if w.arena != nil {
		w.arena.Drain()
	}
	return nil
}

// canceledPoint fills a job's result slot when its submission was abandoned
// before the point ran.
func canceledPoint(j core.PointJob) core.Point {
	return core.Point{
		Nodes: j.Nodes,
		Ranks: j.Nodes * j.Cfg.PPN,
		Err:   "studysvc: submission canceled before the point ran",
	}
}
