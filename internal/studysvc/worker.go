package studysvc

import (
	"context"

	"daosim/internal/core"
	"daosim/internal/sim"
)

// Worker executes point jobs on behalf of the server's scheduler. The
// server owns a bounded pool of Worker instances and feeds each from one
// shared queue, so an implementation may hold per-slot state (a kernel
// arena, a remote connection, a pinned accelerator) without locking.
// RunPoint must honor ctx: when the submitting client is gone the scheduler
// stops caring about the result, and a well-behaved worker returns promptly
// (a local simulation that is already running may finish — points are short
// — but a remote worker should propagate the cancellation). A Worker that
// also implements io.Closer is closed when its pool slot shuts down, the
// hook for releasing per-slot state.
//
// The interface is deliberately the minimal seam for a remote worker fleet:
// a future RemoteWorker only has to ship the core.PointJob to a peer daosd
// and return the streamed core.Point; everything else (sharding, caching,
// ordering, reassembly) already lives on either side of it.
type Worker interface {
	RunPoint(ctx context.Context, j core.PointJob) core.Point
}

// LocalWorker simulates points in-process through the same execution path
// as core.Runner (core.PointJob.ExecuteIn), so results through the server
// are byte-identical to direct runs. Each instance owns a kernel arena that
// recycles simulator state (event heap, pools, process goroutines) across
// the points its pool slot executes; the zero value is ready to use.
type LocalWorker struct {
	arena *sim.Arena
}

// RunPoint implements Worker.
func (w *LocalWorker) RunPoint(ctx context.Context, j core.PointJob) core.Point {
	if err := ctx.Err(); err != nil {
		return canceledPoint(j)
	}
	if w.arena == nil {
		w.arena = sim.NewArena()
	}
	return j.ExecuteIn(w.arena)
}

// Close implements io.Closer: it drains the worker's kernel arena, waiting
// for its parked goroutines to exit. The server closes each pool slot's
// Worker on shutdown, so a drained daosd returns to its baseline goroutine
// count.
func (w *LocalWorker) Close() error {
	if w.arena != nil {
		w.arena.Drain()
	}
	return nil
}

// canceledPoint fills a job's result slot when its submission was abandoned
// before the point ran.
func canceledPoint(j core.PointJob) core.Point {
	return core.Point{
		Nodes: j.Nodes,
		Ranks: j.Nodes * j.Cfg.PPN,
		Err:   "studysvc: submission canceled before the point ran",
	}
}
