package studysvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"daosim/internal/core"
	"daosim/internal/ior"
)

// The fleet tests exercise the coordinator's robustness machinery — retry
// on worker loss, down-marking, backoff re-probing, readmission — on stub
// workers, so every scenario is deterministic and cheap under -race. The
// e2e tests cover the same paths with real RemoteWorkers and simulated
// physics.

// fastProbes are fleet timing knobs scaled for tests.
func fastProbes(cfg Config) Config {
	cfg.ProbeBase = 2 * time.Millisecond
	cfg.ProbeMax = 20 * time.Millisecond
	return cfg
}

// flakyWorker succeeds like stubWorker for `limit` points, then fails at
// the worker level (RunPoint error) until healed. Probe answers health
// according to the healthy flag, modeling a peer that died and later came
// back.
type flakyWorker struct {
	limit   atomic.Int64
	delay   time.Duration
	ran     atomic.Int64 // successful points
	dead    atomic.Bool
	healthy atomic.Bool
}

func (w *flakyWorker) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	if w.dead.Load() {
		return core.Point{}, errors.New("flaky: connection refused")
	}
	if w.ran.Load() >= w.limit.Load() {
		w.dead.Store(true)
		w.healthy.Store(false)
		return core.Point{}, errors.New("flaky: stream truncated after 0/1 points: unexpected EOF")
	}
	if w.delay > 0 {
		select {
		case <-time.After(w.delay):
		case <-ctx.Done():
			return canceledPoint(j), nil
		}
	}
	w.ran.Add(1)
	v := stubValue(j)
	return core.Point{Nodes: j.Nodes, Ranks: j.Nodes * j.Cfg.PPN, WriteGiBs: v, ReadGiBs: 2 * v}, nil
}

func (w *flakyWorker) Probe(ctx context.Context) error {
	if !w.healthy.Load() {
		return errors.New("flaky: still down")
	}
	w.dead.Store(false)
	return nil
}

// TestWorkerLossRetriesReprobesAndReadmits is the satellite worker-loss
// scenario: a remote worker dies after M points mid-sweep. The coordinator
// must finish the sweep by retrying the lost job on the healthy worker
// (final studies complete and correct), report the retry in the trailer,
// re-probe the down worker with backoff, and readmit it once it answers —
// after which it executes points again.
func TestWorkerLossRetriesReprobesAndReadmits(t *testing.T) {
	flaky := &flakyWorker{}
	flaky.limit.Store(1) // points the flaky worker completes before dying
	srv, ts := startServer(t, fastProbes(Config{
		Members: []Member{
			{Name: "flaky", Worker: flaky},
			// The healthy worker is slow: while it holds a job, the flaky
			// worker is the only free slot, so it is guaranteed to receive
			// jobs (and die) regardless of scheduling order.
			{Name: "steady", Worker: stubWorker{delay: 10 * time.Millisecond}},
		},
	}))

	grid := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	grid.Nodes = []int{1, 2, 3, 4, 5, 6}

	client := NewClient(ts.URL)
	studies, err := client.Submit(context.Background(), []core.Config{grid})
	if err != nil {
		t.Fatalf("sweep did not survive worker loss: %v", err)
	}
	verifyStubStudies(t, []core.Config{grid}, studies)

	l := client.Ledger()
	if l.Retries < 1 {
		t.Fatalf("trailer reported no retries after a worker died mid-sweep: %+v", l)
	}
	if !strings.Contains(l.String(), "fleet retried") {
		t.Fatalf("ledger does not surface the retry: %s", l)
	}
	if got := srv.Retries(); got < 1 {
		t.Fatalf("server retry counter = %d, want >= 1", got)
	}

	// The dead worker must be held out of the pool and probed with backoff.
	// (The down flag is set just after the failed job is requeued, so poll.)
	waitFor(t, "failed worker to be marked down and probed", func() bool {
		s := fleetMember(t, srv, "flaky")
		return s.State == "down" && s.Failures >= 1 && s.Probes >= 2
	})

	// Heal the worker: the next probe must readmit it...
	flaky.healthy.Store(true)
	waitFor(t, "down worker to be readmitted", func() bool {
		s := fleetMember(t, srv, "flaky")
		return s.State == "up" && s.Readmissions >= 1
	})

	// ...and it must actually execute points again.
	flaky.limit.Store(1 << 30)
	before := flaky.ran.Load()
	if _, err := client.Submit(context.Background(), []core.Config{grid}); err != nil {
		t.Fatalf("post-readmission sweep failed: %v", err)
	}
	waitFor(t, "readmitted worker to run points", func() bool {
		return flaky.ran.Load() > before
	})
}

// TestAllAttemptsExhaustedFailsThePoint pins the retry bound: when a job
// keeps landing on failing workers, its point fails with a message naming
// the attempts instead of looping forever.
func TestAllAttemptsExhaustedFailsThePoint(t *testing.T) {
	// A worker that always fails at the worker level and has no Probe: it
	// is readmitted after each backoff, so the job bounces until the
	// attempt budget runs out.
	always := workerFunc(func(ctx context.Context, j core.PointJob) (core.Point, error) {
		return core.Point{}, errors.New("synthetic worker death")
	})
	_, ts := startServer(t, fastProbes(Config{
		MaxAttempts: 2,
		Members:     []Member{{Name: "doomed", Worker: always}},
	}))

	grid := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	grid.Nodes = []int{1}

	client := NewClient(ts.URL)
	_, err := client.Submit(context.Background(), []core.Config{grid})
	if err == nil {
		t.Fatal("sweep with no working workers returned nil error")
	}
	if !strings.Contains(err.Error(), "abandoned after 2 attempts") {
		t.Fatalf("abandoned point does not name its attempts: %v", err)
	}
	var pe *core.PointErrors
	if !errors.As(err, &pe) || pe.Count != 1 {
		t.Fatalf("abandonment is not a point failure: %v", err)
	}
}

// workerFunc adapts a function to the Worker interface.
type workerFunc func(ctx context.Context, j core.PointJob) (core.Point, error)

func (f workerFunc) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	return f(ctx, j)
}

// TestClientCancellationIsNotWorkerDeath pins the attribution split: a
// remote's error caused by the submitting client vanishing must not mark
// the worker down (a canceled exchange says nothing about the peer).
func TestClientCancellationIsNotWorkerDeath(t *testing.T) {
	started := make(chan struct{}, 16)
	blocked := workerFunc(func(ctx context.Context, j core.PointJob) (core.Point, error) {
		started <- struct{}{}
		<-ctx.Done() // a remote exchange erroring out with the cancellation
		return core.Point{}, ctx.Err()
	})
	srv, ts := startServer(t, fastProbes(Config{Members: []Member{{Name: "w", Worker: blocked}}}))

	grid := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	grid.Nodes = []int{1}

	ctx, cancel := context.WithCancel(context.Background())
	client := NewClient(ts.URL)
	done := make(chan error, 1)
	go func() {
		_, err := client.Submit(ctx, []core.Config{grid})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled submission returned nil error")
	}
	// The worker must still be up and must not have been charged a failure.
	s := fleetMember(t, srv, "w")
	if s.State != "up" || s.Failures != 0 {
		t.Fatalf("client cancellation was misattributed as worker death: %+v", s)
	}
	if srv.Retries() != 0 {
		t.Fatalf("client cancellation caused %d retries, want 0", srv.Retries())
	}
}

// fleetMember finds one member's status by name.
func fleetMember(t *testing.T, srv *Server, name string) MemberStatus {
	t.Helper()
	for _, m := range srv.Fleet() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("fleet has no member %q: %+v", name, srv.Fleet())
	return MemberStatus{}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStreamSeveredMidStreamIsTruncationError is the satellite regression
// test for a server crash / connection reset mid-point: every truncation
// shape must surface as an explicit error naming how many points arrived —
// never a silently short or half-filled study. (This same detection is what
// a coordinator's RemoteWorker feeds the retry path.)
func TestStreamSeveredMidStreamIsTruncationError(t *testing.T) {
	cfg := smallConfig([]core.Variant{
		{Label: "a", API: ior.APIDFS},
		{Label: "b", API: ior.APIDFS},
	})
	_, jobs := core.Decompose([]core.Config{cfg})
	if len(jobs) != 4 {
		t.Fatalf("test grid decomposed to %d jobs, want 4", len(jobs))
	}

	cases := []struct {
		name  string
		serve func(w http.ResponseWriter) // after the header is written
		want  string
	}{
		{
			// The server process is killed after two complete points: the
			// connection resets under the reader.
			name: "connection severed between points",
			serve: func(w http.ResponseWriter) {
				enc := json.NewEncoder(w)
				for _, j := range jobs[:2] {
					enc.Encode(toWire(j, core.Point{Nodes: j.Nodes}, false))
				}
				w.(http.Flusher).Flush()
				panic(http.ErrAbortHandler)
			},
			want: "stream truncated after 2/4 points",
		},
		{
			// Killed mid-write: the last NDJSON line is partial.
			name: "partially-written point line",
			serve: func(w http.ResponseWriter) {
				enc := json.NewEncoder(w)
				enc.Encode(toWire(jobs[0], core.Point{Nodes: jobs[0].Nodes}, false))
				io.WriteString(w, `{"study":0,"ser`)
				w.(http.Flusher).Flush()
				panic(http.ErrAbortHandler)
			},
			want: "stream truncated after 1/4 points",
		},
		{
			// A graceful-but-wrong end: every point arrived, the trailer
			// did not. The batch must not pass as complete.
			name: "missing trailer",
			serve: func(w http.ResponseWriter) {
				enc := json.NewEncoder(w)
				for _, j := range jobs {
					enc.Encode(toWire(j, core.Point{Nodes: j.Nodes}, false))
				}
			},
			want: "stream missing trailer",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mux := http.NewServeMux()
			mux.HandleFunc("POST "+PathSubmit, func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", ContentType)
				w.WriteHeader(http.StatusOK)
				json.NewEncoder(w).Encode(Header{Points: len(jobs), Studies: 1})
				tc.serve(w)
			})
			ts := httptest.NewServer(mux)
			defer ts.Close()

			client := NewClient(ts.URL)
			studies, err := client.Submit(context.Background(), []core.Config{cfg})
			if studies != nil {
				t.Fatalf("severed stream returned a study (half-filled results): %+v", studies)
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("severed stream error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestCloseVsSubmitRace is the satellite drain-race hammer: submissions
// racing Server.Close must each either complete, be refused with the 503
// draining body, or fail with an explicit truncation/transport error —
// never hang, drop jobs silently, or panic. Run under -race in CI.
func TestCloseVsSubmitRace(t *testing.T) {
	srv := New(Config{Workers: 2, NewWorker: func() Worker { return stubWorker{} }})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	grid := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	var wg sync.WaitGroup
	start := make(chan struct{})
	errCh := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			client := NewClient(ts.URL)
			for k := 0; k < 10000; k++ {
				if _, err := client.Submit(context.Background(), []core.Config{grid}); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- fmt.Errorf("hammer goroutine outlived Close")
		}()
	}
	close(start)
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	wg.Wait()
	close(errCh)

	for err := range errCh {
		msg := err.Error()
		switch {
		case strings.Contains(msg, "server draining"): // lost the race: clean 503
		case strings.Contains(msg, "stream truncated"),
			strings.Contains(msg, "stream missing trailer"),
			strings.Contains(msg, "stream ended early"): // mid-stream at Close: explicit truncation
		case strings.Contains(msg, "abandoned"): // retried job met the drain
		case strings.Contains(msg, "connection"), strings.Contains(msg, "EOF"): // transport-level sever
		default:
			t.Fatalf("submission racing Close failed in a non-drain way: %v", err)
		}
	}

	// After Close the rejection is deterministic: a 503 naming the drain,
	// before any stream bytes.
	resp, err := http.Post(ts.URL+PathSubmit, "application/json", strings.NewReader(`{"configs":[{"Workload":"easy"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close: got %s, want 503", resp.Status)
	}
	if !strings.Contains(string(body), "server draining") {
		t.Fatalf("draining rejection body = %q, want it to name the drain", body)
	}
	// Idempotent Close must not panic or deadlock.
	srv.Close()
}

// TestHungPeerTimesOut is the satellite timeout test: a listener that
// accepts connections but never answers must fail Health (and the Submit
// setup) within the transport's header timeout instead of blocking a
// probe — or a coordinator slot — forever.
func TestHungPeerTimesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, c) }() // swallow the request, never reply
		}
	}()

	client := NewClient(ln.Addr().String())
	client.HTTP = newHTTPClient(time.Second, 100*time.Millisecond)
	// Timeouts are transient (and would be retried with backoff); this
	// test pins that the timeout itself fires, so spend only one attempt.
	client.RetryAttempts = 1

	start := time.Now()
	if err := client.Health(context.Background()); err == nil {
		t.Fatal("Health against a hung listener returned nil")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Health blocked %v on a hung listener; the header timeout did not fire", waited)
	}

	start = time.Now()
	grid := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	if _, err := client.Submit(context.Background(), []core.Config{grid}); err == nil {
		t.Fatal("Submit against a hung listener returned nil")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Submit blocked %v on a hung listener; the header timeout did not fire", waited)
	}
}

// TestNewClientInstallsTimeouts pins the satellite default: NewClient must
// not hand out a transport that can hang forever on connect or on the
// response header. (Streams themselves stay unbounded — that is separately
// pinned by the long-running e2e sweeps, which outlast any header timeout.)
func TestNewClientInstallsTimeouts(t *testing.T) {
	c := NewClient("127.0.0.1:9464")
	if c.HTTP == nil {
		t.Fatal("NewClient left HTTP nil (falls back to the unbounded http.DefaultClient)")
	}
	tr, ok := c.HTTP.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("NewClient transport is %T, want *http.Transport", c.HTTP.Transport)
	}
	if tr.ResponseHeaderTimeout != DefaultHeaderTimeout {
		t.Fatalf("ResponseHeaderTimeout = %v, want %v", tr.ResponseHeaderTimeout, DefaultHeaderTimeout)
	}
	if tr.DialContext == nil {
		t.Fatal("NewClient transport has no bounded dialer")
	}
	if c.HTTP.Timeout != 0 {
		t.Fatalf("NewClient set an overall Timeout (%v); streams must stay unbounded", c.HTTP.Timeout)
	}
}

// TestRemoteWorkerExecutesOnPeer pins the coordinator-to-worker leg in
// isolation: a RemoteWorker must return the peer's result for the exact
// job (point-level failures included, as results), and must return a
// worker-level error — not a fabricated point — when the peer is gone.
func TestRemoteWorkerExecutesOnPeer(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }})
	w := NewRemoteWorker(ts.URL)

	_, jobs := core.Decompose([]core.Config{smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})})
	j := jobs[1]
	pt, err := w.RunPoint(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if v := stubValue(j); pt.WriteGiBs != v || pt.ReadGiBs != 2*v || pt.Nodes != j.Nodes {
		t.Fatalf("remote point = %+v, want write=%v", pt, v)
	}

	// A point that fails on the peer is a result, not a worker error.
	bad := workerFunc(func(ctx context.Context, j core.PointJob) (core.Point, error) {
		return core.Point{Nodes: j.Nodes, Err: "peer-side point failure"}, nil
	})
	_, badTS := startServer(t, Config{Members: []Member{{Name: "bad", Worker: bad}}})
	pt, err = NewRemoteWorker(badTS.URL).RunPoint(context.Background(), j)
	if err != nil {
		t.Fatalf("peer-side point failure came back as a worker error: %v", err)
	}
	if pt.Err != "peer-side point failure" {
		t.Fatalf("peer-side point failure lost: %+v", pt)
	}

	// A dead peer is a worker error.
	deadTS := httptest.NewServer(nil)
	deadTS.Close()
	if _, err := NewRemoteWorker(deadTS.URL).RunPoint(context.Background(), j); err == nil {
		t.Fatal("RunPoint against a dead peer returned nil error")
	}
}

// blackholeProber is a worker whose points always fail and whose health
// probe hangs until its context is cancelled — modeling a peer that accepts
// TCP but never answers /v1/healthz. probing signals (once, non-blocking)
// when a probe is in flight.
type blackholeProber struct {
	probing chan struct{}
}

func (w *blackholeProber) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	return core.Point{}, errors.New("blackhole: connection reset")
}

func (w *blackholeProber) Probe(ctx context.Context) error {
	select {
	case w.probing <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return ctx.Err()
}

// TestCloseCancelsInFlightProbes is the satellite probe-shutdown regression
// (run under -race in CI): a down member whose health probe is wedged must
// not survive Server.Close. Close cancels the server's probe context, so
// the in-flight probe returns immediately — instead of riding out its 5s
// probeTimeout and stalling the drain — and the member's pool goroutine
// exits, returning the process to its pre-server goroutine count.
func TestCloseCancelsInFlightProbes(t *testing.T) {
	tr := &http.Transport{}
	httpc := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	bh := &blackholeProber{probing: make(chan struct{}, 1)}
	srv := New(fastProbes(Config{
		Members: []Member{
			{Name: "blackhole", Worker: bh},
			// The healthy worker is slow, so the blackhole member is the
			// free slot and is guaranteed to receive (and fail) a job.
			{Name: "steady", Worker: stubWorker{delay: 10 * time.Millisecond}},
		},
	}))
	ts := httptest.NewServer(srv)
	client := NewClient(ts.URL)
	client.HTTP = httpc

	grid := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	grid.Nodes = []int{1, 2, 3, 4}
	// The sweep itself must ride through the dead worker via retries...
	if _, err := client.Submit(context.Background(), []core.Config{grid}); err != nil {
		t.Fatalf("sweep did not survive the dead worker: %v", err)
	}
	// ...leaving the blackhole member down, with a probe wedged in flight.
	<-bh.probing

	start := time.Now()
	ts.Close()
	srv.Close()
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("Close blocked %v on a wedged probe; the probe context was not cancelled", waited)
	}
	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("probe goroutines leaked after Close: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProbeWaitJitterBounds pins the jitter contract: every re-probe wait
// falls in [backoff/2, backoff] — bounded readmission latency — and two
// members draw different sequences, so a fleet of coordinators does not
// probe a recovering peer in lockstep.
func TestProbeWaitJitterBounds(t *testing.T) {
	a, b := probeRNG("peer-a"), probeRNG("peer-b")
	backoff := 100 * time.Millisecond
	identical := true
	for i := 0; i < 1000; i++ {
		wa, wb := probeWait(a, backoff), probeWait(b, backoff)
		for _, w := range []time.Duration{wa, wb} {
			if w < backoff/2 || w > backoff {
				t.Fatalf("wait %v outside [%v, %v]", w, backoff/2, backoff)
			}
		}
		if wa != wb {
			identical = false
		}
	}
	if identical {
		t.Fatal("two members drew identical jitter sequences")
	}
	// A degenerate backoff must neither panic nor exceed the nominal wait.
	if w := probeWait(probeRNG("x"), 1); w != 1 {
		t.Fatalf("degenerate backoff wait = %v", w)
	}
}

// TestSubmitJobsRoundTrip pins the /v1/points protocol leg directly:
// pre-decomposed jobs execute on the peer's pool with their shipped seeds
// and come back in input order; an empty batch is rejected.
func TestSubmitJobsRoundTrip(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, NewWorker: func() Worker { return stubWorker{} }})
	client := NewClient(ts.URL)

	_, jobs := core.Decompose([]core.Config{smallConfig([]core.Variant{
		{Label: "a", API: ior.APIDFS},
		{Label: "b", API: ior.APIDFS},
	})})
	pts, err := client.SubmitJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(jobs) {
		t.Fatalf("got %d points for %d jobs", len(pts), len(jobs))
	}
	for i, j := range jobs {
		if v := stubValue(j); pts[i].WriteGiBs != v || pts[i].Nodes != j.Nodes {
			t.Fatalf("job %d came back wrong: %+v (want write=%v)", i, pts[i], v)
		}
	}

	resp, err := http.Post(ts.URL+PathSubmitPoints, "application/json", strings.NewReader(`{"jobs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty job batch: got %s, want 400", resp.Status)
	}
}
