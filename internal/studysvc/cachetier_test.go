package studysvc

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"daosim/internal/cache"
	"daosim/internal/core"
	"daosim/internal/ior"
)

// fastPeer keeps a remote tier's down-marking schedule test-speed.
func fastPeer(url string) cache.Options {
	return cache.Options{
		Peer: url,
		PeerOptions: cache.RemoteOptions{
			Timeout:   2 * time.Second,
			ProbeBase: 2 * time.Millisecond,
			ProbeMax:  20 * time.Millisecond,
		},
	}
}

// TestCacheEndpointsProtocol pins the /v1/cache/{key} wire contract a
// remote tier depends on: PUT stores a checksummed record into the local
// tiers, GET replays it byte-for-byte, a miss is 404, a malformed key or
// body is 400, and a server with no cache refuses with 404.
func TestCacheEndpointsProtocol(t *testing.T) {
	memCache, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }, Cache: memCache})

	k := core.PointJob{Cfg: smallConfig(nil), Nodes: 2, Seed: 42}.Key()
	e := cache.Entry{WriteGiBs: 12.5, ReadGiBs: 8.25, DegradedGiBs: 3, RecoverySec: 1.5, MapTransitions: 4}
	url := ts.URL + cache.TierPathPrefix + k.String()

	get := func(url string) *http.Response {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	put := func(url string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get(url); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET of an absent key: %s, want 404", resp.Status)
	}
	if resp := put(url, cache.EncodeEntry(e)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %s, want 204", resp.Status)
	}
	resp := get(url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT: %s, want 200", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, cache.EncodeEntry(e)) {
		t.Fatalf("GET body differs from the stored record: %x", body)
	}
	if got, err := cache.DecodeEntry(body); err != nil || got != e {
		t.Fatalf("GET body decoded to %+v, %v; want %+v", got, err, e)
	}

	if resp := get(ts.URL + cache.TierPathPrefix + "zz"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET with a malformed key: %s, want 400", resp.Status)
	}
	if resp := put(url, []byte("torn record")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT of an undecodable body: %s, want 400", resp.Status)
	}
	if resp := get(url); resp.StatusCode != http.StatusOK {
		t.Fatalf("rejected PUT clobbered the entry: %s", resp.Status)
	}

	_, bare := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }})
	if resp := get(bare.URL + cache.TierPathPrefix + k.String()); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET against a cache-less daosd: %s, want 404", resp.Status)
	}
	if resp := put(bare.URL+cache.TierPathPrefix+k.String(), cache.EncodeEntry(e)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PUT against a cache-less daosd: %s, want 404", resp.Status)
	}
}

// sharedGrid builds a one-variant grid over the given node counts. Keys
// depend on (variant index, node count), so disjoint node sets give
// disjoint key sets.
func sharedGrid(nodes ...int) core.Config {
	cfg := smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}})
	cfg.Nodes = nodes
	return cfg
}

// TestSharedTierAcrossTwoServers is the fleet-global dedup contract at the
// server level: two daosds share one peer's cache as a remote tier, so a
// grid simulated through the first is a 100%-hit warm run on the second —
// its own worker executes nothing.
func TestSharedTierAcrossTwoServers(t *testing.T) {
	peerCache, err := cache.New(cache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, peerTS := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }, Cache: peerCache})

	newShared := func(w Worker) (*cache.Cache, *httptest.Server) {
		c, err := cache.New(fastPeer(peerTS.URL))
		if err != nil {
			t.Fatal(err)
		}
		_, ts := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return w }, Cache: c})
		return c, ts
	}
	workerA := &keyedWorker{runs: make(map[cache.Key]int)}
	_, tsA := newShared(workerA)
	workerB := &keyedWorker{runs: make(map[cache.Key]int)}
	cacheB, tsB := newShared(workerB)

	grid := []core.Config{sharedGrid(1, 2)}
	_, jobs := core.Decompose(grid)

	if _, err := NewClient(tsA.URL).Submit(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	if len(workerA.runs) != len(jobs) {
		t.Fatalf("cold run executed %d keys, want %d", len(workerA.runs), len(jobs))
	}
	if st := peerCache.Stats(); st.Stores != int64(len(jobs)) {
		t.Fatalf("peer absorbed %d stores, want %d: %+v", st.Stores, len(jobs), st)
	}

	clientB := NewClient(tsB.URL)
	if _, err := clientB.Submit(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	if len(workerB.runs) != 0 {
		t.Fatalf("warm run through the shared tier executed %d keys, want 0: %v", len(workerB.runs), workerB.runs)
	}
	if led := clientB.Ledger(); led.CacheHits != len(jobs) || led.CacheMisses != 0 {
		t.Fatalf("warm ledger = %+v, want %d hits", led, len(jobs))
	}
	if st := cacheB.Stats(); st.RemoteHits != int64(len(jobs)) {
		t.Fatalf("warm hits not attributed to the remote tier: %+v", st)
	}
}

// TestSharedTierPeerDownDegradesAndReadmits severs the shared peer
// mid-sweep: concurrent submissions through both daosds must degrade to
// their local tiers (a down peer is a miss, never an error), and once the
// peer recovers, the backoff re-probe readmits it — proven by a key only
// the peer holds becoming readable again.
func TestSharedTierPeerDownDegradesAndReadmits(t *testing.T) {
	peerCache, err := cache.New(cache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	peerSrv := New(Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }, Cache: peerCache})
	defer peerSrv.Close()
	var dead atomic.Bool
	peerTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			panic(http.ErrAbortHandler)
		}
		peerSrv.ServeHTTP(w, r)
	}))
	defer peerTS.Close()

	newShared := func() (*cache.Cache, *httptest.Server) {
		c, err := cache.New(fastPeer(peerTS.URL))
		if err != nil {
			t.Fatal(err)
		}
		_, ts := startServer(t, Config{
			Workers:   1,
			NewWorker: func() Worker { return &keyedWorker{runs: make(map[cache.Key]int)} },
			Cache:     c,
		})
		return c, ts
	}
	cacheA, tsA := newShared()
	_, tsB := newShared()

	// Warm the peer with B's grid while it is healthy: these keys exist
	// nowhere in A's local tiers.
	gridB := []core.Config{sharedGrid(4)}
	if _, err := NewClient(tsB.URL).Submit(context.Background(), gridB); err != nil {
		t.Fatal(err)
	}
	_, jobsB := core.Decompose(gridB)

	// Sever the peer and sweep new grids through both daosds at once: the
	// shared tier is unreachable, so every point must simulate locally and
	// every submission must still succeed.
	dead.Store(true)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, sub := range []struct {
		ts   *httptest.Server
		grid []core.Config
	}{
		{tsA, []core.Config{sharedGrid(1, 2)}},
		{tsB, []core.Config{sharedGrid(3)}},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = NewClient(sub.ts.URL).Submit(context.Background(), sub.grid)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d through a severed shared tier: %v", i, err)
		}
	}
	if st := cacheA.Stats(); st.RemoteDowns == 0 {
		t.Fatalf("severed peer never marked down: %+v", st)
	}

	// Recovery: the peer still holds B's warm keys, which A has never
	// seen. A's re-probe must readmit the tier and serve them remotely.
	dead.Store(false)
	waitFor(t, "peer readmitted into A's tier stack", func() bool {
		_, ok := cacheA.Get(jobsB[0].Key())
		return ok
	})
	if st := cacheA.Stats(); st.RemoteHits == 0 {
		t.Fatalf("readmitted hit not attributed to the remote tier: %+v", st)
	}
}
