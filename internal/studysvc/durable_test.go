package studysvc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"daosim/internal/core"
	"daosim/internal/ior"
	"daosim/internal/jobstore"
)

// The durable tests run the kill -9 story on stub workers: a journaled
// batch interrupted mid-sweep must be recovered by a restarted server
// with zero re-simulation of its completed points, and the resuming
// client must reassemble output byte-identical to an uninterrupted run.

// openStore opens a jobstore under a fresh (or given) dir.
func openStore(t *testing.T, dir string) *jobstore.Store {
	t.Helper()
	s, err := jobstore.Open(dir)
	if err != nil {
		t.Fatalf("jobstore.Open(%s): %v", dir, err)
	}
	return s
}

// gatedWorker blocks each RunPoint on a token from gate (close gate to
// let everything through) and counts executions — the instrument that
// proves zero re-simulation.
type gatedWorker struct {
	gate <-chan struct{}
	runs *atomic.Int64
}

func (w gatedWorker) RunPoint(ctx context.Context, j core.PointJob) (core.Point, error) {
	<-w.gate
	w.runs.Add(1)
	return stubWorker{}.RunPoint(ctx, j)
}

func durableConfigs() []core.Config {
	return []core.Config{
		smallConfig([]core.Variant{{Label: "daos S2", API: ior.APIDFS}, {Label: "daos SX", API: ior.APIDFS}}),
		smallConfig([]core.Variant{{Label: "hdf5", API: ior.APIHDF5}}),
	}
}

// TestDurableSubmitRoundTrip: a durable server completes a batch like a
// storeless one — correct reassembly, dense 1-based seqs — and retires
// it from the journal once the trailer is delivered.
func TestDurableSubmitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	defer store.Close()
	srv, ts := startServer(t, Config{
		Workers:   2,
		NewWorker: func() Worker { return stubWorker{} },
		Store:     store,
	})

	cfgs := durableConfigs()
	client := NewClient(ts.URL)
	var seqs []int
	client.OnPoint = func(sp StreamPoint) { seqs = append(seqs, sp.Seq) }
	studies, err := client.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	verifyStubStudies(t, cfgs, studies)

	_, jobs := core.Decompose(cfgs)
	if len(seqs) != len(jobs) {
		t.Fatalf("observed %d points, want %d", len(seqs), len(jobs))
	}
	for i, seq := range seqs {
		if seq != i+1 {
			t.Fatalf("seq[%d] = %d, want dense 1-based delivery order", i, seq)
		}
	}

	// Retirement happens just after the trailer is flushed to the
	// client, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := client.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Durability == nil {
			t.Fatal("durable server reported no durability stats")
		}
		if st.Durability.JournaledBatches != 1 {
			t.Fatalf("durability stats = %+v, want 1 journaled", st.Durability)
		}
		if st.Durability.LiveBatches == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never retired: %+v", st.Durability)
		}
		time.Sleep(time.Millisecond)
	}

	// The delivered trailer retired the batch: a reopened journal holds
	// nothing to recover.
	srv.Close()
	store.Close()
	reopened := openStore(t, dir)
	defer reopened.Close()
	if n := len(reopened.Recovered()); n != 0 {
		t.Fatalf("journal still holds %d batches after a completed stream", n)
	}
}

// TestEphemeralStreamCarriesSeq: the storeless path assigns the same
// dense delivery sequence (resume is impossible, but the axis is there).
func TestEphemeralStreamCarriesSeq(t *testing.T) {
	_, ts := startServer(t, Config{
		Workers:   1,
		NewWorker: func() Worker { return stubWorker{} },
	})
	client := NewClient(ts.URL)
	var seqs []int
	client.OnPoint = func(sp StreamPoint) { seqs = append(seqs, sp.Seq) }
	if _, err := client.Submit(context.Background(), durableConfigs()[:1]); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i, seq := range seqs {
		if seq != i+1 {
			t.Fatalf("seq[%d] = %d, want %d", i, seq, i+1)
		}
	}
}

// TestKillRestartResume is the acceptance e2e: SIGKILL the coordinator
// mid-sweep with a live client streaming, restart it on the same store
// and address, and require (a) the client auto-resumes and completes,
// (b) the restarted server re-simulates only the points that had not
// landed, and (c) the reassembled output is byte-identical to an
// uninterrupted run of the same grid.
func TestKillRestartResume(t *testing.T) {
	cfgs := durableConfigs()
	_, jobs := core.Decompose(cfgs)
	total := len(jobs)
	completeBeforeKill := total / 3
	if completeBeforeKill == 0 {
		t.Fatalf("grid too small: %d points", total)
	}

	// The uninterrupted reference run, on an ordinary stub server.
	_, refTS := startServer(t, Config{Workers: 2, NewWorker: func() Worker { return stubWorker{} }})
	refStudies, err := NewClient(refTS.URL).Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("reference Submit: %v", err)
	}
	want := render(refStudies)

	dir := t.TempDir()
	store1 := openStore(t, dir)

	var runs1, runs2 atomic.Int64
	gate1 := make(chan struct{}, total)
	var gate1Once sync.Once
	releaseAll1 := func() { gate1Once.Do(func() { close(gate1) }) }

	srv1 := New(Config{
		Workers:   1, // single slot: deterministic completion count at kill time
		NewWorker: func() Worker { return gatedWorker{gate: gate1, runs: &runs1} },
		Store:     store1,
	})
	// Close drains the pool, so the gate must open before it runs (defers
	// are LIFO: releaseAll1 fires first).
	defer srv1.Close()
	defer releaseAll1()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: srv1}
	go hs1.Serve(ln)

	client := NewClient(addr)
	client.RetryBase = 10 * time.Millisecond
	client.RetryMax = 100 * time.Millisecond
	client.RetryAttempts = 50 // ride out the restart gap generously
	var received atomic.Int64
	var retries atomic.Int64
	client.OnPoint = func(StreamPoint) { received.Add(1) }
	client.OnRetry = func(int, time.Duration, error) { retries.Add(1) }

	type result struct {
		studies []*core.Study
		err     error
	}
	done := make(chan result, 1)
	go func() {
		studies, err := client.Submit(context.Background(), cfgs)
		done <- result{studies, err}
	}()

	// Let exactly completeBeforeKill points execute and reach the client.
	for i := 0; i < completeBeforeKill; i++ {
		gate1 <- struct{}{}
	}
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < int64(completeBeforeKill) {
		if time.Now().After(deadline) {
			t.Fatalf("client received %d/%d points before kill", received.Load(), completeBeforeKill)
		}
		time.Sleep(time.Millisecond)
	}

	// "kill -9": stop the scheduler with no drain, sever every client
	// connection, free the port. Nothing is journaled past this instant.
	srv1.kill()
	hs1.Close()
	store1.Close()

	// Restart on the same journal and the same address, ungated.
	store2 := openStore(t, dir)
	defer store2.Close()
	if got := len(store2.Recovered()); got != 1 {
		t.Fatalf("journal recovered %d batches, want 1", got)
	}
	if got := len(store2.Recovered()[0].Points); got != completeBeforeKill {
		t.Fatalf("journal recovered %d completed points, want %d", got, completeBeforeKill)
	}
	gate2 := make(chan struct{})
	close(gate2)
	srv2 := New(Config{
		Workers:   2,
		NewWorker: func() Worker { return gatedWorker{gate: gate2, runs: &runs2} },
		Store:     store2,
	})
	defer srv2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: srv2}
	go hs2.Serve(ln2)
	defer hs2.Close()

	rb, rp, re := srv2.Recovery()
	if rb != 1 || rp != completeBeforeKill || re != total-completeBeforeKill {
		t.Fatalf("Recovery() = (%d,%d,%d), want (1,%d,%d)", rb, rp, re, completeBeforeKill, total-completeBeforeKill)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("resumed Submit failed: %v", res.err)
	}
	if retries.Load() == 0 {
		t.Fatal("Submit completed without a single reconnect — the kill never reached the client")
	}
	verifyStubStudies(t, cfgs, res.studies)
	if got := render(res.studies); got != want {
		t.Fatalf("resumed run renders differently from the uninterrupted run:\n got: %q\nwant: %q", got, want)
	}

	// Zero re-simulation: the restarted server executed exactly the
	// points the journal did not hold. (Server 1 may still count its one
	// in-flight point when the deferred gate release lets it finish; the
	// assertion is on server 2.)
	if got := runs2.Load(); got != int64(total-completeBeforeKill) {
		t.Fatalf("restarted server simulated %d points, want %d (journaled points must replay, not re-run)",
			got, total-completeBeforeKill)
	}

	// The resume leg is visible in the durability counters.
	st, err := NewClient(addr).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil || st.Durability.ResumedStreams == 0 {
		t.Fatalf("durability stats after resume = %+v, want resumed_streams > 0", st.Durability)
	}
	if st.Durability.ReplayedPoints != completeBeforeKill {
		t.Fatalf("replayed_points = %d, want %d", st.Durability.ReplayedPoints, completeBeforeKill)
	}
}

// TestResumeUnknownBatchIs404: re-attaching to a batch the journal never
// heard of (or already retired) is a permanent 404, not a hang or retry.
func TestResumeUnknownBatchIs404(t *testing.T) {
	store := openStore(t, t.TempDir())
	defer store.Close()
	_, ts := startServer(t, Config{
		Workers:   1,
		NewWorker: func() Worker { return stubWorker{} },
		Store:     store,
	})
	resp, err := http.Get(ts.URL + PathSubmit + "/no-such-batch?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("resume of unknown batch: got %s, want 404", resp.Status)
	}
}

// TestRePostReattaches: re-POSTing a batch id the server already runs
// must attach to the existing batch, not schedule a duplicate.
func TestRePostReattaches(t *testing.T) {
	store := openStore(t, t.TempDir())
	defer store.Close()
	srv, _ := startServer(t, Config{
		Workers:   1,
		NewWorker: func() Worker { return stubWorker{} },
		Store:     store,
	})
	cfgs := durableConfigs()
	b1, created1 := srv.openBatch("batch-x", cfgs)
	b2, created2 := srv.openBatch("batch-x", cfgs)
	if !created1 || created2 {
		t.Fatalf("openBatch created = (%v,%v), want (true,false)", created1, created2)
	}
	if b1 != b2 {
		t.Fatal("re-POST opened a second batchState for the same id")
	}
}

// TestSubmitRetriesTransient503: a coordinator answering 503 (draining,
// or mid-restart behind a proxy) is retried with backoff until it
// accepts, and the sweep completes normally.
func TestSubmitRetriesTransient503(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 1, NewWorker: func() Worker { return stubWorker{} }})
	var rejected atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rejected.Load() < 2 && r.Method == http.MethodPost {
			rejected.Add(1)
			http.Error(w, "studysvc: server draining", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer front.Close()

	client := NewClient(front.URL)
	client.RetryBase = time.Millisecond
	client.RetryMax = 5 * time.Millisecond
	var retries []int
	client.OnRetry = func(attempt int, wait time.Duration, err error) {
		if !strings.Contains(err.Error(), "draining") {
			t.Errorf("retry %d for unexpected error: %v", attempt, err)
		}
		retries = append(retries, attempt)
	}
	cfgs := durableConfigs()[:1]
	studies, err := client.Submit(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("Submit through flaky front: %v", err)
	}
	verifyStubStudies(t, cfgs, studies)
	if len(retries) != 2 {
		t.Fatalf("observed %d retries, want 2", len(retries))
	}
}

// TestRetryClassification pins the transient/permanent split the
// studyctl satellite depends on: refused/reset/timeout connects retry,
// address errors and rejections do not.
func TestRetryClassification(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	ctx := context.Background()
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	wrap := func(err error) error {
		return &url.Error{Op: "Post", URL: "http://127.0.0.1:1/v1/studies", Err: err}
	}
	cases := []struct {
		name     string
		ctx      context.Context
		err      error
		batch    string
		received int
		want     bool
	}{
		{"connect refused", ctx, wrap(&net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}), "", 0, true},
		{"connection reset", ctx, wrap(&net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNRESET)}), "", 0, true},
		{"header timeout", ctx, wrap(&timeoutErr{}), "", 0, true},
		{"eof before header", ctx, fmt.Errorf("read stream header: %w", io.ErrUnexpectedEOF), "", 0, true},
		{"dns not found", ctx, wrap(&net.DNSError{Err: "no such host", IsNotFound: true}), "", 0, false},
		{"caller canceled", canceled, wrap(context.Canceled), "", 0, false},
		{"rejected 400", ctx, &statusError{code: 400, msg: "bad"}, "", 0, false},
		{"draining 503", ctx, &statusError{code: 503, msg: "draining"}, "", 0, true},
		{"resume 404", ctx, &statusError{code: 404, msg: "unknown batch"}, "b1", 3, false},
		{"ephemeral mid-stream loss", ctx, errors.New("stream truncated after 3/9 points: unexpected EOF"), "", 3, false},
		{"durable mid-stream loss", ctx, fmt.Errorf("stream truncated after 3/9 points: %w", io.ErrUnexpectedEOF), "b1", 3, true},
	}
	for _, tc := range cases {
		if got := c.shouldRetry(tc.ctx, tc.err, tc.batch, tc.received); got != tc.want {
			t.Errorf("%s: shouldRetry = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// timeoutErr is a net.Error that reports timeout — the
// ResponseHeaderTimeout shape.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "timeout awaiting response headers" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }
