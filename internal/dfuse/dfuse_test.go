package dfuse_test

import (
	"bytes"
	"testing"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// withMount boots a small testbed with a dfuse mount on client node 0.
func withMount(t *testing.T, body func(p *sim.Proc, tb *cluster.Testbed, m *dfuse.Mount)) {
	t.Helper()
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, err := client.CreatePool(p, "p0")
		if err != nil {
			t.Error(err)
			return
		}
		ct, err := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S2})
		if err != nil {
			t.Error(err)
			return
		}
		fsys, err := dfs.Mount(p, ct)
		if err != nil {
			t.Error(err)
			return
		}
		m := dfuse.NewMount(tb.Sim, tb.ClientNode(0), fsys, dfuse.DefaultCosts())
		body(p, tb, m)
	})
}

func TestPosixRoundTrip(t *testing.T) {
	withMount(t, func(p *sim.Proc, tb *cluster.Testbed, m *dfuse.Mount) {
		fd, err := m.Open(p, "/posix.dat", dfuse.O_CREATE|dfuse.O_RDWR, dfs.CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		payload := bytes.Repeat([]byte("posix!"), 700000) // ~4 MiB, non-aligned
		n, err := fd.Pwrite(p, 0, payload)
		if err != nil || n != len(payload) {
			t.Errorf("pwrite = %d, %v", n, err)
			return
		}
		got, err := fd.Pread(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("pread mismatch (err=%v)", err)
		}
		size, err := fd.Size(p)
		if err != nil || size != int64(len(payload)) {
			t.Errorf("size = %d, %v", size, err)
		}
		if err := fd.Fsync(p); err != nil {
			t.Error(err)
		}
		if err := fd.Close(p); err != nil {
			t.Error(err)
		}
	})
}

func TestFuseRequestSplitting(t *testing.T) {
	withMount(t, func(p *sim.Proc, tb *cluster.Testbed, m *dfuse.Mount) {
		fd, _ := m.Open(p, "/split.dat", dfuse.O_CREATE, dfs.CreateOpts{})
		before := m.Requests
		fd.Pwrite(p, 0, make([]byte, 4<<20)) // 4 MiB = 4 FUSE requests at 1 MiB
		if got := m.Requests - before; got != 4 {
			t.Errorf("requests = %d, want 4", got)
		}
	})
}

func TestFuseSlowerThanDirectDFS(t *testing.T) {
	// The same I/O through the FUSE mount must cost more virtual time than
	// direct DFS calls — the paper's DFS-vs-DFuse gap.
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	var direct, fused time.Duration
	tb.Run(func(p *sim.Proc) {
		pool, _ := client.CreatePool(p, "p0")
		ct, _ := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S2})
		fsys, _ := dfs.Mount(p, ct)
		m := dfuse.NewMount(tb.Sim, tb.ClientNode(0), fsys, dfuse.DefaultCosts())
		// One FUSE-request-sized op: the kernel cannot add parallelism, so
		// the crossing + bounce-copy overhead is fully visible.
		payload := make([]byte, 1<<20)

		f, _ := fsys.Create(p, "/direct", dfs.CreateOpts{})
		start := p.Now()
		for i := 0; i < 8; i++ {
			f.WriteAt(p, int64(i)<<20, payload)
		}
		direct = p.Now() - start

		fd, _ := m.Open(p, "/fused", dfuse.O_CREATE, dfs.CreateOpts{})
		start = p.Now()
		for i := 0; i < 8; i++ {
			fd.Pwrite(p, int64(i)<<20, payload)
		}
		fused = p.Now() - start
	})
	if fused <= direct {
		t.Fatalf("fused %v not slower than direct %v", fused, direct)
	}
}

func TestDentryCache(t *testing.T) {
	withMount(t, func(p *sim.Proc, tb *cluster.Testbed, m *dfuse.Mount) {
		m.Mkdir(p, "/a/b")
		fd, _ := m.Open(p, "/a/b/f1", dfuse.O_CREATE, dfs.CreateOpts{})
		fd.Close(p)
		afterFirst := m.Requests
		fd2, _ := m.Open(p, "/a/b/f2", dfuse.O_CREATE, dfs.CreateOpts{})
		fd2.Close(p)
		// The second open re-resolves only the leaf: fewer lookup requests.
		secondCost := m.Requests - afterFirst
		if secondCost >= afterFirst {
			t.Errorf("dentry cache ineffective: first=%d second=%d", afterFirst, secondCost)
		}
	})
}

func TestStatAndUnlink(t *testing.T) {
	withMount(t, func(p *sim.Proc, tb *cluster.Testbed, m *dfuse.Mount) {
		fd, _ := m.Open(p, "/victim", dfuse.O_CREATE, dfs.CreateOpts{})
		fd.Pwrite(p, 0, []byte("data"))
		info, err := m.Stat(p, "/victim")
		if err != nil || info.Size != 4 {
			t.Errorf("stat = %+v, %v", info, err)
		}
		if err := m.Unlink(p, "/victim"); err != nil {
			t.Error(err)
		}
		if _, err := m.Stat(p, "/victim"); err == nil {
			t.Error("stat after unlink succeeded")
		}
	})
}

func TestThreadPoolContention(t *testing.T) {
	// More concurrent writers than daemon threads: completion time grows
	// beyond the solo case.
	elapsed := func(writers int) time.Duration {
		tb := cluster.New(cluster.Small())
		client := tb.NewClient(tb.ClientNode(0), 1)
		var span time.Duration
		tb.Run(func(p *sim.Proc) {
			pool, _ := client.CreatePool(p, "p0")
			ct, _ := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.SX})
			fsys, _ := dfs.Mount(p, ct)
			costs := dfuse.DefaultCosts()
			costs.Threads = 2 // tiny pool to force queueing
			m := dfuse.NewMount(tb.Sim, tb.ClientNode(0), fsys, costs)
			start := p.Now()
			wg := sim.NewWaitGroup(tb.Sim)
			for w := 0; w < writers; w++ {
				w := w
				wg.Go("writer", func(cp *sim.Proc) {
					fd, err := m.Open(cp, "/f"+string(rune('a'+w)), dfuse.O_CREATE, dfs.CreateOpts{})
					if err != nil {
						t.Error(err)
						return
					}
					fd.Pwrite(cp, 0, make([]byte, 4<<20))
				})
			}
			wg.Wait(p)
			span = p.Now() - start
		})
		return span
	}
	one := elapsed(1)
	eight := elapsed(8)
	if eight < one*2 {
		t.Fatalf("8 writers on 2 threads took %v, solo %v: no queueing visible", eight, one)
	}
}
