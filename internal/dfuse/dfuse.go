// Package dfuse models the DAOS FUSE daemon: the user-space mount point
// that lets unmodified POSIX applications reach a DFS namespace. The data
// path is what the paper's "MPI-I/O" and "HDF5" series ride (both run over
// the DFuse mount), so its overheads — kernel crossings, request splitting,
// daemon thread scheduling, and the bounce-buffer copy — are modelled
// explicitly:
//
//   - Every FUSE request pays RequestCost (two kernel crossings plus
//     dispatch).
//   - The kernel splits reads and writes into MaxRequest-sized FUSE
//     requests (1 MiB with FUSE big-writes, as dfuse configures).
//   - One dfuse daemon serves each client node; its thread pool is a shared
//     resource, so many ranks per node queue on it.
//   - Data crosses a bounce buffer at CopyBW while a daemon thread is held.
//   - Path lookups cost one request per component, with a dentry cache.
package dfuse

import (
	"fmt"
	"time"

	"daosim/internal/dfs"
	"daosim/internal/fabric"
	"daosim/internal/sim"
)

// Costs parameterizes the FUSE data path.
type Costs struct {
	// RequestCost is the fixed per-FUSE-request charge.
	RequestCost time.Duration
	// MaxRequest is the kernel's I/O split size.
	MaxRequest int64
	// CopyBW is the bounce-buffer memcpy bandwidth (bytes/s).
	CopyBW float64
	// Threads is the daemon's service thread count per node.
	Threads int
}

// DefaultCosts models dfuse with big-writes on a modern kernel.
func DefaultCosts() Costs {
	return Costs{
		RequestCost: 12 * time.Microsecond,
		MaxRequest:  1 << 20,
		CopyBW:      8.0e9,
		Threads:     16,
	}
}

// Mount is one node's dfuse daemon over a DFS filesystem. All ranks on the
// node share it (and queue on its thread pool), exactly as processes share
// a dfuse mount point.
type Mount struct {
	fs      *dfs.FS
	node    *fabric.Node
	costs   Costs
	threads *sim.Resource
	dentry  map[string]bool // dentry cache: paths already resolved

	// Requests counts FUSE requests served (observability).
	Requests int64
}

// NewMount attaches a dfuse daemon for the given client node.
func NewMount(s *sim.Sim, node *fabric.Node, fsys *dfs.FS, costs Costs) *Mount {
	if costs.Threads <= 0 || costs.MaxRequest <= 0 {
		panic("dfuse: invalid costs")
	}
	return &Mount{
		fs:      fsys,
		node:    node,
		costs:   costs,
		threads: sim.NewResource(s, node.Name()+"/dfuse", costs.Threads),
		dentry:  make(map[string]bool),
	}
}

// FS exposes the underlying filesystem (for verification in tests).
func (m *Mount) FS() *dfs.FS { return m.fs }

// request charges one FUSE request around op.
func (m *Mount) request(p *sim.Proc, copyBytes int64, op func(p *sim.Proc) error) error {
	m.Requests++
	m.threads.Acquire(p)
	defer m.threads.Release()
	p.Sleep(m.costs.RequestCost)
	err := op(p)
	if copyBytes > 0 {
		p.Sleep(time.Duration(float64(copyBytes) / m.costs.CopyBW * 1e9))
	}
	return err
}

// lookupCost charges the FUSE lookups to resolve a path, one request per
// uncached component.
func (m *Mount) lookupCost(p *sim.Proc, path string) {
	prefix := ""
	for i := 0; i < len(path); i++ {
		if path[i] == '/' && i > 0 {
			prefix = path[:i]
			m.chargeLookup(p, prefix)
		}
	}
	m.chargeLookup(p, path)
}

func (m *Mount) chargeLookup(p *sim.Proc, prefix string) {
	if m.dentry[prefix] {
		return
	}
	m.Requests++
	m.threads.Acquire(p)
	p.Sleep(m.costs.RequestCost)
	m.threads.Release()
	m.dentry[prefix] = true
}

// File is an open POSIX file descriptor on the mount.
type File struct {
	mount *Mount
	f     *dfs.File
}

// OpenFlags mirror the POSIX open flags the shim needs.
type OpenFlags int

// Open flags.
const (
	O_RDONLY OpenFlags = 0
	O_RDWR   OpenFlags = 1 << iota
	O_CREATE
	O_EXCL
)

// Open opens (or creates) a file through the FUSE mount.
func (m *Mount) Open(p *sim.Proc, path string, flags OpenFlags, opts dfs.CreateOpts) (*File, error) {
	m.lookupCost(p, path)
	var f *dfs.File
	err := m.request(p, 0, func(p *sim.Proc) error {
		var err error
		switch {
		case flags&O_CREATE != 0 && flags&O_EXCL != 0:
			f, err = m.fs.Create(p, path, opts)
		case flags&O_CREATE != 0:
			f, err = m.fs.OpenOrCreate(p, path, opts)
		default:
			f, err = m.fs.Open(p, path)
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("dfuse: open %s: %w", path, err)
	}
	return &File{mount: m, f: f}, nil
}

// Pwrite writes data at the offset, split into FUSE-sized requests. The
// kernel keeps the requests of one syscall in flight concurrently (async
// direct I/O through the FUSE device), so segments overlap across daemon
// threads; the syscall completes when the slowest segment does.
func (fd *File) Pwrite(p *sim.Proc, off int64, data []byte) (int, error) {
	m := fd.mount
	var segErr error
	wg := sim.NewWaitGroup(m.threads.Sim())
	total := 0
	for len(data) > 0 {
		n := int64(len(data))
		if n > m.costs.MaxRequest {
			n = m.costs.MaxRequest
		}
		seg := data[:n]
		segOff := off
		wg.Go("fuse-write", func(cp *sim.Proc) {
			err := m.request(cp, n, func(cp *sim.Proc) error {
				return fd.f.WriteAt(cp, segOff, seg)
			})
			if err != nil && segErr == nil {
				segErr = err
			}
		})
		total += int(n)
		off += n
		data = data[n:]
	}
	wg.Wait(p)
	if segErr != nil {
		return 0, fmt.Errorf("dfuse: pwrite: %w", segErr)
	}
	return total, nil
}

// Pread reads n bytes at the offset, split into FUSE-sized requests kept in
// flight concurrently, mirroring Pwrite.
func (fd *File) Pread(p *sim.Proc, off int64, n int64) ([]byte, error) {
	out := make([]byte, n)
	if err := fd.PreadInto(p, off, n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PreadInto reads n bytes at the offset into dst (len(dst) == n; every byte
// is written, holes as zeros), with the same FUSE request splitting as
// Pread: each segment lands in its disjoint sub-slice of dst directly. The
// bounce-buffer charge is unchanged — the kernel crossing still moves the
// bytes, the simulation just doesn't copy them again. A nil dst simulates
// the read with identical timing without materializing data.
func (fd *File) PreadInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	m := fd.mount
	var segErr error
	wg := sim.NewWaitGroup(m.threads.Sim())
	var pos int64
	for pos < n {
		seg := n - pos
		if seg > m.costs.MaxRequest {
			seg = m.costs.MaxRequest
		}
		segOff := off + pos
		var segDst []byte
		if dst != nil {
			segDst = dst[pos : pos+seg]
		}
		segLen := seg
		wg.Go("fuse-read", func(cp *sim.Proc) {
			err := m.request(cp, segLen, func(cp *sim.Proc) error {
				return fd.f.ReadAtInto(cp, segOff, segLen, segDst)
			})
			if err != nil && segErr == nil {
				segErr = err
			}
		})
		pos += seg
	}
	wg.Wait(p)
	if segErr != nil {
		return fmt.Errorf("dfuse: pread: %w", segErr)
	}
	return nil
}

// Size stats the file through the mount.
func (fd *File) Size(p *sim.Proc) (int64, error) {
	var size int64
	err := fd.mount.request(p, 0, func(p *sim.Proc) error {
		var err error
		size, err = fd.f.Size(p)
		return err
	})
	return size, err
}

// Fsync flushes (a FUSE round trip; DFS itself is already durable).
func (fd *File) Fsync(p *sim.Proc) error {
	return fd.mount.request(p, 0, func(p *sim.Proc) error { return fd.f.Sync(p) })
}

// Close releases the descriptor.
func (fd *File) Close(p *sim.Proc) error {
	return fd.mount.request(p, 0, func(p *sim.Proc) error { return fd.f.Close(p) })
}

// Stat resolves a path and returns its info.
func (m *Mount) Stat(p *sim.Proc, path string) (dfs.Info, error) {
	m.lookupCost(p, path)
	var info dfs.Info
	err := m.request(p, 0, func(p *sim.Proc) error {
		var err error
		info, err = m.fs.Stat(p, path)
		return err
	})
	return info, err
}

// Unlink removes a path through the mount.
func (m *Mount) Unlink(p *sim.Proc, path string) error {
	m.lookupCost(p, path)
	delete(m.dentry, path)
	return m.request(p, 0, func(p *sim.Proc) error { return m.fs.Unlink(p, path) })
}

// Mkdir creates a directory through the mount.
func (m *Mount) Mkdir(p *sim.Proc, path string) error {
	return m.request(p, 0, func(p *sim.Proc) error { return m.fs.MkdirAll(p, path) })
}
