package daos

import "daosim/internal/sim"

// EventQueue provides asynchronous I/O in the style of libdaos's daos_eq:
// operations launched on the queue run concurrently with the caller, which
// later waits for completion and collects errors. The paper's §II lists
// non-blocking I/O among DAOS's features; examples and the native-array
// future-work bench use this to keep multiple transfers in flight per rank.
type EventQueue struct {
	sim  *sim.Sim
	wg   *sim.WaitGroup
	errs []error
	// inflight bounds concurrent events when positive (like an EQ depth).
	slots *sim.Resource
}

// NewEventQueue creates an event queue. depth > 0 bounds in-flight events.
func (c *Client) NewEventQueue(depth int) *EventQueue {
	eq := &EventQueue{sim: c.sim, wg: sim.NewWaitGroup(c.sim)}
	if depth > 0 {
		eq.slots = sim.NewResource(c.sim, "daos-eq", depth)
	}
	return eq
}

// Submit launches op asynchronously. If the queue has a depth limit the
// caller blocks until a slot frees.
func (eq *EventQueue) Submit(p *sim.Proc, op func(cp *sim.Proc) error) {
	if eq.slots != nil {
		eq.slots.Acquire(p)
	}
	eq.wg.Go("daos-eq-op", func(cp *sim.Proc) {
		if eq.slots != nil {
			defer eq.slots.Release()
		}
		if err := op(cp); err != nil {
			eq.errs = append(eq.errs, err)
		}
	})
}

// Wait blocks until every submitted event completes and returns the first
// error, if any.
func (eq *EventQueue) Wait(p *sim.Proc) error {
	eq.wg.Wait(p)
	if len(eq.errs) > 0 {
		err := eq.errs[0]
		eq.errs = nil
		return err
	}
	return nil
}
