package daos

import (
	"errors"
	"fmt"

	"daosim/internal/engine"
	"daosim/internal/fabric"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

// arrayAkey is the akey under which array data lives, as in libdaos's array
// API.
var arrayAkey = []byte("array_data")

// Array is the byte-array API over an object: a flat address space striped
// over the object's shards in ChunkSize cells (one dkey per chunk, chunks
// round-robin across shards — the layout DFS files use).
type Array struct {
	Obj       *Object
	ChunkSize int64
}

// OpenArray opens oid as a byte array with the container's chunk size.
func (ct *Container) OpenArray(p *sim.Proc, oid vos.ObjectID) (*Array, error) {
	obj, err := ct.OpenObject(p, oid)
	if err != nil {
		return nil, err
	}
	return &Array{Obj: obj, ChunkSize: ct.Props.ChunkSize}, nil
}

// chunkSpan describes the intersection of an I/O with one chunk.
type chunkSpan struct {
	chunk  int64 // chunk index
	inOff  int64 // offset within the chunk
	bufLo  int64 // offset within the caller's buffer
	length int64
}

// spans splits [off, off+n) into per-chunk pieces.
func (a *Array) spans(off, n int64) []chunkSpan {
	var out []chunkSpan
	var bufLo int64
	for n > 0 {
		chunk := off / a.ChunkSize
		inOff := off % a.ChunkSize
		l := a.ChunkSize - inOff
		if l > n {
			l = n
		}
		out = append(out, chunkSpan{chunk: chunk, inOff: inOff, bufLo: bufLo, length: l})
		off += l
		n -= l
		bufLo += l
	}
	return out
}

// Write stores data at the byte offset.
func (a *Array) Write(p *sim.Proc, off int64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	spans := a.spans(off, int64(len(data)))
	writes := make([]engine.WriteExt, 0, len(spans))
	for _, sp := range spans {
		writes = append(writes, engine.WriteExt{
			Dkey:   engine.ChunkDkey(sp.chunk),
			Akey:   arrayAkey,
			Offset: sp.inOff,
			Data:   data[sp.bufLo : sp.bufLo+sp.length],
		})
	}
	return a.Obj.Update(p, writes)
}

// ReadAtInto fetches n bytes at the byte offset as visible at epoch (0 =
// latest) into dst, which must be n bytes long. Each chunk span lands in its
// disjoint sub-slice of dst directly (the engine fills the span in place),
// so every byte materializes exactly once with no assembly pass; chunks with
// no data on their shard read as zeros. A nil dst simulates the read —
// identical RPCs, identical timing — without materializing any bytes.
func (a *Array) ReadAtInto(p *sim.Proc, off int64, n int64, epoch vos.Epoch, dst []byte) error {
	if n <= 0 {
		return nil
	}
	if dst != nil && int64(len(dst)) != n {
		return fmt.Errorf("daos: array read into %d-byte buffer, want %d", len(dst), n)
	}
	spans := a.spans(off, n)
	reads := make([]engine.ReadExt, 0, len(spans))
	for _, sp := range spans {
		rd := engine.ReadExt{
			Dkey:   engine.ChunkDkey(sp.chunk),
			Akey:   arrayAkey,
			Offset: sp.inOff,
			Length: int(sp.length),
		}
		if dst == nil {
			rd.Discard = true
		} else {
			rd.Dst = dst[sp.bufLo : sp.bufLo+sp.length]
		}
		reads = append(reads, rd)
	}
	data, err := a.Obj.Fetch(p, reads, epoch)
	if err != nil {
		return err
	}
	if dst != nil {
		// A nil entry is a chunk absent on its shard (never written): its
		// span is a hole, and holes read as zeros even into reused buffers.
		for i, sp := range spans {
			if data[i] == nil {
				clear(dst[sp.bufLo : sp.bufLo+sp.length])
			}
		}
	}
	return nil
}

// Read fetches n bytes at the byte offset as visible at epoch (0 = latest).
// Holes read as zeros: a read entirely inside an unwritten region returns a
// zeroed buffer, exactly like a partially covered one.
func (a *Array) ReadAt(p *sim.Proc, off int64, n int64, epoch vos.Epoch) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	buf := make([]byte, n)
	if err := a.ReadAtInto(p, off, n, epoch, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Read fetches the latest data at the byte offset.
func (a *Array) Read(p *sim.Proc, off int64, n int64) ([]byte, error) {
	return a.ReadAt(p, off, n, 0)
}

// Size returns the array's end-of-file: the max high-water mark across
// shards.
func (a *Array) Size(p *sim.Proc) (int64, error) {
	if err := a.Obj.refresh(); err != nil {
		return 0, err
	}
	c := a.Obj.cont.Pool.client
	var max int64
	var firstErr error
	wg := sim.NewWaitGroup(c.sim)
	for _, sh := range a.Obj.Layout.Shards {
		sh := sh
		wg.Go("daos-size", func(cp *sim.Proc) {
			// Like Fetch, fall back across the shard's replicas when the
			// leader's engine is down (failure injection).
			var resp fabric.Response
			for _, tgt := range sh {
				resp = a.Obj.call(cp, tgt, &engine.SizeReq{
					Cont:      a.Obj.cont.UUID,
					OID:       a.Obj.OID,
					Target:    tgt,
					Akey:      arrayAkey,
					ChunkSize: a.ChunkSize,
				})
				if resp.Err == nil || !errors.Is(resp.Err, engine.ErrEngineDown) {
					break
				}
			}
			if resp.Err != nil {
				if firstErr == nil {
					firstErr = resp.Err
				}
				return
			}
			if b := resp.Body.(*engine.SizeResp).Bytes; b > max {
				max = b
			}
		})
		p.Sleep(c.costs.RPCIssue)
	}
	wg.Wait(p)
	if firstErr != nil {
		return 0, fmt.Errorf("daos: array size: %w", firstErr)
	}
	return max, nil
}

// Punch removes the array object.
func (a *Array) Punch(p *sim.Proc) error { return a.Obj.Punch(p) }
