package daos

import (
	"fmt"

	"daosim/internal/engine"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

// kvAkey is the akey under which KV values live, as in libdaos's KV API.
var kvAkey = []byte("kv_value")

// KV is the flat key-value API over an object: each key is a dkey holding a
// single value, hashed across the object's shards.
type KV struct {
	Obj *Object
}

// OpenKV opens oid as a key-value store.
func (ct *Container) OpenKV(p *sim.Proc, oid vos.ObjectID) (*KV, error) {
	obj, err := ct.OpenObject(p, oid)
	if err != nil {
		return nil, err
	}
	return &KV{Obj: obj}, nil
}

// Put stores value under key.
func (kv *KV) Put(p *sim.Proc, key string, value []byte) error {
	return kv.Obj.Update(p, []engine.WriteExt{{
		Dkey:   []byte(key),
		Akey:   kvAkey,
		Data:   value,
		Single: true,
	}})
}

// Get fetches the value under key. Missing keys return ErrKeyNotFound.
func (kv *KV) Get(p *sim.Proc, key string) ([]byte, error) {
	data, err := kv.Obj.Fetch(p, []engine.ReadExt{{
		Dkey:   []byte(key),
		Akey:   kvAkey,
		Single: true,
	}}, 0)
	if err != nil {
		return nil, err
	}
	if data[0] == nil {
		return nil, fmt.Errorf("daos: key %q: %w", key, ErrKeyNotFound)
	}
	return data[0], nil
}

// GetAt fetches the value visible at a snapshot epoch.
func (kv *KV) GetAt(p *sim.Proc, key string, epoch vos.Epoch) ([]byte, error) {
	data, err := kv.Obj.Fetch(p, []engine.ReadExt{{
		Dkey:   []byte(key),
		Akey:   kvAkey,
		Single: true,
	}}, epoch)
	if err != nil {
		return nil, err
	}
	if data[0] == nil {
		return nil, fmt.Errorf("daos: key %q: %w", key, ErrKeyNotFound)
	}
	return data[0], nil
}

// Remove deletes key (punches its dkey on the owning shard).
func (kv *KV) Remove(p *sim.Proc, key string) error {
	shard := kv.Obj.shardForDkey([]byte(key))
	c := kv.Obj.cont.Pool.client
	p.Sleep(c.costs.RPCIssue)
	tgt := kv.Obj.Layout.Shards[shard][0]
	resp := kv.Obj.call(p, tgt, &engine.PunchReq{
		Cont:   kv.Obj.cont.UUID,
		OID:    kv.Obj.OID,
		Target: tgt,
		Dkey:   []byte(key),
	})
	return resp.Err
}

// List returns every key, merged across shards and sorted.
func (kv *KV) List(p *sim.Proc) ([]string, error) {
	dkeys, err := kv.Obj.ListDkeys(p)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(dkeys))
	for i, dk := range dkeys {
		out[i] = string(dk)
	}
	return out, nil
}

// ErrKeyNotFound reports a Get for an absent key.
var ErrKeyNotFound = vos.ErrNotFound
