package daos_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/placement"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

// withContainer boots a small testbed and runs body inside the main process
// with an open container.
func withContainer(t *testing.T, class placement.ClassID, body func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container)) {
	t.Helper()
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, err := client.CreatePool(p, "p0")
		if err != nil {
			t.Error(err)
			return
		}
		ct, err := pool.CreateContainer(p, "c0", daos.ContProps{Class: class})
		if err != nil {
			t.Error(err)
			return
		}
		body(p, tb, ct)
	})
}

func TestPoolAndContainerLifecycle(t *testing.T) {
	withContainer(t, placement.S1, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		if ct.UUID == "" {
			t.Error("container has no UUID")
		}
		// Reopen through a second client.
		c2 := tb.NewClient(tb.ClientNode(1), 2)
		pool2, err := c2.Connect(p, "p0")
		if err != nil {
			t.Error(err)
			return
		}
		ct2, err := pool2.OpenContainer(p, "c0")
		if err != nil {
			t.Error(err)
			return
		}
		if ct2.UUID != ct.UUID {
			t.Errorf("UUID mismatch: %s vs %s", ct2.UUID, ct.UUID)
		}
		if ct2.Props.Class != placement.S1 {
			t.Errorf("class = %v", ct2.Props.Class)
		}
	})
}

func TestKVRoundTrip(t *testing.T) {
	withContainer(t, placement.SX, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		kv, err := ct.OpenKV(p, ct.AllocOID(placement.SX))
		if err != nil {
			t.Error(err)
			return
		}
		for _, k := range []string{"alpha", "beta", "gamma"} {
			if err := kv.Put(p, k, []byte("value-"+k)); err != nil {
				t.Error(err)
				return
			}
		}
		v, err := kv.Get(p, "beta")
		if err != nil || string(v) != "value-beta" {
			t.Errorf("Get(beta) = %q, %v", v, err)
		}
		if _, err := kv.Get(p, "missing"); !errors.Is(err, daos.ErrKeyNotFound) {
			t.Errorf("missing key err = %v", err)
		}
		keys, err := kv.List(p)
		if err != nil || len(keys) != 3 || keys[0] != "alpha" {
			t.Errorf("List = %v, %v", keys, err)
		}
		if err := kv.Remove(p, "beta"); err != nil {
			t.Error(err)
		}
		if _, err := kv.Get(p, "beta"); err == nil {
			t.Error("removed key still readable")
		}
	})
}

func TestKVSnapshotRead(t *testing.T) {
	withContainer(t, placement.S1, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		kv, err := ct.OpenKV(p, ct.AllocOID(placement.S1))
		if err != nil {
			t.Error(err)
			return
		}
		kv.Put(p, "k", []byte("v1"))
		snap := vos.Epoch(p.Now().Nanoseconds())
		p.Sleep(time.Millisecond)
		kv.Put(p, "k", []byte("v2"))
		v, err := kv.GetAt(p, "k", snap)
		if err != nil || string(v) != "v1" {
			t.Errorf("snapshot read = %q, %v", v, err)
		}
		v, _ = kv.Get(p, "k")
		if string(v) != "v2" {
			t.Errorf("latest read = %q", v)
		}
	})
}

func testArrayIO(t *testing.T, class placement.ClassID) {
	withContainer(t, class, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		arr, err := ct.OpenArray(p, ct.AllocOID(class))
		if err != nil {
			t.Error(err)
			return
		}
		// Write 5 MiB spanning multiple chunks with a recognizable pattern.
		const size = 5 << 20
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 31 / 7)
		}
		if err := arr.Write(p, 0, data); err != nil {
			t.Error(err)
			return
		}
		got, err := arr.Read(p, 0, size)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Errorf("class %v: read-back mismatch", class)
		}
		// Unaligned read across a chunk boundary.
		got, err = arr.Read(p, (1<<20)-100, 200)
		if err != nil || !bytes.Equal(got, data[(1<<20)-100:(1<<20)+100]) {
			t.Errorf("class %v: unaligned read mismatch (%v)", class, err)
		}
		size2, err := arr.Size(p)
		if err != nil || size2 != size {
			t.Errorf("class %v: size = %d, %v", class, size2, err)
		}
	})
}

func TestArrayS1(t *testing.T) { testArrayIO(t, placement.S1) }
func TestArrayS2(t *testing.T) { testArrayIO(t, placement.S2) }
func TestArraySX(t *testing.T) { testArrayIO(t, placement.SX) }

func TestArrayHolesReadZero(t *testing.T) {
	withContainer(t, placement.S2, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		arr, _ := ct.OpenArray(p, ct.AllocOID(placement.S2))
		arr.Write(p, 3<<20, []byte("end"))
		got, err := arr.Read(p, 0, 10)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, make([]byte, 10)) {
			t.Errorf("hole read = %v", got)
		}
		size, _ := arr.Size(p)
		if size != 3<<20+3 {
			t.Errorf("size = %d", size)
		}
	})
}

// TestArrayReadHoleShapes pins the hole contract across every read shape:
// whatever mix of written spans and holes the window covers — including a
// window entirely inside one unwritten chunk, the case the old single-span
// fast path handled asymmetrically — ReadAt returns exactly the written
// bytes with zeros elsewhere, and ReadAtInto scrubs a dirty reused buffer
// to the same contents.
func TestArrayReadHoleShapes(t *testing.T) {
	const chunk = 1 << 20 // cluster.Small container chunk size
	cases := []struct {
		name     string
		off, n   int64
		contains []int64 // offsets (relative to off) expected to hold written data
	}{
		{name: "whole window in an unwritten chunk", off: 5 * chunk, n: 512},
		{name: "window inside the written span", off: chunk + 10, n: 100, contains: []int64{0, 99}},
		{name: "hole then data", off: chunk - 64, n: 128, contains: []int64{64, 127}},
		{name: "data then hole", off: 2*chunk - 64, n: 128, contains: []int64{0, 63}},
		{name: "multi-chunk with holes both sides", off: chunk / 2, n: 2 * chunk, contains: []int64{chunk / 2, chunk/2 + chunk - 1}},
		{name: "window straddling three chunks", off: chunk - 1, n: chunk + 2, contains: []int64{1, chunk}},
	}
	withContainer(t, placement.S2, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		arr, err := ct.OpenArray(p, ct.AllocOID(placement.S2))
		if err != nil {
			t.Error(err)
			return
		}
		if arr.ChunkSize != chunk {
			t.Errorf("chunk size = %d, test geometry assumes %d", arr.ChunkSize, chunk)
			return
		}
		// Written region: [chunk, 2*chunk) filled with 0x5a; everything else
		// is a hole.
		if err := arr.Write(p, chunk, bytes.Repeat([]byte{0x5a}, chunk)); err != nil {
			t.Error(err)
			return
		}
		inData := func(abs int64) bool { return abs >= chunk && abs < 2*chunk }
		for _, tc := range cases {
			want := make([]byte, tc.n)
			for i := range want {
				if inData(tc.off + int64(i)) {
					want[i] = 0x5a
				}
			}
			for _, rel := range tc.contains { // guard the case table itself
				if !inData(tc.off + rel) {
					t.Errorf("%s: case expects data at +%d but that is a hole", tc.name, rel)
				}
			}
			got, err := arr.ReadAt(p, tc.off, tc.n, 0)
			if err != nil {
				t.Errorf("%s: ReadAt: %v", tc.name, err)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: ReadAt mismatch", tc.name)
			}
			dirty := bytes.Repeat([]byte{0xee}, int(tc.n))
			if err := arr.ReadAtInto(p, tc.off, tc.n, 0, dirty); err != nil {
				t.Errorf("%s: ReadAtInto: %v", tc.name, err)
				continue
			}
			if !bytes.Equal(dirty, want) {
				t.Errorf("%s: ReadAtInto left stale bytes in holes", tc.name)
			}
		}
		// Wrong-sized destination is rejected rather than partially filled.
		if err := arr.ReadAtInto(p, 0, 64, 0, make([]byte, 63)); err == nil {
			t.Error("short dst accepted")
		}
	})
}

func TestArrayOverwrite(t *testing.T) {
	withContainer(t, placement.S2, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		arr, _ := ct.OpenArray(p, ct.AllocOID(placement.S2))
		arr.Write(p, 0, bytes.Repeat([]byte{1}, 2<<20))
		arr.Write(p, 1<<19, bytes.Repeat([]byte{2}, 1<<20)) // straddles chunks
		got, err := arr.Read(p, 0, 2<<20)
		if err != nil {
			t.Error(err)
			return
		}
		for i, b := range got {
			want := byte(1)
			if i >= 1<<19 && i < (1<<19)+(1<<20) {
				want = 2
			}
			if b != want {
				t.Errorf("byte %d = %d, want %d", i, b, want)
				return
			}
		}
	})
}

func TestSXLayoutSpansAllTargets(t *testing.T) {
	withContainer(t, placement.SX, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		obj, err := ct.OpenObject(p, ct.AllocOID(placement.SX))
		if err != nil {
			t.Error(err)
			return
		}
		want := tb.Cfg.ServerNodes * tb.Cfg.EnginesPerNode * tb.Cfg.TargetsPerEngine
		if obj.Layout.NumShards() != want {
			t.Errorf("SX shards = %d, want %d", obj.Layout.NumShards(), want)
		}
	})
}

func TestPunchRemovesData(t *testing.T) {
	withContainer(t, placement.S2, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		arr, _ := ct.OpenArray(p, ct.AllocOID(placement.S2))
		arr.Write(p, 0, []byte("data"))
		if err := arr.Punch(p); err != nil {
			t.Error(err)
			return
		}
		got, err := arr.Read(p, 0, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, make([]byte, 4)) {
			t.Errorf("punched read = %q", got)
		}
	})
}

func TestReplicatedReadSurvivesEngineFailure(t *testing.T) {
	withContainer(t, placement.RP2G1, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		kv, err := ct.OpenKV(p, ct.AllocOID(placement.RP2G1))
		if err != nil {
			t.Error(err)
			return
		}
		if err := kv.Put(p, "k", []byte("replicated")); err != nil {
			t.Error(err)
			return
		}
		// Fail the engine holding the primary replica.
		primary := kv.Obj.Layout.Shards[0][0]
		engineID := primary / tb.Cfg.TargetsPerEngine
		tb.Engines[engineID].SetDown(true) // engine down but NOT excluded from map
		v, err := kv.Get(p, "k")
		if err != nil || string(v) != "replicated" {
			t.Errorf("replicated read after failure = %q, %v", v, err)
		}
	})
}

func TestWriteAfterExclusionRemaps(t *testing.T) {
	withContainer(t, placement.S1, func(p *sim.Proc, tb *cluster.Testbed, ct *daos.Container) {
		arr, err := ct.OpenArray(p, ct.AllocOID(placement.S1))
		if err != nil {
			t.Error(err)
			return
		}
		if err := arr.Write(p, 0, []byte("before")); err != nil {
			t.Error(err)
			return
		}
		target := arr.Obj.Layout.Shards[0][0]
		engineID := target / tb.Cfg.TargetsPerEngine
		tb.ExcludeEngine(engineID)
		// The stale layout is refreshed on the next op; the write lands on a
		// live target.
		if err := arr.Write(p, 0, []byte("after!")); err != nil {
			t.Error(err)
			return
		}
		newTarget := arr.Obj.Layout.Shards[0][0]
		if newTarget/tb.Cfg.TargetsPerEngine == engineID {
			t.Error("layout still points at the excluded engine")
		}
		got, err := arr.Read(p, 0, 6)
		if err != nil || string(got) != "after!" {
			t.Errorf("read after remap = %q, %v", got, err)
		}
	})
}

func TestEventQueueAsync(t *testing.T) {
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, _ := client.CreatePool(p, "p0")
		ct, _ := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S2})
		arr, err := ct.OpenArray(p, ct.AllocOID(placement.S2))
		if err != nil {
			t.Error(err)
			return
		}
		// Launch 8 concurrent 1 MiB writes; async must beat serial.
		start := p.Now()
		eq := client.NewEventQueue(8)
		for i := 0; i < 8; i++ {
			off := int64(i) << 20
			eq.Submit(p, func(cp *sim.Proc) error {
				return arr.Write(cp, off, bytes.Repeat([]byte{byte(i)}, 1<<20))
			})
		}
		if err := eq.Wait(p); err != nil {
			t.Error(err)
			return
		}
		asyncTime := p.Now() - start

		start = p.Now()
		for i := 0; i < 8; i++ {
			arr.Write(p, int64(i)<<20, bytes.Repeat([]byte{byte(i)}, 1<<20))
		}
		serialTime := p.Now() - start
		if asyncTime >= serialTime {
			t.Errorf("async %v not faster than serial %v", asyncTime, serialTime)
		}
	})
}

func TestOIDAllocationUnique(t *testing.T) {
	tb := cluster.New(cluster.Small())
	c1 := tb.NewClient(tb.ClientNode(0), 1)
	c2 := tb.NewClient(tb.ClientNode(1), 2)
	tb.Run(func(p *sim.Proc) {
		pool, _ := c1.CreatePool(p, "p0")
		ct1, _ := pool.CreateContainer(p, "c0", daos.ContProps{})
		pool2, _ := c2.Connect(p, "p0")
		ct2, _ := pool2.OpenContainer(p, "c0")
		seen := map[vos.ObjectID]bool{}
		for i := 0; i < 100; i++ {
			for _, ct := range []*daos.Container{ct1, ct2} {
				oid := ct.AllocOID(placement.S1)
				if seen[oid] {
					t.Fatalf("duplicate OID %v", oid)
				}
				seen[oid] = true
			}
		}
	})
}
