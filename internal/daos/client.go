// Package daos implements the client library (libdaos): pool connection,
// container handles, object open with class-based placement, the key-value
// and byte-array object APIs, and an event queue for asynchronous I/O.
//
// Client-side timing model:
//
//   - Each sub-RPC pays RPCIssue of client CPU serially before its network
//     transfer starts (OFI context progression is single-threaded per rank).
//     Wide object classes fan one application I/O out into many sub-RPCs
//     and therefore pay this cost repeatedly.
//   - Opening an object charges ShardOpen per shard in its layout (handle
//     and address resolution per target). An SX object on a 128-target pool
//     pays 128x this, the client-side reason SX underperforms at low client
//     counts in the paper's Figure 1.
package daos

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"daosim/internal/engine"
	"daosim/internal/fabric"
	"daosim/internal/placement"
	"daosim/internal/sim"
	"daosim/internal/svc"
	"daosim/internal/vos"
)

// Costs collects client-side software path constants.
type Costs struct {
	// RPCIssue is the per-sub-RPC client CPU charge (serialized).
	RPCIssue time.Duration
	// ShardOpen is the per-shard charge at object open.
	ShardOpen time.Duration
}

// DefaultCosts returns the calibrated client cost model.
func DefaultCosts() Costs {
	return Costs{
		RPCIssue:  15 * time.Microsecond,
		ShardOpen: 50 * time.Microsecond,
	}
}

// Registry resolves cluster topology for the client: which fabric node
// hosts which engine, and the shared pool map.
type Registry interface {
	// EngineNode returns the fabric node hosting engine id.
	EngineNode(id int) *fabric.Node
	// PoolMap returns the cluster's (shared, versioned) pool map.
	PoolMap() *placement.PoolMap
	// TargetsPerEngine returns the target count per engine.
	TargetsPerEngine() int
}

// Client is one application process's DAOS client (one per rank).
type Client struct {
	sim      *sim.Sim
	fab      *fabric.Fabric
	node     *fabric.Node
	registry Registry
	poolSvc  *svc.Client
	costs    Costs
	// id makes OIDs allocated by this client unique cluster-wide.
	id     uint32
	oidSeq uint32
}

// NewClient creates a client bound to a fabric node. id must be unique per
// client (e.g. the MPI rank).
func NewClient(s *sim.Sim, f *fabric.Fabric, node *fabric.Node, reg Registry, pool *svc.Client, id uint32) *Client {
	return &Client{
		sim:      s,
		fab:      f,
		node:     node,
		registry: reg,
		poolSvc:  pool,
		costs:    DefaultCosts(),
		id:       id,
	}
}

// SetCosts overrides the client cost model (ablations).
func (c *Client) SetCosts(costs Costs) { c.costs = costs }

// Node returns the client's fabric node.
func (c *Client) Node() *fabric.Node { return c.node }

// Pool is an open pool connection.
type Pool struct {
	client *Client
	Info   *svc.PoolInfo
}

// Connect opens the named pool via the pool service.
func (c *Client) Connect(p *sim.Proc, label string) (*Pool, error) {
	res, err := c.poolSvc.Execute(p, svc.Command{Op: svc.OpQueryPool, Pool: label})
	if err != nil {
		return nil, fmt.Errorf("daos: pool connect %q: %w", label, err)
	}
	return &Pool{client: c, Info: res.Pool}, nil
}

// CreatePool creates a pool spanning every engine in the pool map.
func (c *Client) CreatePool(p *sim.Proc, label string) (*Pool, error) {
	m := c.registry.PoolMap()
	engines := make([]int, m.NumEngines())
	for i := range engines {
		engines[i] = i
	}
	res, err := c.poolSvc.Execute(p, svc.Command{Op: svc.OpCreatePool, Pool: label, Targets: engines})
	if err != nil {
		return nil, fmt.Errorf("daos: pool create %q: %w", label, err)
	}
	return &Pool{client: c, Info: res.Pool}, nil
}

// ContProps are container creation properties.
type ContProps struct {
	// Class is the default object class for objects in this container.
	Class placement.ClassID
	// ChunkSize is the default array/file chunk size in bytes.
	ChunkSize int64
}

// DefaultChunkSize matches DFS's 1 MiB default.
const DefaultChunkSize = int64(1) << 20

// Container is an open container handle.
type Container struct {
	Pool  *Pool
	UUID  string
	Label string
	Props ContProps
}

// CreateContainer creates and opens a container.
func (pl *Pool) CreateContainer(p *sim.Proc, label string, props ContProps) (*Container, error) {
	if props.ChunkSize <= 0 {
		props.ChunkSize = DefaultChunkSize
	}
	if props.Class == placement.SAny {
		props.Class = placement.SX
	}
	res, err := pl.client.poolSvc.Execute(p, svc.Command{
		Op: svc.OpCreateCont, Pool: pl.Info.Label, Cont: label,
		Props: map[string]string{
			"oclass": strconv.Itoa(int(props.Class)),
			"chunk":  strconv.FormatInt(props.ChunkSize, 10),
		},
	})
	if err != nil {
		return nil, fmt.Errorf("daos: container create %q: %w", label, err)
	}
	return &Container{Pool: pl, UUID: res.Cont.UUID, Label: label, Props: props}, nil
}

// OpenContainer opens an existing container.
func (pl *Pool) OpenContainer(p *sim.Proc, label string) (*Container, error) {
	res, err := pl.client.poolSvc.Execute(p, svc.Command{Op: svc.OpQueryPool, Pool: pl.Info.Label})
	if err != nil {
		return nil, err
	}
	ci, ok := res.Pool.Conts[label]
	if !ok {
		return nil, fmt.Errorf("daos: container %q: %w", label, svc.ErrNotFound)
	}
	props := ContProps{ChunkSize: DefaultChunkSize, Class: placement.SX}
	if v, err := strconv.Atoi(ci.Props["oclass"]); err == nil {
		props.Class = placement.ClassID(v)
	}
	if v, err := strconv.ParseInt(ci.Props["chunk"], 10, 64); err == nil {
		props.ChunkSize = v
	}
	return &Container{Pool: pl, UUID: ci.UUID, Label: label, Props: props}, nil
}

// AllocOID mints a fresh ObjectID of the given class (client-unique range,
// as DAOS allocates OID ranges per container handle). Lo values below 2^32
// are reserved for well-known objects (the DFS root and superblock).
func (ct *Container) AllocOID(class placement.ClassID) vos.ObjectID {
	if class == placement.SAny {
		class = ct.Props.Class
	}
	c := ct.Pool.client
	c.oidSeq++
	lo := (uint64(c.id)+1)<<32 | uint64(c.oidSeq)
	return placement.EncodeOID(class, 0, lo)
}

// Errors returned by object operations.
var (
	// ErrStaleLayout reports a layout computed against an outdated pool map.
	ErrStaleLayout = errors.New("daos: stale layout")
)

// Object is an open object handle with its computed layout.
type Object struct {
	cont   *Container
	OID    vos.ObjectID
	Layout *placement.Layout
}

// OpenObject opens oid, computing its layout and charging the per-shard
// open cost.
func (ct *Container) OpenObject(p *sim.Proc, oid vos.ObjectID) (*Object, error) {
	m := ct.Pool.client.registry.PoolMap()
	layout, err := placement.Compute(oid, m)
	if err != nil {
		return nil, fmt.Errorf("daos: open %v: %w", oid, err)
	}
	p.Sleep(time.Duration(layout.NumShards()) * ct.Pool.client.costs.ShardOpen)
	return &Object{cont: ct, OID: oid, Layout: layout}, nil
}

// refresh recomputes the layout against the current pool map (after
// exclusions).
func (o *Object) refresh() error {
	m := o.cont.Pool.client.registry.PoolMap()
	if o.Layout.MapVersion == m.Version {
		return nil
	}
	layout, err := placement.Compute(o.OID, m)
	if err != nil {
		return err
	}
	o.Layout = layout
	return nil
}

// shardForDkey maps a dkey hash to a shard index. Chunk dkeys distribute
// round-robin (DAOS array striping); other dkeys hash.
func (o *Object) shardForDkey(dk []byte) int {
	n := o.Layout.NumShards()
	if idx, ok := engine.DecodeChunkDkey(dk); ok {
		return int(idx % int64(n))
	}
	var h uint64 = 14695981039346656037
	for _, b := range dk {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// call issues one object RPC to the engine owning a global target. The
// caller is responsible for charging RPCIssue (fan-out paths serialize the
// charge on the parent process).
func (o *Object) call(p *sim.Proc, targetID int, body interface{}) fabric.Response {
	c := o.cont.Pool.client
	engineID := targetID / c.registry.TargetsPerEngine()
	dst := c.registry.EngineNode(engineID)
	return c.fab.Call(p, c.node, dst, engine.ServiceName(engineID), fabric.Request{
		Body: body,
		Size: engine.RequestSize(body),
	})
}

// targetWrites groups writes by destination target. pos holds each write's
// index in the caller's batch, parallel to writes, so a failed group can be
// retried without duplicating writes that appear in several groups.
type targetWrites struct {
	target int
	writes []engine.WriteExt
	pos    []int
}

// Failover bounds for I/O against a freshly killed engine: an RPC that
// fails with engine.ErrEngineDown is retried against a layout recomputed
// from the bumped pool map, after a short virtual backoff (the exclusion
// lands at the same virtual instant as the failure; the backoff orders the
// refresh after it). Both constants are virtual time and fixed, so failover
// is as deterministic as the fault that triggered it.
const (
	maxFailover     = 5
	failoverBackoff = time.Millisecond
)

// Update writes a batch of extents, fanning out one RPC per (target,
// replica) in parallel and waiting for all to complete. Writes that land on
// a killed engine fail over: the layout is recomputed against the current
// pool map and only the failed writes are reissued (a write replicated
// across groups may be re-sent to a surviving replica that already holds
// it, exactly as a real client restarting an update at a new map version
// would).
func (o *Object) Update(p *sim.Proc, writes []engine.WriteExt) error {
	c := o.cont.Pool.client
	remaining := writes
	for attempt := 0; ; attempt++ {
		if err := o.refresh(); err != nil {
			return fmt.Errorf("daos: update: %w", err)
		}
		groups := o.groupWrites(remaining)
		wg := sim.NewWaitGroup(c.sim)
		groupErrs := make([]error, len(groups))
		for gi := range groups {
			gi, g := gi, &groups[gi]
			wg.Go("daos-update", func(cp *sim.Proc) {
				resp := o.call(cp, g.target, &engine.UpdateReq{
					Cont:   o.cont.UUID,
					OID:    o.OID,
					Target: g.target,
					Writes: g.writes,
				})
				groupErrs[gi] = resp.Err
			})
			// Sub-RPC issuance is serialized on the client core.
			p.Sleep(c.costs.RPCIssue)
		}
		wg.Wait(p)
		retry := make([]bool, len(remaining))
		nRetry := 0
		for gi, err := range groupErrs {
			if err == nil {
				continue
			}
			if !errors.Is(err, engine.ErrEngineDown) || attempt >= maxFailover {
				return fmt.Errorf("daos: update: %w", err)
			}
			for _, pos := range groups[gi].pos {
				if !retry[pos] {
					retry[pos] = true
					nRetry++
				}
			}
		}
		if nRetry == 0 {
			return nil
		}
		next := make([]engine.WriteExt, 0, nRetry)
		for i, w := range remaining {
			if retry[i] {
				next = append(next, w)
			}
		}
		remaining = next
		p.Sleep(failoverBackoff)
	}
}

// groupWrites buckets writes per (shard target x replica).
func (o *Object) groupWrites(writes []engine.WriteExt) []targetWrites {
	byTarget := make(map[int]*targetWrites)
	var order []int
	for i, w := range writes {
		shard := o.shardForDkey(w.Dkey)
		for _, tgt := range o.Layout.Shards[shard] {
			g, ok := byTarget[tgt]
			if !ok {
				g = &targetWrites{target: tgt}
				byTarget[tgt] = g
				order = append(order, tgt)
			}
			g.writes = append(g.writes, w)
			g.pos = append(g.pos, i)
		}
	}
	out := make([]targetWrites, 0, len(order))
	for _, tgt := range order {
		out = append(out, *byTarget[tgt])
	}
	return out
}

// fetchGroup is one fetch RPC's reads with their positions in the caller's
// batch.
type fetchGroup struct {
	target  int
	replica []int // fallback replica targets
	reads   []engine.ReadExt
	pos     []int
}

// Fetch reads a batch of extents at the given epoch (0 = latest), returning
// data parallel to reads. Failed targets fall back to the next replica
// within the RPC, and shards whose every replica is down fail over: the
// layout is recomputed against the current pool map and only the failed
// reads are reissued. Extents whose data was lost with a killed engine
// read as holes (nil) from the fallback target, like any unwritten region.
func (o *Object) Fetch(p *sim.Proc, reads []engine.ReadExt, epoch vos.Epoch) ([][]byte, error) {
	c := o.cont.Pool.client
	out := make([][]byte, len(reads))
	remaining := make([]int, len(reads))
	for i := range reads {
		remaining[i] = i
	}
	for attempt := 0; ; attempt++ {
		if err := o.refresh(); err != nil {
			return nil, fmt.Errorf("daos: fetch: %w", err)
		}
		byShard := make(map[int]*fetchGroup)
		var order []int
		for _, pos := range remaining {
			rd := reads[pos]
			shard := o.shardForDkey(rd.Dkey)
			g, ok := byShard[shard]
			if !ok {
				g = &fetchGroup{
					target:  o.Layout.Shards[shard][0],
					replica: o.Layout.Shards[shard],
				}
				byShard[shard] = g
				order = append(order, shard)
			}
			g.reads = append(g.reads, rd)
			g.pos = append(g.pos, pos)
		}
		wg := sim.NewWaitGroup(c.sim)
		groupErrs := make([]error, len(order))
		for oi, shard := range order {
			oi, g := oi, byShard[shard]
			wg.Go("daos-fetch", func(cp *sim.Proc) {
				var resp fabric.Response
				for _, tgt := range g.replica {
					resp = o.call(cp, tgt, &engine.FetchReq{
						Cont:   o.cont.UUID,
						OID:    o.OID,
						Target: tgt,
						Reads:  g.reads,
						Epoch:  epoch,
					})
					if resp.Err == nil || !errors.Is(resp.Err, engine.ErrEngineDown) {
						break
					}
				}
				if resp.Err != nil {
					groupErrs[oi] = resp.Err
					return
				}
				fr := resp.Body.(*engine.FetchResp)
				for j, pos := range g.pos {
					out[pos] = fr.Data[j]
				}
			})
			p.Sleep(c.costs.RPCIssue)
		}
		wg.Wait(p)
		var next []int
		for oi, err := range groupErrs {
			if err == nil {
				continue
			}
			if !errors.Is(err, engine.ErrEngineDown) || attempt >= maxFailover {
				return nil, fmt.Errorf("daos: fetch: %w", err)
			}
			next = append(next, byShard[order[oi]].pos...)
		}
		if len(next) == 0 {
			return out, nil
		}
		remaining = next
		p.Sleep(failoverBackoff)
	}
}

// Punch deletes the object on every shard.
func (o *Object) Punch(p *sim.Proc) error {
	if err := o.refresh(); err != nil {
		return err
	}
	c := o.cont.Pool.client
	wg := sim.NewWaitGroup(c.sim)
	var firstErr error
	seen := map[int]bool{}
	for _, sh := range o.Layout.Shards {
		for _, tgt := range sh {
			if seen[tgt] {
				continue
			}
			seen[tgt] = true
			tgt := tgt
			wg.Go("daos-punch", func(cp *sim.Proc) {
				resp := o.call(cp, tgt, &engine.PunchReq{Cont: o.cont.UUID, OID: o.OID, Target: tgt})
				if resp.Err != nil && firstErr == nil {
					firstErr = resp.Err
				}
			})
			p.Sleep(c.costs.RPCIssue)
		}
	}
	wg.Wait(p)
	return firstErr
}

// ListDkeys enumerates dkeys across all shards, merged and sorted.
func (o *Object) ListDkeys(p *sim.Proc) ([][]byte, error) {
	if err := o.refresh(); err != nil {
		return nil, err
	}
	c := o.cont.Pool.client
	var all [][]byte
	for _, sh := range o.Layout.Shards {
		p.Sleep(c.costs.RPCIssue)
		resp := o.call(p, sh[0], &engine.ListReq{Cont: o.cont.UUID, OID: o.OID, Target: sh[0]})
		if resp.Err != nil {
			return nil, resp.Err
		}
		all = append(all, resp.Body.(*engine.ListResp).Dkeys...)
	}
	sortByteSlices(all)
	return all, nil
}

func sortByteSlices(s [][]byte) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && string(s[j]) < string(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
