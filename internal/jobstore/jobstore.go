// Package jobstore is daosd's persistent submission journal: a
// checksummed append-only record log that makes study batches survive a
// coordinator crash. The server appends one batch record when a
// submission arrives and one point record as each result lands; on
// restart, Open replays the journal and hands back every batch that has
// not been fully delivered, with its completed points — the server
// re-enqueues only the missing ones and serves the rest without
// re-simulation.
//
// # On-disk format
//
// A journal directory holds numbered segment files (journal-00000001.seg,
// ...). Each segment starts with the 8-byte magic "daosjnl1" followed by
// framed records:
//
//	u32 payload length (little endian)
//	u8  record type (1=batch, 2=point, 3=done)
//	    JSON payload
//	u32 CRC-32 (IEEE) over type byte + payload
//
// The codec discipline matches the cache's daoscch2 records: every byte
// that matters is covered by the checksum, and torn or garbled data is a
// recovery boundary, never an error. Replay stops at the first record
// that is short, oversized, or fails its CRC — exactly the crash-
// mid-append case — and everything before the tear is recovered intact.
// Records that decode but reference an unknown batch (a point or done
// whose batch record fell past an earlier tear) are skipped.
//
// # Rotation and compaction
//
// Appends go to the newest segment with an fsync per record: once
// AppendBatch or AppendPoint returns, that record survives kill -9.
// Open compacts the live state (batches not yet done) into a fresh
// segment via temp+rename and deletes the older ones, so completed
// batches do not accumulate; BatchDone rotates to an empty segment
// whenever it retires the last live batch, bounding the journal on a
// quiet server to the magic header.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"daosim/internal/core"
)

const (
	magic = "daosjnl1"
	// maxPayload bounds a single record; anything larger in the length
	// field is corruption (the biggest real payload is a batch record,
	// well under a megabyte).
	maxPayload = 64 << 20
	// frameOverhead is the non-payload bytes of one framed record.
	frameOverhead = 4 + 1 + 4
)

type recordType byte

const (
	recBatch recordType = 1
	recPoint recordType = 2
	recDone  recordType = 3
)

// PointRecord is one completed point of a journaled batch: its position
// in the batch's core.Decompose job order plus the result and the
// stream flags the original delivery carried, so a replayed stream is
// byte-identical to the first one.
type PointRecord struct {
	Pos       int        `json:"pos"`
	Point     core.Point `json:"point"`
	CacheHit  bool       `json:"hit,omitempty"`
	Coalesced bool       `json:"coalesced,omitempty"`
}

// Batch is one recovered submission: the configs as submitted (the
// server re-runs core.Decompose over them, which is deterministic, so
// positions line up) and the points that completed before the crash, in
// delivery order.
type Batch struct {
	ID      string
	Configs []core.Config
	Points  []PointRecord
}

// Journal record payloads. Point records flatten PointRecord so the
// on-disk shape has no nesting to version around.
type batchRecord struct {
	ID      string        `json:"id"`
	Configs []core.Config `json:"configs"`
}

type pointRecord struct {
	ID string `json:"id"`
	PointRecord
}

type doneRecord struct {
	ID string `json:"id"`
}

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("jobstore: store is closed")

// Store is an open journal directory. All methods are safe for
// concurrent use.
type Store struct {
	dir       string
	recovered []Batch

	mu     sync.Mutex
	f      *os.File
	seg    int
	live   map[string]bool
	closed bool
}

// Open replays the journal under dir (creating it if needed), compacts
// the live batches into a fresh segment, and returns the store ready
// for appends. The recovered batches — submissions that never finished
// streaming — are available from Recovered, in submission order.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Replay every segment in order. Order within the live set is
	// submission order because compaction preserves it and appends only
	// go to the newest segment.
	ids := []string{}
	byID := map[string]*Batch{}
	maxSeg := 0
	for _, seg := range segs {
		if seg.n > maxSeg {
			maxSeg = seg.n
		}
		buf, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("jobstore: %w", err)
		}
		for _, rec := range scanRecords(buf) {
			switch rec.typ {
			case recBatch:
				var br batchRecord
				if json.Unmarshal(rec.payload, &br) != nil || br.ID == "" {
					continue
				}
				if _, ok := byID[br.ID]; ok {
					continue // duplicate id; first submission wins
				}
				byID[br.ID] = &Batch{ID: br.ID, Configs: br.Configs}
				ids = append(ids, br.ID)
			case recPoint:
				var pr pointRecord
				if json.Unmarshal(rec.payload, &pr) != nil {
					continue
				}
				if b, ok := byID[pr.ID]; ok {
					b.Points = append(b.Points, pr.PointRecord)
				}
			case recDone:
				var dr doneRecord
				if json.Unmarshal(rec.payload, &dr) != nil {
					continue
				}
				if _, ok := byID[dr.ID]; ok {
					delete(byID, dr.ID)
				}
			}
		}
	}
	var liveBatches []Batch
	for _, id := range ids {
		if b, ok := byID[id]; ok {
			liveBatches = append(liveBatches, *b)
		}
	}
	s := &Store{
		dir:       dir,
		recovered: liveBatches,
		live:      make(map[string]bool, len(liveBatches)),
	}
	for _, b := range liveBatches {
		s.live[b.ID] = true
	}
	// Compact the live set into segment maxSeg+1 and drop everything
	// older. Always rotating — even from zero segments — means a torn
	// tail never survives into the append file.
	if err := s.rotateLocked(maxSeg+1, liveBatches); err != nil {
		return nil, err
	}
	for _, seg := range segs {
		os.Remove(seg.path)
	}
	return s, nil
}

// Recovered returns the batches Open replayed that had not finished:
// the server re-enqueues their incomplete points and replays the
// completed ones. The slice is owned by the caller.
func (s *Store) Recovered() []Batch { return s.recovered }

// Dir returns the journal directory.
func (s *Store) Dir() string { return s.dir }

// AppendBatch journals a new submission. It must be called before any
// AppendPoint for the same id.
func (s *Store) AppendBatch(id string, cfgs []core.Config) error {
	payload, err := json.Marshal(batchRecord{ID: id, Configs: cfgs})
	if err != nil {
		return fmt.Errorf("jobstore: encode batch: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(recBatch, payload); err != nil {
		return err
	}
	s.live[id] = true
	return nil
}

// AppendPoint journals one completed point of batch id.
func (s *Store) AppendPoint(id string, pr PointRecord) error {
	payload, err := json.Marshal(pointRecord{ID: id, PointRecord: pr})
	if err != nil {
		return fmt.Errorf("jobstore: encode point: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(recPoint, payload)
}

// BatchDone retires batch id: after the done record is durable the
// batch will not be recovered again. When the last live batch retires,
// the journal rotates to a fresh empty segment so retired history does
// not accumulate.
func (s *Store) BatchDone(id string) error {
	payload, err := json.Marshal(doneRecord{ID: id})
	if err != nil {
		return fmt.Errorf("jobstore: encode done: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(recDone, payload); err != nil {
		return err
	}
	delete(s.live, id)
	if len(s.live) == 0 {
		// Best-effort: the done record above is already durable, so a
		// failed rotation only costs replay work on the next Open.
		if err := s.rotateLocked(s.seg+1, nil); err == nil {
			os.Remove(segPath(s.dir, s.seg-1))
		}
	}
	return nil
}

// Close syncs and closes the journal. Appends after Close return
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// appendLocked frames and appends one record, fsyncing before return.
// The frame goes down in a single write so a crash tears at most the
// final record — exactly what replay recovers from.
func (s *Store) appendLocked(t recordType, payload []byte) error {
	if s.closed {
		return ErrClosed
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	frame[4] = byte(t)
	copy(frame[5:], payload)
	sum := crc32.ChecksumIEEE(frame[4 : 5+len(payload)])
	binary.LittleEndian.PutUint32(frame[5+len(payload):], sum)
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("jobstore: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("jobstore: sync: %w", err)
	}
	return nil
}

// rotateLocked writes batches (the live set) into segment n via
// temp+rename, syncs the directory, and switches appends to it. The old
// append handle is closed; callers delete superseded segment files.
func (s *Store) rotateLocked(n int, batches []Batch) error {
	tmp, err := os.CreateTemp(s.dir, "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	write := func(t recordType, v any) error {
		payload, err := json.Marshal(v)
		if err != nil {
			return err
		}
		frame := make([]byte, frameOverhead+len(payload))
		binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
		frame[4] = byte(t)
		copy(frame[5:], payload)
		binary.LittleEndian.PutUint32(frame[5+len(payload):], crc32.ChecksumIEEE(frame[4:5+len(payload)]))
		_, err = tmp.Write(frame)
		return err
	}
	err = func() error {
		if _, err := tmp.Write([]byte(magic)); err != nil {
			return err
		}
		for _, b := range batches {
			if err := write(recBatch, batchRecord{ID: b.ID, Configs: b.Configs}); err != nil {
				return err
			}
			for _, pr := range b.Points {
				if err := write(recPoint, pointRecord{ID: b.ID, PointRecord: pr}); err != nil {
					return err
				}
			}
		}
		return tmp.Sync()
	}()
	if err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	path := segPath(s.dir, n)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	syncDir(s.dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if s.f != nil {
		s.f.Close()
	}
	s.f = f
	s.seg = n
	return nil
}

// record is one decoded journal frame.
type record struct {
	typ     recordType
	payload []byte
}

// scanRecords walks buf and returns every intact record before the
// first tear. A missing or wrong magic yields nothing; a frame that is
// short, oversized, or fails its CRC ends the scan — replay never
// errors on a torn tail, it recovers the prefix.
func scanRecords(buf []byte) []record {
	if len(buf) < len(magic) || string(buf[:len(magic)]) != magic {
		return nil
	}
	var recs []record
	off := len(magic)
	for {
		if len(buf)-off < frameOverhead {
			return recs
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		if n > maxPayload || len(buf)-off-frameOverhead < n {
			return recs
		}
		body := buf[off+4 : off+5+n] // type byte + payload
		sum := binary.LittleEndian.Uint32(buf[off+5+n:])
		if crc32.ChecksumIEEE(body) != sum {
			return recs
		}
		recs = append(recs, record{typ: recordType(body[0]), payload: body[1:]})
		off += frameOverhead + n
	}
}

type segFile struct {
	n    int
	path string
}

// listSegments returns dir's journal segments sorted by number.
func listSegments(dir string) ([]segFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var segs []segFile
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "journal-%d.seg", &n); err == nil {
			segs = append(segs, segFile{n: n, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })
	return segs, nil
}

func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%08d.seg", n))
}

// syncDir makes a rename durable on filesystems that need the directory
// flushed; failure is not fatal (the segment itself is synced).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
