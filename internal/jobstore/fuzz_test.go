package jobstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzScanRecords throws arbitrary bytes at the journal decoder. The
// invariants under fuzz are the recovery contract: never panic, never
// return a record that was not fully framed and checksummed, and always
// decode a valid prefix exactly — appending garbage after intact
// records must not change what the prefix recovers.
func FuzzScanRecords(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		b := make([]byte, frameOverhead+len(payload))
		binary.LittleEndian.PutUint32(b, uint32(len(payload)))
		b[4] = typ
		copy(b[5:], payload)
		binary.LittleEndian.PutUint32(b[5+len(payload):], crc32.ChecksumIEEE(b[4:5+len(payload)]))
		return b
	}
	valid := append([]byte(magic), frame(byte(recBatch), []byte(`{"id":"b1","configs":[]}`))...)
	valid = append(valid, frame(byte(recPoint), []byte(`{"id":"b1","pos":0,"point":{}}`))...)

	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte("daosjnl1\xff\xff\xff\xff\x01junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := scanRecords(data)
		// Re-encode what the scan recovered; it must be a byte prefix of
		// the input (after the magic) — proof no record was invented or
		// reshaped.
		if len(recs) > 0 {
			var re bytes.Buffer
			re.WriteString(magic)
			for _, r := range recs {
				re.Write(frame(byte(r.typ), r.payload))
			}
			if !bytes.HasPrefix(data, re.Bytes()) {
				t.Fatalf("scan recovered records that are not a prefix of the input")
			}
		}
		// Garbage appended after an intact prefix never changes it.
		withTail := append(append([]byte{}, data...), 0x00, 0xff, 0x01)
		tailRecs := scanRecords(withTail)
		if len(tailRecs) < len(recs) {
			t.Fatalf("appending garbage lost records: %d -> %d", len(recs), len(tailRecs))
		}
	})
}
