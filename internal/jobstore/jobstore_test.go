package jobstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"daosim/internal/core"
)

// testConfigs builds a small deterministic batch payload.
func testConfigs() []core.Config {
	cfg := core.Config{
		Workload:  "easy",
		Nodes:     []int{1, 2},
		Variants:  core.EasyVariants(),
		Seed:      42,
		BlockSize: 1 << 20,
	}
	return []core.Config{cfg}
}

func testPoint(i int) PointRecord {
	return PointRecord{
		Pos: i,
		Point: core.Point{
			Nodes:     i + 1,
			Ranks:     (i + 1) * 16,
			WriteGiBs: float64(i) * 1.25,
			ReadGiBs:  float64(i) * 2.5,
		},
		CacheHit: i%2 == 0,
	}
}

// openT opens dir, failing the test on error.
func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// journalBytes reads the single live segment (after appends, before any
// reopen) so truncation tests can slice it.
func journalBytes(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	buf, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	return segs[0].path, buf
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	cfgs := testConfigs()
	if err := s.AppendBatch("b1", cfgs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.AppendPoint("b1", testPoint(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	got := s2.Recovered()
	if len(got) != 1 {
		t.Fatalf("recovered %d batches, want 1", len(got))
	}
	b := got[0]
	if b.ID != "b1" || len(b.Configs) != 1 || len(b.Points) != 3 {
		t.Fatalf("recovered batch = id %q, %d configs, %d points", b.ID, len(b.Configs), len(b.Points))
	}
	if b.Configs[0].Seed != 42 || b.Configs[0].Nodes[1] != 2 {
		t.Fatalf("configs did not round-trip: %+v", b.Configs[0])
	}
	for i, pr := range b.Points {
		want := testPoint(i)
		if pr.Pos != want.Pos || pr.Point != want.Point || pr.CacheHit != want.CacheHit {
			t.Fatalf("point %d did not round-trip: got %+v want %+v", i, pr, want)
		}
	}
}

func TestBatchDoneRetires(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.AppendBatch("b1", testConfigs()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoint("b1", testPoint(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.BatchDone("b1"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	if n := len(s2.Recovered()); n != 0 {
		t.Fatalf("recovered %d batches after BatchDone, want 0", n)
	}
	// Retiring the last live batch rotates to a fresh segment: the
	// journal is back to just its magic header.
	_, buf := journalBytes(t, dir)
	if len(buf) != len(magic) {
		t.Fatalf("idle journal is %d bytes, want %d (bare magic)", len(buf), len(magic))
	}
}

func TestOpenCompactsRetiredHistory(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.AppendBatch("done", testConfigs())
	s.AppendPoint("done", testPoint(0))
	s.AppendBatch("live", testConfigs())
	s.AppendPoint("live", testPoint(1))
	s.BatchDone("done")
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	got := s2.Recovered()
	if len(got) != 1 || got[0].ID != "live" {
		t.Fatalf("recovered %v, want just batch live", got)
	}
	// Compaction rewrote a single segment holding only the live batch:
	// replaying it cold must not resurrect the retired one.
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("got %d segments after compaction, want 1", len(segs))
	}
}

// TestTruncatedTailRecoversPrefix is the crash-mid-append table: the
// journal cut at every byte boundary must recover exactly the records
// whose frames fully landed, and never error.
func TestTruncatedTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.AppendBatch("b1", testConfigs())
	for i := 0; i < 3; i++ {
		s.AppendPoint("b1", testPoint(i))
	}
	s.Close()
	path, full := journalBytes(t, dir)

	// Find the frame boundaries so each cut maps to an expected record
	// count.
	boundaries := []int{len(magic)}
	off := len(magic)
	for off < len(full) {
		n := int(binary.LittleEndian.Uint32(full[off:]))
		off += frameOverhead + n
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != 5 { // magic + 4 records
		t.Fatalf("journal has %d frames, want 4", len(boundaries)-1)
	}
	recordsBefore := func(cut int) int {
		n := 0
		for _, b := range boundaries[1:] {
			if cut >= b {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(full); cut++ {
		work := t.TempDir()
		p := filepath.Join(work, filepath.Base(path))
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(work)
		if err != nil {
			t.Fatalf("cut=%d: Open errored: %v (torn tails must recover, not fail)", cut, err)
		}
		want := recordsBefore(cut)
		got := 0
		if bs := s.Recovered(); len(bs) == 1 {
			got = 1 + len(bs[0].Points)
		} else if len(bs) > 1 {
			t.Fatalf("cut=%d: recovered %d batches", cut, len(bs))
		}
		if got != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, got, want)
		}
		s.Close()
	}
}

// TestCorruptTailDropsTornRecord flips one byte in the final record's
// frame: the scan must stop at the flip and keep everything before it.
func TestCorruptTailDropsTornRecord(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.AppendBatch("b1", testConfigs())
	s.AppendPoint("b1", testPoint(0))
	s.AppendPoint("b1", testPoint(1))
	s.Close()
	path, full := journalBytes(t, dir)

	// Locate the final frame.
	off := len(magic)
	last := off
	for off < len(full) {
		last = off
		n := int(binary.LittleEndian.Uint32(full[off:]))
		off += frameOverhead + n
	}

	for _, flip := range []int{last + 4, last + 6, len(full) - 1} { // type byte, payload, crc
		work := t.TempDir()
		buf := append([]byte(nil), full...)
		buf[flip] ^= 0x40
		if err := os.WriteFile(filepath.Join(work, filepath.Base(path)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(work)
		if err != nil {
			t.Fatalf("flip@%d: Open errored: %v", flip, err)
		}
		bs := s.Recovered()
		if len(bs) != 1 || len(bs[0].Points) != 1 {
			t.Fatalf("flip@%d: recovered %+v, want batch b1 with exactly the first point", flip, bs)
		}
		s.Close()
	}
}

// TestGarbageJournalIsEmptyNotFatal: a journal whose magic is wrong (or
// that is outright noise) recovers nothing and keeps working.
func TestGarbageJournalIsEmptyNotFatal(t *testing.T) {
	for _, junk := range [][]byte{nil, []byte("not a journal"), []byte("daosjnl9xxxxxxxxxxxx")} {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), junk, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on garbage journal errored: %v", err)
		}
		if n := len(s.Recovered()); n != 0 {
			t.Fatalf("recovered %d batches from garbage", n)
		}
		// And the store must still append durably.
		if err := s.AppendBatch("b1", testConfigs()); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s2 := openT(t, dir)
		if n := len(s2.Recovered()); n != 1 {
			t.Fatalf("recovered %d batches after re-append, want 1", n)
		}
		s2.Close()
	}
}

// TestOrphanRecordsSkipped: point/done records whose batch record is
// missing (fell past a tear in an earlier segment) are skipped, not an
// error.
func TestOrphanRecordsSkipped(t *testing.T) {
	dir := t.TempDir()
	frame := func(typ recordType, payload string) []byte {
		b := make([]byte, frameOverhead+len(payload))
		binary.LittleEndian.PutUint32(b, uint32(len(payload)))
		b[4] = byte(typ)
		copy(b[5:], payload)
		binary.LittleEndian.PutUint32(b[5+len(payload):], crc32.ChecksumIEEE(b[4:5+len(payload)]))
		return b
	}
	buf := []byte(magic)
	buf = append(buf, frame(recPoint, `{"id":"ghost","pos":0,"point":{}}`)...)
	buf = append(buf, frame(recDone, `{"id":"ghost"}`)...)
	buf = append(buf, frame(recordType(99), `{"future":"record"}`)...) // unknown type: skipped
	if err := os.WriteFile(segPath(dir, 1), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if n := len(s.Recovered()); n != 0 {
		t.Fatalf("recovered %d batches from orphan records", n)
	}
}

func TestAppendAfterCloseErrors(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Close()
	if err := s.AppendBatch("b1", testConfigs()); err != ErrClosed {
		t.Fatalf("AppendBatch after Close = %v, want ErrClosed", err)
	}
	if err := s.AppendPoint("b1", testPoint(0)); err != ErrClosed {
		t.Fatalf("AppendPoint after Close = %v, want ErrClosed", err)
	}
}
