package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates running statistics (count, mean, min, max, variance)
// using Welford's algorithm, suitable for latency and size distributions.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// ObserveDuration records a duration sample in seconds.
func (s *Summary) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Count returns the number of samples.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g", s.n, s.mean, s.min, s.max, s.StdDev())
}

// Histogram buckets samples into power-of-two bins, for cheap latency
// distribution capture inside the simulator.
type Histogram struct {
	buckets [64]int64
	sum     float64
	count   int64
}

// bucketOf maps v (>= 0) to its power-of-two bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log2(v)) + 1
	if b >= 64 {
		b = 63
	}
	return b
}

// Observe records one non-negative sample.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.sum += v
	h.count++
}

// Count returns the total samples recorded.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper-bound estimate of quantile q in [0,1], using the
// bucket upper edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			if i == 0 {
				return 1
			}
			return math.Pow(2, float64(i))
		}
	}
	return math.Pow(2, 63)
}

// Metrics is a named registry of summaries, shared by simulation components
// so harnesses can print one coherent report.
type Metrics struct {
	summaries map[string]*Summary
	counters  map[string]int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{summaries: make(map[string]*Summary), counters: make(map[string]int64)}
}

// Summary returns (creating if needed) the named summary.
func (m *Metrics) Summary(name string) *Summary {
	s, ok := m.summaries[name]
	if !ok {
		s = &Summary{}
		m.summaries[name] = s
	}
	return s
}

// Add increments a named counter by delta.
func (m *Metrics) Add(name string, delta int64) { m.counters[name] += delta }

// Counter returns the value of a named counter.
func (m *Metrics) Counter(name string) int64 { return m.counters[name] }

// Names returns all registered summary names, sorted.
func (m *Metrics) Names() []string {
	names := make([]string, 0, len(m.summaries))
	for n := range m.summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns all counter names, sorted.
func (m *Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
