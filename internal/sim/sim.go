// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives every timed component in this repository: storage media,
// network fabric, DAOS engines, and the benchmark clients. Simulated
// "processes" are ordinary goroutines that cooperate with a single scheduler
// goroutine through strict channel handoff, so exactly one goroutine runs at
// any instant and event ordering is fully deterministic: events fire in
// (time, insertion-sequence) order.
//
// The design follows the classic process-interaction style (SimPy, CSIM):
// a process calls Sleep, acquires Resources, transfers bytes over SharedBW
// links, or blocks on Queues, and the scheduler advances virtual time between
// those interactions. Virtual time is a time.Duration measured from the start
// of the run.
//
// Two fast paths keep the hot loop cheap without changing observable order:
//
//   - Timer-only interactions avoid goroutine parking entirely. When a
//     process Sleeps and no other event is due at or before its wake time,
//     the kernel advances virtual time inline on the calling goroutine
//     instead of scheduling a wake event and handing control back to the
//     scheduler (two channel handoffs each way).
//
//   - Events are plain pooled structs, not closures. Process wake-ups and
//     SharedBW completions carry a target pointer instead of an allocated
//     func, popped events are recycled through a free list, and the event
//     heap is hand-rolled so pushes do not allocate.
package sim

import (
	"fmt"
	"time"
)

// KernelVersion identifies the observable behavior of the whole simulation
// stack: the event kernel plus every cost model layered on it (fabric,
// media, engine, placement, protocol paths). It participates in every
// content-addressed point-cache key (see internal/cache and the key builder
// in internal/core), so bumping it invalidates all previously cached study
// results at once. Bump it whenever a change anywhere in the simulated
// physics alters any measured number; a pure refactor that keeps traces
// byte-identical does not need a bump. Version 2 is the pooled-event,
// inline-fast-path kernel.
const KernelVersion = 2

// maxTime is the largest representable virtual time; Run uses it as the
// inline-advance horizon.
const maxTime = time.Duration(1<<63 - 1)

// Sim is a discrete-event scheduler. The zero value is not usable; call New.
type Sim struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	free   []*event      // recycled events; popped entries return here
	yield  chan struct{} // process -> scheduler handoff
	nproc  int           // live (spawned, not yet finished) processes
	parked int           // processes blocked on a resource/queue (no pending event)
	rng    *RNG

	// limit is the horizon of the innermost Run/RunUntil drive; the Sleep
	// fast path must not advance time past it.
	limit time.Duration
	// noFastPath disables the inline Sleep fast path (test hook: the
	// regression tests compare fast and slow traces for identical order).
	noFastPath bool
}

// New returns a simulator whose random source is seeded with seed.
func New(seed uint64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Sim) RNG() *RNG { return s.rng }

// event is a scheduled occurrence. Events with equal times fire in insertion
// order, which keeps runs reproducible. Exactly one of fire, proc, or bw is
// set: fire is a generic callback, proc wakes a parked process, and bw checks
// a SharedBW completion (gen guards against stale, superseded completions).
// Events are pooled: once popped they are reset and recycled, so no component
// may retain a popped event.
type event struct {
	at   time.Duration
	seq  uint64
	fire func()
	proc *Proc
	bw   *SharedBW
	gen  uint64
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It avoids
// container/heap's interface{} indirection on the hottest kernel path.
type eventHeap []*event

// Len returns the number of queued events (including stale ones).
func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return e
}

// alloc takes an event from the free list (or allocates one), stamping it
// with the given time and the next insertion sequence.
func (s *Sim) alloc(t time.Duration) *event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(event)
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	return e
}

// recycle resets a popped event and returns it to the free list.
func (s *Sim) recycle(e *event) {
	e.fire = nil
	e.proc = nil
	e.bw = nil
	e.gen = 0
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would violate causality.
func (s *Sim) At(t time.Duration, fn func()) {
	e := s.alloc(t)
	e.fire = fn
	s.queue.push(e)
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// schedProc schedules a wake-up for p at absolute time t without allocating a
// closure: the scheduler resumes p directly when the event pops.
func (s *Sim) schedProc(t time.Duration, p *Proc) {
	e := s.alloc(t)
	e.proc = p
	s.queue.push(e)
}

// schedBW schedules a completion check for b at absolute time t. The check
// fires only if b's generation still equals gen; superseded completions are
// dropped when popped, replacing explicit cancellation.
func (s *Sim) schedBW(t time.Duration, b *SharedBW, gen uint64) {
	e := s.alloc(t)
	e.bw = b
	e.gen = gen
	s.queue.push(e)
}

// dispatch fires a popped event and recycles it.
func (s *Sim) dispatch(e *event) {
	switch {
	case e.proc != nil:
		p := e.proc
		s.recycle(e)
		s.resume(p)
		return
	case e.bw != nil:
		b, gen := e.bw, e.gen
		s.recycle(e)
		if gen == b.gen {
			b.complete()
		}
		return
	case e.fire != nil:
		fn := e.fire
		s.recycle(e)
		fn()
		return
	default:
		s.recycle(e) // cancelled/stale
	}
}

// Run drives the simulation until no events remain. It returns the final
// virtual time. If processes are still blocked on resources when the event
// queue drains, Run panics: that is a deadlock in the modelled system and
// continuing would silently leak goroutines.
func (s *Sim) Run() time.Duration {
	s.limit = maxTime
	for s.queue.Len() > 0 {
		e := s.queue.pop()
		s.now = e.at
		s.dispatch(e)
	}
	if s.parked > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events at %v", s.parked, s.now))
	}
	return s.now
}

// RunUntil drives the simulation until virtual time passes limit or no
// events remain, whichever comes first. Processes may still be live when it
// returns. It reports whether the event queue drained.
func (s *Sim) RunUntil(limit time.Duration) bool {
	s.limit = limit
	for s.queue.Len() > 0 {
		if s.queue[0].at > limit {
			if s.now < limit {
				s.now = limit
			}
			return false
		}
		e := s.queue.pop()
		s.now = e.at
		s.dispatch(e)
	}
	return true
}

// Proc is a handle held by a simulated process. All blocking operations
// (Sleep, Resource.Acquire, Queue.Recv, ...) take the Proc so the kernel can
// park and resume the goroutine.
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Spawn creates a process that begins running body at the current virtual
// time. body executes on its own goroutine but in strict alternation with
// the scheduler, so no locking is required inside the simulation.
func (s *Sim) Spawn(name string, body func(p *Proc)) {
	s.SpawnAt(s.now, name, body)
}

// SpawnAt creates a process that begins running body at virtual time t.
func (s *Sim) SpawnAt(t time.Duration, name string, body func(p *Proc)) {
	p := &Proc{sim: s, name: name, wake: make(chan struct{})}
	s.nproc++
	s.At(t, func() {
		go func() {
			<-p.wake
			body(p)
			s.nproc--
			s.yield <- struct{}{}
		}()
		s.resume(p)
	})
}

// resume hands control to p and waits for it to yield back. Called only from
// the scheduler goroutine (inside an event's dispatch).
func (s *Sim) resume(p *Proc) {
	p.wake <- struct{}{}
	<-s.yield
}

// yieldWait parks the calling process until another event resumes it. The
// caller must have arranged for a wakeup before calling.
func (p *Proc) yieldWait() {
	p.sim.yield <- struct{}{}
	<-p.wake
}

// park blocks the process indefinitely; some other component must call
// unpark to schedule its resumption. The parked counter lets Run distinguish
// a drained simulation from a deadlocked one.
func (p *Proc) park() {
	p.sim.parked++
	p.yieldWait()
	p.sim.parked--
}

// unpark schedules p to resume at the current virtual time.
func (s *Sim) unpark(p *Proc) {
	s.schedProc(s.now, p)
}

// ParkIdle blocks the process until Unpark, without counting toward deadlock
// detection. It is the building block for external blocking primitives
// (mailbox receives, future waits) where indefinite idling is legitimate:
// a server loop parked on an empty mailbox when the run drains is idle, not
// deadlocked. Its goroutine is reclaimed when the process exits.
func (p *Proc) ParkIdle() { p.yieldWait() }

// Unpark schedules a process blocked in ParkIdle to resume at the current
// virtual time.
func (s *Sim) Unpark(p *Proc) { s.unpark(p) }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process still yields, letting same-time events fire
// in order).
//
// Fast path: when no other event is due at or before the wake time (and the
// wake time is within the current drive's horizon), sleeping cannot
// interleave with anything, so the kernel advances virtual time inline and
// returns without parking the goroutine or touching the event heap. Relative
// event order is exactly that of the slow path.
func (p *Proc) Sleep(d time.Duration) {
	s := p.sim
	if d < 0 {
		d = 0
	}
	wake := s.now + d
	// wake >= s.now rejects additive overflow; the slow path's alloc then
	// panics on it loudly instead of moving the clock backward.
	if !s.noFastPath && wake >= s.now && wake <= s.limit && (len(s.queue) == 0 || s.queue[0].at > wake) {
		s.now = wake
		return
	}
	s.schedProc(wake, p)
	p.yieldWait()
}

// Yield relinquishes control until all previously-scheduled events at the
// current instant have fired. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// WaitGroup coordinates fork/join between simulated processes, mirroring
// sync.WaitGroup but driven by virtual time.
type WaitGroup struct {
	sim     *Sim
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Sim) *WaitGroup { return &WaitGroup{sim: s} }

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter, waking all waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			wg.sim.unpark(w)
		}
		wg.waiters = nil
	}
}

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}

// Go spawns body as a child process tracked by the WaitGroup.
func (wg *WaitGroup) Go(name string, body func(p *Proc)) {
	wg.Add(1)
	wg.sim.Spawn(name, func(p *Proc) {
		defer wg.Done()
		body(p)
	})
}
