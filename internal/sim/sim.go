// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives every timed component in this repository: storage media,
// network fabric, DAOS engines, and the benchmark clients. Simulated
// "processes" are ordinary goroutines that cooperate with a single scheduler
// goroutine through strict channel handoff, so exactly one goroutine runs at
// any instant and event ordering is fully deterministic: events fire in
// (time, insertion-sequence) order.
//
// The design follows the classic process-interaction style (SimPy, CSIM):
// a process calls Sleep, acquires Resources, transfers bytes over SharedBW
// links, or blocks on Queues, and the scheduler advances virtual time between
// those interactions. Virtual time is a time.Duration measured from the start
// of the run.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Sim is a discrete-event scheduler. The zero value is not usable; call New.
type Sim struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	yield  chan struct{} // process -> scheduler handoff
	nproc  int           // live (spawned, not yet finished) processes
	parked int           // processes blocked on a resource/queue (no pending event)
	rng    *RNG
}

// New returns a simulator whose random source is seeded with seed.
func New(seed uint64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Sim) RNG() *RNG { return s.rng }

// event is a scheduled callback. Events with equal times fire in insertion
// order, which keeps runs reproducible.
type event struct {
	at   time.Duration
	seq  uint64
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would violate causality.
func (s *Sim) At(t time.Duration, fn func()) *event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &event{at: t, seq: s.seq, fire: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *event { return s.At(s.now+d, fn) }

// cancel marks an event as a no-op. The heap entry stays until popped.
func (e *event) cancel() { e.fire = nil }

// Run drives the simulation until no events remain. It returns the final
// virtual time. If processes are still blocked on resources when the event
// queue drains, Run panics: that is a deadlock in the modelled system and
// continuing would silently leak goroutines.
func (s *Sim) Run() time.Duration {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.fire == nil {
			continue // cancelled
		}
		s.now = e.at
		e.fire()
	}
	if s.parked > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events at %v", s.parked, s.now))
	}
	return s.now
}

// RunUntil drives the simulation until virtual time passes limit or no
// events remain, whichever comes first. Processes may still be live when it
// returns. It reports whether the event queue drained.
func (s *Sim) RunUntil(limit time.Duration) bool {
	for s.queue.Len() > 0 {
		if s.queue[0].at > limit {
			s.now = limit
			return false
		}
		e := heap.Pop(&s.queue).(*event)
		if e.fire == nil {
			continue
		}
		s.now = e.at
		e.fire()
	}
	return true
}

// Proc is a handle held by a simulated process. All blocking operations
// (Sleep, Resource.Acquire, Queue.Recv, ...) take the Proc so the kernel can
// park and resume the goroutine.
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Spawn creates a process that begins running body at the current virtual
// time. body executes on its own goroutine but in strict alternation with
// the scheduler, so no locking is required inside the simulation.
func (s *Sim) Spawn(name string, body func(p *Proc)) {
	s.SpawnAt(s.now, name, body)
}

// SpawnAt creates a process that begins running body at virtual time t.
func (s *Sim) SpawnAt(t time.Duration, name string, body func(p *Proc)) {
	p := &Proc{sim: s, name: name, wake: make(chan struct{})}
	s.nproc++
	s.At(t, func() {
		go func() {
			<-p.wake
			body(p)
			s.nproc--
			s.yield <- struct{}{}
		}()
		s.resume(p)
	})
}

// resume hands control to p and waits for it to yield back. Called only from
// the scheduler goroutine (inside an event's fire).
func (s *Sim) resume(p *Proc) {
	p.wake <- struct{}{}
	<-s.yield
}

// yieldWait parks the calling process until another event resumes it. The
// caller must have arranged for a wakeup before calling.
func (p *Proc) yieldWait() {
	p.sim.yield <- struct{}{}
	<-p.wake
}

// park blocks the process indefinitely; some other component must call
// unpark to schedule its resumption. The parked counter lets Run distinguish
// a drained simulation from a deadlocked one.
func (p *Proc) park() {
	p.sim.parked++
	p.yieldWait()
	p.sim.parked--
}

// unpark schedules p to resume at the current virtual time.
func (s *Sim) unpark(p *Proc) {
	s.At(s.now, func() { s.resume(p) })
}

// ParkIdle blocks the process until Unpark, without counting toward deadlock
// detection. It is the building block for external blocking primitives
// (mailbox receives, future waits) where indefinite idling is legitimate:
// a server loop parked on an empty mailbox when the run drains is idle, not
// deadlocked. Its goroutine is reclaimed when the process exits.
func (p *Proc) ParkIdle() { p.yieldWait() }

// Unpark schedules a process blocked in ParkIdle to resume at the current
// virtual time.
func (s *Sim) Unpark(p *Proc) { s.unpark(p) }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process still yields, letting same-time events fire
// in order).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.At(p.sim.now+d, func() { p.sim.resume(p) })
	p.yieldWait()
}

// Yield relinquishes control until all previously-scheduled events at the
// current instant have fired. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// WaitGroup coordinates fork/join between simulated processes, mirroring
// sync.WaitGroup but driven by virtual time.
type WaitGroup struct {
	sim     *Sim
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Sim) *WaitGroup { return &WaitGroup{sim: s} }

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter, waking all waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			wg.sim.unpark(w)
		}
		wg.waiters = nil
	}
}

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}

// Go spawns body as a child process tracked by the WaitGroup.
func (wg *WaitGroup) Go(name string, body func(p *Proc)) {
	wg.Add(1)
	wg.sim.Spawn(name, func(p *Proc) {
		defer wg.Done()
		body(p)
	})
}
