// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives every timed component in this repository: storage media,
// network fabric, DAOS engines, and the benchmark clients. Simulated
// "processes" are ordinary goroutines that pass a single control token
// between themselves through strict channel handoff, so exactly one
// goroutine runs at any instant and event ordering is fully deterministic:
// events fire in (time, insertion-sequence) order. There is no dedicated
// scheduler goroutine — whichever goroutine holds the token drives the
// dispatch loop (see schedule) and wakes the next process directly.
//
// The design follows the classic process-interaction style (SimPy, CSIM):
// a process calls Sleep, acquires Resources, transfers bytes over SharedBW
// links, or blocks on Queues, and the scheduler advances virtual time between
// those interactions. Virtual time is a time.Duration measured from the start
// of the run.
//
// Three mechanisms keep the hot loop cheap without changing observable order:
//
//   - Timer-only interactions avoid goroutine parking entirely. When a
//     process Sleeps and no other event is due at or before its wake time,
//     the kernel advances virtual time inline on the calling goroutine
//     instead of scheduling a wake event and handing control back to the
//     scheduler (two channel handoffs each way). A Transfer that joins an
//     idle SharedBW link gets the same treatment: a sole flow is a pure
//     timer (size over the per-flow rate), so the kernel advances time
//     inline with no event, no flow record, and no park/unpark.
//
//   - Events are plain pooled structs, not closures. Process wake-ups and
//     SharedBW completions carry a target pointer instead of an allocated
//     func, popped events are recycled through a free list (SharedBW flow
//     records are pooled the same way), and the event heap is hand-rolled
//     so pushes do not allocate.
//
//   - Same-instant wake-ups bypass the event heap. Unparking a process
//     always resumes it at the current instant, so unpark appends to a
//     FIFO ready-run queue instead of allocating a heap event; the
//     dispatch loop merges the ready queue with the heap by (time, seq),
//     which drains a wave of N simultaneous completions with N O(1) pops
//     instead of N heap push/pop round trips. Entries carry the sequence
//     number they would have been stamped with, so firing order is exactly
//     that of the heap-event formulation.
//
//   - Process goroutines come from a per-Sim arena. A finished process
//     body parks its goroutine (and its Proc shell and wake channel) on a
//     free stack instead of exiting, and the next Spawn revives it with a
//     single token send — no goroutine or stack creation, no allocation.
//     The control token passes through one-slot buffered channels, so a
//     handoff never blocks the sender: the waker deposits the token and
//     proceeds straight to its own park, one blocking channel op per
//     park/resume cycle instead of a send rendezvous plus a receive (and
//     the buffer is what lets a finishing goroutine's own dispatch drive
//     revive that same goroutine for a pending spawn). Sim.Reset rewinds a
//     drained simulator to its post-New state while keeping the arena, the
//     event and flow pools, and the heap and ready-queue storage, so a
//     sweep can run thousands of simulations on one kernel's allocations
//     (see Arena).
package sim

import (
	"fmt"
	"time"
)

// KernelVersion identifies the observable behavior of the whole simulation
// stack: the event kernel plus every cost model layered on it (fabric,
// media, engine, placement, protocol paths). It participates in every
// content-addressed point-cache key (see internal/cache and the key builder
// in internal/core), so bumping it invalidates all previously cached study
// results at once. Bump it whenever a change anywhere in the simulated
// physics alters any measured number; a pure refactor that keeps traces
// byte-identical does not need a bump. Version 2 is the pooled-event,
// inline-fast-path kernel. Version 3 adds the zero-copy scatter-gather
// data path with no-materialize reads (value-neutral) and the O(1)
// virtual-time fair-share accounting in SharedBW, whose floating-point
// reordering can shift completion instants by a nanosecond.
const KernelVersion = 3

// maxTime is the largest representable virtual time; Run uses it as the
// inline-advance horizon.
const maxTime = time.Duration(1<<63 - 1)

// Sim is a discrete-event scheduler. The zero value is not usable; call New.
type Sim struct {
	now      time.Duration
	seq      uint64
	queue    eventHeap
	free     []*event      // recycled events; popped entries return here
	flowFree []*flow       // recycled SharedBW flow records
	ready    []readyProc   // procs unparked at the current instant, FIFO
	rhead    int           // index of the first undrained ready entry
	done     chan struct{} // control token return to the Run/RunUntil caller
	nproc    int           // live (spawned, not yet finished) processes
	parked   int           // processes blocked on a resource/queue (no pending event)
	rng      *RNG

	// idle is the goroutine arena's free stack: Proc shells whose
	// goroutines finished a body and parked awaiting reuse. nworkers counts
	// every arena goroutine ever started and not yet drained (idle + live),
	// bounding the arena for leak checks. drainAck, set only inside Drain,
	// is where exiting workers acknowledge their shutdown token.
	idle     []*Proc
	nworkers int
	drainAck chan struct{}

	// limit is the horizon of the innermost Run/RunUntil drive; the Sleep
	// fast path must not advance time past it.
	limit time.Duration
	// noFastPath disables the inline fast paths — Sleep and uncontended
	// SharedBW.Transfer — (test hook: the regression tests compare fast
	// and slow traces for identical order).
	noFastPath bool
}

// New returns a simulator whose random source is seeded with seed.
func New(seed uint64) *Sim {
	return &Sim{
		// Buffered so the dispatch chain can return the control token even
		// while it is itself the goroutine driving Run (empty simulation).
		done: make(chan struct{}, 1),
		rng:  NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Sim) RNG() *RNG { return s.rng }

// event is a scheduled occurrence. Events with equal times fire in insertion
// order, which keeps runs reproducible. Exactly one of fire, proc, spawn, or
// bw is set: fire is a generic callback, proc wakes a parked process, spawn
// starts a new process (the event carries the body and name; the process
// draws its goroutine from the arena only when the event fires, so a batch
// of pre-scheduled future processes reuses the goroutines of the ones that
// finished before them), and bw checks a SharedBW completion (gen guards
// against stale, superseded completions). Events are pooled: once popped
// they are reset and recycled, so no component may retain a popped event.
type event struct {
	at    time.Duration
	seq   uint64
	fire  func()
	proc  *Proc
	spawn func(p *Proc)
	sname string
	bw    *SharedBW
	gen   uint64
	// idx is the event's position in the heap (-1 when unqueued); it lets
	// SharedBW reschedule its owned completion event in place.
	idx int
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It avoids
// container/heap's interface{} indirection on the hottest kernel path and
// tracks each event's position so queued events can be re-keyed in place.
type eventHeap []*event

// Len returns the number of queued events.
func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].idx = i
		h[parent].idx = parent
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		h[i].idx = i
		h[small].idx = small
		i = small
	}
}

func (h *eventHeap) push(e *event) {
	e.idx = len(*h)
	*h = append(*h, e)
	h.siftUp(e.idx)
}

// fix restores heap order after the event at position i was re-keyed.
func (h eventHeap) fix(i int) {
	h.siftDown(i)
	h.siftUp(i)
}

func (h *eventHeap) pop() *event {
	q := *h
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].idx = 0
	q[n] = nil
	q = q[:n]
	*h = q
	q.siftDown(0)
	e.idx = -1 // after the swap: popping the last element must leave -1
	return e
}

// alloc takes an event from the free list (or allocates one), stamping it
// with the given time and the next insertion sequence.
func (s *Sim) alloc(t time.Duration) *event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(event)
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	return e
}

// recycle resets a popped event and returns it to the free list.
func (s *Sim) recycle(e *event) {
	e.fire = nil
	e.proc = nil
	e.spawn = nil
	e.sname = ""
	e.bw = nil
	e.gen = 0
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would violate causality.
func (s *Sim) At(t time.Duration, fn func()) {
	e := s.alloc(t)
	e.fire = fn
	s.queue.push(e)
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// schedProc schedules a wake-up for p at absolute time t without allocating a
// closure: the dispatch loop resumes p directly when the event pops.
func (s *Sim) schedProc(t time.Duration, p *Proc) {
	e := s.alloc(t)
	e.proc = p
	s.queue.push(e)
}

// schedBW (re)schedules b's completion check for absolute time t. Each
// SharedBW owns one persistent event: rescheduling while it is still queued
// updates it in place and re-sifts (an arrival wave that supersedes the
// completion N times costs N sifts, not N pushes plus N stale pops later),
// and the event is pushed afresh only after it has popped. The event always
// carries a freshly consumed sequence number, exactly as if a new event had
// been allocated, so heap order is identical to the push-and-supersede
// formulation. Owned events never enter the recycling pool.
func (s *Sim) schedBW(t time.Duration, b *SharedBW) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := b.ev
	if e == nil {
		e = &event{bw: b, idx: -1}
		b.ev = e
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	e.gen = b.gen
	if e.idx >= 0 {
		s.queue.fix(e.idx)
	} else {
		s.queue.push(e)
	}
}

// readyProc is a pending same-instant resumption. seq is the insertion
// sequence the wake-up would have carried as a heap event, so the dispatch
// loop can merge the ready queue with the heap in exact (time, seq) order.
type readyProc struct {
	seq  uint64
	proc *Proc
}

// readyLen returns the number of undrained ready entries.
func (s *Sim) readyLen() int { return len(s.ready) - s.rhead }

// popReady removes the front ready entry. The backing slice is reclaimed
// wholesale once drained, so a completion wave costs one append and one
// index bump per wake-up.
func (s *Sim) popReady() {
	s.ready[s.rhead].proc = nil
	s.rhead++
	if s.rhead == len(s.ready) {
		s.ready = s.ready[:0]
		s.rhead = 0
	}
}

// readyFirst reports whether the front ready entry precedes the heap root
// in (time, seq) order. Ready entries are always stamped at the current
// instant, and the heap can never hold an event in the past, so the heap
// wins only with an event at now bearing a smaller sequence. Must not be
// called with an empty ready queue.
func (s *Sim) readyFirst() bool {
	return len(s.queue) == 0 || s.queue[0].at > s.now || s.queue[0].seq > s.ready[s.rhead].seq
}

// schedule runs the dispatch loop on the calling goroutine until control
// must pass elsewhere. The kernel has no dedicated scheduler goroutine:
// whichever goroutine holds the control token (the Run/RunUntil caller at
// first, then each parking or finishing process in turn) drives dispatch
// itself, and a process wake-up is a direct goroutine-to-goroutine handoff
// (one channel send) instead of a round trip through a scheduler. self is
// the process whose goroutine is driving, or nil for the Run caller; when
// the next event is self's own wake-up, schedule simply returns true and no
// channel operation happens at all. Exactly one goroutine runs kernel code
// at any instant, and event order is identical to a centralized loop: the
// handoff only changes which stack executes the same (time, seq) sequence.
//
// schedule returns true if control stays with the caller (self resumed). It
// returns false after handing the token to another process or, when the
// drive ends (queue drained, or the next event lies past s.limit), after
// returning the token to the Run/RunUntil caller through s.done.
func (s *Sim) schedule(self *Proc) bool {
	for {
		if s.rhead < len(s.ready) {
			if s.readyFirst() {
				p := s.ready[s.rhead].proc
				s.popReady()
				if p == self {
					return true
				}
				p.wake <- struct{}{}
				return false
			}
		} else if len(s.queue) == 0 {
			s.done <- struct{}{}
			return false
		}
		if s.queue[0].at > s.limit {
			if s.now < s.limit {
				s.now = s.limit
			}
			s.done <- struct{}{}
			return false
		}
		e := s.queue.pop()
		s.now = e.at
		switch {
		case e.proc != nil:
			p := e.proc
			s.recycle(e)
			if p == self {
				return true
			}
			p.wake <- struct{}{}
			return false
		case e.bw != nil:
			// Owned by the SharedBW (see schedBW); never recycled.
			if e.gen == e.bw.gen {
				e.bw.complete()
			}
		case e.spawn != nil:
			// Bind the new process to an arena goroutine now, at fire time:
			// shells freed by processes that finished earlier in the run are
			// on the free stack and get reused. The goroutine is already
			// parked at its run loop's receive, and the wake channel's
			// one-slot buffer makes the handoff safe even when the popped
			// shell belongs to the goroutine driving this very dispatch — a
			// finishing process immediately reincarnated deposits its own
			// token, returns from schedule, and collects it at the loop top.
			p := s.allocProc()
			p.name = e.sname
			p.body = e.spawn
			s.recycle(e)
			p.wake <- struct{}{}
			return false
		case e.fire != nil:
			fn := e.fire
			s.recycle(e)
			fn()
		default:
			s.recycle(e) // cancelled/stale
		}
	}
}

// Run drives the simulation until no events remain. It returns the final
// virtual time. If processes are still blocked on resources when the event
// queue drains, Run panics: that is a deadlock in the modelled system and
// continuing would silently leak goroutines.
func (s *Sim) Run() time.Duration {
	s.limit = maxTime
	s.schedule(nil)
	<-s.done
	if s.parked > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events at %v", s.parked, s.now))
	}
	return s.now
}

// RunUntil drives the simulation until virtual time passes limit or no
// events remain, whichever comes first. Processes may still be live when it
// returns. It reports whether the event queue drained.
func (s *Sim) RunUntil(limit time.Duration) bool {
	s.limit = limit
	s.schedule(nil)
	<-s.done
	return len(s.queue) == 0
}

// Quiesced reports whether the simulation has fully drained: no live or
// parked processes, no pending events, no ready resumptions. A quiesced Sim
// may be rewound with Reset.
func (s *Sim) Quiesced() bool {
	return s.nproc == 0 && s.parked == 0 && len(s.queue) == 0 && s.readyLen() == 0
}

// Reset rewinds a quiesced simulator to the state New(seed) would return,
// while keeping every allocation worth keeping: the event and flow free
// lists, the heap and ready-queue backing arrays, and the arena of parked
// process goroutines. A run on a Reset simulator is byte-identical to a run
// on a fresh one — virtual time, the insertion-sequence counter, and the
// random stream all restart from their seeds, and pooled storage carries no
// observable state (recycled events and flows are cleared, and the heap and
// ready backings are length-zero). Reset panics on a simulator that has not
// quiesced: live processes cannot be rewound.
func (s *Sim) Reset(seed uint64) {
	if !s.Quiesced() {
		panic(fmt.Sprintf("sim: Reset of a non-quiesced simulator: %d live, %d parked, %d events, %d ready",
			s.nproc, s.parked, len(s.queue), s.readyLen()))
	}
	s.now = 0
	s.seq = 0
	s.limit = 0
	s.rng.Seed(seed)
}

// Drain stops the arena's idle worker goroutines and waits for them to
// exit. It must only be called while no simulation is being driven — the
// natural moment is a sweep worker retiring its Sim. Live processes (a
// non-quiesced simulator) are untouched and their goroutines are not
// reclaimable; a later Spawn simply regrows the arena.
func (s *Sim) Drain() {
	k := len(s.idle)
	if k == 0 {
		return
	}
	s.drainAck = make(chan struct{})
	for i, p := range s.idle {
		p.wake <- struct{}{} // body == nil: the worker exits and acks
		s.idle[i] = nil
	}
	s.idle = s.idle[:0]
	for i := 0; i < k; i++ {
		<-s.drainAck
	}
	s.drainAck = nil
	s.nworkers -= k
}

// Workers returns the number of live arena goroutines (parked idle shells
// plus running processes). It exists for leak tests: after a quiesced Sim
// is drained it must be zero.
func (s *Sim) Workers() int { return s.nworkers }

// Proc is a handle held by a simulated process. All blocking operations
// (Sleep, Resource.Acquire, Queue.Recv, ...) take the Proc so the kernel can
// park and resume the goroutine.
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}
	body func(p *Proc)
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Spawn creates a process that begins running body at the current virtual
// time. body executes on its own goroutine but in strict alternation with
// every other process, so no locking is required inside the simulation.
func (s *Sim) Spawn(name string, body func(p *Proc)) {
	s.SpawnAt(s.now, name, body)
}

// SpawnAt creates a process that begins running body at virtual time t. The
// process is bound to an arena goroutine — a shell recycled from a finished
// process when one is free, a fresh goroutine otherwise — when its spawn
// event fires, so processes scheduled for the future reuse the goroutines
// of processes that finish before then.
func (s *Sim) SpawnAt(t time.Duration, name string, body func(p *Proc)) {
	s.nproc++
	e := s.alloc(t)
	e.spawn = body
	e.sname = name
	s.queue.push(e)
}

// allocProc takes a parked process shell from the arena's free stack, or
// starts a fresh worker goroutine (which immediately parks at its run
// loop's receive). Writing the shell's name and body after allocProc is
// safe even though the worker goroutine is live: it reads them only after
// receiving the spawn handoff, which the channel orders after the writes.
func (s *Sim) allocProc() *Proc {
	if n := len(s.idle); n > 0 {
		p := s.idle[n-1]
		s.idle[n-1] = nil
		s.idle = s.idle[:n-1]
		return p
	}
	p := &Proc{sim: s, wake: make(chan struct{}, 1)}
	s.nworkers++
	go p.run()
	return p
}

// run is an arena goroutine's lifetime: for each assignment, wait for the
// spawn handoff, execute the body, park the shell on the free stack, and
// keep driving the dispatch loop with the token the body was left holding.
// A handoff with no body pending is the drain signal: the goroutine exits
// after acknowledging it.
func (p *Proc) run() {
	for {
		<-p.wake
		body := p.body
		if body == nil {
			p.sim.drainAck <- struct{}{}
			return
		}
		p.body = nil
		body(p)
		s := p.sim
		s.nproc--
		// Still holding the token, so pushing the shell is exclusive; a
		// spawn event dispatched just below may pop it right back and
		// re-arm p.wake through its one-slot buffer.
		s.idle = append(s.idle, p)
		s.schedule(nil)
	}
}

// yieldWait parks the calling process until another event resumes it. The
// caller must have arranged for a wakeup before calling. The parking
// goroutine drives the dispatch loop itself until the token moves on; if the
// very next event is its own wake-up, it returns without blocking.
func (p *Proc) yieldWait() {
	if p.sim.schedule(p) {
		return
	}
	<-p.wake
}

// park blocks the process indefinitely; some other component must call
// unpark to schedule its resumption. The parked counter lets Run distinguish
// a drained simulation from a deadlocked one.
func (p *Proc) park() {
	p.sim.parked++
	p.yieldWait()
	p.sim.parked--
}

// unpark schedules p to resume at the current virtual time. It enqueues on
// the ready-run queue rather than the event heap: the resumption is stamped
// with the sequence number a heap event would have carried, so the dispatch
// loop fires it in the identical (time, seq) slot at O(1) cost. When the
// backing array fills while at least half of it is drained prefix, the live
// tail compacts to the front instead of growing, so a workload whose ready
// queue never fully drains still settles into zero steady-state allocation.
// This hand-inlines fifo.Push's compaction scheme (the ready queue stays
// hand-rolled because readyFirst peeks the head on the dispatch hot path);
// keep the two in sync.
func (s *Sim) unpark(p *Proc) {
	if len(s.ready) == cap(s.ready) && s.rhead > 0 && s.rhead >= cap(s.ready)/2 {
		n := copy(s.ready, s.ready[s.rhead:])
		for i := n; i < len(s.ready); i++ {
			s.ready[i] = readyProc{}
		}
		s.ready = s.ready[:n]
		s.rhead = 0
	}
	s.ready = append(s.ready, readyProc{seq: s.seq, proc: p})
	s.seq++
}

// ParkIdle blocks the process until Unpark, without counting toward deadlock
// detection. It is the building block for external blocking primitives
// (mailbox receives, future waits) where indefinite idling is legitimate:
// a server loop parked on an empty mailbox when the run drains is idle, not
// deadlocked. Its goroutine is reclaimed when the process exits.
func (p *Proc) ParkIdle() { p.yieldWait() }

// Unpark schedules a process blocked in ParkIdle to resume at the current
// virtual time.
func (s *Sim) Unpark(p *Proc) { s.unpark(p) }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process still yields, letting same-time events fire
// in order).
//
// Fast path: when no other event is due at or before the wake time (and the
// wake time is within the current drive's horizon), sleeping cannot
// interleave with anything, so the kernel advances virtual time inline and
// returns without parking the goroutine or touching the event heap. Relative
// event order is exactly that of the slow path.
func (p *Proc) Sleep(d time.Duration) {
	s := p.sim
	if d < 0 {
		d = 0
	}
	wake := s.now + d
	// wake >= s.now rejects additive overflow; the slow path's alloc then
	// panics on it loudly instead of moving the clock backward. A pending
	// ready entry is an event due now, so it also forces the slow path.
	if !s.noFastPath && wake >= s.now && wake <= s.limit && s.rhead == len(s.ready) && (len(s.queue) == 0 || s.queue[0].at > wake) {
		s.now = wake
		return
	}
	s.schedProc(wake, p)
	p.yieldWait()
}

// Yield relinquishes control until all previously-scheduled events at the
// current instant have fired. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// WaitGroup coordinates fork/join between simulated processes, mirroring
// sync.WaitGroup but driven by virtual time.
type WaitGroup struct {
	sim     *Sim
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Sim) *WaitGroup { return &WaitGroup{sim: s} }

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter, waking all waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			wg.sim.unpark(w)
		}
		wg.waiters = nil
	}
}

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}

// Go spawns body as a child process tracked by the WaitGroup.
func (wg *WaitGroup) Go(name string, body func(p *Proc)) {
	wg.Add(1)
	wg.sim.Spawn(name, func(p *Proc) {
		defer wg.Done()
		body(p)
	})
}
