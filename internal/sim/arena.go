package sim

// Arena owns a reusable simulator, so a worker that executes many
// simulations back to back (a study sweep pool worker, a daosd worker
// slot) pays the kernel's setup cost once instead of per run: consecutive
// Get calls hand back the same Sim with its event-heap and ready-queue
// storage, event and flow free lists, RNG, and arena of parked process
// goroutines intact, rewound to a fresh seed. Results are byte-identical
// to fresh-Sim runs — Reset restores exactly the observable state New
// creates, which the kernel's reset-isolation tests pin.
//
// An Arena serves one caller at a time and has no internal locking: the
// intended owner is a single worker goroutine that holds it for its
// lifetime and calls Drain when it retires. A simulation that fails to
// quiesce (live or parked processes left behind at the next Get) cannot
// be rewound; Get discards it — its goroutines are not reclaimable — and
// starts over with a fresh Sim, counting the event in Discarded.
type Arena struct {
	sim *Sim

	// Discarded counts simulators abandoned because they had not quiesced
	// when the next Get needed them. A non-zero count means some run
	// leaked processes — worth investigating, since each discard also
	// strands that simulator's parked goroutines.
	Discarded int
}

// NewArena returns an empty arena; the first Get populates it.
func NewArena() *Arena { return &Arena{} }

// Get returns a simulator seeded with seed, reusing the arena's kernel
// state when the previous simulation quiesced and building a fresh Sim
// otherwise.
func (a *Arena) Get(seed uint64) *Sim {
	if a.sim != nil {
		if a.sim.Quiesced() {
			a.sim.Reset(seed)
			return a.sim
		}
		a.sim.Drain() // reclaim at least the idle goroutines
		a.Discarded++
	}
	a.sim = New(seed)
	return a.sim
}

// Drain releases the arena's idle worker goroutines (waiting for them to
// exit) and drops the held simulator. Call it when the owning worker
// retires; leak tests pin that goroutine counts return to baseline after
// a drained sweep.
func (a *Arena) Drain() {
	if a.sim == nil {
		return
	}
	a.sim.Drain()
	a.sim = nil
}
