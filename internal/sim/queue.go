package sim

// Queue is an unbounded FIFO message queue between simulated processes,
// playing the role Go channels play for real goroutines. Receivers block in
// arrival order when the queue is empty; senders never block. It is the
// mailbox primitive used by the Raft nodes and RPC dispatchers.
type Queue struct {
	sim     *Sim
	name    string
	items   []interface{}
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue bound to s.
func NewQueue(s *Sim, name string) *Queue {
	return &Queue{sim: s, name: name}
}

// Send enqueues v and wakes the oldest blocked receiver, if any. Sending on
// a closed queue panics, mirroring Go channel semantics.
func (q *Queue) Send(v interface{}) {
	if q.closed {
		panic("sim: send on closed queue " + q.name)
	}
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.sim.unpark(w)
	}
}

// Recv dequeues the oldest message, blocking p until one is available. The
// second result is false if the queue was closed and drained.
func (q *Queue) Recv(p *Proc) (interface{}, bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.waiters = append(q.waiters, p)
		p.ParkIdle() // idle, not deadlocked: server loops legitimately wait here
	}
	v := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return v, true
}

// TryRecv dequeues without blocking; ok is false when empty.
func (q *Queue) TryRecv() (v interface{}, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return v, true
}

// Close marks the queue closed and wakes every blocked receiver so it can
// observe the closure.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		q.sim.unpark(w)
	}
	q.waiters = nil
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.items) }
