package sim

// Queue is an unbounded FIFO message queue between simulated processes,
// playing the role Go channels play for real goroutines. Receivers block in
// arrival order when the queue is empty; senders never block. It is the
// mailbox primitive used by the Raft nodes and RPC dispatchers.
//
// Both the message buffer and the receiver line are compacting head-indexed
// fifos, so a long-lived mailbox settles into zero steady-state allocation
// even when it never fully drains.
type Queue struct {
	sim     *Sim
	name    string
	items   fifo[interface{}]
	waiters fifo[*Proc]
	closed  bool
}

// NewQueue returns an empty queue bound to s.
func NewQueue(s *Sim, name string) *Queue {
	return &Queue{sim: s, name: name}
}

// Send enqueues v and wakes the oldest blocked receiver, if any. Sending on
// a closed queue panics, mirroring Go channel semantics.
func (q *Queue) Send(v interface{}) {
	if q.closed {
		panic("sim: send on closed queue " + q.name)
	}
	q.items.Push(v)
	if q.waiters.Len() > 0 {
		q.sim.unpark(q.waiters.Pop())
	}
}

// Recv dequeues the oldest message, blocking p until one is available. The
// second result is false if the queue was closed and drained.
func (q *Queue) Recv(p *Proc) (interface{}, bool) {
	for q.items.Len() == 0 {
		if q.closed {
			return nil, false
		}
		q.waiters.Push(p)
		p.ParkIdle() // idle, not deadlocked: server loops legitimately wait here
	}
	return q.items.Pop(), true
}

// TryRecv dequeues without blocking; ok is false when empty.
func (q *Queue) TryRecv() (v interface{}, ok bool) {
	if q.items.Len() == 0 {
		return nil, false
	}
	return q.items.Pop(), true
}

// Close marks the queue closed and wakes every blocked receiver so it can
// observe the closure.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for q.waiters.Len() > 0 {
		q.sim.unpark(q.waiters.Pop())
	}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return q.items.Len() }
