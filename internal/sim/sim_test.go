package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.At(10*time.Millisecond, func() { order = append(order, 11) }) // ties fire in insertion order
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end time = %v, want 30ms", end)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var stamps []time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(5 * time.Millisecond)
			stamps = append(stamps, p.Now())
		}
	})
	s.Run()
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond}
	for i, w := range want {
		if stamps[i] != w {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestSpawnInterleaving(t *testing.T) {
	s := New(1)
	var trace []string
	for _, name := range []string{"a", "b"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			for i := 0; i < 2; i++ {
				trace = append(trace, name)
				p.Sleep(time.Millisecond)
			}
		})
	}
	s.Run()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestWaitGroupJoin(t *testing.T) {
	s := New(1)
	var doneAt time.Duration
	s.Spawn("parent", func(p *Proc) {
		wg := NewWaitGroup(s)
		for i := 1; i <= 3; i++ {
			d := time.Duration(i) * 10 * time.Millisecond
			wg.Go("child", func(c *Proc) { c.Sleep(d) })
		}
		wg.Wait(p)
		doneAt = p.Now()
	})
	s.Run()
	if doneAt != 30*time.Millisecond {
		t.Fatalf("join at %v, want 30ms", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	s := New(1)
	ran := false
	s.Spawn("p", func(p *Proc) {
		wg := NewWaitGroup(s)
		wg.Wait(p) // must not block
		ran = true
	})
	s.Run()
	if !ran {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

func TestResourceFIFO(t *testing.T) {
	s := New(1)
	r := NewResource(s, "srv", 1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(10 * time.Millisecond)
			r.Release()
		})
	}
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end = %v, want 30ms (serialized)", end)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if r.MaxQueue != 2 {
		t.Fatalf("MaxQueue = %d, want 2", r.MaxQueue)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New(1)
	r := NewResource(s, "srv", 2)
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *Proc) { r.Use(p, 10*time.Millisecond) })
	}
	end := s.Run()
	if end != 20*time.Millisecond {
		t.Fatalf("end = %v, want 20ms (two waves of two)", end)
	}
}

func TestResourceUtilisation(t *testing.T) {
	s := New(1)
	r := NewResource(s, "srv", 1)
	s.Spawn("w", func(p *Proc) {
		r.Use(p, 30*time.Millisecond)
		p.Sleep(10 * time.Millisecond)
	})
	s.Run()
	got := r.Utilisation()
	if got < 0.74 || got > 0.76 {
		t.Fatalf("utilisation = %v, want 0.75", got)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	s := New(1)
	r := NewResource(s, "srv", 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestSharedBWSingleFlow(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0) // 1 GB/s
	var done time.Duration
	s.Spawn("t", func(p *Proc) {
		bw.Transfer(p, 500_000_000) // 0.5 GB
		done = p.Now()
	})
	s.Run()
	want := 500 * time.Millisecond
	if diff := done - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("transfer completed at %v, want ~%v", done, want)
	}
}

func TestSharedBWFairSharing(t *testing.T) {
	// Two equal flows on a shared link take twice the solo duration.
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0)
	finish := map[string]time.Duration{}
	for _, name := range []string{"a", "b"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			bw.Transfer(p, 1e9)
			finish[name] = p.Now()
		})
	}
	s.Run()
	for name, at := range finish {
		if at < 1990*time.Millisecond || at > 2010*time.Millisecond {
			t.Fatalf("flow %s finished at %v, want ~2s", name, at)
		}
	}
	if got := bw.MaxFlows(); got != 2 {
		t.Fatalf("MaxFlows = %d, want 2", got)
	}
}

func TestSharedBWLateJoiner(t *testing.T) {
	// Flow A (1 GB) starts alone; flow B (0.25 GB) joins at t=0.5s.
	// A runs solo for 0.5s (0.5 GB done), then shares: each gets 0.5 GB/s.
	// B finishes at 0.5 + 0.25/0.5 = 1.0s; A then has 0.25 GB left at full
	// rate: finishes at 1.25s.
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0)
	var aDone, bDone time.Duration
	s.Spawn("a", func(p *Proc) {
		bw.Transfer(p, 1e9)
		aDone = p.Now()
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(500 * time.Millisecond)
		bw.Transfer(p, 25e7)
		bDone = p.Now()
	})
	s.Run()
	if bDone < 995*time.Millisecond || bDone > 1005*time.Millisecond {
		t.Fatalf("b finished at %v, want ~1s", bDone)
	}
	if aDone < 1245*time.Millisecond || aDone > 1255*time.Millisecond {
		t.Fatalf("a finished at %v, want ~1.25s", aDone)
	}
}

func TestSharedBWPerFlowCap(t *testing.T) {
	// 10 GB/s link, 1 GB/s per-flow cap, one 1 GB flow: takes ~1s not 0.1s.
	s := New(1)
	bw := NewSharedBW(s, "link", 10e9, 1e9)
	var done time.Duration
	s.Spawn("t", func(p *Proc) {
		bw.Transfer(p, 1e9)
		done = p.Now()
	})
	s.Run()
	if done < 995*time.Millisecond || done > 1005*time.Millisecond {
		t.Fatalf("capped transfer finished at %v, want ~1s", done)
	}
}

func TestSharedBWConservation(t *testing.T) {
	// Total bytes moved equals total bytes requested exactly, regardless of
	// overlap: completed flows are booked at their requested size, never at
	// the overshooting credit of the nanosecond-rounded completion instant.
	s := New(42)
	bw := NewSharedBW(s, "link", 3e9, 0)
	var total int64
	rng := NewRNG(7)
	for i := 0; i < 50; i++ {
		size := int64(rng.Intn(1_000_000) + 1)
		start := time.Duration(rng.Intn(1000)) * time.Millisecond
		total += size
		s.Spawn("t", func(p *Proc) {
			p.Sleep(start)
			bw.Transfer(p, size)
		})
	}
	s.Run()
	if moved := bw.BytesMoved(); moved != float64(total) {
		t.Fatalf("moved %v bytes, want exactly %v", moved, total)
	}
	if bw.Active() != 0 {
		t.Fatalf("flows still active: %d", bw.Active())
	}
}

func TestQueueSendRecv(t *testing.T) {
	s := New(1)
	q := NewQueue(s, "q")
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	s.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Millisecond)
			q.Send(i)
		}
		p.Sleep(time.Millisecond)
		q.Close()
	})
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueueTryRecv(t *testing.T) {
	s := New(1)
	q := NewQueue(s, "q")
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue returned ok")
	}
	q.Send("x")
	v, ok := q.TryRecv()
	if !ok || v.(string) != "x" {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	r := NewResource(s, "srv", 1)
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		// never releases
	})
	s.Spawn("waiter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p) // parks forever
	})
	defer func() {
		if recover() == nil {
			t.Error("deadlocked run did not panic")
		}
	}()
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(time.Second, func() { fired++ })
	s.At(3*time.Second, func() { fired++ })
	drained := s.RunUntil(2 * time.Second)
	if drained {
		t.Fatal("RunUntil reported drained with a future event pending")
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		s := New(99)
		bw := NewSharedBW(s, "link", 1e9, 0)
		r := NewResource(s, "cpu", 2)
		var finishes []time.Duration
		for i := 0; i < 10; i++ {
			sz := int64(s.RNG().Intn(1_000_000) + 1000)
			s.Spawn("w", func(p *Proc) {
				r.Use(p, time.Duration(sz/100)*time.Nanosecond)
				bw.Transfer(p, sz)
				finishes = append(finishes, p.Now())
			})
		}
		s.Run()
		return finishes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
