package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of that classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev(), want)
	}
}

func TestSummaryDuration(t *testing.T) {
	var s Summary
	s.ObserveDuration(500 * time.Millisecond)
	s.ObserveDuration(1500 * time.Millisecond)
	if math.Abs(s.Mean()-1.0) > 1e-9 {
		t.Fatalf("mean = %v, want 1.0s", s.Mean())
	}
}

func TestSummaryMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		anyFinite := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e18 {
				continue // metric values are latencies/bytes, never astronomic
			}
			s.Observe(v)
			anyFinite = true
		}
		if !anyFinite {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Median of 0..99 lands in the 64..128 bucket upper bound region.
	q := h.Quantile(0.5)
	if q < 32 || q > 128 {
		t.Fatalf("p50 = %v, want within [32,128]", q)
	}
	if h.Quantile(0.0) < 1 {
		t.Fatalf("p0 = %v", h.Quantile(0.0))
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	if math.Abs(h.Mean()-15) > 1e-12 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Summary("lat").Observe(1)
	m.Summary("lat").Observe(3)
	m.Add("ops", 5)
	m.Add("ops", 2)
	if m.Summary("lat").Count() != 2 {
		t.Fatalf("summary not shared")
	}
	if m.Counter("ops") != 7 {
		t.Fatalf("counter = %d", m.Counter("ops"))
	}
	if n := m.Names(); len(n) != 1 || n[0] != "lat" {
		t.Fatalf("names = %v", n)
	}
	if n := m.CounterNames(); len(n) != 1 || n[0] != "ops" {
		t.Fatalf("counter names = %v", n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		bound := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		p := NewRNG(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGExpPositive(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 1.9 || mean > 2.1 {
		t.Fatalf("Exp mean = %v, want ~2.0", mean)
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(11)
	f1 := r.Fork()
	v := r.Uint64()
	f2 := NewRNG(11)
	_ = f2.Fork()
	if v != f2.Uint64() {
		t.Fatal("Fork perturbed parent stream inconsistently")
	}
	if f1.Uint64() == r.Uint64() {
		t.Fatal("forked stream mirrors parent")
	}
}
