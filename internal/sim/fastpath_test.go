package sim

import (
	"fmt"
	"testing"
	"time"
)

// mixedWorkload drives a workload that exercises every interaction the fast
// path must not reorder — plain Sleeps, FIFO Resource contention, Queue
// send/recv, SharedBW fair sharing, and WaitGroup joins — and records a
// trace entry (name@time) at every step. The trace captures the kernel's
// (time, seq) firing order as observed by the processes.
func mixedWorkload(s *Sim) *[]string {
	trace := &[]string{}
	note := func(p *Proc, what string) {
		*trace = append(*trace, fmt.Sprintf("%s:%s@%v", p.Name(), what, p.Now()))
	}
	res := NewResource(s, "cpu", 2)
	bw := NewSharedBW(s, "link", 1e9, 0)
	q := NewQueue(s, "mbox")

	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("worker%d", i)
		delay := time.Duration(i) * 3 * time.Millisecond
		size := int64(100_000 * (i + 1))
		s.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			note(p, "awake")
			res.Acquire(p)
			note(p, "acquired")
			p.Sleep(2 * time.Millisecond)
			res.Release()
			bw.Transfer(p, size)
			note(p, "transferred")
			q.Send(p.Name())
			p.Sleep(time.Duration(size) * time.Nanosecond)
			note(p, "done")
		})
	}
	s.Spawn("collector", func(p *Proc) {
		wg := NewWaitGroup(s)
		for i := 0; i < 2; i++ {
			d := time.Duration(i+1) * 5 * time.Millisecond
			wg.Go("child", func(c *Proc) {
				c.Sleep(d)
				note(c, "child")
			})
		}
		wg.Wait(p)
		note(p, "joined")
		for i := 0; i < 4; i++ {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			note(p, "recv-"+v.(string))
		}
	})
	return trace
}

// TestFastPathMatchesSlowPath is the kernel regression contract for the
// inline fast paths: with them disabled (every Sleep and uncontended
// Transfer parks and round-trips through the scheduler) the same mixed
// workload must observe the identical (time, order) trace. The contract
// extends to the arena paths: the workload re-run on a Reset (arena-reused)
// simulator must produce that same trace again, fast and slow.
func TestFastPathMatchesSlowPath(t *testing.T) {
	fastSim, slowSim := New(7), New(7)
	run := func(s *Sim, noFastPath bool) (trail []string, end time.Duration) {
		s.noFastPath = noFastPath
		trace := mixedWorkload(s)
		end = s.Run()
		return *trace, end
	}
	fast, fastEnd := run(fastSim, false)
	check := func(name string, got []string, gotEnd time.Duration) {
		t.Helper()
		if gotEnd != fastEnd {
			t.Fatalf("%s: end time diverged: %v vs %v", name, gotEnd, fastEnd)
		}
		if len(got) != len(fast) {
			t.Fatalf("%s: trace length diverged: %d vs %d\ngot:  %v\nwant: %v", name, len(got), len(fast), got, fast)
		}
		for i := range fast {
			if got[i] != fast[i] {
				t.Fatalf("%s: trace diverged at step %d: %q vs %q", name, i, got[i], fast[i])
			}
		}
	}
	slow, slowEnd := run(slowSim, true)
	check("slow path", slow, slowEnd)
	// Arena paths: the same simulators — now dirty with a full workload —
	// rewound by Reset must reproduce the trace exactly, fast and slow.
	fastSim.Reset(7)
	reusedFast, reusedFastEnd := run(fastSim, false)
	check("reused arena, fast path", reusedFast, reusedFastEnd)
	slowSim.Reset(7)
	reusedSlow, reusedSlowEnd := run(slowSim, true)
	check("reused arena, slow path", reusedSlow, reusedSlowEnd)
}

// TestMixedWorkloadDeterministic verifies the reworked kernel still fires a
// mixed Sleep/Resource/Queue/SharedBW workload in identical (time, seq)
// order on every run.
func TestMixedWorkloadDeterministic(t *testing.T) {
	run := func() []string {
		s := New(7)
		trace := mixedWorkload(s)
		s.Run()
		return *trace
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("workload produced no trace")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestSleepFastPathRespectsRunUntil pins the horizon rule: an inline sleep
// must never advance virtual time past the innermost RunUntil limit.
func TestSleepFastPathRespectsRunUntil(t *testing.T) {
	s := New(1)
	var wokeAt time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Second)
		wokeAt = p.Now()
	})
	if s.RunUntil(time.Second) {
		t.Fatal("RunUntil drained with the sleeper still pending")
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v after RunUntil(1s), want 1s", s.Now())
	}
	if wokeAt != 0 {
		t.Fatalf("sleeper woke early at %v", wokeAt)
	}
	if !s.RunUntil(time.Minute) {
		t.Fatal("queue did not drain")
	}
	if wokeAt != 10*time.Second {
		t.Fatalf("sleeper woke at %v, want 10s", wokeAt)
	}
}

// TestSleepInlineAdvance verifies the fast path actually engages: a lone
// sleeper advances time without scheduling any heap event.
func TestSleepInlineAdvance(t *testing.T) {
	s := New(1)
	s.Spawn("lone", func(p *Proc) {
		before := s.queue.Len()
		p.Sleep(time.Second)
		if got := s.queue.Len(); got != before {
			t.Errorf("lone sleep touched the event heap: %d -> %d entries", before, got)
		}
		if p.Now() != time.Second {
			t.Errorf("Now = %v, want 1s", p.Now())
		}
	})
	if end := s.Run(); end != time.Second {
		t.Fatalf("end = %v, want 1s", end)
	}
}

// TestEventPoolRecycles verifies popped events return to the free list
// rather than being reallocated per interaction.
func TestEventPoolRecycles(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if len(s.free) == 0 {
		t.Fatal("no events recycled to the free list")
	}
	// A second wave must be served from the pool.
	before := len(s.free)
	s.After(time.Millisecond, func() {})
	if len(s.free) != before-1 {
		t.Fatalf("push did not draw from the pool: free %d -> %d", before, len(s.free))
	}
	s.Run()
}
