package sim

import (
	"fmt"
	"testing"
	"time"
)

// mixedWorkload drives a workload that exercises every interaction the fast
// path must not reorder — plain Sleeps, FIFO Resource contention, Queue
// send/recv, SharedBW fair sharing, and WaitGroup joins — and records a
// trace entry (name@time) at every step. The trace captures the kernel's
// (time, seq) firing order as observed by the processes.
func mixedWorkload(s *Sim) *[]string {
	trace := &[]string{}
	note := func(p *Proc, what string) {
		*trace = append(*trace, fmt.Sprintf("%s:%s@%v", p.Name(), what, p.Now()))
	}
	res := NewResource(s, "cpu", 2)
	bw := NewSharedBW(s, "link", 1e9, 0)
	q := NewQueue(s, "mbox")

	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("worker%d", i)
		delay := time.Duration(i) * 3 * time.Millisecond
		size := int64(100_000 * (i + 1))
		s.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			note(p, "awake")
			res.Acquire(p)
			note(p, "acquired")
			p.Sleep(2 * time.Millisecond)
			res.Release()
			bw.Transfer(p, size)
			note(p, "transferred")
			q.Send(p.Name())
			p.Sleep(time.Duration(size) * time.Nanosecond)
			note(p, "done")
		})
	}
	s.Spawn("collector", func(p *Proc) {
		wg := NewWaitGroup(s)
		for i := 0; i < 2; i++ {
			d := time.Duration(i+1) * 5 * time.Millisecond
			wg.Go("child", func(c *Proc) {
				c.Sleep(d)
				note(c, "child")
			})
		}
		wg.Wait(p)
		note(p, "joined")
		for i := 0; i < 4; i++ {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			note(p, "recv-"+v.(string))
		}
	})
	return trace
}

// TestFastPathMatchesSlowPath is the kernel regression contract for the
// inline Sleep fast path: with the fast path disabled (every Sleep parks and
// round-trips through the scheduler) the same mixed workload must observe
// the identical (time, order) trace.
func TestFastPathMatchesSlowPath(t *testing.T) {
	run := func(noFastPath bool) (trail []string, end time.Duration) {
		s := New(7)
		s.noFastPath = noFastPath
		trace := mixedWorkload(s)
		end = s.Run()
		return *trace, end
	}
	fast, fastEnd := run(false)
	slow, slowEnd := run(true)
	if fastEnd != slowEnd {
		t.Fatalf("end time diverged: fast %v, slow %v", fastEnd, slowEnd)
	}
	if len(fast) != len(slow) {
		t.Fatalf("trace length diverged: fast %d, slow %d\nfast: %v\nslow: %v", len(fast), len(slow), fast, slow)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("trace diverged at step %d: fast %q, slow %q", i, fast[i], slow[i])
		}
	}
}

// TestMixedWorkloadDeterministic verifies the reworked kernel still fires a
// mixed Sleep/Resource/Queue/SharedBW workload in identical (time, seq)
// order on every run.
func TestMixedWorkloadDeterministic(t *testing.T) {
	run := func() []string {
		s := New(7)
		trace := mixedWorkload(s)
		s.Run()
		return *trace
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("workload produced no trace")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestSleepFastPathRespectsRunUntil pins the horizon rule: an inline sleep
// must never advance virtual time past the innermost RunUntil limit.
func TestSleepFastPathRespectsRunUntil(t *testing.T) {
	s := New(1)
	var wokeAt time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Second)
		wokeAt = p.Now()
	})
	if s.RunUntil(time.Second) {
		t.Fatal("RunUntil drained with the sleeper still pending")
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v after RunUntil(1s), want 1s", s.Now())
	}
	if wokeAt != 0 {
		t.Fatalf("sleeper woke early at %v", wokeAt)
	}
	if !s.RunUntil(time.Minute) {
		t.Fatal("queue did not drain")
	}
	if wokeAt != 10*time.Second {
		t.Fatalf("sleeper woke at %v, want 10s", wokeAt)
	}
}

// TestSleepInlineAdvance verifies the fast path actually engages: a lone
// sleeper advances time without scheduling any heap event.
func TestSleepInlineAdvance(t *testing.T) {
	s := New(1)
	s.Spawn("lone", func(p *Proc) {
		before := s.queue.Len()
		p.Sleep(time.Second)
		if got := s.queue.Len(); got != before {
			t.Errorf("lone sleep touched the event heap: %d -> %d entries", before, got)
		}
		if p.Now() != time.Second {
			t.Errorf("Now = %v, want 1s", p.Now())
		}
	})
	if end := s.Run(); end != time.Second {
		t.Fatalf("end = %v, want 1s", end)
	}
}

// TestEventPoolRecycles verifies popped events return to the free list
// rather than being reallocated per interaction.
func TestEventPoolRecycles(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if len(s.free) == 0 {
		t.Fatal("no events recycled to the free list")
	}
	// A second wave must be served from the pool.
	before := len(s.free)
	s.After(time.Millisecond, func() {})
	if len(s.free) != before-1 {
		t.Fatalf("push did not draw from the pool: free %d -> %d", before, len(s.free))
	}
	s.Run()
}
