package sim

import "math"

// RNG is a small deterministic pseudo-random source (xorshift64*), used for
// every stochastic choice in the simulation so runs are reproducible from a
// single seed. It intentionally avoids math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped, since the
// xorshift state must be nonzero).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed rewinds the generator to the state NewRNG(seed) starts from,
// applying the same zero remap.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent stream from this one, for components that need
// their own substream without perturbing the parent sequence consumers.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() | 1)
}
