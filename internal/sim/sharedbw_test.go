package sim

import (
	"fmt"
	"testing"
	"time"
)

// sharedBWWorkload exercises every SharedBW behavior the fast paths must not
// perturb: long uncontended stretches (fast-path territory), simultaneous
// arrival waves, late joiners, a flowCap'd link crossing the cap boundary,
// zero-size transfers, and sleeps racing completions. Every step appends
// name:what@time to the trace.
func sharedBWWorkload(s *Sim) *[]string {
	trace := &[]string{}
	note := func(p *Proc, what string) {
		*trace = append(*trace, fmt.Sprintf("%s:%s@%v", p.Name(), what, p.Now()))
	}
	link := NewSharedBW(s, "link", 1e9, 0)
	capped := NewSharedBW(s, "capped", 4e9, 1e9)

	// Uncontended: back-to-back solo transfers separated by sleeps.
	s.Spawn("solo", func(p *Proc) {
		for i := 0; i < 4; i++ {
			link.Transfer(p, int64(1e6*(i+1)))
			note(p, "xfer")
			p.Sleep(50 * time.Millisecond)
		}
		link.Transfer(p, 0) // zero-size: returns immediately
		note(p, "zero")
	})
	// Simultaneous wave on the capped link, joined by stragglers.
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("wave%d", i)
		size := int64(8e8)
		delay := time.Duration(0)
		if i >= 3 {
			delay = 300 * time.Millisecond // cross the rate/flowCap boundary mid-flight
			size = 2e8
		}
		s.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			capped.Transfer(p, size)
			note(p, "done")
			capped.Transfer(p, 1e7)
			note(p, "tail")
		})
	}
	// Late joiner on the shared link racing the solo stream.
	s.Spawn("late", func(p *Proc) {
		p.Sleep(25 * time.Millisecond)
		link.Transfer(p, 5e8)
		note(p, "done")
	})
	return trace
}

// TestSharedBWFastPathMatchesSlowPath is the kernel regression contract for
// the inline uncontended-Transfer fast path: with every fast path disabled
// (all transfers allocate a flow, schedule a completion event, and park) the
// same workload must observe the identical (time, order) trace.
func TestSharedBWFastPathMatchesSlowPath(t *testing.T) {
	run := func(noFastPath bool) (trail []string, end time.Duration) {
		s := New(11)
		s.noFastPath = noFastPath
		trace := sharedBWWorkload(s)
		end = s.Run()
		return *trace, end
	}
	fast, fastEnd := run(false)
	slow, slowEnd := run(true)
	if fastEnd != slowEnd {
		t.Fatalf("end time diverged: fast %v, slow %v", fastEnd, slowEnd)
	}
	if len(fast) != len(slow) {
		t.Fatalf("trace length diverged: fast %d, slow %d\nfast: %v\nslow: %v", len(fast), len(slow), fast, slow)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("trace diverged at step %d: fast %q, slow %q", i, fast[i], slow[i])
		}
	}
}

// TestTransferInlineAdvance verifies the uncontended fast path actually
// engages: a transfer on an idle link advances virtual time without touching
// the event heap or parking the goroutine.
func TestTransferInlineAdvance(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0)
	s.Spawn("lone", func(p *Proc) {
		before := s.queue.Len()
		bw.Transfer(p, 5e8)
		if got := s.queue.Len(); got != before {
			t.Errorf("uncontended transfer touched the event heap: %d -> %d entries", before, got)
		}
		if p.Now() != 500*time.Millisecond {
			t.Errorf("Now = %v, want 500ms", p.Now())
		}
	})
	if end := s.Run(); end != 500*time.Millisecond {
		t.Fatalf("end = %v, want 500ms", end)
	}
	if got := bw.BytesMoved(); got != 5e8 {
		t.Fatalf("BytesMoved = %v, want 5e8", got)
	}
	if got := bw.MaxFlows(); got != 1 {
		t.Fatalf("MaxFlows = %v, want 1", got)
	}
}

// TestTransferFastPathRespectsFlowCap pins the fast-path rate: a sole flow
// runs at min(rate, flowCap), not the aggregate rate.
func TestTransferFastPathRespectsFlowCap(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 10e9, 1e9)
	var done time.Duration
	s.Spawn("t", func(p *Proc) {
		bw.Transfer(p, 1e9)
		done = p.Now()
	})
	s.Run()
	if done != time.Second {
		t.Fatalf("capped uncontended transfer finished at %v, want exactly 1s", done)
	}
}

// TestBytesMovedExact is the accounting contract: totals equal the bytes
// actually requested, bit-for-bit, even though the completion instant rounds
// up to whole nanoseconds and so overshoots the final credit. The old credit
// loop credited that overshoot (rate 3 B/s serving 10 bytes booked
// 10.000000002 bytes); the clamped accounting must book exactly 10.
func TestBytesMovedExact(t *testing.T) {
	for _, noFast := range []bool{false, true} {
		s := New(1)
		s.noFastPath = noFast
		bw := NewSharedBW(s, "slow", 3, 0) // 3 B/s: every completion overshoots
		sizes := []int64{10, 7, 23, 1, 100}
		var total float64
		for i, size := range sizes {
			size := size
			start := time.Duration(i) * time.Second
			total += float64(size)
			s.Spawn("t", func(p *Proc) {
				p.Sleep(start)
				bw.Transfer(p, size)
			})
		}
		s.Run()
		if got := bw.BytesMoved(); got != total {
			t.Fatalf("noFastPath=%v: BytesMoved = %v, want exactly %v", noFast, got, total)
		}
		if bw.Active() != 0 {
			t.Fatalf("noFastPath=%v: flows still active: %d", noFast, bw.Active())
		}
	}
}

// TestBytesMovedMidFlight verifies the in-flight clamp: accrued credit never
// exceeds a flow's size and never goes negative, so partial-run totals stay
// within [0, requested].
func TestBytesMovedMidFlight(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0)
	for i := 0; i < 3; i++ {
		s.Spawn("t", func(p *Proc) { bw.Transfer(p, 9e8) })
	}
	s.RunUntil(time.Second) // each flow has moved ~1e9/3 bytes
	got := bw.BytesMoved()
	if got < 0 || got > 27e8 {
		t.Fatalf("mid-flight BytesMoved = %v, want within [0, 2.7e9]", got)
	}
	if got < 9e8 {
		t.Fatalf("mid-flight BytesMoved = %v, want ~1e9 accrued", got)
	}
	s.Run()
	if got := bw.BytesMoved(); got != 27e8 {
		t.Fatalf("final BytesMoved = %v, want exactly 2.7e9", got)
	}
}

// TestSharedBWFlowCapMidFlight walks the per-flow cap across its engagement
// boundary (N = rate/flowCap) in both directions within one run:
//
//	t=0:     A, B (2 GB each) on a 4 GB/s link capped at 1 GB/s per flow:
//	         cap engaged (aggregate share 2 GB/s > cap), each runs at 1 GB/s.
//	t=1s:    C, D, E join (0.8 GB each): N=5, fair share 0.8 GB/s < cap,
//	         cap disengaged.
//	t=2s:    C, D, E finish together; A, B have 0.2 GB left, N=2 re-engages
//	         the cap at 1 GB/s.
//	t=2.2s:  A, B finish.
func TestSharedBWFlowCapMidFlight(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 4e9, 1e9)
	finish := map[string]time.Duration{}
	for _, name := range []string{"A", "B"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			bw.Transfer(p, 2e9)
			finish[name] = p.Now()
		})
	}
	for _, name := range []string{"C", "D", "E"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Sleep(time.Second)
			bw.Transfer(p, 8e8)
			finish[name] = p.Now()
		})
	}
	s.Run()
	around := func(got, want time.Duration) bool {
		d := got - want
		return d > -time.Microsecond && d < time.Microsecond
	}
	for _, name := range []string{"C", "D", "E"} {
		if !around(finish[name], 2*time.Second) {
			t.Fatalf("%s finished at %v, want ~2s", name, finish[name])
		}
	}
	for _, name := range []string{"A", "B"} {
		if !around(finish[name], 2200*time.Millisecond) {
			t.Fatalf("%s finished at %v, want ~2.2s", name, finish[name])
		}
	}
	if got := bw.MaxFlows(); got != 5 {
		t.Fatalf("MaxFlows = %d, want 5", got)
	}
}

// TestSharedBWZeroSize pins the degenerate sizes: zero and negative
// transfers return immediately without yielding, registering a flow, or
// moving bytes.
func TestSharedBWZeroSize(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0)
	s.Spawn("z", func(p *Proc) {
		bw.Transfer(p, 0)
		bw.Transfer(p, -5)
		if p.Now() != 0 {
			t.Errorf("zero-size transfer advanced time to %v", p.Now())
		}
		if bw.Active() != 0 {
			t.Errorf("zero-size transfer left %d active flows", bw.Active())
		}
	})
	if end := s.Run(); end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
	if got := bw.BytesMoved(); got != 0 {
		t.Fatalf("BytesMoved = %v, want 0", got)
	}
}

// TestSharedBWSimultaneousWakeOrder pins deterministic wake-ups: flows that
// complete at the same instant wake their processes in arrival order, and
// flows that finish in an earlier wave wake before later waves regardless of
// arrival order.
func TestSharedBWSimultaneousWakeOrder(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0)
	var order []string
	// big arrives first but finishes last; the equal wave (w0..w3) arrives
	// after it and completes together, in arrival order.
	s.Spawn("big", func(p *Proc) {
		bw.Transfer(p, 5e8)
		order = append(order, "big")
	})
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		s.Spawn(name, func(p *Proc) {
			bw.Transfer(p, 1e8)
			order = append(order, name)
		})
	}
	s.Run()
	want := []string{"w0", "w1", "w2", "w3", "big"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestUnparkBypassesHeap verifies same-instant wake-ups ride the ready-run
// queue instead of allocating heap events.
func TestUnparkBypassesHeap(t *testing.T) {
	s := New(1)
	var idler *Proc
	woke := false
	s.Spawn("idler", func(p *Proc) {
		idler = p
		p.ParkIdle()
		woke = true
	})
	s.At(time.Second, func() {
		before := s.queue.Len()
		s.Unpark(idler)
		if got := s.queue.Len(); got != before {
			t.Errorf("unpark touched the event heap: %d -> %d entries", before, got)
		}
		if got := s.readyLen(); got != 1 {
			t.Errorf("readyLen = %d, want 1", got)
		}
	})
	s.Run()
	if !woke {
		t.Fatal("idler never resumed")
	}
}

// TestFlowPoolRecycles verifies completed flow records return to the free
// list and subsequent transfers draw from it.
func TestFlowPoolRecycles(t *testing.T) {
	s := New(1)
	bw := NewSharedBW(s, "link", 1e9, 0)
	for i := 0; i < 8; i++ {
		s.Spawn("t", func(p *Proc) { bw.Transfer(p, 1e6) })
	}
	s.Run()
	if len(s.flowFree) == 0 {
		t.Fatal("no flows recycled to the free list")
	}
	before := len(s.flowFree)
	for i := 0; i < 2; i++ { // contended pair: both take the slow path
		s.Spawn("t", func(p *Proc) { bw.Transfer(p, 1e6) })
	}
	s.Run()
	if len(s.flowFree) != before {
		t.Fatalf("flow pool leaked: %d -> %d free", before, len(s.flowFree))
	}
	if bw.ev == nil || bw.ev.idx != -1 {
		t.Fatalf("owned completion event not parked outside the heap: %+v", bw.ev)
	}
}
