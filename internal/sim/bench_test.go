package sim

import (
	"testing"
	"time"
)

func BenchmarkEventScheduling(b *testing.B) {
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.queue.Len() > 4096 {
			s.RunUntil(s.Now() + time.Millisecond)
		}
	}
	s.Run()
}

func BenchmarkProcessSwitch(b *testing.B) {
	// Measures the goroutine-handoff cost of one Sleep round trip.
	s := New(1)
	n := b.N
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	s.Run()
}

func BenchmarkSharedBWManyFlows(b *testing.B) {
	// Fair-share recomputation with 64 concurrent flows.
	s := New(1)
	bw := NewSharedBW(s, "link", 1e12, 0)
	n := b.N
	for f := 0; f < 64; f++ {
		s.Spawn("flow", func(p *Proc) {
			for i := 0; i < n/64+1; i++ {
				bw.Transfer(p, 1<<20)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

func BenchmarkSharedBWUncontended(b *testing.B) {
	// Back-to-back transfers on an otherwise idle link: each one is a pure
	// timer, so the inline fast path should complete it with no event, no
	// park/unpark, and no allocation.
	s := New(1)
	bw := NewSharedBW(s, "link", 1e12, 0)
	n := b.N
	s.Spawn("t", func(p *Proc) {
		for i := 0; i < n; i++ {
			bw.Transfer(p, 1<<20)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

func BenchmarkSharedBWCompletionWave(b *testing.B) {
	// 256 equal flows repeatedly arrive together and finish at the same
	// virtual instant: the worst case for per-event credit loops and
	// per-wakeup heap traffic. Measures cost per flow completion.
	s := New(1)
	bw := NewSharedBW(s, "link", 1e12, 0)
	const flows = 256
	n := b.N
	for f := 0; f < flows; f++ {
		s.Spawn("flow", func(p *Proc) {
			for i := 0; i < n/flows+1; i++ {
				bw.Transfer(p, 1<<20)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

func BenchmarkResourceContention(b *testing.B) {
	s := New(1)
	r := NewResource(s, "xs", 4)
	n := b.N
	for w := 0; w < 16; w++ {
		s.Spawn("w", func(p *Proc) {
			for i := 0; i < n/16+1; i++ {
				r.Use(p, time.Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

func BenchmarkResourceUncontended(b *testing.B) {
	// A lone process cycling acquire/hold/release on an idle resource: both
	// the acquire and the release must complete inline (no event, no ready
	// queue, no park), and the 1µs hold rides the Sleep fast path.
	s := New(1)
	r := NewResource(s, "xs", 1)
	n := b.N
	s.Spawn("w", func(p *Proc) {
		for i := 0; i < n; i++ {
			r.Use(p, time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

func BenchmarkSpawn(b *testing.B) {
	// Process churn: spawn waves of trivial processes and drain them. This is
	// the lifecycle cost a study point pays for every simulated client op
	// (goroutine creation, first handoff, exit) amortized per process.
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Spawn("p", func(p *Proc) {})
		if i%256 == 255 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(7)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
