package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestArenaFreeStackReuse is the white-box pin for the goroutine arena: a
// sequential churn of short-lived processes must execute on a handful of
// reused worker goroutines, not one per process, and finished shells must
// land on the free stack.
func TestArenaFreeStackReuse(t *testing.T) {
	s := New(1)
	const procs = 1000
	for i := 0; i < procs; i++ {
		s.SpawnAt(time.Duration(i)*time.Microsecond, "p", func(p *Proc) {
			p.Sleep(100 * time.Nanosecond)
		})
	}
	s.Run()
	// At most two processes overlap (spacing 1µs, lifetime 0.1µs), so the
	// arena must stay tiny; without reuse it would hold 1000 workers.
	if s.nworkers > 4 {
		t.Fatalf("arena grew to %d workers for %d sequential processes", s.nworkers, procs)
	}
	if len(s.idle) != s.nworkers {
		t.Fatalf("idle stack holds %d of %d workers after drain-out", len(s.idle), s.nworkers)
	}
	// The next spawn must come from the free stack, not grow the arena.
	before := s.nworkers
	s.Spawn("again", func(p *Proc) {})
	s.Run()
	if s.nworkers != before {
		t.Fatalf("spawn after quiesce grew the arena: %d -> %d workers", before, s.nworkers)
	}
	s.Drain()
}

// TestArenaConcurrentProcsGetDistinctWorkers pins that simultaneous live
// processes each own a goroutine (reuse must never alias two live procs).
func TestArenaConcurrentProcsGetDistinctWorkers(t *testing.T) {
	s := New(1)
	const procs = 64
	seen := map[*Proc]bool{}
	for i := 0; i < procs; i++ {
		s.Spawn("p", func(p *Proc) {
			if seen[p] {
				t.Errorf("proc shell %p assigned to two live processes", p)
			}
			seen[p] = true
			p.Sleep(time.Second) // all 64 overlap
		})
	}
	s.Run()
	if s.nworkers != procs {
		t.Fatalf("nworkers = %d, want %d for %d overlapping processes", s.nworkers, procs, procs)
	}
	if len(seen) != procs {
		t.Fatalf("distinct shells = %d, want %d", len(seen), procs)
	}
	s.Drain()
}

// TestResetMatchesFreshSim is the reset-isolation contract: a workload on a
// simulator that already ran a different workload and was Reset must trace
// byte-identically to the same workload on a fresh simulator — no RNG,
// heap, pool, or ready-queue state may leak across Reset.
func TestResetMatchesFreshSim(t *testing.T) {
	runFresh := func(seed uint64) ([]string, time.Duration) {
		s := New(seed)
		trace := mixedWorkload(s)
		end := s.Run()
		return *trace, end
	}
	// Dirty a simulator with one workload, then Reset and re-run.
	s := New(99)
	mixedWorkload(s)
	s.Run()
	for _, seed := range []uint64{7, 99, 12345} {
		s.Reset(seed)
		trace := mixedWorkload(s)
		end := s.Run()
		wantTrace, wantEnd := runFresh(seed)
		if end != wantEnd {
			t.Fatalf("seed %d: end time %v on reset sim, %v on fresh sim", seed, end, wantEnd)
		}
		if fmt.Sprint(*trace) != fmt.Sprint(wantTrace) {
			t.Fatalf("seed %d: trace diverged after Reset\nreset: %v\nfresh: %v", seed, *trace, wantTrace)
		}
	}
}

// TestResetPanicsNonQuiesced pins that a simulator with live state refuses
// to rewind.
func TestResetPanicsNonQuiesced(t *testing.T) {
	s := New(1)
	s.Spawn("sleeper", func(p *Proc) { p.Sleep(10 * time.Second) })
	s.RunUntil(time.Second) // sleeper still live
	defer func() {
		if recover() == nil {
			t.Error("Reset of a non-quiesced simulator did not panic")
		}
	}()
	s.Reset(2)
}

// TestArenaGetDiscardsNonQuiesced pins the Arena's fallback: a simulation
// that leaks live processes is abandoned, not reused, and the replacement
// is a clean simulator.
func TestArenaGetDiscardsNonQuiesced(t *testing.T) {
	a := NewArena()
	s1 := a.Get(1)
	s1.Spawn("sleeper", func(p *Proc) { p.Sleep(10 * time.Second) })
	s1.RunUntil(time.Second)
	s2 := a.Get(2)
	if s2 == s1 {
		t.Fatal("arena reused a non-quiesced simulator")
	}
	if a.Discarded != 1 {
		t.Fatalf("Discarded = %d, want 1", a.Discarded)
	}
	if s2.Now() != 0 || !s2.Quiesced() {
		t.Fatalf("replacement sim not clean: now=%v quiesced=%v", s2.Now(), s2.Quiesced())
	}
	a.Drain()
}

// TestArenaReuseAcrossGets pins that consecutive Get calls on quiesced runs
// return the same simulator with its arena intact.
func TestArenaReuseAcrossGets(t *testing.T) {
	a := NewArena()
	s := a.Get(1)
	for i := 0; i < 8; i++ {
		s.Spawn("w", func(p *Proc) { p.Sleep(time.Millisecond) })
	}
	s.Run()
	workers := s.Workers()
	if workers == 0 {
		t.Fatal("no arena workers after a run")
	}
	if got := a.Get(2); got != s {
		t.Fatal("arena did not reuse the quiesced simulator")
	}
	if s.Workers() != workers {
		t.Fatalf("workers changed across Get: %d -> %d", workers, s.Workers())
	}
	if a.Discarded != 0 {
		t.Fatalf("Discarded = %d, want 0", a.Discarded)
	}
	a.Drain()
	if s.Workers() != 0 {
		t.Fatalf("workers = %d after Drain, want 0", s.Workers())
	}
}

// TestDrainReturnsGoroutinesToBaseline pins, under the race detector in CI,
// that a drained simulator holds no goroutines at all: the process arena is
// fully reclaimed, synchronously.
func TestDrainReturnsGoroutinesToBaseline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(1)
	for i := 0; i < 100; i++ {
		s.Spawn("w", func(p *Proc) { p.Sleep(time.Duration(i%7) * time.Millisecond) })
	}
	s.Run()
	if s.Workers() == 0 {
		t.Fatal("no arena workers after a run")
	}
	s.Drain()
	if s.Workers() != 0 {
		t.Fatalf("Workers = %d after Drain, want 0", s.Workers())
	}
	// Drain waits for each worker's exit acknowledgement, but the ack is
	// sent just before the goroutine returns, so give the scheduler a
	// moment to retire them before counting.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines leaked: baseline %d, after drain %d", baseline, n)
	}
	// A drained simulator is still usable: the arena regrows on demand.
	ran := false
	s.Spawn("again", func(p *Proc) { ran = true })
	s.Run()
	if !ran {
		t.Fatal("spawn after Drain did not run")
	}
	s.Drain()
}

// TestContendedResourceSteadyStateDoesNotAllocate pins the 0 B/op claim of
// the benchmark ledger in a form `go test` enforces: once pools, arena, and
// queue backings are warm, a contended acquire/hold/release storm must not
// allocate per operation (the old waiter queue re-allocated its backing
// array every few operations — the 16 B/op spill).
func TestContendedResourceSteadyStateDoesNotAllocate(t *testing.T) {
	s := New(1)
	r := NewResource(s, "xs", 4)
	cycle := func(ops int) {
		for w := 0; w < 16; w++ {
			s.Spawn("w", func(p *Proc) {
				for i := 0; i < ops; i++ {
					r.Use(p, time.Microsecond)
				}
			})
		}
		s.Run()
	}
	cycle(100) // warm the event pool, goroutine arena, and queue backings
	const opsPerCycle = 200 * 16
	avg := testing.AllocsPerRun(5, func() { cycle(200) })
	// A cycle allocates its 16 spawn closures; per-operation allocation
	// would show up as thousands.
	if avg > opsPerCycle/10 {
		t.Errorf("steady-state contention allocates: %.0f allocs per %d-op cycle", avg, opsPerCycle)
	}
	s.Drain()
}

// FuzzResetIsolation fuzzes the reset-isolation contract over generated
// workloads: two back-to-back runs on one reused simulator must trace
// byte-identically to the same two runs on fresh simulators. The fuzz bytes
// choose per-process op sequences (sleeps, resource holds, transfers,
// queue sends) and the seeds.
func FuzzResetIsolation(f *testing.F) {
	f.Add(uint64(1), uint64(2), []byte{0x01, 0x42, 0x90, 0x07})
	f.Add(uint64(7), uint64(7), []byte{0xff, 0x00, 0x13, 0x37, 0xee, 0x42})
	f.Add(uint64(42), uint64(99), []byte{})
	f.Fuzz(func(t *testing.T, seedA, seedB uint64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		workload := func(s *Sim) *[]string {
			trace := &[]string{}
			res := NewResource(s, "r", 2)
			bw := NewSharedBW(s, "bw", 1e9, 0)
			q := NewQueue(s, "q")
			for i, b := range ops {
				name := fmt.Sprintf("p%d", i)
				op, amt := b>>6, time.Duration(b&0x3f)
				s.SpawnAt(amt*time.Millisecond, name, func(p *Proc) {
					switch op {
					case 0:
						p.Sleep(amt * time.Microsecond)
					case 1:
						res.Acquire(p)
						p.Sleep(amt * time.Microsecond)
						res.Release()
					case 2:
						bw.Transfer(p, int64(amt+1)*100_000)
					case 3:
						q.Send(name)
						if v, ok := q.TryRecv(); ok {
							p.Sleep(time.Duration(len(v.(string))) * time.Microsecond)
						}
					}
					*trace = append(*trace, fmt.Sprintf("%s@%v+%d", name, p.Now(), s.RNG().Intn(1000)))
				})
			}
			return trace
		}
		fresh := func(seed uint64) []string {
			s := New(seed)
			tr := workload(s)
			s.Run()
			return *tr
		}
		wantA, wantB := fresh(seedA), fresh(seedB)

		a := NewArena()
		sA := a.Get(seedA)
		trA := workload(sA)
		sA.Run()
		sB := a.Get(seedB)
		trB := workload(sB)
		sB.Run()
		if a.Discarded != 0 {
			t.Fatalf("workload did not quiesce: %d discards", a.Discarded)
		}
		if fmt.Sprint(*trA) != fmt.Sprint(wantA) {
			t.Fatalf("first arena run diverged from fresh sim\narena: %v\nfresh: %v", *trA, wantA)
		}
		if fmt.Sprint(*trB) != fmt.Sprint(wantB) {
			t.Fatalf("second (reused) arena run diverged from fresh sim\narena: %v\nfresh: %v", *trB, wantB)
		}
		a.Drain()
	})
}
