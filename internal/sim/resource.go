package sim

import (
	"fmt"
	"math"
	"time"
)

// Resource is a counted resource with FIFO admission, equivalent to a
// capacity-bounded server pool (e.g. the service xstreams of a DAOS engine
// target). Processes that Acquire beyond capacity queue in arrival order.
type Resource struct {
	sim      *Sim
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// Busy accumulates capacity-seconds of use for utilisation reporting.
	busy     time.Duration
	lastTick time.Duration

	// MaxQueue tracks the longest observed waiter queue.
	MaxQueue int
}

// NewResource returns a resource with the given concurrency capacity.
func NewResource(s *Sim, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, name: name, capacity: capacity}
}

// Sim returns the owning simulator.
func (r *Resource) Sim() *Sim { return r.sim }

func (r *Resource) account() {
	r.busy += time.Duration(r.inUse) * (r.sim.now - r.lastTick)
	r.lastTick = r.sim.now
}

// Acquire takes one unit of the resource, blocking p FIFO if none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	if len(r.waiters) > r.MaxQueue {
		r.MaxQueue = len(r.waiters)
	}
	p.park()
}

// Release returns one unit. If processes are queued the head inherits the
// unit directly, preserving FIFO order.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.sim.unpark(w) // the unit passes to w; inUse unchanged
		return
	}
	r.account()
	r.inUse--
}

// Use runs the resource for d: acquire, hold for d, release.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Utilisation returns mean busy fraction over the run so far.
func (r *Resource) Utilisation() float64 {
	r.account()
	total := time.Duration(r.capacity) * r.sim.now
	if total == 0 {
		return 0
	}
	return float64(r.busy) / float64(total)
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// SharedBW models a bandwidth resource under processor sharing: N concurrent
// transfers each progress at Rate/N (optionally clamped to a per-flow cap).
// This is the standard fluid model for links, NICs and storage media
// channels, and it is what makes contention curves realistic: adding flows
// stretches everyone's completion time, and completions are recomputed at
// every arrival/departure instant.
type SharedBW struct {
	sim  *Sim
	name string
	// rate is the aggregate capacity in bytes per second.
	rate float64
	// flowCap, if positive, limits any single flow to this many bytes/s
	// (e.g. a single QP / endpoint processing ceiling).
	flowCap float64

	// flows is kept in arrival order: simultaneous completions must wake
	// their processes deterministically, so no map iteration here.
	flows    []*flow
	last     time.Duration
	gen      uint64
	moved    float64 // total bytes completed, for accounting
	maxFlows int
}

type flow struct {
	remaining float64
	proc      *Proc
}

// NewSharedBW returns a fair-shared bandwidth resource of rate bytes/s.
// flowCap > 0 additionally caps each individual flow.
func NewSharedBW(s *Sim, name string, rate, flowCap float64) *SharedBW {
	if rate <= 0 {
		panic("sim: SharedBW rate must be positive")
	}
	return &SharedBW{sim: s, name: name, rate: rate, flowCap: flowCap}
}

// Rate returns the aggregate capacity in bytes/s.
func (b *SharedBW) Rate() float64 { return b.rate }

// perFlow returns the current per-flow service rate in bytes/s.
func (b *SharedBW) perFlow() float64 {
	n := len(b.flows)
	if n == 0 {
		return 0
	}
	r := b.rate / float64(n)
	if b.flowCap > 0 && r > b.flowCap {
		r = b.flowCap
	}
	return r
}

// advance credits progress to all active flows for the time since last.
func (b *SharedBW) advance() {
	now := b.sim.now
	if now == b.last {
		return
	}
	elapsed := now - b.last
	b.last = now
	if len(b.flows) == 0 {
		return
	}
	credit := b.perFlow() * elapsed.Seconds()
	for _, f := range b.flows {
		f.remaining -= credit
		b.moved += credit
	}
}

// reschedule supersedes any pending completion event and schedules the next.
// Bumping the generation makes earlier scheduled completions no-ops when they
// pop, which replaces explicit cancellation.
func (b *SharedBW) reschedule() {
	b.gen++
	if len(b.flows) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, f := range b.flows {
		if f.remaining < minRem {
			minRem = f.remaining
		}
	}
	rate := b.perFlow()
	dt := time.Duration(math.Ceil(minRem / rate * 1e9)) // seconds -> ns, round up
	if dt < 0 {
		dt = 0
	}
	b.sim.schedBW(b.sim.now+dt, b, b.gen)
}

// complete finishes every flow whose remaining bytes have drained, waking
// them in arrival order.
func (b *SharedBW) complete() {
	b.advance()
	const eps = 0.5 // half a byte of float slack
	live := b.flows[:0]
	for _, f := range b.flows {
		if f.remaining <= eps {
			b.sim.unpark(f.proc)
		} else {
			live = append(live, f)
		}
	}
	for i := len(live); i < len(b.flows); i++ {
		b.flows[i] = nil
	}
	b.flows = live
	b.reschedule()
}

// Transfer moves size bytes through the shared resource, blocking p until the
// flow completes under fair sharing. Zero or negative sizes return
// immediately.
func (b *SharedBW) Transfer(p *Proc, size int64) {
	if size <= 0 {
		return
	}
	b.advance()
	f := &flow{remaining: float64(size), proc: p}
	b.flows = append(b.flows, f)
	if len(b.flows) > b.maxFlows {
		b.maxFlows = len(b.flows)
	}
	b.reschedule()
	p.park()
}

// Active returns the number of in-flight flows.
func (b *SharedBW) Active() int { return len(b.flows) }

// MaxFlows returns the peak number of concurrent flows observed.
func (b *SharedBW) MaxFlows() int { return b.maxFlows }

// BytesMoved returns total bytes transferred so far.
func (b *SharedBW) BytesMoved() float64 {
	b.advance()
	return b.moved
}
