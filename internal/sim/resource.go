package sim

import (
	"fmt"
	"math"
	"time"
)

// Resource is a counted resource with FIFO admission, equivalent to a
// capacity-bounded server pool (e.g. the service xstreams of a DAOS engine
// target). Processes that Acquire beyond capacity queue in arrival order.
type Resource struct {
	sim      *Sim
	name     string
	capacity int
	inUse    int

	// waiters queue processes blocked in Acquire, FIFO. The compacting
	// fifo keeps one backing array for the resource's lifetime — the old
	// append/[1:] pattern reallocated it every few operations, the steady
	// 16 B/op heap spill BenchmarkResourceContention used to carry.
	waiters fifo[*Proc]

	// Busy accumulates capacity-seconds of use for utilisation reporting.
	busy     time.Duration
	lastTick time.Duration

	// MaxQueue tracks the longest observed waiter queue.
	MaxQueue int
}

// NewResource returns a resource with the given concurrency capacity.
func NewResource(s *Sim, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, name: name, capacity: capacity}
}

// Sim returns the owning simulator.
func (r *Resource) Sim() *Sim { return r.sim }

func (r *Resource) account() {
	r.busy += time.Duration(r.inUse) * (r.sim.now - r.lastTick)
	r.lastTick = r.sim.now
}

// Acquire takes one unit of the resource, blocking p FIFO if none is free.
// Acquiring below capacity is entirely inline: a branch and two counter
// updates, no event, no parking.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		return
	}
	r.waiters.Push(p)
	if q := r.waiters.Len(); q > r.MaxQueue {
		r.MaxQueue = q
	}
	p.park()
}

// Release returns one unit. With nobody queued this is the inline fast
// path, mirroring the Sleep/Transfer fast paths but unconditional: an
// uncontended release can neither wake nor reorder anything, so it skips
// the ready queue and the event heap entirely and costs a branch and two
// counter updates. If processes are queued the head inherits the unit
// directly, preserving FIFO order — its resumption enqueues on the
// same-instant ready-run queue and fires when the releasing process next
// yields, exactly as a heap event would, at O(1) and zero allocation.
func (r *Resource) Release() {
	if r.waiters.Len() == 0 {
		if r.inUse <= 0 {
			panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
		}
		r.account()
		r.inUse--
		return
	}
	r.sim.unpark(r.waiters.Pop()) // the unit passes to the head; inUse unchanged
}

// Use runs the resource for d: acquire, hold for d, release.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Utilisation returns mean busy fraction over the run so far.
func (r *Resource) Utilisation() float64 {
	r.account()
	total := time.Duration(r.capacity) * r.sim.now
	if total == 0 {
		return 0
	}
	return float64(r.busy) / float64(total)
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// SharedBW models a bandwidth resource under processor sharing: N concurrent
// transfers each progress at Rate/N (optionally clamped to a per-flow cap).
// This is the standard fluid model for links, NICs and storage media
// channels, and it is what makes contention curves realistic: adding flows
// stretches everyone's completion time, and completions are recomputed at
// every arrival/departure instant.
//
// Fair-share accounting exploits the uniform service rate: every active flow
// accrues the identical credit, so progress is tracked once for the whole
// link as a cumulative virtual-service counter vt (bytes served per flow
// since the link last went idle). A flow arriving when the counter reads vt
// is tagged with an immutable finish tag vt+size and completes when the
// counter reaches it; its remaining bytes at any instant are finish-vt. The
// flows live in a min-heap keyed by (finish, arrival) — keys never change,
// so the heap needs no re-sifting — which keeps the earliest completion at
// the root: arrivals and departures are O(log N), and crediting elapsed
// service is a single counter addition, O(1) per distinct instant instead of
// the one-subtraction-per-flow sweep of kernel version 2. The counter resets
// to zero whenever the link drains, bounding its magnitude (and the absolute
// float error of finish-vt) by the largest burst, not the length of the run.
// Deriving remainders from the cumulative counter reorders the
// floating-point arithmetic, so completion instants can shift by a
// nanosecond relative to the per-flow credit stream: the change rides the
// KernelVersion 3 bump and the regenerated golden figures.
type SharedBW struct {
	sim  *Sim
	name string
	// rate is the aggregate capacity in bytes per second.
	rate float64
	// flowCap, if positive, limits any single flow to this many bytes/s
	// (e.g. a single QP / endpoint processing ceiling).
	flowCap float64

	// flows is a min-heap by (finish, seq). Flow records are pooled on
	// the owning Sim's free list.
	flows flowHeap
	// vt is the cumulative virtual service in bytes per flow since the link
	// last went idle; flow finish tags are expressed against it.
	vt float64
	// wave is scratch for same-instant completion batches, retained to
	// avoid per-wave allocation.
	wave []*flow
	// arrivals numbers flows in arrival order: simultaneous completions
	// must wake their processes deterministically (first-arrived first).
	arrivals uint64
	last     time.Duration
	gen      uint64
	// ev is the link's persistent completion event, rescheduled in place
	// while queued (see Sim.schedBW).
	ev *event
	// moved counts bytes of completed flows plus inline fast-path
	// transfers; it is exact (never credited past a flow's size).
	moved    float64
	maxFlows int
}

// flow is one in-flight transfer.
type flow struct {
	// finish is the link virtual-service level at which the flow completes:
	// the vt observed at arrival plus the flow's size. Immutable.
	finish float64
	size   float64
	seq    uint64
	proc   *Proc
}

// flowHeap is a hand-rolled binary min-heap ordered by (finish, seq):
// earliest completion first, ties broken by arrival order. Finish tags are
// immutable, so the heap never needs re-sifting between pushes and pops.
type flowHeap []*flow

func (h flowHeap) less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}

func (h *flowHeap) push(f *flow) {
	*h = append(*h, f)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *flowHeap) pop() *flow {
	q := *h
	f := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return f
}

// allocFlow takes a flow record from the free list (or allocates one).
func (s *Sim) allocFlow() *flow {
	if n := len(s.flowFree); n > 0 {
		f := s.flowFree[n-1]
		s.flowFree[n-1] = nil
		s.flowFree = s.flowFree[:n-1]
		return f
	}
	return new(flow)
}

// recycleFlow resets a completed flow and returns it to the free list.
func (s *Sim) recycleFlow(f *flow) {
	*f = flow{}
	s.flowFree = append(s.flowFree, f)
}

// NewSharedBW returns a fair-shared bandwidth resource of rate bytes/s.
// flowCap > 0 additionally caps each individual flow.
func NewSharedBW(s *Sim, name string, rate, flowCap float64) *SharedBW {
	if rate <= 0 {
		panic("sim: SharedBW rate must be positive")
	}
	return &SharedBW{sim: s, name: name, rate: rate, flowCap: flowCap}
}

// Rate returns the aggregate capacity in bytes/s.
func (b *SharedBW) Rate() float64 { return b.rate }

// perFlow returns the current per-flow service rate in bytes/s.
func (b *SharedBW) perFlow() float64 {
	n := len(b.flows)
	if n == 0 {
		return 0
	}
	r := b.rate / float64(n)
	if b.flowCap > 0 && r > b.flowCap {
		r = b.flowCap
	}
	return r
}

// advance credits the elapsed service since last to the virtual-time
// counter: one addition regardless of flow count. A same-instant arrival or
// departure wave hits the now == last early return for every event after
// the first.
func (b *SharedBW) advance() {
	now := b.sim.now
	if now == b.last {
		return
	}
	elapsed := now - b.last
	b.last = now
	if len(b.flows) == 0 {
		return
	}
	b.vt += b.perFlow() * elapsed.Seconds()
}

// reschedule supersedes any pending completion and schedules the next, read
// off the heap root instead of a rescan. The link's owned event is re-keyed
// in place when still queued (no stale events to pop later); bumping the
// generation additionally guards a completion that already popped.
func (b *SharedBW) reschedule() {
	b.gen++
	if len(b.flows) == 0 {
		return
	}
	minRem := b.flows[0].finish - b.vt
	rate := b.perFlow()
	dt := time.Duration(math.Ceil(minRem / rate * 1e9)) // seconds -> ns, round up
	if dt < 0 {
		dt = 0
	}
	b.sim.schedBW(b.sim.now+dt, b)
}

// complete finishes every flow whose finish tag the virtual-time counter
// has reached, waking them in arrival order. The drained set pops off the
// heap in (finish, seq) order; an insertion sort restores arrival order
// (waves of equal-size simultaneous arrivals pop already sorted, making the
// sort a linear pass).
func (b *SharedBW) complete() {
	b.advance()
	const eps = 0.5 // half a byte of float slack
	wave := b.wave[:0]
	for len(b.flows) > 0 && b.flows[0].finish-b.vt <= eps {
		wave = append(wave, b.flows.pop())
	}
	for i := 1; i < len(wave); i++ {
		f := wave[i]
		j := i
		for j > 0 && wave[j-1].seq > f.seq {
			wave[j] = wave[j-1]
			j--
		}
		wave[j] = f
	}
	for i, f := range wave {
		b.moved += f.size // exact: a completed flow moved what it asked for
		b.sim.unpark(f.proc)
		b.sim.recycleFlow(f)
		wave[i] = nil
	}
	b.wave = wave[:0]
	if len(b.flows) == 0 {
		// Idle link: rebase virtual time so the counter's magnitude — and
		// the absolute error of finish-vt — is bounded by one busy period.
		b.vt = 0
	}
	b.reschedule()
}

// Transfer moves size bytes through the shared resource, blocking p until the
// flow completes under fair sharing. Zero or negative sizes return
// immediately.
//
// Fast path: a transfer joining an idle link is a pure timer — it completes
// after size divided by the per-flow rate, and nothing can interleave if no
// other event is due at or before that instant — so the kernel advances
// virtual time inline exactly like the Sleep fast path: no event, no flow
// record, no park/unpark. The completion instant is computed with the very
// expression the slow path would use, so fast- and slow-path runs of the
// same workload stay bit-for-bit identical.
func (b *SharedBW) Transfer(p *Proc, size int64) {
	if size <= 0 {
		return
	}
	s := b.sim
	if len(b.flows) == 0 && !s.noFastPath {
		r := b.rate
		if b.flowCap > 0 && b.flowCap < r {
			r = b.flowCap
		}
		dt := time.Duration(math.Ceil(float64(size) / r * 1e9))
		wake := s.now + dt
		if dt >= 0 && wake >= s.now && wake <= s.limit && s.rhead == len(s.ready) &&
			(len(s.queue) == 0 || s.queue[0].at > wake) {
			s.now = wake
			b.last = wake
			b.moved += float64(size)
			if b.maxFlows < 1 {
				b.maxFlows = 1
			}
			return
		}
	}
	b.advance()
	f := s.allocFlow()
	f.size = float64(size)
	f.finish = b.vt + f.size
	f.seq = b.arrivals
	b.arrivals++
	f.proc = p
	b.flows.push(f)
	if len(b.flows) > b.maxFlows {
		b.maxFlows = len(b.flows)
	}
	b.reschedule()
	p.park()
}

// Active returns the number of in-flight flows.
func (b *SharedBW) Active() int { return len(b.flows) }

// MaxFlows returns the peak number of concurrent flows observed.
func (b *SharedBW) MaxFlows() int { return b.maxFlows }

// BytesMoved returns total bytes transferred so far: completed flows count
// their full requested size, in-flight flows their accrued credit clamped to
// their size, so completion overshoot (the scheduling instant rounds up to
// whole nanoseconds) never over-credits the total.
func (b *SharedBW) BytesMoved() float64 {
	b.advance()
	total := b.moved
	for _, f := range b.flows {
		done := f.size - (f.finish - b.vt)
		if done < 0 {
			done = 0
		}
		if done > f.size {
			done = f.size
		}
		total += done
	}
	return total
}
