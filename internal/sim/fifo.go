package sim

// fifo is a head-indexed FIFO queue backed by a single slice. Pop advances
// a head index instead of re-slicing (the append/[1:] pattern marches a
// slice through its backing array and makes append reallocate it every few
// operations). The backing array is reclaimed wholesale when the queue
// drains; when it fills while at least half of it is dead prefix, Push
// compacts the live region to the front instead of growing. Freed slots per
// compaction are at least half the capacity, so pushes stay amortized O(1),
// capacity stays within a small factor of the peak queue length, and a
// long-lived queue — even one that never fully drains, like a saturated
// resource's waiter line — settles into zero steady-state allocation.
// Sim.unpark hand-inlines this compaction scheme for the kernel's ready-run
// queue (which needs a raw head peek on the dispatch hot path); keep them
// in sync.
type fifo[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued entries.
func (f *fifo[T]) Len() int { return len(f.buf) - f.head }

// Push appends v at the tail.
func (f *fifo[T]) Push(v T) {
	if len(f.buf) == cap(f.buf) && f.head > 0 && f.head >= cap(f.buf)/2 {
		var zero T
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = zero
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, v)
}

// Pop removes and returns the head entry. The caller must have checked
// Len() > 0.
func (f *fifo[T]) Pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return v
}
