package vos

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreePutGet(t *testing.T) {
	tr := NewBTree()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("empty tree returned a value")
	}
	if !tr.Put([]byte("a"), 1) {
		t.Fatal("fresh insert reported as replace")
	}
	if tr.Put([]byte("a"), 2) {
		t.Fatal("replace reported as insert")
	}
	v, ok := tr.Get([]byte("a"))
	if !ok || v.(int) != 2 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestBTreeManyKeysSorted(t *testing.T) {
	tr := NewBTree()
	const n = 1000
	// Insert in a scrambled deterministic order.
	for i := 0; i < n; i++ {
		j := (i * 7919) % n
		tr.Put([]byte(fmt.Sprintf("key%06d", j)), j)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	var prev []byte
	count := 0
	tr.Ascend(func(k []byte, v interface{}) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("out of order: %q then %q", prev, k)
		}
		want := fmt.Sprintf("key%06d", v.(int))
		if string(k) != want {
			t.Fatalf("key %q does not match value %v", k, v)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != n {
		t.Fatalf("iterated %d, want %d", count, n)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), i)
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete([]byte(fmt.Sprintf("k%03d", i))) {
			t.Fatalf("delete k%03d failed", i)
		}
	}
	if tr.Delete([]byte("k000")) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get([]byte(fmt.Sprintf("k%03d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(k%03d) = %v, want %v", i, ok, want)
		}
	}
}

func TestBTreeAscendRange(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 10; i++ {
		tr.Put([]byte{byte('a' + i)}, i)
	}
	var got []string
	tr.AscendRange([]byte("c"), []byte("f"), func(k []byte, v interface{}) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
}

func TestBTreeEarlyStop(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), i)
	}
	count := 0
	tr.Ascend(func(k []byte, v interface{}) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop iterated %d, want 5", count)
	}
}

func TestBTreeKeyCopied(t *testing.T) {
	tr := NewBTree()
	k := []byte("mutable")
	tr.Put(k, 1)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutable")); !ok {
		t.Fatal("tree aliased caller's key buffer")
	}
}

// TestBTreeMatchesReferenceMap is the core property test: a B+tree behaves
// exactly like a sorted map under arbitrary operation sequences.
func TestBTreeMatchesReferenceMap(t *testing.T) {
	type op struct {
		Key    uint16
		Value  uint8
		Delete bool
	}
	f := func(ops []op) bool {
		tr := NewBTree()
		ref := map[string]interface{}{}
		for _, o := range ops {
			k := fmt.Sprintf("%05d", o.Key%500)
			if o.Delete {
				delRef := false
				if _, ok := ref[k]; ok {
					delete(ref, k)
					delRef = true
				}
				if tr.Delete([]byte(k)) != delRef {
					return false
				}
			} else {
				_, existed := ref[k]
				ref[k] = int(o.Value)
				if tr.Put([]byte(k), int(o.Value)) == existed {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Iteration must visit exactly the reference keys, sorted.
		var refKeys []string
		for k := range ref {
			refKeys = append(refKeys, k)
		}
		sort.Strings(refKeys)
		i := 0
		good := true
		tr.Ascend(func(k []byte, v interface{}) bool {
			if i >= len(refKeys) || string(k) != refKeys[i] || v.(int) != ref[refKeys[i]].(int) {
				good = false
				return false
			}
			i++
			return true
		})
		return good && i == len(refKeys)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
