package vos

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ObjectID identifies an object within a container. The high 16 bits of Hi
// carry the object class, mirroring DAOS OID encoding.
type ObjectID struct {
	Hi uint64
	Lo uint64
}

// Key returns the OID's B+tree key encoding (big-endian for ordering).
func (o ObjectID) Key() []byte {
	var k [16]byte
	binary.BigEndian.PutUint64(k[:8], o.Hi)
	binary.BigEndian.PutUint64(k[8:], o.Lo)
	return k[:]
}

func (o ObjectID) String() string { return fmt.Sprintf("%016x.%016x", o.Hi, o.Lo) }

// Errors returned by VOS operations.
var (
	// ErrNotFound reports a missing object, dkey, or akey.
	ErrNotFound = errors.New("vos: not found")
	// ErrPunched reports access to a punched (deleted) entity.
	ErrPunched = errors.New("vos: punched")
)

// valueKind distinguishes akey storage types.
type valueKind int

const (
	kindUnset valueKind = iota
	kindSingle
	kindArray
)

// singleVersion is one epoch-stamped single-value update.
type singleVersion struct {
	epoch Epoch
	value []byte
}

// akey holds either a single versioned value or an extent array.
type akey struct {
	kind valueKind
	// singles stores single-value versions in epoch order.
	singles []singleVersion
	extents *ExtentTree
	punched Epoch // 0 = never punched
}

// dkey holds the akey tree for one distribution key.
type dkey struct {
	akeys   *BTree // akey name -> *akey
	punched Epoch
}

// object is one object shard stored on this target.
type object struct {
	dkeys   *BTree // dkey name -> *dkey
	punched Epoch
}

// Container is a VOS container: an object table plus epoch bookkeeping.
// One exists per (DAOS container, target) pair.
type Container struct {
	UUID    string
	objects *BTree // ObjectID key -> *object
	// UsedBytes approximates the media footprint of stored values.
	UsedBytes int64
	// highest epoch seen, for container queries.
	maxEpoch Epoch
}

// NewContainer creates an empty VOS container.
func NewContainer(uuid string) *Container {
	return &Container{UUID: uuid, objects: NewBTree()}
}

// NumObjects returns the number of object shards stored.
func (c *Container) NumObjects() int { return c.objects.Len() }

// MaxEpoch returns the highest epoch of any update applied.
func (c *Container) MaxEpoch() Epoch { return c.maxEpoch }

func (c *Container) noteEpoch(e Epoch) {
	if e > c.maxEpoch {
		c.maxEpoch = e
	}
}

// getObject returns the object shard, optionally creating it. The second
// result reports whether it was created by this call (the engine charges a
// first-touch cost for that).
func (c *Container) getObject(oid ObjectID, create bool) (*object, bool) {
	if v, ok := c.objects.Get(oid.Key()); ok {
		return v.(*object), false
	}
	if !create {
		return nil, false
	}
	o := &object{dkeys: NewBTree()}
	c.objects.Put(oid.Key(), o)
	return o, true
}

func (o *object) getDkey(name []byte, create bool) *dkey {
	if v, ok := o.dkeys.Get(name); ok {
		return v.(*dkey)
	}
	if !create {
		return nil
	}
	d := &dkey{akeys: NewBTree()}
	o.dkeys.Put(name, d)
	return d
}

func (d *dkey) getAkey(name []byte, create bool) *akey {
	if v, ok := d.akeys.Get(name); ok {
		return v.(*akey)
	}
	if !create {
		return nil
	}
	a := &akey{}
	d.akeys.Put(name, a)
	return a
}

// UpdateSingle writes a single-value akey version at epoch. It returns true
// when the object shard was created by this update (first touch).
func (c *Container) UpdateSingle(oid ObjectID, dk, ak []byte, epoch Epoch, value []byte) bool {
	obj, created := c.getObject(oid, true)
	a := obj.getDkey(dk, true).getAkey(ak, true)
	if a.kind == kindArray {
		panic("vos: single-value update on array akey")
	}
	a.kind = kindSingle
	a.singles = append(a.singles, singleVersion{epoch: epoch, value: append([]byte(nil), value...)})
	c.UsedBytes += int64(len(value))
	c.noteEpoch(epoch)
	return created
}

// FetchSingle reads the newest single-value version visible at epoch.
func (c *Container) FetchSingle(oid ObjectID, dk, ak []byte, epoch Epoch) ([]byte, error) {
	a, err := c.lookupAkey(oid, dk, ak, epoch)
	if err != nil {
		return nil, err
	}
	if a.kind != kindSingle {
		return nil, fmt.Errorf("%w: akey %q is not single-value", ErrNotFound, ak)
	}
	var best *singleVersion
	for i := range a.singles {
		v := &a.singles[i]
		if v.epoch <= epoch && (best == nil || v.epoch >= best.epoch) {
			best = v
		}
	}
	if best == nil || (a.punched != 0 && a.punched <= epoch && best.epoch <= a.punched) {
		return nil, ErrNotFound
	}
	return append([]byte(nil), best.value...), nil
}

// UpdateArray writes data into an array akey at the byte offset. It returns
// true when the object shard was created by this update.
func (c *Container) UpdateArray(oid ObjectID, dk, ak []byte, epoch Epoch, offset int64, data []byte) bool {
	obj, created := c.getObject(oid, true)
	a := obj.getDkey(dk, true).getAkey(ak, true)
	if a.kind == kindSingle {
		panic("vos: array update on single-value akey")
	}
	if a.kind == kindUnset {
		a.kind = kindArray
		a.extents = NewExtentTree()
	}
	a.extents.Insert(offset, epoch, data)
	c.UsedBytes += int64(len(data))
	c.noteEpoch(epoch)
	return created
}

// FetchArray reads length bytes at offset visible at epoch. Holes read as
// zeros; a fully-absent akey returns ErrNotFound.
func (c *Container) FetchArray(oid ObjectID, dk, ak []byte, epoch Epoch, offset int64, length int) ([]byte, error) {
	a, err := c.lookupAkey(oid, dk, ak, epoch)
	if err != nil {
		return nil, err
	}
	if a.kind != kindArray {
		return nil, fmt.Errorf("%w: akey %q is not an array", ErrNotFound, ak)
	}
	buf, _ := a.extents.Read(offset, length, epoch)
	return buf, nil
}

// FetchArrayInto reads length bytes at offset visible at epoch into dst,
// which must be length bytes long (holes read as zeros; every byte of dst is
// written). A nil dst performs the identical lookup and visibility walk
// without materializing bytes — absence semantics (ErrNotFound, ErrPunched)
// are exactly FetchArray's either way.
func (c *Container) FetchArrayInto(oid ObjectID, dk, ak []byte, epoch Epoch, offset int64, length int, dst []byte) error {
	a, err := c.lookupAkey(oid, dk, ak, epoch)
	if err != nil {
		return err
	}
	if a.kind != kindArray {
		return fmt.Errorf("%w: akey %q is not an array", ErrNotFound, ak)
	}
	a.extents.ReadInto(dst, offset, length, epoch)
	return nil
}

// ArraySize returns the akey's visible high-water mark at epoch, or 0 when
// the akey does not exist.
func (c *Container) ArraySize(oid ObjectID, dk, ak []byte, epoch Epoch) int64 {
	a, err := c.lookupAkey(oid, dk, ak, epoch)
	if err != nil || a.kind != kindArray {
		return 0
	}
	return a.extents.VisibleSize(epoch)
}

func (c *Container) lookupAkey(oid ObjectID, dk, ak []byte, epoch Epoch) (*akey, error) {
	obj, _ := c.getObject(oid, false)
	if obj == nil {
		return nil, fmt.Errorf("%w: object %v", ErrNotFound, oid)
	}
	if obj.punched != 0 && obj.punched <= epoch {
		return nil, fmt.Errorf("%w: object %v", ErrPunched, oid)
	}
	d := obj.getDkey(dk, false)
	if d == nil {
		return nil, fmt.Errorf("%w: dkey %q", ErrNotFound, dk)
	}
	if d.punched != 0 && d.punched <= epoch {
		return nil, fmt.Errorf("%w: dkey %q", ErrPunched, dk)
	}
	a := d.getAkey(ak, false)
	if a == nil {
		return nil, fmt.Errorf("%w: akey %q", ErrNotFound, ak)
	}
	return a, nil
}

// PunchObject marks the whole object deleted as of epoch.
func (c *Container) PunchObject(oid ObjectID, epoch Epoch) error {
	obj, _ := c.getObject(oid, false)
	if obj == nil {
		return fmt.Errorf("%w: object %v", ErrNotFound, oid)
	}
	obj.punched = epoch
	c.noteEpoch(epoch)
	return nil
}

// PunchDkey marks one dkey deleted as of epoch.
func (c *Container) PunchDkey(oid ObjectID, dk []byte, epoch Epoch) error {
	obj, _ := c.getObject(oid, false)
	if obj == nil {
		return fmt.Errorf("%w: object %v", ErrNotFound, oid)
	}
	d := obj.getDkey(dk, false)
	if d == nil {
		return fmt.Errorf("%w: dkey %q", ErrNotFound, dk)
	}
	d.punched = epoch
	c.noteEpoch(epoch)
	return nil
}

// ListDkeys returns the object's dkey names visible at epoch, in order.
func (c *Container) ListDkeys(oid ObjectID, epoch Epoch) ([][]byte, error) {
	obj, _ := c.getObject(oid, false)
	if obj == nil {
		return nil, fmt.Errorf("%w: object %v", ErrNotFound, oid)
	}
	if obj.punched != 0 && obj.punched <= epoch {
		return nil, nil
	}
	var out [][]byte
	obj.dkeys.Ascend(func(k []byte, v interface{}) bool {
		d := v.(*dkey)
		if d.punched == 0 || d.punched > epoch {
			out = append(out, append([]byte(nil), k...))
		}
		return true
	})
	return out, nil
}

// ListAkeys returns the dkey's akey names visible at epoch, in order.
func (c *Container) ListAkeys(oid ObjectID, dk []byte, epoch Epoch) ([][]byte, error) {
	obj, _ := c.getObject(oid, false)
	if obj == nil {
		return nil, fmt.Errorf("%w: object %v", ErrNotFound, oid)
	}
	d := obj.getDkey(dk, false)
	if d == nil {
		return nil, fmt.Errorf("%w: dkey %q", ErrNotFound, dk)
	}
	var out [][]byte
	d.akeys.Ascend(func(k []byte, v interface{}) bool {
		out = append(out, append([]byte(nil), k...))
		return true
	})
	return out, nil
}

// ListObjects returns the IDs of all object shards stored.
func (c *Container) ListObjects() []ObjectID {
	var out []ObjectID
	c.objects.Ascend(func(k []byte, v interface{}) bool {
		out = append(out, ObjectID{
			Hi: binary.BigEndian.Uint64(k[:8]),
			Lo: binary.BigEndian.Uint64(k[8:]),
		})
		return true
	})
	return out
}

// Aggregate merges array history at or below epoch across every object,
// returning reclaimed bytes (the VOS aggregation service).
func (c *Container) Aggregate(epoch Epoch) int64 {
	var reclaimed int64
	c.objects.Ascend(func(_ []byte, ov interface{}) bool {
		obj := ov.(*object)
		obj.dkeys.Ascend(func(_ []byte, dv interface{}) bool {
			d := dv.(*dkey)
			d.akeys.Ascend(func(_ []byte, av interface{}) bool {
				a := av.(*akey)
				if a.kind == kindArray {
					reclaimed += a.extents.Aggregate(epoch)
				}
				return true
			})
			return true
		})
		return true
	})
	c.UsedBytes -= reclaimed
	return reclaimed
}
