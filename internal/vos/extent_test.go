package vos

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestExtentSimpleRoundTrip(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(0, 1, []byte("hello"))
	got, covered := tr.Read(0, 5, EpochMax)
	if string(got) != "hello" || covered != 5 {
		t.Fatalf("read = %q covered=%d", got, covered)
	}
	if tr.Size() != 5 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestExtentHolesReadZero(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(10, 1, []byte("abc"))
	got, covered := tr.Read(5, 10, EpochMax)
	want := append(make([]byte, 5), 'a', 'b', 'c', 0, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %v, want %v", got, want)
	}
	if covered != 0 {
		t.Fatalf("covered = %d, want 0 (range starts in a hole)", covered)
	}
}

func TestExtentOverwriteNewerEpochWins(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(0, 1, []byte("aaaaaa"))
	tr.Insert(2, 5, []byte("BB"))
	got, _ := tr.Read(0, 6, EpochMax)
	if string(got) != "aaBBaa" {
		t.Fatalf("latest read = %q, want aaBBaa", got)
	}
	// Reading at epoch 1 sees the original.
	got, _ = tr.Read(0, 6, 1)
	if string(got) != "aaaaaa" {
		t.Fatalf("epoch-1 read = %q, want aaaaaa", got)
	}
	// Reading at epoch 4 (before the overwrite) also sees the original.
	got, _ = tr.Read(0, 6, 4)
	if string(got) != "aaaaaa" {
		t.Fatalf("epoch-4 read = %q", got)
	}
}

func TestExtentInterleavedEpochOrder(t *testing.T) {
	// Writes at offsets out of order, epochs out of order with offsets:
	// resolution must always honour epoch, not insertion or offset order.
	tr := NewExtentTree()
	tr.Insert(4, 3, []byte("CCCC"))
	tr.Insert(0, 1, []byte("aaaaaaaa"))
	tr.Insert(2, 2, []byte("bbbb"))
	got, _ := tr.Read(0, 8, EpochMax)
	if string(got) != "aabbCCCC" {
		t.Fatalf("read = %q, want aabbCCCC", got)
	}
}

func TestExtentVisibleSize(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(0, 1, []byte("xxxx"))
	tr.Insert(100, 5, []byte("y"))
	if got := tr.VisibleSize(1); got != 4 {
		t.Fatalf("VisibleSize(1) = %d, want 4", got)
	}
	if got := tr.VisibleSize(EpochMax); got != 101 {
		t.Fatalf("VisibleSize(max) = %d, want 101", got)
	}
}

func TestExtentAggregateReclaims(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(0, 1, bytes.Repeat([]byte("a"), 100))
	tr.Insert(0, 2, bytes.Repeat([]byte("b"), 100)) // fully shadows epoch 1
	before, _ := tr.Read(0, 100, EpochMax)
	reclaimed := tr.Aggregate(EpochMax)
	if reclaimed != 100 {
		t.Fatalf("reclaimed = %d, want 100", reclaimed)
	}
	after, _ := tr.Read(0, 100, EpochMax)
	if !bytes.Equal(before, after) {
		t.Fatal("aggregation changed visible data")
	}
	if tr.Len() != 1 {
		t.Fatalf("extents after aggregate = %d, want 1", tr.Len())
	}
}

func TestExtentAggregatePreservesNewer(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(0, 1, []byte("aaaa"))
	tr.Insert(0, 10, []byte("ZZ")) // newer than the aggregation epoch
	tr.Aggregate(5)
	got, _ := tr.Read(0, 4, EpochMax)
	if string(got) != "ZZaa" {
		t.Fatalf("read = %q, want ZZaa", got)
	}
	got, _ = tr.Read(0, 4, 5)
	if string(got) != "aaaa" {
		t.Fatalf("epoch-5 read = %q, want aaaa", got)
	}
}

func TestExtentAggregateWithHoles(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(0, 1, []byte("aa"))
	tr.Insert(10, 2, []byte("bb"))
	tr.Aggregate(EpochMax)
	if tr.Len() != 2 {
		t.Fatalf("aggregate merged across a hole: %d extents", tr.Len())
	}
	got, _ := tr.Read(0, 12, EpochMax)
	want := make([]byte, 12)
	copy(want, "aa")
	copy(want[10:], "bb")
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %v, want %v", got, want)
	}
}

// TestExtentMatchesReferenceBuffer is the core property test: any write
// sequence read back at the latest epoch equals a flat reference buffer,
// both before and after aggregation.
func TestExtentMatchesReferenceBuffer(t *testing.T) {
	type write struct {
		Offset uint16
		Len    uint8
		Fill   byte
	}
	f := func(writes []write) bool {
		const space = 1 << 12
		tr := NewExtentTree()
		ref := make([]byte, space)
		var maxEnd int64
		for i, w := range writes {
			off := int64(w.Offset % (space / 2))
			l := int(w.Len%64) + 1
			data := bytes.Repeat([]byte{w.Fill}, l)
			tr.Insert(off, Epoch(i+1), data)
			copy(ref[off:off+int64(l)], data)
			if off+int64(l) > maxEnd {
				maxEnd = off + int64(l)
			}
		}
		got, _ := tr.Read(0, space, EpochMax)
		if !bytes.Equal(got, ref) {
			return false
		}
		if tr.VisibleSize(EpochMax) != maxEnd {
			return false
		}
		tr.Aggregate(EpochMax)
		got, _ = tr.Read(0, space, EpochMax)
		return bytes.Equal(got, ref)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// FuzzReadIntoMatchesRead pins the zero-copy contract: for any write
// sequence and any read window, ReadInto fills the caller's buffer with
// exactly the bytes the allocating Read returns (holes as zeros, even over a
// dirty reused buffer), reports the identical covered prefix, and a nil
// destination reports that same prefix while writing nothing.
func FuzzReadIntoMatchesRead(f *testing.F) {
	f.Add([]byte{0, 0, 8, 'a', 1, 0, 4, 'b'}, uint16(0), uint16(16))
	f.Add([]byte{0, 64, 32, 'x'}, uint16(60), uint16(100))
	f.Add([]byte{}, uint16(5), uint16(9))
	f.Fuzz(func(t *testing.T, writes []byte, offRaw, lenRaw uint16) {
		const space = 1 << 12
		tr := NewExtentTree()
		for i := 0; i+3 < len(writes); i += 4 {
			off := int64(writes[i])<<4 | int64(writes[i+1])>>4
			l := int(writes[i+2]%64) + 1
			tr.Insert(off, Epoch(i/4+1), bytes.Repeat([]byte{writes[i+3]}, l))
		}
		off := int64(offRaw % space)
		length := int(lenRaw%512) + 1

		want, wantCovered := tr.Read(off, length, EpochMax)
		dst := bytes.Repeat([]byte{0xee}, length) // dirty, as a reused buffer would be
		gotCovered := tr.ReadInto(dst, off, length, EpochMax)
		if !bytes.Equal(dst, want) {
			t.Fatalf("ReadInto([%d,%d)) = %v, Read = %v", off, off+int64(length), dst, want)
		}
		if gotCovered != wantCovered {
			t.Fatalf("ReadInto covered = %d, Read covered = %d", gotCovered, wantCovered)
		}
		if discard := tr.ReadInto(nil, off, length, EpochMax); discard != wantCovered {
			t.Fatalf("discard ReadInto covered = %d, want %d", discard, wantCovered)
		}
	})
}

func TestExtentInsertCopiesData(t *testing.T) {
	tr := NewExtentTree()
	buf := []byte("orig")
	tr.Insert(0, 1, buf)
	buf[0] = 'X'
	got, _ := tr.Read(0, 4, EpochMax)
	if string(got) != "orig" {
		t.Fatal("extent aliased caller's buffer")
	}
}

func TestExtentEmptyInsertIgnored(t *testing.T) {
	tr := NewExtentTree()
	tr.Insert(0, 1, nil)
	if tr.Len() != 0 || tr.Size() != 0 {
		t.Fatal("empty insert stored an extent")
	}
}
