package vos

import "sort"

// Epoch is a logical timestamp. Updates are tagged with the epoch at which
// they were made; fetches read the state visible at a given epoch.
type Epoch uint64

// EpochMax reads the latest state.
const EpochMax = Epoch(^uint64(0))

// Extent is one versioned write to a byte-array akey: Data covers
// [Offset, Offset+len(Data)) as of Epoch.
type Extent struct {
	Offset int64
	Epoch  Epoch
	Data   []byte
}

// End returns the first byte offset past the extent.
func (e Extent) End() int64 { return e.Offset + int64(len(e.Data)) }

// ExtentTree stores the versioned extents of one array akey, ordered by
// (offset, epoch). It is the simulator's analogue of VOS's evtree. Reads
// resolve overlapping extents by visibility: the highest epoch not past the
// read epoch wins for every byte.
type ExtentTree struct {
	// extents are sorted by Offset, then Epoch. Multiple extents may
	// overlap; MVCC keeps old versions until Aggregate.
	extents []Extent
	// maxEnd caches the high-water mark of written bytes (the array size).
	maxEnd int64
	// scratch holds the visible overlapping set of the read in flight; it is
	// retained so steady-state reads allocate nothing. Trees are confined to
	// one target xstream, so a single buffer suffices.
	scratch []Extent
}

// NewExtentTree returns an empty tree.
func NewExtentTree() *ExtentTree { return &ExtentTree{} }

// Len returns the number of stored extents.
func (t *ExtentTree) Len() int { return len(t.extents) }

// Size returns the high-water mark: one past the last written byte.
func (t *ExtentTree) Size() int64 { return t.maxEnd }

// Insert records a write of data at offset with the given epoch. Data is
// copied so the caller can reuse its buffer.
func (t *ExtentTree) Insert(offset int64, epoch Epoch, data []byte) {
	if len(data) == 0 {
		return
	}
	e := Extent{Offset: offset, Epoch: epoch, Data: append([]byte(nil), data...)}
	i := sort.Search(len(t.extents), func(i int) bool {
		x := t.extents[i]
		return x.Offset > e.Offset || (x.Offset == e.Offset && x.Epoch > e.Epoch)
	})
	t.extents = append(t.extents, Extent{})
	copy(t.extents[i+1:], t.extents[i:])
	t.extents[i] = e
	if e.End() > t.maxEnd {
		t.maxEnd = e.End()
	}
}

// Read resolves the bytes of [offset, offset+length) visible at epoch.
// Unwritten bytes read as zero (holes). The second result reports how many
// bytes at the start of the range were actually covered by writes visible at
// the epoch (0 when the whole range is a hole).
//
// This is the hottest path of the whole simulator — every simulated fetch
// lands here with transfer-sized ranges — so it avoids the naive
// mark-a-bool-per-byte formulation: the covered prefix comes from an
// interval walk over the (offset-ordered) visible extents, the overlap scan
// stops at the binary-searched first extent starting past the range, and a
// read fully covered by a single extent copies it without first zeroing a
// buffer. Results are byte-for-byte those of the straightforward overlay.
func (t *ExtentTree) Read(offset int64, length int, epoch Epoch) ([]byte, int64) {
	end := offset + int64(length)
	overlapping, covered := t.visible(offset, end, epoch)

	// A range fully covered by one extent — the common case for aligned
	// IOR-style transfers — is a straight copy: append allocates without
	// zeroing, where make([]byte, length) would clear the buffer only to
	// overwrite every byte.
	if len(overlapping) == 1 {
		if e := overlapping[0]; e.Offset <= offset && e.End() >= end {
			return append([]byte(nil), e.Data[offset-e.Offset:end-e.Offset]...), covered
		}
	}

	buf := make([]byte, length)
	t.overlay(buf, overlapping, offset, end)
	return buf, covered
}

// ReadInto resolves the bytes of [offset, offset+length) visible at epoch
// into dst, which must be length bytes long; every byte of dst is written
// (holes as zeros), so callers can reuse buffers across reads. A nil dst
// performs the identical visibility walk without materializing any bytes —
// the geometry-only mode backing no-materialize reads, whose covered result
// and cost are byte-identical to the materializing call. The return value is
// Read's covered-prefix length. Steady-state calls allocate nothing.
func (t *ExtentTree) ReadInto(dst []byte, offset int64, length int, epoch Epoch) int64 {
	if dst != nil && len(dst) != length {
		panic("vos: ReadInto dst length mismatch")
	}
	end := offset + int64(length)
	overlapping, covered := t.visible(offset, end, epoch)
	if dst == nil {
		return covered
	}
	// A range fully covered by one extent needs no pre-zeroing: the copy
	// overwrites every destination byte.
	if len(overlapping) == 1 {
		if e := overlapping[0]; e.Offset <= offset && e.End() >= end {
			copy(dst, e.Data[offset-e.Offset:end-e.Offset])
			return covered
		}
	}
	clear(dst)
	t.overlay(dst, overlapping, offset, end)
	return covered
}

// visible collects the extents overlapping [offset, end) that are visible at
// epoch, in offset order, into the tree's scratch buffer, and returns them
// with the covered-prefix length. The scratch slice is only valid until the
// next visible call.
func (t *ExtentTree) visible(offset, end int64, epoch Epoch) ([]Extent, int64) {
	// No extent with Offset >= end can overlap; extents are offset-sorted,
	// so everything at or past this index is irrelevant.
	stop := sort.Search(len(t.extents), func(i int) bool { return t.extents[i].Offset >= end })
	overlapping := t.scratch[:0]
	for _, e := range t.extents[:stop] {
		if e.Epoch > epoch || e.End() <= offset {
			continue
		}
		overlapping = append(overlapping, e)
	}
	t.scratch = overlapping
	// The covered prefix is an interval union walk: extents arrive in
	// offset order, so the prefix extends while each next extent starts at
	// or before the current frontier.
	prefix := offset
	for _, e := range overlapping {
		if e.Offset > prefix {
			break
		}
		if e.End() > prefix {
			prefix = e.End()
		}
	}
	if prefix > end {
		prefix = end
	}
	return overlapping, prefix - offset
}

// overlay copies the range intersection of each extent into buf (whose
// origin is offset). Overlap resolution must be epoch-ordered (the highest
// epoch wins for every byte), so the overlapping set is sorted by epoch
// first; the insertion sort is stable, keeping equal-epoch extents in offset
// order — exactly the order the (offset, epoch)-sorted tree would overlay
// them in — and allocation-free, unlike sort.SliceStable.
func (t *ExtentTree) overlay(buf []byte, overlapping []Extent, offset, end int64) {
	for i := 1; i < len(overlapping); i++ {
		e := overlapping[i]
		j := i
		for j > 0 && overlapping[j-1].Epoch > e.Epoch {
			overlapping[j] = overlapping[j-1]
			j--
		}
		overlapping[j] = e
	}
	for _, e := range overlapping {
		lo := e.Offset
		if lo < offset {
			lo = offset
		}
		hi := e.End()
		if hi > end {
			hi = end
		}
		copy(buf[lo-offset:hi-offset], e.Data[lo-e.Offset:hi-e.Offset])
	}
}

// VisibleSize returns one past the last byte visible at epoch.
func (t *ExtentTree) VisibleSize(epoch Epoch) int64 {
	var size int64
	for _, e := range t.extents {
		if e.Epoch <= epoch && e.End() > size {
			size = e.End()
		}
	}
	return size
}

// Aggregate merges history at or below epoch into a flat, non-overlapping
// set of extents stamped with the aggregation epoch, discarding shadowed
// versions. Extents newer than epoch are preserved untouched. It returns the
// number of bytes of old version data reclaimed.
func (t *ExtentTree) Aggregate(epoch Epoch) int64 {
	var old, newer []Extent
	var oldBytes int64
	for _, e := range t.extents {
		if e.Epoch <= epoch {
			old = append(old, e)
			oldBytes += int64(len(e.Data))
		} else {
			newer = append(newer, e)
		}
	}
	if len(old) == 0 {
		return 0
	}
	// Flatten the visible image of the old extents into runs.
	lo, hi := old[0].Offset, old[0].End()
	for _, e := range old[1:] {
		if e.Offset < lo {
			lo = e.Offset
		}
		if e.End() > hi {
			hi = e.End()
		}
	}
	img, _ := t.readFrom(old, lo, int(hi-lo), epoch)
	written := make([]bool, hi-lo)
	for _, e := range old {
		for i := e.Offset; i < e.End(); i++ {
			written[i-lo] = true
		}
	}
	var flat []Extent
	var keptBytes int64
	i := 0
	for i < len(written) {
		if !written[i] {
			i++
			continue
		}
		j := i
		for j < len(written) && written[j] {
			j++
		}
		flat = append(flat, Extent{
			Offset: lo + int64(i),
			Epoch:  epoch,
			Data:   append([]byte(nil), img[i:j]...),
		})
		keptBytes += int64(j - i)
		i = j
	}
	merged := append(flat, newer...)
	sort.SliceStable(merged, func(a, b int) bool {
		if merged[a].Offset != merged[b].Offset {
			return merged[a].Offset < merged[b].Offset
		}
		return merged[a].Epoch < merged[b].Epoch
	})
	t.extents = merged
	return oldBytes - keptBytes
}

// readFrom is Read over an explicit extent set (used by Aggregate).
func (t *ExtentTree) readFrom(extents []Extent, offset int64, length int, epoch Epoch) ([]byte, int64) {
	saved := t.extents
	t.extents = extents
	buf, covered := t.Read(offset, length, epoch)
	t.extents = saved
	return buf, covered
}

// Extents returns a copy of the extent list (for inspection and tests).
func (t *ExtentTree) Extents() []Extent {
	return append([]Extent(nil), t.extents...)
}
