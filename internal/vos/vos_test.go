package vos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

var testOID = ObjectID{Hi: 0x1234, Lo: 0x5678}

func TestSingleValueRoundTrip(t *testing.T) {
	c := NewContainer("c0")
	created := c.UpdateSingle(testOID, []byte("dk"), []byte("ak"), 1, []byte("value1"))
	if !created {
		t.Fatal("first update did not report object creation")
	}
	if c.UpdateSingle(testOID, []byte("dk"), []byte("ak"), 2, []byte("value2")) {
		t.Fatal("second update reported object creation")
	}
	v, err := c.FetchSingle(testOID, []byte("dk"), []byte("ak"), EpochMax)
	if err != nil || string(v) != "value2" {
		t.Fatalf("fetch latest = %q, %v", v, err)
	}
	v, err = c.FetchSingle(testOID, []byte("dk"), []byte("ak"), 1)
	if err != nil || string(v) != "value1" {
		t.Fatalf("fetch@1 = %q, %v", v, err)
	}
}

func TestFetchMissing(t *testing.T) {
	c := NewContainer("c0")
	if _, err := c.FetchSingle(testOID, []byte("dk"), []byte("ak"), EpochMax); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	c.UpdateSingle(testOID, []byte("dk"), []byte("ak"), 1, []byte("v"))
	if _, err := c.FetchSingle(testOID, []byte("other"), []byte("ak"), EpochMax); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing dkey err = %v", err)
	}
	if _, err := c.FetchSingle(testOID, []byte("dk"), []byte("other"), EpochMax); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing akey err = %v", err)
	}
}

func TestArrayRoundTrip(t *testing.T) {
	c := NewContainer("c0")
	data := bytes.Repeat([]byte("x"), 1024)
	c.UpdateArray(testOID, []byte("dk"), []byte("data"), 1, 0, data)
	c.UpdateArray(testOID, []byte("dk"), []byte("data"), 2, 1024, data)
	got, err := c.FetchArray(testOID, []byte("dk"), []byte("data"), EpochMax, 512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte("x"), 1024)) {
		t.Fatal("array read mismatch across extent boundary")
	}
	if size := c.ArraySize(testOID, []byte("dk"), []byte("data"), EpochMax); size != 2048 {
		t.Fatalf("array size = %d, want 2048", size)
	}
	if size := c.ArraySize(testOID, []byte("dk"), []byte("data"), 1); size != 1024 {
		t.Fatalf("array size@1 = %d, want 1024", size)
	}
}

func TestMixedKindPanics(t *testing.T) {
	c := NewContainer("c0")
	c.UpdateSingle(testOID, []byte("dk"), []byte("ak"), 1, []byte("v"))
	defer func() {
		if recover() == nil {
			t.Error("array update on single akey did not panic")
		}
	}()
	c.UpdateArray(testOID, []byte("dk"), []byte("ak"), 2, 0, []byte("x"))
}

func TestPunchObject(t *testing.T) {
	c := NewContainer("c0")
	c.UpdateSingle(testOID, []byte("dk"), []byte("ak"), 1, []byte("v"))
	if err := c.PunchObject(testOID, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchSingle(testOID, []byte("dk"), []byte("ak"), EpochMax); !errors.Is(err, ErrPunched) {
		t.Fatalf("post-punch fetch err = %v, want ErrPunched", err)
	}
	// Reads before the punch epoch still see the data (snapshot semantics).
	v, err := c.FetchSingle(testOID, []byte("dk"), []byte("ak"), 4)
	if err != nil || string(v) != "v" {
		t.Fatalf("pre-punch fetch = %q, %v", v, err)
	}
}

func TestPunchDkey(t *testing.T) {
	c := NewContainer("c0")
	c.UpdateSingle(testOID, []byte("d1"), []byte("ak"), 1, []byte("v1"))
	c.UpdateSingle(testOID, []byte("d2"), []byte("ak"), 1, []byte("v2"))
	if err := c.PunchDkey(testOID, []byte("d1"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchSingle(testOID, []byte("d1"), []byte("ak"), EpochMax); !errors.Is(err, ErrPunched) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.FetchSingle(testOID, []byte("d2"), []byte("ak"), EpochMax); err != nil {
		t.Fatalf("unrelated dkey punched: %v", err)
	}
	dkeys, err := c.ListDkeys(testOID, EpochMax)
	if err != nil || len(dkeys) != 1 || string(dkeys[0]) != "d2" {
		t.Fatalf("dkeys = %v, %v", dkeys, err)
	}
}

func TestListDkeysSorted(t *testing.T) {
	c := NewContainer("c0")
	for _, dk := range []string{"zeta", "alpha", "mid"} {
		c.UpdateSingle(testOID, []byte(dk), []byte("ak"), 1, []byte("v"))
	}
	dkeys, err := c.ListDkeys(testOID, EpochMax)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, w := range want {
		if string(dkeys[i]) != w {
			t.Fatalf("dkeys = %v, want %v", dkeys, want)
		}
	}
}

func TestListAkeys(t *testing.T) {
	c := NewContainer("c0")
	c.UpdateSingle(testOID, []byte("dk"), []byte("b"), 1, []byte("v"))
	c.UpdateSingle(testOID, []byte("dk"), []byte("a"), 1, []byte("v"))
	aks, err := c.ListAkeys(testOID, []byte("dk"), EpochMax)
	if err != nil || len(aks) != 2 || string(aks[0]) != "a" {
		t.Fatalf("akeys = %v, %v", aks, err)
	}
}

func TestListObjects(t *testing.T) {
	c := NewContainer("c0")
	ids := []ObjectID{{Hi: 2, Lo: 1}, {Hi: 1, Lo: 9}, {Hi: 1, Lo: 2}}
	for _, id := range ids {
		c.UpdateSingle(id, []byte("dk"), []byte("ak"), 1, []byte("v"))
	}
	got := c.ListObjects()
	if len(got) != 3 {
		t.Fatalf("objects = %v", got)
	}
	// Sorted by (Hi, Lo).
	if got[0] != (ObjectID{Hi: 1, Lo: 2}) || got[2] != (ObjectID{Hi: 2, Lo: 1}) {
		t.Fatalf("objects not sorted: %v", got)
	}
	if c.NumObjects() != 3 {
		t.Fatalf("NumObjects = %d", c.NumObjects())
	}
}

func TestContainerAggregate(t *testing.T) {
	c := NewContainer("c0")
	for e := Epoch(1); e <= 4; e++ {
		c.UpdateArray(testOID, []byte("dk"), []byte("data"), e, 0, bytes.Repeat([]byte{byte(e)}, 100))
	}
	used := c.UsedBytes
	if used != 400 {
		t.Fatalf("used = %d", used)
	}
	reclaimed := c.Aggregate(EpochMax)
	if reclaimed != 300 {
		t.Fatalf("reclaimed = %d, want 300", reclaimed)
	}
	if c.UsedBytes != 100 {
		t.Fatalf("used after aggregate = %d, want 100", c.UsedBytes)
	}
	got, err := c.FetchArray(testOID, []byte("dk"), []byte("data"), EpochMax, 0, 100)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{4}, 100)) {
		t.Fatalf("post-aggregate read wrong: %v %v", got[:4], err)
	}
}

func TestMaxEpochTracking(t *testing.T) {
	c := NewContainer("c0")
	c.UpdateSingle(testOID, []byte("dk"), []byte("ak"), 7, []byte("v"))
	c.UpdateArray(testOID, []byte("dk"), []byte("arr"), 9, 0, []byte("x"))
	if c.MaxEpoch() != 9 {
		t.Fatalf("MaxEpoch = %d, want 9", c.MaxEpoch())
	}
}

func TestManyObjectsManyDkeys(t *testing.T) {
	// Stress the tree composition: 50 objects x 20 dkeys x 2 akeys.
	c := NewContainer("c0")
	for o := 0; o < 50; o++ {
		oid := ObjectID{Hi: uint64(o), Lo: uint64(o * 31)}
		for d := 0; d < 20; d++ {
			dk := []byte(fmt.Sprintf("dkey.%04d", d))
			c.UpdateSingle(oid, dk, []byte("meta"), 1, []byte{byte(o), byte(d)})
			c.UpdateArray(oid, dk, []byte("data"), 1, int64(d)*10, bytes.Repeat([]byte{byte(o)}, 10))
		}
	}
	for o := 0; o < 50; o++ {
		oid := ObjectID{Hi: uint64(o), Lo: uint64(o * 31)}
		for d := 0; d < 20; d++ {
			dk := []byte(fmt.Sprintf("dkey.%04d", d))
			v, err := c.FetchSingle(oid, dk, []byte("meta"), EpochMax)
			if err != nil || v[0] != byte(o) || v[1] != byte(d) {
				t.Fatalf("obj %d dkey %d: %v %v", o, d, v, err)
			}
			arr, err := c.FetchArray(oid, dk, []byte("data"), EpochMax, int64(d)*10, 10)
			if err != nil || !bytes.Equal(arr, bytes.Repeat([]byte{byte(o)}, 10)) {
				t.Fatalf("obj %d dkey %d array: %v %v", o, d, arr, err)
			}
		}
	}
}

func TestObjectIDKeyOrdering(t *testing.T) {
	a := ObjectID{Hi: 1, Lo: 0xFFFFFFFFFFFFFFFF}
	b := ObjectID{Hi: 2, Lo: 0}
	if bytes.Compare(a.Key(), b.Key()) >= 0 {
		t.Fatal("OID key encoding does not sort by (Hi, Lo)")
	}
}
