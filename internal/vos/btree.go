// Package vos implements the Versioned Object Store: the per-target storage
// engine DAOS runs over persistent memory. Objects hold distribution keys
// (dkeys); dkeys hold attribute keys (akeys); akeys hold either a single
// versioned value or a byte-array of versioned extents. All indexes are
// B+trees, as in the real VOS, and every update is tagged with an epoch so
// reads can be served at any point in history until aggregation merges old
// versions.
package vos

import "bytes"

// btreeOrder is the fan-out of the B+tree. VOS uses wide nodes to keep trees
// shallow on byte-addressable media.
const btreeOrder = 16

// BTree is an in-memory B+tree keyed by byte slices, the index structure for
// object tables, dkey/akey trees, and DFS directories. Values are opaque.
// Keys are copied on insert; values are stored as given.
type BTree struct {
	root *btreeNode
	size int
}

// btreeNode is either a leaf (items only) or an internal node (children).
// Internal nodes hold separator keys: children[i] covers keys < keys[i];
// children[len(keys)] covers the rest.
type btreeNode struct {
	keys     [][]byte
	values   []interface{} // leaves only, parallel to keys
	children []*btreeNode  // internal only, len(keys)+1
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{root: &btreeNode{}} }

// Len returns the number of stored keys.
func (t *BTree) Len() int { return t.size }

// search returns the index of the first key >= k in node n.
func search(keys [][]byte, k []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(keys) && bytes.Equal(keys[lo], k)
	return lo, found
}

// Get returns the value stored under k.
func (t *BTree) Get(k []byte) (interface{}, bool) {
	n := t.root
	for !n.leaf() {
		i, found := search(n.keys, k)
		if found {
			i++ // separator equal to key: key lives in the right subtree
		}
		n = n.children[i]
	}
	i, found := search(n.keys, k)
	if !found {
		return nil, false
	}
	return n.values[i], true
}

// Put inserts or replaces the value under k, reporting whether the key was
// newly inserted.
func (t *BTree) Put(k []byte, v interface{}) bool {
	inserted := t.insert(t.root, k, v)
	if len(t.root.keys) >= btreeOrder {
		left, sep, right := split(t.root)
		t.root = &btreeNode{
			keys:     [][]byte{sep},
			children: []*btreeNode{left, right},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

func (t *BTree) insert(n *btreeNode, k []byte, v interface{}) bool {
	if n.leaf() {
		i, found := search(n.keys, k)
		if found {
			n.values[i] = v
			return false
		}
		kc := append([]byte(nil), k...)
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = kc
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = v
		return true
	}
	i, found := search(n.keys, k)
	if found {
		i++
	}
	child := n.children[i]
	inserted := t.insert(child, k, v)
	if len(child.keys) >= btreeOrder {
		left, sep, right := split(child)
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sep
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i] = left
		n.children[i+1] = right
	}
	return inserted
}

// split divides an overfull node into two halves and returns the separator
// promoted to the parent. For leaves the separator is the first key of the
// right half (B+tree style: all keys stay in leaves).
func split(n *btreeNode) (left *btreeNode, sep []byte, right *btreeNode) {
	mid := len(n.keys) / 2
	if n.leaf() {
		right = &btreeNode{
			keys:   append([][]byte(nil), n.keys[mid:]...),
			values: append([]interface{}(nil), n.values[mid:]...),
		}
		left = &btreeNode{
			keys:   append([][]byte(nil), n.keys[:mid]...),
			values: append([]interface{}(nil), n.values[:mid]...),
		}
		return left, right.keys[0], right
	}
	sep = n.keys[mid]
	left = &btreeNode{
		keys:     append([][]byte(nil), n.keys[:mid]...),
		children: append([]*btreeNode(nil), n.children[:mid+1]...),
	}
	right = &btreeNode{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	return left, sep, right
}

// Delete removes k, reporting whether it was present. Nodes are allowed to
// underflow (no rebalancing): VOS-style trees are write-mostly and the
// simulator favours simplicity over worst-case height, which stays bounded
// because deletes never increase height.
func (t *BTree) Delete(k []byte) bool {
	n := t.root
	for !n.leaf() {
		i, found := search(n.keys, k)
		if found {
			i++
		}
		n = n.children[i]
	}
	i, found := search(n.keys, k)
	if !found {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return true
}

// Ascend calls fn for every key/value in ascending key order until fn
// returns false.
func (t *BTree) Ascend(fn func(k []byte, v interface{}) bool) {
	t.ascend(t.root, fn)
}

func (t *BTree) ascend(n *btreeNode, fn func(k []byte, v interface{}) bool) bool {
	if n.leaf() {
		for i, k := range n.keys {
			if !fn(k, n.values[i]) {
				return false
			}
		}
		return true
	}
	for i, c := range n.children {
		if !t.ascend(c, fn) {
			return false
		}
		if i < len(n.keys) {
			// Separator keys are routing information only; the real
			// key/value pairs all live in leaves.
			continue
		}
	}
	return true
}

// AscendRange calls fn for keys in [lo, hi) in ascending order until fn
// returns false. A nil hi means unbounded.
func (t *BTree) AscendRange(lo, hi []byte, fn func(k []byte, v interface{}) bool) {
	t.Ascend(func(k []byte, v interface{}) bool {
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return true
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return false
		}
		return fn(k, v)
	})
}

// Keys returns all keys in ascending order (copies).
func (t *BTree) Keys() [][]byte {
	out := make([][]byte, 0, t.size)
	t.Ascend(func(k []byte, v interface{}) bool {
		out = append(out, append([]byte(nil), k...))
		return true
	})
	return out
}
