package vos

import (
	"encoding/binary"
	"testing"
)

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 16)
		binary.BigEndian.PutUint64(k, uint64(i)*2654435761)
		binary.BigEndian.PutUint64(k[8:], uint64(i))
		keys[i] = k
	}
	return keys
}

func BenchmarkBTreePut(b *testing.B) {
	keys := benchKeys(b.N)
	tr := NewBTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], i)
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	const n = 100_000
	keys := benchKeys(n)
	tr := NewBTree()
	for i, k := range keys {
		tr.Put(k, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%n])
	}
}

func BenchmarkBTreeAscend(b *testing.B) {
	const n = 100_000
	tr := NewBTree()
	for i, k := range benchKeys(n) {
		tr.Put(k, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Ascend(func(k []byte, v interface{}) bool {
			count++
			return count < 1000
		})
	}
}

func BenchmarkExtentInsert(b *testing.B) {
	tr := NewExtentTree()
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i)*4096, Epoch(i+1), data)
	}
}

func BenchmarkExtentRead(b *testing.B) {
	tr := NewExtentTree()
	data := make([]byte, 4096)
	const n = 1024
	for i := 0; i < n; i++ {
		tr.Insert(int64(i)*4096, Epoch(i+1), data)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Read(int64(i%n)*4096, 4096, EpochMax)
	}
}

// BenchmarkDataPathReadInto is the zero-copy counterpart of
// BenchmarkExtentRead: the same extent population read into one reused
// buffer. The steady state must not allocate — the overlap scratch is
// retained on the tree and the destination is the caller's — which
// TestReadIntoZeroAlloc pins.
func BenchmarkDataPathReadInto(b *testing.B) {
	tr := NewExtentTree()
	data := make([]byte, 4096)
	const n = 1024
	for i := 0; i < n; i++ {
		tr.Insert(int64(i)*4096, Epoch(i+1), data)
	}
	dst := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ReadInto(dst, int64(i%n)*4096, 4096, EpochMax)
	}
}

func TestReadIntoZeroAlloc(t *testing.T) {
	tr := NewExtentTree()
	data := make([]byte, 4096)
	const n = 16
	for i := 0; i < n; i++ {
		tr.Insert(int64(i)*4096, Epoch(i+1), data)
	}
	dst := make([]byte, 8192)
	i := 0
	// Unaligned reads straddle two extents, exercising the overlay path;
	// warm-up inside AllocsPerRun grows the scratch once before counting.
	allocs := testing.AllocsPerRun(100, func() {
		off := int64(i%(n-2))*4096 + 123
		tr.ReadInto(dst, off, 8192, EpochMax)
		i++
	})
	if allocs != 0 {
		t.Fatalf("ReadInto allocates %v times per read, want 0", allocs)
	}
}

func BenchmarkContainerUpdateArray(b *testing.B) {
	c := NewContainer("bench")
	data := make([]byte, 1<<20)
	oid := ObjectID{Hi: 1, Lo: 1}
	dk := []byte("chunk.0000000000000000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.UpdateArray(oid, dk, []byte("data"), Epoch(i+1), 0, data[:4096])
	}
}
