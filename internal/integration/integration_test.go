// Package integration_test exercises whole-stack scenarios that cross
// package boundaries: data written through one interface read through
// another, failure injection under live traffic, aggregation, and
// end-to-end determinism.
package integration_test

import (
	"bytes"
	"testing"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/engine"
	"daosim/internal/fabric"
	"daosim/internal/hdf5"
	"daosim/internal/ior"
	"daosim/internal/mpi"
	"daosim/internal/mpiio"
	"daosim/internal/placement"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

func TestCrossInterfaceVisibility(t *testing.T) {
	// Bytes written through DFS must read back identically through the
	// DFuse POSIX mount, through MPI-I/O over that mount, and through the
	// raw array API — one store, four views.
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, _ := client.CreatePool(p, "p0")
		ct, _ := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S2})
		fsys, err := dfs.Mount(p, ct)
		if err != nil {
			t.Error(err)
			return
		}
		payload := bytes.Repeat([]byte("xview"), 1<<18) // ~1.25 MiB
		f, err := fsys.Create(p, "/shared-view.dat", dfs.CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteAt(p, 0, payload); err != nil {
			t.Error(err)
			return
		}

		// View 2: POSIX through dfuse.
		mount := dfuse.NewMount(tb.Sim, tb.ClientNode(0), fsys, dfuse.DefaultCosts())
		fd, err := mount.Open(p, "/shared-view.dat", dfuse.O_RDWR, dfs.CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		got, err := fd.Pread(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("dfuse view mismatch (%v)", err)
		}

		// View 3: MPI-I/O (single-rank world) over the same mount.
		world := mpi.NewWorld(tb.Sim, tb.Fabric, []*fabric.Node{tb.ClientNode(0)})
		world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			mf, err := mpiio.OpenPOSIX(cp, r, mount, "/shared-view.dat", false, dfs.CreateOpts{}, mpiio.DefaultHints(1))
			if err != nil {
				t.Error(err)
				return
			}
			got, err := mf.ReadAt(cp, 0, int64(len(payload)))
			if err != nil || !bytes.Equal(got, payload) {
				t.Errorf("mpiio view mismatch (%v)", err)
			}
		})

		// View 4: the raw array object under the DFS file.
		info, _ := fsys.Stat(p, "/shared-view.dat")
		if info.Size != int64(len(payload)) {
			t.Errorf("stat size = %d", info.Size)
		}
	})
}

func TestHDF5OverEveryTransport(t *testing.T) {
	// An HDF5 file written through the POSIX VFD must be readable through
	// an MPI-I/O VFD handle (mpiio.File satisfies hdf5.VFD).
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, _ := client.CreatePool(p, "p0")
		ct, _ := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.SX})
		fsys, _ := dfs.Mount(p, ct)
		mount := dfuse.NewMount(tb.Sim, tb.ClientNode(0), fsys, dfuse.DefaultCosts())

		payload := bytes.Repeat([]byte("h5"), 1<<19) // 1 MiB
		fd, err := mount.Open(p, "/x.h5", dfuse.O_CREATE|dfuse.O_RDWR, dfs.CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		hf, err := hdf5.Create(p, hdf5.NewPosixVFD(fd), hdf5.DefaultCosts())
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := hf.CreateDataset(p, "payload", int64(len(payload)), 0)
		ds.Write(p, 0, payload)
		hf.Close(p)

		world := mpi.NewWorld(tb.Sim, tb.Fabric, []*fabric.Node{tb.ClientNode(0)})
		world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			mf, err := mpiio.OpenPOSIX(cp, r, mount, "/x.h5", false, dfs.CreateOpts{}, mpiio.DefaultHints(1))
			if err != nil {
				t.Error(err)
				return
			}
			hf2, err := hdf5.Open(cp, mf, hdf5.DefaultCosts())
			if err != nil {
				t.Error(err)
				return
			}
			ds2, err := hf2.OpenDataset(cp, "payload")
			if err != nil {
				t.Error(err)
				return
			}
			got, err := ds2.Read(cp, 0, int64(len(payload)))
			if err != nil || !bytes.Equal(got, payload) {
				t.Errorf("hdf5-over-mpiio mismatch (%v)", err)
			}
		})
	})
}

func TestIORSurvivesEngineExclusionBetweenPhases(t *testing.T) {
	// Write an IOR dataset, exclude an engine, and run a fresh write+read:
	// layouts recompute onto live targets and the run completes verified.
	tb := cluster.New(cluster.Small())
	tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, 2, 2)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := ior.Config{
			API: ior.APIDFS, FilePerProc: true,
			BlockSize: 2 << 20, TransferSize: 1 << 20,
			DoWrite: true, DoRead: true, Verify: true,
			Class: placement.S2,
		}
		if _, err := ior.Run(p, env, cfg); err != nil {
			t.Error(err)
			return
		}
		tb.ExcludeEngine(3)
		res, err := ior.Run(p, env, cfg)
		if err != nil {
			t.Errorf("run after exclusion: %v", err)
			return
		}
		if res.VerifyErrors != 0 {
			t.Errorf("verify errors after exclusion: %d", res.VerifyErrors)
		}
	})
}

func TestAggregationUnderOverwriteWorkload(t *testing.T) {
	// Repeated overwrites accumulate epochs; engine-side aggregation
	// reclaims the history without changing visible data.
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, _ := client.CreatePool(p, "p0")
		ct, _ := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S1})
		arr, err := ct.OpenArray(p, ct.AllocOID(placement.S1))
		if err != nil {
			t.Error(err)
			return
		}
		final := bytes.Repeat([]byte{9}, 1<<20)
		for v := 0; v < 4; v++ {
			data := bytes.Repeat([]byte{byte(v)}, 1<<20)
			if v == 3 {
				data = final
			}
			if err := arr.Write(p, 0, data); err != nil {
				t.Error(err)
				return
			}
		}
		before := tb.Engines[arr.Obj.Layout.Shards[0][0]/tb.Cfg.TargetsPerEngine].Device().Used()
		if before != 4<<20 {
			t.Errorf("pre-aggregation used = %d", before)
		}
		// Aggregate every target of the owning engine through the RPC.
		target := arr.Obj.Layout.Shards[0][0]
		engID := target / tb.Cfg.TargetsPerEngine
		eng := tb.Engines[engID]
		resp := tb.Fabric.Call(p, tb.ClientNode(0), eng.Node(), engine.ServiceName(engID), fabric.Request{
			Body: &engine.AggregateReq{Target: target, Epoch: vos.EpochMax},
			Size: 64,
		})
		if resp.Err != nil {
			t.Error(resp.Err)
			return
		}
		if got := resp.Body.(*engine.AggregateResp).Reclaimed; got != 3<<20 {
			t.Errorf("reclaimed = %d, want 3 MiB", got)
		}
		got, err := arr.Read(p, 0, 1<<20)
		if err != nil || !bytes.Equal(got, final) {
			t.Errorf("post-aggregation data mismatch (%v)", err)
		}
	})
}

func TestEndToEndDeterminism(t *testing.T) {
	// Two identical IOR runs on fresh testbeds must produce identical
	// virtual-time results, down to the nanosecond.
	run := func() (float64, float64, time.Duration) {
		tb := cluster.New(cluster.Small())
		defer tb.Shutdown()
		var w, r float64
		span := tb.Run(func(p *sim.Proc) {
			env, err := ior.NewEnv(p, tb, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ior.Run(p, env, ior.Config{
				API: ior.APIMPIIO, FilePerProc: false,
				BlockSize: 4 << 20, TransferSize: 1 << 20,
				DoWrite: true, DoRead: true,
				Class: placement.SX,
			})
			if err != nil {
				t.Fatal(err)
			}
			w, r = res.Write.MaxGiBs, res.Read.MaxGiBs
		})
		return w, r, span
	}
	w1, r1, s1 := run()
	w2, r2, s2 := run()
	if w1 != w2 || r1 != r2 || s1 != s2 {
		t.Fatalf("runs diverged: (%v,%v,%v) vs (%v,%v,%v)", w1, r1, s1, w2, r2, s2)
	}
}

func TestManySmallFilesMetadataWorkload(t *testing.T) {
	// The paper's §I motivation: large numbers of small files stress POSIX
	// metadata. Create 200 small files across 4 ranks, list and stat them
	// all, and verify the namespace holds.
	tb := cluster.New(cluster.Small())
	tb.Run(func(p *sim.Proc) {
		var rankNodes []*fabric.Node
		for r := 0; r < 4; r++ {
			rankNodes = append(rankNodes, tb.ClientNode(r/2))
		}
		world := mpi.NewWorld(tb.Sim, tb.Fabric, rankNodes)
		admin := tb.NewClient(tb.ClientNode(0), 99)
		pool, _ := admin.CreatePool(p, "p0")
		pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S1})

		world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			cl := tb.NewClient(r.Node(), uint32(r.ID()+1))
			pl, _ := cl.Connect(cp, "p0")
			ct, _ := pl.OpenContainer(cp, "c0")
			fsys, err := dfs.Mount(cp, ct)
			if err != nil {
				t.Error(err)
				return
			}
			if r.ID() == 0 {
				if err := fsys.MkdirAll(cp, "/small"); err != nil {
					t.Error(err)
				}
			}
			r.Barrier(cp)
			for i := 0; i < 50; i++ {
				path := pathOf(r.ID(), i)
				f, err := fsys.Create(cp, path, dfs.CreateOpts{})
				if err != nil {
					t.Errorf("create %s: %v", path, err)
					return
				}
				f.WriteAt(cp, 0, []byte{byte(r.ID()), byte(i)})
			}
			r.Barrier(cp)
			// Every rank sees the whole population.
			infos, err := fsys.ReadDir(cp, "/small")
			if err != nil || len(infos) != 200 {
				t.Errorf("rank %d sees %d files (%v)", r.ID(), len(infos), err)
			}
		})
	})
}

func pathOf(rank, i int) string {
	return "/small/f-" + string(rune('a'+rank)) + "-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
