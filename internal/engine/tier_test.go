package engine

import (
	"bytes"
	"testing"

	"daosim/internal/fabric"
	"daosim/internal/media"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

// tierRig builds an engine with an NVMe bulk tier.
func tierRig(threshold int64) *rig {
	s := sim.New(9)
	f := fabric.New(s, fabric.DefaultConfig())
	server := f.AddNode("server0")
	client := f.AddNode("client0")
	bulk := media.NVMe("e0/nvme", 4*media.TiB)
	eng := New(s, server, Config{
		ID:            0,
		Targets:       4,
		Media:         media.DCPMMInterleaved("e0/scm", 6),
		Bulk:          &bulk,
		BulkThreshold: threshold,
		Costs:         DefaultCosts(),
	})
	return &rig{sim: s, fab: f, eng: eng, client: client}
}

func TestTierRoutingByValueSize(t *testing.T) {
	r := tierRig(4 << 10)
	// A small array value and a single value stay on SCM; a bulk value
	// lands on NVMe.
	resp := r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Writes: []WriteExt{
			{Dkey: ChunkDkey(0), Akey: []byte("data"), Data: make([]byte, 1<<10)},
			{Dkey: []byte("meta"), Akey: []byte("v"), Data: make([]byte, 64<<10), Single: true},
			{Dkey: ChunkDkey(1), Akey: []byte("data"), Data: make([]byte, 1<<20)},
		},
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if got := r.eng.Device().Used(); got != (1<<10)+(64<<10) {
		t.Fatalf("SCM used = %d, want small value + single value", got)
	}
	if got := r.eng.BulkDevice().Used(); got != 1<<20 {
		t.Fatalf("NVMe used = %d, want the 1 MiB value", got)
	}
}

func TestTierReadBackCorrect(t *testing.T) {
	r := tierRig(4 << 10)
	big := bytes.Repeat([]byte("B"), 1<<20)
	small := []byte("small")
	r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 1,
		Writes: []WriteExt{
			{Dkey: ChunkDkey(0), Akey: []byte("data"), Data: big},
			{Dkey: ChunkDkey(1), Akey: []byte("data"), Data: small},
		},
	})
	resp := r.call(t, &FetchReq{
		Cont: "c0", OID: rigOID, Target: 1,
		Reads: []ReadExt{
			{Dkey: ChunkDkey(0), Akey: []byte("data"), Offset: 0, Length: 1 << 20},
			{Dkey: ChunkDkey(1), Akey: []byte("data"), Offset: 0, Length: 5},
		},
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	fr := resp.Body.(*FetchResp)
	if !bytes.Equal(fr.Data[0], big) || !bytes.Equal(fr.Data[1], small) {
		t.Fatal("tiered read-back mismatch")
	}
	if r.eng.BulkDevice().ReadBytes != 1<<20 {
		t.Fatalf("bulk reads = %d, want 1 MiB", r.eng.BulkDevice().ReadBytes)
	}
}

func TestNoTierWithoutBulkDevice(t *testing.T) {
	r := newRig() // SCM only
	if r.eng.BulkDevice() != nil {
		t.Fatal("rig has a bulk device unexpectedly")
	}
	r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Writes: []WriteExt{{Dkey: ChunkDkey(0), Akey: []byte("data"), Data: make([]byte, 1<<20)}},
	})
	if got := r.eng.Device().Used(); got != 1<<20 {
		t.Fatalf("SCM used = %d; everything must stay on SCM without a tier", got)
	}
}

func TestTierDefaultThreshold(t *testing.T) {
	r := tierRig(0) // zero -> DAOS default 4 KiB
	r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Writes: []WriteExt{
			{Dkey: ChunkDkey(0), Akey: []byte("data"), Data: make([]byte, 4<<10)},
			{Dkey: ChunkDkey(1), Akey: []byte("data"), Data: make([]byte, (4<<10)-1)},
		},
	})
	if got := r.eng.BulkDevice().Used(); got != 4<<10 {
		t.Fatalf("NVMe used = %d, want exactly the 4 KiB value", got)
	}
}

var _ = vos.EpochMax // keep the import used if assertions change
