// Package engine implements the DAOS I/O engine: the server process that
// owns a set of VOS targets backed by an interleaved DCPMM region and serves
// object RPCs over the fabric.
//
// Timing model (the knobs that shape the paper's curves):
//
//   - Each target has one service xstream (a sim.Resource of capacity 1, as
//     in DAOS's per-target main xstream). An RPC holds the xstream for its
//     CPU cost and its media transfer, so a hot target queues requests —
//     this is what makes object-class load imbalance visible.
//   - Every RPC pays RPCCost of xstream CPU, plus PerExtentCost for each
//     extent it touches in the VOS trees.
//   - The first write that creates an object shard on a target pays
//     FirstTouchCost (VOS object + dkey tree initialisation on persistent
//     memory). Wide classes (SX) create a shard on every target per file,
//     which is the dominant penalty for SX at low client counts.
//   - Media bytes are charged to the engine's DCPMM device, fair-shared
//     across that engine's targets, with DCPMM's read/write asymmetry.
package engine

import (
	"errors"
	"fmt"
	"time"

	"daosim/internal/fabric"
	"daosim/internal/media"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

// Costs collects the engine-side software path constants.
type Costs struct {
	// RPCCost is the xstream CPU charge per RPC (request parsing, bulk
	// handling, reply).
	RPCCost time.Duration
	// PerExtentCost is the VOS tree charge per extent read or written.
	PerExtentCost time.Duration
	// FirstTouchCost is the charge for materialising an object shard
	// (object table insert, dkey tree allocation) on first write.
	FirstTouchCost time.Duration
}

// DefaultCosts returns the calibrated engine cost model.
func DefaultCosts() Costs {
	return Costs{
		RPCCost:        20 * time.Microsecond,
		PerExtentCost:  10 * time.Microsecond,
		FirstTouchCost: 120 * time.Microsecond,
	}
}

// Config describes one engine.
type Config struct {
	// ID is the global engine index.
	ID int
	// Targets is the number of VOS targets (per-engine service threads).
	Targets int
	// Media is the engine's storage device parameters (one AppDirect
	// interleave set per engine/socket on NEXTGenIO).
	Media media.Params
	// Bulk optionally adds an NVMe bulk tier. When set, array values of
	// BulkThreshold bytes or more land on NVMe while small values and all
	// metadata stay on SCM — DAOS's standard two-tier policy. The paper's
	// testbed ran SCM-only, so the NEXTGenIO cluster config leaves this
	// nil; the tiering tests exercise it.
	Bulk *media.Params
	// BulkThreshold is the minimum array value size routed to NVMe
	// (DAOS defaults to 4 KiB). Zero means 4 KiB.
	BulkThreshold int64
	Costs         Costs
}

// Engine is a running DAOS I/O engine.
type Engine struct {
	cfg     Config
	sim     *sim.Sim
	node    *fabric.Node
	device  *media.Device
	bulk    *media.Device // nil without an NVMe tier
	targets []*target
	epoch   vos.Epoch
	down    bool

	// RPCs counts object RPCs served.
	RPCs int64
	// clientWrBytes and clientRdBytes count client payload bytes moved by
	// the update and fetch handlers. Rebuild traffic writes to devices
	// directly and never increments them, so the pair isolates client
	// bandwidth for degraded-window measurement.
	clientWrBytes int64
	clientRdBytes int64
}

// target is one VOS target: an xstream plus per-container VOS stores.
type target struct {
	id      int // global target ID
	xstream *sim.Resource
	conts   map[string]*vos.Container
}

// ServiceName returns the fabric service name of engine id's object service.
func ServiceName(id int) string { return fmt.Sprintf("obj@e%d", id) }

// New creates an engine, attaches its device, and registers its RPC service
// on the given fabric node (engines on the same server node share the NIC).
func New(s *sim.Sim, node *fabric.Node, cfg Config) *Engine {
	if cfg.Targets <= 0 {
		panic("engine: target count must be positive")
	}
	e := &Engine{
		cfg:    cfg,
		sim:    s,
		node:   node,
		device: media.NewDevice(s, cfg.Media),
	}
	if cfg.Bulk != nil {
		e.bulk = media.NewDevice(s, *cfg.Bulk)
		if e.cfg.BulkThreshold <= 0 {
			e.cfg.BulkThreshold = 4 << 10
		}
	}
	for t := 0; t < cfg.Targets; t++ {
		e.targets = append(e.targets, &target{
			id:      cfg.ID*cfg.Targets + t,
			xstream: sim.NewResource(s, fmt.Sprintf("e%d/xs%d", cfg.ID, t), 1),
			conts:   make(map[string]*vos.Container),
		})
	}
	node.Register(ServiceName(cfg.ID), e.handle)
	return e
}

// ID returns the engine's global index.
func (e *Engine) ID() int { return e.cfg.ID }

// Node returns the fabric node hosting this engine.
func (e *Engine) Node() *fabric.Node { return e.node }

// Device returns the engine's SCM media device (for reporting).
func (e *Engine) Device() *media.Device { return e.device }

// BulkDevice returns the NVMe bulk device, or nil without a bulk tier.
func (e *Engine) BulkDevice() *media.Device { return e.bulk }

// tierSplit divides an update's bytes between SCM and the bulk tier: array
// values at or above the threshold go to NVMe, everything else (small
// values, single-value metadata) stays on persistent memory.
func (e *Engine) tierSplit(writes []WriteExt) (scm, bulk int64) {
	for _, w := range writes {
		n := int64(len(w.Data))
		if e.bulk != nil && !w.Single && n >= e.cfg.BulkThreshold {
			bulk += n
		} else {
			scm += n
		}
	}
	return scm, bulk
}

// SetDown marks the engine failed (failure injection); RPCs return
// ErrEngineDown until it is cleared.
func (e *Engine) SetDown(down bool) { e.down = down }

// IsDown reports whether the engine is currently failed.
func (e *Engine) IsDown() bool { return e.down }

// ClientBytes returns the client payload bytes (update + fetch) this
// engine's RPC handlers have served.
func (e *Engine) ClientBytes() int64 { return e.clientWrBytes + e.clientRdBytes }

// ErrEngineDown reports an RPC against a failed engine.
var ErrEngineDown = errors.New("engine: down")

// nextEpoch returns a monotonic epoch derived from virtual time, mirroring
// DAOS's HLC timestamps.
func (e *Engine) nextEpoch() vos.Epoch {
	now := vos.Epoch(e.sim.Now().Nanoseconds())
	if now <= e.epoch {
		now = e.epoch + 1
	}
	e.epoch = now
	return now
}

// localTarget maps a global target ID to the engine's target.
func (e *Engine) localTarget(global int) (*target, error) {
	local := global - e.cfg.ID*e.cfg.Targets
	if local < 0 || local >= len(e.targets) {
		return nil, fmt.Errorf("engine %d: target %d not local", e.cfg.ID, global)
	}
	return e.targets[local], nil
}

// cont returns (creating on write paths) the VOS container on a target.
func (t *target) cont(uuid string, create bool) *vos.Container {
	c, ok := t.conts[uuid]
	if !ok && create {
		c = vos.NewContainer(uuid)
		t.conts[uuid] = c
	}
	return c
}

// --- wire types ---

// WriteExt is one extent (or single value) in an update RPC.
type WriteExt struct {
	Dkey, Akey []byte
	Offset     int64
	Data       []byte
	Single     bool
}

// ReadExt is one extent (or single value) in a fetch RPC.
//
// Dst and Discard select the zero-copy read modes for array extents (the
// engine handler runs in the calling process, so a destination span is
// addressable directly — the simulation analogue of an RDMA bulk landing in
// a registered client buffer). With Dst set, the engine fills it in place
// and the response aliases it; with Discard set, the engine performs the
// identical visibility walk and charges identical time but moves no bytes
// (reads whose content nobody observes). Neither field contributes to the
// request's wire size: both describe where data lands, not what is sent.
type ReadExt struct {
	Dkey, Akey []byte
	Offset     int64
	Length     int
	Single     bool
	// Dst, when non-nil, receives the extent's bytes (len(Dst) must equal
	// Length). Array reads only.
	Dst []byte
	// Discard simulates the read without materializing data. Array reads
	// only; mutually exclusive with Dst.
	Discard bool
}

// UpdateReq writes a batch of extents to one object shard on one target.
type UpdateReq struct {
	Cont   string
	OID    vos.ObjectID
	Target int
	Writes []WriteExt
}

// UpdateResp reports an update's outcome.
type UpdateResp struct {
	FirstTouch bool
	Epoch      vos.Epoch
}

// FetchReq reads a batch of extents from one object shard.
type FetchReq struct {
	Cont   string
	OID    vos.ObjectID
	Target int
	Reads  []ReadExt
	// Epoch bounds visibility; 0 means latest.
	Epoch vos.Epoch
}

// FetchResp carries fetched data, parallel to FetchReq.Reads. A nil entry
// reports a missing single value.
type FetchResp struct {
	Data [][]byte
}

// PunchReq deletes an object or one dkey.
type PunchReq struct {
	Cont   string
	OID    vos.ObjectID
	Target int
	Dkey   []byte // nil: punch whole object
}

// ListReq enumerates dkeys of a shard.
type ListReq struct {
	Cont   string
	OID    vos.ObjectID
	Target int
}

// ListResp carries enumerated dkeys.
type ListResp struct {
	Dkeys [][]byte
}

// SizeReq queries the shard-local high-water mark of an array object whose
// dkeys are chunk indexes (the DFS file layout).
type SizeReq struct {
	Cont      string
	OID       vos.ObjectID
	Target    int
	Akey      []byte
	ChunkSize int64
}

// SizeResp reports the shard-local end-of-file.
type SizeResp struct {
	Bytes int64
}

// AggregateReq runs VOS aggregation on every container of a target.
type AggregateReq struct {
	Target int
	Epoch  vos.Epoch
}

// AggregateResp reports reclaimed bytes.
type AggregateResp struct {
	Reclaimed int64
}

// reqSize estimates the on-wire size of a request for NIC charging.
func reqSize(body interface{}) int64 {
	switch r := body.(type) {
	case *UpdateReq:
		n := int64(96)
		for _, w := range r.Writes {
			n += int64(len(w.Dkey) + len(w.Akey) + len(w.Data) + 32)
		}
		return n
	case *FetchReq:
		n := int64(96)
		for _, rd := range r.Reads {
			n += int64(len(rd.Dkey) + len(rd.Akey) + 32)
		}
		return n
	default:
		return 128
	}
}

// RequestSize is exported for clients that need to pre-compute RPC sizes.
func RequestSize(body interface{}) int64 { return reqSize(body) }

// handle serves the engine's object RPC service.
func (e *Engine) handle(p *sim.Proc, req fabric.Request) fabric.Response {
	if e.down {
		return fabric.Response{Err: fmt.Errorf("%w: engine %d", ErrEngineDown, e.cfg.ID), Size: 64}
	}
	e.RPCs++
	switch body := req.Body.(type) {
	case *UpdateReq:
		return e.handleUpdate(p, body)
	case *FetchReq:
		return e.handleFetch(p, body)
	case *PunchReq:
		return e.handlePunch(p, body)
	case *ListReq:
		return e.handleList(p, body)
	case *SizeReq:
		return e.handleSize(p, body)
	case *AggregateReq:
		return e.handleAggregate(p, body)
	default:
		return fabric.Response{Err: fmt.Errorf("engine: unknown request %T", req.Body), Size: 64}
	}
}

func (e *Engine) handleUpdate(p *sim.Proc, r *UpdateReq) fabric.Response {
	t, err := e.localTarget(r.Target)
	if err != nil {
		return fabric.Response{Err: err, Size: 64}
	}
	t.xstream.Acquire(p)
	defer t.xstream.Release()

	p.Sleep(e.cfg.Costs.RPCCost)
	cont := t.cont(r.Cont, true)
	epoch := e.nextEpoch()
	first := false
	var bytes int64
	for _, w := range r.Writes {
		var created bool
		if w.Single {
			created = cont.UpdateSingle(r.OID, w.Dkey, w.Akey, epoch, w.Data)
		} else {
			created = cont.UpdateArray(r.OID, w.Dkey, w.Akey, epoch, w.Offset, w.Data)
		}
		if created {
			first = true
		}
		bytes += int64(len(w.Data))
		p.Sleep(e.cfg.Costs.PerExtentCost)
	}
	if first {
		p.Sleep(e.cfg.Costs.FirstTouchCost)
	}
	e.clientWrBytes += bytes
	scmBytes, bulkBytes := e.tierSplit(r.Writes)
	if err := e.device.Alloc(scmBytes); err != nil {
		return fabric.Response{Err: err, Size: 64}
	}
	if bulkBytes > 0 {
		if err := e.bulk.Alloc(bulkBytes); err != nil {
			e.device.Free(scmBytes)
			return fabric.Response{Err: err, Size: 64}
		}
		e.bulk.Write(p, bulkBytes)
	}
	e.device.Write(p, scmBytes)
	return fabric.Response{Body: &UpdateResp{FirstTouch: first, Epoch: epoch}, Size: 64}
}

func (e *Engine) handleFetch(p *sim.Proc, r *FetchReq) fabric.Response {
	t, err := e.localTarget(r.Target)
	if err != nil {
		return fabric.Response{Err: err, Size: 64}
	}
	t.xstream.Acquire(p)
	defer t.xstream.Release()

	p.Sleep(e.cfg.Costs.RPCCost)
	cont := t.cont(r.Cont, false)
	if cont == nil {
		// Nothing was ever written through this target: the whole batch
		// reads as absent (array holes / missing singles).
		return fabric.Response{Body: &FetchResp{Data: make([][]byte, len(r.Reads))}, Size: 64}
	}
	epoch := r.Epoch
	if epoch == 0 {
		epoch = vos.EpochMax
	}
	// Timing and wire accounting depend only on each read's length and
	// whether its akey is present — never on materialized buffers — so the
	// zero-copy (Dst) and no-materialize (Discard) modes charge exactly what
	// the allocating path charges: a present array read contributes Length
	// to device bytes, tier routing, and response size whether its bytes
	// land in a fresh buffer, the caller's span, or nowhere.
	resp := &FetchResp{Data: make([][]byte, len(r.Reads))}
	var bytes, bulkBytes int64
	size := int64(64)
	for i, rd := range r.Reads {
		p.Sleep(e.cfg.Costs.PerExtentCost)
		if rd.Single {
			v, err := cont.FetchSingle(r.OID, rd.Dkey, rd.Akey, epoch)
			if err != nil {
				if errors.Is(err, vos.ErrNotFound) || errors.Is(err, vos.ErrPunched) {
					resp.Data[i] = nil
					continue
				}
				return fabric.Response{Err: err, Size: 64}
			}
			resp.Data[i] = v
			bytes += int64(len(v))
			size += int64(len(v))
			continue
		}
		var err error
		switch {
		case rd.Discard:
			err = cont.FetchArrayInto(r.OID, rd.Dkey, rd.Akey, epoch, rd.Offset, rd.Length, nil)
		case rd.Dst != nil:
			err = cont.FetchArrayInto(r.OID, rd.Dkey, rd.Akey, epoch, rd.Offset, rd.Length, rd.Dst)
			if err == nil {
				resp.Data[i] = rd.Dst
			}
		default:
			var v []byte
			v, err = cont.FetchArray(r.OID, rd.Dkey, rd.Akey, epoch, rd.Offset, rd.Length)
			if err == nil {
				resp.Data[i] = v
			}
		}
		if err != nil {
			if errors.Is(err, vos.ErrNotFound) || errors.Is(err, vos.ErrPunched) {
				resp.Data[i] = nil
				continue
			}
			return fabric.Response{Err: err, Size: 64}
		}
		bytes += int64(rd.Length)
		size += int64(rd.Length)
		if e.bulk != nil && int64(rd.Length) >= e.cfg.BulkThreshold {
			bulkBytes += int64(rd.Length)
		}
	}
	if e.bulk != nil {
		// Split the fetch between tiers with the same routing rule the
		// writes used.
		e.bulk.Read(p, bulkBytes)
		bytes -= bulkBytes
	}
	e.device.Read(p, bytes)
	e.clientRdBytes += size - 64
	return fabric.Response{Body: resp, Size: size}
}

func (e *Engine) handlePunch(p *sim.Proc, r *PunchReq) fabric.Response {
	t, err := e.localTarget(r.Target)
	if err != nil {
		return fabric.Response{Err: err, Size: 64}
	}
	t.xstream.Acquire(p)
	defer t.xstream.Release()
	p.Sleep(e.cfg.Costs.RPCCost)
	cont := t.cont(r.Cont, false)
	if cont == nil {
		return fabric.Response{Body: &UpdateResp{}, Size: 64} // nothing to punch
	}
	epoch := e.nextEpoch()
	if r.Dkey == nil {
		err = cont.PunchObject(r.OID, epoch)
	} else {
		err = cont.PunchDkey(r.OID, r.Dkey, epoch)
	}
	if err != nil && !errors.Is(err, vos.ErrNotFound) {
		return fabric.Response{Err: err, Size: 64}
	}
	return fabric.Response{Body: &UpdateResp{Epoch: epoch}, Size: 64}
}

func (e *Engine) handleList(p *sim.Proc, r *ListReq) fabric.Response {
	t, err := e.localTarget(r.Target)
	if err != nil {
		return fabric.Response{Err: err, Size: 64}
	}
	t.xstream.Acquire(p)
	defer t.xstream.Release()
	p.Sleep(e.cfg.Costs.RPCCost)
	cont := t.cont(r.Cont, false)
	if cont == nil {
		return fabric.Response{Body: &ListResp{}, Size: 64}
	}
	dkeys, err := cont.ListDkeys(r.OID, vos.EpochMax)
	if err != nil && !errors.Is(err, vos.ErrNotFound) {
		return fabric.Response{Err: err, Size: 64}
	}
	size := int64(64)
	for _, dk := range dkeys {
		size += int64(len(dk))
	}
	return fabric.Response{Body: &ListResp{Dkeys: dkeys}, Size: size}
}

func (e *Engine) handleSize(p *sim.Proc, r *SizeReq) fabric.Response {
	t, err := e.localTarget(r.Target)
	if err != nil {
		return fabric.Response{Err: err, Size: 64}
	}
	t.xstream.Acquire(p)
	defer t.xstream.Release()
	p.Sleep(e.cfg.Costs.RPCCost)
	cont := t.cont(r.Cont, false)
	if cont == nil {
		return fabric.Response{Body: &SizeResp{}, Size: 64}
	}
	dkeys, err := cont.ListDkeys(r.OID, vos.EpochMax)
	if err != nil {
		if errors.Is(err, vos.ErrNotFound) {
			return fabric.Response{Body: &SizeResp{}, Size: 64}
		}
		return fabric.Response{Err: err, Size: 64}
	}
	var max int64
	for _, dk := range dkeys {
		p.Sleep(e.cfg.Costs.PerExtentCost)
		idx, ok := DecodeChunkDkey(dk)
		if !ok {
			continue
		}
		sz := cont.ArraySize(r.OID, dk, r.Akey, vos.EpochMax)
		if end := idx*r.ChunkSize + sz; end > max {
			max = end
		}
	}
	return fabric.Response{Body: &SizeResp{Bytes: max}, Size: 64}
}

func (e *Engine) handleAggregate(p *sim.Proc, r *AggregateReq) fabric.Response {
	t, err := e.localTarget(r.Target)
	if err != nil {
		return fabric.Response{Err: err, Size: 64}
	}
	t.xstream.Acquire(p)
	defer t.xstream.Release()
	var reclaimed int64
	for _, cont := range t.conts {
		reclaimed += cont.Aggregate(r.Epoch)
	}
	if reclaimed > 0 {
		e.device.Free(reclaimed)
	}
	return fabric.Response{Body: &AggregateResp{Reclaimed: reclaimed}, Size: 64}
}

// ChunkDkey encodes a chunk index as the dkey of a striped array object
// (the DFS file layout: one dkey per chunk).
func ChunkDkey(idx int64) []byte {
	return []byte(fmt.Sprintf("chunk.%016x", idx))
}

// DecodeChunkDkey parses a chunk dkey back to its index.
func DecodeChunkDkey(dk []byte) (int64, bool) {
	var idx int64
	if n, err := fmt.Sscanf(string(dk), "chunk.%016x", &idx); n != 1 || err != nil {
		return 0, false
	}
	return idx, true
}

// NumContainers reports how many distinct containers hold data on this
// engine (for tests and reporting).
func (e *Engine) NumContainers() int {
	seen := map[string]bool{}
	for _, t := range e.targets {
		for uuid := range t.conts {
			seen[uuid] = true
		}
	}
	return len(seen)
}

// TargetObjects reports the number of object shards on a global target ID.
func (e *Engine) TargetObjects(global int) int {
	t, err := e.localTarget(global)
	if err != nil {
		return 0
	}
	n := 0
	for _, c := range t.conts {
		n += c.NumObjects()
	}
	return n
}

// XstreamUtilisation returns the mean utilisation across the engine's
// target xstreams.
func (e *Engine) XstreamUtilisation() float64 {
	var sum float64
	for _, t := range e.targets {
		sum += t.xstream.Utilisation()
	}
	return sum / float64(len(e.targets))
}
