package engine

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"daosim/internal/fabric"
	"daosim/internal/media"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

// rig is a one-engine test rig with a client node.
type rig struct {
	sim    *sim.Sim
	fab    *fabric.Fabric
	eng    *Engine
	client *fabric.Node
}

func newRig() *rig {
	s := sim.New(5)
	f := fabric.New(s, fabric.DefaultConfig())
	server := f.AddNode("server0")
	client := f.AddNode("client0")
	eng := New(s, server, Config{
		ID:      0,
		Targets: 8,
		Media:   media.DCPMMInterleaved("e0/scm", 6),
		Costs:   DefaultCosts(),
	})
	return &rig{sim: s, fab: f, eng: eng, client: client}
}

// call runs one RPC inside a fresh client process and returns its response.
func (r *rig) call(t *testing.T, body interface{}) fabric.Response {
	t.Helper()
	var resp fabric.Response
	r.sim.Spawn("client", func(p *sim.Proc) {
		resp = r.fab.Call(p, r.client, r.eng.Node(), ServiceName(0), fabric.Request{
			Body: body,
			Size: RequestSize(body),
		})
	})
	r.sim.Run()
	return resp
}

var rigOID = vos.ObjectID{Hi: 1, Lo: 2}

func TestUpdateFetchRoundTrip(t *testing.T) {
	r := newRig()
	data := bytes.Repeat([]byte("d"), 4096)
	resp := r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 3,
		Writes: []WriteExt{{Dkey: ChunkDkey(0), Akey: []byte("data"), Offset: 0, Data: data}},
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.Body.(*UpdateResp).FirstTouch {
		t.Fatal("first write did not report first touch")
	}
	resp = r.call(t, &FetchReq{
		Cont: "c0", OID: rigOID, Target: 3,
		Reads: []ReadExt{{Dkey: ChunkDkey(0), Akey: []byte("data"), Offset: 0, Length: 4096}},
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	got := resp.Body.(*FetchResp).Data[0]
	if !bytes.Equal(got, data) {
		t.Fatal("fetched data mismatch")
	}
}

func TestSingleValueOps(t *testing.T) {
	r := newRig()
	resp := r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Writes: []WriteExt{{Dkey: []byte("key1"), Akey: []byte("v"), Data: []byte("value"), Single: true}},
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	resp = r.call(t, &FetchReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Reads: []ReadExt{
			{Dkey: []byte("key1"), Akey: []byte("v"), Single: true},
			{Dkey: []byte("missing"), Akey: []byte("v"), Single: true},
		},
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	fr := resp.Body.(*FetchResp)
	if string(fr.Data[0]) != "value" {
		t.Fatalf("data[0] = %q", fr.Data[0])
	}
	if fr.Data[1] != nil {
		t.Fatal("missing key returned data")
	}
}

func TestWrongTargetRejected(t *testing.T) {
	r := newRig()
	resp := r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 99, // engine 0 owns 0..7
		Writes: []WriteExt{{Dkey: []byte("d"), Akey: []byte("a"), Data: []byte("x")}},
	})
	if resp.Err == nil {
		t.Fatal("non-local target accepted")
	}
}

func TestEngineDown(t *testing.T) {
	r := newRig()
	r.eng.SetDown(true)
	resp := r.call(t, &ListReq{Cont: "c0", OID: rigOID, Target: 0})
	if !errors.Is(resp.Err, ErrEngineDown) {
		t.Fatalf("err = %v, want ErrEngineDown", resp.Err)
	}
	r.eng.SetDown(false)
	resp = r.call(t, &ListReq{Cont: "c0", OID: rigOID, Target: 0})
	if resp.Err != nil {
		t.Fatalf("recovered engine rejected RPC: %v", resp.Err)
	}
}

func TestPunchAndList(t *testing.T) {
	r := newRig()
	for i := int64(0); i < 3; i++ {
		r.call(t, &UpdateReq{
			Cont: "c0", OID: rigOID, Target: 0,
			Writes: []WriteExt{{Dkey: ChunkDkey(i), Akey: []byte("data"), Data: []byte("x")}},
		})
	}
	resp := r.call(t, &ListReq{Cont: "c0", OID: rigOID, Target: 0})
	if n := len(resp.Body.(*ListResp).Dkeys); n != 3 {
		t.Fatalf("dkeys = %d, want 3", n)
	}
	r.call(t, &PunchReq{Cont: "c0", OID: rigOID, Target: 0, Dkey: ChunkDkey(1)})
	resp = r.call(t, &ListReq{Cont: "c0", OID: rigOID, Target: 0})
	if n := len(resp.Body.(*ListResp).Dkeys); n != 2 {
		t.Fatalf("dkeys after dkey punch = %d, want 2", n)
	}
	r.call(t, &PunchReq{Cont: "c0", OID: rigOID, Target: 0})
	resp = r.call(t, &FetchReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Reads: []ReadExt{{Dkey: ChunkDkey(0), Akey: []byte("data"), Offset: 0, Length: 1}},
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Body.(*FetchResp).Data[0] != nil {
		t.Fatal("punched object still readable")
	}
}

func TestSizeQuery(t *testing.T) {
	r := newRig()
	const chunk = int64(1 << 20)
	// Write chunk 0 fully and 512 KiB of chunk 2 (chunks 0 and 2 on this
	// shard; chunk 1 may live elsewhere in a striped layout).
	r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Writes: []WriteExt{
			{Dkey: ChunkDkey(0), Akey: []byte("data"), Offset: 0, Data: make([]byte, chunk)},
			{Dkey: ChunkDkey(2), Akey: []byte("data"), Offset: 0, Data: make([]byte, 512<<10)},
		},
	})
	resp := r.call(t, &SizeReq{Cont: "c0", OID: rigOID, Target: 0, Akey: []byte("data"), ChunkSize: chunk})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	want := 2*chunk + (512 << 10)
	if got := resp.Body.(*SizeResp).Bytes; got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
}

func TestFirstTouchChargedOnce(t *testing.T) {
	r := newRig()
	w := []WriteExt{{Dkey: ChunkDkey(0), Akey: []byte("data"), Data: make([]byte, 1024)}}
	resp := r.call(t, &UpdateReq{Cont: "c0", OID: rigOID, Target: 0, Writes: w})
	if !resp.Body.(*UpdateResp).FirstTouch {
		t.Fatal("no first touch on create")
	}
	w2 := []WriteExt{{Dkey: ChunkDkey(1), Akey: []byte("data"), Data: make([]byte, 1024)}}
	resp = r.call(t, &UpdateReq{Cont: "c0", OID: rigOID, Target: 0, Writes: w2})
	if resp.Body.(*UpdateResp).FirstTouch {
		t.Fatal("second write reported first touch")
	}
}

func TestXstreamSerializesTarget(t *testing.T) {
	// Two concurrent CPU-heavy updates (many tiny extents, negligible media
	// time) to the SAME target must serialize on its single xstream; to
	// DIFFERENT targets they overlap. Compare total times.
	elapsed := func(sameTarget bool) time.Duration {
		s := sim.New(5)
		f := fabric.New(s, fabric.DefaultConfig())
		server := f.AddNode("server0")
		eng := New(s, server, Config{
			ID: 0, Targets: 8,
			Media: media.DCPMMInterleaved("scm", 6),
			Costs: DefaultCosts(),
		})
		writes := make([]WriteExt, 512)
		for w := range writes {
			writes[w] = WriteExt{Dkey: ChunkDkey(int64(w)), Akey: []byte("data"), Data: []byte{1}}
		}
		var end time.Duration
		for i := 0; i < 2; i++ {
			tgt := 0
			if !sameTarget {
				tgt = i
			}
			client := f.AddNode("client")
			s.Spawn("c", func(p *sim.Proc) {
				body := &UpdateReq{Cont: "c0", OID: rigOID, Target: tgt, Writes: writes}
				resp := f.Call(p, client, eng.Node(), ServiceName(0), fabric.Request{Body: body, Size: RequestSize(body)})
				if resp.Err != nil {
					panic(resp.Err)
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		s.Run()
		return end
	}
	same := elapsed(true)
	diff := elapsed(false)
	if same <= diff*15/10 {
		t.Fatalf("same-target %v vs different-target %v: xstream contention invisible", same, diff)
	}
}

func TestAggregateReclaimsMedia(t *testing.T) {
	r := newRig()
	for e := 0; e < 4; e++ {
		r.call(t, &UpdateReq{
			Cont: "c0", OID: rigOID, Target: 0,
			Writes: []WriteExt{{Dkey: ChunkDkey(0), Akey: []byte("data"), Offset: 0, Data: make([]byte, 1<<20)}},
		})
	}
	used := r.eng.Device().Used()
	if used != 4<<20 {
		t.Fatalf("used = %d", used)
	}
	resp := r.call(t, &AggregateReq{Target: 0, Epoch: vos.EpochMax})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if got := resp.Body.(*AggregateResp).Reclaimed; got != 3<<20 {
		t.Fatalf("reclaimed = %d, want 3 MiB", got)
	}
	if r.eng.Device().Used() != 1<<20 {
		t.Fatalf("device used = %d after aggregation", r.eng.Device().Used())
	}
}

func TestChunkDkeyRoundTrip(t *testing.T) {
	for _, idx := range []int64{0, 1, 255, 1 << 40} {
		got, ok := DecodeChunkDkey(ChunkDkey(idx))
		if !ok || got != idx {
			t.Fatalf("round trip %d -> %d (%v)", idx, got, ok)
		}
	}
	if _, ok := DecodeChunkDkey([]byte("not-a-chunk")); ok {
		t.Fatal("garbage dkey decoded")
	}
}

func TestCountersAndStats(t *testing.T) {
	r := newRig()
	r.call(t, &UpdateReq{
		Cont: "c0", OID: rigOID, Target: 0,
		Writes: []WriteExt{{Dkey: ChunkDkey(0), Akey: []byte("data"), Data: make([]byte, 100)}},
	})
	if r.eng.RPCs != 1 {
		t.Fatalf("RPCs = %d", r.eng.RPCs)
	}
	if r.eng.NumContainers() != 1 {
		t.Fatalf("containers = %d", r.eng.NumContainers())
	}
	if r.eng.TargetObjects(0) != 1 {
		t.Fatalf("objects = %d", r.eng.TargetObjects(0))
	}
}
