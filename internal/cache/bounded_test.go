package cache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// entryFiles returns the .pt files resident in dir and their total size.
func entryFiles(t *testing.T, dir string) (map[string]bool, int64) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string]bool)
	var total int64
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != ".pt" {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			t.Fatal(err)
		}
		files[ent.Name()] = true
		total += fi.Size()
	}
	return files, total
}

// age backdates k's entry file so the eviction ranking sees it as old.
func age(t *testing.T, dir string, k Key, by time.Duration) {
	t.Helper()
	old := time.Now().Add(-by)
	if err := os.Chtimes(filepath.Join(dir, k.String()+".pt"), old, old); err != nil {
		t.Fatal(err)
	}
}

// TestDiskEvictionHoldsBudget stores more entries than the byte budget
// admits and checks that the oldest-accessed files are the ones evicted,
// the resident set fits the budget, and Stats counts the evictions.
func TestDiskEvictionHoldsBudget(t *testing.T) {
	dir := t.TempDir()
	// Budget for exactly three of the fixed-size entry records.
	c, err := New(Options{Dir: dir, MaxDiskBytes: 3 * int64(diskSize)})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = keyOf(string(rune('a' + i)))
		c.Put(keys[i], Entry{WriteGiBs: float64(i)})
		// Separate the access times so the LRU order is unambiguous
		// regardless of filesystem timestamp granularity.
		age(t, dir, keys[i], time.Duration(len(keys)-i)*time.Minute)
	}
	// Storing key 5 over a full budget must evict the two oldest (0, 1).
	last := keyOf("last")
	c.Put(last, Entry{WriteGiBs: 99})

	files, total := entryFiles(t, dir)
	if max := 3 * int64(diskSize); total > max {
		t.Fatalf("resident %d bytes exceeds budget %d", total, max)
	}
	for _, k := range keys[:3] {
		if files[k.String()+".pt"] {
			t.Fatalf("oldest entry %s survived eviction; resident: %v", k, files)
		}
	}
	for _, k := range append(keys[3:], last) {
		if !files[k.String()+".pt"] {
			t.Fatalf("recent entry %s was evicted; resident: %v", k, files)
		}
	}
	if got := c.Stats().DiskEvicts; got != 3 {
		t.Fatalf("Stats.DiskEvicts = %d, want 3", got)
	}
}

// TestDiskEvictionSparesRecentHits checks that a Load refreshes an
// entry's access time, protecting hot entries from eviction even when
// they were stored first.
func TestDiskEvictionSparesRecentHits(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir, MaxDiskBytes: 2 * int64(diskSize)})
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := keyOf("hot"), keyOf("cold")
	c.Put(hot, Entry{WriteGiBs: 1})
	c.Put(cold, Entry{WriteGiBs: 2})
	age(t, dir, hot, time.Hour)
	age(t, dir, cold, time.Minute)

	// A disk hit must touch the file; drop the memory tier first so the
	// lookup actually reaches disk.
	c.mem = newMemTier(4)
	if _, ok := c.Get(hot); !ok {
		t.Fatal("hot entry missing before eviction")
	}

	c.Put(keyOf("filler"), Entry{WriteGiBs: 3})
	files, _ := entryFiles(t, dir)
	if !files[hot.String()+".pt"] {
		t.Fatal("recently hit entry was evicted")
	}
	if files[cold.String()+".pt"] {
		t.Fatal("least recently used entry survived over the hit one")
	}
}

// TestBoundedTierCensusOnOpen checks that a reopened bounded tier counts
// pre-existing entries against the budget instead of starting from zero.
func TestBoundedTierCensusOnOpen(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = keyOf(string(rune('p' + i)))
		c1.Put(keys[i], Entry{WriteGiBs: float64(i)})
		age(t, dir, keys[i], time.Duration(len(keys)-i)*time.Minute)
	}

	c2, err := New(Options{Dir: dir, MaxDiskBytes: 2 * int64(diskSize)})
	if err != nil {
		t.Fatal(err)
	}
	c2.Put(keyOf("new"), Entry{WriteGiBs: 9})
	if _, total := entryFiles(t, dir); total > 2*int64(diskSize) {
		t.Fatalf("reopened tier ignored pre-existing bytes: resident %d", total)
	}
	if got := c2.Stats().DiskEvicts; got < 3 {
		t.Fatalf("Stats.DiskEvicts = %d, want >= 3", got)
	}
}

// TestUnboundedTierNeverEvicts pins the default: without MaxDiskBytes the
// disk tier grows without bound and counts no evictions.
func TestUnboundedTierNeverEvicts(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		c.Put(keyOf(string(rune('A'+i))), Entry{WriteGiBs: float64(i)})
	}
	files, _ := entryFiles(t, dir)
	if len(files) != 16 {
		t.Fatalf("unbounded tier holds %d entries, want 16", len(files))
	}
	if got := c.Stats().DiskEvicts; got != 0 {
		t.Fatalf("Stats.DiskEvicts = %d, want 0", got)
	}
}
