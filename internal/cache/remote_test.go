package cache

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubPeer is a minimal in-test implementation of the /v1/cache protocol:
// what a daosd serves, without importing studysvc (which would be an
// import cycle).
type stubPeer struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    atomic.Int64
	puts    atomic.Int64
	dead    atomic.Bool // sever the connection instead of answering
}

func newStubPeer() *stubPeer { return &stubPeer{entries: make(map[string][]byte)} }

func (p *stubPeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	key := strings.TrimPrefix(r.URL.Path, TierPathPrefix)
	switch r.Method {
	case http.MethodGet:
		p.gets.Add(1)
		p.mu.Lock()
		buf, ok := p.entries[key]
		p.mu.Unlock()
		if !ok {
			http.Error(w, "no entry", http.StatusNotFound)
			return
		}
		w.Write(buf)
	case http.MethodPut:
		p.puts.Add(1)
		buf, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.entries[key] = buf
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "bad method", http.StatusMethodNotAllowed)
	}
}

// fastRemote keeps the down-marking schedule test-speed.
func fastRemote() RemoteOptions {
	return RemoteOptions{Timeout: 2 * time.Second, ProbeBase: 2 * time.Millisecond, ProbeMax: 20 * time.Millisecond}
}

// TestRemoteTierRoundTrip: a point Put by one cache is a remote hit for a
// second cache sharing the same peer, and the hit hydrates the second
// cache's memory tier.
func TestRemoteTierRoundTrip(t *testing.T) {
	peer := newStubPeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	a, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}

	k := keyOf("shared")
	want := Entry{WriteGiBs: 12.5, ReadGiBs: 8.25, DegradedGiBs: 3, RecoverySec: 1.5, MapTransitions: 4}
	a.Put(k, want)
	if peer.puts.Load() != 1 {
		t.Fatalf("peer saw %d puts, want 1", peer.puts.Load())
	}

	got, ok := b.Get(k)
	if !ok || got != want {
		t.Fatalf("remote lookup = %+v, %v; want %+v", got, ok, want)
	}
	st := b.Stats()
	if st.Hits != 1 || st.RemoteHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats after remote hit = %+v", st)
	}
	// The hit hydrated b's memory tier: the second lookup stays local.
	if _, ok := b.Get(k); !ok {
		t.Fatal("hydrated entry missing")
	}
	if st := b.Stats(); st.MemHits != 1 || peer.gets.Load() != 1 {
		t.Fatalf("second lookup went back to the network: %+v, gets=%d", st, peer.gets.Load())
	}
}

// TestRemoteTierMissIsClean: a 404 from the peer is a plain miss and does
// not mark the peer down.
func TestRemoteTierMissIsClean(t *testing.T) {
	peer := newStubPeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	c, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(keyOf("absent")); ok {
		t.Fatal("miss served as a hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.RemoteErrs != 0 || st.RemoteDowns != 0 {
		t.Fatalf("stats after clean miss = %+v", st)
	}
}

// TestRemoteTierPeerDownIsMissThenReadmits: a severed peer degrades to a
// miss (never an error), the tier marks itself down so later lookups skip
// the network, and once the peer recovers a backoff re-probe readmits it.
func TestRemoteTierPeerDownIsMissThenReadmits(t *testing.T) {
	peer := newStubPeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	c, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("shared")
	peer.mu.Lock()
	peer.entries[k.String()] = EncodeEntry(Entry{WriteGiBs: 7})
	peer.mu.Unlock()

	peer.dead.Store(true)
	if _, ok := c.Get(k); ok {
		t.Fatal("severed peer served a hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.RemoteErrs != 1 || st.RemoteDowns != 1 {
		t.Fatalf("stats after severed lookup = %+v", st)
	}
	// While down, lookups miss instantly without reaching the network.
	gets := peer.gets.Load()
	if _, ok := c.Get(k); ok {
		t.Fatal("down peer served a hit")
	}
	if peer.gets.Load() != gets {
		t.Fatal("lookup against a down peer touched the network inside the backoff window")
	}

	peer.dead.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := c.Get(k); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer never readmitted after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := c.Stats(); st.RemoteHits == 0 {
		t.Fatalf("readmitted hit not attributed to the remote tier: %+v", st)
	}
}

// TestRemoteTierCorruptBodyIsMiss: a peer serving an undecodable record is
// a miss counted in Stats.Corrupt, with no down-marking (the transport
// worked; the payload did not).
func TestRemoteTierCorruptBodyIsMiss(t *testing.T) {
	peer := newStubPeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	c, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("garbled")
	peer.mu.Lock()
	peer.entries[k.String()] = []byte("not a record")
	peer.mu.Unlock()

	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt remote body served as a hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Corrupt != 1 || st.RemoteDowns != 0 {
		t.Fatalf("stats after corrupt body = %+v", st)
	}
}

// TestRemoteTierPutIsBestEffort: a peer refusing puts (e.g. it has no
// cache configured and answers 404) surfaces in Stats.RemoteErrs but does
// not flap the peer down, and never fails the caller's Put.
func TestRemoteTierPutIsBestEffort(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no cache tier", http.StatusNotFound)
	}))
	defer srv.Close()

	c, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(keyOf("dropped"), Entry{WriteGiBs: 1})
	st := c.Stats()
	if st.Stores != 1 || st.RemoteErrs != 1 || st.RemoteDowns != 0 {
		t.Fatalf("stats after refused put = %+v", st)
	}
	// The entry still landed in the local tiers.
	if _, ok := c.Get(keyOf("dropped")); !ok {
		t.Fatal("refused remote put lost the local entry")
	}
}

// TestRemoteTierBoundedTimeout: a hung peer (accepts, never answers) costs
// one bounded timeout, not a wedge, and is then marked down.
func TestRemoteTierBoundedTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never answer
		}
	}()

	o := fastRemote()
	o.Timeout = 50 * time.Millisecond
	c, err := New(Options{Peer: ln.Addr().String(), PeerOptions: o})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok := c.Get(keyOf("hung")); ok {
		t.Fatal("hung peer served a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lookup against a hung peer took %v; want ~the 50ms timeout", elapsed)
	}
	if st := c.Stats(); st.RemoteDowns != 1 {
		t.Fatalf("hung peer not marked down: %+v", st)
	}
}

// TestRemoteTierConcurrentHammer: many goroutines Get/Put the same keys
// through two caches sharing one peer while the peer flaps; every lookup
// must resolve as a hit or a miss — the tier's failure modes are invisible
// to callers — and the run must be -race clean.
func TestRemoteTierConcurrentHammer(t *testing.T) {
	peer := newStubPeer()
	srv := httptest.NewServer(peer)
	defer srv.Close()

	a, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Peer: srv.URL, PeerOptions: fastRemote()})
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = keyOf(string(rune('a' + i)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := a
			if g%2 == 1 {
				c = b
			}
			for i := 0; i < 50; i++ {
				k := keys[(g+i)%len(keys)]
				if e, ok := c.Get(k); ok && e.WriteGiBs == 0 {
					t.Error("hit returned a zero entry")
					return
				}
				c.Put(k, Entry{WriteGiBs: float64((g+i)%len(keys)) + 1})
			}
		}(g)
	}
	// Flap the peer while the hammer runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			peer.dead.Store(i%2 == 0)
			time.Sleep(3 * time.Millisecond)
		}
		peer.dead.Store(false)
	}()
	wg.Wait()
	<-done
}
