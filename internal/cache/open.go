package cache

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// FlagPassed reports whether the named command-line flag was explicitly
// set. It exists next to Open because Open's dirSet parameter is exactly
// this question for -cache-dir; keeping both here keeps every CLI's cache
// wiring identical.
func FlagPassed(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// Open builds the cache described by a command's -cache / -cache-dir /
// -cache-peer flags, with one policy shared by every CLI: nil when caching
// is off, a disk-backed cache at dir (an explicitly passed -cache-dir
// implies -cache) or the default ~/.daosim/cache, and a memory-only cache
// when -cache-dir is explicitly empty. dirSet reports whether -cache-dir
// appeared on the command line. peer, when non-empty, adds a remote tier
// backed by the daosd at that address — and by itself turns caching on
// without a disk tier, which is the cache-less-coordinator shape: every
// point the fleet completes is looked up on, and written back to, the
// peer, with only the memory LRU in front. maxDiskBytes (-cache-max-bytes)
// bounds the disk tier; <= 0 leaves it unbounded. When the default disk
// tier is wanted but the home directory cannot be resolved, Open returns
// an error rather than silently degrading a requested persistent cache to
// a process-lifetime one.
func Open(enabled, dirSet bool, dir, peer string, maxDiskBytes int64) (*Cache, error) {
	if dirSet && dir != "" {
		enabled = true
	}
	if !enabled && peer == "" {
		return nil, nil
	}
	o := Options{Peer: peer, MaxDiskBytes: maxDiskBytes}
	if enabled {
		if !dirSet {
			home, err := os.UserHomeDir()
			if err != nil {
				return nil, fmt.Errorf("cache: cannot resolve the default ~/.daosim/cache tier (%v); pass -cache-dir", err)
			}
			dir = filepath.Join(home, ".daosim", "cache")
		}
		o.Dir = dir
	}
	return New(o)
}
