package cache

import (
	"container/list"
	"sync"
)

// Tier is one backing level of the Cache. The Cache consults its tiers in
// order (memory LRU, then disk, then remote peer, then Options.Tiers) and
// hydrates upward on a hit, so lower tiers fill the faster ones above them.
//
// A Tier is an accelerator, never a system of record: Load must express
// every failure as a LoadResult (a miss variant), and Store is best-effort
// — its error is counted by the Cache, not surfaced to callers.
// Implementations must be safe for concurrent use.
type Tier interface {
	// Name identifies the tier in diagnostics. The Cache attributes stats
	// by name: "disk" feeds the disk counters; network tiers feed the
	// remote ones.
	Name() string
	// Load returns the entry for k and how the lookup resolved.
	Load(k Key) (Entry, LoadResult)
	// Store writes k. Failures are reported, counted by the Cache, and
	// otherwise ignored.
	Store(k Key, e Entry) error
}

// LoadResult is the outcome of one Tier.Load. Everything except LoadHit is
// a miss from the caller's point of view — the distinctions exist only so
// the Cache can count what happened.
type LoadResult int

const (
	// LoadMiss: the tier holds no entry for the key.
	LoadMiss LoadResult = iota
	// LoadHit: the entry was found and decoded.
	LoadHit
	// LoadCorrupt: an entry was present but undecodable (bad magic, torn
	// write, checksum failure). The disk tier quarantines the file on
	// detection, so each corruption event is counted once.
	LoadCorrupt
	// LoadUnavailable: the tier itself failed — an I/O error, or a remote
	// peer that is down, slow, or refusing. The remote tier marks itself
	// down and re-probes with backoff before answering this again.
	LoadUnavailable
)

// networkTier marks tiers that cross the network. Cache.GetLocal and
// Cache.PutLocal skip them, which is what keeps a daosd serving its own
// /v1/cache endpoints from forwarding lookups to its peer in a loop.
type networkTier interface {
	networkTier()
}

// isNetwork reports whether t crosses the network. Tiers supplied through
// Options.Tiers by other packages are treated as local.
func isNetwork(t Tier) bool {
	_, ok := t.(networkTier)
	return ok
}

// node is one memory-tier slot; list elements hold *node.
type node struct {
	k Key
	e Entry
}

// memTier is the always-present in-memory LRU tier. It carries its own lock
// so lower-tier I/O never serializes behind memory bookkeeping.
type memTier struct {
	mu        sync.Mutex
	max       int
	lru       *list.List            // front = most recently used
	index     map[Key]*list.Element // key -> lru element
	evictions int64
}

func newMemTier(max int) *memTier {
	return &memTier{
		max:   max,
		lru:   list.New(),
		index: make(map[Key]*list.Element),
	}
}

func (m *memTier) Name() string { return "memory" }

func (m *memTier) Load(k Key) (Entry, LoadResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.index[k]
	if !ok {
		return Entry{}, LoadMiss
	}
	m.lru.MoveToFront(el)
	return el.Value.(*node).e, LoadHit
}

func (m *memTier) Store(k Key, e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.index[k]; ok {
		el.Value.(*node).e = e
		m.lru.MoveToFront(el)
		return nil
	}
	m.index[k] = m.lru.PushFront(&node{k: k, e: e})
	for m.lru.Len() > m.max {
		back := m.lru.Back()
		m.lru.Remove(back)
		delete(m.index, back.Value.(*node).k)
		m.evictions++
	}
	return nil
}

func (m *memTier) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

func (m *memTier) evicted() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}
