//go:build linux

package cache

import (
	"os"
	"syscall"
	"time"
)

// fileATime returns fi's last-access time. The disk tier's LRU eviction
// ranks entries by it: Load touches atime explicitly (relatime mounts
// defer read-driven updates), so "oldest atime" is "least recently hit".
func fileATime(fi os.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
