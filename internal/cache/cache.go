// Package cache implements a content-addressed memoization store for
// completed study points. Study points are pure functions of their
// configuration (see the key builder in internal/core): identical keys mean
// identical physics, so a completed point's bandwidths can be replayed from
// the cache instead of re-simulated.
//
// # Keys
//
// A Key is the SHA-256 of a canonical binary encoding of every
// output-affecting input (workload geometry, variant physics, node count,
// derived point seed, testbed sizing and cost models, and sim.KernelVersion).
// The cache itself treats keys as opaque: callers build them with a Hasher,
// which writes fixed-width, length-prefixed fields so distinct field
// sequences can never collide by concatenation. Because the encoding is
// canonical, keys are also identical across machines: two daosds that
// derive the same digest are by construction asking for the same point,
// which is what makes the cache safe to share over the network.
//
// # Tiers
//
// The cache is a stack of Tier implementations consulted in order. The
// in-memory tier is a bounded LRU map, always present; it serves repeated
// lookups within one process. The optional on-disk tier (Options.Dir, one
// small checksummed file per key) persists points across processes so CI
// re-runs and repeated command invocations start warm. The optional remote
// tier (Options.Peer) reads and writes a peer daosd's cache over HTTP,
// which is what makes dedup fleet-global: any daosim process pointed at
// the same peer shares one pool of completed points. A hit in a lower tier
// hydrates every tier above it; a store writes through all of them.
//
// Every tier is an accelerator, never a system of record: a tier that is
// missing, corrupt, down, or slow degrades to a miss — the simulator
// re-runs the point — and never to an error.
//
// # Invalidation and corruption
//
// Entries are never invalidated in place: a change to the simulated physics
// is a sim.KernelVersion bump, which changes every key and orphans old
// entries. Loads are corruption-tolerant by construction — an entry that is
// missing, truncated, mis-sized, or fails its checksum is a miss (counted in
// Stats.Corrupt), never an error. The disk tier quarantines an undecodable
// file when it first sees it, so Stats.Corrupt counts distinct corruption
// events rather than re-counting one bad file on every lookup, and the
// subsequent store repairs the slot.
package cache

import (
	"fmt"
	"path/filepath"
	"sync"
)

// Entry is one memoized study point: the measured bandwidth pair plus the
// degraded-mode outputs of fault-injected points. Grid coordinates (nodes,
// ranks) are not stored — they are part of the key and re-derived by the
// caller.
type Entry struct {
	WriteGiBs float64
	ReadGiBs  float64
	// DegradedGiBs, RecoverySec, and MapTransitions memoize the
	// degraded-window outputs of a fault-injected point; all zero for
	// points without a fault plan.
	DegradedGiBs   float64
	RecoverySec    float64
	MapTransitions int64
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory tier (default 4096 — a full paper
	// sweep is a few hundred points, so the default never evicts in
	// practice).
	MaxEntries int
	// Dir, when non-empty, adds a disk tier rooted there.
	Dir string
	// MaxDiskBytes bounds the disk tier: once its entry files exceed this
	// many bytes, stores evict the least-recently-used entries until the
	// tier fits again. <= 0 (the default) means unbounded.
	MaxDiskBytes int64
	// Peer, when non-empty, adds a remote tier backed by the daosd at
	// that address (host:port or an http:// URL). The remote tier sits
	// below disk, so a point found on the peer hydrates both local tiers.
	Peer string
	// PeerOptions tunes the remote tier; zero values take defaults.
	PeerOptions RemoteOptions
	// Tiers appends extra lower tiers below the built-in ones, in order.
	// They are treated as local (GetLocal and PutLocal reach them).
	Tiers []Tier
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits        int64 // lookups answered by any tier
	MemHits     int64 // ... answered by the memory tier
	DiskHits    int64 // ... answered by the disk tier
	RemoteHits  int64 // ... answered by the remote peer
	Misses      int64 // lookups no tier could answer
	Stores      int64 // entries written
	Evictions   int64 // memory-tier LRU evictions
	DiskEvicts  int64 // disk-tier LRU file evictions (bounded tiers only)
	Corrupt     int64 // undecodable entries (each counted once, then quarantined)
	DiskErrs    int64 // disk tier load/store failures
	RemoteErrs  int64 // remote tier failed exchanges (severed reads, refused puts)
	RemoteDowns int64 // remote peer up->down transitions
}

// Lookups returns the total number of Get calls observed.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns the fraction of lookups served from cache, or 0 when no
// lookups have happened.
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// String renders the stats as a one-line human summary.
func (s Stats) String() string {
	out := fmt.Sprintf("cache: %d lookups, %d hits, %d misses (%.1f%% hits), %d memory + %d disk",
		s.Lookups(), s.Hits, s.Misses, 100*s.HitRate(), s.MemHits, s.DiskHits)
	if s.RemoteHits > 0 || s.RemoteErrs > 0 || s.RemoteDowns > 0 {
		out += fmt.Sprintf(" + %d remote", s.RemoteHits)
	}
	out += fmt.Sprintf(", %d stores, %d evictions, %d corrupt", s.Stores, s.Evictions, s.Corrupt)
	if s.DiskEvicts > 0 {
		out += fmt.Sprintf(", %d disk evictions", s.DiskEvicts)
	}
	if s.DiskErrs > 0 {
		out += fmt.Sprintf(", %d disk write errors", s.DiskErrs)
	}
	if s.RemoteErrs > 0 || s.RemoteDowns > 0 {
		out += fmt.Sprintf(", %d remote errors (%d down-markings)", s.RemoteErrs, s.RemoteDowns)
	}
	return out
}

// Cache is a concurrency-safe tiered point cache: an in-memory LRU over
// zero or more lower tiers (disk, remote peer). The zero value is not
// usable; call New.
type Cache struct {
	mem    *memTier
	tiers  []Tier // lower tiers, in lookup order
	remote *remoteTier
	disk   *diskTier
	dir    string

	mu    sync.Mutex // guards stats; tiers carry their own locks
	stats Stats
}

// New builds a Cache from o.
func New(o Options) (*Cache, error) {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	c := &Cache{mem: newMemTier(o.MaxEntries), dir: o.Dir}
	if o.Dir != "" {
		d, err := NewBoundedDiskTier(o.Dir, o.MaxDiskBytes)
		if err != nil {
			return nil, err
		}
		c.disk = d.(*diskTier)
		c.tiers = append(c.tiers, d)
	}
	if o.Peer != "" {
		r := NewRemoteTier(o.Peer, o.PeerOptions)
		c.remote = r.(*remoteTier)
		c.tiers = append(c.tiers, r)
	}
	c.tiers = append(c.tiers, o.Tiers...)
	return c, nil
}

// Get returns the cached entry for k, consulting every tier in order and
// hydrating the tiers above a hit.
func (c *Cache) Get(k Key) (Entry, bool) { return c.lookup(k, true) }

// GetLocal is Get restricted to local tiers (memory, disk). It is what a
// daosd's own /v1/cache endpoints serve from, so a fleet of peers pointed
// at each other can never turn one lookup into a forwarding loop.
func (c *Cache) GetLocal(k Key) (Entry, bool) { return c.lookup(k, false) }

func (c *Cache) lookup(k Key, network bool) (Entry, bool) {
	if e, r := c.mem.Load(k); r == LoadHit {
		c.count(func(s *Stats) { s.Hits++; s.MemHits++ })
		return e, true
	}
	for i, t := range c.tiers {
		if !network && isNetwork(t) {
			continue
		}
		e, r := t.Load(k)
		switch r {
		case LoadHit:
			c.mem.Store(k, e)
			// Hydrate the tiers this one sits below, so the next process
			// (or the next restart) finds the entry closer to home.
			for _, up := range c.tiers[:i] {
				if !network && isNetwork(up) {
					continue
				}
				c.storeTier(up, k, e)
			}
			c.count(func(s *Stats) {
				s.Hits++
				if isNetwork(t) {
					s.RemoteHits++
				} else {
					s.DiskHits++
				}
			})
			return e, true
		case LoadCorrupt:
			c.count(func(s *Stats) { s.Corrupt++ })
		case LoadUnavailable:
			c.count(func(s *Stats) {
				if isNetwork(t) {
					s.RemoteErrs++
				} else {
					s.DiskErrs++
				}
			})
		}
	}
	c.count(func(s *Stats) { s.Misses++ })
	return Entry{}, false
}

// Put stores e under k, writing through every tier.
func (c *Cache) Put(k Key, e Entry) { c.store(k, e, true) }

// PutLocal is Put restricted to local tiers — the write path of a daosd's
// /v1/cache PUT endpoint (see GetLocal).
func (c *Cache) PutLocal(k Key, e Entry) { c.store(k, e, false) }

func (c *Cache) store(k Key, e Entry, network bool) {
	c.mem.Store(k, e)
	c.count(func(s *Stats) { s.Stores++ })
	for _, t := range c.tiers {
		if !network && isNetwork(t) {
			continue
		}
		c.storeTier(t, k, e)
	}
}

// storeTier writes to one lower tier, counting (never surfacing) failure.
func (c *Cache) storeTier(t Tier, k Key, e Entry) {
	if err := t.Store(k, e); err != nil {
		c.count(func(s *Stats) {
			if isNetwork(t) {
				s.RemoteErrs++
			} else {
				s.DiskErrs++
			}
		})
	}
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	s.Evictions = c.mem.evicted()
	if c.disk != nil {
		s.DiskEvicts = c.disk.evicted()
	}
	if c.remote != nil {
		s.RemoteDowns = c.remote.downCount()
	}
	return s
}

// Len returns the number of entries resident in the memory tier.
func (c *Cache) Len() int { return c.mem.len() }

// path returns the disk-tier file for k (used by tests to corrupt and
// inspect entries on disk).
func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.String()+".pt")
}
