// Package cache implements a content-addressed memoization store for
// completed study points. Study points are pure functions of their
// configuration (see the key builder in internal/core): identical keys mean
// identical physics, so a completed point's bandwidths can be replayed from
// the cache instead of re-simulated.
//
// # Keys
//
// A Key is the SHA-256 of a canonical binary encoding of every
// output-affecting input (workload geometry, variant physics, node count,
// derived point seed, testbed sizing and cost models, and sim.KernelVersion).
// The cache itself treats keys as opaque: callers build them with a Hasher,
// which writes fixed-width, length-prefixed fields so distinct field
// sequences can never collide by concatenation.
//
// # Tiers
//
// The cache has two tiers. The in-memory tier is a bounded LRU map; it
// serves repeated lookups within one process. The optional on-disk tier
// (Options.Dir, one small checksummed file per key) persists points across
// processes so CI re-runs and repeated command invocations start warm. Disk
// entries hydrate the memory tier on hit; memory evictions do not remove
// disk files.
//
// # Invalidation and corruption
//
// Entries are never invalidated in place: a change to the simulated physics
// is a sim.KernelVersion bump, which changes every key and orphans old
// entries. Loads are corruption-tolerant by construction — a file that is
// missing, truncated, mis-sized, or fails its checksum is a miss (counted in
// Stats.Corrupt), never an error, and the subsequent store overwrites it.
package cache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// Entry is one memoized study point: the measured bandwidth pair plus the
// degraded-mode outputs of fault-injected points. Grid coordinates (nodes,
// ranks) are not stored — they are part of the key and re-derived by the
// caller.
type Entry struct {
	WriteGiBs float64
	ReadGiBs  float64
	// DegradedGiBs, RecoverySec, and MapTransitions memoize the
	// degraded-window outputs of a fault-injected point; all zero for
	// points without a fault plan.
	DegradedGiBs   float64
	RecoverySec    float64
	MapTransitions int64
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory LRU tier (default 4096).
	MaxEntries int
	// Dir, when non-empty, enables the on-disk tier rooted there. The
	// directory is created if missing.
	Dir string
}

// Stats are the cache's monotonic counters. Lookup outcomes partition into
// Hits (MemHits + DiskHits) and Misses.
type Stats struct {
	Hits      int64 // lookups served from either tier
	MemHits   int64 // hits served by the in-memory LRU
	DiskHits  int64 // hits served by the disk tier (then hydrated into memory)
	Misses    int64 // lookups that found nothing usable
	Stores    int64 // entries written via Put
	Evictions int64 // memory-tier LRU evictions (disk files are kept)
	Corrupt   int64 // disk entries dropped as unreadable or checksum-failed
	DiskErrs  int64 // best-effort disk writes that failed
}

// Lookups returns the total number of Get calls observed.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns hits/lookups in [0,1], or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups())
}

// String renders the counters on one line, e.g.
//
//	cache: 16 lookups, 16 hits, 0 misses (100.0% hits), 14 memory + 2 disk, 16 stores, 0 evictions, 0 corrupt
//
// Disk write failures are appended only when present — an unwritable tier
// must be visible here, or the user discovers it as an inexplicably cold
// rerun.
func (s Stats) String() string {
	out := fmt.Sprintf("cache: %d lookups, %d hits, %d misses (%.1f%% hits), %d memory + %d disk, %d stores, %d evictions, %d corrupt",
		s.Lookups(), s.Hits, s.Misses, 100*s.HitRate(), s.MemHits, s.DiskHits, s.Stores, s.Evictions, s.Corrupt)
	if s.DiskErrs > 0 {
		out += fmt.Sprintf(", %d disk write errors", s.DiskErrs)
	}
	return out
}

// node is one memory-tier slot; list elements hold *node.
type node struct {
	k Key
	e Entry
}

// Cache is a two-tier content-addressed store. It is safe for concurrent
// use by the Runner's worker pool.
type Cache struct {
	mu    sync.Mutex
	max   int
	dir   string
	lru   *list.List            // front = most recently used
	index map[Key]*list.Element // key -> lru element
	stats Stats
}

// New creates a cache. It returns an error only when the disk tier is
// requested and its directory cannot be created.
func New(o Options) (*Cache, error) {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: disk tier: %w", err)
		}
	}
	return &Cache{
		max:   o.MaxEntries,
		dir:   o.Dir,
		lru:   list.New(),
		index: make(map[Key]*list.Element),
	}, nil
}

// Get returns the entry for k, consulting the memory tier and then the disk
// tier. A disk hit hydrates the memory tier.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	if el, ok := c.index[k]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		c.stats.MemHits++
		e := el.Value.(*node).e
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()

	// The disk read runs outside the lock so parallel workers do not
	// serialize on I/O; insert below is idempotent if two workers race on
	// the same key.
	if c.dir != "" {
		e, ok, corrupt := c.load(k)
		if ok {
			c.mu.Lock()
			c.insert(k, e)
			c.stats.Hits++
			c.stats.DiskHits++
			c.mu.Unlock()
			return e, true
		}
		if corrupt {
			c.mu.Lock()
			c.stats.Corrupt++
			c.mu.Unlock()
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return Entry{}, false
}

// Put stores the entry for k in the memory tier and, best-effort, the disk
// tier. Disk write failures are counted, never surfaced: the cache is an
// accelerator, not a system of record.
func (c *Cache) Put(k Key, e Entry) {
	c.mu.Lock()
	c.insert(k, e)
	c.stats.Stores++
	c.mu.Unlock()
	if c.dir != "" {
		if err := c.store(k, e); err != nil {
			c.mu.Lock()
			c.stats.DiskErrs++
			c.mu.Unlock()
		}
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of entries in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// insert adds or refreshes k in the memory tier and evicts past the bound.
// Callers hold c.mu.
func (c *Cache) insert(k Key, e Entry) {
	if el, ok := c.index[k]; ok {
		el.Value.(*node).e = e
		c.lru.MoveToFront(el)
		return
	}
	c.index[k] = c.lru.PushFront(&node{k: k, e: e})
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.index, back.Value.(*node).k)
		c.stats.Evictions++
	}
}

// Disk-tier entry layout: an 8-byte magic, the payload fields in
// little-endian bits, and a CRC-32 of the payload. Anything that does not
// parse exactly is treated as absent.
//
// The current format ("daoscch2") stores five payload fields: the two
// bandwidths, the two degraded-window float64s, and the map-transition
// count. Records written by the previous format ("daoscch1", bandwidths
// only) still load, with zero degraded fields — which is exact, because
// every point cached under that format necessarily ran without a fault
// plan (fault-plan points key into a different address space entirely).
const (
	diskMagic     = "daoscch2"
	diskPayload   = 5 * 8
	diskSize      = len(diskMagic) + diskPayload + 4
	diskMagicV1   = "daoscch1"
	diskPayloadV1 = 2 * 8
	diskSizeV1    = len(diskMagicV1) + diskPayloadV1 + 4
)

// path returns the disk file for k.
func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.String()+".pt")
}

// load reads k from the disk tier. corrupt reports a file that existed but
// did not decode.
func (c *Cache) load(k Key) (e Entry, ok, corrupt bool) {
	buf, err := os.ReadFile(c.path(k))
	if err != nil {
		// Missing is the common cold-cache case; any other read error is
		// equally just a miss (corruption-tolerance is the contract).
		return Entry{}, false, !os.IsNotExist(err)
	}
	switch {
	case len(buf) == diskSize && string(buf[:len(diskMagic)]) == diskMagic:
		payload := buf[len(diskMagic) : len(diskMagic)+diskPayload]
		sum := binary.LittleEndian.Uint32(buf[len(diskMagic)+diskPayload:])
		if crc32.ChecksumIEEE(payload) != sum {
			return Entry{}, false, true
		}
		e.WriteGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
		e.ReadGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
		e.DegradedGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
		e.RecoverySec = math.Float64frombits(binary.LittleEndian.Uint64(payload[24:]))
		e.MapTransitions = int64(binary.LittleEndian.Uint64(payload[32:]))
		return e, true, false
	case len(buf) == diskSizeV1 && string(buf[:len(diskMagicV1)]) == diskMagicV1:
		// Legacy record: bandwidths only, degraded fields implicitly zero.
		payload := buf[len(diskMagicV1) : len(diskMagicV1)+diskPayloadV1]
		sum := binary.LittleEndian.Uint32(buf[len(diskMagicV1)+diskPayloadV1:])
		if crc32.ChecksumIEEE(payload) != sum {
			return Entry{}, false, true
		}
		e.WriteGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
		e.ReadGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
		return e, true, false
	default:
		return Entry{}, false, true
	}
}

// store writes k to the disk tier atomically (temp file + rename), so a
// crashed or concurrent writer can never leave a torn entry at the final
// path.
func (c *Cache) store(k Key, e Entry) error {
	buf := make([]byte, diskSize)
	copy(buf, diskMagic)
	binary.LittleEndian.PutUint64(buf[len(diskMagic):], math.Float64bits(e.WriteGiBs))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+8:], math.Float64bits(e.ReadGiBs))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+16:], math.Float64bits(e.DegradedGiBs))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+24:], math.Float64bits(e.RecoverySec))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+32:], uint64(e.MapTransitions))
	binary.LittleEndian.PutUint32(buf[len(diskMagic)+diskPayload:], crc32.ChecksumIEEE(buf[len(diskMagic):len(diskMagic)+diskPayload]))

	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(k)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
