package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"time"
)

// Key is a content address: the SHA-256 of a canonical field encoding built
// with a Hasher.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (also the disk-tier file stem
// and the {key} path element of the remote tier's /v1/cache URLs).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey inverts Key.String: it decodes a 64-character hex digest back
// into a Key, rejecting anything of the wrong length or alphabet.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != hex.EncodedLen(len(k)) {
		return Key{}, fmt.Errorf("cache: key %q: want %d hex characters", s, hex.EncodedLen(len(k)))
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return Key{}, fmt.Errorf("cache: key %q: %v", s, err)
	}
	return k, nil
}

// Hasher builds a Key from a sequence of typed fields. Every numeric field
// is written as fixed-width little-endian bytes and every string is
// length-prefixed, so within one fixed field schema two different value
// sequences cannot encode to the same byte stream. (Across schemas the
// encoding is not self-describing — String("") and Uint64(0) encode
// identically — so a key builder must fix its field order and types, and
// version that schema in a leading domain-separation string.) Key builders
// must feed every output-affecting field — a missed field silently serves
// wrong physics — and should also hash a kernel version for invalidation.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// Uint64 appends v.
func (h *Hasher) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.buf[i] = byte(v >> (8 * i))
	}
	h.h.Write(h.buf[:])
}

// Int appends v (two's-complement widened, so negatives are well-defined).
func (h *Hasher) Int(v int) { h.Uint64(uint64(int64(v))) }

// Int64 appends v.
func (h *Hasher) Int64(v int64) { h.Uint64(uint64(v)) }

// Float64 appends v's IEEE-754 bits (NaN payloads and signed zeros are
// distinct inputs and hash distinctly).
func (h *Hasher) Float64(v float64) { h.Uint64(math.Float64bits(v)) }

// Duration appends d.
func (h *Hasher) Duration(d time.Duration) { h.Int64(int64(d)) }

// Bool appends b.
func (h *Hasher) Bool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	h.Uint64(v)
}

// String appends s, length-prefixed.
func (h *Hasher) String(s string) {
	h.Uint64(uint64(len(s)))
	h.h.Write([]byte(s))
}

// Sum finalizes the key. The Hasher must not be used afterwards.
func (h *Hasher) Sum() (k Key) {
	h.h.Sum(k[:0])
	return k
}
