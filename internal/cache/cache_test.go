package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// keyOf builds a distinct test key from a label.
func keyOf(label string) Key {
	h := NewHasher()
	h.String(label)
	return h.Sum()
}

func TestMemoryTierPutGet(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("a")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache returned a hit")
	}
	want := Entry{WriteGiBs: 1.25, ReadGiBs: 2.5}
	c.Put(k, want)
	got, ok := c.Get(k)
	if !ok || got != want {
		t.Fatalf("Get = %+v, %v; want %+v", got, ok, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.MemHits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Lookups() != 2 || st.HitRate() != 0.5 {
		t.Fatalf("lookups=%d rate=%v", st.Lookups(), st.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := keyOf("a"), keyOf("b"), keyOf("d")
	c.Put(a, Entry{WriteGiBs: 1})
	c.Put(b, Entry{WriteGiBs: 2})
	// Touch a so b is the LRU victim when d arrives.
	if _, ok := c.Get(a); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put(d, Entry{WriteGiBs: 3})
	if _, ok := c.Get(b); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := c.Get(a); !ok {
		t.Fatal("recently-used a evicted")
	}
	if _, ok := c.Get(d); !ok {
		t.Fatal("newest d evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("a")
	c.Put(k, Entry{WriteGiBs: 1})
	c.Put(k, Entry{WriteGiBs: 9})
	if got, _ := c.Get(k); got.WriteGiBs != 9 {
		t.Fatalf("refresh lost: %+v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate slot for refreshed key: len=%d", c.Len())
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("point")
	want := Entry{WriteGiBs: 3.14159, ReadGiBs: 2.71828}
	c1.Put(k, want)

	// A fresh cache over the same directory must serve the entry from disk
	// and hydrate its memory tier.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(k)
	if !ok || got != want {
		t.Fatalf("disk round trip = %+v, %v; want %+v", got, ok, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Second lookup is a memory hit: the disk hit hydrated the LRU.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("hydrated entry missing")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats after hydration = %+v", st)
	}
}

func TestEvictedEntrySurvivesOnDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{MaxEntries: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, b := keyOf("a"), keyOf("b")
	c.Put(a, Entry{WriteGiBs: 1})
	c.Put(b, Entry{WriteGiBs: 2}) // evicts a from memory, not from disk
	got, ok := c.Get(a)
	if !ok || got.WriteGiBs != 1 {
		t.Fatalf("evicted entry not re-served from disk: %+v, %v", got, ok)
	}
	if st := c.Stats(); st.Evictions == 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCorruptEntriesAreMisses is the corruption-tolerance contract: a bad
// disk entry of any shape is a miss, never an error, it is quarantined on
// first detection so Stats.Corrupt counts distinct corruption events
// rather than one bad file forever, and a subsequent Put repairs it.
func TestCorruptEntriesAreMisses(t *testing.T) {
	cases := []struct {
		name    string
		content []byte
	}{
		{"empty", nil},
		{"truncated", []byte(diskMagic + "abc")},
		{"wrong magic", make([]byte, diskSize)},
		{"oversized", append([]byte(diskMagic), make([]byte, 64)...)},
		{"bad checksum", func() []byte {
			buf := make([]byte, diskSize)
			copy(buf, diskMagic)
			buf[diskSize-1] ^= 0xFF
			buf[len(diskMagic)] = 7 // non-zero payload so the zero CRC can't accidentally match
			return buf
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			k := keyOf("victim")
			if err := os.WriteFile(c.path(k), tc.content, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(k); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := c.Stats()
			if st.Misses != 1 || st.Corrupt != 1 {
				t.Fatalf("stats = %+v", st)
			}
			// The bad file is quarantined on first detection, so looking
			// the key up again is a plain miss — the corrupt counter must
			// not grow on re-lookup of the same event.
			if _, err := os.Stat(c.path(k)); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not quarantined: %v", err)
			}
			if _, ok := c.Get(k); ok {
				t.Fatal("quarantined entry served as a hit")
			}
			if st := c.Stats(); st.Misses != 2 || st.Corrupt != 1 {
				t.Fatalf("stats after re-lookup = %+v", st)
			}
			// The store path must repair the slot.
			want := Entry{WriteGiBs: 5}
			c.Put(k, want)
			c2, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := c2.Get(k); !ok || got != want {
				t.Fatalf("repair failed: %+v, %v", got, ok)
			}
		})
	}
}

func TestDiskTierDirCreated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	if _, err := New(Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("dir not created: %v", err)
	}
}

func TestDiskTierBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("New over a file path succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(Options{MaxEntries: 64, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := keyOf(fmt.Sprintf("k%d", i%32))
				if e, ok := c.Get(k); ok && e.WriteGiBs != float64(i%32) {
					t.Errorf("wrong value for shared key: %v", e)
				}
				c.Put(k, Entry{WriteGiBs: float64(i % 32)})
			}
		}(w)
	}
	wg.Wait()
}

func TestStatsString(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("a")
	c.Put(k, Entry{})
	c.Get(k)
	s := c.Stats().String()
	// The CI cache-smoke step greps for the rate marker; pin it here so a
	// format change can't silently break the workflow.
	if !strings.Contains(s, "(100.0% hits)") {
		t.Fatalf("stats string lost the hit-rate marker: %q", s)
	}
}

func TestHasherInjective(t *testing.T) {
	// Field-boundary attack: ("ab","c") vs ("a","bc") must differ because
	// strings are length-prefixed.
	h1 := NewHasher()
	h1.String("ab")
	h1.String("c")
	h2 := NewHasher()
	h2.String("a")
	h2.String("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("length prefixing failed")
	}
	// Typed fields write fixed widths: (1,2) as two ints differs from one
	// int64 with the same concatenated bits only via count — check a simple
	// split collision.
	h3 := NewHasher()
	h3.Uint64(1)
	h3.Uint64(2)
	h4 := NewHasher()
	h4.Uint64(2)
	h4.Uint64(1)
	if h3.Sum() == h4.Sum() {
		t.Fatal("field order ignored")
	}
}
