package cache

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOpen covers the shared CLI flag matrix: off by default, -cache uses
// the home-directory default, an explicit -cache-dir implies -cache, an
// explicitly empty -cache-dir keeps the cache memory-only, and an
// unresolvable home directory is an error rather than a silent downgrade.
func TestOpen(t *testing.T) {
	home := t.TempDir()
	t.Setenv("HOME", home)

	t.Run("off", func(t *testing.T) {
		c, err := Open(false, false, "", "", 0)
		if err != nil || c != nil {
			t.Fatalf("cache without -cache: %v, %v", c, err)
		}
	})
	t.Run("cache-dir implies cache", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "tier")
		c, err := Open(false, true, dir, "", 0)
		if err != nil || c == nil {
			t.Fatalf("Open(-cache-dir): %v, %v", c, err)
		}
		k := keyOf("probe")
		c.Put(k, Entry{WriteGiBs: 1})
		if _, err := os.Stat(filepath.Join(dir, k.String()+".pt")); err != nil {
			t.Fatalf("disk tier not at -cache-dir: %v", err)
		}
	})
	t.Run("explicitly empty dir is memory-only", func(t *testing.T) {
		c, err := Open(true, true, "", "", 0)
		if err != nil || c == nil {
			t.Fatalf("Open(-cache -cache-dir \"\"): %v, %v", c, err)
		}
		c.Put(keyOf("probe"), Entry{WriteGiBs: 1})
		if _, err := os.Stat(filepath.Join(home, ".daosim")); !os.IsNotExist(err) {
			t.Fatalf("memory-only mode touched the home dir: %v", err)
		}
	})
	t.Run("default dir", func(t *testing.T) {
		c, err := Open(true, false, "", "", 0)
		if err != nil || c == nil {
			t.Fatalf("Open(-cache): %v, %v", c, err)
		}
		k := keyOf("probe")
		c.Put(k, Entry{WriteGiBs: 1})
		if _, err := os.Stat(filepath.Join(home, ".daosim", "cache", k.String()+".pt")); err != nil {
			t.Fatalf("default disk tier not under ~/.daosim/cache: %v", err)
		}
	})
	t.Run("peer alone enables a diskless cache", func(t *testing.T) {
		home := t.TempDir()
		t.Setenv("HOME", home)
		c, err := Open(false, false, "", "127.0.0.1:0", 0)
		if err != nil || c == nil {
			t.Fatalf("Open(-cache-peer): %v, %v", c, err)
		}
		if c.remote == nil {
			t.Fatal("peer-only cache has no remote tier")
		}
		c.Put(keyOf("probe"), Entry{WriteGiBs: 1})
		if _, err := os.Stat(filepath.Join(home, ".daosim")); !os.IsNotExist(err) {
			t.Fatalf("peer-only mode grew a disk tier under home: %v", err)
		}
	})
	t.Run("peer stacks below an explicit dir", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "tier")
		c, err := Open(false, true, dir, "127.0.0.1:0", 0)
		if err != nil || c == nil {
			t.Fatalf("Open(-cache-dir -cache-peer): %v, %v", c, err)
		}
		if c.remote == nil {
			t.Fatal("cache with -cache-peer has no remote tier")
		}
		k := keyOf("probe")
		c.PutLocal(k, Entry{WriteGiBs: 1})
		if _, err := os.Stat(filepath.Join(dir, k.String()+".pt")); err != nil {
			t.Fatalf("disk tier not at -cache-dir: %v", err)
		}
	})
	t.Run("unresolvable home is an error", func(t *testing.T) {
		t.Setenv("HOME", "")
		if c, err := Open(true, false, "", "", 0); err == nil {
			t.Fatalf("Open with no home dir silently returned %v", c)
		}
	})
}
