package cache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// TierPathPrefix is the URL path under which a daosd serves its cache as a
// network tier: GET /v1/cache/{key} answers 200 with the EncodeEntry record
// (404 for a miss), PUT stores one. Keys are content addresses — the
// SHA-256 hex from Key.String — so they mean the same point on every
// machine, and the record body carries its own checksum.
const TierPathPrefix = "/v1/cache/"

// RemoteOptions tunes a remote tier. Zero values take the defaults.
type RemoteOptions struct {
	// Timeout bounds one GET or PUT exchange end to end (default 2s). The
	// records are tiny, so anything slower than this is a peer worth
	// treating as down.
	Timeout time.Duration
	// ProbeBase is the first down period after a failed exchange; each
	// further failure doubles it up to ProbeMax (defaults 100ms and 5s,
	// mirroring the fleet's down-worker re-probe schedule).
	ProbeBase time.Duration
	ProbeMax  time.Duration
}

// remoteTier reads and writes a peer daosd's cache over TierPathPrefix.
//
// Its failure semantics are the disk tier's, stretched over the network: a
// peer that is down, slow, or serving garbage is a miss, never an error.
// Every exchange is bounded by Timeout; a transport failure (or a 5xx)
// marks the peer down for ProbeBase, doubling per failure up to ProbeMax.
// While down, Load and Store return instantly without touching the network
// — except that once each down period expires, exactly one caller is
// admitted as the re-probe (its real lookup doubles as the health check;
// everyone else keeps missing until it succeeds). Store is best-effort by
// contract: a put skipped while the peer is down is silently dropped.
type remoteTier struct {
	base  string
	httpc *http.Client

	probeBase time.Duration
	probeMax  time.Duration

	mu        sync.Mutex
	backoff   time.Duration // 0 = up; otherwise the current down period
	downUntil time.Time
	probing   bool  // one re-probe exchange is in flight
	downs     int64 // up->down transitions
}

// NewRemoteTier returns a tier backed by the daosd at peer (host:port or an
// http:// URL).
func NewRemoteTier(peer string, o RemoteOptions) Tier {
	base := strings.TrimSuffix(peer, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.ProbeBase <= 0 {
		o.ProbeBase = 100 * time.Millisecond
	}
	if o.ProbeMax <= 0 {
		o.ProbeMax = 5 * time.Second
	}
	return &remoteTier{
		base:      base,
		httpc:     &http.Client{Timeout: o.Timeout},
		probeBase: o.ProbeBase,
		probeMax:  o.ProbeMax,
	}
}

func (t *remoteTier) networkTier() {}

func (t *remoteTier) Name() string { return "remote" }

func (t *remoteTier) url(k Key) string { return t.base + TierPathPrefix + k.String() }

// admit reports whether a call may go to the network: always while up;
// while down, only the single re-probe caller once the down period expires.
func (t *remoteTier) admit() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.backoff == 0 {
		return true
	}
	if time.Now().Before(t.downUntil) || t.probing {
		return false
	}
	t.probing = true
	return true
}

// markDown records a failed exchange: the first failure opens a ProbeBase
// down window, each consecutive one doubles it up to ProbeMax.
func (t *remoteTier) markDown() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.probing = false
	if t.backoff == 0 {
		t.backoff = t.probeBase
		t.downs++
	} else if t.backoff *= 2; t.backoff > t.probeMax {
		t.backoff = t.probeMax
	}
	t.downUntil = time.Now().Add(t.backoff)
}

// markUp records a completed exchange (hit, miss, or a refusal that proves
// the peer is alive): the backoff resets and the tier is readmitted.
func (t *remoteTier) markUp() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.probing = false
	t.backoff = 0
	t.downUntil = time.Time{}
}

// downCount returns the number of up->down transitions (Stats.RemoteDowns).
func (t *remoteTier) downCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.downs
}

// Load implements Tier. A 200 with a well-formed record is a hit; a 404 is
// a clean miss (and proof the peer is up); a corrupt body is LoadCorrupt
// without down-marking (the transport worked); everything else —
// transport error, timeout, 5xx — is LoadUnavailable and marks the peer
// down. While down, Load is an instant LoadMiss with no network traffic.
func (t *remoteTier) Load(k Key) (Entry, LoadResult) {
	if !t.admit() {
		return Entry{}, LoadMiss
	}
	resp, err := t.httpc.Get(t.url(k))
	if err != nil {
		t.markDown()
		return Entry{}, LoadUnavailable
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		buf, err := io.ReadAll(io.LimitReader(resp.Body, int64(diskSize)+1))
		if err != nil {
			t.markDown()
			return Entry{}, LoadUnavailable
		}
		e, derr := DecodeEntry(buf)
		t.markUp()
		if derr != nil {
			return Entry{}, LoadCorrupt
		}
		return e, LoadHit
	case http.StatusNotFound:
		t.markUp()
		return Entry{}, LoadMiss
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		t.markDown()
		return Entry{}, LoadUnavailable
	}
}

// Store implements Tier, best-effort. A put against a down peer is
// silently skipped (nil: dropping best-effort writes while down is the
// contract, not a failure worth counting per point). A transport failure
// or 5xx marks the peer down; a 4xx (peer alive but refusing — e.g. it has
// no cache configured) is an error without down-marking, so a
// misconfigured peer shows up in Stats.RemoteErrs instead of flapping.
func (t *remoteTier) Store(k Key, e Entry) error {
	if !t.admit() {
		return nil
	}
	req, err := http.NewRequest(http.MethodPut, t.url(k), bytes.NewReader(EncodeEntry(e)))
	if err != nil {
		t.markUp()
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.httpc.Do(req)
	if err != nil {
		t.markDown()
		return fmt.Errorf("cache: remote tier %s: %w", t.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	switch {
	case resp.StatusCode/100 == 2:
		t.markUp()
		return nil
	case resp.StatusCode/100 == 5:
		t.markDown()
		return fmt.Errorf("cache: remote tier %s refused put: %s", t.base, resp.Status)
	default:
		t.markUp()
		return fmt.Errorf("cache: remote tier %s refused put: %s", t.base, resp.Status)
	}
}
