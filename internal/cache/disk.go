package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Entry record layout: an 8-byte magic, the payload fields in little-endian
// bits, and a CRC-32 of the payload. Anything that does not parse exactly
// is ErrCorruptEntry. The encoding serves two transports with one format:
// the disk tier's per-key files, and the HTTP body of the remote tier's
// GET/PUT /v1/cache/{key} exchanges — the checksum rides along in both, so
// a torn disk write and a truncated network body are rejected identically.
//
// The current format ("daoscch2") stores five payload fields: the two
// bandwidths, the two degraded-window float64s, and the map-transition
// count. Records written by the previous format ("daoscch1", bandwidths
// only) still load, with zero degraded fields — which is exact, because
// every point cached under that format necessarily ran without a fault
// plan (fault-plan points key into a different address space entirely).
const (
	diskMagic     = "daoscch2"
	diskPayload   = 5 * 8
	diskSize      = len(diskMagic) + diskPayload + 4
	diskMagicV1   = "daoscch1"
	diskPayloadV1 = 2 * 8
	diskSizeV1    = len(diskMagicV1) + diskPayloadV1 + 4
)

// ErrCorruptEntry reports a record that was present but did not decode:
// wrong magic, wrong size, or checksum failure.
var ErrCorruptEntry = errors.New("cache: undecodable entry record")

// EncodeEntry renders e in the checksummed record format shared by the
// disk tier's files and the remote tier's HTTP bodies.
func EncodeEntry(e Entry) []byte {
	buf := make([]byte, diskSize)
	copy(buf, diskMagic)
	binary.LittleEndian.PutUint64(buf[len(diskMagic):], math.Float64bits(e.WriteGiBs))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+8:], math.Float64bits(e.ReadGiBs))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+16:], math.Float64bits(e.DegradedGiBs))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+24:], math.Float64bits(e.RecoverySec))
	binary.LittleEndian.PutUint64(buf[len(diskMagic)+32:], uint64(e.MapTransitions))
	binary.LittleEndian.PutUint32(buf[len(diskMagic)+diskPayload:], crc32.ChecksumIEEE(buf[len(diskMagic):len(diskMagic)+diskPayload]))
	return buf
}

// DecodeEntry parses a record produced by EncodeEntry (or by the legacy
// "daoscch1" format). Any record that is truncated, oversized, mis-tagged,
// or checksum-failed returns ErrCorruptEntry.
func DecodeEntry(buf []byte) (Entry, error) {
	var e Entry
	switch {
	case len(buf) == diskSize && string(buf[:len(diskMagic)]) == diskMagic:
		payload := buf[len(diskMagic) : len(diskMagic)+diskPayload]
		sum := binary.LittleEndian.Uint32(buf[len(diskMagic)+diskPayload:])
		if crc32.ChecksumIEEE(payload) != sum {
			return Entry{}, ErrCorruptEntry
		}
		e.WriteGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
		e.ReadGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
		e.DegradedGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
		e.RecoverySec = math.Float64frombits(binary.LittleEndian.Uint64(payload[24:]))
		e.MapTransitions = int64(binary.LittleEndian.Uint64(payload[32:]))
		return e, nil
	case len(buf) == diskSizeV1 && string(buf[:len(diskMagicV1)]) == diskMagicV1:
		// Legacy record: bandwidths only, degraded fields implicitly zero.
		payload := buf[len(diskMagicV1) : len(diskMagicV1)+diskPayloadV1]
		sum := binary.LittleEndian.Uint32(buf[len(diskMagicV1)+diskPayloadV1:])
		if crc32.ChecksumIEEE(payload) != sum {
			return Entry{}, ErrCorruptEntry
		}
		e.WriteGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
		e.ReadGiBs = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
		return e, nil
	default:
		return Entry{}, ErrCorruptEntry
	}
}

// diskTier persists entries as one small checksummed file per key,
// optionally bounded to max bytes with least-recently-used file
// eviction (ranked by atime, which Load touches on every hit).
type diskTier struct {
	dir string
	max int64 // byte budget; <= 0 means unbounded

	mu        sync.Mutex
	size      int64 // sum of resident .pt file sizes (bounded tiers only)
	evictions int64
}

// NewDiskTier opens the on-disk tier rooted at dir, creating the directory
// if missing.
func NewDiskTier(dir string) (Tier, error) { return NewBoundedDiskTier(dir, 0) }

// NewBoundedDiskTier is NewDiskTier with a size budget: once the tier's
// .pt files exceed maxBytes, stores evict the least-recently-used
// entries (oldest access time first) until the tier fits again.
// maxBytes <= 0 means unbounded. The budget is enforced per store, so
// the tier can briefly hold one entry over it.
func NewBoundedDiskTier(dir string, maxBytes int64) (Tier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk tier: %w", err)
	}
	d := &diskTier{dir: dir, max: maxBytes}
	if d.max > 0 {
		// Take the resident census once; stores keep it incremental.
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("cache: disk tier: %w", err)
		}
		for _, ent := range ents {
			if filepath.Ext(ent.Name()) != ".pt" {
				continue
			}
			if fi, err := ent.Info(); err == nil {
				d.size += fi.Size()
			}
		}
	}
	return d, nil
}

// evicted returns the number of entry files evicted to hold the budget.
func (d *diskTier) evicted() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.evictions
}

func (d *diskTier) Name() string { return "disk" }

// path returns the file for k.
func (d *diskTier) path(k Key) string {
	return filepath.Join(d.dir, k.String()+".pt")
}

// Load reads k. A file that exists but does not decode is quarantined —
// removed on first detection — so Stats.Corrupt counts distinct corruption
// events rather than re-counting one bad file on every lookup, and the
// slot reads as a plain miss until the next store repairs it. Read errors
// other than absence are LoadUnavailable (the file is left in place: an
// unreadable file is not evidence of a bad record).
func (d *diskTier) Load(k Key) (Entry, LoadResult) {
	buf, err := os.ReadFile(d.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			return Entry{}, LoadMiss
		}
		return Entry{}, LoadUnavailable
	}
	e, err := DecodeEntry(buf)
	if err != nil {
		os.Remove(d.path(k)) // best-effort quarantine
		return Entry{}, LoadCorrupt
	}
	if d.max > 0 {
		// Touch the entry so LRU eviction sees this hit: relatime mounts
		// defer read-driven atime updates, so rank by an explicit one
		// (mtime too, for platforms where atime is unreadable).
		now := time.Now()
		os.Chtimes(d.path(k), now, now)
	}
	return e, LoadHit
}

// Store writes k atomically (temp file + rename), so a crashed or
// concurrent writer can never leave a torn entry at the final path. On
// a bounded tier the store then evicts least-recently-used entries
// until the tier fits its byte budget again.
func (d *diskTier) Store(k Key, e Entry) error {
	rec := EncodeEntry(e)
	var replaced int64
	if d.max > 0 {
		if fi, err := os.Stat(d.path(k)); err == nil {
			replaced = fi.Size()
		}
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(k)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d.max > 0 {
		d.mu.Lock()
		d.size += int64(len(rec)) - replaced
		if d.size > d.max {
			d.evictLocked(k.String() + ".pt")
		}
		d.mu.Unlock()
	}
	return nil
}

// evictLocked removes least-recently-used .pt files (oldest access time
// first) until the tier fits d.max, sparing keep — the entry whose
// store triggered the eviction (evicting what was just written would
// make the newest point the first casualty).
func (d *diskTier) evictLocked(keep string) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type candidate struct {
		name  string
		size  int64
		atime time.Time
	}
	var cands []candidate
	var resident int64
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != ".pt" {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			continue
		}
		resident += fi.Size()
		if ent.Name() == keep {
			continue
		}
		cands = append(cands, candidate{name: ent.Name(), size: fi.Size(), atime: fileATime(fi)})
	}
	// Trust the census over the incremental estimate (an external sweep
	// may have removed files behind our back).
	d.size = resident
	sort.Slice(cands, func(i, j int) bool { return cands[i].atime.Before(cands[j].atime) })
	for _, c := range cands {
		if d.size <= d.max {
			break
		}
		if os.Remove(filepath.Join(d.dir, c.name)) == nil {
			d.size -= c.size
			d.evictions++
		}
	}
}
