//go:build !linux

package cache

import (
	"os"
	"time"
)

// fileATime falls back to the modification time where the stat access
// time is not portably reachable. Load's explicit touch updates mtime
// along with atime, so eviction order still tracks last use.
func fileATime(fi os.FileInfo) time.Time {
	return fi.ModTime()
}
