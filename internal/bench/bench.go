// Package bench regenerates every figure in the paper's evaluation section
// plus the ablations DESIGN.md calls out, on top of the core study API.
// Each experiment has a canned configuration (scaled to simulator-friendly
// sizes while preserving the paper's geometry ratios) and renderers for
// text tables and CSV. All experiments execute through the core Runner, so
// independent sweep points fan out across cores; Options.Parallelism tunes
// the pool and results are identical at any setting.
package bench

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"daosim/internal/cache"
	"daosim/internal/cluster"
	"daosim/internal/core"
	"daosim/internal/ior"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// Scale picks the sweep size: Full reproduces the paper's node axis;
// Quick is a reduced sweep for CI and testing.B runs.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

func nodesFor(s Scale) []int {
	if s == Full {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 4}
}

// Options tunes how the canned experiments execute.
type Options struct {
	// Scale picks the node sweep (Quick or Full).
	Scale Scale
	// Parallelism bounds how many sweep points simulate concurrently;
	// zero means runtime.GOMAXPROCS(0), one forces a sequential sweep.
	// The measured figures are identical at any setting.
	Parallelism int
	// Seed overrides the study seed (zero keeps the testbed default).
	Seed uint64
	// Cache, when non-nil, memoizes completed sweep points across
	// experiments (see internal/cache): re-running any canned experiment
	// with a warm cache replays byte-identical tables and CSV without
	// simulating. Identical points shared between experiments (e.g. the
	// DFS/S2 sweep appearing in several ablations) hit across them.
	Cache *cache.Cache
	// Runner, when non-nil, overrides where study grids execute — e.g. a
	// studysvc.Client routes them through a daosd server. Results are
	// byte-identical to the default in-process core.Runner (that is the
	// service's contract). Parallelism above then applies only to work
	// that cannot leave the process (the native-array points, which are
	// never memoized on any path); Cache is not consulted at all — with a
	// server, caching is the server's concern.
	Runner core.StudyRunner
}

// At is shorthand for Options{Scale: s}.
func At(s Scale) Options { return Options{Scale: s} }

// runner returns the study executor the experiment's grids run on.
func (o Options) runner() core.StudyRunner {
	if o.Runner != nil {
		return o.Runner
	}
	return o.local()
}

// local returns the in-process worker pool, for point work that is not a
// study grid and therefore cannot be routed to a study server.
func (o Options) local() *core.Runner {
	return &core.Runner{Parallelism: o.Parallelism, Cache: o.Cache}
}

// Figure1 runs the easy (file-per-process) study behind the paper's Fig. 1.
func Figure1(o Options) (*core.Study, error) {
	return o.runner().Run(core.Config{
		Workload: "easy",
		Nodes:    nodesFor(o.Scale),
		Variants: core.EasyVariants(),
		Seed:     o.Seed,
	})
}

// Figure2 runs the hard (shared-file) study behind the paper's Fig. 2.
func Figure2(o Options) (*core.Study, error) {
	return o.runner().Run(core.Config{
		Workload: "hard",
		Nodes:    nodesFor(o.Scale),
		Variants: core.HardVariants(),
		Seed:     o.Seed,
	})
}

// RunFigures runs the paper's figure studies (fig = "1", "2", "0" for
// both, or "fault" for the fault-injection grid) on the Options runner,
// writing the rendered tables, sweep wall-clock, and machine-checked
// claims to out. It is the one figure driver shared by cmd/figures and
// cmd/studyctl, so the two binaries cannot drift apart in what they print.
// The returned string is the accumulated raw-series CSV of every figure
// that ran.
//
// A sweep that completed with failed points (the error is a
// *core.PointErrors) still renders — the grid is populated, failed cells
// read as zeros — and the remaining figures still run; the per-point
// failures come back joined, typed so callers can exit distinctly. Any
// other error (transport failure, truncated server stream) aborts
// immediately: there is nothing trustworthy to render.
func RunFigures(o Options, fig string, out io.Writer) (string, error) {
	if fig != "0" && fig != "1" && fig != "2" && fig != "fault" {
		return "", fmt.Errorf("bench: no figure %q (want 1, 2, fault, or 0 for both paper figures)", fig)
	}
	var csv string
	var easy, hard *core.Study
	var pointErrs []error
	failed := 0
	sweep := func(st *core.Study, err error) (*core.Study, error) {
		if err == nil {
			return st, nil
		}
		var pe *core.PointErrors
		if !errors.As(err, &pe) || st == nil {
			return nil, err
		}
		pointErrs = append(pointErrs, pe.Err)
		failed += pe.Count
		return st, nil
	}
	var err error
	if fig == "fault" {
		fss, ferr := FaultGrid(o)
		if ferr != nil {
			var pe *core.PointErrors
			if !errors.As(ferr, &pe) {
				return csv, ferr
			}
			pointErrs = append(pointErrs, pe.Err)
			failed += pe.Count
		}
		fmt.Fprintln(out, "=== Fault grid: engine kill, rebuild, restart ===")
		fmt.Fprintln(out, RenderFaultGrid(fss))
		csv += FaultCSV(fss)
		if len(pointErrs) > 0 {
			return csv, &core.PointErrors{Count: failed, Err: errors.Join(pointErrs...)}
		}
		return csv, nil
	}
	if fig == "0" || fig == "1" {
		if easy, err = sweep(Figure1(o)); err != nil {
			return csv, err
		}
		fmt.Fprintln(out, Render("Figure 1: IOR file-per-process (easy)", easy))
		fmt.Fprintf(out, "%s\n\n", sweepLine(easy))
		fmt.Fprintln(out, "Paper claims, checked:")
		fmt.Fprintln(out, RenderClaims(easy.CheckEasyClaims()))
		csv += easy.CSV()
	}
	if fig == "0" || fig == "2" {
		if hard, err = sweep(Figure2(o)); err != nil {
			return csv, err
		}
		fmt.Fprintln(out, Render("Figure 2: IOR shared-file (hard)", hard))
		fmt.Fprintf(out, "%s\n\n", sweepLine(hard))
		fmt.Fprintln(out, "Paper claims, checked:")
		fmt.Fprintln(out, RenderClaims(hard.CheckHardClaims()))
		csv += hard.CSV()
	}
	if easy != nil && hard != nil {
		fmt.Fprintln(out, "Cross-figure claim:")
		fmt.Fprintln(out, RenderClaims(core.CheckCrossClaims(easy, hard)))
	}
	if len(pointErrs) > 0 {
		return csv, &core.PointErrors{Count: failed, Err: errors.Join(pointErrs...)}
	}
	return csv, nil
}

// sweepLine renders a study's wall-clock summary with sweep throughput, so
// points/sec is visible on every figures/studyctl run, not just in
// microbenchmark ledgers. (Wall-clock depends on the host; it never appears
// in tables or CSV.)
func sweepLine(st *core.Study) string {
	n := st.NumPoints()
	if secs := st.Elapsed.Seconds(); secs > 0 && n > 0 {
		return fmt.Sprintf("(swept %d points in %v wall-clock, %.1f points/s)", n, st.Elapsed, float64(n)/secs)
	}
	return fmt.Sprintf("(swept %d points in %v wall-clock)", n, st.Elapsed)
}

// WriteCSV dumps a RunFigures CSV accumulation to path (a no-op when path
// is empty), reporting the write on out — the tail both CLIs share.
func WriteCSV(path, csv string, out io.Writer) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "raw series written to %s\n", path)
	return nil
}

// Render formats a study as the paper renders a figure: a read panel (a)
// and a write panel (b).
func Render(title string, st *core.Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", title)
	b.WriteString("(a) Read\n")
	b.WriteString(st.Table(false))
	b.WriteString("(b) Write\n")
	b.WriteString(st.Table(true))
	return b.String()
}

// RenderClaims formats claim check results.
func RenderClaims(claims []core.Claim) string {
	var b strings.Builder
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s", status, c.Name)
		if c.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", c.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AblationObjectClass sweeps every sharding class at a fixed node count
// (ablation A1: the shard fan-out trade-off behind the S2/SX crossover).
func AblationObjectClass(o Options) (*core.Study, error) {
	nodes := nodesFor(o.Scale)
	peak := nodes[len(nodes)-1]
	return o.runner().Run(core.Config{
		Workload: "easy",
		Nodes:    []int{peak},
		Variants: []core.Variant{
			{Label: "S1", API: ior.APIDFS, Class: placement.S1},
			{Label: "S2", API: ior.APIDFS, Class: placement.S2},
			{Label: "S4", API: ior.APIDFS, Class: placement.S4},
			{Label: "S8", API: ior.APIDFS, Class: placement.S8},
			{Label: "SX", API: ior.APIDFS, Class: placement.SX},
		},
		Seed: o.Seed,
	})
}

// AblationTransferSize sweeps the IOR transfer size at a fixed shape
// (ablation A2). Each size is an independent single-point study; the whole
// batch shares one worker pool.
func AblationTransferSize(o Options) ([]TransferPoint, error) {
	sizes := []int64{256 << 10, 1 << 20, 2 << 20, 4 << 20}
	if o.Scale == Quick {
		sizes = []int64{512 << 10, 2 << 20}
	}
	peak := nodesFor(o.Scale)[len(nodesFor(o.Scale))-1]
	cfgs := make([]core.Config, len(sizes))
	for i, ts := range sizes {
		cfgs[i] = core.Config{
			Workload:     "easy",
			Nodes:        []int{peak},
			TransferSize: ts,
			Variants: []core.Variant{
				{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
			},
			Seed: o.Seed,
		}
	}
	studies, err := o.runner().RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]TransferPoint, len(sizes))
	for i, st := range studies {
		pt := st.Series[0].Points[0]
		out[i] = TransferPoint{Transfer: sizes[i], WriteGiBs: pt.WriteGiBs, ReadGiBs: pt.ReadGiBs}
	}
	return out, nil
}

// TransferPoint is one transfer-size ablation measurement.
type TransferPoint struct {
	Transfer  int64
	WriteGiBs float64
	ReadGiBs  float64
}

// AblationFuseOverhead compares DFS-direct with POSIX-over-DFuse at one
// shape (ablation A3: the DFuse data-path decomposition).
func AblationFuseOverhead(o Options) (*core.Study, error) {
	return o.runner().Run(core.Config{
		Workload: "easy",
		Nodes:    nodesFor(o.Scale),
		Variants: []core.Variant{
			{Label: "dfs direct", API: ior.APIDFS, Class: placement.S2},
			{Label: "posix dfuse", API: ior.APIPosix, Class: placement.S2},
		},
		Seed: o.Seed,
	})
}

// AblationCollective compares independent and collective MPI-I/O on the
// shared-file workload (the design choice ROMIO's two-phase path embodies).
func AblationCollective(o Options) (*core.Study, error) {
	return o.runner().Run(core.Config{
		Workload: "hard",
		Nodes:    nodesFor(o.Scale),
		Variants: []core.Variant{
			{Label: "independent", API: ior.APIMPIIO, Class: placement.SX},
			{Label: "collective", API: ior.APIMPIIO, Class: placement.SX, Collective: true},
		},
		Seed: o.Seed,
	})
}

// FutureNativeArray measures the paper's §V future work: driving IOR-like
// traffic through the native DAOS array API (no DFS namespace at all),
// compared with the DFS backend. It returns (native, dfs) bandwidth pairs
// per node count. The native points run on the Options worker pool while the
// DFS comparison sweep runs through the core Runner.
func FutureNativeArray(o Options) ([]NativePoint, error) {
	nodes := nodesFor(o.Scale)
	out := make([]NativePoint, len(nodes))

	// Native points are independent simulations, not Config grids: they
	// always fan out on the local pool (a study server cannot run them).
	// The DFS comparison sweep runs after this phase so the two never
	// exceed the Parallelism bound combined.
	err := o.local().Map(len(nodes), func(i int) error {
		var e error
		out[i], e = runNativeArray(nodes[i], 8, 16<<20, 2<<20, o.Seed)
		return e
	})
	if err != nil {
		return nil, err
	}

	st, err := o.runner().Run(core.Config{
		Workload: "easy",
		Nodes:    nodes,
		Variants: []core.Variant{{Label: "dfs", API: ior.APIDFS, Class: placement.S2}},
		Seed:     o.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range st.Series[0].Points {
		out[i].DFSWriteGiBs = pt.WriteGiBs
		out[i].DFSReadGiBs = pt.ReadGiBs
	}
	return out, nil
}

// NativePoint is one future-work comparison measurement.
type NativePoint struct {
	Nodes           int
	NativeWriteGiBs float64
	NativeReadGiBs  float64
	DFSWriteGiBs    float64
	DFSReadGiBs     float64
}

// runNativeArray writes/reads per-rank arrays through the raw object API.
func runNativeArray(nodes, ppn int, block, transfer int64, seed uint64) (NativePoint, error) {
	tbCfg := cluster.NEXTGenIO()
	if seed != 0 {
		tbCfg.Seed = seed
	}
	tb := cluster.New(tbCfg)
	defer tb.Shutdown()
	pt := NativePoint{Nodes: nodes}
	var runErr error
	tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, nodes, ppn)
		if err != nil {
			runErr = err
			return
		}
		w, r, err := ior.RunNativeArray(p, env, block, transfer, placement.S2)
		if err != nil {
			runErr = err
			return
		}
		pt.NativeWriteGiBs, pt.NativeReadGiBs = w, r
	})
	return pt, runErr
}
