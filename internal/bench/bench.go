// Package bench regenerates every figure in the paper's evaluation section
// plus the ablations DESIGN.md calls out, on top of the core study API.
// Each experiment has a canned configuration (scaled to simulator-friendly
// sizes while preserving the paper's geometry ratios) and renderers for
// text tables and CSV.
package bench

import (
	"fmt"
	"strings"

	"daosim/internal/cluster"
	"daosim/internal/core"
	"daosim/internal/ior"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// Scale picks the sweep size: Full reproduces the paper's node axis;
// Quick is a reduced sweep for CI and testing.B runs.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

func nodesFor(s Scale) []int {
	if s == Full {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 4}
}

// Figure1 runs the easy (file-per-process) study behind the paper's Fig. 1.
func Figure1(scale Scale) (*core.Study, error) {
	return core.Run(core.Config{
		Workload: "easy",
		Nodes:    nodesFor(scale),
		Variants: core.EasyVariants(),
	})
}

// Figure2 runs the hard (shared-file) study behind the paper's Fig. 2.
func Figure2(scale Scale) (*core.Study, error) {
	return core.Run(core.Config{
		Workload: "hard",
		Nodes:    nodesFor(scale),
		Variants: core.HardVariants(),
	})
}

// Render formats a study as the paper renders a figure: a read panel (a)
// and a write panel (b).
func Render(title string, st *core.Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", title)
	b.WriteString("(a) Read\n")
	b.WriteString(st.Table(false))
	b.WriteString("(b) Write\n")
	b.WriteString(st.Table(true))
	return b.String()
}

// RenderClaims formats claim check results.
func RenderClaims(claims []core.Claim) string {
	var b strings.Builder
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s", status, c.Name)
		if c.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", c.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AblationObjectClass sweeps every sharding class at a fixed node count
// (ablation A1: the shard fan-out trade-off behind the S2/SX crossover).
func AblationObjectClass(scale Scale) (*core.Study, error) {
	nodes := nodesFor(scale)
	peak := nodes[len(nodes)-1]
	return core.Run(core.Config{
		Workload: "easy",
		Nodes:    []int{peak},
		Variants: []core.Variant{
			{Label: "S1", API: ior.APIDFS, Class: placement.S1},
			{Label: "S2", API: ior.APIDFS, Class: placement.S2},
			{Label: "S4", API: ior.APIDFS, Class: placement.S4},
			{Label: "S8", API: ior.APIDFS, Class: placement.S8},
			{Label: "SX", API: ior.APIDFS, Class: placement.SX},
		},
	})
}

// AblationTransferSize sweeps the IOR transfer size at a fixed shape
// (ablation A2).
func AblationTransferSize(scale Scale) ([]TransferPoint, error) {
	sizes := []int64{256 << 10, 1 << 20, 2 << 20, 4 << 20}
	if scale == Quick {
		sizes = []int64{512 << 10, 2 << 20}
	}
	var out []TransferPoint
	for _, ts := range sizes {
		st, err := core.Run(core.Config{
			Workload:     "easy",
			Nodes:        []int{nodesFor(scale)[len(nodesFor(scale))-1]},
			TransferSize: ts,
			Variants: []core.Variant{
				{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
			},
		})
		if err != nil {
			return nil, err
		}
		pt := st.Series[0].Points[0]
		out = append(out, TransferPoint{Transfer: ts, WriteGiBs: pt.WriteGiBs, ReadGiBs: pt.ReadGiBs})
	}
	return out, nil
}

// TransferPoint is one transfer-size ablation measurement.
type TransferPoint struct {
	Transfer  int64
	WriteGiBs float64
	ReadGiBs  float64
}

// AblationFuseOverhead compares DFS-direct with POSIX-over-DFuse at one
// shape (ablation A3: the DFuse data-path decomposition).
func AblationFuseOverhead(scale Scale) (*core.Study, error) {
	return core.Run(core.Config{
		Workload: "easy",
		Nodes:    nodesFor(scale),
		Variants: []core.Variant{
			{Label: "dfs direct", API: ior.APIDFS, Class: placement.S2},
			{Label: "posix dfuse", API: ior.APIPosix, Class: placement.S2},
		},
	})
}

// AblationCollective compares independent and collective MPI-I/O on the
// shared-file workload (the design choice ROMIO's two-phase path embodies).
func AblationCollective(scale Scale) (*core.Study, error) {
	return core.Run(core.Config{
		Workload: "hard",
		Nodes:    nodesFor(scale),
		Variants: []core.Variant{
			{Label: "independent", API: ior.APIMPIIO, Class: placement.SX},
			{Label: "collective", API: ior.APIMPIIO, Class: placement.SX, Collective: true},
		},
	})
}

// FutureNativeArray measures the paper's §V future work: driving IOR-like
// traffic through the native DAOS array API (no DFS namespace at all),
// compared with the DFS backend. It returns (native, dfs) bandwidth pairs
// per node count.
func FutureNativeArray(scale Scale) ([]NativePoint, error) {
	var out []NativePoint
	for _, nodes := range nodesFor(scale) {
		native, err := runNativeArray(nodes, 8, 16<<20, 2<<20)
		if err != nil {
			return nil, err
		}
		st, err := core.Run(core.Config{
			Workload: "easy",
			Nodes:    []int{nodes},
			Variants: []core.Variant{{Label: "dfs", API: ior.APIDFS, Class: placement.S2}},
		})
		if err != nil {
			return nil, err
		}
		pt := st.Series[0].Points[0]
		native.DFSWriteGiBs = pt.WriteGiBs
		native.DFSReadGiBs = pt.ReadGiBs
		out = append(out, native)
	}
	return out, nil
}

// NativePoint is one future-work comparison measurement.
type NativePoint struct {
	Nodes           int
	NativeWriteGiBs float64
	NativeReadGiBs  float64
	DFSWriteGiBs    float64
	DFSReadGiBs     float64
}

// runNativeArray writes/reads per-rank arrays through the raw object API.
func runNativeArray(nodes, ppn int, block, transfer int64) (NativePoint, error) {
	tb := cluster.New(cluster.NEXTGenIO())
	defer tb.Shutdown()
	pt := NativePoint{Nodes: nodes}
	var runErr error
	tb.Run(func(p *sim.Proc) {
		env, err := ior.NewEnv(p, tb, nodes, ppn)
		if err != nil {
			runErr = err
			return
		}
		w, r, err := ior.RunNativeArray(p, env, block, transfer, placement.S2)
		if err != nil {
			runErr = err
			return
		}
		pt.NativeWriteGiBs, pt.NativeReadGiBs = w, r
	})
	return pt, runErr
}
