package bench

import (
	"fmt"
	"strings"
	"testing"

	"daosim/internal/cache"
)

// The determinism harness pins the contract that makes the point cache safe
// at all: every canned experiment's full rendered output (tables + CSV
// where the experiment is a Study) must be byte-identical between a cold
// run and warm-cache reruns, sequential and parallel alike. Caching is only
// safe if this is tested, not assumed — a key that misses an
// output-affecting field would fail here by serving a stale point.

// experiments lists every internal/bench experiment with a renderer that
// captures its complete output.
var experiments = []struct {
	name string
	run  func(Options) (string, error)
}{
	{"Figure1", func(o Options) (string, error) {
		st, err := Figure1(o)
		if err != nil {
			return "", err
		}
		return Render("Figure 1", st) + st.CSV(), nil
	}},
	{"Figure2", func(o Options) (string, error) {
		st, err := Figure2(o)
		if err != nil {
			return "", err
		}
		return Render("Figure 2", st) + st.CSV(), nil
	}},
	{"AblationObjectClass", func(o Options) (string, error) {
		st, err := AblationObjectClass(o)
		if err != nil {
			return "", err
		}
		return Render("A1", st) + st.CSV(), nil
	}},
	{"AblationTransferSize", func(o Options) (string, error) {
		pts, err := AblationTransferSize(o)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%+v", pts), nil
	}},
	{"AblationFuseOverhead", func(o Options) (string, error) {
		st, err := AblationFuseOverhead(o)
		if err != nil {
			return "", err
		}
		return Render("A3", st) + st.CSV(), nil
	}},
	{"AblationCollective", func(o Options) (string, error) {
		st, err := AblationCollective(o)
		if err != nil {
			return "", err
		}
		return Render("A4", st) + st.CSV(), nil
	}},
	{"FutureNativeArray", func(o Options) (string, error) {
		pts, err := FutureNativeArray(o)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%+v", pts), nil
	}},
	{"FaultGrid", func(o Options) (string, error) {
		fss, err := FaultGrid(o)
		if err != nil {
			return "", err
		}
		return RenderFaultGrid(fss) + FaultCSV(fss), nil
	}},
}

// TestWarmCacheDeterminism runs every experiment cold, then three more
// times against one shared cache — a parallel populating pass followed by
// warm passes at -parallel 1 and -parallel 4 — and requires byte-identical
// output each time. It also checks the ledger: every store was a miss, and
// the two warm passes served every grid point from the cache.
// In -short mode (the 1-core CI race job) only the cheapest experiment
// runs: the full 7-experiment matrix re-simulates every figure and
// ablation twice, which blows the default go-test timeout under the ~15x
// race-detector slowdown on a single core. The full matrix still runs in
// every plain `go test ./...` (tier-1).
func TestWarmCacheDeterminism(t *testing.T) {
	matrix := experiments
	if testing.Short() {
		matrix = matrix[3:4] // AblationTransferSize: two single-point studies
		if matrix[0].name != "AblationTransferSize" {
			t.Fatalf("short-mode experiment pick drifted: %s", matrix[0].name)
		}
	}
	for _, ex := range matrix {
		t.Run(ex.name, func(t *testing.T) {
			cold, err := ex.run(Options{Scale: Quick, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			c, err := cache.New(cache.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, pass := range []struct {
				label    string
				parallel int
			}{
				{"populate/parallel=4", 4},
				{"warm/parallel=1", 1},
				{"warm/parallel=4", 4},
			} {
				got, err := ex.run(Options{Scale: Quick, Parallelism: pass.parallel, Cache: c})
				if err != nil {
					t.Fatalf("%s: %v", pass.label, err)
				}
				if got != cold {
					t.Fatalf("%s output diverged from cold run:\n--- cold ---\n%s\n--- %s ---\n%s",
						pass.label, cold, pass.label, got)
				}
			}
			st := c.Stats()
			if st.Stores == 0 {
				t.Fatal("experiment cached nothing")
			}
			// The populating pass misses exactly once per grid point; the
			// two warm passes replay each of those points twice. (Points
			// that bypass the runner grid — the native-array half of
			// FutureNativeArray — are re-simulated deterministically and
			// never touch the ledger.)
			if st.Misses != st.Stores {
				t.Fatalf("missed without storing (a failed point was cached?): %+v", st)
			}
			if st.Hits != 2*st.Stores {
				t.Fatalf("warm passes did not replay every grid point: %+v", st)
			}
		})
	}
}

// TestWarmCacheFigure1AllHits is the acceptance criterion in miniature: a
// warm-cache rerun of the Figure 1 sweep must skip all simulation (100% hit
// rate) and emit byte-identical CSV.
func TestWarmCacheFigure1AllHits(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure-1-sized determinism re-run; covered at full scale by the plain test job")
	}
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldSt, err := Figure1(Options{Scale: Quick, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	warmSt, err := Figure1(Options{Scale: Quick, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if warmSt.CSV() != coldSt.CSV() {
		t.Fatalf("warm CSV diverged:\n--- cold ---\n%s--- warm ---\n%s", coldSt.CSV(), warmSt.CSV())
	}
	after := c.Stats()
	points := int64(len(coldSt.Series) * len(coldSt.Config.Nodes))
	if after.Misses != before.Misses || after.Hits-before.Hits != points {
		t.Fatalf("warm rerun simulated: %d new misses, %d/%d hits",
			after.Misses-before.Misses, after.Hits-before.Hits, points)
	}
	// The warm pass alone is a 100%-hit window; its Stats snapshot must
	// report it that way (the marker cmd/figures prints and CI greps).
	warmOnly := cache.Stats{Hits: after.Hits - before.Hits, MemHits: after.MemHits - before.MemHits}
	if !strings.Contains(warmOnly.String(), "100.0% hits") {
		t.Fatalf("warm pass not reported as 100%% hits: %s", warmOnly)
	}
}

// TestFaultGridDiskTierWarmStart proves the degraded-mode outputs survive
// the disk tier: a fresh Cache over the same directory replays the fault
// grid — including DegradedGiBs, RecoverySec, and MapTransitions, which
// only exist in the v2 disk record — byte-identically from disk alone.
func TestFaultGridDiskTierWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-grid-sized determinism re-run; covered at full scale by the plain test job")
	}
	dir := t.TempDir()
	c1, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fss, err := FaultGrid(Options{Scale: Quick, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}
	cold := FaultCSV(fss)
	if !strings.Contains(cold, ",8\n") && !strings.Contains(cold, ",16\n") {
		t.Fatalf("cold fault grid shows no map transitions:\n%s", cold)
	}

	c2, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fss2, err := FaultGrid(Options{Scale: Quick, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if warm := FaultCSV(fss2); warm != cold {
		t.Fatalf("disk-tier warm start diverged:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	st := c2.Stats()
	if st.Misses != 0 || st.DiskHits != st.Hits || st.Hits == 0 {
		t.Fatalf("warm start did not come from disk: %+v", st)
	}
}

// TestDiskTierWarmStart proves persistence: a second process (modeled as a
// fresh Cache over the same directory) replays Figure 1 byte-identically
// from disk alone.
func TestDiskTierWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure-1-sized determinism re-run; covered at full scale by the plain test job")
	}
	dir := t.TempDir()
	c1, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Figure1(Options{Scale: Quick, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}

	c2, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Figure1(Options{Scale: Quick, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CSV() != cold.CSV() || warm.Table(true) != cold.Table(true) || warm.Table(false) != cold.Table(false) {
		t.Fatal("disk-tier warm start diverged from cold run")
	}
	st := c2.Stats()
	if st.Misses != 0 || st.DiskHits != st.Hits || st.Hits == 0 {
		t.Fatalf("warm start did not come from disk: %+v", st)
	}
}
