package bench

import (
	"strings"
	"testing"
)

// The bench tests exercise the canned experiment wiring at Quick scale so
// CI validates every figure/ablation path end to end. Full-scale sweeps run
// through cmd/figures.

// skipGridInShort guards experiments that simulate a whole figure-sized
// grid: under the race detector's ~15x slowdown on a 1-core runner the
// full set blows the default go-test timeout, so the -short race job runs
// one representative grid (Figure 2) plus the cheap ablations and leaves
// the rest to the plain test job.
func skipGridInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure-sized grid; covered by the plain (non -short) test job")
	}
}

func TestFigure1Quick(t *testing.T) {
	skipGridInShort(t)
	st, err := Figure1(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Series) != 5 {
		t.Fatalf("series = %d", len(st.Series))
	}
	out := Render("Figure 1", st)
	if !strings.Contains(out, "(a) Read") || !strings.Contains(out, "(b) Write") {
		t.Fatalf("render missing panels:\n%s", out)
	}
}

func TestFigure2Quick(t *testing.T) {
	st, err := Figure2(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Series) != 3 {
		t.Fatalf("series = %d", len(st.Series))
	}
	claims := st.CheckHardClaims()
	out := RenderClaims(claims)
	if !strings.Contains(out, "fig2:") {
		t.Fatalf("claims render:\n%s", out)
	}
}

// TestFaultGridQuick runs the fault experiment end to end and checks the
// degraded-mode outputs are real: every point saw its pool map transition
// (the plan always fires inside the measured window), at least one point
// measured nonzero degraded bandwidth, and every point has a positive
// recovery time.
func TestFaultGridQuick(t *testing.T) {
	skipGridInShort(t)
	fss, err := FaultGrid(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(fss) != len(FaultCases()) {
		t.Fatalf("cases = %d, want %d", len(fss), len(FaultCases()))
	}
	sawDegraded := false
	for _, fs := range fss {
		if fs.Study == nil {
			t.Fatalf("case %s: no study", fs.Case.Label)
		}
		for _, s := range fs.Study.Series {
			for _, pt := range s.Points {
				if pt.MapTransitions == 0 {
					t.Errorf("case %s %s nodes=%d: fault never fired in the window", fs.Case.Label, s.Variant.Label, pt.Nodes)
				}
				if pt.RecoverySec <= 0 {
					t.Errorf("case %s %s nodes=%d: recovery = %v", fs.Case.Label, s.Variant.Label, pt.Nodes, pt.RecoverySec)
				}
				if pt.DegradedGiBs > 0 {
					sawDegraded = true
				}
				if pt.WriteGiBs <= 0 || pt.ReadGiBs <= 0 {
					t.Errorf("case %s %s nodes=%d: workload did not survive: %+v", fs.Case.Label, s.Variant.Label, pt.Nodes, pt)
				}
			}
		}
	}
	if !sawDegraded {
		t.Error("no point measured nonzero degraded bandwidth")
	}
	csv := FaultCSV(fss)
	if !strings.HasPrefix(csv, "workload,series,case,kill_at_ms,") {
		t.Fatalf("fault CSV header:\n%s", csv)
	}
	out := RenderFaultGrid(fss)
	if !strings.Contains(out, "kill engine 3") {
		t.Fatalf("fault render:\n%s", out)
	}
}

func TestAblationObjectClassQuick(t *testing.T) {
	skipGridInShort(t)
	st, err := AblationObjectClass(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Series) != 5 {
		t.Fatalf("classes = %d", len(st.Series))
	}
	// Every class must produce positive bandwidth at the peak point.
	for _, s := range st.Series {
		if s.Points[0].WriteGiBs <= 0 {
			t.Fatalf("class %s produced no bandwidth", s.Variant.Label)
		}
	}
}

func TestAblationTransferSizeQuick(t *testing.T) {
	pts, err := AblationTransferSize(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger transfers amortize per-op costs: bandwidth must not collapse.
	if pts[1].WriteGiBs <= pts[0].WriteGiBs*0.5 {
		t.Fatalf("larger transfer slower: %+v", pts)
	}
}

func TestAblationFuseOverheadQuick(t *testing.T) {
	skipGridInShort(t)
	st, err := AblationFuseOverhead(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	dfs := st.Series[0]
	posix := st.Series[1]
	for i := range dfs.Points {
		if posix.Points[i].WriteGiBs > dfs.Points[i].WriteGiBs*1.15 {
			t.Fatalf("posix-over-dfuse beats dfs direct at %d nodes", dfs.Points[i].Nodes)
		}
	}
}

func TestAblationCollectiveQuick(t *testing.T) {
	skipGridInShort(t)
	st, err := AblationCollective(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Series) != 2 {
		t.Fatalf("series = %d", len(st.Series))
	}
	for _, s := range st.Series {
		for _, pt := range s.Points {
			if pt.WriteGiBs <= 0 || pt.ReadGiBs <= 0 {
				t.Fatalf("%s produced no bandwidth", s.Variant.Label)
			}
		}
	}
}

func TestFutureNativeArrayQuick(t *testing.T) {
	skipGridInShort(t)
	pts, err := FutureNativeArray(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.NativeWriteGiBs <= 0 || pt.DFSWriteGiBs <= 0 {
			t.Fatalf("missing bandwidth: %+v", pt)
		}
		// The native array path skips the DFS namespace; it must not be
		// slower than DFS by more than a whisker.
		if pt.NativeWriteGiBs < pt.DFSWriteGiBs*0.8 {
			t.Fatalf("native array much slower than DFS: %+v", pt)
		}
	}
}

func TestNodesForScales(t *testing.T) {
	if len(nodesFor(Full)) != 5 || len(nodesFor(Quick)) != 2 {
		t.Fatal("scale sweeps wrong")
	}
}
