package bench

import (
	"fmt"
	"strings"
	"time"

	"daosim/internal/cluster"
	"daosim/internal/core"
	"daosim/internal/ior"
	"daosim/internal/placement"
)

// faultEngine is the engine every canned fault case kills. The bench
// experiments run on the default NEXTGenIO testbed (16 engines), so engine
// 3 — mid-pack on server node 1 — is always in range.
const faultEngine = 3

// FaultCase is one cell of the fault grid's fault axis: when the engine
// dies, whether and when it comes back, and how hard the survivors rebuild.
// The times are virtual instants relative to the workload start; the bench
// workload body spends ~25ms creating the pool and namespace and then
// sustains I/O from there to 250ms (1 node) or well past it (more nodes),
// so every canned case lands inside the measured window at every node
// count.
type FaultCase struct {
	// Label names the case in tables and CSV.
	Label string
	// KillAt is when faultEngine dies.
	KillAt time.Duration
	// RestartAt, when nonzero, is when faultEngine comes back.
	RestartAt time.Duration
	// RateGiBs is the per-survivor rebuild pacing (0 = no rebuild traffic).
	RateGiBs float64
}

// FaultCases returns the canned fault grid: the kill-at axis crossed with
// the restart and rebuild-rate axes, kept small enough that the grid times
// a CI run but wide enough that every mechanism (open window, rebuild
// contention, restart re-integration) appears. Kill times sit early in the
// body because the workload's span is placement-dependent: a skewed seed
// can finish a small grid point within ~40ms, so only early kills land
// inside the measured window at every (variant, nodes, seed) cell.
func FaultCases() []FaultCase {
	return []FaultCase{
		{Label: "kill10", KillAt: 10 * time.Millisecond},
		{Label: "kill10-rebuild4", KillAt: 10 * time.Millisecond, RateGiBs: 4},
		{Label: "kill10-restart30", KillAt: 10 * time.Millisecond, RestartAt: 30 * time.Millisecond},
		{Label: "kill20-restart35-rebuild4", KillAt: 20 * time.Millisecond, RestartAt: 35 * time.Millisecond, RateGiBs: 4},
	}
}

// plan expands the case into the core.Config fault fields.
func (fc FaultCase) plan() ([]cluster.FaultEvent, cluster.RebuildConfig) {
	events := []cluster.FaultEvent{
		{At: fc.KillAt, Kind: cluster.KillEngine, Engine: faultEngine},
	}
	if fc.RestartAt > 0 {
		events = append(events, cluster.FaultEvent{At: fc.RestartAt, Kind: cluster.RestartEngine, Engine: faultEngine})
	}
	return events, cluster.RebuildConfig{RateGiBs: fc.RateGiBs}
}

// FaultStudy pairs a fault case with its executed study grid.
type FaultStudy struct {
	Case  FaultCase
	Study *core.Study
}

// FaultGrid runs the fault experiment: every canned FaultCase as its own
// study over the variant (S2, SX) and node axes, all through the Options
// runner as one batch, so points fan out together and memoize individually
// (fault-plan points key into their own cache address space — see
// internal/core's key builder).
func FaultGrid(o Options) ([]FaultStudy, error) {
	cases := FaultCases()
	cfgs := make([]core.Config, len(cases))
	for i, fc := range cases {
		plan, rb := fc.plan()
		cfgs[i] = core.Config{
			Workload: "easy",
			Nodes:    nodesFor(o.Scale),
			Variants: []core.Variant{
				{Label: "daos S2", API: ior.APIDFS, Class: placement.S2},
				{Label: "daos SX", API: ior.APIDFS, Class: placement.SX},
			},
			Seed:      o.Seed,
			FaultPlan: plan,
			Rebuild:   rb,
		}
	}
	studies, err := o.runner().RunAll(cfgs)
	out := make([]FaultStudy, len(cases))
	for i := range cases {
		var st *core.Study
		if i < len(studies) {
			st = studies[i]
		}
		out[i] = FaultStudy{Case: cases[i], Study: st}
	}
	return out, err
}

// RenderFaultGrid formats the fault grid: one block per case with the
// degraded-window bandwidth, recovery time, and pool-map transition count
// per variant and node count, alongside the headline bandwidths.
func RenderFaultGrid(fss []FaultStudy) string {
	var b strings.Builder
	for _, fs := range fss {
		fc := fs.Case
		fmt.Fprintf(&b, "--- fault %s: kill engine %d @%v", fc.Label, faultEngine, fc.KillAt)
		if fc.RestartAt > 0 {
			fmt.Fprintf(&b, ", restart @%v", fc.RestartAt)
		}
		if fc.RateGiBs > 0 {
			fmt.Fprintf(&b, ", rebuild %.0f GiB/s/survivor", fc.RateGiBs)
		}
		b.WriteString(" ---\n")
		if fs.Study == nil {
			b.WriteString("  (no results)\n")
			continue
		}
		for _, s := range fs.Study.Series {
			for _, pt := range s.Points {
				fmt.Fprintf(&b, "  %-8s nodes=%2d  write %6.2f  read %6.2f  degraded %6.2f GiB/s  recovery %7.1f ms  map +%d\n",
					s.Variant.Label, pt.Nodes, pt.WriteGiBs, pt.ReadGiBs, pt.DegradedGiBs, pt.RecoverySec*1e3, pt.MapTransitions)
			}
		}
	}
	return b.String()
}

// FaultCSV renders the grid as CSV, one row per point, with the fault axes
// as leading columns so the file is self-describing.
func FaultCSV(fss []FaultStudy) string {
	var b strings.Builder
	b.WriteString("workload,series,case,kill_at_ms,restart_at_ms,rebuild_gibs,nodes,ranks,write_gibs,read_gibs,degraded_gibs,recovery_s,map_transitions\n")
	for _, fs := range fss {
		if fs.Study == nil {
			continue
		}
		fc := fs.Case
		for _, s := range fs.Study.Series {
			for _, pt := range s.Points {
				fmt.Fprintf(&b, "%s,%s,%s,%g,%g,%g,%d,%d,%.6f,%.6f,%.6f,%.6f,%d\n",
					fs.Study.Config.Workload, s.Variant.Label, fc.Label,
					float64(fc.KillAt)/float64(time.Millisecond),
					float64(fc.RestartAt)/float64(time.Millisecond),
					fc.RateGiBs,
					pt.Nodes, pt.Ranks,
					pt.WriteGiBs, pt.ReadGiBs,
					pt.DegradedGiBs, pt.RecoverySec, pt.MapTransitions)
			}
		}
	}
	return b.String()
}
