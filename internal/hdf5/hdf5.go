// Package hdf5 implements a miniature HDF5-style array file format over a
// virtual file driver (VFD), reproducing the I/O behaviour that matters for
// the paper's HDF5-over-DFuse results rather than wire compatibility:
//
//   - A 512-byte superblock at offset 0 and a 256-byte object header per
//     dataset, written synchronously at creation: small metadata I/O
//     interleaved with data.
//   - Contiguous dataset data starts right after its header — *unaligned*
//     with any underlying chunk/stripe boundary (HDF5's default, no
//     H5Pset_alignment). Every large write through DFS therefore straddles
//     two 1 MiB chunks and costs an extra RPC; through DFuse it also splits
//     across FUSE requests.
//   - Chunked datasets keep an index (array-of-entries blocks in the style
//     of the v1 B-tree) that is flushed on close and read back at open.
//   - Each dataset call charges library CPU (type/hyperslab bookkeeping).
//
// The VFD interface matches package mpiio's File and a DFuse-backed POSIX
// adapter, mirroring H5FD_mpio and H5FD_sec2.
package hdf5

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"daosim/internal/dfuse"
	"daosim/internal/sim"
)

// VFD is the virtual file driver under an HDF5 file. ReadAtInto is the
// zero-copy read: it fills dst (len(dst) == n) in place, or — with a nil
// dst — simulates the read with identical timing while materializing
// nothing.
type VFD interface {
	WriteAt(p *sim.Proc, off int64, data []byte) error
	ReadAt(p *sim.Proc, off int64, n int64) ([]byte, error)
	ReadAtInto(p *sim.Proc, off int64, n int64, dst []byte) error
	Size(p *sim.Proc) (int64, error)
	Sync(p *sim.Proc) error
	Close(p *sim.Proc) error
}

// posixVFD adapts a DFuse file descriptor (H5FD_sec2 over the mount).
type posixVFD struct{ fd *dfuse.File }

// NewPosixVFD wraps a DFuse file as a VFD.
func NewPosixVFD(fd *dfuse.File) VFD { return &posixVFD{fd: fd} }

func (v *posixVFD) WriteAt(p *sim.Proc, off int64, data []byte) error {
	_, err := v.fd.Pwrite(p, off, data)
	return err
}
func (v *posixVFD) ReadAt(p *sim.Proc, off int64, n int64) ([]byte, error) {
	return v.fd.Pread(p, off, n)
}
func (v *posixVFD) ReadAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return v.fd.PreadInto(p, off, n, dst)
}
func (v *posixVFD) Size(p *sim.Proc) (int64, error) { return v.fd.Size(p) }
func (v *posixVFD) Sync(p *sim.Proc) error          { return v.fd.Fsync(p) }
func (v *posixVFD) Close(p *sim.Proc) error         { return v.fd.Close(p) }

// Format constants.
const (
	superblockSize = 512
	headerSize     = 256
	magic          = 0x894D4844870A0D0A // "\x89MHD\x87\n\r\n"-ish
	version        = 1
	indexBlockCap  = 64 // chunk index entries per block
)

// Layout classes.
const (
	layoutContiguous = 1
	layoutChunked    = 2
)

// Errors.
var (
	ErrNotHDF5        = errors.New("hdf5: not an HDF5 file")
	ErrDatasetExists  = errors.New("hdf5: dataset exists")
	ErrDatasetMissing = errors.New("hdf5: no such dataset")
	ErrOutOfBounds    = errors.New("hdf5: access beyond dataset extent")
)

// Costs parameterize library CPU charges.
type Costs struct {
	// LibOp is the per-call CPU charge (hyperslab/type bookkeeping).
	LibOp time.Duration
}

// DefaultCosts models the HDF5 library software path.
func DefaultCosts() Costs { return Costs{LibOp: 10 * time.Microsecond} }

// File is an open HDF5 file.
type File struct {
	vfd      VFD
	costs    Costs
	eof      int64
	datasets map[string]*Dataset
	order    []string
	writable bool
	dirty    bool
	// sieve stages partial contiguous-dataset I/O (see sieve.go); nil when
	// disabled.
	sieve *sieve
}

// Dataset is one named array in the file.
type Dataset struct {
	file      *File
	Name      string
	Extent    int64 // bytes
	Layout    int
	headerOff int64
	dataOff   int64 // contiguous only
	chunkSize int64 // chunked only
	chunks    map[int64]chunkEntry
}

type chunkEntry struct {
	fileOff int64
	size    int64
}

// Create initializes a fresh HDF5 file on the VFD, writing the superblock
// immediately (a small synchronous metadata write at offset 0).
func Create(p *sim.Proc, vfd VFD, costs Costs) (*File, error) {
	f := &File{
		vfd:      vfd,
		costs:    costs,
		eof:      superblockSize,
		datasets: make(map[string]*Dataset),
		writable: true,
		dirty:    true,
	}
	f.SetSieve(DefaultSieveSize)
	p.Sleep(costs.LibOp)
	if err := vfd.WriteAt(p, 0, f.encodeSuperblock(0, 0)); err != nil {
		return nil, fmt.Errorf("hdf5: create: %w", err)
	}
	return f, nil
}

// Open reads an existing HDF5 file's superblock, object index, and dataset
// headers (several small reads — the open cost the paper's HDF5 runs pay on
// every rank).
func Open(p *sim.Proc, vfd VFD, costs Costs) (*File, error) {
	p.Sleep(costs.LibOp)
	sb, err := vfd.ReadAt(p, 0, superblockSize)
	if err != nil {
		return nil, fmt.Errorf("hdf5: open: %w", err)
	}
	if binary.LittleEndian.Uint64(sb[0:8]) != magic {
		return nil, ErrNotHDF5
	}
	f := &File{vfd: vfd, costs: costs, datasets: make(map[string]*Dataset), writable: true}
	f.SetSieve(DefaultSieveSize)
	f.eof = int64(binary.LittleEndian.Uint64(sb[12:20]))
	indexOff := int64(binary.LittleEndian.Uint64(sb[20:28]))
	count := int(binary.LittleEndian.Uint32(sb[28:32]))
	if count > 0 {
		if err := f.readIndex(p, indexOff, count); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (f *File) encodeSuperblock(indexOff int64, count int) []byte {
	sb := make([]byte, superblockSize)
	binary.LittleEndian.PutUint64(sb[0:8], magic)
	binary.LittleEndian.PutUint32(sb[8:12], version)
	binary.LittleEndian.PutUint64(sb[12:20], uint64(f.eof))
	binary.LittleEndian.PutUint64(sb[20:28], uint64(indexOff))
	binary.LittleEndian.PutUint32(sb[28:32], uint32(count))
	return sb
}

// alloc reserves n bytes at EOF.
func (f *File) alloc(n int64) int64 {
	off := f.eof
	f.eof += n
	return off
}

// CreateDataset adds a dataset of extent bytes. chunkSize > 0 selects the
// chunked layout; otherwise data is contiguous, allocated immediately after
// the header (unaligned by design, as stock HDF5 lays files out).
func (f *File) CreateDataset(p *sim.Proc, name string, extent int64, chunkSize int64) (*Dataset, error) {
	if _, dup := f.datasets[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDatasetExists, name)
	}
	if extent <= 0 {
		return nil, fmt.Errorf("hdf5: dataset %s: extent must be positive", name)
	}
	ds := &Dataset{file: f, Name: name, Extent: extent}
	ds.headerOff = f.alloc(headerSize)
	if chunkSize > 0 {
		ds.Layout = layoutChunked
		ds.chunkSize = chunkSize
		ds.chunks = make(map[int64]chunkEntry)
	} else {
		ds.Layout = layoutContiguous
		ds.dataOff = f.alloc(extent)
	}
	f.datasets[name] = ds
	f.order = append(f.order, name)
	f.dirty = true
	p.Sleep(f.costs.LibOp)
	// The object header is written synchronously at creation: a small
	// metadata write in the middle of the data stream.
	if err := f.vfd.WriteAt(p, ds.headerOff, ds.encodeHeader()); err != nil {
		return nil, fmt.Errorf("hdf5: dataset %s: %w", name, err)
	}
	return ds, nil
}

// OpenDataset looks up an existing dataset.
func (f *File) OpenDataset(p *sim.Proc, name string) (*Dataset, error) {
	p.Sleep(f.costs.LibOp)
	ds, ok := f.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrDatasetMissing, name)
	}
	return ds, nil
}

// Datasets returns dataset names in creation order.
func (f *File) Datasets() []string { return append([]string(nil), f.order...) }

func (ds *Dataset) encodeHeader() []byte {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(h[0:8], magic)
	h[8] = byte(ds.Layout)
	binary.LittleEndian.PutUint64(h[9:17], uint64(ds.Extent))
	binary.LittleEndian.PutUint64(h[17:25], uint64(ds.dataOff))
	binary.LittleEndian.PutUint64(h[25:33], uint64(ds.chunkSize))
	n := copy(h[34:], ds.Name)
	h[33] = byte(n)
	return h
}

func decodeHeader(h []byte) *Dataset {
	ds := &Dataset{}
	ds.Layout = int(h[8])
	ds.Extent = int64(binary.LittleEndian.Uint64(h[9:17]))
	ds.dataOff = int64(binary.LittleEndian.Uint64(h[17:25]))
	ds.chunkSize = int64(binary.LittleEndian.Uint64(h[25:33]))
	ds.Name = string(h[34 : 34+int(h[33])])
	if ds.Layout == layoutChunked {
		ds.chunks = make(map[int64]chunkEntry)
	}
	return ds
}

// Write stores data at a byte offset within the dataset.
func (ds *Dataset) Write(p *sim.Proc, off int64, data []byte) error {
	if !ds.file.writable {
		return errors.New("hdf5: file not writable")
	}
	if off < 0 || off+int64(len(data)) > ds.Extent {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, off, off+int64(len(data)), ds.Extent)
	}
	p.Sleep(ds.file.costs.LibOp)
	if ds.Layout == layoutContiguous {
		if ds.file.sieve != nil {
			return ds.file.sieveWrite(p, ds.dataOff+off, data)
		}
		return ds.file.vfd.WriteAt(p, ds.dataOff+off, data)
	}
	// Chunked: split across chunks, allocating at EOF on first touch.
	for len(data) > 0 {
		ci := off / ds.chunkSize
		inOff := off % ds.chunkSize
		n := ds.chunkSize - inOff
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		ent, ok := ds.chunks[ci]
		if !ok {
			ent = chunkEntry{fileOff: ds.file.alloc(ds.chunkSize), size: ds.chunkSize}
			ds.chunks[ci] = ent
			ds.file.dirty = true
		}
		if err := ds.file.vfd.WriteAt(p, ent.fileOff+inOff, data[:n]); err != nil {
			return err
		}
		off += n
		data = data[n:]
	}
	return nil
}

// Read fetches n bytes at a byte offset within the dataset. Unwritten
// chunked regions read as zeros.
func (ds *Dataset) Read(p *sim.Proc, off int64, n int64) ([]byte, error) {
	out := make([]byte, n)
	if err := ds.ReadInto(p, off, n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fetches n bytes at a byte offset within the dataset into dst
// (len(dst) == n; every byte is written, unwritten chunked regions as
// zeros). A nil dst simulates the read — the same sieve window loads, VFD
// requests, and library charges — without materializing data.
func (ds *Dataset) ReadInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	if off < 0 || off+n > ds.Extent {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, off, off+n, ds.Extent)
	}
	p.Sleep(ds.file.costs.LibOp)
	if ds.Layout == layoutContiguous {
		if ds.file.sieve != nil {
			return ds.file.sieveRead(p, ds.dataOff+off, n, dst)
		}
		return ds.file.vfd.ReadAtInto(p, ds.dataOff+off, n, dst)
	}
	var pos int64
	for pos < n {
		ci := (off + pos) / ds.chunkSize
		inOff := (off + pos) % ds.chunkSize
		l := ds.chunkSize - inOff
		if l > n-pos {
			l = n - pos
		}
		ent, ok := ds.chunks[ci]
		switch {
		case ok && dst != nil:
			if err := ds.file.vfd.ReadAtInto(p, ent.fileOff+inOff, l, dst[pos:pos+l]); err != nil {
				return err
			}
		case ok:
			if err := ds.file.vfd.ReadAtInto(p, ent.fileOff+inOff, l, nil); err != nil {
				return err
			}
		case dst != nil:
			clear(dst[pos : pos+l]) // unallocated chunk: reads as zeros
		}
		pos += l
	}
	return nil
}

// Flush writes the object index, chunk indexes, and the superblock (the
// metadata cache flush).
func (f *File) Flush(p *sim.Proc) error {
	if err := f.flushSieve(p); err != nil {
		return err
	}
	if !f.dirty {
		return nil
	}
	p.Sleep(f.costs.LibOp)
	// Chunk index blocks first.
	for _, name := range f.order {
		ds := f.datasets[name]
		if ds.Layout != layoutChunked {
			continue
		}
		blocks := (len(ds.chunks) + indexBlockCap - 1) / indexBlockCap
		for b := 0; b < blocks; b++ {
			blockOff := f.alloc(int64(indexBlockCap * 24))
			if err := f.vfd.WriteAt(p, blockOff, ds.encodeChunkBlock(b)); err != nil {
				return err
			}
		}
	}
	// Object index (one record per dataset), then the superblock pointing
	// at it.
	indexOff := f.alloc(int64(len(f.order)) * (headerSize + 16))
	idx := make([]byte, 0, len(f.order)*(headerSize+16))
	for _, name := range f.order {
		ds := f.datasets[name]
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint64(rec[0:8], uint64(ds.headerOff))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(len(ds.chunks)))
		idx = append(idx, rec...)
		idx = append(idx, ds.encodeHeader()...)
	}
	if err := f.vfd.WriteAt(p, indexOff, idx); err != nil {
		return err
	}
	if err := f.vfd.WriteAt(p, 0, f.encodeSuperblock(indexOff, len(f.order))); err != nil {
		return err
	}
	f.dirty = false
	return f.vfd.Sync(p)
}

// encodeChunkBlock serializes index block b of a chunked dataset.
func (ds *Dataset) encodeChunkBlock(b int) []byte {
	out := make([]byte, indexBlockCap*24)
	// Deterministic ordering of map entries by chunk index.
	indexes := make([]int64, 0, len(ds.chunks))
	for ci := range ds.chunks {
		indexes = append(indexes, ci)
	}
	sortInt64(indexes)
	lo := b * indexBlockCap
	for i := 0; i < indexBlockCap && lo+i < len(indexes); i++ {
		ci := indexes[lo+i]
		ent := ds.chunks[ci]
		base := i * 24
		binary.LittleEndian.PutUint64(out[base:base+8], uint64(ci))
		binary.LittleEndian.PutUint64(out[base+8:base+16], uint64(ent.fileOff))
		binary.LittleEndian.PutUint64(out[base+16:base+24], uint64(ent.size))
	}
	return out
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// readIndex loads the object index and chunk indexes at open.
func (f *File) readIndex(p *sim.Proc, indexOff int64, count int) error {
	idx, err := f.vfd.ReadAt(p, indexOff, int64(count)*(headerSize+16))
	if err != nil {
		return fmt.Errorf("hdf5: index read: %w", err)
	}
	pos := 0
	type pendingChunks struct {
		ds     *Dataset
		chunks int
	}
	var pending []pendingChunks
	for i := 0; i < count; i++ {
		headerOff := int64(binary.LittleEndian.Uint64(idx[pos : pos+8]))
		nChunks := int(binary.LittleEndian.Uint64(idx[pos+8 : pos+16]))
		ds := decodeHeader(idx[pos+16 : pos+16+headerSize])
		ds.file = f
		ds.headerOff = headerOff
		f.datasets[ds.Name] = ds
		f.order = append(f.order, ds.Name)
		if ds.Layout == layoutChunked && nChunks > 0 {
			pending = append(pending, pendingChunks{ds: ds, chunks: nChunks})
		}
		pos += 16 + headerSize
	}
	// Chunk index blocks sit just before the object index, in flush order.
	// Walk backwards to locate them.
	blockBytes := int64(indexBlockCap * 24)
	var totalBlocks int64
	for _, pc := range pending {
		totalBlocks += int64((pc.chunks + indexBlockCap - 1) / indexBlockCap)
	}
	blockOff := indexOff - totalBlocks*blockBytes
	for _, pc := range pending {
		blocks := (pc.chunks + indexBlockCap - 1) / indexBlockCap
		loaded := 0
		for b := 0; b < blocks; b++ {
			raw, err := f.vfd.ReadAt(p, blockOff, blockBytes)
			if err != nil {
				return fmt.Errorf("hdf5: chunk index read: %w", err)
			}
			for i := 0; i < indexBlockCap && loaded < pc.chunks; i++ {
				base := i * 24
				ci := int64(binary.LittleEndian.Uint64(raw[base : base+8]))
				fileOff := int64(binary.LittleEndian.Uint64(raw[base+8 : base+16]))
				size := int64(binary.LittleEndian.Uint64(raw[base+16 : base+24]))
				pc.ds.chunks[ci] = chunkEntry{fileOff: fileOff, size: size}
				loaded++
			}
			blockOff += blockBytes
		}
	}
	return nil
}

// Close flushes metadata and closes the VFD.
func (f *File) Close(p *sim.Proc) error {
	if f.writable {
		if err := f.Flush(p); err != nil {
			return err
		}
	}
	return f.vfd.Close(p)
}

// DataOffset exposes a contiguous dataset's absolute file offset (for
// parallel writers that coordinate slabs externally and for alignment
// tests).
func (ds *Dataset) DataOffset() int64 { return ds.dataOff }
