package hdf5_test

import (
	"bytes"
	"errors"
	"testing"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/hdf5"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// withVFD provides a POSIX VFD over a dfuse mount on a small testbed.
func withVFD(t *testing.T, body func(p *sim.Proc, newVFD func(p *sim.Proc, path string, create bool) hdf5.VFD)) {
	t.Helper()
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, err := client.CreatePool(p, "p0")
		if err != nil {
			t.Error(err)
			return
		}
		ct, err := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S2})
		if err != nil {
			t.Error(err)
			return
		}
		fsys, err := dfs.Mount(p, ct)
		if err != nil {
			t.Error(err)
			return
		}
		m := dfuse.NewMount(tb.Sim, tb.ClientNode(0), fsys, dfuse.DefaultCosts())
		newVFD := func(p *sim.Proc, path string, create bool) hdf5.VFD {
			flags := dfuse.O_RDWR
			if create {
				flags |= dfuse.O_CREATE
			}
			fd, err := m.Open(p, path, flags, dfs.CreateOpts{})
			if err != nil {
				t.Fatal(err)
			}
			return hdf5.NewPosixVFD(fd)
		}
		body(p, newVFD)
	})
}

func fill(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed + byte(i%97)
	}
	return out
}

func TestContiguousRoundTrip(t *testing.T) {
	withVFD(t, func(p *sim.Proc, newVFD func(*sim.Proc, string, bool) hdf5.VFD) {
		f, err := hdf5.Create(p, newVFD(p, "/c.h5", true), hdf5.DefaultCosts())
		if err != nil {
			t.Error(err)
			return
		}
		ds, err := f.CreateDataset(p, "temperature", 4<<20, 0)
		if err != nil {
			t.Error(err)
			return
		}
		data := fill(4<<20, 3)
		if err := ds.Write(p, 0, data); err != nil {
			t.Error(err)
			return
		}
		got, err := ds.Read(p, 0, 4<<20)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("round trip mismatch (%v)", err)
		}
		if err := f.Close(p); err != nil {
			t.Error(err)
		}
	})
}

func TestReopenReadsBack(t *testing.T) {
	withVFD(t, func(p *sim.Proc, newVFD func(*sim.Proc, string, bool) hdf5.VFD) {
		f, _ := hdf5.Create(p, newVFD(p, "/persist.h5", true), hdf5.DefaultCosts())
		ds, _ := f.CreateDataset(p, "d1", 1<<20, 0)
		data := fill(1<<20, 9)
		ds.Write(p, 0, data)
		ds2, _ := f.CreateDataset(p, "d2", 4096, 0)
		ds2.Write(p, 0, fill(4096, 42))
		f.Close(p)

		g, err := hdf5.Open(p, newVFD(p, "/persist.h5", false), hdf5.DefaultCosts())
		if err != nil {
			t.Error(err)
			return
		}
		names := g.Datasets()
		if len(names) != 2 || names[0] != "d1" || names[1] != "d2" {
			t.Errorf("datasets = %v", names)
			return
		}
		rd, err := g.OpenDataset(p, "d1")
		if err != nil {
			t.Error(err)
			return
		}
		got, err := rd.Read(p, 0, 1<<20)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("reopened read mismatch (%v)", err)
		}
		rd2, _ := g.OpenDataset(p, "d2")
		got, _ = rd2.Read(p, 0, 4096)
		if !bytes.Equal(got, fill(4096, 42)) {
			t.Error("second dataset mismatch")
		}
	})
}

func TestChunkedRoundTripAndReopen(t *testing.T) {
	withVFD(t, func(p *sim.Proc, newVFD func(*sim.Proc, string, bool) hdf5.VFD) {
		f, _ := hdf5.Create(p, newVFD(p, "/chunked.h5", true), hdf5.DefaultCosts())
		ds, err := f.CreateDataset(p, "grid", 8<<20, 256<<10)
		if err != nil {
			t.Error(err)
			return
		}
		// Write a sparse pattern: chunks 0, 3, and a straddle of 30/31.
		a, b, c := fill(256<<10, 1), fill(256<<10, 2), fill(512<<10, 3)
		ds.Write(p, 0, a)
		ds.Write(p, 3*(256<<10), b)
		ds.Write(p, 8<<20-(512<<10), c)
		f.Close(p)

		g, err := hdf5.Open(p, newVFD(p, "/chunked.h5", false), hdf5.DefaultCosts())
		if err != nil {
			t.Error(err)
			return
		}
		rd, _ := g.OpenDataset(p, "grid")
		got, err := rd.Read(p, 0, 256<<10)
		if err != nil || !bytes.Equal(got, a) {
			t.Errorf("chunk 0 mismatch (%v)", err)
		}
		got, _ = rd.Read(p, 3*(256<<10), 256<<10)
		if !bytes.Equal(got, b) {
			t.Error("chunk 3 mismatch")
		}
		got, _ = rd.Read(p, 8<<20-(512<<10), 512<<10)
		if !bytes.Equal(got, c) {
			t.Error("tail straddle mismatch")
		}
		// Unwritten chunk reads as zeros.
		got, _ = rd.Read(p, 256<<10, 256<<10)
		if !bytes.Equal(got, make([]byte, 256<<10)) {
			t.Error("hole not zero")
		}
	})
}

func TestUnalignedDataOffset(t *testing.T) {
	// The contiguous data offset must NOT be chunk-aligned: that
	// misalignment is a core mechanism behind HDF5's slowdown over DFuse.
	withVFD(t, func(p *sim.Proc, newVFD func(*sim.Proc, string, bool) hdf5.VFD) {
		f, _ := hdf5.Create(p, newVFD(p, "/align.h5", true), hdf5.DefaultCosts())
		ds, _ := f.CreateDataset(p, "d", 1<<20, 0)
		if ds.DataOffset()%(1<<20) == 0 {
			t.Errorf("data offset %d is 1 MiB aligned; HDF5 default layout must not be", ds.DataOffset())
		}
		if ds.DataOffset() != 512+256 {
			t.Errorf("data offset = %d, want 768 (superblock+header)", ds.DataOffset())
		}
	})
}

func TestErrors(t *testing.T) {
	withVFD(t, func(p *sim.Proc, newVFD func(*sim.Proc, string, bool) hdf5.VFD) {
		f, _ := hdf5.Create(p, newVFD(p, "/err.h5", true), hdf5.DefaultCosts())
		if _, err := f.CreateDataset(p, "d", 1024, 0); err != nil {
			t.Error(err)
		}
		if _, err := f.CreateDataset(p, "d", 1024, 0); !errors.Is(err, hdf5.ErrDatasetExists) {
			t.Errorf("dup err = %v", err)
		}
		if _, err := f.OpenDataset(p, "missing"); !errors.Is(err, hdf5.ErrDatasetMissing) {
			t.Errorf("missing err = %v", err)
		}
		ds, _ := f.OpenDataset(p, "d")
		if err := ds.Write(p, 1000, make([]byte, 100)); !errors.Is(err, hdf5.ErrOutOfBounds) {
			t.Errorf("oob err = %v", err)
		}
		if _, err := ds.Read(p, 0, 2048); !errors.Is(err, hdf5.ErrOutOfBounds) {
			t.Errorf("oob read err = %v", err)
		}
	})
}

func TestOpenGarbageFails(t *testing.T) {
	withVFD(t, func(p *sim.Proc, newVFD func(*sim.Proc, string, bool) hdf5.VFD) {
		vfd := newVFD(p, "/garbage", true)
		vfd.WriteAt(p, 0, fill(1024, 7))
		if _, err := hdf5.Open(p, vfd, hdf5.DefaultCosts()); !errors.Is(err, hdf5.ErrNotHDF5) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestParallelSlabLayout(t *testing.T) {
	// Shared-file usage: one rank creates the dataset; peers open and write
	// disjoint slabs (what the IOR HDF5 backend does).
	withVFD(t, func(p *sim.Proc, newVFD func(*sim.Proc, string, bool) hdf5.VFD) {
		const ranks, slab = 4, 1 << 18
		f, _ := hdf5.Create(p, newVFD(p, "/shared.h5", true), hdf5.DefaultCosts())
		ds, _ := f.CreateDataset(p, "data", ranks*slab, 0)
		for r := 0; r < ranks; r++ {
			ds.Write(p, int64(r)*slab, fill(slab, byte(r)))
		}
		f.Close(p)
		g, _ := hdf5.Open(p, newVFD(p, "/shared.h5", false), hdf5.DefaultCosts())
		rd, _ := g.OpenDataset(p, "data")
		for r := 0; r < ranks; r++ {
			got, err := rd.Read(p, int64(r)*slab, slab)
			if err != nil || !bytes.Equal(got, fill(slab, byte(r))) {
				t.Errorf("slab %d mismatch (%v)", r, err)
			}
		}
	})
}
