package hdf5

// The data sieve buffer reproduces H5FD sec2's default caching for
// contiguous datasets: partial accesses are staged through an aligned
// buffer (H5Pset_sieve_buf_size, 1 MiB default). Because stock HDF5 lays
// contiguous data out unaligned (right after the object header), bulk
// sequential I/O repeatedly straddles sieve windows, and every window
// change costs a read-modify-write on the write path and a serial window
// load on the read path. This — together with the synchronous metadata
// writes — is the mechanism behind the paper's "HDF5 using the DFuse mount
// gives much lower performance" result.
//
// Parallel HDF5 disables the sieve (the MPI-I/O VFD never engages it);
// File.SetSieve(0) mirrors that, and the IOR shared-file backend uses it,
// which is why HDF5 converges with the other interfaces in Figure 2.

import "daosim/internal/sim"

// sieve is the per-file staging buffer.
type sieve struct {
	size   int64
	start  int64 // aligned window start; -1 when empty
	data   []byte
	dirty  bool
	loaded bool // data holds the window's bytes (false after a discard load)
}

// DefaultSieveSize is the staging window for contiguous datasets. HDF5's
// own default sieve buffer is 64 KiB; we model a moderately tuned 256 KiB
// buffer (what many sites set) — still small enough that bulk unaligned
// transfers dissolve into serial read-modify-write round trips.
const DefaultSieveSize = int64(256) << 10

// SetSieve sets the sieve buffer size for subsequent contiguous dataset
// I/O. Zero disables staging (parallel-HDF5 behaviour). Any buffered dirty
// data is NOT implicitly flushed; call Flush first when changing modes
// mid-file.
func (f *File) SetSieve(size int64) {
	if size <= 0 {
		f.sieve = nil
		return
	}
	f.sieve = &sieve{size: size, start: -1, data: make([]byte, size)}
}

// flushSieve writes a dirty window back through the VFD.
func (f *File) flushSieve(p *sim.Proc) error {
	s := f.sieve
	if s == nil || !s.dirty {
		return nil
	}
	if err := f.vfd.WriteAt(p, s.start, s.data); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// loadSieve positions the window over the region containing off,
// read-modify-write style: flush the old window, then read the new one
// straight into the staging buffer. With materialize false the window load
// is simulated (same VFD request, same flush) without filling the buffer;
// a later materializing access to the same window re-reads it, so discard
// reads never poison the staging state.
func (f *File) loadSieve(p *sim.Proc, off int64, materialize bool) error {
	s := f.sieve
	window := off - off%s.size
	if s.start == window && (s.loaded || !materialize) {
		return nil
	}
	if s.start != window {
		if err := f.flushSieve(p); err != nil {
			return err
		}
	}
	var dst []byte
	if materialize {
		dst = s.data
	}
	if err := f.vfd.ReadAtInto(p, window, s.size, dst); err != nil {
		return err
	}
	s.start = window
	s.loaded = materialize
	return nil
}

// sieveWrite stages a contiguous-dataset write through the sieve. Writes
// that exactly cover whole windows bypass the buffer (as HDF5 does), so
// aligned applications avoid the penalty — the tuning the ablation bench
// demonstrates.
func (f *File) sieveWrite(p *sim.Proc, off int64, data []byte) error {
	s := f.sieve
	for len(data) > 0 {
		window := off - off%s.size
		if off == window && int64(len(data)) >= s.size {
			// Full-window write: bypass.
			if s.start == window {
				s.start = -1 // invalidate stale staging
				s.dirty = false
			}
			if err := f.vfd.WriteAt(p, off, data[:s.size]); err != nil {
				return err
			}
			off += s.size
			data = data[s.size:]
			continue
		}
		if err := f.loadSieve(p, off, true); err != nil {
			return err
		}
		lo := off - s.start
		n := s.size - lo
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		copy(s.data[lo:lo+n], data[:n])
		s.dirty = true
		off += n
		data = data[n:]
	}
	return nil
}

// sieveRead serves a contiguous-dataset read through the sieve, loading
// windows serially (HDF5 performs its own buffering, so the kernel's
// parallel readahead never engages). Bytes land in the caller's dst; a nil
// dst walks the same window-load sequence without materializing anything.
func (f *File) sieveRead(p *sim.Proc, off int64, n int64, dst []byte) error {
	s := f.sieve
	var pos int64
	for pos < n {
		if err := f.loadSieve(p, off+pos, dst != nil); err != nil {
			return err
		}
		lo := off + pos - s.start
		l := s.size - lo
		if l > n-pos {
			l = n - pos
		}
		if dst != nil {
			copy(dst[pos:pos+l], s.data[lo:lo+l])
		}
		pos += l
	}
	return nil
}
