package raft

import "fmt"

// Entry is one replicated log record. A nil Cmd is the no-op entry a new
// leader appends to commit entries from earlier terms promptly.
type Entry struct {
	Term uint64
	Cmd  []byte
}

// raftLog stores the suffix of the replicated log that has not been
// compacted into a snapshot. Indices are 1-based; index 0 is the empty
// log sentinel with term 0.
type raftLog struct {
	// snapIndex/snapTerm describe the last entry covered by the snapshot.
	snapIndex uint64
	snapTerm  uint64
	// entries holds log records (snapIndex+1 .. snapIndex+len(entries)).
	entries []Entry
}

// lastIndex returns the index of the last entry in the log.
func (l *raftLog) lastIndex() uint64 { return l.snapIndex + uint64(len(l.entries)) }

// lastTerm returns the term of the last entry.
func (l *raftLog) lastTerm() uint64 { return l.term(l.lastIndex()) }

// firstIndex returns the first index still present (not compacted).
func (l *raftLog) firstIndex() uint64 { return l.snapIndex + 1 }

// term returns the term of the entry at index i, or 0 for the sentinel.
// Asking for an index inside the snapshot (other than its last index)
// panics: callers must consult snapshot metadata first.
func (l *raftLog) term(i uint64) uint64 {
	switch {
	case i == l.snapIndex:
		return l.snapTerm
	case i < l.snapIndex:
		panic(fmt.Sprintf("raft: term(%d) below snapshot %d", i, l.snapIndex))
	case i > l.lastIndex():
		panic(fmt.Sprintf("raft: term(%d) beyond last %d", i, l.lastIndex()))
	default:
		return l.entries[i-l.snapIndex-1].Term
	}
}

// entry returns the entry at index i.
func (l *raftLog) entry(i uint64) Entry {
	if i <= l.snapIndex || i > l.lastIndex() {
		panic(fmt.Sprintf("raft: entry(%d) out of range (%d,%d]", i, l.snapIndex, l.lastIndex()))
	}
	return l.entries[i-l.snapIndex-1]
}

// slice returns entries in [lo, hi] inclusive, copied.
func (l *raftLog) slice(lo, hi uint64) []Entry {
	if lo > hi {
		return nil
	}
	if lo <= l.snapIndex || hi > l.lastIndex() {
		panic(fmt.Sprintf("raft: slice [%d,%d] out of range (%d,%d]", lo, hi, l.snapIndex, l.lastIndex()))
	}
	out := make([]Entry, hi-lo+1)
	copy(out, l.entries[lo-l.snapIndex-1:hi-l.snapIndex])
	return out
}

// append adds entries at the tail.
func (l *raftLog) append(es ...Entry) { l.entries = append(l.entries, es...) }

// truncateFrom discards entries at index i and beyond (conflict resolution).
func (l *raftLog) truncateFrom(i uint64) {
	if i <= l.snapIndex {
		panic(fmt.Sprintf("raft: truncate at %d inside snapshot %d", i, l.snapIndex))
	}
	if i > l.lastIndex() {
		return
	}
	l.entries = l.entries[:i-l.snapIndex-1]
}

// compactTo drops entries up to and including index i, recording the
// snapshot boundary term.
func (l *raftLog) compactTo(i uint64) {
	if i <= l.snapIndex {
		return
	}
	if i > l.lastIndex() {
		panic(fmt.Sprintf("raft: compact to %d beyond last %d", i, l.lastIndex()))
	}
	t := l.term(i)
	l.entries = append([]Entry(nil), l.entries[i-l.snapIndex:]...)
	l.snapIndex = i
	l.snapTerm = t
}

// resetToSnapshot replaces the whole log with a snapshot boundary (used when
// installing a snapshot received from the leader).
func (l *raftLog) resetToSnapshot(index, term uint64) {
	l.snapIndex = index
	l.snapTerm = term
	l.entries = nil
}

// matches reports whether the log contains an entry at index with the given
// term (the AppendEntries consistency check).
func (l *raftLog) matches(index, term uint64) bool {
	if index < l.snapIndex {
		// Everything inside the snapshot is committed, hence matching.
		return true
	}
	if index > l.lastIndex() {
		return false
	}
	return l.term(index) == term
}
