// Package raft implements the Raft consensus protocol on top of the
// simulation kernel: leader election with randomized timeouts, log
// replication with the AppendEntries consistency check, commitment by
// majority match, snapshot-based log compaction, and InstallSnapshot for
// followers that have fallen behind a compaction point.
//
// DAOS uses Raft for its pool service (management metadata: pools,
// containers, handles); package svc builds that state machine on top of
// this package. The implementation follows the Raft paper (Ongaro &
// Ousterhout, 2014) and, because the simulator is single-threaded
// deterministic, needs no locking.
package raft

import (
	"errors"
	"fmt"
	"time"

	"daosim/internal/sim"
)

// Role is a node's current protocol role.
type Role int

// Raft roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "unknown"
	}
}

// Errors returned by Propose futures.
var (
	// ErrNotLeader reports a proposal sent to a non-leader; LeaderHint on
	// the wrapped error carries the caller's best redirect target.
	ErrNotLeader = errors.New("raft: not leader")
	// ErrLostLeadership reports a proposal whose entry was overwritten
	// after a leadership change; the command may or may not have applied.
	ErrLostLeadership = errors.New("raft: lost leadership before commit")
	// ErrStopped reports a proposal to a stopped node.
	ErrStopped = errors.New("raft: node stopped")
)

// NotLeaderError wraps ErrNotLeader with a redirect hint.
type NotLeaderError struct {
	LeaderHint int // -1 when unknown
}

func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("raft: not leader (hint %d)", e.LeaderHint)
}

// Unwrap lets errors.Is(err, ErrNotLeader) succeed.
func (e *NotLeaderError) Unwrap() error { return ErrNotLeader }

// StateMachine is the replicated application. Apply must be deterministic.
type StateMachine interface {
	// Apply executes a committed command and returns its result.
	Apply(index uint64, cmd []byte) interface{}
	// Snapshot serializes the full state for log compaction.
	Snapshot() []byte
	// Restore replaces the state from a snapshot.
	Restore(snap []byte)
}

// Transport carries messages between nodes. Size is the approximate on-wire
// byte count, used only for timing.
type Transport interface {
	Send(p *sim.Proc, from, to int, m interface{}, size int64)
}

// Config parameterizes a node.
type Config struct {
	ID    int
	Peers []int // all cluster member IDs, including this node
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's idle AppendEntries period.
	HeartbeatInterval time.Duration
	// MaxEntriesPerAppend bounds a single AppendEntries payload.
	MaxEntriesPerAppend int
	// SnapshotThreshold triggers log compaction once this many entries
	// have been applied since the last snapshot. Zero disables.
	SnapshotThreshold int
}

// DefaultConfig returns production-style timeouts for node id in peers.
func DefaultConfig(id int, peers []int) Config {
	return Config{
		ID:                  id,
		Peers:               peers,
		ElectionTimeoutMin:  150 * time.Millisecond,
		ElectionTimeoutMax:  300 * time.Millisecond,
		HeartbeatInterval:   50 * time.Millisecond,
		MaxEntriesPerAppend: 64,
		SnapshotThreshold:   1024,
	}
}

// Message types exchanged between nodes.
type (
	// RequestVote solicits a vote for a candidate.
	RequestVote struct {
		Term         uint64
		Candidate    int
		LastLogIndex uint64
		LastLogTerm  uint64
	}
	// RequestVoteResp answers a RequestVote.
	RequestVoteResp struct {
		Term    uint64
		From    int
		Granted bool
	}
	// AppendEntries replicates log entries and doubles as heartbeat.
	AppendEntries struct {
		Term         uint64
		Leader       int
		PrevLogIndex uint64
		PrevLogTerm  uint64
		Entries      []Entry
		LeaderCommit uint64
	}
	// AppendEntriesResp answers an AppendEntries.
	AppendEntriesResp struct {
		Term       uint64
		From       int
		Success    bool
		MatchIndex uint64
		// ConflictIndex speeds up backtracking on mismatch.
		ConflictIndex uint64
	}
	// InstallSnapshot transfers compacted state to a lagging follower.
	InstallSnapshot struct {
		Term      uint64
		Leader    int
		LastIndex uint64
		LastTerm  uint64
		Data      []byte
	}
	// InstallSnapshotResp acknowledges snapshot installation.
	InstallSnapshotResp struct {
		Term      uint64
		From      int
		LastIndex uint64
	}
)

// internal mailbox messages
type (
	electionTimeout struct{ gen uint64 }
	heartbeatTick   struct{ gen uint64 }
	proposal        struct {
		cmd []byte
		fut *Future
	}
)

// Future is the pending result of a Propose.
type Future struct {
	sim     *sim.Sim
	done    bool
	val     interface{}
	err     error
	waiters []*sim.Proc
}

func newFuture(s *sim.Sim) *Future { return &Future{sim: s} }

// complete resolves the future and wakes waiters.
func (f *Future) complete(v interface{}, err error) {
	if f.done {
		return
	}
	f.done = true
	f.val = v
	f.err = err
	for _, w := range f.waiters {
		f.sim.Unpark(w)
	}
	f.waiters = nil
}

// Wait blocks p until the proposal resolves.
func (f *Future) Wait(p *sim.Proc) (interface{}, error) {
	if !f.done {
		f.waiters = append(f.waiters, p)
		p.ParkIdle()
	}
	return f.val, f.err
}

// Node is one Raft participant.
type Node struct {
	cfg  Config
	sim  *sim.Sim
	tr   Transport
	sm   StateMachine
	rng  *sim.RNG
	mbox *sim.Queue

	// Persistent state (survives Kill/Restart).
	term     uint64
	votedFor int // -1 none
	log      raftLog
	snapshot []byte

	// Volatile state.
	role        Role
	leaderHint  int
	commitIndex uint64
	lastApplied uint64
	votes       map[int]bool
	nextIndex   map[int]uint64
	matchIndex  map[int]uint64
	pending     map[uint64]*pendingProposal
	timerGen    uint64
	hbGen       uint64
	killed      bool
	stopped     bool

	appliedSinceSnap int

	// Observability hooks.
	Applied   uint64 // count of entries applied
	Elections int    // elections started by this node
}

type pendingProposal struct {
	term uint64
	fut  *Future
}

// NewNode creates a node and starts its event loop on the simulator.
func NewNode(s *sim.Sim, cfg Config, tr Transport, smFactory func() StateMachine) *Node {
	if len(cfg.Peers) == 0 {
		panic("raft: empty peer set")
	}
	n := &Node{
		cfg:        cfg,
		sim:        s,
		tr:         tr,
		sm:         smFactory(),
		rng:        s.RNG().Fork(),
		mbox:       sim.NewQueue(s, fmt.Sprintf("raft-%d", cfg.ID)),
		votedFor:   -1,
		leaderHint: -1,
		pending:    make(map[uint64]*pendingProposal),
	}
	s.Spawn(fmt.Sprintf("raft-%d", cfg.ID), n.run)
	n.resetElectionTimer()
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() int { return n.cfg.ID }

// Role returns the node's current role.
func (n *Node) Role() Role { return n.role }

// Term returns the node's current term.
func (n *Node) Term() uint64 { return n.term }

// LeaderHint returns the last known leader, or -1.
func (n *Node) LeaderHint() int { return n.leaderHint }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// Mailbox exposes the node's message queue so a transport can deliver to it.
func (n *Node) Mailbox() *sim.Queue { return n.mbox }

// StateMachineRef returns the node's state machine (for inspection).
func (n *Node) StateMachineRef() StateMachine { return n.sm }

// Propose submits a command. The returned future resolves with the state
// machine's Apply result once the entry commits, or with an error.
func (n *Node) Propose(cmd []byte) *Future {
	fut := newFuture(n.sim)
	if n.stopped || n.killed {
		fut.complete(nil, ErrStopped)
		return fut
	}
	n.mbox.Send(proposal{cmd: cmd, fut: fut})
	return fut
}

// Kill simulates a crash: the node stops responding but keeps its
// persistent state. Use Restart to bring it back.
func (n *Node) Kill() {
	n.killed = true
	n.role = Follower
	n.timerGen++
	n.hbGen++
	n.failPending(ErrLostLeadership)
}

// Restart recovers a killed node as a follower.
func (n *Node) Restart() {
	if n.stopped {
		panic("raft: restart of stopped node")
	}
	n.killed = false
	n.role = Follower
	n.votes = nil
	n.resetElectionTimer()
}

// Stop permanently shuts the node down, ending its event loop.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.timerGen++
	n.hbGen++
	n.failPending(ErrStopped)
	n.mbox.Close()
}

func (n *Node) failPending(err error) {
	for idx, pp := range n.pending {
		pp.fut.complete(nil, err)
		delete(n.pending, idx)
	}
}

// run is the node's event loop.
func (n *Node) run(p *sim.Proc) {
	for {
		m, ok := n.mbox.Recv(p)
		if !ok {
			return // stopped
		}
		if n.stopped {
			return
		}
		if n.killed {
			if pr, isProp := m.(proposal); isProp {
				pr.fut.complete(nil, ErrStopped)
			}
			continue // crashed nodes drop traffic
		}
		n.dispatch(p, m)
	}
}

func (n *Node) dispatch(p *sim.Proc, m interface{}) {
	switch v := m.(type) {
	case electionTimeout:
		if v.gen == n.timerGen && n.role != Leader {
			n.startElection(p)
		}
	case heartbeatTick:
		if v.gen == n.hbGen && n.role == Leader {
			n.broadcastAppend(p)
			n.scheduleHeartbeat()
		}
	case proposal:
		n.handlePropose(p, v)
	case RequestVote:
		n.handleRequestVote(p, v)
	case RequestVoteResp:
		n.handleVoteResp(p, v)
	case AppendEntries:
		n.handleAppendEntries(p, v)
	case AppendEntriesResp:
		n.handleAppendResp(p, v)
	case InstallSnapshot:
		n.handleInstallSnapshot(p, v)
	case InstallSnapshotResp:
		n.handleSnapshotResp(p, v)
	default:
		panic(fmt.Sprintf("raft: unknown message %T", m))
	}
}

// --- timers ---

func (n *Node) resetElectionTimer() {
	n.timerGen++
	gen := n.timerGen
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63()%int64(span+1))
	n.sim.After(d, func() {
		if !n.stopped && !n.killed {
			n.mbox.Send(electionTimeout{gen: gen})
		}
	})
}

func (n *Node) scheduleHeartbeat() {
	gen := n.hbGen
	n.sim.After(n.cfg.HeartbeatInterval, func() {
		if !n.stopped && !n.killed {
			n.mbox.Send(heartbeatTick{gen: gen})
		}
	})
}

// --- elections ---

func (n *Node) becomeFollower(term uint64, leader int) {
	if term > n.term {
		n.term = term
		n.votedFor = -1
	}
	if n.role == Leader {
		n.hbGen++ // stop heartbeats
		n.failPending(ErrLostLeadership)
	}
	n.role = Follower
	if leader >= 0 {
		n.leaderHint = leader
	}
	n.resetElectionTimer()
}

func (n *Node) startElection(p *sim.Proc) {
	n.role = Candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.votes = map[int]bool{n.cfg.ID: true}
	n.Elections++
	n.resetElectionTimer()
	req := RequestVote{
		Term:         n.term,
		Candidate:    n.cfg.ID,
		LastLogIndex: n.log.lastIndex(),
		LastLogTerm:  n.log.lastTerm(),
	}
	for _, peer := range n.cfg.Peers {
		if peer == n.cfg.ID {
			continue
		}
		n.tr.Send(p, n.cfg.ID, peer, req, 64)
	}
	n.maybeWinElection(p) // single-node cluster wins immediately
}

func (n *Node) handleRequestVote(p *sim.Proc, m RequestVote) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, -1)
	}
	granted := false
	if m.Term == n.term && (n.votedFor == -1 || n.votedFor == m.Candidate) {
		// Election restriction: candidate's log must be at least as
		// up-to-date as ours.
		upToDate := m.LastLogTerm > n.log.lastTerm() ||
			(m.LastLogTerm == n.log.lastTerm() && m.LastLogIndex >= n.log.lastIndex())
		if upToDate {
			granted = true
			n.votedFor = m.Candidate
			n.resetElectionTimer()
		}
	}
	n.tr.Send(p, n.cfg.ID, m.Candidate, RequestVoteResp{Term: n.term, From: n.cfg.ID, Granted: granted}, 32)
}

func (n *Node) handleVoteResp(p *sim.Proc, m RequestVoteResp) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, -1)
		return
	}
	if n.role != Candidate || m.Term != n.term || !m.Granted {
		return
	}
	n.votes[m.From] = true
	n.maybeWinElection(p)
}

func (n *Node) maybeWinElection(p *sim.Proc) {
	if n.role != Candidate || len(n.votes) < n.quorum() {
		return
	}
	n.role = Leader
	n.leaderHint = n.cfg.ID
	n.nextIndex = make(map[int]uint64)
	n.matchIndex = make(map[int]uint64)
	for _, peer := range n.cfg.Peers {
		n.nextIndex[peer] = n.log.lastIndex() + 1
		n.matchIndex[peer] = 0
	}
	n.matchIndex[n.cfg.ID] = n.log.lastIndex()
	// Commit a no-op from the new term to unblock earlier-term entries
	// (Raft paper §5.4.2).
	n.log.append(Entry{Term: n.term, Cmd: nil})
	n.matchIndex[n.cfg.ID] = n.log.lastIndex()
	n.hbGen++
	n.broadcastAppend(p)
	n.scheduleHeartbeat()
	n.advanceCommit()
}

func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

// --- replication ---

func (n *Node) handlePropose(p *sim.Proc, pr proposal) {
	if n.role != Leader {
		pr.fut.complete(nil, &NotLeaderError{LeaderHint: n.leaderHint})
		return
	}
	n.log.append(Entry{Term: n.term, Cmd: pr.cmd})
	idx := n.log.lastIndex()
	n.matchIndex[n.cfg.ID] = idx
	n.pending[idx] = &pendingProposal{term: n.term, fut: pr.fut}
	n.broadcastAppend(p)
	n.advanceCommit()
}

func (n *Node) broadcastAppend(p *sim.Proc) {
	for _, peer := range n.cfg.Peers {
		if peer == n.cfg.ID {
			continue
		}
		n.sendAppend(p, peer)
	}
}

func (n *Node) sendAppend(p *sim.Proc, peer int) {
	next := n.nextIndex[peer]
	if next <= n.log.snapIndex {
		// Peer needs entries we compacted: ship the snapshot.
		m := InstallSnapshot{
			Term:      n.term,
			Leader:    n.cfg.ID,
			LastIndex: n.log.snapIndex,
			LastTerm:  n.log.snapTerm,
			Data:      n.snapshot,
		}
		n.tr.Send(p, n.cfg.ID, peer, m, int64(64+len(n.snapshot)))
		return
	}
	prev := next - 1
	hi := n.log.lastIndex()
	if max := next + uint64(n.cfg.MaxEntriesPerAppend) - 1; n.cfg.MaxEntriesPerAppend > 0 && hi > max {
		hi = max
	}
	var entries []Entry
	if hi >= next {
		entries = n.log.slice(next, hi)
	}
	m := AppendEntries{
		Term:         n.term,
		Leader:       n.cfg.ID,
		PrevLogIndex: prev,
		PrevLogTerm:  n.log.term(prev),
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	}
	size := int64(64)
	for _, e := range entries {
		size += int64(32 + len(e.Cmd))
	}
	n.tr.Send(p, n.cfg.ID, peer, m, size)
}

func (n *Node) handleAppendEntries(p *sim.Proc, m AppendEntries) {
	if m.Term > n.term || (m.Term == n.term && n.role != Follower) {
		n.becomeFollower(m.Term, m.Leader)
	}
	resp := AppendEntriesResp{Term: n.term, From: n.cfg.ID}
	if m.Term < n.term {
		n.tr.Send(p, n.cfg.ID, m.Leader, resp, 48)
		return
	}
	n.leaderHint = m.Leader
	n.resetElectionTimer()
	if !n.log.matches(m.PrevLogIndex, m.PrevLogTerm) {
		// Conflict: tell the leader where our log ends so it can back up
		// in one round instead of one index at a time.
		ci := n.log.lastIndex() + 1
		if m.PrevLogIndex <= n.log.lastIndex() {
			ci = m.PrevLogIndex // mismatching term at PrevLogIndex
			for ci > n.log.firstIndex() && n.log.term(ci-1) == n.log.term(m.PrevLogIndex) {
				ci--
			}
		}
		resp.ConflictIndex = ci
		n.tr.Send(p, n.cfg.ID, m.Leader, resp, 48)
		return
	}
	// Append any entries not already in the log, truncating conflicts.
	for i, e := range m.Entries {
		idx := m.PrevLogIndex + 1 + uint64(i)
		if idx <= n.log.snapIndex {
			continue // already compacted, hence committed
		}
		if idx <= n.log.lastIndex() {
			if n.log.term(idx) == e.Term {
				continue
			}
			n.log.truncateFrom(idx)
		}
		n.log.append(e)
	}
	if m.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(m.LeaderCommit, n.log.lastIndex())
		n.applyCommitted()
	}
	resp.Success = true
	resp.MatchIndex = m.PrevLogIndex + uint64(len(m.Entries))
	n.tr.Send(p, n.cfg.ID, m.Leader, resp, 48)
}

func (n *Node) handleAppendResp(p *sim.Proc, m AppendEntriesResp) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, -1)
		return
	}
	if n.role != Leader || m.Term != n.term {
		return
	}
	if m.Success {
		if m.MatchIndex > n.matchIndex[m.From] {
			n.matchIndex[m.From] = m.MatchIndex
		}
		if m.MatchIndex+1 > n.nextIndex[m.From] {
			n.nextIndex[m.From] = m.MatchIndex + 1
		}
		n.advanceCommit()
		if n.nextIndex[m.From] <= n.log.lastIndex() {
			n.sendAppend(p, m.From) // keep streaming backlog
		}
		return
	}
	// Back up using the follower's conflict hint.
	next := m.ConflictIndex
	if next < 1 {
		next = 1
	}
	if next < n.nextIndex[m.From] {
		n.nextIndex[m.From] = next
	} else if n.nextIndex[m.From] > 1 {
		n.nextIndex[m.From]--
	}
	n.sendAppend(p, m.From)
}

// advanceCommit moves commitIndex to the highest index replicated on a
// quorum with an entry from the current term (Raft §5.4.2).
func (n *Node) advanceCommit() {
	if n.role != Leader {
		return
	}
	for idx := n.log.lastIndex(); idx > n.commitIndex && idx >= n.log.firstIndex(); idx-- {
		if n.log.term(idx) != n.term {
			break
		}
		count := 0
		for _, peer := range n.cfg.Peers {
			if n.matchIndex[peer] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			n.applyCommitted()
			break
		}
	}
}

// applyCommitted applies entries up to commitIndex and resolves futures.
func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		e := n.log.entry(n.lastApplied)
		var result interface{}
		if e.Cmd != nil {
			result = n.sm.Apply(n.lastApplied, e.Cmd)
		}
		n.Applied++
		n.appliedSinceSnap++
		if pp, ok := n.pending[n.lastApplied]; ok {
			delete(n.pending, n.lastApplied)
			if pp.term == e.Term {
				pp.fut.complete(result, nil)
			} else {
				pp.fut.complete(nil, ErrLostLeadership)
			}
		}
	}
	n.maybeCompact()
}

// maybeCompact snapshots the state machine and truncates the log.
func (n *Node) maybeCompact() {
	if n.cfg.SnapshotThreshold <= 0 || n.appliedSinceSnap < n.cfg.SnapshotThreshold {
		return
	}
	n.snapshot = n.sm.Snapshot()
	n.log.compactTo(n.lastApplied)
	n.appliedSinceSnap = 0
}

func (n *Node) handleInstallSnapshot(p *sim.Proc, m InstallSnapshot) {
	if m.Term > n.term || (m.Term == n.term && n.role != Follower) {
		n.becomeFollower(m.Term, m.Leader)
	}
	resp := InstallSnapshotResp{Term: n.term, From: n.cfg.ID}
	if m.Term < n.term {
		n.tr.Send(p, n.cfg.ID, m.Leader, resp, 48)
		return
	}
	n.leaderHint = m.Leader
	n.resetElectionTimer()
	if m.LastIndex > n.commitIndex {
		n.sm.Restore(m.Data)
		n.snapshot = m.Data
		n.log.resetToSnapshot(m.LastIndex, m.LastTerm)
		n.commitIndex = m.LastIndex
		n.lastApplied = m.LastIndex
		n.appliedSinceSnap = 0
	}
	resp.LastIndex = m.LastIndex
	n.tr.Send(p, n.cfg.ID, m.Leader, resp, 48)
}

func (n *Node) handleSnapshotResp(p *sim.Proc, m InstallSnapshotResp) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, -1)
		return
	}
	if n.role != Leader || m.Term != n.term {
		return
	}
	if m.LastIndex >= n.nextIndex[m.From] {
		n.nextIndex[m.From] = m.LastIndex + 1
	}
	if m.LastIndex > n.matchIndex[m.From] {
		n.matchIndex[m.From] = m.LastIndex
	}
	if n.nextIndex[m.From] <= n.log.lastIndex() {
		n.sendAppend(p, m.From)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
