package raft

import (
	"testing"
	"testing/quick"
)

func TestLogBasics(t *testing.T) {
	var l raftLog
	if l.lastIndex() != 0 || l.lastTerm() != 0 || l.firstIndex() != 1 {
		t.Fatalf("empty log: last=%d lastTerm=%d first=%d", l.lastIndex(), l.lastTerm(), l.firstIndex())
	}
	l.append(Entry{Term: 1, Cmd: []byte("a")}, Entry{Term: 1, Cmd: []byte("b")}, Entry{Term: 2, Cmd: []byte("c")})
	if l.lastIndex() != 3 || l.lastTerm() != 2 {
		t.Fatalf("last=%d lastTerm=%d", l.lastIndex(), l.lastTerm())
	}
	if got := string(l.entry(2).Cmd); got != "b" {
		t.Fatalf("entry(2) = %q", got)
	}
	if l.term(0) != 0 || l.term(1) != 1 || l.term(3) != 2 {
		t.Fatal("term lookups wrong")
	}
}

func TestLogSlice(t *testing.T) {
	var l raftLog
	for i := 1; i <= 5; i++ {
		l.append(Entry{Term: uint64(i), Cmd: []byte{byte(i)}})
	}
	s := l.slice(2, 4)
	if len(s) != 3 || s[0].Term != 2 || s[2].Term != 4 {
		t.Fatalf("slice = %v", s)
	}
	if got := l.slice(3, 2); got != nil {
		t.Fatalf("inverted slice = %v, want nil", got)
	}
	// Mutating the returned slice must not affect the log.
	s[0].Term = 99
	if l.term(2) != 2 {
		t.Fatal("slice aliases log storage")
	}
}

func TestLogTruncate(t *testing.T) {
	var l raftLog
	for i := 1; i <= 5; i++ {
		l.append(Entry{Term: uint64(i)})
	}
	l.truncateFrom(3)
	if l.lastIndex() != 2 {
		t.Fatalf("lastIndex = %d after truncate", l.lastIndex())
	}
	l.truncateFrom(10) // beyond end is a no-op
	if l.lastIndex() != 2 {
		t.Fatal("truncate beyond end changed log")
	}
}

func TestLogCompact(t *testing.T) {
	var l raftLog
	for i := 1; i <= 10; i++ {
		l.append(Entry{Term: uint64(i)})
	}
	l.compactTo(6)
	if l.firstIndex() != 7 || l.lastIndex() != 10 {
		t.Fatalf("first=%d last=%d", l.firstIndex(), l.lastIndex())
	}
	if l.term(6) != 6 {
		t.Fatalf("snapshot boundary term = %d", l.term(6))
	}
	if l.term(8) != 8 {
		t.Fatalf("term(8) = %d", l.term(8))
	}
	l.compactTo(3) // below boundary is a no-op
	if l.firstIndex() != 7 {
		t.Fatal("stale compact changed log")
	}
}

func TestLogMatches(t *testing.T) {
	var l raftLog
	l.append(Entry{Term: 1}, Entry{Term: 2})
	cases := []struct {
		index, term uint64
		want        bool
	}{
		{0, 0, true}, // sentinel
		{1, 1, true},
		{2, 2, true},
		{2, 1, false}, // wrong term
		{3, 2, false}, // beyond end
	}
	for _, c := range cases {
		if got := l.matches(c.index, c.term); got != c.want {
			t.Errorf("matches(%d,%d) = %v, want %v", c.index, c.term, got, c.want)
		}
	}
}

func TestLogResetToSnapshot(t *testing.T) {
	var l raftLog
	l.append(Entry{Term: 1}, Entry{Term: 1})
	l.resetToSnapshot(20, 5)
	if l.lastIndex() != 20 || l.lastTerm() != 5 || l.firstIndex() != 21 {
		t.Fatalf("after reset: last=%d lastTerm=%d first=%d", l.lastIndex(), l.lastTerm(), l.firstIndex())
	}
}

func TestLogCompactPreservesSuffix(t *testing.T) {
	// Property: after compacting to any point, the remaining entries are
	// unchanged and term() agrees with the original log.
	f := func(terms []uint8, cutFrac uint8) bool {
		if len(terms) == 0 {
			return true
		}
		var l raftLog
		for _, tm := range terms {
			l.append(Entry{Term: uint64(tm) + 1})
		}
		orig := make([]uint64, len(terms))
		for i := range terms {
			orig[i] = l.term(uint64(i + 1))
		}
		cut := uint64(int(cutFrac)%len(terms)) + 1
		l.compactTo(cut)
		for i := cut + 1; i <= uint64(len(terms)); i++ {
			if l.term(i) != orig[i-1] {
				return false
			}
		}
		return l.term(cut) == orig[cut-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
