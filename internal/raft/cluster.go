package raft

import (
	"time"

	"daosim/internal/sim"
)

// MemTransport is an in-memory message transport with configurable one-way
// latency, a partition matrix, and deterministic delivery order. It serves
// unit tests and any deployment that keeps the replicas co-located; the svc
// package provides a fabric-backed transport for the full cluster model.
type MemTransport struct {
	sim     *sim.Sim
	latency time.Duration
	nodes   map[int]*Node
	blocked map[[2]int]bool

	// Dropped counts messages suppressed by partitions.
	Dropped int64
}

// NewMemTransport creates a transport with the given one-way latency.
func NewMemTransport(s *sim.Sim, latency time.Duration) *MemTransport {
	return &MemTransport{
		sim:     s,
		latency: latency,
		nodes:   make(map[int]*Node),
		blocked: make(map[[2]int]bool),
	}
}

// Attach registers a node for delivery.
func (t *MemTransport) Attach(n *Node) { t.nodes[n.ID()] = n }

// Partition blocks traffic in both directions between a and b.
func (t *MemTransport) Partition(a, b int) {
	t.blocked[[2]int{a, b}] = true
	t.blocked[[2]int{b, a}] = true
}

// Heal removes the partition between a and b.
func (t *MemTransport) Heal(a, b int) {
	delete(t.blocked, [2]int{a, b})
	delete(t.blocked, [2]int{b, a})
}

// Isolate partitions id from every other attached node.
func (t *MemTransport) Isolate(id int) {
	for other := range t.nodes {
		if other != id {
			t.Partition(id, other)
		}
	}
}

// HealAll removes every partition.
func (t *MemTransport) HealAll() { t.blocked = make(map[[2]int]bool) }

// Send implements Transport. p may be nil when invoked from a timer context.
func (t *MemTransport) Send(p *sim.Proc, from, to int, m interface{}, size int64) {
	if t.blocked[[2]int{from, to}] {
		t.Dropped++
		return
	}
	dst, ok := t.nodes[to]
	if !ok {
		return
	}
	t.sim.After(t.latency, func() { dst.mbox.Send(m) })
}

// Cluster bundles n nodes on a MemTransport for tests and examples.
type Cluster struct {
	Sim       *sim.Sim
	Transport *MemTransport
	Nodes     []*Node
}

// NewCluster boots n nodes with DefaultConfig timeouts (scaled by the given
// latency) and the provided state machine factory.
func NewCluster(s *sim.Sim, n int, latency time.Duration, smFactory func() StateMachine) *Cluster {
	tr := NewMemTransport(s, latency)
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	c := &Cluster{Sim: s, Transport: tr}
	for i := 0; i < n; i++ {
		node := NewNode(s, DefaultConfig(i, peers), tr, smFactory)
		tr.Attach(node)
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Leader returns the current unique live leader, or nil.
func (c *Cluster) Leader() *Node {
	var leader *Node
	for _, n := range c.Nodes {
		if n.Role() == Leader && !n.killed && !n.stopped {
			if leader != nil {
				// Two leaders can coexist transiently in different terms;
				// report the one with the higher term.
				if n.Term() > leader.Term() {
					leader = n
				}
				continue
			}
			leader = n
		}
	}
	return leader
}

// WaitLeader runs the simulation until a leader emerges or the deadline
// passes, returning the leader or nil.
func (c *Cluster) WaitLeader(deadline time.Duration) *Node {
	step := 10 * time.Millisecond
	for c.Sim.Now() < deadline {
		c.Sim.RunUntil(c.Sim.Now() + step)
		if l := c.Leader(); l != nil {
			return l
		}
	}
	return nil
}

// Stop shuts down every node.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Stop()
	}
}
