package raft

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"daosim/internal/sim"
)

// kvSM is a tiny deterministic state machine: commands are "key=value"
// strings; Apply returns the previous value.
type kvSM struct {
	data map[string]string
	log  []string // applied commands, for cross-replica comparison
}

func newKVSM() StateMachine { return &kvSM{data: make(map[string]string)} }

func (m *kvSM) Apply(index uint64, cmd []byte) interface{} {
	s := string(cmd)
	m.log = append(m.log, s)
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			prev := m.data[s[:i]]
			m.data[s[:i]] = s[i+1:]
			return prev
		}
	}
	return nil
}

func (m *kvSM) Snapshot() []byte {
	var out []byte
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(m.log)))
	out = append(out, n[:]...)
	for _, c := range m.log {
		binary.LittleEndian.PutUint64(n[:], uint64(len(c)))
		out = append(out, n[:]...)
		out = append(out, c...)
	}
	return out
}

func (m *kvSM) Restore(snap []byte) {
	m.data = make(map[string]string)
	m.log = nil
	count := binary.LittleEndian.Uint64(snap[:8])
	off := 8
	for i := uint64(0); i < count; i++ {
		l := int(binary.LittleEndian.Uint64(snap[off : off+8]))
		off += 8
		m.Apply(0, snap[off:off+l])
		m.log = m.log[:len(m.log)] // Apply already appended
		off += l
	}
}

func propose(t *testing.T, c *Cluster, cmd string) interface{} {
	t.Helper()
	leader := c.Leader()
	if leader == nil {
		t.Fatal("no leader")
	}
	var result interface{}
	var err error
	done := false
	c.Sim.Spawn("client", func(p *sim.Proc) {
		result, err = leader.Propose([]byte(cmd)).Wait(p)
		done = true
	})
	deadline := c.Sim.Now() + 5*time.Second
	for !done && c.Sim.Now() < deadline {
		c.Sim.RunUntil(c.Sim.Now() + 10*time.Millisecond)
	}
	if !done {
		t.Fatalf("proposal %q did not resolve", cmd)
	}
	if err != nil {
		t.Fatalf("proposal %q failed: %v", cmd, err)
	}
	return result
}

func TestLeaderElection(t *testing.T) {
	s := sim.New(7)
	c := NewCluster(s, 5, time.Millisecond, newKVSM)
	leader := c.WaitLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("no leader elected within 5s")
	}
	// Exactly one leader at the highest term.
	count := 0
	for _, n := range c.Nodes {
		if n.Role() == Leader {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("leaders = %d, want 1", count)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	s := sim.New(3)
	c := NewCluster(s, 1, time.Millisecond, newKVSM)
	if c.WaitLeader(2*time.Second) == nil {
		t.Fatal("single node did not become leader")
	}
	if got := propose(t, c, "a=1"); got != "" {
		t.Fatalf("previous value = %v, want empty", got)
	}
	if got := propose(t, c, "a=2"); got != "1" {
		t.Fatalf("previous value = %v, want 1", got)
	}
}

func TestReplicationToAllNodes(t *testing.T) {
	s := sim.New(11)
	c := NewCluster(s, 3, time.Millisecond, newKVSM)
	if c.WaitLeader(5*time.Second) == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 10; i++ {
		propose(t, c, fmt.Sprintf("k%d=v%d", i, i))
	}
	// Let followers catch up.
	s.RunUntil(s.Now() + 500*time.Millisecond)
	for _, n := range c.Nodes {
		m := n.StateMachineRef().(*kvSM)
		for i := 0; i < 10; i++ {
			k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
			if m.data[k] != v {
				t.Fatalf("node %d: %s = %q, want %q", n.ID(), k, m.data[k], v)
			}
		}
	}
}

func TestProposeToFollowerRedirects(t *testing.T) {
	s := sim.New(13)
	c := NewCluster(s, 3, time.Millisecond, newKVSM)
	leader := c.WaitLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	var follower *Node
	for _, n := range c.Nodes {
		if n.Role() != Leader {
			follower = n
			break
		}
	}
	var err error
	done := false
	s.Spawn("client", func(p *sim.Proc) {
		_, err = follower.Propose([]byte("x=1")).Wait(p)
		done = true
	})
	s.RunUntil(s.Now() + time.Second)
	if !done {
		t.Fatal("follower proposal did not resolve")
	}
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
	var nle *NotLeaderError
	if !errors.As(err, &nle) || nle.LeaderHint != leader.ID() {
		t.Fatalf("leader hint = %v, want %d", err, leader.ID())
	}
}

func TestLeaderFailover(t *testing.T) {
	s := sim.New(17)
	c := NewCluster(s, 5, time.Millisecond, newKVSM)
	first := c.WaitLeader(5 * time.Second)
	if first == nil {
		t.Fatal("no initial leader")
	}
	propose(t, c, "before=1")
	first.Kill()
	deadline := s.Now() + 10*time.Second
	var second *Node
	for s.Now() < deadline {
		s.RunUntil(s.Now() + 10*time.Millisecond)
		if l := c.Leader(); l != nil && l != first {
			second = l
			break
		}
	}
	if second == nil {
		t.Fatal("no new leader after failover")
	}
	propose(t, c, "after=2")
	s.RunUntil(s.Now() + 500*time.Millisecond)
	// Every live node must have both entries: nothing committed was lost.
	for _, n := range c.Nodes {
		if n == first {
			continue
		}
		m := n.StateMachineRef().(*kvSM)
		if m.data["before"] != "1" || m.data["after"] != "2" {
			t.Fatalf("node %d state = %v", n.ID(), m.data)
		}
	}
}

func TestRestartRejoins(t *testing.T) {
	s := sim.New(19)
	c := NewCluster(s, 3, time.Millisecond, newKVSM)
	leader := c.WaitLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	var follower *Node
	for _, n := range c.Nodes {
		if n != leader {
			follower = n
			break
		}
	}
	follower.Kill()
	for i := 0; i < 5; i++ {
		propose(t, c, fmt.Sprintf("k%d=v", i))
	}
	follower.Restart()
	s.RunUntil(s.Now() + 2*time.Second)
	m := follower.StateMachineRef().(*kvSM)
	for i := 0; i < 5; i++ {
		if m.data[fmt.Sprintf("k%d", i)] != "v" {
			t.Fatalf("restarted follower missing k%d; state=%v", i, m.data)
		}
	}
}

func TestPartitionedMinorityCannotCommit(t *testing.T) {
	s := sim.New(23)
	c := NewCluster(s, 5, time.Millisecond, newKVSM)
	leader := c.WaitLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	// Isolate the leader with one follower (minority of 2).
	var companion *Node
	for _, n := range c.Nodes {
		if n != leader {
			companion = n
			break
		}
	}
	for _, n := range c.Nodes {
		if n != leader && n != companion {
			c.Transport.Partition(leader.ID(), n.ID())
			c.Transport.Partition(companion.ID(), n.ID())
		}
	}
	fut := leader.Propose([]byte("minority=1"))
	s.RunUntil(s.Now() + 2*time.Second)
	if fut.done && fut.err == nil {
		t.Fatal("minority partition committed an entry")
	}
	// Majority side elects a new leader and commits.
	var newLeader *Node
	deadline := s.Now() + 10*time.Second
	for s.Now() < deadline {
		s.RunUntil(s.Now() + 10*time.Millisecond)
		for _, n := range c.Nodes {
			if n != leader && n != companion && n.Role() == Leader {
				newLeader = n
			}
		}
		if newLeader != nil {
			break
		}
	}
	if newLeader == nil {
		t.Fatal("majority did not elect a leader")
	}
	done := false
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		_, err = newLeader.Propose([]byte("majority=1")).Wait(p)
		done = true
	})
	s.RunUntil(s.Now() + 2*time.Second)
	if !done || err != nil {
		t.Fatalf("majority commit failed: done=%v err=%v", done, err)
	}
	// Heal: the old leader must step down and converge.
	c.Transport.HealAll()
	s.RunUntil(s.Now() + 2*time.Second)
	if leader.Role() == Leader && leader.Term() <= newLeader.Term() {
		t.Fatal("stale leader did not step down after heal")
	}
	m := leader.StateMachineRef().(*kvSM)
	if m.data["majority"] != "1" {
		t.Fatalf("old leader missing majority entry: %v", m.data)
	}
	if m.data["minority"] == "1" {
		t.Fatal("uncommitted minority entry applied")
	}
}

func TestSnapshotCompactionAndCatchUp(t *testing.T) {
	s := sim.New(29)
	tr := NewMemTransport(s, time.Millisecond)
	peers := []int{0, 1, 2}
	var nodes []*Node
	for i := range peers {
		cfg := DefaultConfig(i, peers)
		cfg.SnapshotThreshold = 16 // compact aggressively
		n := NewNode(s, cfg, tr, newKVSM)
		tr.Attach(n)
		nodes = append(nodes, n)
	}
	c := &Cluster{Sim: s, Transport: tr, Nodes: nodes}
	leader := c.WaitLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	var lagger *Node
	for _, n := range nodes {
		if n != leader {
			lagger = n
			break
		}
	}
	lagger.Kill()
	for i := 0; i < 64; i++ {
		propose(t, c, fmt.Sprintf("k%d=v%d", i, i))
	}
	if leader.log.snapIndex == 0 {
		t.Fatal("leader never compacted its log")
	}
	lagger.Restart()
	s.RunUntil(s.Now() + 3*time.Second)
	m := lagger.StateMachineRef().(*kvSM)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%d", i)
		if m.data[k] != fmt.Sprintf("v%d", i) {
			t.Fatalf("lagger missing %s after snapshot catch-up (have %d keys)", k, len(m.data))
		}
	}
}

func TestLogMatchingInvariant(t *testing.T) {
	// After a busy run with a failover, all live logs agree on every index
	// up to the lowest commit point (Raft's Log Matching property).
	s := sim.New(31)
	c := NewCluster(s, 5, time.Millisecond, newKVSM)
	leader := c.WaitLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 20; i++ {
		propose(t, c, fmt.Sprintf("a%d=%d", i, i))
	}
	leader.Kill()
	if c.WaitLeader(10*time.Second) == nil {
		t.Fatal("no second leader")
	}
	for i := 0; i < 20; i++ {
		propose(t, c, fmt.Sprintf("b%d=%d", i, i))
	}
	leader.Restart()
	s.RunUntil(s.Now() + 2*time.Second)

	minCommit := nodesMinCommit(c.Nodes)
	for idx := uint64(1); idx <= minCommit; idx++ {
		var ref *Entry
		for _, n := range c.Nodes {
			if idx <= n.log.snapIndex {
				continue // compacted away; covered by snapshot equivalence
			}
			e := n.log.entry(idx)
			if ref == nil {
				ref = &e
				continue
			}
			if e.Term != ref.Term || string(e.Cmd) != string(ref.Cmd) {
				t.Fatalf("log mismatch at %d: %v vs %v", idx, e, *ref)
			}
		}
	}
	// And the applied command sequences must be identical prefixes.
	var refLog []string
	for _, n := range c.Nodes {
		m := n.StateMachineRef().(*kvSM)
		if refLog == nil || len(m.log) > len(refLog) {
			refLog = m.log
		}
	}
	for _, n := range c.Nodes {
		m := n.StateMachineRef().(*kvSM)
		for i, cmd := range m.log {
			if cmd != refLog[i] {
				t.Fatalf("node %d applied %q at %d, reference %q", n.ID(), cmd, i, refLog[i])
			}
		}
	}
}

func nodesMinCommit(nodes []*Node) uint64 {
	min := nodes[0].CommitIndex()
	for _, n := range nodes[1:] {
		if n.CommitIndex() < min {
			min = n.CommitIndex()
		}
	}
	return min
}

func TestProposeAfterStopFails(t *testing.T) {
	s := sim.New(37)
	c := NewCluster(s, 3, time.Millisecond, newKVSM)
	leader := c.WaitLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	leader.Stop()
	fut := leader.Propose([]byte("x=1"))
	var err error
	done := false
	s.Spawn("client", func(p *sim.Proc) {
		_, err = fut.Wait(p)
		done = true
	})
	s.RunUntil(s.Now() + 100*time.Millisecond)
	if !done || !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v (done=%v), want ErrStopped", err, done)
	}
}

func TestDeterministicElections(t *testing.T) {
	run := func() (int, uint64) {
		s := sim.New(1234)
		c := NewCluster(s, 5, time.Millisecond, newKVSM)
		l := c.WaitLeader(5 * time.Second)
		if l == nil {
			return -1, 0
		}
		return l.ID(), l.Term()
	}
	id1, t1 := run()
	id2, t2 := run()
	if id1 != id2 || t1 != t2 {
		t.Fatalf("elections diverged: (%d,%d) vs (%d,%d)", id1, t1, id2, t2)
	}
}
