package media

import (
	"errors"
	"testing"
	"time"

	"daosim/internal/sim"
)

func testParams() Params {
	return Params{
		Name:         "dev",
		Capacity:     GiB,
		ReadLatency:  10 * time.Microsecond,
		WriteLatency: 20 * time.Microsecond,
		ReadBW:       1e9,
		WriteBW:      5e8,
	}
}

func TestReadTiming(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, testParams())
	var done time.Duration
	s.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 100_000_000) // 0.1 GB at 1 GB/s = 100 ms + 10 us latency
		done = p.Now()
	})
	s.Run()
	want := 100*time.Millisecond + 10*time.Microsecond
	if diff := done - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("read completed at %v, want ~%v", done, want)
	}
	if d.ReadOps != 1 || d.ReadBytes != 100_000_000 {
		t.Fatalf("counters: ops=%d bytes=%d", d.ReadOps, d.ReadBytes)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, testParams())
	var rDone, wDone time.Duration
	s.Spawn("r", func(p *sim.Proc) { d.Read(p, 50_000_000); rDone = p.Now() })
	s.Spawn("w", func(p *sim.Proc) { d.Write(p, 50_000_000); wDone = p.Now() })
	s.Run()
	if wDone <= rDone {
		t.Fatalf("write (%v) should be slower than read (%v) on asymmetric media", wDone, rDone)
	}
}

func TestWriteContention(t *testing.T) {
	// Two concurrent writers on a fair-shared channel take ~twice as long.
	s := sim.New(1)
	d := NewDevice(s, testParams())
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("w", func(p *sim.Proc) {
			d.Write(p, 50_000_000) // 0.1s solo at 0.5 GB/s
			done[i] = p.Now()
		})
	}
	s.Run()
	for _, at := range done {
		if at < 195*time.Millisecond || at > 205*time.Millisecond {
			t.Fatalf("contended write finished at %v, want ~200ms", at)
		}
	}
}

func TestCapacityAccounting(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, testParams())
	if err := d.Alloc(GiB / 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(GiB / 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit error = %v, want ErrNoSpace", err)
	}
	d.Free(GiB / 2)
	if d.Used() != GiB/2 {
		t.Fatalf("used = %d", d.Used())
	}
	if err := d.Alloc(GiB / 4); err != nil {
		t.Fatal(err)
	}
}

func TestBadFreePanics(t *testing.T) {
	s := sim.New(1)
	d := NewDevice(s, testParams())
	defer func() {
		if recover() == nil {
			t.Error("freeing more than used did not panic")
		}
	}()
	d.Free(1)
}

func TestDCPMMPreset(t *testing.T) {
	p := DCPMMInterleaved("scm", 6)
	if p.Capacity != 6*256*GiB {
		t.Fatalf("capacity = %d", p.Capacity)
	}
	if p.ReadBW <= p.WriteBW {
		t.Fatal("DCPMM must be read/write asymmetric")
	}
	if p.ReadBW != 6*5.0e9 {
		t.Fatalf("interleaving must scale read bandwidth, got %v", p.ReadBW)
	}
}

func TestNVMePreset(t *testing.T) {
	p := NVMe("ssd", 4*TiB)
	if p.ReadLatency <= DCPMMInterleaved("scm", 6).ReadLatency {
		t.Fatal("NVMe latency must exceed DCPMM latency")
	}
	if p.Capacity != 4*TiB {
		t.Fatalf("capacity = %d", p.Capacity)
	}
}

func TestFlowCapLimitsSingleStream(t *testing.T) {
	s := sim.New(1)
	p := testParams()
	p.FlowReadBW = 1e8 // 0.1 GB/s cap on a 1 GB/s device
	d := NewDevice(s, p)
	var done time.Duration
	s.Spawn("r", func(pr *sim.Proc) {
		d.Read(pr, 100_000_000)
		done = pr.Now()
	})
	s.Run()
	if done < 990*time.Millisecond {
		t.Fatalf("capped read finished at %v, want ~1s", done)
	}
}
