// Package media models storage media devices: Intel Optane DC Persistent
// Memory Modules (DCPMM) in AppDirect interleaved mode, and NVMe SSDs.
//
// A Device combines a timing model (per-operation setup latency plus
// fair-shared read and write bandwidth channels, since persistent memory is
// strongly read/write asymmetric) with capacity accounting. The functional
// content of objects lives in the VOS layer; media charges the virtual clock
// and tracks space.
//
// Presets reproduce the NEXTGenIO node configuration used in the paper:
// six 256 GiB first-generation DCPMMs per socket, AppDirect interleaved,
// one DAOS engine per socket.
package media

import (
	"errors"
	"fmt"
	"time"

	"daosim/internal/sim"
)

// ErrNoSpace is returned when an allocation exceeds remaining capacity.
var ErrNoSpace = errors.New("media: out of space")

// Params describes a device's performance envelope and capacity.
type Params struct {
	// Name identifies the device in metrics and errors.
	Name string
	// Capacity is the usable byte capacity.
	Capacity int64
	// ReadLatency and WriteLatency are per-operation setup costs
	// (media access latency, not software path costs).
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// ReadBW and WriteBW are aggregate sequential bandwidths in bytes/s.
	ReadBW  float64
	WriteBW float64
	// FlowReadBW and FlowWriteBW optionally cap a single stream, modelling
	// per-channel limits. Zero means uncapped.
	FlowReadBW  float64
	FlowWriteBW float64
}

// Device is one media instance bound to a simulator.
type Device struct {
	params  Params
	readCh  *sim.SharedBW
	writeCh *sim.SharedBW
	used    int64

	// Counters for reporting.
	ReadOps, WriteOps  int64
	ReadBytes, WrBytes int64
}

// NewDevice creates a device from params.
func NewDevice(s *sim.Sim, p Params) *Device {
	if p.Capacity <= 0 {
		panic("media: capacity must be positive")
	}
	return &Device{
		params:  p,
		readCh:  sim.NewSharedBW(s, p.Name+"/read", p.ReadBW, p.FlowReadBW),
		writeCh: sim.NewSharedBW(s, p.Name+"/write", p.WriteBW, p.FlowWriteBW),
	}
}

// Params returns the device's configuration.
func (d *Device) Params() Params { return d.params }

// Read charges the virtual clock for reading size bytes.
func (d *Device) Read(p *sim.Proc, size int64) {
	d.ReadOps++
	d.ReadBytes += size
	p.Sleep(d.params.ReadLatency)
	d.readCh.Transfer(p, size)
}

// Write charges the virtual clock for writing size bytes.
func (d *Device) Write(p *sim.Proc, size int64) {
	d.WriteOps++
	d.WrBytes += size
	p.Sleep(d.params.WriteLatency)
	d.writeCh.Transfer(p, size)
}

// Alloc reserves size bytes, failing with ErrNoSpace when the device is full.
func (d *Device) Alloc(size int64) error {
	if size < 0 {
		panic("media: negative allocation")
	}
	if d.used+size > d.params.Capacity {
		return fmt.Errorf("%w: %s used %d + %d > %d", ErrNoSpace, d.params.Name, d.used, size, d.params.Capacity)
	}
	d.used += size
	return nil
}

// Free releases size bytes previously allocated.
func (d *Device) Free(size int64) {
	if size < 0 || size > d.used {
		panic(fmt.Sprintf("media: bad free of %d with %d used", size, d.used))
	}
	d.used -= size
}

// Used returns currently allocated bytes.
func (d *Device) Used() int64 { return d.used }

// Capacity returns total usable bytes.
func (d *Device) Capacity() int64 { return d.params.Capacity }

const (
	// KiB, MiB, GiB, TiB are binary byte units.
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
	TiB = int64(1) << 40
)

// DCPMMInterleaved returns parameters for an AppDirect interleaved set of
// first-generation 256 GiB Optane DCPMMs, as fitted per socket on the
// NEXTGenIO nodes. Interleaving scales bandwidth close to linearly across
// modules while latency stays that of a single module. The per-module
// figures follow published measurements for first-generation media
// (~6.8 GB/s read, ~2.3 GB/s write sequential; ~170 ns load, ~90 ns
// buffered store) discounted for the DAOS server software path; the write
// path carries the full VOS + PMDK transaction overhead and lands well
// below raw media bandwidth, which is what lets a large client population
// saturate the write side (the regime where object-class load balance
// decides Figure 1b).
func DCPMMInterleaved(name string, modules int) Params {
	if modules <= 0 {
		panic("media: module count must be positive")
	}
	return Params{
		Name:         name,
		Capacity:     int64(modules) * 256 * GiB,
		ReadLatency:  300 * time.Nanosecond,
		WriteLatency: 150 * time.Nanosecond,
		ReadBW:       float64(modules) * 5.0e9,
		WriteBW:      float64(modules) * 0.33e9,
		// A single xstream stream cannot saturate the interleave set.
		FlowReadBW:  6.0e9,
		FlowWriteBW: 3.0e9,
	}
}

// NVMe returns parameters for a datacentre NVMe SSD (DAOS bulk tier).
func NVMe(name string, capacity int64) Params {
	return Params{
		Name:         name,
		Capacity:     capacity,
		ReadLatency:  80 * time.Microsecond,
		WriteLatency: 20 * time.Microsecond,
		ReadBW:       3.2e9,
		WriteBW:      2.2e9,
		FlowReadBW:   2.0e9,
		FlowWriteBW:  1.5e9,
	}
}
