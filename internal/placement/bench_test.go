package placement

import "testing"

func benchCompute(b *testing.B, class ClassID) {
	m := NewPoolMap(16, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(EncodeOID(class, 0, uint64(i)), m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeS1(b *testing.B) { benchCompute(b, S1) }
func BenchmarkComputeS2(b *testing.B) { benchCompute(b, S2) }
func BenchmarkComputeSX(b *testing.B) { benchCompute(b, SX) }

func BenchmarkComputeDegraded(b *testing.B) {
	m := NewPoolMap(16, 8, 2)
	m.ExcludeEngine(0)
	m.ExcludeEngine(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(EncodeOID(S4, 0, uint64(i)), m); err != nil {
			b.Fatal(err)
		}
	}
}
