// Package placement implements DAOS object placement: the pool map
// (engines, targets, liveness), object classes (S1, S2, ... SX, plus
// replicated classes), and the deterministic algorithmic layout that maps an
// object's shards onto pool targets.
//
// Object classes are the DAOS analogue of Lustre file striping and are the
// primary variable in the paper's evaluation: S1 keeps an object on one
// target, S2 shards it over two, SX over every target in the pool. Layout
// is computed — never stored — from a jump-consistent-hash seeded
// permutation of the pool map, so every client derives identical layouts
// and a target failure remaps only the shards that lived on it.
package placement

import (
	"errors"
	"fmt"

	"daosim/internal/vos"
)

// ClassID identifies an object class. It is encoded into the top 16 bits of
// an ObjectID's Hi word, as in DAOS.
type ClassID uint16

// Predefined object classes. SAny lets the container's default apply.
const (
	SAny ClassID = 0
	S1   ClassID = 1
	S2   ClassID = 2
	S4   ClassID = 4
	S8   ClassID = 8
	// SX shards over every up target in the pool.
	SX ClassID = 0xFFFF
	// RP2G1 keeps one shard group with 2-way replication (an extension
	// class exercised by the replication tests, not by the paper).
	RP2G1 ClassID = 0x8002
	// RP3G1 keeps one shard group with 3-way replication.
	RP3G1 ClassID = 0x8003
)

// Class describes a class's sharding and replication.
type Class struct {
	ID       ClassID
	Name     string
	Shards   int // -1 means "all up targets" (SX)
	Replicas int // copies per shard, >= 1
}

var classes = map[ClassID]Class{
	S1:    {ID: S1, Name: "S1", Shards: 1, Replicas: 1},
	S2:    {ID: S2, Name: "S2", Shards: 2, Replicas: 1},
	S4:    {ID: S4, Name: "S4", Shards: 4, Replicas: 1},
	S8:    {ID: S8, Name: "S8", Shards: 8, Replicas: 1},
	SX:    {ID: SX, Name: "SX", Shards: -1, Replicas: 1},
	RP2G1: {ID: RP2G1, Name: "RP_2G1", Shards: 1, Replicas: 2},
	RP3G1: {ID: RP3G1, Name: "RP_3G1", Shards: 1, Replicas: 3},
}

// LookupClass returns the class definition for id.
func LookupClass(id ClassID) (Class, error) {
	c, ok := classes[id]
	if !ok {
		return Class{}, fmt.Errorf("placement: unknown object class %#x", uint16(id))
	}
	return c, nil
}

// ClassByName resolves a class by its DAOS name (e.g. "S2", "SX").
func ClassByName(name string) (Class, error) {
	for _, c := range classes {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("placement: unknown object class %q", name)
}

// ClassNames returns the supported class names.
func ClassNames() []string {
	return []string{"S1", "S2", "S4", "S8", "SX", "RP_2G1", "RP_3G1"}
}

// EncodeOID builds an ObjectID carrying the class in Hi's top bits.
func EncodeOID(class ClassID, hi uint64, lo uint64) vos.ObjectID {
	if hi >= 1<<48 {
		panic("placement: oid hi field overflows 48 bits")
	}
	return vos.ObjectID{Hi: uint64(class)<<48 | hi, Lo: lo}
}

// ClassOf extracts the class from an ObjectID.
func ClassOf(oid vos.ObjectID) ClassID { return ClassID(oid.Hi >> 48) }

// Target is one VOS target (a slice of an engine).
type Target struct {
	ID     int
	Engine int // owning engine index
	Rank   int // server node index (engines share a node's NIC)
	Up     bool
}

// PoolMap is the versioned target directory every client caches.
type PoolMap struct {
	Targets []Target
	Version int
}

// NewPoolMap builds a map for engines*targetsPerEngine targets, with
// enginesPerNode engines sharing each server rank.
func NewPoolMap(engines, targetsPerEngine, enginesPerNode int) *PoolMap {
	if engines <= 0 || targetsPerEngine <= 0 || enginesPerNode <= 0 {
		panic("placement: pool map dimensions must be positive")
	}
	m := &PoolMap{Version: 1}
	for e := 0; e < engines; e++ {
		for t := 0; t < targetsPerEngine; t++ {
			m.Targets = append(m.Targets, Target{
				ID:     e*targetsPerEngine + t,
				Engine: e,
				Rank:   e / enginesPerNode,
				Up:     true,
			})
		}
	}
	return m
}

// UpTargets returns the IDs of all live targets.
func (m *PoolMap) UpTargets() []int {
	var up []int
	for _, t := range m.Targets {
		if t.Up {
			up = append(up, t.ID)
		}
	}
	return up
}

// NumEngines returns the number of distinct engines in the map.
func (m *PoolMap) NumEngines() int {
	max := -1
	for _, t := range m.Targets {
		if t.Engine > max {
			max = t.Engine
		}
	}
	return max + 1
}

// SetTargetState marks a target up or down and bumps the map version.
func (m *PoolMap) SetTargetState(id int, up bool) {
	if id < 0 || id >= len(m.Targets) {
		panic(fmt.Sprintf("placement: no target %d", id))
	}
	if m.Targets[id].Up != up {
		m.Targets[id].Up = up
		m.Version++
	}
}

// ExcludeEngine marks every target of an engine down (engine failure).
func (m *PoolMap) ExcludeEngine(engine int) {
	for _, t := range m.Targets {
		if t.Engine == engine {
			m.SetTargetState(t.ID, false)
		}
	}
}

// jump is Lamping & Veach's jump consistent hash: maps key uniformly onto
// [0, n) with minimal disruption as n changes.
func jump(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// splitmix64 scrambles the OID into the permutation seed stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ErrNoTargets reports a layout request against a pool with no live targets.
var ErrNoTargets = errors.New("placement: no live targets")

// Layout is the computed placement of an object: Shards[i][r] is the target
// ID of replica r of shard i.
type Layout struct {
	OID    vos.ObjectID
	Class  Class
	Shards [][]int
	// MapVersion records the pool map version the layout was computed
	// against, so clients know when to recompute.
	MapVersion int
}

// NumShards returns the shard count.
func (l *Layout) NumShards() int { return len(l.Shards) }

// Leader returns the primary replica target of shard i.
func (l *Layout) Leader(i int) int { return l.Shards[i][0] }

// Compute derives the layout of oid on the pool map. The algorithm builds a
// deterministic OID-seeded permutation of all targets (Fisher-Yates driven
// by splitmix64), then walks it selecting live targets: failures shift
// placement to the next candidate in the permutation, touching only the
// shards that lost their target.
func Compute(oid vos.ObjectID, m *PoolMap) (*Layout, error) {
	class, err := LookupClass(ClassOf(oid))
	if err != nil {
		return nil, err
	}
	up := m.UpTargets()
	if len(up) == 0 {
		return nil, ErrNoTargets
	}
	shards := class.Shards
	if shards < 0 || shards > len(up) {
		shards = len(up)
	}
	need := shards * class.Replicas
	if need > len(up) {
		return nil, fmt.Errorf("placement: class %s needs %d live targets, pool has %d",
			class.Name, need, len(up))
	}

	// OID-seeded permutation over the full (up and down) target list so a
	// target coming back up restores its original shards.
	perm := make([]int, len(m.Targets))
	for i := range perm {
		perm[i] = i
	}
	seed := splitmix64(oid.Hi ^ splitmix64(oid.Lo))
	for i := len(perm) - 1; i > 0; i-- {
		seed = splitmix64(seed)
		j := int(seed % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Rotate the walk start so S1 objects spread by OID even when the
	// permutation prefix collides.
	start := jump(splitmix64(oid.Lo^0xD1B54A32D192ED03), len(perm))

	// Each shard replica has a fixed "home" position in the permutation;
	// positions beyond the home region form the fallback pool. A healthy
	// home never moves, and a failed home is replaced by the first unused
	// live fallback candidate, so failures remap only the shards that lost
	// their target (no cascading).
	layout := &Layout{OID: oid, Class: class, MapVersion: m.Version}
	at := func(pos int) int { return perm[(start+pos)%len(perm)] }
	used := make(map[int]bool, need)
	fallback := need // first position after the home region
	pickFallback := func() (int, error) {
		for ; fallback < len(perm); fallback++ {
			t := at(fallback)
			if m.Targets[t].Up && !used[t] {
				used[t] = true
				fallback++
				return t, nil
			}
		}
		return 0, ErrNoTargets
	}
	pick := func(home int) (int, error) {
		if t := at(home); m.Targets[t].Up && !used[t] {
			used[t] = true
			return t, nil
		}
		return pickFallback()
	}
	for s := 0; s < shards; s++ {
		replicas := make([]int, 0, class.Replicas)
		engines := make(map[int]bool, class.Replicas)
		for r := 0; r < class.Replicas; r++ {
			t, err := pick(s*class.Replicas + r)
			if err != nil {
				return nil, err
			}
			// Replicas are fault-domain separated: no two copies of a
			// shard share an engine. Burn fallback candidates until the
			// domain differs (home picks stay stable for replica 0).
			for class.Replicas > 1 && engines[m.Targets[t].Engine] {
				used[t] = false // release; it may serve another shard
				t, err = pickFallback()
				if err != nil {
					return nil, err
				}
			}
			engines[m.Targets[t].Engine] = true
			replicas = append(replicas, t)
		}
		layout.Shards = append(layout.Shards, replicas)
	}
	return layout, nil
}
