package placement

import (
	"testing"
	"testing/quick"

	"daosim/internal/vos"
)

func testMap() *PoolMap { return NewPoolMap(16, 8, 2) } // the NEXTGenIO shape

func TestClassEncoding(t *testing.T) {
	oid := EncodeOID(S2, 0x1234, 0x5678)
	if ClassOf(oid) != S2 {
		t.Fatalf("ClassOf = %v", ClassOf(oid))
	}
	if oid.Lo != 0x5678 || oid.Hi&0xFFFFFFFFFFFF != 0x1234 {
		t.Fatalf("oid fields corrupted: %v", oid)
	}
}

func TestClassLookup(t *testing.T) {
	for _, name := range ClassNames() {
		c, err := ClassByName(name)
		if err != nil {
			t.Fatalf("ClassByName(%s): %v", name, err)
		}
		c2, err := LookupClass(c.ID)
		if err != nil || c2.Name != name {
			t.Fatalf("round-trip %s: %v %v", name, c2, err)
		}
	}
	if _, err := ClassByName("S3"); err == nil {
		t.Fatal("unknown class name accepted")
	}
	if _, err := LookupClass(ClassID(3)); err == nil {
		t.Fatal("unknown class id accepted")
	}
}

func TestPoolMapShape(t *testing.T) {
	m := testMap()
	if len(m.Targets) != 128 {
		t.Fatalf("targets = %d, want 128", len(m.Targets))
	}
	if m.NumEngines() != 16 {
		t.Fatalf("engines = %d", m.NumEngines())
	}
	// Engines 0 and 1 share rank 0; 2 and 3 share rank 1.
	if m.Targets[0].Rank != 0 || m.Targets[8].Rank != 0 || m.Targets[16].Rank != 1 {
		t.Fatalf("rank assignment wrong: %+v %+v %+v", m.Targets[0], m.Targets[8], m.Targets[16])
	}
}

func TestLayoutShardCounts(t *testing.T) {
	m := testMap()
	cases := []struct {
		class ClassID
		want  int
	}{
		{S1, 1}, {S2, 2}, {S4, 4}, {S8, 8}, {SX, 128},
	}
	for _, c := range cases {
		oid := EncodeOID(c.class, 1, 42)
		l, err := Compute(oid, m)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumShards() != c.want {
			t.Fatalf("class %#x shards = %d, want %d", c.class, l.NumShards(), c.want)
		}
	}
}

func TestLayoutDistinctTargets(t *testing.T) {
	m := testMap()
	for lo := uint64(0); lo < 100; lo++ {
		l, err := Compute(EncodeOID(S8, 0, lo), m)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, sh := range l.Shards {
			for _, tgt := range sh {
				if seen[tgt] {
					t.Fatalf("oid %d: duplicate target %d in layout", lo, tgt)
				}
				seen[tgt] = true
			}
		}
	}
}

func TestLayoutDeterministic(t *testing.T) {
	f := func(hi, lo uint64) bool {
		m := testMap()
		oid := EncodeOID(S4, hi%(1<<40), lo)
		a, err1 := Compute(oid, m)
		b, err2 := Compute(oid, m)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.Shards {
			for r := range a.Shards[i] {
				if a.Shards[i][r] != b.Shards[i][r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutBalance(t *testing.T) {
	// Hash 2000 S1 objects over 128 targets: every target should get a
	// statistically sane share (mean 15.6; allow a wide band).
	m := testMap()
	counts := make([]int, len(m.Targets))
	for lo := uint64(0); lo < 2000; lo++ {
		l, err := Compute(EncodeOID(S1, 7, lo), m)
		if err != nil {
			t.Fatal(err)
		}
		counts[l.Leader(0)]++
	}
	for id, c := range counts {
		if c == 0 {
			t.Fatalf("target %d got no objects", id)
		}
		if c > 40 {
			t.Fatalf("target %d got %d of 2000 objects (mean 15.6): badly unbalanced", id, c)
		}
	}
}

func TestLayoutEngineBalanceSX(t *testing.T) {
	// An SX object must hit every engine exactly targetsPerEngine times.
	m := testMap()
	l, err := Compute(EncodeOID(SX, 0, 99), m)
	if err != nil {
		t.Fatal(err)
	}
	perEngine := map[int]int{}
	for _, sh := range l.Shards {
		perEngine[m.Targets[sh[0]].Engine]++
	}
	for e := 0; e < 16; e++ {
		if perEngine[e] != 8 {
			t.Fatalf("engine %d got %d shards, want 8", e, perEngine[e])
		}
	}
}

func TestFailureRemapsMinimally(t *testing.T) {
	m := testMap()
	type key struct{ lo uint64 }
	before := map[uint64]*Layout{}
	for lo := uint64(0); lo < 500; lo++ {
		l, err := Compute(EncodeOID(S2, 3, lo), m)
		if err != nil {
			t.Fatal(err)
		}
		before[lo] = l
	}
	// Fail one engine (targets 0..7).
	m.ExcludeEngine(0)
	moved, stayed := 0, 0
	for lo := uint64(0); lo < 500; lo++ {
		l, err := Compute(EncodeOID(S2, 3, lo), m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range l.Shards {
			if l.Shards[i][0] != before[lo].Shards[i][0] {
				// Only shards whose old target died may move.
				if before[lo].Shards[i][0] >= 8 {
					t.Fatalf("oid %d shard %d moved from healthy target %d", lo, i, before[lo].Shards[i][0])
				}
				if l.Shards[i][0] < 8 {
					t.Fatalf("oid %d shard %d placed on failed target %d", lo, i, l.Shards[i][0])
				}
				moved++
			} else {
				stayed++
			}
		}
	}
	if moved == 0 {
		t.Fatal("engine exclusion moved nothing; test is vacuous")
	}
	// Roughly 1/16 of shards lived on engine 0.
	frac := float64(moved) / float64(moved+stayed)
	if frac > 0.15 {
		t.Fatalf("%.1f%% of shards moved; remap is not minimal", frac*100)
	}
	_ = key{}
}

func TestRecoveryRestoresLayout(t *testing.T) {
	m := testMap()
	oid := EncodeOID(S4, 0, 77)
	orig, _ := Compute(oid, m)
	m.SetTargetState(orig.Leader(0), false)
	during, _ := Compute(oid, m)
	if during.Leader(0) == orig.Leader(0) {
		t.Fatal("layout kept a down target")
	}
	m.SetTargetState(orig.Leader(0), true)
	after, _ := Compute(oid, m)
	if after.Leader(0) != orig.Leader(0) {
		t.Fatal("recovered target did not regain its shard")
	}
}

func TestReplicatedClasses(t *testing.T) {
	m := testMap()
	l, err := Compute(EncodeOID(RP3G1, 0, 5), m)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumShards() != 1 || len(l.Shards[0]) != 3 {
		t.Fatalf("RP_3G1 layout = %v", l.Shards)
	}
	seen := map[int]bool{}
	for _, r := range l.Shards[0] {
		if seen[r] {
			t.Fatal("replicas share a target")
		}
		seen[r] = true
	}
}

func TestNoTargetsError(t *testing.T) {
	m := NewPoolMap(1, 2, 1)
	m.SetTargetState(0, false)
	m.SetTargetState(1, false)
	if _, err := Compute(EncodeOID(S1, 0, 1), m); err == nil {
		t.Fatal("layout on dead pool succeeded")
	}
}

func TestClassTooWideForPool(t *testing.T) {
	m := NewPoolMap(1, 2, 1) // 2 targets
	if _, err := Compute(EncodeOID(RP3G1, 0, 1), m); err == nil {
		t.Fatal("3-replica class on 2-target pool succeeded")
	}
	// SX adapts to the pool width instead of failing.
	l, err := Compute(EncodeOID(SX, 0, 1), m)
	if err != nil || l.NumShards() != 2 {
		t.Fatalf("SX on small pool: %v, %v", l, err)
	}
}

func TestVersionBumpOnStateChange(t *testing.T) {
	m := testMap()
	v := m.Version
	m.SetTargetState(3, false)
	if m.Version != v+1 {
		t.Fatal("version not bumped")
	}
	m.SetTargetState(3, false) // no-op
	if m.Version != v+1 {
		t.Fatal("no-op state change bumped version")
	}
}

var _ = vos.ObjectID{} // keep the import obvious in examples
