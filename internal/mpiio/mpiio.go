// Package mpiio implements MPI-I/O middleware in the style of ROMIO: file
// handles opened collectively over an ADIO driver, independent read/write,
// and two-phase collective I/O with node-level aggregators.
//
// Two ADIO drivers mirror the paper's configurations: the DFS driver calls
// libdfs directly (DAOS-native MPI-I/O), and the POSIX driver goes through
// the DFuse mount (how MPI-I/O ran in the paper's evaluation).
package mpiio

import (
	"errors"
	"fmt"
	"sort"

	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/mpi"
	"daosim/internal/sim"
)

// Driver is the ADIO device abstraction (one open handle per rank).
// ReadAtInto is the zero-copy variant of ReadAt: it fills dst (len(dst) ==
// n) in place, or — with a nil dst — simulates the read with identical
// timing while materializing nothing.
type Driver interface {
	WriteAt(p *sim.Proc, off int64, data []byte) error
	ReadAt(p *sim.Proc, off int64, n int64) ([]byte, error)
	ReadAtInto(p *sim.Proc, off int64, n int64, dst []byte) error
	Size(p *sim.Proc) (int64, error)
	Sync(p *sim.Proc) error
	Close(p *sim.Proc) error
}

// dfsDriver drives a DFS file directly.
type dfsDriver struct{ f *dfs.File }

func (d *dfsDriver) WriteAt(p *sim.Proc, off int64, data []byte) error {
	return d.f.WriteAt(p, off, data)
}
func (d *dfsDriver) ReadAt(p *sim.Proc, off int64, n int64) ([]byte, error) {
	return d.f.ReadAt(p, off, n)
}
func (d *dfsDriver) ReadAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return d.f.ReadAtInto(p, off, n, dst)
}
func (d *dfsDriver) Size(p *sim.Proc) (int64, error) { return d.f.Size(p) }
func (d *dfsDriver) Sync(p *sim.Proc) error          { return d.f.Sync(p) }
func (d *dfsDriver) Close(p *sim.Proc) error         { return d.f.Close(p) }

// posixDriver drives a file through a DFuse mount.
type posixDriver struct{ fd *dfuse.File }

func (d *posixDriver) WriteAt(p *sim.Proc, off int64, data []byte) error {
	_, err := d.fd.Pwrite(p, off, data)
	return err
}
func (d *posixDriver) ReadAt(p *sim.Proc, off int64, n int64) ([]byte, error) {
	return d.fd.Pread(p, off, n)
}
func (d *posixDriver) ReadAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return d.fd.PreadInto(p, off, n, dst)
}
func (d *posixDriver) Size(p *sim.Proc) (int64, error) { return d.fd.Size(p) }
func (d *posixDriver) Sync(p *sim.Proc) error          { return d.fd.Fsync(p) }
func (d *posixDriver) Close(p *sim.Proc) error         { return d.fd.Close(p) }

// Hints configure collective buffering, mirroring ROMIO's cb_* hints.
type Hints struct {
	// AggStride selects aggregators: ranks with ID % AggStride == 0.
	// Set it to the ranks-per-node to get one aggregator per node
	// (ROMIO's cb_nodes default). Minimum 1 (every rank aggregates).
	AggStride int
	// CBBufSize bounds each aggregator write (ROMIO cb_buffer_size).
	CBBufSize int64
}

// DefaultHints returns ROMIO-style defaults for the given ranks-per-node.
func DefaultHints(ranksPerNode int) Hints {
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	return Hints{AggStride: ranksPerNode, CBBufSize: 16 << 20}
}

// File is an open MPI-I/O handle (per rank).
type File struct {
	rank  *mpi.Rank
	drv   Driver
	hints Hints
	disp  int64 // file view displacement
	// worldSizeOverride substitutes for rank.Size() in tests that exercise
	// domain construction without a live world.
	worldSizeOverride int
}

// worldSize returns the communicator size backing collective domains.
func (f *File) worldSize() int {
	if f.rank == nil {
		return f.worldSizeOverride
	}
	return f.rank.Size()
}

// OpenDFS opens path through the DFS ADIO driver, collectively: rank 0
// creates the file when create is set, then every rank opens it.
func OpenDFS(p *sim.Proc, r *mpi.Rank, fsys *dfs.FS, path string, create bool, opts dfs.CreateOpts, hints Hints) (*File, error) {
	if create && r.ID() == 0 {
		if _, err := fsys.OpenOrCreate(p, path, opts); err != nil {
			return nil, fmt.Errorf("mpiio: create %s: %w", path, err)
		}
	}
	r.Barrier(p)
	f, err := fsys.Open(p, path)
	if err != nil {
		return nil, fmt.Errorf("mpiio: open %s: %w", path, err)
	}
	return newFile(r, &dfsDriver{f: f}, hints), nil
}

// OpenPOSIX opens path through the POSIX ADIO driver over the rank's DFuse
// mount.
func OpenPOSIX(p *sim.Proc, r *mpi.Rank, mount *dfuse.Mount, path string, create bool, opts dfs.CreateOpts, hints Hints) (*File, error) {
	if create && r.ID() == 0 {
		fd, err := mount.Open(p, path, dfuse.O_CREATE|dfuse.O_RDWR, opts)
		if err != nil {
			return nil, fmt.Errorf("mpiio: create %s: %w", path, err)
		}
		fd.Close(p)
	}
	r.Barrier(p)
	fd, err := mount.Open(p, path, dfuse.O_RDWR, opts)
	if err != nil {
		return nil, fmt.Errorf("mpiio: open %s: %w", path, err)
	}
	return newFile(r, &posixDriver{fd: fd}, hints), nil
}

// FromPOSIX wraps an already-open DFuse descriptor as an MPI-I/O handle
// (MPI_COMM_SELF-style file-per-process opens, as IOR uses in easy mode).
func FromPOSIX(r *mpi.Rank, fd *dfuse.File, hints Hints) *File {
	return newFile(r, &posixDriver{fd: fd}, hints)
}

func newFile(r *mpi.Rank, drv Driver, hints Hints) *File {
	if hints.AggStride < 1 {
		hints.AggStride = 1
	}
	if hints.CBBufSize <= 0 {
		hints.CBBufSize = 16 << 20
	}
	return &File{rank: r, drv: drv, hints: hints}
}

// SetView sets the file view displacement (MPI_File_set_view with a byte
// etype).
func (f *File) SetView(disp int64) { f.disp = disp }

// WriteAt performs an independent write at the view-relative offset.
func (f *File) WriteAt(p *sim.Proc, off int64, data []byte) error {
	return f.drv.WriteAt(p, f.disp+off, data)
}

// ReadAt performs an independent read at the view-relative offset.
func (f *File) ReadAt(p *sim.Proc, off int64, n int64) ([]byte, error) {
	return f.drv.ReadAt(p, f.disp+off, n)
}

// ReadAtInto performs an independent read at the view-relative offset into
// dst (len(dst) == n; every byte is written). A nil dst simulates the read
// with identical timing without materializing data.
func (f *File) ReadAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return f.drv.ReadAtInto(p, f.disp+off, n, dst)
}

// Size returns the file size.
func (f *File) Size(p *sim.Proc) (int64, error) { return f.drv.Size(p) }

// Sync flushes the file.
func (f *File) Sync(p *sim.Proc) error { return f.drv.Sync(p) }

// Close closes the handle.
func (f *File) Close(p *sim.Proc) error { return f.drv.Close(p) }

// piece is a shuffle unit in two-phase I/O.
type piece struct {
	Off  int64
	Data []byte // nil in read-request phase
	Len  int64
	// Discard marks a read request whose bytes the requester will not
	// observe: the aggregator answers with timing-equivalent empty pieces
	// (exchange sizes unchanged) and skips materializing for it.
	Discard bool
}

// aggDomains partitions [lo, hi) into one contiguous file domain per
// aggregator.
func (f *File) aggDomains(lo, hi int64) (aggs []int, bounds []int64) {
	n := f.worldSize()
	for id := 0; id < n; id += f.hints.AggStride {
		aggs = append(aggs, id)
	}
	span := hi - lo
	per := (span + int64(len(aggs)) - 1) / int64(len(aggs))
	bounds = make([]int64, len(aggs)+1)
	for i := range aggs {
		b := lo + int64(i)*per
		if b > hi {
			b = hi // trailing aggregators get empty domains on tiny extents
		}
		bounds[i] = b
	}
	bounds[len(aggs)] = hi
	return aggs, bounds
}

// routePieces splits [off, off+len) across domains, producing one piece per
// intersecting aggregator.
func routePieces(off int64, data []byte, length int64, aggs []int, bounds []int64, vals []interface{}, sizes []int64) {
	end := off + length
	for i, agg := range aggs {
		dLo, dHi := bounds[i], bounds[i+1]
		if end <= dLo || off >= dHi {
			continue
		}
		lo, hi := off, end
		if lo < dLo {
			lo = dLo
		}
		if hi > dHi {
			hi = dHi
		}
		pc := &piece{Off: lo, Len: hi - lo}
		if data != nil {
			pc.Data = data[lo-off : hi-off]
		}
		vals[agg] = appendPiece(vals[agg], pc)
		sizes[agg] += hi - lo
	}
}

func appendPiece(v interface{}, pc *piece) []*piece {
	if v == nil {
		return []*piece{pc}
	}
	return append(v.([]*piece), pc)
}

// WriteAtAll performs a two-phase collective write: ranks shuffle their data
// to node aggregators, which write coalesced contiguous runs. Every rank
// must call it (pass nil data for zero-length participation).
func (f *File) WriteAtAll(p *sim.Proc, off int64, data []byte) error {
	lo, hi, ok := f.collectiveExtent(p, off, int64(len(data)))
	if !ok {
		return nil // nobody wrote anything
	}
	aggs, bounds := f.aggDomains(lo, hi)
	vals := make([]interface{}, f.rank.Size())
	sizes := make([]int64, f.rank.Size())
	if len(data) > 0 {
		routePieces(f.disp+off, data, int64(len(data)), aggs, bounds, vals, sizes)
	}
	incoming := f.rank.Exchange(p, vals, sizes)
	// Aggregators coalesce and write their domain.
	var pieces []*piece
	for _, rcv := range incoming {
		pieces = append(pieces, rcv.Val.([]*piece)...)
	}
	err := f.writeCoalesced(p, pieces)
	// Collective completion: everyone waits for the slowest aggregator.
	errCount := 0.0
	if err != nil {
		errCount = 1
	}
	if f.rank.AllreduceFloat(p, errCount, "sum") > 0 {
		if err != nil {
			return err
		}
		return errors.New("mpiio: collective write failed on a peer")
	}
	return nil
}

// writeCoalesced sorts pieces and writes contiguous runs, bounded by
// CBBufSize per driver call.
func (f *File) writeCoalesced(p *sim.Proc, pieces []*piece) error {
	if len(pieces) == 0 {
		return nil
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].Off < pieces[j].Off })
	run := make([]byte, 0, f.hints.CBBufSize)
	runOff := pieces[0].Off
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		err := f.drv.WriteAt(p, runOff, run)
		run = run[:0]
		return err
	}
	for _, pc := range pieces {
		if pc.Off != runOff+int64(len(run)) || int64(len(run))+pc.Len > f.hints.CBBufSize {
			if err := flush(); err != nil {
				return err
			}
			runOff = pc.Off
		}
		run = append(run, pc.Data...)
	}
	return flush()
}

// ReadAtAll performs a two-phase collective read: aggregators read their
// file domains and ship each rank its pieces.
func (f *File) ReadAtAll(p *sim.Proc, off int64, n int64) ([]byte, error) {
	out := make([]byte, n)
	if err := f.ReadAtAllInto(p, off, n, out); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	return out, nil
}

// ReadAtAllInto is the collective read landing each rank's pieces directly
// in dst (len(dst) == n; the answered pieces cover every byte). A rank
// passing a nil dst sends discard-tagged requests: exchanges keep their
// sizes (the shuffle still ships the bytes in simulated time) and an
// aggregator whose incoming requests are all discards skips materializing
// its covering read, so an all-discard collective moves nothing. Every rank
// must call it (nil dst with n == 0 for zero-length participation).
func (f *File) ReadAtAllInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	lo, hi, ok := f.collectiveExtent(p, off, n)
	if !ok {
		return nil // nobody read anything
	}
	aggs, bounds := f.aggDomains(lo, hi)

	// Phase 1: route read requests (descriptors only) to aggregators.
	vals := make([]interface{}, f.rank.Size())
	sizes := make([]int64, f.rank.Size())
	if n > 0 {
		routePieces(f.disp+off, nil, n, aggs, bounds, vals, sizes)
		if dst == nil {
			for _, v := range vals {
				if v != nil {
					for _, pc := range v.([]*piece) {
						pc.Discard = true
					}
				}
			}
		}
		for i := range sizes {
			if sizes[i] > 0 {
				sizes[i] = 64 // request descriptors are tiny
			}
		}
	}
	requests := f.rank.Exchange(p, vals, sizes)

	// Aggregators read the covering extent of the requests addressed to
	// them, then answer each request from that buffer. The covering read
	// materializes only when some requester observes the bytes; its timing
	// is identical either way.
	var myReqs []*piece
	reqFrom := make([]int, 0)
	materialize := false
	for _, rcv := range requests {
		ps := rcv.Val.([]*piece)
		myReqs = append(myReqs, ps...)
		for _, rq := range ps {
			reqFrom = append(reqFrom, rcv.From)
			if !rq.Discard {
				materialize = true
			}
		}
	}
	answers := make([]interface{}, f.rank.Size())
	ansSizes := make([]int64, f.rank.Size())
	if len(myReqs) > 0 {
		rlo, rhi := myReqs[0].Off, myReqs[0].Off+myReqs[0].Len
		for _, rq := range myReqs[1:] {
			if rq.Off < rlo {
				rlo = rq.Off
			}
			if rq.Off+rq.Len > rhi {
				rhi = rq.Off + rq.Len
			}
		}
		var buf []byte
		if materialize {
			buf = make([]byte, rhi-rlo)
		}
		if err := f.drv.ReadAtInto(p, rlo, rhi-rlo, buf); err != nil {
			return err
		}
		for i, rq := range myReqs {
			pc := &piece{Off: rq.Off, Len: rq.Len}
			if !rq.Discard {
				pc.Data = buf[rq.Off-rlo : rq.Off-rlo+rq.Len]
			}
			answers[reqFrom[i]] = appendPiece(answers[reqFrom[i]], pc)
			ansSizes[reqFrom[i]] += rq.Len
		}
	}
	incoming := f.rank.Exchange(p, answers, ansSizes)

	// Assemble this rank's buffer from the answers; the domain partition
	// covers [off, off+n) exactly, so every byte of dst is written.
	if dst == nil {
		return nil
	}
	base := f.disp + off
	for _, rcv := range incoming {
		for _, pc := range rcv.Val.([]*piece) {
			copy(dst[pc.Off-base:pc.Off-base+pc.Len], pc.Data)
		}
	}
	return nil
}

// collectiveExtent agrees on the union extent of a collective op; ok is
// false when every rank passed zero length.
func (f *File) collectiveExtent(p *sim.Proc, off, n int64) (lo, hi int64, ok bool) {
	myLo, myHi := f.disp+off, f.disp+off+n
	if n <= 0 {
		// Neutral elements so empty ranks do not skew the reduction.
		myLo, myHi = int64(1)<<62, -1
	}
	lo = int64(f.rank.AllreduceFloat(p, float64(myLo), "min"))
	hi = int64(f.rank.AllreduceFloat(p, float64(myHi), "max"))
	return lo, hi, hi > lo
}

// ExchangeFrom is exposed for tests that need the rank handle.
func (f *File) Rank() *mpi.Rank { return f.rank }
