package mpiio

import (
	"testing"
	"testing/quick"
)

// TestRoutePiecesPartition verifies two-phase routing's core invariant: the
// pieces routed to the aggregators partition the written range exactly —
// every byte goes to exactly one aggregator, in that aggregator's domain.
func TestRoutePiecesPartition(t *testing.T) {
	f := func(offB uint16, lenB uint16, nAggB, strideB uint8) bool {
		off := int64(offB)
		length := int64(lenB%8192) + 1
		ranks := int(nAggB%8) + 1
		stride := int(strideB%3) + 1
		f2 := &File{hints: Hints{AggStride: stride, CBBufSize: 1 << 20}}
		aggs, bounds := fakeDomains(f2, ranks, off, off+length)

		data := make([]byte, length)
		for i := range data {
			data[i] = byte(i)
		}
		vals := make([]interface{}, 64)
		sizes := make([]int64, 64)
		routePieces(off, data, length, aggs, bounds, vals, sizes)

		var total int64
		covered := make([]bool, length)
		for ai, agg := range aggs {
			if vals[agg] == nil {
				continue
			}
			for _, pc := range vals[agg].([]*piece) {
				if pc.Off < bounds[ai] || pc.Off+pc.Len > bounds[ai+1] {
					return false // outside the aggregator's domain
				}
				for b := pc.Off; b < pc.Off+pc.Len; b++ {
					if covered[b-off] {
						return false // double routed
					}
					covered[b-off] = true
				}
				// Data integrity: the slice is the right window.
				if pc.Data[0] != byte(pc.Off-off) {
					return false
				}
				total += pc.Len
			}
		}
		if total != length {
			return false
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		// Sizes bookkeeping matches.
		var sz int64
		for _, s := range sizes {
			sz += s
		}
		return sz == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAggDomainsCoverExtent checks domain construction is a partition of
// [lo, hi) for any aggregator population.
func TestAggDomainsCoverExtent(t *testing.T) {
	f := func(loB, spanB uint16, ranksB, strideB uint8) bool {
		lo := int64(loB)
		hi := lo + int64(spanB%10000) + 1
		ranks := int(ranksB%16) + 1
		stride := int(strideB%4) + 1
		f2 := &File{hints: Hints{AggStride: stride, CBBufSize: 1 << 20}}
		aggs, bounds := fakeDomains(f2, ranks, lo, hi)
		if bounds[0] != lo || bounds[len(aggs)] != hi {
			return false
		}
		for i := 0; i < len(aggs); i++ {
			if bounds[i] > bounds[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// fakeDomains calls File.aggDomains with a synthetic world size (the rank
// handle is only consulted for Size, which aggDomains reads via the hints
// stride walk up to ranks).
func fakeDomains(f *File, ranks int, lo, hi int64) ([]int, []int64) {
	f.worldSizeOverride = ranks
	return f.aggDomains(lo, hi)
}
